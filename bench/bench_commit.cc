// E11 — Commit cost: forcing the log per transaction vs group commit
// (paper §2.2.1 footnote 1: "A high performance transaction system will
// use group commit instead of forcing the log for every transaction").
// Debit-credit at several batch sizes; one force amortizes over the batch.
//
// Three commit disciplines over the same debit-credit workload:
//   force     — force_on_commit, one synchronous force per transaction;
//   manual-N  — explicit ForceLog() every N transactions (the seed's
//               group-commit idiom; durability is only at the batch call);
//   group     — the real commit queue: concurrent transactions enqueue,
//               Commit returns Busy until a batch leader's single force
//               covers the wave (every Commit OK is durable).

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;
using workload::Bank;

namespace {

constexpr uint64_t kAccounts = 4096;  // 64 buckets of 64 accounts
constexpr uint64_t kWave = 64;        // concurrent committers in group mode
constexpr uint64_t kTransfers = 384;  // 6 full waves

StableHeapOptions BaseOptions() {
  StableHeapOptions opts;
  opts.stable_space_pages = 8192;
  opts.volatile_space_pages = 2048;
  return opts;
}

struct RunResult {
  double us_per_txn;
  uint64_t forces;
};

// Serial driver: Bank::Transfer per transaction, optional manual batches.
RunResult RunSerial(uint64_t batch) {
  SimEnv env;
  StableHeapOptions opts = BaseOptions();
  opts.force_on_commit = (batch == 1);
  auto heap = std::move(*StableHeap::Open(&env, opts));
  Bank bank(heap.get(), 0);
  BENCH_OK(bank.Setup(kAccounts, 1000));
  BENCH_OK(heap->ForceLog());

  Rng rng(31);
  const uint64_t forces_before = env.log()->stats().forces;
  const uint64_t start = env.clock()->now_ns();
  for (uint64_t i = 0; i < kTransfers; ++i) {
    const uint64_t from = rng.Uniform(kAccounts);
    const uint64_t to = (from + 1 + rng.Uniform(kAccounts - 1)) % kAccounts;
    BENCH_OK(bank.Transfer(from, to, 1));
    if (batch > 1 && i % batch == batch - 1) {
      BENCH_OK(heap->ForceLog());  // group-commit batch boundary
    }
  }
  if (batch > 1 && kTransfers % batch != 0) BENCH_OK(heap->ForceLog());
  const uint64_t elapsed = env.clock()->now_ns() - start;
  return RunResult{static_cast<double>(elapsed) / 1000 / kTransfers,
                   env.log()->stats().forces - forces_before};
}

// Group-commit driver: waves of kWave concurrent transactions, each
// debiting/crediting inside its own bucket (disjoint write sets), commits
// retried through the Busy protocol until the batch leader's force lands.
RunResult RunGroup() {
  SimEnv env;
  StableHeapOptions opts = BaseOptions();
  opts.force_on_commit = false;
  opts.group_commit = true;
  opts.group_commit_options.max_batch = kWave;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  Bank bank(heap.get(), 0);
  BENCH_OK(bank.Setup(kAccounts, 1000));
  BENCH_OK(heap->ForceLog());

  const uint64_t forces_before = env.log()->stats().forces;
  const uint64_t start = env.clock()->now_ns();
  for (uint64_t wave = 0; wave < kTransfers / kWave; ++wave) {
    std::vector<TxnId> txns(kWave);
    // Interleaved low-level actions for the whole wave (paper §2.1), then
    // everyone commits into the same batch.
    for (uint64_t i = 0; i < kWave; ++i) {
      const uint64_t from = i * 64;  // bucket i: no lock conflicts
      const uint64_t to = from + 1;
      const TxnId txn = BENCH_VAL(heap->Begin());
      txns[i] = txn;
      Ref dir = BENCH_VAL(heap->GetRoot(txn, 0));
      Ref bucket = BENCH_VAL(heap->ReadRef(txn, dir, from / 64));
      const uint64_t fbal = BENCH_VAL(heap->ReadScalar(txn, bucket, from % 64));
      const uint64_t tbal = BENCH_VAL(heap->ReadScalar(txn, bucket, to % 64));
      BENCH_OK(heap->WriteScalar(txn, bucket, from % 64, fbal - 1));
      BENCH_OK(heap->WriteScalar(txn, bucket, to % 64, tbal + 1));
    }
    std::vector<bool> done(kWave, false);
    uint64_t remaining = kWave;
    while (remaining > 0) {
      for (uint64_t i = 0; i < kWave; ++i) {
        if (done[i]) continue;
        Status st = heap->Commit(txns[i]);
        if (st.ok()) {
          done[i] = true;
          --remaining;
        } else if (!st.IsBusy()) {
          BENCH_OK(st);
        }
      }
    }
  }
  const uint64_t elapsed = env.clock()->now_ns() - start;
  const uint64_t total = BENCH_VAL(bank.TotalBalance());
  if (total != kAccounts * 1000) {
    std::fprintf(stderr, "balance invariant broken: %llu\n",
                 (unsigned long long)total);
    std::abort();
  }
  return RunResult{static_cast<double>(elapsed) / 1000 / kTransfers,
                   env.log()->stats().forces - forces_before};
}

}  // namespace

int main() {
  Header("E11  commit cost: per-transaction force vs group commit",
         "the synchronous force dominates commit; batching divides it");
  JsonBench("commit");
  Row("  %-14s %14s %12s", "mode", "us/txn(sim)", "forces");

  std::vector<double> us_per_txn;
  for (uint64_t batch : {1u, 4u, 16u, 64u}) {
    const RunResult r = RunSerial(batch);
    const std::string mode =
        batch == 1 ? "force" : "manual-" + std::to_string(batch);
    Row("  %-14s %14.1f %12llu", mode.c_str(), r.us_per_txn,
        (unsigned long long)r.forces);
    EmitMetric(batch == 1 ? "force_us_per_txn"
                          : "manual" + std::to_string(batch) + "_us_per_txn",
               r.us_per_txn, "us/txn");
    us_per_txn.push_back(r.us_per_txn);
  }
  const RunResult group = RunGroup();
  Row("  %-14s %14.1f %12llu", "group", group.us_per_txn,
      (unsigned long long)group.forces);
  EmitMetric("group_us_per_txn", group.us_per_txn, "us/txn");
  EmitMetric("group_forces", static_cast<double>(group.forces), "forces");

  const double force_us = us_per_txn.front();
  const double manual64_us = us_per_txn.back();
  EmitMetric("group_vs_force_speedup", force_us / group.us_per_txn, "x");
  EmitMetric("group_over_manual64_ratio", group.us_per_txn / manual64_us, "x");

  ShapeCheck(manual64_us * 4 < force_us,
             "manual batching (64) cuts per-transaction cost by >4x");
  bool monotone = true;
  for (size_t i = 1; i < us_per_txn.size(); ++i) {
    if (us_per_txn[i] > us_per_txn[i - 1] * 1.2) monotone = false;
  }
  ShapeCheck(monotone, "per-transaction cost falls as batches grow");
  ShapeCheck(group.us_per_txn * 4 < force_us,
             "group commit is >=4x faster than per-transaction force");
  ShapeCheck(group.us_per_txn <= manual64_us * 1.5,
             "group commit within 1.5x of the manual batch-64 baseline");
  return Finish();
}
