// E11 — Commit cost: forcing the log per transaction vs group commit
// (paper §2.2.1 footnote 1: "A high performance transaction system will
// use group commit instead of forcing the log for every transaction").
// Debit-credit at several batch sizes; one force amortizes over the batch.

#include "bench_util.h"

using namespace sheap;
using namespace sheap::bench;
using workload::Bank;

int main() {
  Header("E11  commit cost: per-transaction force vs group commit",
         "the synchronous force dominates commit; batching divides it");
  Row("  %-14s %14s %12s %14s", "batch-size", "us/txn(sim)", "forces",
      "total(ms)");

  constexpr uint64_t kTransfers = 400;
  std::vector<double> us_per_txn;
  for (uint64_t batch : {1u, 4u, 16u, 64u}) {
    SimEnv env;
    StableHeapOptions opts;
    opts.stable_space_pages = 8192;
    opts.volatile_space_pages = 2048;
    opts.force_on_commit = (batch == 1);
    auto heap = std::move(*StableHeap::Open(&env, opts));
    Bank bank(heap.get(), 0);
    BENCH_OK(bank.Setup(128, 1000));
    BENCH_OK(heap->ForceLog());

    Rng rng(31);
    const uint64_t forces_before = env.log()->stats().forces;
    const uint64_t start = env.clock()->now_ns();
    for (uint64_t i = 0; i < kTransfers; ++i) {
      const uint64_t from = rng.Uniform(128);
      const uint64_t to = (from + 1 + rng.Uniform(127)) % 128;
      BENCH_OK(bank.Transfer(from, to, 1));
      if (batch > 1 && i % batch == batch - 1) {
        BENCH_OK(heap->ForceLog());  // group-commit batch boundary
      }
    }
    if (batch > 1) BENCH_OK(heap->ForceLog());
    const uint64_t elapsed = env.clock()->now_ns() - start;
    const uint64_t forces = env.log()->stats().forces - forces_before;
    Row("  %-14llu %14.1f %12llu %14.1f", (unsigned long long)batch,
        static_cast<double>(elapsed) / 1000 / kTransfers,
        (unsigned long long)forces, Ms(elapsed));
    us_per_txn.push_back(static_cast<double>(elapsed) / 1000 / kTransfers);
  }

  ShapeCheck(us_per_txn.back() * 4 < us_per_txn.front(),
             "group commit (64) cuts per-transaction cost by >4x");
  bool monotone = true;
  for (size_t i = 1; i < us_per_txn.size(); ++i) {
    if (us_per_txn[i] > us_per_txn[i - 1] * 1.2) monotone = false;
  }
  ShapeCheck(monotone, "per-transaction cost falls as batches grow");
  return Finish();
}
