// E16 — sharded scale-out (src/shard/sharded_heap.h, DESIGN.md §5h): N
// independent StableHeap shards behind deterministic routing. A fixed
// global transaction budget is spread round-robin over the shards; each
// shard charges its own simulated clock, so elapsed time is the max over
// shards (perfect-parallelism model) and committed-txn throughput should
// scale near-linearly in the shard count at 0% cross-shard mix. Mixing in
// cross-shard transfers prices the presumed-abort 2PC path: one forced
// prepare per participant plus one forced coordinator decision per
// transaction, so scaling erodes gracefully as the mix grows. The same
// clusters then crash and reopen to measure parallel per-shard recovery:
// the serial cost is the sum of per-shard opens, the parallel cost the
// slowest shard.

#include "bench_util.h"
#include "shard/sharded_heap.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;

namespace {

constexpr uint64_t kTxns = 2048;     // global budget, all shard counts
constexpr uint64_t kAccounts = 64;   // per-shard bucket

ShardedHeapOptions Options(uint32_t shards) {
  ShardedHeapOptions opts;
  opts.shards = shards;
  opts.shard_options.stable_space_pages = 256;
  opts.shard_options.volatile_space_pages = 128;
  opts.shard_options.divided_heap = false;
  opts.parallel_open = true;
  return opts;
}

struct Lcg {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

struct RunResult {
  uint64_t committed = 0;
  uint64_t cross = 0;
  double elapsed_ms = 0;      // max over shard+coordinator clocks
  double throughput = 0;      // committed txns per simulated second
  double recovery_sum_ms = 0; // serial recovery: sum of per-shard opens
  double recovery_max_ms = 0; // parallel recovery: slowest shard
  LatencySummary latency;     // per-txn simulated latency digest
};

/// One grid cell: `shards` shards, `mix_permille`/1000 of transactions
/// cross-shard. Runs the budget, checks conservation, then crashes the
/// whole cluster (no write-back: every page redoes) and reopens it in
/// parallel to price recovery.
RunResult Run(uint32_t shards, uint32_t mix_permille) {
  std::vector<std::unique_ptr<SimEnv>> owned;
  std::vector<SimEnv*> envs;
  for (uint32_t i = 0; i < shards; ++i) {
    owned.push_back(std::make_unique<SimEnv>());
    envs.push_back(owned.back().get());
  }
  auto coord_env = std::make_unique<SimEnv>();
  auto heap =
      BENCH_VAL(ShardedHeap::Open(envs, coord_env.get(), Options(shards)));

  ClassId cls =
      BENCH_VAL(heap->RegisterClass(std::vector<bool>(kAccounts, false)));
  for (uint32_t s = 0; s < shards; ++s) {
    GTxnId txn = BENCH_VAL(heap->Begin());
    Ref g = BENCH_VAL(heap->AllocateOn(txn, s, cls, kAccounts));
    for (uint64_t a = 0; a < kAccounts; ++a) {
      BENCH_OK(heap->WriteScalar(txn, g, a, 100));
    }
    BENCH_OK(heap->SetRoot(txn, s, g));
    BENCH_OK(heap->CommitSync(txn));
  }

  // Clock zero is after setup; the coordinator's clock counts too (its
  // decision forces are on the 2PC critical path).
  std::vector<uint64_t> start;
  for (SimEnv* e : envs) start.push_back(e->clock()->now_ns());
  const uint64_t coord_start = coord_env->clock()->now_ns();
  const ShardedHeapStats before = heap->stats();

  Lcg rng{12345 + shards * 131ull + mix_permille};
  std::vector<uint64_t> latencies;
  latencies.reserve(kTxns);
  for (uint64_t t = 0; t < kTxns; ++t) {
    const uint32_t primary = static_cast<uint32_t>(t % shards);
    const bool cross = shards > 1 && (rng.Next() % 1000) < mix_permille;
    const uint32_t other =
        cross ? (primary + 1 + static_cast<uint32_t>(rng.Next()) %
                                   (shards - 1)) %
                    shards
              : primary;
    const uint64_t from = rng.Next() % kAccounts;
    const uint64_t to = rng.Next() % kAccounts;

    // Per-txn latency: the time this transaction adds to the clocks on its
    // critical path (participant shards + the coordinator for 2PC).
    const uint64_t t0 = envs[primary]->clock()->now_ns() +
                        (cross ? envs[other]->clock()->now_ns() : 0) +
                        coord_env->clock()->now_ns();
    GTxnId txn = BENCH_VAL(heap->Begin());
    GRef fb = BENCH_VAL(heap->GetRoot(txn, primary));
    GRef tb = cross ? BENCH_VAL(heap->GetRoot(txn, other)) : fb;
    const uint64_t fbal = BENCH_VAL(heap->ReadScalar(txn, fb, from));
    const uint64_t tbal = BENCH_VAL(heap->ReadScalar(txn, tb, to));
    if (fb == tb && from == to) {
      BENCH_OK(heap->WriteScalar(txn, fb, from, fbal));
    } else {
      BENCH_OK(heap->WriteScalar(txn, fb, from, fbal - 1));
      BENCH_OK(heap->WriteScalar(txn, tb, to, tbal + 1));
    }
    BENCH_OK(heap->CommitSync(txn));
    const uint64_t t1 = envs[primary]->clock()->now_ns() +
                        (cross ? envs[other]->clock()->now_ns() : 0) +
                        coord_env->clock()->now_ns();
    latencies.push_back(t1 - t0);
  }

  RunResult r;
  r.latency = Summarize(std::move(latencies));
  const ShardedHeapStats after = heap->stats();
  r.committed = (after.single_shard_commits + after.cross_shard_commits) -
                (before.single_shard_commits + before.cross_shard_commits);
  r.cross = after.cross_shard_commits - before.cross_shard_commits;
  uint64_t elapsed = coord_env->clock()->now_ns() - coord_start;
  for (uint32_t s = 0; s < shards; ++s) {
    elapsed = std::max(elapsed, envs[s]->clock()->now_ns() - start[s]);
  }
  r.elapsed_ms = Ms(elapsed);
  r.throughput = static_cast<double>(r.committed) /
                 (static_cast<double>(elapsed) / 1e9);

  // Conservation audit (one cross-shard read transaction).
  {
    uint64_t total = 0;
    GTxnId txn = BENCH_VAL(heap->Begin());
    for (uint32_t s = 0; s < shards; ++s) {
      GRef g = BENCH_VAL(heap->GetRoot(txn, s));
      for (uint64_t a = 0; a < kAccounts; ++a) {
        total += BENCH_VAL(heap->ReadScalar(txn, g, a));
      }
    }
    BENCH_OK(heap->CommitSync(txn));
    if (total != shards * kAccounts * 100ull) {
      std::fprintf(stderr, "balance not conserved\n");
      std::abort();
    }
  }

  // Crash with no write-back (every touched page redoes) and reopen in
  // parallel: the per-shard opens are measured on each shard's own clock,
  // so the stats expose both the serial cost (sum) and the parallel one
  // (slowest shard).
  BENCH_OK(heap->SimulateCrashAll(CrashOptions{0.0, 7, 0}));
  heap.reset();
  heap = BENCH_VAL(ShardedHeap::Open(envs, coord_env.get(), Options(shards)));
  const ShardedHeapStats rs = heap->stats();
  r.recovery_sum_ms = Ms(rs.open_ns_sum);
  r.recovery_max_ms = Ms(rs.open_ns_max);
  return r;
}

}  // namespace

int main() {
  JsonBench("sharded");
  Header("E16 sharded multi-heap scale-out",
         "committed-txn throughput scales near-linearly in the shard count "
         "at 0% cross-shard mix, erodes gracefully as 2PC traffic grows, "
         "and parallel per-shard recovery costs the slowest shard instead "
         "of the sum");
  Row("  %-7s %5s %10s %10s %12s %10s %10s", "shards", "mix%", "committed",
      "cross", "ktx/s(sim)", "rec-sum", "rec-max");

  const uint32_t kShardCounts[] = {1, 2, 4, 8};
  const uint32_t kMixes[] = {0, 10, 100};  // permille: 0%, 1%, 10%
  double thr[9][3] = {};                   // [shards][mix index]
  double rec_sum8 = 0, rec_max8 = 0;

  for (uint32_t shards : kShardCounts) {
    for (uint32_t mix : kMixes) {
      RunResult r = Run(shards, mix);
      thr[shards][mix == 0 ? 0 : (mix == 10 ? 1 : 2)] = r.throughput;
      Row("  %-7u %5.1f %10llu %10llu %12.1f %8.2fms %8.2fms", shards,
          mix / 10.0, (unsigned long long)r.committed,
          (unsigned long long)r.cross, r.throughput / 1000.0,
          r.recovery_sum_ms, r.recovery_max_ms);
      const std::string tag = std::to_string(shards) + "sh_" +
                              (mix == 0 ? "0" : mix == 10 ? "1" : "10") +
                              "pct";
      EmitMetric("throughput_txps_" + tag, r.throughput, "txn/s");
      EmitMetric("cross_shard_txns_" + tag, static_cast<double>(r.cross),
                 "txns");
      EmitMetric("recovery_sum_ms_" + tag, r.recovery_sum_ms, "ms");
      EmitMetric("recovery_max_ms_" + tag, r.recovery_max_ms, "ms");
      EmitLatency("txn_latency_" + tag, r.latency);
      if (shards == 8 && mix == 100) {
        rec_sum8 = r.recovery_sum_ms;
        rec_max8 = r.recovery_max_ms;
      }
    }
  }

  const double scale4 = thr[4][0] / thr[1][0];
  const double scale8 = thr[8][0] / thr[1][0];
  const double scale4_mix10 = thr[4][2] / thr[1][2];
  const double rec_speedup = rec_sum8 / rec_max8;
  Row("  scaling at 0%% mix: 4 shards %.2fx, 8 shards %.2fx", scale4,
      scale8);
  Row("  scaling at 10%% mix: 4 shards %.2fx", scale4_mix10);
  Row("  parallel recovery speedup at 8 shards: %.2fx", rec_speedup);
  EmitMetric("scaling_4sh_0pct", scale4, "x");
  EmitMetric("scaling_8sh_0pct", scale8, "x");
  EmitMetric("scaling_4sh_10pct", scale4_mix10, "x");
  EmitMetric("recovery_parallel_speedup_8sh", rec_speedup, "x");

  ShapeCheck(scale4 >= 3.0,
             "4 shards give >= 3x committed-txn throughput at 0% mix");
  ShapeCheck(scale8 > scale4, "8 shards beat 4 shards at 0% mix");
  ShapeCheck(thr[8][2] < thr[8][0],
             "10% cross-shard mix prices 2PC below the 0% fast path");
  ShapeCheck(thr[8][2] > thr[1][0],
             "even at 10% mix, 8 shards beat one shard");
  ShapeCheck(rec_speedup >= 4.0,
             "parallel recovery of 8 shards is >= 4x the serial sum");
  return Finish();
}
