// E8 — Tracking confines recovery and atomic-GC costs to stable objects
// (paper §1, §5): with the divided heap, transactions that touch only
// volatile state write (almost) nothing to the log; the cost of
// stability tracking and promotion is paid only for the fraction of
// objects that actually become stable. Sweep the published fraction.

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;
using workload::NodeClass;

int main() {
  Header("E8  cost vs fraction of objects that become stable",
         "log volume and promotion work scale with the stable fraction, "
         "not with total allocation; tracking touches only published "
         "closures");
  Row("  %-12s %12s %12s %14s %14s %12s", "stable-frac", "log(KiB)",
      "promoted", "tracked-words", "sim-time(ms)", "txns");

  constexpr uint64_t kTxns = 400;
  constexpr uint64_t kObjsPerTxn = 12;
  std::vector<double> log_kib;
  for (double frac : {0.0, 0.25, 0.5, 1.0}) {
    SimEnv env;
    StableHeapOptions opts;
    opts.stable_space_pages = 16384;
    opts.volatile_space_pages = 2048;
    opts.divided_heap = true;
    auto heap = std::move(*StableHeap::Open(&env, opts));
    NodeClass cls = BENCH_VAL(workload::RegisterNodeClass(heap.get(), 2));
    Rng rng(17);
    const uint64_t log_before = heap->log_volume().TotalBytes();
    const uint64_t t_before = env.clock()->now_ns();
    for (uint64_t i = 0; i < kTxns; ++i) {
      TxnId txn = BENCH_VAL(heap->Begin());
      Ref head = BENCH_VAL(
          workload::BuildList(heap.get(), txn, cls, kObjsPerTxn));
      if (rng.NextDouble() < frac) {
        BENCH_OK(heap->SetRoot(txn, i % 32, head));  // becomes stable
      }
      BENCH_OK(heap->Commit(txn));
    }
    const double kib =
        static_cast<double>(heap->log_volume().TotalBytes() - log_before) /
        1024;
    Row("  %-12.2f %12.1f %12llu %14llu %14.1f %12llu", frac, kib,
        (unsigned long long)heap->promotion_stats().objects_promoted,
        (unsigned long long)heap->tracker_stats().traversal_words,
        Ms(env.clock()->now_ns() - t_before), (unsigned long long)kTxns);
    log_kib.push_back(kib);
  }

  ShapeCheck(log_kib[0] * 5 < log_kib.back(),
             "volatile-only work writes >5x less log than all-stable work");
  bool monotone = true;
  for (size_t i = 1; i < log_kib.size(); ++i) {
    if (log_kib[i] < log_kib[i - 1]) monotone = false;
  }
  ShapeCheck(monotone, "log volume grows with the stable fraction");
  return Finish();
}
