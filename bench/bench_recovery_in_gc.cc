// E5 — Fast recovery even if a crash occurs during garbage collection
// (paper §3.5.3, §4.6): the checkpoint carries the collection state (flip,
// scan bitmap, Last Object Table), so a crash at any depth into a
// collection recovers in time bounded by the log since the checkpoint and
// the interrupted collection simply continues afterwards — recovery never
// traverses the heap or restarts the collection from scratch.

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;
using workload::NodeClass;

int main() {
  Header("E5  recovery work vs crash point inside a collection",
         "recovery stays O(log since checkpoint) wherever the crash lands; "
         "the collection resumes incrementally after recovery");
  Row("  %-16s %12s %12s %14s %12s", "crash-after", "recover(ms)",
      "records", "resumed-GC", "data-intact");

  const uint64_t live_words = 1ull << 19;  // 4 MiB
  bool all_flat = true;
  double first_ms = -1;

  for (uint64_t steps : {0u, 2u, 8u, 32u, 128u}) {
    auto env = std::make_unique<SimEnv>();
    StableHeapOptions opts;
    opts.stable_space_pages = 16384;
    opts.volatile_space_pages = 4096;
    opts.divided_heap = false;
    opts.buffer_pool_frames = 65536;
    auto heap = std::move(*StableHeap::Open(env.get(), opts));
    NodeClass cls = BENCH_VAL(workload::RegisterNodeClass(heap.get(), 2));
    PlantLiveData(heap.get(), cls, 0, live_words);
    BENCH_OK(heap->WriteBackPages(1.0, 5));
    BENCH_OK(heap->Checkpoint());

    uint64_t checksum;
    {
      TxnId t = BENCH_VAL(heap->Begin());
      Ref root = BENCH_VAL(heap->GetRoot(t, 0));
      checksum = BENCH_VAL(workload::GraphChecksum(heap.get(), t, root));
      BENCH_OK(heap->Commit(t));
    }

    BENCH_OK(heap->StartStableCollection());
    for (uint64_t s = 0; s < steps && heap->stable_gc()->collecting(); ++s) {
      BENCH_OK(heap->StepStableCollection(1));
    }
    BENCH_OK(heap->SimulateCrash(CrashOptions{0.5, steps + 1, 64}));
    heap.reset();

    heap = std::move(*StableHeap::Open(env.get(), opts));
    const double ms = Ms(heap->recovery_stats().sim_time_ns);
    const uint64_t records = heap->recovery_stats().analysis_records +
                             heap->recovery_stats().redo_records_seen +
                             heap->recovery_stats().undo_records;
    const bool resumed = heap->stable_gc()->collecting();
    BENCH_OK(heap->CollectStableFully());
    bool intact;
    {
      TxnId t = BENCH_VAL(heap->Begin());
      Ref root = BENCH_VAL(heap->GetRoot(t, 0));
      intact =
          BENCH_VAL(workload::GraphChecksum(heap.get(), t, root)) == checksum;
      BENCH_OK(heap->Commit(t));
    }
    char label[32];
    std::snprintf(label, sizeof label, "%llu steps",
                  (unsigned long long)steps);
    Row("  %-16s %12.2f %12llu %14s %12s", label, ms,
        (unsigned long long)records, resumed ? "continues" : "done/none",
        intact ? "yes" : "NO");
    if (first_ms < 0) first_ms = ms;
    // Recovery may grow with the number of GC records logged since the
    // checkpoint (that IS log-since-checkpoint), but must stay far below
    // anything heap-proportional; 128 steps scanned most of the 4 MiB heap,
    // so compare against the cold full-traversal cost scale (~seconds).
    if (!intact) all_flat = false;
  }

  ShapeCheck(all_flat, "data intact after crash at every collection depth");
  return Finish();
}
