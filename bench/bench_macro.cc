// E12 — Macro-measurements (paper §7.6.2): one end-to-end application
// workload (a CAD-editor session: build a shared design, edit transactions
// with scratch geometry, render traversals, periodic checkpoints) run under
// four system configurations:
//
//   all-stable + stop-the-world  — the earlier Kolodner-Liskov-Weihl system
//   all-stable + incremental     — Chapter 3/4 alone
//   divided    + incremental     — the full Chapter 5 design (move at commit)
//   divided    + incr. method-2  — §5.5 (defer move to the next volatile GC)
//
// The full design should win on total time and log volume while keeping the
// worst pause bounded.

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;
using workload::NodeClass;

namespace {

struct MacroResult {
  double sim_ms = 0;
  double max_pause_ms = 0;
  double log_kib = 0;
  uint64_t collections = 0;
  uint64_t promotions = 0;
};

MacroResult RunSession(bool divided, bool incremental,
                       PromotionMethod method) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 192;
  opts.volatile_space_pages = 48;
  opts.divided_heap = divided;
  opts.incremental_gc = incremental;
  opts.promotion_method = method;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  NodeClass cls = BENCH_VAL(workload::RegisterNodeClass(heap.get(), 4));
  Rng rng(97);

  const uint64_t start = env.clock()->now_ns();
  const uint64_t log_before = heap->log_volume().TotalBytes();

  // Build the shared design.
  (void)BENCH_VAL(workload::BuildCadDesign(heap.get(), cls, 0, 3, 4, 60,
                                           &rng));

  // The editing session: 1200 edit transactions, a render pass every 40,
  // a checkpoint every 100.
  for (uint64_t e = 0; e < 1200; ++e) {
    TxnId txn = BENCH_VAL(heap->Begin());
    Ref root = BENCH_VAL(heap->GetRoot(txn, 0));
    Ref node = root;
    for (int depth = 0; depth < 3; ++depth) {
      Ref child = BENCH_VAL(heap->ReadRef(txn, node, 1 + rng.Uniform(4)));
      if (child == kNullRef) break;
      node = child;
    }
    // Scratch geometry: a working sub-assembly of ~20 parts (usually
    // discarded at the end of the edit).
    Ref scratch = BENCH_VAL(heap->Allocate(txn, cls.id, cls.nslots));
    BENCH_OK(heap->WriteScalar(txn, scratch, 0, rng.Next()));
    Ref prev = scratch;
    for (int i = 0; i < 20; ++i) {
      Ref part = BENCH_VAL(heap->Allocate(txn, cls.id, cls.nslots));
      BENCH_OK(heap->WriteScalar(txn, part, 0, rng.Next()));
      BENCH_OK(heap->WriteRef(txn, prev, 1 + (i % 2), part));
      prev = part;
    }
    if (rng.Bernoulli(0.25)) {
      BENCH_OK(heap->WriteRef(txn, node, 1 + rng.Uniform(4), scratch));
    }
    if (rng.Bernoulli(0.1)) {
      BENCH_OK(heap->Abort(txn));
    } else {
      BENCH_OK(heap->Commit(txn));
    }
    if (e % 40 == 39) {
      TxnId t = BENCH_VAL(heap->Begin());
      Ref r = BENCH_VAL(heap->GetRoot(t, 0));
      (void)BENCH_VAL(workload::CountReachable(heap.get(), t, r));
      BENCH_OK(heap->Commit(t));
    }
    if (e % 100 == 99) {
      BENCH_OK(heap->Checkpoint());
      BENCH_OK(heap->WriteBackPages(0.5, e));
    }
  }

  MacroResult r;
  r.sim_ms = Ms(env.clock()->now_ns() - start);
  r.log_kib =
      static_cast<double>(heap->log_volume().TotalBytes() - log_before) /
      1024;
  r.max_pause_ms = Ms(std::max(heap->stable_gc_stats().max_pause_ns,
                               heap->volatile_gc_stats().max_pause_ns));
  r.collections = heap->stable_gc_stats().collections_completed +
                  heap->volatile_gc_stats().collections_completed;
  r.promotions = heap->promotion_stats().objects_promoted;
  return r;
}

}  // namespace

int main() {
  Header("E12  macro-measurements: a CAD editing session under four configs",
         "the full Chapter-5 design wins on time and log volume with a "
         "bounded worst pause; the old stop-the-world system pays long "
         "pauses; undivided heaps pay logging for scratch data");
  Row("  %-24s %10s %14s %10s %8s %10s", "configuration", "sim(ms)",
      "max-pause(ms)", "log(KiB)", "GCs", "promoted");

  MacroResult stw = RunSession(false, false, PromotionMethod::kAtCommit);
  MacroResult inc = RunSession(false, true, PromotionMethod::kAtCommit);
  MacroResult div1 = RunSession(true, true, PromotionMethod::kAtCommit);
  MacroResult div2 =
      RunSession(true, true, PromotionMethod::kAtNextVolatileGc);

  auto print = [](const char* name, const MacroResult& r) {
    Row("  %-24s %10.1f %14.2f %10.1f %8llu %10llu", name, r.sim_ms,
        r.max_pause_ms, r.log_kib, (unsigned long long)r.collections,
        (unsigned long long)r.promotions);
  };
  print("all-stable stop-world", stw);
  print("all-stable incremental", inc);
  print("divided (move@commit)", div1);
  print("divided (move@next-GC)", div2);

  ShapeCheck(div1.log_kib < stw.log_kib && div1.log_kib < inc.log_kib,
             "the divided heap writes the least log");
  ShapeCheck(div1.sim_ms <= stw.sim_ms && div1.sim_ms <= inc.sim_ms,
             "the divided heap is fastest end-to-end");
  ShapeCheck(div1.promotions == div2.promotions,
             "both promotion methods promote the same objects");
  return Finish();
}
