// E4 — Recovery time vs heap size (paper §1, §4.3, §8.2): this system's
// recovery reads the log since the checkpoint and undoes the losers — work
// independent of heap size. The earlier Argus recovery treated every crash
// like a media failure and rebuilt by traversing the whole stable object
// graph — work linear in the heap. The baseline column measures exactly
// that traversal (reading every live object through the buffer pool from a
// cold cache) on the same recovered heap.

#include "bench_util.h"

using namespace sheap;
using namespace sheap::bench;
using workload::NodeClass;

namespace {

struct RecResult {
  double ours_ms = 0;
  double argus_style_ms = 0;
  uint64_t log_bytes = 0;
  uint64_t records = 0;
};

RecResult RunOne(uint64_t live_words) {
  auto env = std::make_unique<SimEnv>();
  StableHeapOptions opts;
  opts.stable_space_pages = 32768;
  opts.volatile_space_pages = 8192;
  opts.divided_heap = false;
  opts.buffer_pool_frames = 65536;
  auto heap = std::move(*StableHeap::Open(env.get(), opts));
  NodeClass cls = BENCH_VAL(workload::RegisterNodeClass(heap.get(), 2));
  PlantLiveData(heap.get(), cls, 0, live_words);

  // Steady state: background writer has cleaned, then a checkpoint, then a
  // fixed amount of post-checkpoint work (identical across heap sizes).
  BENCH_OK(heap->WriteBackPages(1.0, 7));
  BENCH_OK(heap->Checkpoint());
  TxnId txn = BENCH_VAL(heap->Begin());
  Ref head = BENCH_VAL(heap->GetRoot(txn, 0));
  for (int i = 0; i < 50; ++i) {
    BENCH_OK(heap->WriteScalar(txn, head, 0, i));
  }
  BENCH_OK(heap->Commit(txn));
  TxnId loser = BENCH_VAL(heap->Begin());
  Ref head2 = BENCH_VAL(heap->GetRoot(loser, 1));
  BENCH_OK(heap->WriteScalar(loser, head2, 0, 1));

  BENCH_OK(heap->SimulateCrash(CrashOptions{0.5, 3, 128}));
  heap.reset();

  RecResult r;
  heap = std::move(*StableHeap::Open(env.get(), opts));
  r.ours_ms = Ms(heap->recovery_stats().sim_time_ns);
  r.log_bytes = heap->recovery_stats().log_bytes_read;
  r.records = heap->recovery_stats().analysis_records +
              heap->recovery_stats().redo_records_seen +
              heap->recovery_stats().undo_records;

  // Argus-style baseline [38]: traverse the whole stable graph from the
  // roots, cold cache (every page comes off the disk).
  heap->pool()->DropAll();
  const uint64_t start = env->clock()->now_ns();
  TxnId t = BENCH_VAL(heap->Begin());
  for (uint64_t slot = 0; slot < 16; ++slot) {
    Ref root = BENCH_VAL(heap->GetRoot(t, slot));
    if (root != kNullRef) {
      (void)BENCH_VAL(workload::CountReachable(heap.get(), t, root));
    }
  }
  BENCH_OK(heap->Commit(t));
  r.argus_style_ms = Ms(env->clock()->now_ns() - start);
  return r;
}

}  // namespace

int main() {
  Header("E4  recovery time vs heap size (fixed work since checkpoint)",
         "ours: O(log since checkpoint), flat in heap size; Argus-style "
         "full-graph traversal grows linearly");
  Row("  %-10s %12s %16s %12s %10s", "live(MiB)", "ours(ms)",
      "argus-style(ms)", "log-bytes", "records");

  std::vector<uint64_t> sizes_words = {1ull << 17,   // 1 MiB
                                       1ull << 19,   // 4 MiB
                                       1ull << 21};  // 16 MiB
  std::vector<double> ours, argus;
  for (uint64_t words : sizes_words) {
    RecResult r = RunOne(words);
    Row("  %-10.1f %12.2f %16.2f %12llu %10llu",
        static_cast<double>(words) * 8 / (1024 * 1024), r.ours_ms,
        r.argus_style_ms, (unsigned long long)r.log_bytes,
        (unsigned long long)r.records);
    ours.push_back(r.ours_ms);
    argus.push_back(r.argus_style_ms);
  }

  ShapeCheck(ours.back() < ours.front() * 2.5,
             "our recovery time is ~flat in heap size");
  ShapeCheck(argus.back() > argus.front() * 8,
             "Argus-style traversal grows ~linearly with the heap");
  ShapeCheck(ours.back() * 4 < argus.back(),
             "at 16 MiB our recovery beats the traversal by >4x");
  return Finish();
}
