// E4 — Recovery time vs heap size (paper §1, §4.3, §8.2): this system's
// recovery reads the log since the checkpoint and undoes the losers — work
// independent of heap size. The earlier Argus recovery treated every crash
// like a media failure and rebuilt by traversing the whole stable object
// graph — work linear in the heap. The baseline column measures exactly
// that traversal (reading every live object through the buffer pool from a
// cold cache) on the same recovered heap.

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;
using workload::NodeClass;

namespace {

struct RecResult {
  double ours_ms = 0;
  double argus_style_ms = 0;
  uint64_t log_bytes = 0;
  uint64_t records = 0;
};

RecResult RunOne(uint64_t live_words) {
  auto env = std::make_unique<SimEnv>();
  StableHeapOptions opts;
  opts.stable_space_pages = 32768;
  opts.volatile_space_pages = 8192;
  opts.divided_heap = false;
  opts.buffer_pool_frames = 65536;
  auto heap = std::move(*StableHeap::Open(env.get(), opts));
  NodeClass cls = BENCH_VAL(workload::RegisterNodeClass(heap.get(), 2));
  PlantLiveData(heap.get(), cls, 0, live_words);

  // Steady state: background writer has cleaned, then a checkpoint, then a
  // fixed amount of post-checkpoint work (identical across heap sizes).
  BENCH_OK(heap->WriteBackPages(1.0, 7));
  BENCH_OK(heap->Checkpoint());
  TxnId txn = BENCH_VAL(heap->Begin());
  Ref head = BENCH_VAL(heap->GetRoot(txn, 0));
  for (int i = 0; i < 50; ++i) {
    BENCH_OK(heap->WriteScalar(txn, head, 0, i));
  }
  BENCH_OK(heap->Commit(txn));
  TxnId loser = BENCH_VAL(heap->Begin());
  Ref head2 = BENCH_VAL(heap->GetRoot(loser, 1));
  BENCH_OK(heap->WriteScalar(loser, head2, 0, 1));

  BENCH_OK(heap->SimulateCrash(CrashOptions{0.5, 3, 128}));
  heap.reset();

  RecResult r;
  heap = std::move(*StableHeap::Open(env.get(), opts));
  r.ours_ms = Ms(heap->recovery_stats().sim_time_ns);
  r.log_bytes = heap->recovery_stats().log_bytes_read;
  r.records = heap->recovery_stats().analysis_records +
              heap->recovery_stats().redo_records_seen +
              heap->recovery_stats().undo_records;

  // Argus-style baseline [38]: traverse the whole stable graph from the
  // roots, cold cache (every page comes off the disk).
  heap->pool()->DropAll();
  const uint64_t start = env->clock()->now_ns();
  TxnId t = BENCH_VAL(heap->Begin());
  for (uint64_t slot = 0; slot < 16; ++slot) {
    Ref root = BENCH_VAL(heap->GetRoot(t, slot));
    if (root != kNullRef) {
      (void)BENCH_VAL(workload::CountReachable(heap.get(), t, root));
    }
  }
  BENCH_OK(heap->Commit(t));
  r.argus_style_ms = Ms(env->clock()->now_ns() - start);
  return r;
}

struct ParResult {
  double total_ms = 0;
  double analysis_ms = 0;
  double redo_ms = 0;
  uint64_t applied = 0;
  uint64_t partitions = 0;
  uint64_t segments = 0;
};

// Large-log parallel-redo config: ~kPages one-page objects held by a
// directory object, fully written back + checkpointed, then one update per
// object so the dirty-page table spans ~kPages cold pages at the crash.
ParResult RunParallel(uint32_t threads) {
  constexpr uint64_t kPages = 256;
  const uint64_t slots = kPageSizeBytes / kWordSizeBytes - 1;  // 1 page/object

  auto env = std::make_unique<SimEnv>();
  StableHeapOptions opts;
  opts.stable_space_pages = 8192;
  opts.volatile_space_pages = 2048;
  opts.divided_heap = false;
  opts.buffer_pool_frames = 65536;
  opts.recovery_threads = threads;
  auto heap = std::move(*StableHeap::Open(env.get(), opts));

  ClassId big =
      BENCH_VAL(heap->RegisterClass(std::vector<bool>(slots, false)));
  ClassId dir =
      BENCH_VAL(heap->RegisterClass(std::vector<bool>(kPages, true)));

  TxnId setup = BENCH_VAL(heap->Begin());
  Ref dref = BENCH_VAL(heap->AllocateStable(setup, dir, kPages));
  BENCH_OK(heap->SetRoot(setup, 0, dref));
  for (uint64_t i = 0; i < kPages; ++i) {
    Ref obj = BENCH_VAL(heap->AllocateStable(setup, big, slots));
    BENCH_OK(heap->WriteRef(setup, dref, i, obj));
  }
  BENCH_OK(heap->Commit(setup));

  BENCH_OK(heap->WriteBackPages(1.0, 5));
  BENCH_OK(heap->Checkpoint());

  // 32 updates per object: enough post-checkpoint log (~several 128 KiB
  // segments) for the streaming reader to prefetch ahead of the decode.
  TxnId txn = BENCH_VAL(heap->Begin());
  Ref d2 = BENCH_VAL(heap->GetRoot(txn, 0));
  for (uint64_t i = 0; i < kPages; ++i) {
    Ref obj = BENCH_VAL(heap->ReadRef(txn, d2, i));
    for (uint64_t k = 0; k < 32; ++k) {
      BENCH_OK(heap->WriteScalar(txn, obj, (i * 32 + k) % slots, i + k));
    }
  }
  BENCH_OK(heap->Commit(txn));

  // No page survives to disk: redo must fetch every touched page cold.
  BENCH_OK(heap->SimulateCrash(CrashOptions{0.0, 13, 0}));
  heap.reset();
  heap = std::move(*StableHeap::Open(env.get(), opts));

  const RecoveryStats& rs = heap->recovery_stats();
  ParResult r;
  r.total_ms = Ms(rs.sim_time_ns);
  r.analysis_ms = Ms(rs.analysis_ns);
  r.redo_ms = Ms(rs.redo_ns);
  r.applied = rs.redo_records_applied;
  r.partitions = rs.redo_partitions;
  r.segments = rs.log_segments_prefetched;
  return r;
}

}  // namespace

int main() {
  JsonBench("recovery");
  Header("E4  recovery time vs heap size (fixed work since checkpoint)",
         "ours: O(log since checkpoint), flat in heap size; Argus-style "
         "full-graph traversal grows linearly");
  Row("  %-10s %12s %16s %12s %10s", "live(MiB)", "ours(ms)",
      "argus-style(ms)", "log-bytes", "records");

  std::vector<uint64_t> sizes_words = {1ull << 17,   // 1 MiB
                                       1ull << 19,   // 4 MiB
                                       1ull << 21};  // 16 MiB
  std::vector<double> ours, argus;
  for (uint64_t words : sizes_words) {
    RecResult r = RunOne(words);
    const double mib = static_cast<double>(words) * 8 / (1024 * 1024);
    Row("  %-10.1f %12.2f %16.2f %12llu %10llu", mib, r.ours_ms,
        r.argus_style_ms, (unsigned long long)r.log_bytes,
        (unsigned long long)r.records);
    ours.push_back(r.ours_ms);
    argus.push_back(r.argus_style_ms);
    char name[64];
    std::snprintf(name, sizeof name, "recover_ms_%.0fMiB", mib);
    EmitMetric(name, r.ours_ms, "ms");
    std::snprintf(name, sizeof name, "argus_ms_%.0fMiB", mib);
    EmitMetric(name, r.argus_style_ms, "ms");
  }

  ShapeCheck(ours.back() < ours.front() * 2.5,
             "our recovery time is ~flat in heap size");
  ShapeCheck(argus.back() > argus.front() * 8,
             "Argus-style traversal grows ~linearly with the heap");
  ShapeCheck(ours.back() * 4 < argus.back(),
             "at 16 MiB our recovery beats the traversal by >4x");

  Header("E13 parallel partitioned redo (large log, ~256 cold dirty pages)",
         "page-hash-partitioned redo workers cut redo time near-linearly "
         "while the recovered heap stays byte-identical");
  Row("  %-8s %12s %14s %12s %10s %10s", "threads", "redo(ms)",
      "analysis(ms)", "total(ms)", "applied", "segments");
  ParResult serial = RunParallel(1);
  ParResult par = RunParallel(4);
  for (const ParResult* r : {&serial, &par}) {
    Row("  %-8llu %12.2f %14.2f %12.2f %10llu %10llu",
        (unsigned long long)r->partitions, r->redo_ms, r->analysis_ms,
        r->total_ms, (unsigned long long)r->applied,
        (unsigned long long)r->segments);
  }
  const double speedup = par.redo_ms > 0 ? serial.redo_ms / par.redo_ms : 0;
  Row("  redo speedup at 4 threads: %.2fx", speedup);
  EmitMetric("redo_ms_threads1", serial.redo_ms, "ms");
  EmitMetric("redo_ms_threads4", par.redo_ms, "ms");
  EmitMetric("total_ms_threads1", serial.total_ms, "ms");
  EmitMetric("total_ms_threads4", par.total_ms, "ms");
  EmitMetric("redo_speedup_4t", speedup, "x");
  EmitMetric("redo_applied", static_cast<double>(par.applied), "records");
  EmitMetric("log_segments_prefetched", static_cast<double>(par.segments),
             "segments");
  ShapeCheck(par.applied == serial.applied,
             "parallel redo applies exactly the serial record set");
  ShapeCheck(par.redo_ms * 2 <= serial.redo_ms,
             "4-thread redo is at least 2x faster than serial");
  ShapeCheck(par.segments == serial.segments,
             "streaming analysis prefetch is thread-count independent");
  return Finish();
}
