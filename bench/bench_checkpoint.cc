// E6 — Checkpoints shorten recovery and are cheap (paper §2.2.4): sweeping
// the checkpoint interval trades a tiny quiescent pause (spool one record,
// update the master pointer — no synchronous writes, no page flushes)
// against the length of the log recovery must read.

#include "bench_util.h"

using namespace sheap;
using namespace sheap::bench;
using workload::Bank;

int main() {
  Header("E6  checkpoint interval vs recovery time (and checkpoint cost)",
         "frequent cheap checkpoints keep recovery short; a checkpoint is "
         "one spooled record — no forces, no page flushes");
  Row("  %-18s %14s %14s %16s", "ckpt-interval", "recover(ms)",
      "log-read(KiB)", "ckpt-pause(us)");

  std::vector<double> recovery_ms;
  constexpr uint64_t kTransfers = 1600;
  for (uint64_t interval : {0u, 400u, 100u, 25u}) {  // 0 = never
    auto env = std::make_unique<SimEnv>();
    StableHeapOptions opts;
    opts.stable_space_pages = 8192;
    opts.volatile_space_pages = 2048;
    auto heap = std::move(*StableHeap::Open(env.get(), opts));
    Bank bank(heap.get(), 0);
    BENCH_OK(bank.Setup(256, 1000));
    BENCH_OK(heap->WriteBackPages(1.0, 3));

    double last_ckpt_pause_us = 0;
    Rng rng(9);
    for (uint64_t i = 0; i < kTransfers; ++i) {
      const uint64_t from = rng.Uniform(256);
      const uint64_t to = (from + 1 + rng.Uniform(255)) % 256;
      BENCH_OK(bank.Transfer(from, to, 1));
      if (interval != 0 && i % interval == interval - 1) {
        BENCH_OK(heap->Checkpoint());
        last_ckpt_pause_us =
            static_cast<double>(heap->checkpoint_stats().last_pause_ns) /
            1000.0;
        BENCH_OK(heap->WriteBackPages(1.0, i));  // background cleaning
      }
    }
    BENCH_OK(heap->SimulateCrash(CrashOptions{0.5, 11, 0}));
    heap.reset();
    heap = std::move(*StableHeap::Open(env.get(), opts));

    char label[32];
    if (interval == 0) {
      std::snprintf(label, sizeof label, "never");
    } else {
      std::snprintf(label, sizeof label, "every %llu txns",
                    (unsigned long long)interval);
    }
    Row("  %-18s %14.2f %14.1f %16.1f", label,
        Ms(heap->recovery_stats().sim_time_ns),
        static_cast<double>(heap->recovery_stats().log_bytes_read) / 1024,
        last_ckpt_pause_us);
    recovery_ms.push_back(Ms(heap->recovery_stats().sim_time_ns));
  }

  ShapeCheck(recovery_ms.back() * 3 < recovery_ms.front(),
             "frequent checkpoints cut recovery time by >3x vs none");
  bool monotone = true;
  for (size_t i = 1; i < recovery_ms.size(); ++i) {
    if (recovery_ms[i] > recovery_ms[i - 1] * 1.5) monotone = false;
  }
  ShapeCheck(monotone,
             "recovery time shrinks as checkpoints become more frequent");
  return Finish();
}
