// E6 — Checkpoints shorten recovery and are cheap (paper §2.2.4): sweeping
// the checkpoint interval trades a tiny quiescent pause (spool one record,
// update the master pointer — no synchronous writes, no page flushes)
// against the length of the log recovery must read.

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;
using workload::Bank;

namespace {

struct FlushResult {
  double pause_ms = 0;
  double recover_ms = 0;
  uint64_t flush_runs = 0;
  uint64_t write_backs = 0;
};

// Heavy (flush) checkpoint vs the paper's cheap one: dirty ~192 adjacent
// pages (one-page objects under a directory), checkpoint either way, crash
// with no background cleaning, measure the checkpoint pause and the
// recovery it buys. Adjacent dirty pages coalesce into a handful of
// single-seek run writes.
FlushResult RunFlushCompare(bool with_writeback) {
  constexpr uint64_t kPages = 192;
  const uint64_t slots = kPageSizeBytes / kWordSizeBytes - 1;

  auto env = std::make_unique<SimEnv>();
  StableHeapOptions opts;
  opts.stable_space_pages = 8192;
  opts.volatile_space_pages = 2048;
  opts.divided_heap = false;
  opts.buffer_pool_frames = 65536;
  opts.flush_writer_threads = 4;
  auto heap = std::move(*StableHeap::Open(env.get(), opts));

  ClassId big =
      BENCH_VAL(heap->RegisterClass(std::vector<bool>(slots, false)));
  ClassId dir =
      BENCH_VAL(heap->RegisterClass(std::vector<bool>(kPages, true)));
  TxnId setup = BENCH_VAL(heap->Begin());
  Ref dref = BENCH_VAL(heap->AllocateStable(setup, dir, kPages));
  BENCH_OK(heap->SetRoot(setup, 0, dref));
  for (uint64_t i = 0; i < kPages; ++i) {
    Ref obj = BENCH_VAL(heap->AllocateStable(setup, big, slots));
    BENCH_OK(heap->WriteRef(setup, dref, i, obj));
  }
  BENCH_OK(heap->Commit(setup));
  BENCH_OK(heap->WriteBackPages(1.0, 5));
  BENCH_OK(heap->Checkpoint());

  // Dirty one word in each page-sized object.
  TxnId txn = BENCH_VAL(heap->Begin());
  Ref d2 = BENCH_VAL(heap->GetRoot(txn, 0));
  for (uint64_t i = 0; i < kPages; ++i) {
    Ref obj = BENCH_VAL(heap->ReadRef(txn, d2, i));
    BENCH_OK(heap->WriteScalar(txn, obj, i % slots, i));
  }
  BENCH_OK(heap->Commit(txn));

  const uint64_t before = env->clock()->now_ns();
  BENCH_OK(with_writeback ? heap->CheckpointWithWriteback()
                          : heap->Checkpoint());
  FlushResult r;
  r.pause_ms = Ms(env->clock()->now_ns() - before);
  r.flush_runs = heap->stats().pool.flush_runs;
  r.write_backs = heap->stats().pool.write_backs;

  BENCH_OK(heap->SimulateCrash(CrashOptions{0.0, 17, 0}));
  heap.reset();
  heap = std::move(*StableHeap::Open(env.get(), opts));
  r.recover_ms = Ms(heap->recovery_stats().sim_time_ns);
  return r;
}

}  // namespace

int main() {
  JsonBench("checkpoint");
  Header("E6  checkpoint interval vs recovery time (and checkpoint cost)",
         "frequent cheap checkpoints keep recovery short; a checkpoint is "
         "one spooled record — no forces, no page flushes");
  Row("  %-18s %14s %14s %16s", "ckpt-interval", "recover(ms)",
      "log-read(KiB)", "ckpt-pause(us)");

  std::vector<double> recovery_ms;
  constexpr uint64_t kTransfers = 1600;
  for (uint64_t interval : {0u, 400u, 100u, 25u}) {  // 0 = never
    auto env = std::make_unique<SimEnv>();
    StableHeapOptions opts;
    opts.stable_space_pages = 8192;
    opts.volatile_space_pages = 2048;
    auto heap = std::move(*StableHeap::Open(env.get(), opts));
    Bank bank(heap.get(), 0);
    BENCH_OK(bank.Setup(256, 1000));
    BENCH_OK(heap->WriteBackPages(1.0, 3));

    double last_ckpt_pause_us = 0;
    Rng rng(9);
    for (uint64_t i = 0; i < kTransfers; ++i) {
      const uint64_t from = rng.Uniform(256);
      const uint64_t to = (from + 1 + rng.Uniform(255)) % 256;
      BENCH_OK(bank.Transfer(from, to, 1));
      if (interval != 0 && i % interval == interval - 1) {
        BENCH_OK(heap->Checkpoint());
        last_ckpt_pause_us =
            static_cast<double>(heap->checkpoint_stats().last_pause_ns) /
            1000.0;
        BENCH_OK(heap->WriteBackPages(1.0, i));  // background cleaning
      }
    }
    BENCH_OK(heap->SimulateCrash(CrashOptions{0.5, 11, 0}));
    heap.reset();
    heap = std::move(*StableHeap::Open(env.get(), opts));

    char label[32];
    if (interval == 0) {
      std::snprintf(label, sizeof label, "never");
    } else {
      std::snprintf(label, sizeof label, "every %llu txns",
                    (unsigned long long)interval);
    }
    Row("  %-18s %14.2f %14.1f %16.1f", label,
        Ms(heap->recovery_stats().sim_time_ns),
        static_cast<double>(heap->recovery_stats().log_bytes_read) / 1024,
        last_ckpt_pause_us);
    recovery_ms.push_back(Ms(heap->recovery_stats().sim_time_ns));
    char name[48];
    std::snprintf(name, sizeof name, "recover_ms_interval%llu",
                  (unsigned long long)interval);
    EmitMetric(name, recovery_ms.back(), "ms");
  }

  ShapeCheck(recovery_ms.back() * 3 < recovery_ms.front(),
             "frequent checkpoints cut recovery time by >3x vs none");
  bool monotone = true;
  for (size_t i = 1; i < recovery_ms.size(); ++i) {
    if (recovery_ms[i] > recovery_ms[i - 1] * 1.5) monotone = false;
  }
  ShapeCheck(monotone,
             "recovery time shrinks as checkpoints become more frequent");

  Header("E6b flush checkpoint (parallel coalesced writeback) vs cheap one",
         "a flush checkpoint pays run-coalesced parallel page writes up "
         "front and nearly empties the DPT; the cheap one stays ~free");
  Row("  %-16s %12s %14s %12s %12s", "kind", "pause(ms)", "recover(ms)",
      "flush-runs", "writebacks");
  FlushResult cheap = RunFlushCompare(false);
  FlushResult flush = RunFlushCompare(true);
  Row("  %-16s %12.2f %14.2f %12llu %12llu", "cheap", cheap.pause_ms,
      cheap.recover_ms, (unsigned long long)cheap.flush_runs,
      (unsigned long long)cheap.write_backs);
  Row("  %-16s %12.2f %14.2f %12llu %12llu", "flush", flush.pause_ms,
      flush.recover_ms, (unsigned long long)flush.flush_runs,
      (unsigned long long)flush.write_backs);
  EmitMetric("cheap_ckpt_pause_ms", cheap.pause_ms, "ms");
  EmitMetric("flush_ckpt_pause_ms", flush.pause_ms, "ms");
  EmitMetric("cheap_ckpt_recover_ms", cheap.recover_ms, "ms");
  EmitMetric("flush_ckpt_recover_ms", flush.recover_ms, "ms");
  EmitMetric("flush_runs", static_cast<double>(flush.flush_runs), "runs");
  EmitMetric("flush_write_backs", static_cast<double>(flush.write_backs),
             "pages");
  ShapeCheck(flush.recover_ms * 2 < cheap.recover_ms,
             "flush checkpoint cuts post-crash recovery by >2x");
  ShapeCheck(cheap.pause_ms * 2 < flush.pause_ms,
             "the cheap checkpoint stays much cheaper than the flush one");
  ShapeCheck(flush.flush_runs > 0 && flush.flush_runs < flush.write_backs,
             "writeback coalesced adjacent pages into fewer runs");
  return Finish();
}
