// E3 — Garbage-collection pauses vs live-heap size (paper §1, §3): a
// stop-the-world atomic collection pauses for the whole copy+scan (growing
// with the live set, the reason the earlier Kolodner-Liskov-Weihl collector
// does not scale); the incremental atomic collector's pauses are bounded by
// the flip (roots only) and per-step page scans.

#include "bench_util.h"

using namespace sheap;
using namespace sheap::bench;
using workload::NodeClass;

namespace {

struct PauseResult {
  double max_ms = 0;
  double mean_ms = 0;
  uint64_t pauses = 0;
};

PauseResult RunOne(bool incremental, uint64_t live_words) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 16384;
  opts.volatile_space_pages = 8192;
  opts.divided_heap = false;
  opts.incremental_gc = incremental;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  NodeClass cls = BENCH_VAL(workload::RegisterNodeClass(heap.get(), 2));
  PlantLiveData(heap.get(), cls, 0, live_words);
  heap->stable_gc_stats() = GcStats();  // measure the collection only

  if (incremental) {
    BENCH_OK(heap->StartStableCollection());
    // The mutator keeps working between steps (allocation-paced stepping);
    // here the driver steps explicitly with one page per step.
    while (heap->stable_gc()->collecting()) {
      BENCH_OK(heap->StepStableCollection(1));
    }
  } else {
    BENCH_OK(heap->CollectStableFully());
  }

  const GcStats& stats = heap->stable_gc_stats();
  PauseResult r;
  r.max_ms = Ms(stats.max_pause_ns);
  r.mean_ms = Ms(static_cast<uint64_t>(stats.MeanPauseNs()));
  r.pauses = stats.pause_count;
  return r;
}

}  // namespace

int main() {
  Header("E3  collection pauses vs live heap size",
         "stop-the-world pause grows with the live set; incremental pauses "
         "stay bounded (flip + single page scans)");
  Row("  %-10s %-12s %10s %12s %10s", "live(MiB)", "collector",
      "max(ms)", "mean(ms)", "pauses");

  std::vector<uint64_t> sizes_words = {1ull << 17,   // 1 MiB
                                       1ull << 19,   // 4 MiB
                                       1ull << 21};  // 16 MiB
  std::vector<double> stw_max, inc_max;
  for (uint64_t words : sizes_words) {
    PauseResult stw = RunOne(/*incremental=*/false, words);
    PauseResult inc = RunOne(/*incremental=*/true, words);
    const double mib = static_cast<double>(words) * 8 / (1024 * 1024);
    Row("  %-10.1f %-12s %10.2f %12.3f %10llu", mib, "stop-world",
        stw.max_ms, stw.mean_ms, (unsigned long long)stw.pauses);
    Row("  %-10.1f %-12s %10.2f %12.3f %10llu", mib, "incremental",
        inc.max_ms, inc.mean_ms, (unsigned long long)inc.pauses);
    stw_max.push_back(stw.max_ms);
    inc_max.push_back(inc.max_ms);
  }

  ShapeCheck(stw_max.back() > stw_max.front() * 8,
             "stop-the-world max pause grows ~linearly with live size");
  // The max incremental pause is bounded by flip cost + one page scan +
  // at most one log-buffer drain — a constant, independent of live size.
  ShapeCheck(inc_max.back() < 60.0,
             "incremental max pause is bounded (<60 ms) at every size");
  ShapeCheck(inc_max.back() * 10 < stw_max.back(),
             "incremental max pause << stop-the-world at 16 MiB");
  return Finish();
}
