// E3 — Garbage-collection pauses vs live-heap size (paper §1, §3): a
// stop-the-world atomic collection pauses for the whole copy+scan (growing
// with the live set, the reason the earlier Kolodner-Liskov-Weihl collector
// does not scale); the incremental atomic collector's pauses are bounded by
// the flip (roots only) and per-step page scans.

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;
using workload::NodeClass;

namespace {

struct PauseResult {
  double max_ms = 0;
  double mean_ms = 0;
  uint64_t pauses = 0;
};

PauseResult RunOne(bool incremental, uint64_t live_words) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 16384;
  opts.volatile_space_pages = 8192;
  opts.divided_heap = false;
  opts.incremental_gc = incremental;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  NodeClass cls = BENCH_VAL(workload::RegisterNodeClass(heap.get(), 2));
  PlantLiveData(heap.get(), cls, 0, live_words);
  heap->stable_gc_stats() = GcStats();  // measure the collection only

  if (incremental) {
    BENCH_OK(heap->StartStableCollection());
    // The mutator keeps working between steps (allocation-paced stepping);
    // here the driver steps explicitly with one page per step.
    while (heap->stable_gc()->collecting()) {
      BENCH_OK(heap->StepStableCollection(1));
    }
  } else {
    BENCH_OK(heap->CollectStableFully());
  }

  const GcStats& stats = heap->stable_gc_stats();
  PauseResult r;
  r.max_ms = Ms(stats.max_pause_ns);
  r.mean_ms = Ms(static_cast<uint64_t>(stats.MeanPauseNs()));
  r.pauses = stats.pause_count;
  return r;
}

struct ScanScale {
  double scan_ms = 0;          // executor scan-walk sim time (busiest lane)
  double gc_log_kib = 0;       // kGcCopy + kGcCopyBatch + kGcScan bytes
  double scan_log_kib = 0;     // kGcScan bytes alone
  uint64_t batch_records = 0;
  uint64_t scan_runs = 0;
  uint64_t sync_writes = 0;
};

/// One full collection of a wide fan-out live graph driven in 64-page
/// steps, with `threads` scan workers. Wide fan-out matters: scanning a
/// directory page copies hundreds of objects ahead of the scan, so fully
/// copied pages pile up behind the frontier for the executor to claim (a
/// linked list is the degenerate case — the scan chases the copy pointer
/// page by page and everything stays on the serial frontier path).
ScanScale RunScan(uint32_t threads, bool batch_records) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 16384;
  opts.volatile_space_pages = 8192;
  opts.divided_heap = false;
  opts.gc_threads = threads;
  opts.gc_batch_records = batch_records;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  // Three levels: pointer directories -> half-pointer mids -> scalar
  // leaves. Mid pages give the executor copy candidates (kGcCopyBatch);
  // leaf pages are translation-free (clean-run kGcScan).
  ClassId mid = BENCH_VAL(heap->RegisterClass(
      std::vector<bool>{true, true, true, true, false, false, false,
                        false}));
  for (uint64_t d = 0; d < 8; ++d) {
    TxnId txn = BENCH_VAL(heap->Begin());
    Ref dir = BENCH_VAL(heap->AllocateStable(txn, kClassPtrArray, 300));
    for (uint64_t i = 0; i < 300; ++i) {
      Ref m = BENCH_VAL(heap->AllocateStable(txn, mid, 8));
      for (uint64_t k = 0; k < 4; ++k) {
        Ref leaf =
            BENCH_VAL(heap->AllocateStable(txn, kClassDataArray, 12));
        BENCH_OK(heap->WriteScalar(txn, leaf, 0, d * 1000 + i + k));
        BENCH_OK(heap->WriteRef(txn, m, k, leaf));
      }
      BENCH_OK(heap->WriteRef(txn, dir, i, m));
    }
    BENCH_OK(heap->SetRoot(txn, d, dir));
    BENCH_OK(heap->Commit(txn));
  }
  heap->stable_gc_stats() = GcStats();
  LogVolumeStats before = heap->log_writer()->volume_stats();

  BENCH_OK(heap->StartStableCollection());
  while (heap->stable_gc()->collecting()) {
    BENCH_OK(heap->StepStableCollection(64));
  }

  const GcStats& stats = heap->stable_gc_stats();
  const LogVolumeStats& after = heap->log_writer()->volume_stats();
  auto delta = [&](RecordType t) {
    return static_cast<double>(after.For(t).bytes - before.For(t).bytes);
  };
  ScanScale r;
  r.scan_ms = Ms(stats.scan_phase_ns);
  r.scan_log_kib = delta(RecordType::kGcScan) / 1024;
  r.gc_log_kib = (delta(RecordType::kGcCopy) +
                  delta(RecordType::kGcCopyBatch) +
                  delta(RecordType::kGcScan)) /
                 1024;
  r.batch_records = stats.copy_batch_records;
  r.scan_runs = stats.scan_run_records;
  r.sync_writes = stats.sync_page_writes;
  return r;
}

}  // namespace

int main() {
  Header("E3  collection pauses vs live heap size",
         "stop-the-world pause grows with the live set; incremental pauses "
         "stay bounded (flip + single page scans)");
  Row("  %-10s %-12s %10s %12s %10s", "live(MiB)", "collector",
      "max(ms)", "mean(ms)", "pauses");

  std::vector<uint64_t> sizes_words = {1ull << 17,   // 1 MiB
                                       1ull << 19,   // 4 MiB
                                       1ull << 21};  // 16 MiB
  std::vector<double> stw_max, inc_max;
  for (uint64_t words : sizes_words) {
    PauseResult stw = RunOne(/*incremental=*/false, words);
    PauseResult inc = RunOne(/*incremental=*/true, words);
    const double mib = static_cast<double>(words) * 8 / (1024 * 1024);
    Row("  %-10.1f %-12s %10.2f %12.3f %10llu", mib, "stop-world",
        stw.max_ms, stw.mean_ms, (unsigned long long)stw.pauses);
    Row("  %-10.1f %-12s %10.2f %12.3f %10llu", mib, "incremental",
        inc.max_ms, inc.mean_ms, (unsigned long long)inc.pauses);
    stw_max.push_back(stw.max_ms);
    inc_max.push_back(inc.max_ms);
  }

  ShapeCheck(stw_max.back() > stw_max.front() * 8,
             "stop-the-world max pause grows ~linearly with live size");
  // The max incremental pause is bounded by flip cost + one page scan +
  // at most one log-buffer drain — a constant, independent of live size.
  ShapeCheck(inc_max.back() < 60.0,
             "incremental max pause is bounded (<60 ms) at every size");
  ShapeCheck(inc_max.back() * 10 < stw_max.back(),
             "incremental max pause << stop-the-world at 16 MiB");

  // E14 — parallel scan scaling + batched-record log volume (DESIGN.md
  // §5f): the scan phase parallelizes across workers with byte-identical
  // logs, and record batching shrinks the collection's log traffic.
  Header("E14  parallel scan scaling and batched GC records",
         "scan-phase sim time drops with workers (busiest-lane charge); "
         "kGcCopyBatch + clean-run kGcScan records shrink the log");
  Row("  %-10s %-10s %12s %12s %12s %10s", "threads", "batching",
      "scan(ms)", "gc-log(KiB)", "scan(KiB)", "runs");

  JsonBench("gc");
  ScanScale t1 = RunScan(1, true);
  ScanScale t2 = RunScan(2, true);
  ScanScale t4 = RunScan(4, true);
  ScanScale unbatched = RunScan(1, false);
  for (auto& [label, r] :
       std::initializer_list<std::pair<const char*, ScanScale&>>{
           {"1/on", t1}, {"2/on", t2}, {"4/on", t4}, {"1/off", unbatched}}) {
    Row("  %-10s %-10s %12.2f %12.1f %12.1f %10llu",
        std::string(label).substr(0, std::string(label).find('/')).c_str(),
        std::string(label).find("on") != std::string::npos ? "on" : "off",
        r.scan_ms, r.gc_log_kib, r.scan_log_kib,
        (unsigned long long)r.scan_runs);
  }

  EmitMetric("scan_ms_threads1", t1.scan_ms, "ms");
  EmitMetric("scan_ms_threads2", t2.scan_ms, "ms");
  EmitMetric("scan_ms_threads4", t4.scan_ms, "ms");
  EmitMetric("scan_speedup_threads4", t1.scan_ms / t4.scan_ms, "x");
  EmitMetric("gc_log_kib_batched", t1.gc_log_kib, "KiB");
  EmitMetric("gc_log_kib_unbatched", unbatched.gc_log_kib, "KiB");
  EmitMetric("gc_log_reduction", unbatched.gc_log_kib / t1.gc_log_kib, "x");
  EmitMetric("scan_log_kib_batched", t1.scan_log_kib, "KiB");
  EmitMetric("scan_log_kib_unbatched", unbatched.scan_log_kib, "KiB");
  EmitMetric("scan_log_reduction",
             unbatched.scan_log_kib / t1.scan_log_kib, "x");
  EmitMetric("copy_batch_records", static_cast<double>(t1.batch_records),
             "records");
  EmitMetric("sync_page_writes", static_cast<double>(t1.sync_writes),
             "writes");

  ShapeCheck(t1.scan_ms >= 2.0 * t4.scan_ms,
             "4 scan workers finish the scan phase >= 2x faster");
  ShapeCheck(t2.scan_ms < t1.scan_ms, "2 workers beat 1");
  ShapeCheck(t1.batch_records > 0, "batched copies actually happened");
  ShapeCheck(t1.scan_runs > 0, "clean-run scan records actually happened");
  ShapeCheck(unbatched.scan_log_kib > t1.scan_log_kib * 1.05,
             "clean-run merging measurably shrinks kGcScan volume");
  ShapeCheck(unbatched.gc_log_kib > t1.gc_log_kib,
             "batching shrinks total GC log volume");
  ShapeCheck(t1.sync_writes == 0 && t4.sync_writes == 0,
             "the WAL-mode collector never writes synchronously");
  ShapeCheck(t1.gc_log_kib == t4.gc_log_kib && t1.scan_log_kib ==
             t4.scan_log_kib,
             "log volume is identical at 1 and 4 workers");
  return Finish();
}
