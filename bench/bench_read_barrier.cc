// E2 — Read-barrier cost (paper §3.2.1): Ellis's page-protection barrier
// traps at most once per to-space page (each trap scanning a whole page);
// Baker's software barrier checks every reference and translates one slot
// at a time. Traversing the live graph immediately after a flip maximizes
// barrier activity.

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;
using workload::NodeClass;

namespace {

struct Result {
  uint64_t traps = 0;
  uint64_t pages_scanned = 0;
  uint64_t fast_hits = 0;
  uint64_t fast_misses = 0;
  double trap_cost_ms = 0;
  double traversal_ms = 0;
};

Result RunOne(GcBarrierMode mode, uint64_t live_words) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 8192;
  opts.volatile_space_pages = 4096;
  opts.divided_heap = false;  // Chapter 3/4 configuration
  opts.barrier_mode = mode;
  opts.gc_step_pages = 0;  // no background progress: only barrier activity
  auto heap = std::move(*StableHeap::Open(&env, opts));
  NodeClass cls = BENCH_VAL(workload::RegisterNodeClass(heap.get(), 2));
  PlantLiveData(heap.get(), cls, 0, live_words);

  BENCH_OK(heap->StartStableCollection());
  const uint64_t start = env.clock()->now_ns();
  // Traverse everything: the mutator touches every live object right after
  // the flip, the worst case for barrier activity.
  TxnId txn = BENCH_VAL(heap->Begin());
  for (uint64_t r = 0; r < 16; ++r) {
    Ref root = BENCH_VAL(heap->GetRoot(txn, r));
    if (root != kNullRef) {
      (void)BENCH_VAL(workload::CountReachable(heap.get(), txn, root));
    }
  }
  BENCH_OK(heap->Commit(txn));
  Result result;
  result.traversal_ms = Ms(env.clock()->now_ns() - start);
  result.traps = heap->stable_gc_stats().read_barrier_traps;
  result.pages_scanned = heap->stable_gc_stats().pages_scanned;
  result.fast_hits = heap->stable_gc_stats().read_barrier_fast_hits;
  result.fast_misses = heap->stable_gc_stats().read_barrier_fast_misses;
  result.trap_cost_ms =
      Ms(result.traps * env.clock()->model().trap_ns);
  BENCH_OK(heap->CollectStableFully());
  return result;
}

}  // namespace

int main() {
  Header("E2  read-barrier cost right after a flip (traversal of the live set)",
         "Ellis: at most ~1 trap per live page; Baker: a check per "
         "reference, far more (cheaper) translation events");
  Row("  %-10s %-8s %10s %12s %14s %14s", "live(KiB)", "mode", "traps",
      "pages-scan", "trap-cost(ms)", "traverse(ms)");

  std::vector<uint64_t> sizes = {64 * 128, 256 * 128, 1024 * 128};  // words
  uint64_t last_ellis_traps = 0, last_baker_traps = 0;
  uint64_t last_ellis_pages = 0;
  uint64_t last_ellis_hits = 0, last_ellis_misses = 0;
  for (uint64_t words : sizes) {
    Result ellis = RunOne(GcBarrierMode::kPageProtection, words);
    Result baker = RunOne(GcBarrierMode::kPerAccess, words);
    Row("  %-10llu %-8s %10llu %12llu %14.2f %14.2f",
        (unsigned long long)(words * 8 / 1024), "ellis",
        (unsigned long long)ellis.traps,
        (unsigned long long)ellis.pages_scanned, ellis.trap_cost_ms,
        ellis.traversal_ms);
    Row("  %-10llu %-8s %10llu %12llu %14.2f %14.2f",
        (unsigned long long)(words * 8 / 1024), "baker",
        (unsigned long long)baker.traps,
        (unsigned long long)baker.pages_scanned, baker.trap_cost_ms,
        baker.traversal_ms);
    last_ellis_traps = ellis.traps;
    last_ellis_pages = ellis.pages_scanned;
    last_baker_traps = baker.traps;
    last_ellis_hits = ellis.fast_hits;
    last_ellis_misses = ellis.fast_misses;
  }
  Row("  ellis fast path at %llu KiB: %llu cache hits, %llu misses "
      "(%.1f%% hit rate)",
      (unsigned long long)(sizes.back() * 8 / 1024),
      (unsigned long long)last_ellis_hits,
      (unsigned long long)last_ellis_misses,
      100.0 * static_cast<double>(last_ellis_hits) /
          static_cast<double>(last_ellis_hits + last_ellis_misses));

  ShapeCheck(last_ellis_traps <= last_ellis_pages + 2,
             "Ellis takes at most ~one trap per scanned page");
  ShapeCheck(last_baker_traps > last_ellis_traps * 2,
             "Baker triggers far more barrier events than Ellis");
  // The 4-entry direct-mapped cache fronting the scanned bitmap: a list
  // traversal touches a handful of pages per node (the node's own words
  // plus the neighbour it chases into), so the large majority of barrier
  // checks resolve in the cache and the bitmap is consulted only on the
  // first touch of a page per cache generation.
  ShapeCheck(last_ellis_hits > 3 * last_ellis_misses,
             "barrier fast-path cache absorbs the large majority of checks");
  ShapeCheck(last_ellis_misses >= last_ellis_traps,
             "every trap began as a cache miss");
  return Finish();
}
