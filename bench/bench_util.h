// Shared helpers for the experiment benchmarks (E1-E13, see DESIGN.md):
// paper-style tables over deterministic simulated time, plus "shape checks"
// that assert the qualitative claim each experiment reproduces.

#ifndef SHEAP_BENCH_BENCH_UTIL_H_
#define SHEAP_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/stable_heap.h"
#include "workload/graph_gen.h"
#include "workload/workloads.h"

namespace sheap::bench {

inline int g_shape_failures = 0;

// ------------------------------------------------------------ JSON output
//
// Machine-readable companion to the human tables: each bench names itself
// once (JsonBench), records metrics as it goes (EmitMetric), and Finish()
// writes BENCH_<name>.json to the working directory so runs can be diffed
// and tracked over time (see EXPERIMENTS.md).

struct BenchMetric {
  std::string name;
  double value;
  std::string unit;
  bool simulated;  // simulated time/counters vs wall-clock
};

inline std::string g_json_bench_name;
inline std::string g_json_clock = "sim";  // dominant clock: "sim" | "wall"
inline std::vector<BenchMetric> g_json_metrics;

inline void JsonBench(const char* name) { g_json_bench_name = name; }

/// Declare which clock the bench's headline numbers come from. Sim-time
/// benches (E1-E17) default to "sim"; wall-clock benches on the real
/// backend (E18) say JsonClock("wall"). Individual metrics still carry
/// their own `simulated` flag — this is the file-level stamp consumers
/// check before comparing runs across machines.
inline void JsonClock(const char* clock) { g_json_clock = clock; }

inline void EmitMetric(const std::string& name, double value,
                       const std::string& unit, bool simulated = true) {
  g_json_metrics.push_back(BenchMetric{name, value, unit, simulated});
}

inline void WriteJsonFile() {
  if (g_json_bench_name.empty()) return;
  const std::string path = "BENCH_" + g_json_bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"clock\": \"%s\",\n  \"metrics\": [\n",
               g_json_bench_name.c_str(), g_json_clock.c_str());
  for (size_t i = 0; i < g_json_metrics.size(); ++i) {
    const BenchMetric& m = g_json_metrics[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", "
                 "\"simulated\": %s}%s\n",
                 m.name.c_str(), m.value, m.unit.c_str(),
                 m.simulated ? "true" : "false",
                 i + 1 < g_json_metrics.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu metrics)\n", path.c_str(), g_json_metrics.size());
}

inline void Header(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void ShapeCheck(bool ok, const char* what) {
  std::printf("shape-check: %-58s %s\n", what, ok ? "PASS" : "FAIL");
  if (!ok) ++g_shape_failures;
}

inline int Finish() {
  WriteJsonFile();
  if (g_shape_failures > 0) {
    std::printf("\n%d shape check(s) FAILED\n", g_shape_failures);
    return 1;
  }
  std::printf("\nall shape checks passed\n");
  return 0;
}

#define BENCH_OK(expr)                                               \
  do {                                                               \
    ::sheap::Status _st = (expr);                                    \
    if (!_st.ok()) {                                                 \
      std::fprintf(stderr, "%s:%d: %s\n", __FILE__, __LINE__,        \
                   _st.ToString().c_str());                          \
      std::abort();                                                  \
    }                                                                \
  } while (0)

template <typename T>
T BenchValue(::sheap::StatusOr<T> v, const char* file, int line) {
  if (!v.ok()) {
    std::fprintf(stderr, "%s:%d: %s\n", file, line,
                 v.status().ToString().c_str());
    std::abort();
  }
  return std::move(*v);
}
#define BENCH_VAL(expr) ::sheap::bench::BenchValue((expr), __FILE__, __LINE__)

/// Build a committed tree of roughly `target_words` words under root
/// `root_index` (fanout-2 nodes, 4 words each incl. header).
inline void PlantLiveData(StableHeap* heap, const workload::NodeClass& cls,
                          uint64_t root_index, uint64_t target_words) {
  const uint64_t per_node = 1 + cls.nslots;
  // Spread the live set over 16 root slots, one committed list each.
  const uint64_t lists = 16;
  const uint64_t per_list =
      std::max<uint64_t>(1, target_words / (lists * per_node));
  for (uint64_t i = 0; i < lists; ++i) {
    TxnId txn = BENCH_VAL(heap->Begin());
    Ref head = BENCH_VAL(workload::BuildList(heap, txn, cls, per_list));
    BENCH_OK(heap->SetRoot(txn, root_index + i, head));
    BENCH_OK(heap->Commit(txn));
  }
}

inline double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

// ------------------------------------------------------- latency summary
//
// Percentile digest over per-operation latency samples (simulated ns).
// Shared by the benches that report tails (E16 recovery, E17 concurrent
// commits): nearest-rank percentiles over a sorted copy, so a digest is
// deterministic for a deterministic sample set.

struct LatencySummary {
  uint64_t count = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  double p999_ns = 0;
  double max_ns = 0;
};

inline LatencySummary Summarize(std::vector<uint64_t> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  auto pct = [&](double p) {
    // Nearest-rank: ceil(p * n) with 1-based ranks.
    size_t rank = static_cast<size_t>(p * static_cast<double>(samples.size()));
    if (rank * 1000 < static_cast<size_t>(p * 1000.0 * samples.size())) ++rank;
    if (rank == 0) rank = 1;
    if (rank > samples.size()) rank = samples.size();
    return static_cast<double>(samples[rank - 1]);
  };
  s.count = samples.size();
  s.p50_ns = pct(0.50);
  s.p99_ns = pct(0.99);
  s.p999_ns = pct(0.999);
  s.max_ns = static_cast<double>(samples.back());
  return s;
}

/// Emit a summary's percentiles as JSON metrics under `prefix` (e.g.
/// "commit_latency" -> commit_latency_p50_ms, _p99_ms, _p999_ms). Pass
/// simulated=false when the samples were measured with WallNowNs.
inline void EmitLatency(const std::string& prefix, const LatencySummary& s,
                        bool simulated = true) {
  EmitMetric(prefix + "_p50_ms", Ms(static_cast<uint64_t>(s.p50_ns)), "ms",
             simulated);
  EmitMetric(prefix + "_p99_ms", Ms(static_cast<uint64_t>(s.p99_ns)), "ms",
             simulated);
  EmitMetric(prefix + "_p999_ms", Ms(static_cast<uint64_t>(s.p999_ns)), "ms",
             simulated);
}

// ------------------------------------------------------- wall-clock time
//
// Real elapsed time for the real-backend benches (E18), where the cost
// being measured is hardware (fdatasync, SIGSEGV traps), not the analytic
// device model. Monotonic so machine clock steps can't corrupt a sample.

inline uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Scoped wall-clock stopwatch: elapsed_ns() at any point, and Lap() for
/// per-operation sample collection into a LatencySummary vector.
class WallTimer {
 public:
  WallTimer() : start_ns_(WallNowNs()), lap_ns_(start_ns_) {}
  uint64_t elapsed_ns() const { return WallNowNs() - start_ns_; }
  double elapsed_ms() const { return Ms(elapsed_ns()); }
  uint64_t Lap() {
    const uint64_t now = WallNowNs();
    const uint64_t d = now - lap_ns_;
    lap_ns_ = now;
    return d;
  }

 private:
  uint64_t start_ns_;
  uint64_t lap_ns_;
};

}  // namespace sheap::bench

#endif  // SHEAP_BENCH_BENCH_UTIL_H_
