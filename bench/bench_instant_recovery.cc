// E15 — time-to-first-transaction vs redo backlog (instant recovery, see
// src/recovery/instant_redo.h and DESIGN.md §5g): offline recovery pays the
// whole redo pass inside Open, so its time-to-first-transaction grows with
// the log since the checkpoint. With instant_recovery the heap opens right
// after analysis + undo and redoes pages on demand behind a per-page gate:
// the first transaction pays analysis plus a handful of on-demand page
// redos — roughly flat while the redo plan grows 8x.

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;

namespace {

constexpr uint64_t kObjects = 512;  // one-page objects under a directory

StableHeapOptions BaseOptions() {
  StableHeapOptions opts;
  opts.stable_space_pages = 8192;
  opts.volatile_space_pages = 2048;
  opts.divided_heap = false;
  opts.buffer_pool_frames = 65536;
  return opts;
}

/// Crashed image whose redo plan spans exactly `updated_pages` cold pages:
/// a fully written-back + checkpointed heap of one-page objects, then one
/// committed update to each of the first `updated_pages` objects, then a
/// crash with no write-back (every planned page must be fetched and
/// redone).
std::unique_ptr<SimEnv> BuildCrashed(const StableHeapOptions& opts,
                                     uint64_t updated_pages) {
  auto env = std::make_unique<SimEnv>();
  auto heap = std::move(*StableHeap::Open(env.get(), opts));
  const uint64_t slots = kPageSizeBytes / kWordSizeBytes - 1;
  ClassId big =
      BENCH_VAL(heap->RegisterClass(std::vector<bool>(slots, false)));
  ClassId dir =
      BENCH_VAL(heap->RegisterClass(std::vector<bool>(kObjects, true)));

  TxnId setup = BENCH_VAL(heap->Begin());
  Ref dref = BENCH_VAL(heap->AllocateStable(setup, dir, kObjects));
  BENCH_OK(heap->SetRoot(setup, 0, dref));
  for (uint64_t i = 0; i < kObjects; ++i) {
    Ref obj = BENCH_VAL(heap->AllocateStable(setup, big, slots));
    BENCH_OK(heap->WriteRef(setup, dref, i, obj));
  }
  BENCH_OK(heap->Commit(setup));
  BENCH_OK(heap->WriteBackPages(1.0, 5));
  BENCH_OK(heap->Checkpoint());

  TxnId txn = BENCH_VAL(heap->Begin());
  Ref d2 = BENCH_VAL(heap->GetRoot(txn, 0));
  for (uint64_t i = 0; i < updated_pages; ++i) {
    Ref obj = BENCH_VAL(heap->ReadRef(txn, d2, i));
    for (uint64_t k = 0; k < 8; ++k) {
      BENCH_OK(heap->WriteScalar(txn, obj, k, i + k));
    }
  }
  BENCH_OK(heap->Commit(txn));

  BENCH_OK(heap->SimulateCrash(CrashOptions{0.0, 13, 0}));
  heap.reset();
  return env;
}

struct Result {
  double ttft_ms = 0;     // open + first committed transaction
  double open_ms = 0;     // time_to_open_ns
  double drain_ms = 0;    // instant only: the remaining background drain
  uint64_t planned = 0;   // redo-plan pages pending at open
  uint64_t ondemand = 0;  // pages redone at first touch
  uint64_t applied = 0;   // redo records applied once converged
};

/// Open the crashed heap and run one transaction that reads an updated
/// object — the paper-style "first transaction after the crash".
Result RunOne(const StableHeapOptions& opts, uint64_t updated_pages) {
  std::unique_ptr<SimEnv> env = BuildCrashed(opts, updated_pages);
  const uint64_t start = env->clock()->now_ns();
  auto heap = std::move(*StableHeap::Open(env.get(), opts));

  Result r;
  r.open_ms = Ms(heap->recovery_stats().time_to_open_ns);
  r.planned = heap->recovery_stats().pending_pages;

  // Object 0 lives on the highest planned page (allocation runs downward),
  // which the ascending cooperative drain reaches last — this read is a
  // genuine first touch through the gate, not a page the Begin-time drain
  // batch already covered.
  TxnId txn = BENCH_VAL(heap->Begin());
  Ref d = BENCH_VAL(heap->GetRoot(txn, 0));
  Ref obj = BENCH_VAL(heap->ReadRef(txn, d, 0));
  uint64_t got = BENCH_VAL(heap->ReadScalar(txn, obj, 1));
  if (got != 1) {
    std::fprintf(stderr, "first transaction read stale data\n");
    std::abort();
  }
  BENCH_OK(heap->Commit(txn));
  r.ttft_ms = Ms(env->clock()->now_ns() - start);

  const uint64_t drain_start = env->clock()->now_ns();
  BENCH_OK(heap->DrainInstantRecovery());
  r.drain_ms = Ms(env->clock()->now_ns() - drain_start);
  const RecoveryStats rs = heap->recovery_stats();
  r.ondemand = rs.ondemand_pages;
  r.applied = rs.redo_records_applied;
  return r;
}

}  // namespace

int main() {
  JsonBench("instant_recovery");
  Header("E15 time-to-first-transaction vs redo backlog",
         "instant recovery opens after analysis and redoes pages on "
         "demand: first-transaction latency stays ~flat while the redo "
         "plan grows 8x; offline recovery pays the whole plan up front");
  Row("  %-8s %14s %14s %12s %12s %10s", "pages", "offline-ttft", "instant-ttft",
      "open(ms)", "drain(ms)", "ondemand");

  std::vector<double> offline_ttft, instant_ttft;
  uint64_t offline_applied = 0;
  uint64_t instant_applied = 0;
  uint64_t last_ondemand = 0;
  for (uint64_t pages : {32ull, 64ull, 128ull, 256ull}) {
    Result off = RunOne(BaseOptions(), pages);
    StableHeapOptions inst_opts = BaseOptions();
    inst_opts.instant_recovery = true;
    inst_opts.instant_drain_threads = 1;
    inst_opts.instant_drain_pages = 4;
    Result inst = RunOne(inst_opts, pages);

    Row("  %-8llu %14.3f %14.3f %12.3f %12.3f %10llu",
        (unsigned long long)pages, off.ttft_ms, inst.ttft_ms, inst.open_ms,
        inst.drain_ms, (unsigned long long)inst.ondemand);
    offline_ttft.push_back(off.ttft_ms);
    instant_ttft.push_back(inst.ttft_ms);
    offline_applied = off.applied;
    instant_applied = inst.applied;
    last_ondemand = inst.ondemand;

    char name[64];
    std::snprintf(name, sizeof name, "offline_ttft_ms_%llu",
                  (unsigned long long)pages);
    EmitMetric(name, off.ttft_ms, "ms");
    std::snprintf(name, sizeof name, "instant_ttft_ms_%llu",
                  (unsigned long long)pages);
    EmitMetric(name, inst.ttft_ms, "ms");
    std::snprintf(name, sizeof name, "instant_open_ms_%llu",
                  (unsigned long long)pages);
    EmitMetric(name, inst.open_ms, "ms");
    std::snprintf(name, sizeof name, "instant_drain_ms_%llu",
                  (unsigned long long)pages);
    EmitMetric(name, inst.drain_ms, "ms");
    EmitMetric("planned_pages_" + std::to_string(pages),
               static_cast<double>(inst.planned), "pages");
  }

  const double offline_growth = offline_ttft.back() / offline_ttft.front();
  const double instant_growth = instant_ttft.back() / instant_ttft.front();
  Row("  offline ttft growth over 8x backlog: %.2fx", offline_growth);
  Row("  instant ttft growth over 8x backlog: %.2fx", instant_growth);
  EmitMetric("offline_ttft_growth_8x", offline_growth, "x");
  EmitMetric("instant_ttft_growth_8x", instant_growth, "x");

  ShapeCheck(offline_growth > 3.0,
             "offline first-transaction latency grows with the backlog");
  ShapeCheck(instant_growth < 2.0,
             "instant first-transaction latency is ~flat over 8x backlog");
  ShapeCheck(instant_ttft.back() * 2 < offline_ttft.back(),
             "at 256 pending pages instant beats offline ttft by >2x");
  ShapeCheck(instant_applied == offline_applied,
             "drained instant redo applies exactly the offline record set");
  ShapeCheck(last_ondemand >= 1,
             "the first transaction redoes its page on demand");
  return Finish();
}
