// E18 — real-hardware backend (DESIGN.md §5j): the same heap, measured in
// wall-clock time on RealEnv (O_DIRECT page store, pwritev + fdatasync WAL,
// mmap/mprotect read barrier) instead of the analytic device model. Three
// questions, one per section:
//
//   1. Commit cost: what does an fdatasync per commit cost for real, and
//      how much of it does group commit amortize away? Grid: force-on-commit
//      vs group commit x {1, 4} mutator threads; wall-clock p50/p99/p999
//      per-transaction latency plus the device's fdatasync/pwritev counts.
//   2. Recovery: wall time to reopen after a crash (process state lost,
//      staged log bytes gone, pages cold) vs redo worker threads {1, 2, 4}.
//      On the simulator the parallel-redo win is modeled (E13); here the
//      threads are real and so is the speedup.
//   3. Read barrier: nanoseconds per mprotect SIGSEGV trap vs per software
//      bitmap probe, plus an incremental collection on both backends to
//      show the hardware mirror counts traps (GcStats.hw_barrier_traps)
//      without changing barrier *semantics* (same software trap count).
//
// Wall-clock numbers vary machine to machine — the JSON is stamped
// `"clock": "wall"` so trackers never diff it against sim-time runs — and
// the shape checks assert only machine-independent claims (fewer syncs
// under group commit, identical redo record sets, traps counted, a trap
// costing more than a plain load).
//
// `--smoke` shrinks every grid for CI; the full run is the E18 recorded in
// EXPERIMENTS.md.

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <thread>

#include "bench_util.h"
#include "storage/real_env.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;

namespace {

bool g_smoke = false;

// ----------------------------------------------------------- scratch dirs

std::filesystem::path ScratchRoot() {
  return std::filesystem::temp_directory_path() /
         ("sheap_bench_real." + std::to_string(::getpid()));
}

/// Fresh empty directory under the scratch root; wiped first so a rerun
/// never recovers a previous run's heap.
std::string FreshDir(const std::string& tag) {
  std::filesystem::path p = ScratchRoot() / tag;
  std::error_code ec;
  std::filesystem::remove_all(p, ec);
  std::filesystem::create_directories(p, ec);
  return p.string();
}

std::unique_ptr<RealEnv> OpenRealEnv(const std::string& tag,
                                     bool hardware_barrier = true) {
  RealEnvOptions ropts;
  ropts.dir = FreshDir(tag);
  ropts.hardware_barrier = hardware_barrier;
  return BENCH_VAL(RealEnv::Create(ropts));
}

/// Commit with the group-commit Busy retry protocol (same as E17), but
/// with a short real sleep between polls: on wall clock a tight spin would
/// close batches in microseconds, before any concurrent committer can
/// join. Sleeping makes the poll-count deadline scale with waiter count —
/// a lone leader waits ~150us for company; a filling batch closes fast.
void CommitRetry(StableHeap* heap, TxnId txn) {
  for (;;) {
    Status st = heap->Commit(txn);
    if (st.ok()) return;
    if (!st.IsBusy()) {
      std::fprintf(stderr, "commit failed: %s\n", st.ToString().c_str());
      std::abort();
    }
    ::usleep(10);
  }
}

struct Lcg {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

// --------------------------------------------- 1. commit latency sweep

struct CommitResult {
  uint64_t committed = 0;
  double elapsed_ms = 0;       // wall, start of first txn to last join
  double throughput = 0;       // committed txns per wall second
  LatencySummary latency;      // per-txn wall time, Begin to commit-OK
  uint64_t fdatasyncs = 0;
  uint64_t writev_batches = 0;
  uint64_t forces = 0;
};

/// One grid cell: `threads` mutators doing account transfers, each commit
/// durable before OK (force per commit, or a shared group-commit force).
CommitResult RunCommit(bool group, uint32_t threads) {
  const uint64_t txns_per_thread = g_smoke ? 48 : 384;
  constexpr uint64_t kAccounts = 32;

  auto env = OpenRealEnv(std::string("commit-") + (group ? "group" : "force") +
                         "-" + std::to_string(threads) + "t");
  StableHeapOptions opts;
  opts.stable_space_pages = 512;
  opts.volatile_space_pages = 128;
  opts.divided_heap = false;
  opts.mutator_threads = threads;
  opts.force_on_commit = !group;
  opts.group_commit = group;
  opts.group_commit_options.max_batch = 8;
  // Polls are wall-cheap here (the sim charge never sleeps a real thread),
  // so a leader must wait longer than E17's 4 polls for concurrent
  // committers to join its batch before it pays the fdatasync; see
  // CommitRetry for the paired inter-poll sleep.
  opts.group_commit_options.close_after_polls = 16;
  auto heap = BENCH_VAL(StableHeap::Open(env.get(), opts));

  ClassId acct_cls =
      BENCH_VAL(heap->RegisterClass(std::vector<bool>(kAccounts, false)));
  for (uint32_t t = 0; t < threads; ++t) {
    TxnId txn = BENCH_VAL(heap->Begin());
    Ref arr = BENCH_VAL(heap->Allocate(txn, acct_cls, kAccounts));
    for (uint64_t a = 0; a < kAccounts; ++a) {
      BENCH_OK(heap->WriteScalar(txn, arr, a, 100));
    }
    BENCH_OK(heap->SetRoot(txn, t, arr));
    CommitRetry(heap.get(), txn);
  }
  const LogDeviceStats log_before = env->log()->stats();

  std::vector<std::vector<uint64_t>> samples(threads);
  std::vector<uint64_t> lanes(threads, 0);  // sim lanes keep charges legal
  WallTimer wall;
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      SimClock::ThreadChargeScope lane(env->clock(), &lanes[t]);
      Lcg rng{7000 + t * 977ull};
      samples[t].reserve(txns_per_thread);
      for (uint64_t i = 0; i < txns_per_thread; ++i) {
        const uint64_t t0 = WallNowNs();
        TxnId txn = BENCH_VAL(heap->Begin());
        Ref arr = BENCH_VAL(heap->GetRoot(txn, t));
        const uint64_t from = rng.Next() % kAccounts;
        const uint64_t to = rng.Next() % kAccounts;
        const uint64_t fbal = BENCH_VAL(heap->ReadScalar(txn, arr, from));
        const uint64_t tbal = BENCH_VAL(heap->ReadScalar(txn, arr, to));
        if (from == to) {
          BENCH_OK(heap->WriteScalar(txn, arr, from, fbal));
        } else {
          BENCH_OK(heap->WriteScalar(txn, arr, from, fbal - 1));
          BENCH_OK(heap->WriteScalar(txn, arr, to, tbal + 1));
        }
        CommitRetry(heap.get(), txn);
        samples[t].push_back(WallNowNs() - t0);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  CommitResult r;
  r.elapsed_ms = wall.elapsed_ms();
  r.committed = threads * txns_per_thread;
  r.throughput =
      static_cast<double>(r.committed) / (wall.elapsed_ns() / 1e9);
  std::vector<uint64_t> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  r.latency = Summarize(std::move(all));
  const LogDeviceStats log_after = env->log()->stats();
  r.fdatasyncs = log_after.fdatasyncs - log_before.fdatasyncs;
  r.writev_batches = log_after.writev_batches - log_before.writev_batches;
  r.forces = log_after.forces - log_before.forces;
  return r;
}

// ------------------------------------------------ 2. recovery wall time

struct RecoverResult {
  double open_wall_ms = 0;   // full reopen: analysis + redo + undo
  double sim_ms = 0;         // the analytic model's opinion of the same run
  uint64_t redo_applied = 0;
  uint64_t reachable = 0;    // post-recovery audit
};

/// Crash a populated heap (process buffers and staged log bytes lost, pages
/// cold) and wall-time the reopen with `threads` redo workers. Each thread
/// count rebuilds the identical workload in a fresh directory, so the log
/// being replayed is the same modulo the thread count under test.
RecoverResult RunRecover(uint32_t threads) {
  const uint64_t pages = g_smoke ? 64 : 192;
  const uint64_t updates = g_smoke ? 8 : 32;
  const uint64_t slots = kPageSizeBytes / kWordSizeBytes - 1;  // 1 page/obj

  auto env = OpenRealEnv("recover-" + std::to_string(threads) + "t");
  StableHeapOptions opts;
  opts.stable_space_pages = 4096;
  opts.volatile_space_pages = 1024;
  opts.divided_heap = false;
  opts.buffer_pool_frames = 16384;
  opts.recovery_threads = threads;
  auto heap = BENCH_VAL(StableHeap::Open(env.get(), opts));

  ClassId big =
      BENCH_VAL(heap->RegisterClass(std::vector<bool>(slots, false)));
  ClassId dir =
      BENCH_VAL(heap->RegisterClass(std::vector<bool>(pages, true)));
  TxnId setup = BENCH_VAL(heap->Begin());
  Ref dref = BENCH_VAL(heap->AllocateStable(setup, dir, pages));
  BENCH_OK(heap->SetRoot(setup, 0, dref));
  for (uint64_t i = 0; i < pages; ++i) {
    Ref obj = BENCH_VAL(heap->AllocateStable(setup, big, slots));
    BENCH_OK(heap->WriteRef(setup, dref, i, obj));
  }
  BENCH_OK(heap->Commit(setup));
  BENCH_OK(heap->WriteBackPages(1.0, 5));
  BENCH_OK(heap->Checkpoint());

  TxnId txn = BENCH_VAL(heap->Begin());
  Ref d2 = BENCH_VAL(heap->GetRoot(txn, 0));
  for (uint64_t i = 0; i < pages; ++i) {
    Ref obj = BENCH_VAL(heap->ReadRef(txn, d2, i));
    for (uint64_t k = 0; k < updates; ++k) {
      BENCH_OK(heap->WriteScalar(txn, obj, (i * updates + k) % slots, i + k));
    }
  }
  BENCH_OK(heap->Commit(txn));

  // No page survives to the store: every redo page comes in cold.
  BENCH_OK(heap->SimulateCrash(CrashOptions{0.0, 13, 0}));
  heap.reset();

  WallTimer wall;
  heap = BENCH_VAL(StableHeap::Open(env.get(), opts));
  RecoverResult r;
  r.open_wall_ms = wall.elapsed_ms();
  r.sim_ms = Ms(heap->recovery_stats().sim_time_ns);
  r.redo_applied = heap->recovery_stats().redo_records_applied;

  // Audit: the committed update values survived the crash.
  TxnId a = BENCH_VAL(heap->Begin());
  Ref d3 = BENCH_VAL(heap->GetRoot(a, 0));
  for (uint64_t i = 0; i < pages; i += 7) {
    Ref obj = BENCH_VAL(heap->ReadRef(a, d3, i));
    const uint64_t got = BENCH_VAL(heap->ReadScalar(a, obj, (i * updates) % slots));
    if (got != i) {
      std::fprintf(stderr, "recovery audit: obj %llu slot value %llu != %llu\n",
                   (unsigned long long)i, (unsigned long long)got,
                   (unsigned long long)i);
      std::abort();
    }
    ++r.reachable;
  }
  BENCH_OK(heap->Commit(a));
  return r;
}

// ----------------------------------------- 3. read-barrier trap cost

struct TrapMicro {
  double trap_ns = 0;    // protected probe: SIGSEGV + handler + mprotect
  double probe_ns = 0;   // unprotected probe: a plain volatile load
  uint64_t traps = 0;
};

/// Micro-cost of one hardware trap vs one plain probe, on a standalone
/// mirror (no heap in the way).
TrapMicro RunTrapMicro() {
  const uint64_t n = g_smoke ? 256 : 2048;
  auto mapping = BENCH_VAL(RealMapping::Create(n));
  TrapMicro m;

  mapping->Protect(0, n);
  WallTimer protected_t;
  for (uint64_t pid = 0; pid < n; ++pid) {
    if (!mapping->Touch(pid)) {
      std::fprintf(stderr, "protected touch did not trap (pid %llu)\n",
                   (unsigned long long)pid);
      std::abort();
    }
  }
  m.trap_ns = static_cast<double>(protected_t.elapsed_ns()) / n;

  WallTimer plain_t;
  for (uint64_t pid = 0; pid < n; ++pid) {
    if (mapping->Touch(pid)) {
      std::fprintf(stderr, "unprotected touch trapped (pid %llu)\n",
                   (unsigned long long)pid);
      std::abort();
    }
  }
  m.probe_ns = static_cast<double>(plain_t.elapsed_ns()) / n;
  m.traps = mapping->trap_count();
  return m;
}

struct GcTraps {
  uint64_t sw_traps = 0;  // software barrier trap-branch entries
  uint64_t hw_traps = 0;  // real SIGSEGVs taken through the mirror
  uint64_t reachable = 0;
};

/// The same single-threaded workload on either backend: plant lists, flip
/// an incremental stable collection, then read through the barrier. On the
/// simulator hw_traps stays 0; on RealEnv every software trap that probes
/// a protected mirror page takes a real SIGSEGV first.
GcTraps RunGcWorkload(Env* env) {
  StableHeapOptions opts;
  opts.stable_space_pages = 512;
  opts.volatile_space_pages = 128;
  opts.divided_heap = false;
  opts.barrier_mode = GcBarrierMode::kPageProtection;
  auto heap = BENCH_VAL(StableHeap::Open(env, opts));
  workload::NodeClass cls =
      BENCH_VAL(workload::RegisterNodeClass(heap.get(), 2));
  for (uint32_t l = 0; l < 8; ++l) {
    TxnId txn = BENCH_VAL(heap->Begin());
    Ref head = BENCH_VAL(workload::BuildList(heap.get(), txn, cls, 96));
    BENCH_OK(heap->SetRoot(txn, l, head));
    BENCH_OK(heap->Commit(txn));
  }
  BENCH_OK(heap->StartStableCollection());

  GcTraps g;
  TxnId txn = BENCH_VAL(heap->Begin());
  for (uint32_t l = 0; l < 8; ++l) {
    Ref head = BENCH_VAL(heap->GetRoot(txn, l));
    g.reachable += BENCH_VAL(workload::CountReachable(heap.get(), txn, head));
  }
  BENCH_OK(heap->Commit(txn));
  BENCH_OK(heap->CollectStableFully());
  g.sw_traps = heap->stable_gc_stats().read_barrier_traps;
  g.hw_traps = heap->stable_gc_stats().hw_barrier_traps;
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  JsonBench("real");
  JsonClock("wall");

  Header("E18 real backend: commit latency vs sync batching (wall clock)",
         "an fdatasync per commit is the latency floor; group commit "
         "amortizes one sync over a batch, cutting syncs and tail latency");
  Row("  %-7s %8s %10s %12s %9s %9s %9s %8s %8s", "mode", "threads",
      "committed", "tx/s(wall)", "p50", "p99", "p999", "fsyncs", "writev");
  double syncs_per_txn[2] = {0, 0};  // [group] at 4 threads
  for (int group = 0; group <= 1; ++group) {
    for (uint32_t threads : {1u, 4u}) {
      CommitResult r = RunCommit(group == 1, threads);
      Row("  %-7s %8u %10llu %12.0f %7.3fms %7.3fms %7.3fms %8llu %8llu",
          group ? "group" : "force", threads, (unsigned long long)r.committed,
          r.throughput, Ms(static_cast<uint64_t>(r.latency.p50_ns)),
          Ms(static_cast<uint64_t>(r.latency.p99_ns)),
          Ms(static_cast<uint64_t>(r.latency.p999_ns)),
          (unsigned long long)r.fdatasyncs,
          (unsigned long long)r.writev_batches);
      if (threads == 4) {
        syncs_per_txn[group] =
            static_cast<double>(r.fdatasyncs) / r.committed;
      }
      const std::string tag = std::string(group ? "group" : "force") + "_" +
                              std::to_string(threads) + "t";
      EmitMetric("commit_throughput_txps_" + tag, r.throughput, "txn/s",
                 /*simulated=*/false);
      EmitLatency("commit_wall_" + tag, r.latency, /*simulated=*/false);
      EmitMetric("fdatasyncs_" + tag, static_cast<double>(r.fdatasyncs),
                 "count", /*simulated=*/false);
      EmitMetric("writev_batches_" + tag,
                 static_cast<double>(r.writev_batches), "count",
                 /*simulated=*/false);
    }
  }
  Row("  fdatasyncs per committed txn at 4 threads: force %.2f, group %.2f",
      syncs_per_txn[0], syncs_per_txn[1]);
  ShapeCheck(syncs_per_txn[1] < syncs_per_txn[0],
             "group commit issues fewer fdatasyncs per txn than force");
  ShapeCheck(syncs_per_txn[0] >= 0.99,
             "force-on-commit pays >= 1 fdatasync per txn");

  Header("E18 real backend: recovery wall time vs redo threads",
         "redo workers are real threads here; the partitioned redo win is "
         "wall-clock, not just modeled");
  Row("  %-8s %12s %12s %10s", "threads", "open(ms)", "sim(ms)", "applied");
  std::vector<RecoverResult> recs;
  for (uint32_t threads : {1u, 2u, 4u}) {
    RecoverResult r = RunRecover(threads);
    recs.push_back(r);
    Row("  %-8u %12.2f %12.2f %10llu", threads, r.open_wall_ms, r.sim_ms,
        (unsigned long long)r.redo_applied);
    const std::string tag = std::to_string(threads) + "t";
    EmitMetric("recover_open_wall_ms_" + tag, r.open_wall_ms, "ms",
               /*simulated=*/false);
    EmitMetric("recover_sim_ms_" + tag, r.sim_ms, "ms");
    EmitMetric("recover_redo_applied_" + tag,
               static_cast<double>(r.redo_applied), "records");
  }
  ShapeCheck(recs[1].redo_applied == recs[0].redo_applied &&
                 recs[2].redo_applied == recs[0].redo_applied,
             "every thread count replays the identical redo record set");
  ShapeCheck(recs[0].open_wall_ms > 0, "recovery wall time was measured");

  Header("E18 real backend: mprotect trap cost vs software probe",
         "one hardware trap (SIGSEGV + handler + mprotect) costs microseconds "
         "where the software bitmap probe costs nanoseconds — the paper's "
         "case for at most one trap per page");
  TrapMicro m = RunTrapMicro();
  Row("  per-trap:  %10.0f ns   (n=%llu, all SIGSEGV)", m.trap_ns,
      (unsigned long long)m.traps);
  Row("  per-probe: %10.1f ns   (unprotected load)", m.probe_ns);
  EmitMetric("mprotect_trap_ns", m.trap_ns, "ns", /*simulated=*/false);
  EmitMetric("unprotected_probe_ns", m.probe_ns, "ns", /*simulated=*/false);
  ShapeCheck(m.trap_ns > m.probe_ns,
             "a hardware trap costs more than a plain probe");

  auto sim_env = std::make_unique<SimEnv>();
  GcTraps sim_g = RunGcWorkload(sim_env.get());
  auto real_env = OpenRealEnv("gc-traps");
  GcTraps real_g = RunGcWorkload(real_env.get());
  Row("  incremental collection, software traps: sim %llu, real %llu; "
      "hardware traps: sim %llu, real %llu",
      (unsigned long long)sim_g.sw_traps, (unsigned long long)real_g.sw_traps,
      (unsigned long long)sim_g.hw_traps, (unsigned long long)real_g.hw_traps);
  EmitMetric("gc_sw_traps_sim", static_cast<double>(sim_g.sw_traps), "count");
  EmitMetric("gc_sw_traps_real", static_cast<double>(real_g.sw_traps),
             "count", /*simulated=*/false);
  EmitMetric("gc_hw_traps_real", static_cast<double>(real_g.hw_traps),
             "count", /*simulated=*/false);
  ShapeCheck(sim_g.sw_traps > 0, "the workload exercises the read barrier");
  ShapeCheck(real_g.sw_traps == sim_g.sw_traps,
             "hardware mirror leaves barrier semantics unchanged");
  ShapeCheck(real_g.hw_traps > 0 && sim_g.hw_traps == 0,
             "real SIGSEGV traps are counted only on the real backend");
  ShapeCheck(real_g.reachable == sim_g.reachable,
             "both backends see the same reachable object count");

  std::error_code ec;
  std::filesystem::remove_all(ScratchRoot(), ec);
  return Finish();
}
