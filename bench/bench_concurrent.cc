// E17 — true concurrent mutators (DESIGN.md §5i): N OS threads drive
// Begin/Read/Write/Commit against one StableHeap. Each thread owns a
// disjoint account array (low contention), runs inside a SimClock lane
// (ThreadChargeScope), and commits through the lock-free group-commit
// queue with the Busy retry protocol. Elapsed time is the longest lane
// (perfect-parallelism model, as E16 does across shards), so the modeled
// win is real amortization, not free parallelism: a batch leader pays the
// full 8 ms log force into its own lane, and concurrency helps exactly
// insofar as batches fill faster and forces land in different lanes.
// Thread scheduling perturbs the numbers run to run (the concurrency
// contract is serializability + invariants, not byte determinism), so the
// shape checks assert the scaling claim with a wide margin.
//
// Grid: 1/2/4/8 mutator threads, with and without a concurrent stable
// collection (flipped before the measured loop; thread 0 steps it between
// transactions, other threads hit the read barrier through the shared
// gate). After each run: per-array balance conservation, gate handshake
// stats, and a full collection + re-audit to prove the heap is intact.

#include <thread>

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;

namespace {

constexpr uint64_t kTxnsPerThread = 192;
constexpr uint64_t kAccounts = 32;    // slots per thread-owned array
constexpr uint64_t kInitBalance = 100;
constexpr uint32_t kMaxThreadsInGrid = 8;

StableHeapOptions Options(uint32_t threads) {
  StableHeapOptions opts;
  opts.stable_space_pages = 512;
  opts.volatile_space_pages = 128;
  opts.divided_heap = false;
  opts.mutator_threads = threads;
  opts.group_commit = true;
  opts.group_commit_options.max_batch = 8;
  // Mutator lanes freeze the global clock, so the deadline for an
  // under-full batch is poll-count based in every mode.
  opts.group_commit_options.close_after_polls = 4;
  return opts;
}

/// Commit with the group-commit Busy retry protocol.
void CommitRetry(StableHeap* heap, TxnId txn) {
  for (;;) {
    Status st = heap->Commit(txn);
    if (st.ok()) return;
    if (!st.IsBusy()) {
      std::fprintf(stderr, "commit failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
}

struct Lcg {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

struct RunResult {
  uint64_t committed = 0;
  double elapsed_ms = 0;   // longest mutator lane
  double throughput = 0;   // committed txns per simulated second
  LatencySummary latency;  // per-txn lane time, Begin to durable commit
  uint64_t handshakes = 0;
  uint64_t traps = 0;
};

/// One grid cell: `threads` mutator threads, optionally racing an
/// in-flight incremental stable collection.
RunResult Run(uint32_t threads, bool concurrent_gc) {
  auto env = std::make_unique<SimEnv>();
  auto heap = BENCH_VAL(StableHeap::Open(env.get(), Options(threads)));

  // Setup (single-threaded): one account array per thread under root t,
  // plus committed list data so a collection has live objects to copy and
  // the read barrier real pages to trap on.
  ClassId acct_cls =
      BENCH_VAL(heap->RegisterClass(std::vector<bool>(kAccounts, false)));
  workload::NodeClass node_cls =
      BENCH_VAL(workload::RegisterNodeClass(heap.get(), 2));
  for (uint32_t t = 0; t < threads; ++t) {
    TxnId txn = BENCH_VAL(heap->Begin());
    Ref arr = BENCH_VAL(heap->Allocate(txn, acct_cls, kAccounts));
    for (uint64_t a = 0; a < kAccounts; ++a) {
      BENCH_OK(heap->WriteScalar(txn, arr, a, kInitBalance));
    }
    BENCH_OK(heap->SetRoot(txn, t, arr));
    CommitRetry(heap.get(), txn);
  }
  for (uint32_t l = 0; l < 8; ++l) {
    TxnId txn = BENCH_VAL(heap->Begin());
    Ref head =
        BENCH_VAL(workload::BuildList(heap.get(), txn, node_cls, 48));
    BENCH_OK(heap->SetRoot(txn, kMaxThreadsInGrid + l, head));
    CommitRetry(heap.get(), txn);
  }
  if (concurrent_gc) {
    BENCH_OK(heap->StartStableCollection());
  }
  const uint64_t traps_before = heap->stable_gc_stats().read_barrier_traps;
  const uint64_t handshakes_before = heap->gate_stats().handshakes;

  // Measured phase: each thread transfers between two accounts of its own
  // array. Thread 0 additionally steps the collector every 16 transactions
  // (stepping takes the gate exclusively; everyone else handshakes).
  std::vector<uint64_t> lanes(threads, 0);
  std::vector<std::vector<uint64_t>> samples(threads);
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      SimClock::ThreadChargeScope lane(env->clock(), &lanes[t]);
      Lcg rng{9000 + t * 977ull};
      samples[t].reserve(kTxnsPerThread);
      for (uint64_t i = 0; i < kTxnsPerThread; ++i) {
        const uint64_t t0 = lanes[t];
        TxnId txn = BENCH_VAL(heap->Begin());
        Ref arr = BENCH_VAL(heap->GetRoot(txn, t));
        const uint64_t from = rng.Next() % kAccounts;
        const uint64_t to = rng.Next() % kAccounts;
        const uint64_t fbal = BENCH_VAL(heap->ReadScalar(txn, arr, from));
        const uint64_t tbal = BENCH_VAL(heap->ReadScalar(txn, arr, to));
        if (from == to) {
          BENCH_OK(heap->WriteScalar(txn, arr, from, fbal));
        } else {
          BENCH_OK(heap->WriteScalar(txn, arr, from, fbal - 1));
          BENCH_OK(heap->WriteScalar(txn, arr, to, tbal + 1));
        }
        CommitRetry(heap.get(), txn);
        samples[t].push_back(lanes[t] - t0);
        if (concurrent_gc && t == 0 && i % 16 == 15) {
          BENCH_OK(heap->StepStableCollection(1));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  RunResult r;
  r.committed = threads * kTxnsPerThread;
  uint64_t elapsed = 0;
  std::vector<uint64_t> all_samples;
  for (uint32_t t = 0; t < threads; ++t) {
    elapsed = std::max(elapsed, lanes[t]);
    all_samples.insert(all_samples.end(), samples[t].begin(),
                       samples[t].end());
  }
  r.elapsed_ms = Ms(elapsed);
  r.throughput = static_cast<double>(r.committed) /
                 (static_cast<double>(elapsed) / 1e9);
  r.latency = Summarize(std::move(all_samples));
  r.handshakes = heap->gate_stats().handshakes - handshakes_before;
  r.traps = heap->stable_gc_stats().read_barrier_traps - traps_before;

  // Post-run invariants (single-threaded again): every array conserved its
  // balance, and the heap survives a full collection with them intact.
  auto audit = [&]() {
    for (uint32_t t = 0; t < threads; ++t) {
      TxnId txn = BENCH_VAL(heap->Begin());
      Ref arr = BENCH_VAL(heap->GetRoot(txn, t));
      uint64_t total = 0;
      for (uint64_t a = 0; a < kAccounts; ++a) {
        total += BENCH_VAL(heap->ReadScalar(txn, arr, a));
      }
      CommitRetry(heap.get(), txn);
      if (total != kAccounts * kInitBalance) {
        std::fprintf(stderr, "thread %u balance not conserved\n", t);
        std::abort();
      }
    }
  };
  audit();
  BENCH_OK(heap->CollectStableFully());
  audit();
  return r;
}

}  // namespace

int main() {
  JsonBench("concurrent");
  Header("E17 true concurrent mutators",
         "committed-txn throughput scales with mutator threads because "
         "group-commit batches fill faster and leader forces spread across "
         "lanes; an in-flight incremental collection costs traps and "
         "handshakes but preserves every invariant");
  Row("  %-7s %3s %10s %12s %9s %9s %9s %6s %6s", "threads", "gc",
      "committed", "ktx/s(sim)", "p50", "p99", "p999", "hshk", "traps");

  const uint32_t kThreadCounts[] = {1, 2, 4, 8};
  double thr[2][9] = {};  // [gc][threads]
  uint64_t traps4_gc = 0, handshakes4_gc = 0;

  for (int gc = 0; gc <= 1; ++gc) {
    for (uint32_t threads : kThreadCounts) {
      RunResult r = Run(threads, gc == 1);
      thr[gc][threads] = r.throughput;
      if (gc == 1 && threads == 4) {
        traps4_gc = r.traps;
        handshakes4_gc = r.handshakes;
      }
      Row("  %-7u %3s %10llu %12.2f %7.2fms %7.2fms %7.2fms %6llu %6llu",
          threads, gc ? "on" : "off", (unsigned long long)r.committed,
          r.throughput / 1000.0, Ms(static_cast<uint64_t>(r.latency.p50_ns)),
          Ms(static_cast<uint64_t>(r.latency.p99_ns)),
          Ms(static_cast<uint64_t>(r.latency.p999_ns)),
          (unsigned long long)r.handshakes, (unsigned long long)r.traps);
      const std::string tag =
          std::to_string(threads) + "t_gc" + (gc ? "on" : "off");
      EmitMetric("throughput_txps_" + tag, r.throughput, "txn/s");
      EmitMetric("elapsed_ms_" + tag, r.elapsed_ms, "ms");
      EmitLatency("commit_latency_" + tag, r.latency);
      EmitMetric("gate_handshakes_" + tag, static_cast<double>(r.handshakes),
                 "count");
      EmitMetric("read_barrier_traps_" + tag, static_cast<double>(r.traps),
                 "count");
    }
  }

  const double scale2 = thr[0][2] / thr[0][1];
  const double scale4 = thr[0][4] / thr[0][1];
  const double scale4_gc = thr[1][4] / thr[1][1];
  Row("  scaling, GC off: 2 threads %.2fx, 4 threads %.2fx", scale2, scale4);
  Row("  scaling, GC on:  4 threads %.2fx", scale4_gc);
  EmitMetric("scaling_2t_gcoff", scale2, "x");
  EmitMetric("scaling_4t_gcoff", scale4, "x");
  EmitMetric("scaling_4t_gcon", scale4_gc, "x");

  ShapeCheck(scale4 >= 2.5,
             "4 mutator threads give >= 2.5x committed-txn throughput");
  ShapeCheck(scale2 >= 1.5, "2 mutator threads give >= 1.5x");
  ShapeCheck(scale4_gc >= 2.0,
             "scaling survives a concurrent collection (>= 2x at 4)");
  ShapeCheck(traps4_gc > 0,
             "mutators hit the read barrier during the collection");
  ShapeCheck(handshakes4_gc > 0,
             "collector steps ran the gate handshake against live mutators");
  return Finish();
}
