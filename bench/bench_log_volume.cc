// E10 — Log volume of the atomic collector (paper §3.6 and the [R]
// reconstruction note in DESIGN.md): our copy records carry the object
// contents, so one collection logs roughly (bytes copied) + scan/flip
// overhead. The table breaks the collection's log traffic down by record
// type and reports bytes logged per byte copied across object sizes.
// Copy traffic arrives as per-object kGcCopy (serial frontier scans) plus
// coalesced kGcCopyBatch runs (the scan executor, DESIGN.md §5f); both
// count as copy bytes here.

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;

int main() {
  JsonBench("gc_log_volume");
  Header("E10  atomic-GC log volume per collection",
         "contents-carrying copy records cost ~1 byte of log per byte "
         "copied; scan records add a few words per translated pointer");
  Row("  %-12s %12s %12s %12s %12s %10s", "obj-words", "copied(KiB)",
      "copy(KiB)", "scan(KiB)", "total(KiB)", "ratio");

  for (uint64_t payload_slots : {2u, 16u, 128u}) {
    SimEnv env;
    StableHeapOptions opts;
    opts.stable_space_pages = 8192;
    opts.volatile_space_pages = 4096;
    opts.divided_heap = false;
    auto heap = std::move(*StableHeap::Open(&env, opts));
    // One pointer slot + payload scalars.
    std::vector<bool> map(1 + payload_slots, false);
    map[0] = true;
    ClassId cls = BENCH_VAL(heap->RegisterClass(map));

    // A committed chain of ~512 KiB total.
    const uint64_t per_node = 2 + payload_slots;
    const uint64_t nodes = 512 * 1024 / 8 / per_node;
    TxnId txn = BENCH_VAL(heap->Begin());
    Ref prev = kNullRef;
    for (uint64_t i = 0; i < nodes; ++i) {
      Ref node = BENCH_VAL(heap->Allocate(txn, cls, 1 + payload_slots));
      if (prev != kNullRef) BENCH_OK(heap->WriteRef(txn, node, 0, prev));
      prev = node;
    }
    BENCH_OK(heap->SetRoot(txn, 0, prev));
    BENCH_OK(heap->Commit(txn));

    LogVolumeStats before = heap->log_writer()->volume_stats();
    const uint64_t words_before = heap->stable_gc_stats().words_copied;
    BENCH_OK(heap->CollectStableFully());
    const LogVolumeStats& after = heap->log_writer()->volume_stats();

    const double copied_kib =
        static_cast<double>(heap->stable_gc_stats().words_copied -
                            words_before) *
        8 / 1024;
    const double copy_kib =
        static_cast<double>((after.For(RecordType::kGcCopy).bytes -
                             before.For(RecordType::kGcCopy).bytes) +
                            (after.For(RecordType::kGcCopyBatch).bytes -
                             before.For(RecordType::kGcCopyBatch).bytes)) /
        1024;
    const double scan_kib =
        static_cast<double>(after.For(RecordType::kGcScan).bytes -
                            before.For(RecordType::kGcScan).bytes) /
        1024;
    const double total_kib = copy_kib + scan_kib;
    Row("  %-12llu %12.1f %12.1f %12.1f %12.1f %10.2f",
        (unsigned long long)(1 + payload_slots), copied_kib, copy_kib,
        scan_kib, total_kib, total_kib / copied_kib);
    EmitMetric("ratio_slots" + std::to_string(1 + payload_slots),
               total_kib / copied_kib, "log-bytes/copied-byte");
    if (payload_slots == 128) {
      ShapeCheck(total_kib / copied_kib < 1.3,
                 "large objects: log overhead ratio approaches 1.0");
    }
    if (payload_slots == 2) {
      ShapeCheck(total_kib / copied_kib < 2.5,
                 "small pointer-dense objects: ratio stays bounded");
    }
  }
  return Finish();
}
