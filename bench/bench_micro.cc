// E1 — Micro-measurements (paper §7.6.1): the cost of the basic stable-heap
// operations, host wall time via google-benchmark plus the simulated-time
// cost model per operation. The paper's table compares stable-heap
// operations against their unlogged equivalents; the interesting ratios
// here are logged vs unlogged writes and forced vs group commit.

#include <benchmark/benchmark.h>

#include <cctype>
#include <memory>

#include "bench_util.h"
#include "core/stable_heap.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

struct Fixture {
  std::unique_ptr<SimEnv> env;
  std::unique_ptr<StableHeap> heap;
  ClassId cls = 0;
  TxnId txn = 0;
  Ref stable_obj = kNullRef;
  Ref volatile_obj = kNullRef;

  explicit Fixture(bool force_on_commit = true) {
    env = std::make_unique<SimEnv>();
    StableHeapOptions opts;
    opts.stable_space_pages = 4096;
    opts.volatile_space_pages = 2048;
    opts.force_on_commit = force_on_commit;
    heap = std::move(*StableHeap::Open(env.get(), opts));
    cls = *heap->RegisterClass({false, true});
    txn = *heap->Begin();
    stable_obj = *heap->AllocateStable(txn, cls, 2);
    volatile_obj = *heap->Allocate(txn, cls, 2);
  }
};

void BM_ReadScalar(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(*f.heap->ReadScalar(f.txn, f.stable_obj, 0));
  }
}
BENCHMARK(BM_ReadScalar);

void BM_WriteScalarStable(benchmark::State& state) {
  Fixture f;
  uint64_t v = 0;
  for (auto _ : state) {
    BENCH_OK(f.heap->WriteScalar(f.txn, f.stable_obj, 0, ++v));
  }
  state.counters["log_bytes_per_op"] = benchmark::Counter(
      static_cast<double>(f.heap->log_volume()
                              .For(RecordType::kUpdate)
                              .bytes),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_WriteScalarStable);

void BM_WriteScalarVolatile(benchmark::State& state) {
  Fixture f;
  uint64_t v = 0;
  for (auto _ : state) {
    BENCH_OK(f.heap->WriteScalar(f.txn, f.volatile_obj, 0, ++v));
  }
}
BENCHMARK(BM_WriteScalarVolatile);

void BM_WritePointerStable(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    BENCH_OK(f.heap->WriteRef(f.txn, f.stable_obj, 1, f.stable_obj));
  }
}
BENCHMARK(BM_WritePointerStable);

void BM_AllocateVolatile(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    auto r = f.heap->Allocate(f.txn, kClassDataArray, 4);
    if (!r.ok()) {  // volatile area recycles via collection
      state.PauseTiming();
      BENCH_OK(f.heap->Abort(f.txn));
      f.txn = *f.heap->Begin();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_AllocateVolatile);

void BM_TxnCommitEmpty_Forced(benchmark::State& state) {
  Fixture f;
  BENCH_OK(f.heap->Commit(f.txn));
  for (auto _ : state) {
    TxnId t = *f.heap->Begin();
    BENCH_OK(f.heap->Commit(t));
  }
}
BENCHMARK(BM_TxnCommitEmpty_Forced);

void BM_TxnUpdateCommit_Forced(benchmark::State& state) {
  Fixture f;
  Ref obj = f.stable_obj;
  BENCH_OK(f.heap->Commit(f.txn));
  uint64_t v = 0;
  for (auto _ : state) {
    // obj handle died with f.txn; go through the root instead.
    TxnId t = *f.heap->Begin();
    Ref o = *f.heap->AllocateStable(t, f.cls, 2);
    BENCH_OK(f.heap->WriteScalar(t, o, 0, ++v));
    BENCH_OK(f.heap->Commit(t));
  }
  (void)obj;
}
BENCHMARK(BM_TxnUpdateCommit_Forced)->Iterations(2000);

void BM_TxnUpdateCommit_Group(benchmark::State& state) {
  Fixture f(/*force_on_commit=*/false);
  BENCH_OK(f.heap->Commit(f.txn));
  uint64_t v = 0;
  for (auto _ : state) {
    TxnId t = *f.heap->Begin();
    Ref o = *f.heap->AllocateStable(t, f.cls, 2);
    BENCH_OK(f.heap->WriteScalar(t, o, 0, ++v));
    BENCH_OK(f.heap->Commit(t));
  }
  BENCH_OK(f.heap->ForceLog());
}
BENCHMARK(BM_TxnUpdateCommit_Group)->Iterations(2000);

void BM_AbortOneUpdate(benchmark::State& state) {
  Fixture f;
  BENCH_OK(f.heap->Commit(f.txn));
  uint64_t v = 0;
  for (auto _ : state) {
    TxnId t = *f.heap->Begin();
    Ref o = *f.heap->AllocateStable(t, f.cls, 2);
    BENCH_OK(f.heap->WriteScalar(t, o, 0, ++v));
    BENCH_OK(f.heap->Abort(t));
  }
}
BENCHMARK(BM_AbortOneUpdate)->Iterations(2000);

}  // namespace
}  // namespace sheap

int main(int argc, char** argv) {
  // Simulated-time table (the cost-model view the paper's table uses).
  using namespace sheap;
  using namespace sheap::bench;
  Header("E1  micro-measurements (simulated time per operation)",
         "logged writes cost one log record; commit cost is dominated by "
         "the synchronous force; volatile writes pay no logging");
  JsonBench("micro");
  {
    Fixture f;
    SimClock* clock = f.env->clock();
    auto measure = [&](const char* name, auto op, uint64_t reps) {
      const uint64_t start = clock->now_ns();
      for (uint64_t i = 0; i < reps; ++i) op(i);
      const double us =
          static_cast<double>(clock->now_ns() - start) / 1000.0 / reps;
      Row("  %-28s %10.2f us", name, us);
      std::string metric(name);
      for (char& c : metric) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      EmitMetric(metric, us, "us/op");
    };
    measure("read scalar", [&](uint64_t) {
      (void)*f.heap->ReadScalar(f.txn, f.stable_obj, 0);
    }, 1000);
    measure("write scalar (stable)", [&](uint64_t i) {
      BENCH_OK(f.heap->WriteScalar(f.txn, f.stable_obj, 0, i));
    }, 1000);
    measure("write scalar (volatile)", [&](uint64_t i) {
      BENCH_OK(f.heap->WriteScalar(f.txn, f.volatile_obj, 0, i));
    }, 1000);
    measure("allocate (volatile)", [&](uint64_t) {
      (void)*f.heap->Allocate(f.txn, kClassDataArray, 4);
    }, 1000);
    BENCH_OK(f.heap->Commit(f.txn));
    measure("txn with 1 update, forced", [&](uint64_t i) {
      TxnId t = *f.heap->Begin();
      Ref o = *f.heap->AllocateStable(t, f.cls, 2);
      BENCH_OK(f.heap->WriteScalar(t, o, 0, i));
      BENCH_OK(f.heap->Commit(t));
    }, 200);
  }
  {
    Fixture f(/*force_on_commit=*/false);
    SimClock* clock = f.env->clock();
    BENCH_OK(f.heap->Commit(f.txn));
    const uint64_t start = clock->now_ns();
    for (uint64_t i = 0; i < 200; ++i) {
      TxnId t = *f.heap->Begin();
      Ref o = *f.heap->AllocateStable(t, f.cls, 2);
      BENCH_OK(f.heap->WriteScalar(t, o, 0, i));
      BENCH_OK(f.heap->Commit(t));
    }
    BENCH_OK(f.heap->ForceLog());
    const double us =
        static_cast<double>(clock->now_ns() - start) / 1000.0 / 200;
    Row("  %-28s %10.2f us", "txn with 1 update, group", us);
    EmitMetric("txn_with_1_update__group", us, "us/op");
  }
  WriteJsonFile();
  std::printf("\nhost wall-clock (google-benchmark):\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
