// E7 — Comparison with Detlefs's concurrent atomic collection [15] (paper
// §1, §8.4): "In his algorithm the pauses for garbage collection and the
// time for recovery are independent of heap size, but the pauses are too
// long. Each pause requires multiple synchronous writes to disk;
// furthermore, these writes are random. Our algorithm is better integrated
// with the recovery system and does not require any synchronous writes."
// Identical collection workload; only the durability mechanism differs.

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;
using workload::NodeClass;

namespace {

struct DetlefsResult {
  double max_step_ms = 0;
  double mean_step_ms = 0;
  uint64_t sync_writes = 0;
  uint64_t forces = 0;
  double total_gc_ms = 0;
};

DetlefsResult RunOne(GcDurability durability, uint64_t live_words) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 8192;
  opts.volatile_space_pages = 4096;
  opts.divided_heap = false;
  opts.gc_durability = durability;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  NodeClass cls = BENCH_VAL(workload::RegisterNodeClass(heap.get(), 2));
  PlantLiveData(heap.get(), cls, 0, live_words);
  heap->stable_gc_stats() = GcStats();
  const uint64_t forces_before = env.log()->stats().forces;

  const uint64_t start = env.clock()->now_ns();
  BENCH_OK(heap->StartStableCollection());
  while (heap->stable_gc()->collecting()) {
    BENCH_OK(heap->StepStableCollection(1));
  }
  DetlefsResult r;
  r.total_gc_ms = Ms(env.clock()->now_ns() - start);
  const GcStats& stats = heap->stable_gc_stats();
  r.max_step_ms = Ms(stats.max_pause_ns);
  r.mean_step_ms = Ms(static_cast<uint64_t>(stats.MeanPauseNs()));
  r.sync_writes = stats.sync_page_writes;
  r.forces = env.log()->stats().forces - forces_before;
  return r;
}

}  // namespace

int main() {
  Header("E7  atomic-incremental (WAL) vs Detlefs-style synchronous writes",
         "our steps spool log records (no synchronous writes); Detlefs's "
         "steps each pay multiple random synchronous page writes");
  Row("  %-10s %-12s %12s %12s %12s %10s %12s", "live(MiB)", "mode",
      "max-step(ms)", "mean(ms)", "sync-writes", "forces", "total(ms)");

  double ours_mean = 0, detlefs_mean = 0;
  uint64_t ours_sync = 0, detlefs_sync = 0;
  for (uint64_t words : {1ull << 17, 1ull << 19}) {
    DetlefsResult ours = RunOne(GcDurability::kWriteAheadLog, words);
    DetlefsResult det = RunOne(GcDurability::kSynchronousWrites, words);
    const double mib = static_cast<double>(words) * 8 / (1024 * 1024);
    Row("  %-10.1f %-12s %12.3f %12.3f %12llu %10llu %12.1f", mib, "ours",
        ours.max_step_ms, ours.mean_step_ms,
        (unsigned long long)ours.sync_writes,
        (unsigned long long)ours.forces, ours.total_gc_ms);
    Row("  %-10.1f %-12s %12.3f %12.3f %12llu %10llu %12.1f", mib,
        "detlefs", det.max_step_ms, det.mean_step_ms,
        (unsigned long long)det.sync_writes,
        (unsigned long long)det.forces, det.total_gc_ms);
    ours_mean = ours.mean_step_ms;
    detlefs_mean = det.mean_step_ms;
    ours_sync = ours.sync_writes;
    detlefs_sync = det.sync_writes;
  }

  ShapeCheck(ours_sync == 0, "our collector performs zero synchronous writes");
  ShapeCheck(detlefs_sync > 1000,
             "Detlefs performs thousands of random synchronous writes");
  ShapeCheck(ours_mean * 5 < detlefs_mean,
             "our mean step pause is >5x shorter than Detlefs's");
  return Finish();
}
