// E9 — Dividing the heap (paper §5.3): the same workload run (a) on a
// divided heap, where short-lived objects live and die in the volatile
// area under a cheap unlogged collector, and (b) all-stable, where every
// object pays allocation logging and atomic collection. The division is
// the difference between paying the atomic-GC machinery for everything
// and paying it only for the stable survivors.

#include "bench_util.h"
#include "storage/sim_env.h"

using namespace sheap;
using namespace sheap::bench;
using workload::NodeClass;

namespace {

struct DivResult {
  double sim_ms = 0;
  double log_kib = 0;
  uint64_t stable_collections = 0;
  uint64_t volatile_collections = 0;
  double max_pause_ms = 0;
};

DivResult RunOne(bool divided) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 512;
  opts.volatile_space_pages = 256;
  opts.divided_heap = divided;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  NodeClass cls = BENCH_VAL(workload::RegisterNodeClass(heap.get(), 2));
  Rng rng(23);

  const uint64_t start = env.clock()->now_ns();
  const uint64_t log_before = heap->log_volume().TotalBytes();
  // A churn-heavy workload: 90% of objects are temporary.
  for (uint64_t i = 0; i < 1500; ++i) {
    TxnId txn = BENCH_VAL(heap->Begin());
    Ref head = BENCH_VAL(workload::BuildList(heap.get(), txn, cls, 60));
    if (rng.NextDouble() < 0.1) {
      BENCH_OK(heap->SetRoot(txn, i % 16, head));
    }
    BENCH_OK(heap->Commit(txn));
  }
  DivResult r;
  r.sim_ms = Ms(env.clock()->now_ns() - start);
  r.log_kib =
      static_cast<double>(heap->log_volume().TotalBytes() - log_before) /
      1024;
  r.stable_collections = heap->stable_gc_stats().collections_completed;
  r.volatile_collections = heap->volatile_gc_stats().collections_completed;
  r.max_pause_ms = Ms(std::max(heap->stable_gc_stats().max_pause_ns,
                               heap->volatile_gc_stats().max_pause_ns));
  return r;
}

}  // namespace

int main() {
  Header("E9  divided heap vs all-stable heap (90% temporary objects)",
         "the volatile area absorbs the churn without logging; the stable "
         "area collects rarely");
  Row("  %-12s %12s %12s %10s %10s %14s", "heap", "sim(ms)", "log(KiB)",
      "stable-GCs", "vol-GCs", "max-pause(ms)");

  DivResult divided = RunOne(true);
  DivResult all_stable = RunOne(false);
  Row("  %-12s %12.1f %12.1f %10llu %10llu %14.2f", "divided",
      divided.sim_ms, divided.log_kib,
      (unsigned long long)divided.stable_collections,
      (unsigned long long)divided.volatile_collections,
      divided.max_pause_ms);
  Row("  %-12s %12.1f %12.1f %10llu %10llu %14.2f", "all-stable",
      all_stable.sim_ms, all_stable.log_kib,
      (unsigned long long)all_stable.stable_collections,
      (unsigned long long)all_stable.volatile_collections,
      all_stable.max_pause_ms);

  ShapeCheck(divided.log_kib * 2 < all_stable.log_kib,
             "the divided heap writes <1/2 the log of the all-stable heap");
  ShapeCheck(divided.sim_ms < all_stable.sim_ms,
             "the divided heap is faster end-to-end");
  ShapeCheck(divided.volatile_collections > divided.stable_collections,
             "churn is absorbed by cheap volatile collections");
  return Finish();
}
