// Stability tracking and promotion tests (paper Chapter 5): the concurrent
// tracker (LS maintenance, multi-transaction dependee sets, the [38] bug
// regression), recoverable promotion at commit (V2scopy), closure over
// uncommitted updates and undo values, husk behaviour, and the remembered
// set. All tests run on the divided heap.

#include <gtest/gtest.h>

#include <memory>

#include "core/stable_heap.h"
#include "workload/graph_gen.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

using workload::NodeClass;
using workload::RegisterNodeClass;

// Parameterized over the two promotion methods (§5.2 move-at-commit vs
// §5.5 defer-to-next-volatile-GC): the observable behaviour must be
// identical.
class StabilityTest : public ::testing::TestWithParam<PromotionMethod> {
 protected:
  void SetUp() override {
    env_ = std::make_unique<SimEnv>();
    StableHeapOptions opts;
    opts.stable_space_pages = 256;
    opts.volatile_space_pages = 128;
    opts.divided_heap = true;
    opts.promotion_method = GetParam();
    auto heap = StableHeap::Open(env_.get(), opts);
    ASSERT_TRUE(heap.ok());
    heap_ = std::move(*heap);
    auto cls = RegisterNodeClass(heap_.get(), 3);
    ASSERT_TRUE(cls.ok());
    cls_ = *cls;
  }

  void Reopen(const CrashOptions& crash) {
    ASSERT_TRUE(heap_->SimulateCrash(crash).ok());
    heap_.reset();
    StableHeapOptions opts;
    opts.divided_heap = true;
    opts.promotion_method = GetParam();
    auto heap = StableHeap::Open(env_.get(), opts);
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    heap_ = std::move(*heap);
  }

  bool InStableArea(Ref ref) {
    auto addr = heap_->DebugAddrOf(ref);
    SHEAP_CHECK_OK(addr.status());
    const Space* sp = heap_->spaces()->Containing(*addr);
    return sp != nullptr && sp->area == Area::kStable;
  }

  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<StableHeap> heap_;
  NodeClass cls_;
};

TEST_P(StabilityTest, NewObjectsAreVolatileUntilCommit) {
  auto txn = heap_->Begin();
  auto obj = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(obj.ok());
  EXPECT_FALSE(InStableArea(*obj));
  ASSERT_TRUE(heap_->SetRoot(*txn, 0, *obj).ok());
  EXPECT_FALSE(InStableArea(*obj));  // still volatile until commit
  ASSERT_TRUE(heap_->Commit(*txn).ok());

  auto t2 = heap_->Begin();
  auto root = heap_->GetRoot(*t2, 0);
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(InStableArea(*root));  // promoted at commit
  ASSERT_TRUE(heap_->Commit(*t2).ok());
  EXPECT_EQ(heap_->promotion_stats().objects_promoted, 1u);
}

TEST_P(StabilityTest, PromotionTakesTheClosure) {
  auto txn = heap_->Begin();
  // a -> b -> c, plus a -> c sharing.
  auto a = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  auto b = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  auto c = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *c, 0, 333).ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *a, 1, *b).ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *b, 1, *c).ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *a, 2, *c).ok());
  ASSERT_TRUE(heap_->SetRoot(*txn, 0, *a).ok());
  ASSERT_TRUE(heap_->Commit(*txn).ok());
  EXPECT_EQ(heap_->promotion_stats().objects_promoted, 3u);

  // Sharing preserved: a->b->c and a->c reach the same object.
  auto t2 = heap_->Begin();
  auto ra = heap_->GetRoot(*t2, 0);
  auto rb = heap_->ReadRef(*t2, *ra, 1);
  auto rc1 = heap_->ReadRef(*t2, *rb, 1);
  auto rc2 = heap_->ReadRef(*t2, *ra, 2);
  ASSERT_TRUE(rc1.ok() && rc2.ok());
  EXPECT_EQ(*heap_->DebugAddrOf(*rc1), *heap_->DebugAddrOf(*rc2));
  EXPECT_EQ(*heap_->ReadScalar(*t2, *rc1, 0), 333u);
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(StabilityTest, PromotedGraphSurvivesCrash) {
  auto txn = heap_->Begin();
  auto root = workload::BuildTree(heap_.get(), *txn, cls_, 3);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap_->SetRoot(*txn, 0, *root).ok());
  ASSERT_TRUE(heap_->Commit(*txn).ok());
  uint64_t checksum;
  {
    auto t = heap_->Begin();
    auto r = heap_->GetRoot(*t, 0);
    checksum = *workload::GraphChecksum(heap_.get(), *t, *r);
    ASSERT_TRUE(heap_->Commit(*t).ok());
  }
  Reopen(CrashOptions{0.3, 99, 0});
  auto t = heap_->Begin();
  auto r = heap_->GetRoot(*t, 0);
  ASSERT_TRUE(r.ok());
  auto sum = workload::GraphChecksum(heap_.get(), *t, *r);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, checksum);
  ASSERT_TRUE(heap_->Commit(*t).ok());
}

TEST_P(StabilityTest, AbortPromotesNothing) {
  auto txn = heap_->Begin();
  auto obj = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(heap_->SetRoot(*txn, 0, *obj).ok());
  ASSERT_TRUE(heap_->Abort(*txn).ok());
  EXPECT_EQ(heap_->promotion_stats().objects_promoted, 0u);
  EXPECT_EQ(heap_->remembered()->size(), 0u);

  auto t2 = heap_->Begin();
  auto root = heap_->GetRoot(*t2, 0);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, kNullRef);
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(StabilityTest, TrackerMarksClosureLikelyStable) {
  auto txn = heap_->Begin();
  auto a = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  auto b = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *a, 1, *b).ok());
  EXPECT_EQ(heap_->likely_stable()->size(), 0u);  // nothing stable involved

  ASSERT_TRUE(heap_->SetRoot(*txn, 0, *a).ok());
  // Root write into a stable object: a's closure becomes likely stable.
  EXPECT_TRUE(heap_->likely_stable()->Contains(*heap_->DebugAddrOf(*a)));
  EXPECT_TRUE(heap_->likely_stable()->Contains(*heap_->DebugAddrOf(*b)));
  EXPECT_EQ(heap_->tracker_stats().invocations, 1u);

  // A write into a likely-stable object triggers tracking too.
  auto c = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *b, 1, *c).ok());
  EXPECT_TRUE(heap_->likely_stable()->Contains(*heap_->DebugAddrOf(*c)));
  EXPECT_EQ(heap_->tracker_stats().invocations, 2u);
  ASSERT_TRUE(heap_->Commit(*txn).ok());
  EXPECT_EQ(heap_->likely_stable()->size(), 0u);  // emptied at commit
  EXPECT_EQ(heap_->promotion_stats().objects_promoted, 3u);
}

TEST_P(StabilityTest, LsSharedByTwoTxnsSurvivesOneAbort) {
  // Regression for the [38] bug: two transactions make the same volatile
  // object reachable; the abort of one must not lose the other's tracking.
  auto setup = heap_->Begin();
  auto s1 = heap_->AllocateStable(*setup, cls_.id, cls_.nslots);
  auto s2 = heap_->AllocateStable(*setup, cls_.id, cls_.nslots);
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_TRUE(heap_->SetRoot(*setup, 0, *s1).ok());
  ASSERT_TRUE(heap_->SetRoot(*setup, 1, *s2).ok());
  ASSERT_TRUE(heap_->Commit(*setup).ok());

  // A volatile object v shared by handle between two transactions is not
  // possible (handles are per-txn); use a global scheme: t1 creates v and
  // links it under root 0; t2 links the same object via reading... t2 can't
  // see t1's uncommitted link. Instead: t1 links v under s1 AND s2, then
  // the dependee sets are exercised by two separate transactions through
  // time: t1 aborts after t2 picked up v by reading a committed link.
  auto t0 = heap_->Begin();
  auto r0 = heap_->GetRoot(*t0, 0);
  auto v = heap_->Allocate(*t0, cls_.id, cls_.nslots);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(heap_->WriteScalar(*t0, *v, 0, 77).ok());
  ASSERT_TRUE(heap_->WriteRef(*t0, *r0, 1, *v).ok());
  ASSERT_TRUE(heap_->Commit(*t0).ok());  // v promoted under root 0

  // Both dependee-set behaviours are also checked at the LS level directly.
  auto ta = heap_->Begin();
  auto tb = heap_->Begin();
  auto wa = heap_->Allocate(*ta, cls_.id, cls_.nslots);
  ASSERT_TRUE(wa.ok());
  const HeapAddr wa_addr = *heap_->DebugAddrOf(*wa);
  auto ra = heap_->GetRoot(*ta, 0);
  ASSERT_TRUE(heap_->WriteRef(*ta, *ra, 2, *wa).ok());
  EXPECT_TRUE(heap_->likely_stable()->DependsOn(wa_addr, *ta));
  EXPECT_FALSE(heap_->likely_stable()->DependsOn(wa_addr, *tb));
  // tb gets its own volatile object into the LS too.
  auto wb = heap_->Allocate(*tb, cls_.id, cls_.nslots);
  ASSERT_TRUE(wb.ok());
  const HeapAddr wb_addr = *heap_->DebugAddrOf(*wb);
  auto rb = heap_->GetRoot(*tb, 1);
  ASSERT_TRUE(heap_->WriteRef(*tb, *rb, 2, *wb).ok());
  EXPECT_TRUE(heap_->likely_stable()->DependsOn(wb_addr, *tb));

  // ta aborts: wa leaves the LS; wb's tracking is untouched.
  ASSERT_TRUE(heap_->Abort(*ta).ok());
  EXPECT_FALSE(heap_->likely_stable()->Contains(wa_addr));
  EXPECT_TRUE(heap_->likely_stable()->DependsOn(wb_addr, *tb));
  ASSERT_TRUE(heap_->Commit(*tb).ok());
  EXPECT_EQ(heap_->promotion_stats().objects_promoted, 2u);  // v and wb
}

TEST_P(StabilityTest, UncommittedForeignUpdateToPromotedObjectIsUndoable) {
  // The v1/v2 scenario: T1 makes v1 stable; T2 has an uncommitted volatile
  // write into v1. After T1 commits, a crash must still be able to undo
  // T2's write — the promotion materializes T2's update in the log.
  auto setup = heap_->Begin();
  auto s = heap_->AllocateStable(*setup, cls_.id, cls_.nslots);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(heap_->SetRoot(*setup, 0, *s).ok());
  ASSERT_TRUE(heap_->Commit(*setup).ok());

  // T1 creates v1, commits a link making it stable... but first T2 writes
  // into v1. T2 reaches v1 through a committed volatile channel: use root 1
  // holding a volatile intermediary is impossible post-commit; instead T1
  // creates v1 and shares it with T2 via the heap: T2 reads it from a
  // committed volatile... Volatile objects committed stay volatile only if
  // unreachable from roots, so T2 must reach v1 before T1's final commit.
  // Model the paper's interleaving directly with two live transactions:
  auto t1 = heap_->Begin();
  auto t2 = heap_->Begin();
  auto v1 = heap_->Allocate(*t1, cls_.id, cls_.nslots);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(heap_->WriteScalar(*t1, *v1, 0, 100).ok());
  // T1 releases its write lock by committing in two phases is not possible;
  // in this implementation T2 could not lock v1 while T1 holds it. The
  // cross-transaction update therefore uses T2 = the same client after T1's
  // link write but before commit is impossible under strict 2PL...
  // Strict 2PL makes a genuinely foreign uncommitted update to v1
  // unreachable; the code path is still exercised by the committing
  // transaction's own unlogged volatile updates (materialized at
  // promotion). Verify those are undoable after a crash mid-abort... they
  // commit here; just verify the scalar survived promotion and crash:
  auto r = heap_->GetRoot(*t1, 0);
  ASSERT_TRUE(heap_->WriteRef(*t1, *r, 1, *v1).ok());
  ASSERT_TRUE(heap_->Commit(*t1).ok());
  ASSERT_TRUE(heap_->Commit(*t2).ok());

  Reopen(CrashOptions{0.6, 123, 0});
  auto t = heap_->Begin();
  auto root = heap_->GetRoot(*t, 0);
  auto got = heap_->ReadRef(*t, *root, 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*heap_->ReadScalar(*t, *got, 0), 100u);
  ASSERT_TRUE(heap_->Commit(*t).ok());
}

TEST_P(StabilityTest, OldPointerValuesArePromotionRoots) {
  // T overwrites v1.slot (old value v3, volatile) then makes v1 stable and
  // commits. If T had aborted after the commit-promotion of another txn...
  // here: the same transaction promotes v1; its earlier update's old value
  // v3 must be promoted too, because a crash-recovery undo of a
  // *materialized* update record would otherwise restore a dangling
  // volatile pointer.
  auto txn = heap_->Begin();
  auto v1 = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  auto v3 = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  auto v4 = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(v1.ok() && v3.ok() && v4.ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *v3, 0, 3).ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *v1, 1, *v3).ok());  // old value
  ASSERT_TRUE(heap_->WriteRef(*txn, *v1, 1, *v4).ok());  // overwrite
  auto r = heap_->GetRoot(*txn, 0);
  ASSERT_TRUE(heap_->SetRoot(*txn, 0, *v1).ok());
  ASSERT_TRUE(heap_->Commit(*txn).ok());
  // v1, v4 (current) and v3 (undo value) are all promoted.
  EXPECT_EQ(heap_->promotion_stats().objects_promoted, 3u);
}

TEST_P(StabilityTest, HuskReadsResolveToPromotedObject) {
  // A volatile object keeps pointing at the old (husk) address after its
  // target was promoted by another link; reads must find the live copy.
  auto txn = heap_->Begin();
  auto holder = heap_->Allocate(*txn, cls_.id, cls_.nslots);  // stays volatile
  auto v = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(holder.ok() && v.ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *v, 0, 55).ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *holder, 1, *v).ok());
  ASSERT_TRUE(heap_->SetRoot(*txn, 0, *v).ok());  // v promoted at commit
  ASSERT_TRUE(heap_->Commit(*txn).ok());

  // holder died with the transaction's handles, but the husk path is also
  // exercised within a transaction:
  auto t2 = heap_->Begin();
  auto holder2 = heap_->Allocate(*t2, cls_.id, cls_.nslots);
  auto root_v = heap_->GetRoot(*t2, 0);
  ASSERT_TRUE(holder2.ok() && root_v.ok());
  ASSERT_TRUE(heap_->WriteRef(*t2, *holder2, 1, *root_v).ok());
  // Link holder2 into the stable world mid-transaction, then promote; the
  // volatile slot in holder2 already holds the stable address (root_v was
  // resolved), so this is clean. Now check husk reads: create a fresh
  // volatile w, link it under a volatile holder, promote w via root 1, and
  // read back through the volatile holder.
  auto w = heap_->Allocate(*t2, cls_.id, cls_.nslots);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(heap_->WriteScalar(*t2, *w, 0, 77).ok());
  ASSERT_TRUE(heap_->WriteRef(*t2, *holder2, 2, *w).ok());
  ASSERT_TRUE(heap_->SetRoot(*t2, 1, *w).ok());
  ASSERT_TRUE(heap_->Commit(*t2).ok());

  auto t3 = heap_->Begin();
  auto pw = heap_->GetRoot(*t3, 1);
  ASSERT_TRUE(pw.ok());
  EXPECT_TRUE(InStableArea(*pw));
  EXPECT_EQ(*heap_->ReadScalar(*t3, *pw, 0), 77u);
  ASSERT_TRUE(heap_->Commit(*t3).ok());
}

TEST_P(StabilityTest, RememberedSetTracksUncommittedCrossPointers) {
  auto setup = heap_->Begin();
  auto s = heap_->AllocateStable(*setup, cls_.id, cls_.nslots);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(heap_->SetRoot(*setup, 0, *s).ok());
  ASSERT_TRUE(heap_->Commit(*setup).ok());
  EXPECT_EQ(heap_->remembered()->size(), 0u);

  auto txn = heap_->Begin();
  auto root = heap_->GetRoot(*txn, 0);
  auto v = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *root, 1, *v).ok());
  EXPECT_EQ(heap_->remembered()->size(), 1u);
  // Overwriting with a stable value removes the entry.
  ASSERT_TRUE(heap_->WriteRef(*txn, *root, 1, *root).ok());
  EXPECT_EQ(heap_->remembered()->size(), 0u);
  // And back to volatile.
  ASSERT_TRUE(heap_->WriteRef(*txn, *root, 1, *v).ok());
  EXPECT_EQ(heap_->remembered()->size(), 1u);
  ASSERT_TRUE(heap_->Commit(*txn).ok());
  EXPECT_EQ(heap_->remembered()->size(), 0u);  // promoted and cleared
}

TEST_P(StabilityTest, PromotionDuringActiveStableCollection) {
  // Fill the stable area a bit, start an incremental collection, promote
  // mid-collection, finish, crash, verify.
  auto setup = heap_->Begin();
  auto tree = workload::BuildTree(heap_.get(), *setup, cls_, 3);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(heap_->SetRoot(*setup, 0, *tree).ok());
  ASSERT_TRUE(heap_->Commit(*setup).ok());

  ASSERT_TRUE(heap_->StartStableCollection().ok());
  ASSERT_TRUE(heap_->StepStableCollection(1).ok());

  auto txn = heap_->Begin();
  auto v = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *v, 0, 4711).ok());
  ASSERT_TRUE(heap_->SetRoot(*txn, 1, *v).ok());
  ASSERT_TRUE(heap_->Commit(*txn).ok());  // promotes into to-space

  ASSERT_TRUE(heap_->CollectStableFully().ok());
  Reopen(CrashOptions{0.5, 321, 0});

  auto t = heap_->Begin();
  auto pv = heap_->GetRoot(*t, 1);
  ASSERT_TRUE(pv.ok());
  EXPECT_EQ(*heap_->ReadScalar(*t, *pv, 0), 4711u);
  auto rt = heap_->GetRoot(*t, 0);
  auto count = workload::CountReachable(heap_.get(), *t, *rt);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 40u);  // fanout-3 depth-3 tree: 1+3+9+27
  ASSERT_TRUE(heap_->Commit(*t).ok());
}

TEST_P(StabilityTest, CrashBeforeCommitRecordDiscardsPromotion) {
  // Promotion records without a commit record are a loser's records: redo
  // materializes the copies, undo reverts the slot rewrites, and the
  // copies are unreachable garbage.
  StableHeapOptions opts;
  opts.divided_heap = true;
  opts.promotion_method = GetParam();
  opts.force_on_commit = false;  // commit spools but does not force

  env_ = std::make_unique<SimEnv>();
  auto heap = StableHeap::Open(env_.get(), opts);
  ASSERT_TRUE(heap.ok());
  heap_ = std::move(*heap);
  auto cls = RegisterNodeClass(heap_.get(), 3);
  ASSERT_TRUE(cls.ok());
  cls_ = *cls;

  auto txn = heap_->Begin();
  auto v = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(heap_->SetRoot(*txn, 0, *v).ok());
  ASSERT_TRUE(heap_->Commit(*txn).ok());  // not forced
  // Force only a prefix: flush everything, then tear the unforced tail so
  // the V2sCopy records may survive while the commit record does not.
  ASSERT_TRUE(heap_->log_writer()->Flush().ok());
  Reopen(CrashOptions{0.0, 55, /*tear_tail_bytes=*/60});

  auto t = heap_->Begin();
  auto root = heap_->GetRoot(*t, 0);
  ASSERT_TRUE(root.ok());
  // Either the whole commit survived (tear hit nothing material) or the
  // transaction vanished atomically.
  if (*root != kNullRef) {
    EXPECT_TRUE(InStableArea(*root));
  }
  ASSERT_TRUE(heap_->Commit(*t).ok());
}

TEST_P(StabilityTest, StableGarbageFromAbortedPromotionIsCollected) {
  // Promote a big object, then unlink it; the stable collection reclaims it.
  auto txn = heap_->Begin();
  auto v = heap_->Allocate(*txn, kClassDataArray, 2000);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(heap_->SetRoot(*txn, 0, *v).ok());
  ASSERT_TRUE(heap_->Commit(*txn).ok());

  auto t2 = heap_->Begin();
  ASSERT_TRUE(heap_->SetRoot(*t2, 0, kNullRef).ok());
  ASSERT_TRUE(heap_->Commit(*t2).ok());

  ASSERT_TRUE(heap_->CollectVolatile().ok());  // retire husks
  const uint64_t copied_before = heap_->stable_gc_stats().words_copied;
  ASSERT_TRUE(heap_->CollectStableFully().ok());
  // The 2001-word array must not have been copied.
  EXPECT_LT(heap_->stable_gc_stats().words_copied - copied_before, 2000u);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, StabilityTest,
    ::testing::Values(PromotionMethod::kAtCommit,
                      PromotionMethod::kAtNextVolatileGc),
    [](const ::testing::TestParamInfo<PromotionMethod>& param_info) {
      return param_info.param == PromotionMethod::kAtCommit ? "AtCommit"
                                                      : "AtNextVolGc";
    });

}  // namespace
}  // namespace sheap
