// Two-phase commit tests (the paper's §2.2 distributed extension): the
// prepared (in-doubt) state survives participant crashes with its locks and
// undo information; the coordinator's forced decision record is the commit
// point; presumed abort resolves undecided transactions.

#include <gtest/gtest.h>

#include <memory>

#include "dtx/two_phase.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

using workload::Bank;

struct Node {
  std::unique_ptr<SimEnv> env;
  std::unique_ptr<StableHeap> heap;
  Bank bank{nullptr, 0};
  bool group_commit = false;

  void Open(uint64_t accounts = 0) {
    StableHeapOptions opts;
    opts.stable_space_pages = 256;
    opts.volatile_space_pages = 128;
    opts.group_commit = group_commit;
    const bool fresh = env == nullptr;
    if (fresh) env = std::make_unique<SimEnv>();
    heap = std::move(*StableHeap::Open(env.get(), opts));
    bank = Bank(heap.get(), 0);
    if (fresh && accounts > 0) {
      SHEAP_CHECK_OK(bank.Setup(accounts, 1000));
    } else {
      Status st = bank.Attach();
      // A restored in-doubt transaction may hold the root array's write
      // lock (it updated a root slot); attach again after resolution.
      SHEAP_CHECK(st.ok() || st.IsBusy());
    }
  }

  void Crash(double writeback, uint64_t seed) {
    SHEAP_CHECK_OK(heap->SimulateCrash(CrashOptions{writeback, seed, 100}));
    heap.reset();
    Open();
  }

  /// Begin a transfer but leave it un-committed (for 2PC).
  TxnId StartTransfer(uint64_t from, uint64_t to, uint64_t amount) {
    TxnId txn = *heap->Begin();
    Ref dir = *heap->GetRoot(txn, 0);
    Ref fb = *heap->ReadRef(txn, dir, from / 64);
    Ref tb = *heap->ReadRef(txn, dir, to / 64);
    uint64_t fbal = *heap->ReadScalar(txn, fb, from % 64);
    uint64_t tbal = *heap->ReadScalar(txn, tb, to % 64);
    SHEAP_CHECK_OK(heap->WriteScalar(txn, fb, from % 64, fbal - amount));
    SHEAP_CHECK_OK(heap->WriteScalar(txn, tb, to % 64, tbal + amount));
    return txn;
  }
};

class DtxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_.Open(64);
    b_.Open(64);
    coord_env_ = std::make_unique<SimEnv>();
    coord_ = std::make_unique<TwoPhaseCoordinator>(coord_env_.get());
  }

  Node a_, b_;
  std::unique_ptr<SimEnv> coord_env_;
  std::unique_ptr<TwoPhaseCoordinator> coord_;
};

TEST_F(DtxTest, DistributedCommitAppliesOnBothNodes) {
  // Move 100 "between banks": debit on A, credit on B, atomically.
  TxnId ta = a_.StartTransfer(0, 1, 100);  // and a local shuffle
  TxnId tb = b_.StartTransfer(2, 3, 100);
  auto committed = coord_->CommitDistributed({{a_.heap.get(), ta},
                                              {b_.heap.get(), tb}});
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_TRUE(*committed);
  EXPECT_EQ(*a_.bank.BalanceOf(0), 900u);
  EXPECT_EQ(*b_.bank.BalanceOf(3), 1100u);
}

TEST_F(DtxTest, DistributedCommitWorksUnderGroupCommit) {
  // Both participants run with the commit queue enabled: the 2PC prepare
  // and decision forces are durability barriers, so they drain queued
  // group commits (piggybacking) instead of stalling behind them.
  Node ga, gb;
  ga.group_commit = true;
  gb.group_commit = true;
  ga.Open(64);
  gb.Open(64);

  // A side object committed up front (a SetRoot inside the queued txn
  // would hold the root table's write lock and block everyone's GetRoot).
  {
    TxnId s = *ga.heap->Begin();
    Ref obj = *ga.heap->AllocateStable(s, kClassDataArray, 1);
    ASSERT_TRUE(ga.heap->SetRoot(s, 1, obj).ok());
    ASSERT_TRUE(ga.heap->CommitSync(s).ok());
  }

  // A local transaction sits in A's commit queue when the prepare runs.
  // It touches only the side object, so it conflicts with nothing.
  TxnId local = *ga.heap->Begin();
  Ref obj = *ga.heap->GetRoot(local, 1);
  ASSERT_TRUE(ga.heap->WriteScalar(local, obj, 0, 555).ok());
  ASSERT_TRUE(ga.heap->Commit(local).IsBusy());

  TxnId ta = ga.StartTransfer(0, 1, 100);
  TxnId tb = gb.StartTransfer(2, 3, 100);
  auto committed = coord_->CommitDistributed({{ga.heap.get(), ta},
                                              {gb.heap.get(), tb}});
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_TRUE(*committed);

  // The prepare's force already made the queued waiter durable.
  EXPECT_GE(ga.heap->group_commit_stats().piggybacked, 1u);
  EXPECT_TRUE(ga.heap->Commit(local).ok());

  EXPECT_EQ(*ga.bank.BalanceOf(0), 900u);
  EXPECT_EQ(*ga.bank.BalanceOf(1), 1100u);
  EXPECT_EQ(*gb.bank.BalanceOf(2), 900u);
  EXPECT_EQ(*gb.bank.BalanceOf(3), 1100u);

  TxnId check = *ga.heap->Begin();
  Ref arr = *ga.heap->GetRoot(check, 1);
  EXPECT_EQ(*ga.heap->ReadScalar(check, arr, 0), 555u);
  ASSERT_TRUE(ga.heap->CommitSync(check).ok());
}

TEST_F(DtxTest, PrepareFailureRollsBackEveryBranch) {
  TxnId ta = a_.StartTransfer(0, 1, 100);
  // Branch B's transaction is already ended: prepare must fail.
  TxnId tb = *b_.heap->Begin();
  ASSERT_TRUE(b_.heap->Abort(tb).ok());
  auto committed = coord_->CommitDistributed({{a_.heap.get(), ta},
                                              {b_.heap.get(), tb}});
  ASSERT_TRUE(committed.ok());
  EXPECT_FALSE(*committed);
  EXPECT_EQ(*a_.bank.BalanceOf(0), 1000u);  // rolled back on A
  EXPECT_EQ(*a_.bank.TotalBalance(), 64u * 1000);
}

TEST_F(DtxTest, PreparedStateSurvivesParticipantCrash) {
  TxnId ta = a_.StartTransfer(0, 1, 250);
  const Gtid gtid = coord_->NewGtid();
  auto voted = coord_->PrepareAll(gtid, {{a_.heap.get(), ta}});
  ASSERT_TRUE(voted.ok() && *voted);

  // Participant crashes while in doubt.
  a_.Crash(0.4, 7);
  auto in_doubt = a_.heap->InDoubtTransactions();
  ASSERT_EQ(in_doubt.size(), 1u);
  EXPECT_EQ(in_doubt[0].second, gtid);
  EXPECT_EQ(a_.heap->recovery_stats().prepared_restored, 1u);

  // The in-doubt transaction still holds its write locks: a conflicting
  // transfer must block.
  TxnId blocked = *a_.heap->Begin();
  Ref dir = *a_.heap->GetRoot(blocked, 0);
  Ref bucket = *a_.heap->ReadRef(blocked, dir, 0);
  EXPECT_TRUE(a_.heap->WriteScalar(blocked, bucket, 0, 0).IsBusy());
  ASSERT_TRUE(a_.heap->Abort(blocked).ok());

  // No decision was logged: presumed abort.
  ASSERT_TRUE(coord_->Resolve(a_.heap.get()).ok());
  EXPECT_EQ(*a_.bank.BalanceOf(0), 1000u);
  EXPECT_EQ(*a_.bank.BalanceOf(1), 1000u);
  EXPECT_TRUE(a_.heap->InDoubtTransactions().empty());
}

TEST_F(DtxTest, CommitDecisionSurvivesEverybodyCrashing) {
  TxnId ta = a_.StartTransfer(0, 1, 250);
  TxnId tb = b_.StartTransfer(4, 5, 250);
  const Gtid gtid = coord_->NewGtid();
  auto voted = coord_->PrepareAll(gtid, {{a_.heap.get(), ta},
                                         {b_.heap.get(), tb}});
  ASSERT_TRUE(voted.ok() && *voted);
  ASSERT_TRUE(coord_->LogCommitDecision(gtid).ok());

  // Both participants AND the coordinator crash before phase 2.
  a_.Crash(0.2, 11);
  b_.Crash(0.9, 13);
  coord_ = std::make_unique<TwoPhaseCoordinator>(coord_env_.get());
  EXPECT_TRUE(coord_->Committed(gtid));

  ASSERT_TRUE(coord_->Resolve(a_.heap.get()).ok());
  ASSERT_TRUE(coord_->Resolve(b_.heap.get()).ok());
  EXPECT_EQ(*a_.bank.BalanceOf(0), 750u);
  EXPECT_EQ(*a_.bank.BalanceOf(1), 1250u);
  EXPECT_EQ(*b_.bank.BalanceOf(4), 750u);
  EXPECT_EQ(*b_.bank.BalanceOf(5), 1250u);
}

TEST_F(DtxTest, PresumedAbortWhenCoordinatorNeverDecided) {
  TxnId ta = a_.StartTransfer(0, 1, 250);
  const Gtid gtid = coord_->NewGtid();
  auto voted = coord_->PrepareAll(gtid, {{a_.heap.get(), ta}});
  ASSERT_TRUE(voted.ok() && *voted);
  // Coordinator crashes before the decision; participant crashes too.
  a_.Crash(0.5, 17);
  coord_ = std::make_unique<TwoPhaseCoordinator>(coord_env_.get());
  EXPECT_FALSE(coord_->Committed(gtid));
  ASSERT_TRUE(coord_->Resolve(a_.heap.get()).ok());
  EXPECT_EQ(*a_.bank.TotalBalance(), 64u * 1000);
  EXPECT_EQ(*a_.bank.BalanceOf(0), 1000u);
}

TEST_F(DtxTest, InDoubtSurvivesGarbageCollection) {
  TxnId ta = a_.StartTransfer(0, 1, 250);
  const Gtid gtid = coord_->NewGtid();
  auto voted = coord_->PrepareAll(gtid, {{a_.heap.get(), ta}});
  ASSERT_TRUE(voted.ok() && *voted);

  // Collections move the objects the in-doubt transaction updated; its
  // undo information must follow (undo roots at the flip).
  ASSERT_TRUE(a_.heap->CollectStableFully().ok());
  ASSERT_TRUE(a_.heap->CollectStableFully().ok());

  ASSERT_TRUE(coord_->LogCommitDecision(gtid).ok());
  ASSERT_TRUE(coord_->Resolve(a_.heap.get()).ok());
  EXPECT_EQ(*a_.bank.BalanceOf(0), 750u);
  EXPECT_EQ(*a_.bank.BalanceOf(1), 1250u);
}

TEST_F(DtxTest, InDoubtSurvivesCrashThenCollectionThenAbort) {
  TxnId ta = a_.StartTransfer(0, 1, 250);
  const Gtid gtid = coord_->NewGtid();
  auto voted = coord_->PrepareAll(gtid, {{a_.heap.get(), ta}});
  ASSERT_TRUE(voted.ok() && *voted);

  a_.Crash(0.6, 23);
  ASSERT_TRUE(a_.heap->CollectStableFully().ok());  // moves everything
  a_.Crash(0.3, 29);  // crash again, mid-doubt
  ASSERT_EQ(a_.heap->InDoubtTransactions().size(), 1u);

  ASSERT_TRUE(coord_->Resolve(a_.heap.get()).ok());  // presumed abort
  EXPECT_EQ(*a_.bank.BalanceOf(0), 1000u);
  EXPECT_EQ(*a_.bank.TotalBalance(), 64u * 1000);
}

TEST_F(DtxTest, PreparedPromotionCommitsAcrossCrash) {
  // The prepared transaction publishes a new (volatile) object; promotion
  // happens at prepare, so the commit decision alone finishes the job even
  // after a crash.
  TxnId ta = *a_.heap->Begin();
  auto cls = a_.heap->RegisterClass({false, true});
  ASSERT_TRUE(cls.ok());
  Ref obj = *a_.heap->Allocate(ta, *cls, 2);
  ASSERT_TRUE(a_.heap->WriteScalar(ta, obj, 0, 777).ok());
  ASSERT_TRUE(a_.heap->SetRoot(ta, 5, obj).ok());

  const Gtid gtid = coord_->NewGtid();
  auto voted = coord_->PrepareAll(gtid, {{a_.heap.get(), ta}});
  ASSERT_TRUE(voted.ok() && *voted);
  ASSERT_TRUE(coord_->LogCommitDecision(gtid).ok());
  a_.Crash(0.5, 31);
  ASSERT_TRUE(coord_->Resolve(a_.heap.get()).ok());

  TxnId t = *a_.heap->Begin();
  Ref root = *a_.heap->GetRoot(t, 5);
  ASSERT_NE(root, kNullRef);
  EXPECT_EQ(*a_.heap->ReadScalar(t, root, 0), 777u);
  ASSERT_TRUE(a_.heap->Commit(t).ok());
}

TEST_F(DtxTest, ResolvedAbortReleasesLocks) {
  TxnId ta = a_.StartTransfer(0, 1, 100);
  const Gtid gtid = coord_->NewGtid();
  auto voted = coord_->PrepareAll(gtid, {{a_.heap.get(), ta}});
  ASSERT_TRUE(voted.ok() && *voted);
  ASSERT_TRUE(coord_->Resolve(a_.heap.get()).ok());  // presumed abort
  // Locks released: an ordinary transfer over the same accounts works.
  ASSERT_TRUE(a_.bank.Transfer(0, 1, 50).ok());
  EXPECT_EQ(*a_.bank.BalanceOf(0), 950u);
}

}  // namespace
}  // namespace sheap
