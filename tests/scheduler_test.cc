// Concurrency tests using the deterministic action-interleaving scheduler
// (paper §2.1 model): serializability of interleaved transfers, deadlock
// victim restart, interleaving with collections, and concurrent tracking
// by multiple transactions.

#include <gtest/gtest.h>

#include <memory>

#include "core/stable_heap.h"
#include "workload/scheduler.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

using workload::Bank;
using workload::Op;
using workload::Scheduler;

class SchedulerTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    env_ = std::make_unique<SimEnv>();
    StableHeapOptions opts;
    opts.stable_space_pages = 512;
    opts.volatile_space_pages = 256;
    auto heap = StableHeap::Open(env_.get(), opts);
    ASSERT_TRUE(heap.ok());
    heap_ = std::move(*heap);
  }

  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<StableHeap> heap_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerTest,
                         ::testing::Values(1, 7, 1234, 987654321));

// A counter object under root 0; each client increments it `reps` times in
// separate transactions. Serializability => final value = clients * reps.
TEST_P(SchedulerTest, InterleavedIncrementsSerialize) {
  {
    auto txn = heap_->Begin();
    auto counter = heap_->Allocate(*txn, kClassDataArray, 1);
    ASSERT_TRUE(counter.ok());
    ASSERT_TRUE(heap_->SetRoot(*txn, 0, *counter).ok());
    ASSERT_TRUE(heap_->Commit(*txn).ok());
  }
  // Increment = read-modify-write has no scripted arithmetic; emulate with
  // per-client distinct slots in a wide array instead: each client writes
  // its own slot repeatedly, then the test sums. Lock conflicts still occur
  // because every client locks the same object.
  {
    auto txn = heap_->Begin();
    auto arr = heap_->Allocate(*txn, kClassDataArray, 8);
    ASSERT_TRUE(arr.ok());
    ASSERT_TRUE(heap_->SetRoot(*txn, 1, *arr).ok());
    ASSERT_TRUE(heap_->Commit(*txn).ok());
  }
  Scheduler sched(heap_.get(), GetParam());
  constexpr uint64_t kClients = 4;
  constexpr uint64_t kReps = 20;
  for (uint64_t c = 0; c < kClients; ++c) {
    std::vector<Op> script;
    for (uint64_t r = 0; r < kReps; ++r) {
      script.push_back(Op::Begin());
      script.push_back(Op::GetRoot(0, 1));
      script.push_back(Op::WriteScalar(0, c, r + 1));
      script.push_back(Op::Commit());
    }
    sched.AddClient(std::move(script));
  }
  ASSERT_TRUE(sched.Run().ok());
  EXPECT_EQ(sched.stats().clients_completed, kClients);

  auto txn = heap_->Begin();
  auto arr = heap_->GetRoot(*txn, 1);
  ASSERT_TRUE(arr.ok());
  for (uint64_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(*heap_->ReadScalar(*txn, *arr, c), kReps);
  }
  ASSERT_TRUE(heap_->Commit(*txn).ok());
}

TEST_P(SchedulerTest, DeadlockVictimsRestartAndComplete) {
  // Two objects; clients lock them in opposite orders => deadlocks.
  {
    auto txn = heap_->Begin();
    auto a = heap_->Allocate(*txn, kClassDataArray, 1);
    auto b = heap_->Allocate(*txn, kClassDataArray, 1);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(heap_->SetRoot(*txn, 0, *a).ok());
    ASSERT_TRUE(heap_->SetRoot(*txn, 1, *b).ok());
    ASSERT_TRUE(heap_->Commit(*txn).ok());
  }
  Scheduler sched(heap_.get(), GetParam());
  for (int c = 0; c < 4; ++c) {
    std::vector<Op> script;
    for (int r = 0; r < 10; ++r) {
      const uint64_t first = c % 2;
      script.push_back(Op::Begin());
      script.push_back(Op::GetRoot(0, first));
      script.push_back(Op::GetRoot(1, 1 - first));
      script.push_back(Op::WriteScalar(0, 0, c * 100 + r));
      script.push_back(Op::WriteScalar(1, 0, c * 100 + r));
      script.push_back(Op::Commit());
    }
    sched.AddClient(std::move(script));
  }
  ASSERT_TRUE(sched.Run().ok());
  EXPECT_EQ(sched.stats().clients_completed, 4u);
  // With opposite lock orders and 4 clients, deadlocks are essentially
  // guaranteed under every seed; the run completing is the real assertion.
  EXPECT_GT(sched.stats().deadlock_restarts + sched.stats().busy_retries,
            0u);
}

TEST_P(SchedulerTest, AbortingClientsLeaveNoTrace) {
  {
    auto txn = heap_->Begin();
    auto arr = heap_->Allocate(*txn, kClassDataArray, 4);
    ASSERT_TRUE(arr.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(heap_->WriteScalar(*txn, *arr, i, 1000 + i).ok());
    }
    ASSERT_TRUE(heap_->SetRoot(*txn, 0, *arr).ok());
    ASSERT_TRUE(heap_->Commit(*txn).ok());
  }
  Scheduler sched(heap_.get(), GetParam());
  // Two aborting clients and one committing client.
  for (int c = 0; c < 2; ++c) {
    std::vector<Op> script;
    for (int r = 0; r < 5; ++r) {
      script.push_back(Op::Begin());
      script.push_back(Op::GetRoot(0, 0));
      script.push_back(Op::WriteScalar(0, c, 0));
      script.push_back(Op::AbortTxn());
    }
    sched.AddClient(std::move(script));
  }
  {
    std::vector<Op> script;
    script.push_back(Op::Begin());
    script.push_back(Op::GetRoot(0, 0));
    script.push_back(Op::WriteScalar(0, 3, 777));
    script.push_back(Op::Commit());
    sched.AddClient(std::move(script));
  }
  ASSERT_TRUE(sched.Run().ok());

  auto txn = heap_->Begin();
  auto arr = heap_->GetRoot(*txn, 0);
  EXPECT_EQ(*heap_->ReadScalar(*txn, *arr, 0), 1000u);
  EXPECT_EQ(*heap_->ReadScalar(*txn, *arr, 1), 1001u);
  EXPECT_EQ(*heap_->ReadScalar(*txn, *arr, 2), 1002u);
  EXPECT_EQ(*heap_->ReadScalar(*txn, *arr, 3), 777u);
  ASSERT_TRUE(heap_->Commit(*txn).ok());
}

TEST_P(SchedulerTest, ConcurrentTrackingByMultipleTransactions) {
  // Several clients build volatile structures and publish them under
  // different roots; tracking for each interleaves with the others (§5.1).
  Scheduler sched(heap_.get(), GetParam());
  constexpr uint64_t kClients = 4;
  for (uint64_t c = 0; c < kClients; ++c) {
    std::vector<Op> script;
    script.push_back(Op::Begin());
    // Build a small chain: n0 -> n1 -> n2 (ptr array of 2 slots each).
    script.push_back(Op::Allocate(0, kClassPtrArray, 2));
    script.push_back(Op::Allocate(1, kClassPtrArray, 2));
    script.push_back(Op::Allocate(2, kClassPtrArray, 2));
    script.push_back(Op::WriteRef(0, 0, 1));
    script.push_back(Op::WriteRef(1, 0, 2));
    script.push_back(Op::SetRoot(c, 0));  // tracking triggers here
    script.push_back(Op::WriteRef(1, 1, 2));  // write into likely-stable
    script.push_back(Op::Commit());
    sched.AddClient(std::move(script));
  }
  ASSERT_TRUE(sched.Run().ok());
  EXPECT_EQ(heap_->promotion_stats().objects_promoted, kClients * 3);
  EXPECT_GE(heap_->tracker_stats().invocations, kClients);

  // Each root reaches its 3-node chain.
  auto txn = heap_->Begin();
  for (uint64_t c = 0; c < kClients; ++c) {
    auto root = heap_->GetRoot(*txn, c);
    ASSERT_TRUE(root.ok());
    auto count = workload::CountReachable(heap_.get(), *txn, *root);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 3u) << "client " << c;
  }
  ASSERT_TRUE(heap_->Commit(*txn).ok());
}

TEST_P(SchedulerTest, BankTransfersInterleavedPreserveTotal) {
  Bank bank(heap_.get(), 7);
  ASSERT_TRUE(bank.Setup(32, 1000).ok());
  Scheduler sched(heap_.get(), GetParam());
  Rng rng(GetParam() * 31 + 1);
  for (int c = 0; c < 3; ++c) {
    std::vector<Op> script;
    for (int r = 0; r < 12; ++r) {
      const uint64_t from = rng.Uniform(32);
      const uint64_t to = (from + 1 + rng.Uniform(31)) % 32;
      script.push_back(Op::Begin());
      script.push_back(Op::GetRoot(0, 7));       // directory
      script.push_back(Op::ReadRef(1, 0, from / 64));
      script.push_back(Op::ReadRef(2, 0, to / 64));
      // Fixed amounts: move 1 from `from` to `to` by overwriting with
      // read-modify-write is not expressible in the script language, so
      // conflicts come from bucket write locks; values are rewritten
      // identically and the invariant trivially holds. The real assertion
      // is isolation: no lost/partial writes under interleaving.
      script.push_back(Op::ReadScalar(1, from % 64));
      script.push_back(Op::ReadScalar(2, to % 64));
      script.push_back(Op::WriteScalar(1, from % 64, 1000));
      script.push_back(Op::WriteScalar(2, to % 64, 1000));
      script.push_back(Op::Commit());
    }
    sched.AddClient(std::move(script));
  }
  ASSERT_TRUE(sched.Run().ok());
  EXPECT_EQ(*bank.TotalBalance(), 32u * 1000);
}

}  // namespace
}  // namespace sheap
