// Randomized torture test: a seeded stream of transactions (commits,
// aborts, graph surgery), collections (both areas, incremental steps,
// traps), checkpoints, background page write-backs, and crashes with
// random write-back subsets and torn tails. After every crash+recovery the
// invariants are checked against an oracle:
//   I3  committed effects present, uncommitted absent (bank total + per-
//       account model; committed graph checksum),
//   I4  object graph intact (checksum detects lost objects/sharing),
//   I6  volatile-only work never reappears.
// One test instance per seed (property-style sweep).

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/stable_heap.h"
#include "workload/graph_gen.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

using workload::Bank;
using workload::GraphChecksum;
using workload::NodeClass;
using workload::RegisterNodeClass;

struct TortureConfig {
  uint64_t seed;
  bool divided;
  bool incremental;
  PromotionMethod promotion = PromotionMethod::kAtCommit;
  GcBarrierMode barrier = GcBarrierMode::kPageProtection;
};

class TortureTest : public ::testing::TestWithParam<TortureConfig> {};

StableHeapOptions TortureOptions(const TortureConfig& cfg) {
  StableHeapOptions opts;
  opts.stable_space_pages = 512;
  opts.volatile_space_pages = 256;
  opts.divided_heap = cfg.divided;
  opts.incremental_gc = cfg.incremental;
  opts.promotion_method = cfg.promotion;
  opts.barrier_mode = cfg.barrier;
  return opts;
}

TEST_P(TortureTest, InvariantsHoldUnderRandomCrashes) {
  const TortureConfig cfg = GetParam();
  Rng rng(cfg.seed);
  auto env = std::make_unique<SimEnv>();
  auto opened = StableHeap::Open(env.get(), TortureOptions(cfg));
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<StableHeap> heap = std::move(*opened);

  auto cls_or = RegisterNodeClass(heap.get(), 2);
  ASSERT_TRUE(cls_or.ok());
  NodeClass cls = *cls_or;

  constexpr uint64_t kAccounts = 48;
  Bank bank(heap.get(), 0);
  ASSERT_TRUE(bank.Setup(kAccounts, 1000).ok());

  // Oracle state.
  std::map<uint64_t, uint64_t> balances;
  for (uint64_t a = 0; a < kAccounts; ++a) balances[a] = 1000;
  uint64_t committed_graph_checksum = 0;  // 0 = no graph committed yet

  auto reopen_and_verify = [&]() {
    Bank b(heap.get(), 0);
    ASSERT_TRUE(b.Attach().ok());
    auto total = b.TotalBalance();
    ASSERT_TRUE(total.ok()) << total.status().ToString();
    EXPECT_EQ(*total, kAccounts * 1000);
    for (uint64_t a = 0; a < kAccounts; a += 7) {
      EXPECT_EQ(*b.BalanceOf(a), balances[a]) << "account " << a;
    }
    if (committed_graph_checksum != 0) {
      auto txn = heap->Begin();
      ASSERT_TRUE(txn.ok());
      auto root = heap->GetRoot(*txn, 1);
      ASSERT_TRUE(root.ok());
      ASSERT_NE(*root, kNullRef);
      auto sum = GraphChecksum(heap.get(), *txn, *root);
      ASSERT_TRUE(sum.ok()) << sum.status().ToString();
      EXPECT_EQ(*sum, committed_graph_checksum);
      ASSERT_TRUE(heap->Commit(*txn).ok());
    }
  };

  const int kSteps = 120;
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 35) {
      // Bank transfer (sometimes aborted).
      const uint64_t from = rng.Uniform(kAccounts);
      const uint64_t to = (from + 1 + rng.Uniform(kAccounts - 1)) % kAccounts;
      const uint64_t amount = 1 + rng.Uniform(50);
      const bool abort = rng.Bernoulli(0.25);
      Status st = bank.Transfer(from, to, amount, abort);
      if (st.ok() && !abort) {
        balances[from] -= amount;
        balances[to] += amount;
      } else if (!st.ok()) {
        ASSERT_TRUE(st.IsInvalidArgument()) << st.ToString();  // broke
      }
    } else if (dice < 50) {
      // Replace the committed graph under root 1 (new random tree).
      auto txn = heap->Begin();
      ASSERT_TRUE(txn.ok());
      auto root = workload::BuildTree(heap.get(), *txn, cls,
                                      1 + rng.Uniform(4));
      ASSERT_TRUE(root.ok()) << root.status().ToString();
      ASSERT_TRUE(heap->SetRoot(*txn, 1, *root).ok());
      if (rng.Bernoulli(0.2)) {
        ASSERT_TRUE(heap->Abort(*txn).ok());  // oracle unchanged
      } else {
        ASSERT_TRUE(heap->Commit(*txn).ok());
        auto t2 = heap->Begin();
        auto r2 = heap->GetRoot(*t2, 1);
        auto sum = GraphChecksum(heap.get(), *t2, *r2);
        ASSERT_TRUE(sum.ok());
        committed_graph_checksum = *sum;
        ASSERT_TRUE(heap->Commit(*t2).ok());
      }
    } else if (dice < 60) {
      // Volatile-only churn: build and drop without publishing (I6).
      auto txn = heap->Begin();
      ASSERT_TRUE(txn.ok());
      auto junk = workload::BuildTree(heap.get(), *txn, cls,
                                      1 + rng.Uniform(3));
      ASSERT_TRUE(junk.ok());
      if (rng.Bernoulli(0.5)) {
        ASSERT_TRUE(heap->Commit(*txn).ok());
      } else {
        ASSERT_TRUE(heap->Abort(*txn).ok());
      }
    } else if (dice < 70) {
      if (cfg.incremental && !heap->stable_gc()->collecting() &&
          rng.Bernoulli(0.5)) {
        ASSERT_TRUE(heap->StartStableCollection().ok());
      } else if (cfg.incremental && heap->stable_gc()->collecting()) {
        ASSERT_TRUE(heap->StepStableCollection(1 + rng.Uniform(4)).ok());
      } else {
        ASSERT_TRUE(heap->CollectStableFully().ok());
      }
    } else if (dice < 76 && cfg.divided) {
      ASSERT_TRUE(heap->CollectVolatile().ok());
    } else if (dice < 84) {
      ASSERT_TRUE(heap->WriteBackPages(rng.NextDouble(), rng.Next()).ok());
    } else if (dice < 90) {
      ASSERT_TRUE(heap->Checkpoint().ok());
    } else {
      // Crash.
      CrashOptions crash;
      crash.writeback_fraction = rng.NextDouble();
      crash.seed = rng.Next();
      crash.tear_tail_bytes = rng.Bernoulli(0.5) ? rng.Uniform(5000) : 0;
      ASSERT_TRUE(heap->SimulateCrash(crash).ok());
      heap.reset();
      auto reopened = StableHeap::Open(env.get(), TortureOptions(cfg));
      ASSERT_TRUE(reopened.ok())
          << "step " << step << ": " << reopened.status().ToString();
      heap = std::move(*reopened);
      bank = Bank(heap.get(), 0);
      Status attached = bank.Attach();
      ASSERT_TRUE(attached.ok())
          << "step " << step << ": " << attached.ToString();
      reopen_and_verify();
      if (::testing::Test::HasFailure()) {
        FAIL() << "invariants broken after crash at step " << step;
      }
    }
  }

  // Final crash + verify, always.
  ASSERT_TRUE(heap->SimulateCrash(CrashOptions{0.5, rng.Next(), 100}).ok());
  heap.reset();
  auto reopened = StableHeap::Open(env.get(), TortureOptions(cfg));
  ASSERT_TRUE(reopened.ok());
  heap = std::move(*reopened);
  bank = Bank(heap.get(), 0);
  ASSERT_TRUE(bank.Attach().ok());
  reopen_and_verify();
}

std::vector<TortureConfig> MakeConfigs() {
  std::vector<TortureConfig> configs;
  for (uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull, 66ull}) {
    configs.push_back({seed, true, true});
  }
  for (uint64_t seed : {101ull, 202ull}) {
    configs.push_back({seed, false, true});   // all-stable incremental
  }
  for (uint64_t seed : {301ull, 302ull}) {
    configs.push_back({seed, true, false});   // divided, stop-the-world
  }
  for (uint64_t seed : {401ull, 402ull, 403ull}) {
    // Method-2 promotion (defer the move to the next volatile collection).
    configs.push_back(
        {seed, true, true, PromotionMethod::kAtNextVolatileGc});
  }
  for (uint64_t seed : {501ull, 502ull}) {
    // Baker per-access barrier (§3.8).
    configs.push_back({seed, true, true, PromotionMethod::kAtCommit,
                       GcBarrierMode::kPerAccess});
  }
  for (uint64_t seed : {601ull, 602ull}) {
    // All-stable Baker.
    configs.push_back({seed, false, true, PromotionMethod::kAtCommit,
                       GcBarrierMode::kPerAccess});
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TortureTest, ::testing::ValuesIn(MakeConfigs()),
    [](const ::testing::TestParamInfo<TortureConfig>& param_info) {
      return std::string(param_info.param.divided ? "Div" : "All") +
             (param_info.param.incremental ? "Inc" : "Stw") +
             (param_info.param.promotion == PromotionMethod::kAtNextVolatileGc
                  ? "M2"
                  : "") +
             (param_info.param.barrier == GcBarrierMode::kPerAccess ? "Baker"
                                                              : "") +
             "Seed" + std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace sheap
