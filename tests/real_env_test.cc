// Real-backend tests (ctest -L real): the properties that only mean
// something on actual hardware.
//
//  - Durability across a *process* kill: a child opens a heap on RealEnv,
//    commits counter increments, and records each commit-OK in a synced
//    sidecar file; the parent SIGKILLs it at a randomized point, reopens
//    the same directory, and asserts recovery preserves every acknowledged
//    commit. The simulator's crash matrix proves the protocol; this proves
//    the protocol's mapping onto fdatasync.
//  - O_DIRECT alignment fallback: the page store round-trips and persists
//    whether the filesystem grants O_DIRECT or refuses it (tmpfs), and the
//    stats say which path served the I/O.
//  - SIGSEGV handler: concurrent traps from many threads, repeated
//    protect/trap cycles, and — via fork — a genuine wild fault still
//    killing the process with SIGSEGV (the handler must not swallow
//    crashes that are not read-barrier traps).

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/stable_heap.h"
#include "storage/real_disk.h"
#include "storage/real_env.h"
#include "storage/real_log_device.h"
#include "storage/real_mapping.h"

namespace sheap {
namespace {

std::string TestDir(const std::string& tag) {
  std::filesystem::path p = std::filesystem::temp_directory_path() /
                            ("sheap_real_test." + std::to_string(::getpid())) /
                            tag;
  std::error_code ec;
  std::filesystem::remove_all(p, ec);
  std::filesystem::create_directories(p, ec);
  return p.string();
}

std::unique_ptr<RealEnv> MustEnv(const std::string& dir,
                                 bool hardware_barrier = false) {
  RealEnvOptions opts;
  opts.dir = dir;
  opts.hardware_barrier = hardware_barrier;
  auto env = RealEnv::Create(opts);
  EXPECT_TRUE(env.ok()) << env.status().ToString();
  return std::move(env.value());
}

StableHeapOptions SmallHeapOptions() {
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 64;
  opts.divided_heap = false;
  return opts;
}

// ------------------------------------------------------------- RealDisk

TEST(RealDiskTest, RoundTripsAndPersistsAcrossReopen) {
  const std::string dir = TestDir("disk-roundtrip");
  SimClock clock;
  FaultInjector faults;
  auto disk = RealDisk::Open(dir + "/pages.db", /*direct_io=*/true, &clock,
                             &faults);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  PageImage img;
  img.WriteWord(5, 0xfeedface);
  img.page_lsn = 41;
  ASSERT_TRUE((*disk)->WritePage(7, img).ok());
  PageImage out;
  ASSERT_TRUE((*disk)->ReadPage(7, &out).ok());
  EXPECT_EQ(out.ReadWord(5), 0xfeedfaceu);
  EXPECT_EQ(out.page_lsn, 41u);

  // Exactly one of the two paths served the write, and the stats admit
  // which (tmpfs refuses O_DIRECT; ext4 grants it — both are correct).
  const DiskStats st = (*disk)->stats();
  EXPECT_EQ(st.page_writes, 1u);
  if ((*disk)->direct_io()) {
    EXPECT_GT(st.direct_io_writes, 0u);
    EXPECT_EQ(st.buffered_fallbacks, 0u);
  } else {
    EXPECT_EQ(st.direct_io_writes, 0u);
    EXPECT_GT(st.buffered_fallbacks, 0u);
  }

  disk->reset();  // close
  auto reopened = RealDisk::Open(dir + "/pages.db", true, &clock, &faults);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Exists(7));
  EXPECT_EQ((*reopened)->PageCount(), 1u);
  PageImage again;
  ASSERT_TRUE((*reopened)->ReadPage(7, &again).ok());
  EXPECT_EQ(again.ReadWord(5), 0xfeedfaceu);
  EXPECT_EQ(again.page_lsn, 41u);
}

TEST(RealDiskTest, BufferedModeRoundTripsToo) {
  const std::string dir = TestDir("disk-buffered");
  SimClock clock;
  FaultInjector faults;
  auto disk = RealDisk::Open(dir + "/pages.db", /*direct_io=*/false, &clock,
                             &faults);
  ASSERT_TRUE(disk.ok());
  EXPECT_FALSE((*disk)->direct_io());
  PageImage img;
  img.WriteWord(0, 123);
  ASSERT_TRUE((*disk)->WritePage(0, img).ok());
  ASSERT_TRUE((*disk)->WritePage(3, img).ok());
  (*disk)->DropPage(0);
  PageImage out;
  ASSERT_TRUE((*disk)->ReadPage(0, &out).ok());
  EXPECT_EQ(out.ReadWord(0), 0u);  // dropped pages read fresh
  EXPECT_FALSE((*disk)->Exists(0));
  EXPECT_TRUE((*disk)->Exists(3));
}

TEST(RealDiskTest, UnwrittenPagesReadZero) {
  const std::string dir = TestDir("disk-fresh");
  SimClock clock;
  FaultInjector faults;
  auto disk = RealDisk::Open(dir + "/pages.db", true, &clock, &faults);
  ASSERT_TRUE(disk.ok());
  PageImage out;
  ASSERT_TRUE((*disk)->ReadPage(99, &out).ok());
  EXPECT_EQ(out.page_lsn, kInvalidLsn);
  for (uint32_t w = 0; w < kWordsPerPage; ++w) {
    ASSERT_EQ(out.ReadWord(w), 0u);
  }
  EXPECT_EQ(disk.value()->stats().fresh_reads, 1u);
}

// -------------------------------------------------------- RealLogDevice

TEST(RealLogDeviceTest, DurableBarrierSurvivesReopenStagedBytesDoNot) {
  const std::string dir = TestDir("log-barrier");
  SimClock clock;
  FaultInjector faults;
  auto log = RealLogDevice::Open(dir + "/wal", &clock, &faults);
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  const uint8_t a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE((*log)->Append(a, 8).ok());
  (*log)->MarkDurableBarrier();
  EXPECT_EQ((*log)->durable_barrier(), 8u);
  const uint8_t b[4] = {9, 9, 9, 9};
  ASSERT_TRUE((*log)->Append(b, 4).ok());  // staged, never synced
  EXPECT_EQ((*log)->size(), 12u);
  (*log)->SetMasterLsn(42);

  // Reopen without Force: the staged suffix dies with the process image,
  // the synced prefix and the master record survive.
  log->reset();
  auto reopened = RealLogDevice::Open(dir + "/wal", &clock, &faults);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 8u);
  EXPECT_EQ((*reopened)->durable_barrier(), 8u);
  EXPECT_EQ((*reopened)->master_lsn(), 42u);
  uint8_t out[8];
  ASSERT_TRUE((*reopened)->ReadAt(0, 8, out).ok());
  EXPECT_EQ(0, std::memcmp(out, a, 8));
}

TEST(RealLogDeviceTest, TearTailClampsAtDurableBarrier) {
  const std::string dir = TestDir("log-tear");
  SimClock clock;
  FaultInjector faults;
  auto log = RealLogDevice::Open(dir + "/wal", &clock, &faults);
  ASSERT_TRUE(log.ok());
  uint8_t bytes[16] = {};
  ASSERT_TRUE((*log)->Append(bytes, 10).ok());
  (*log)->MarkDurableBarrier();
  ASSERT_TRUE((*log)->Append(bytes, 6).ok());
  (*log)->TearTail(100);  // wants everything; clamped at the barrier
  EXPECT_EQ((*log)->size(), 10u);
}

TEST(RealLogDeviceTest, ForceCountsRealSyncs) {
  const std::string dir = TestDir("log-force");
  SimClock clock;
  FaultInjector faults;
  auto log = RealLogDevice::Open(dir + "/wal", &clock, &faults);
  ASSERT_TRUE(log.ok());
  uint8_t bytes[64] = {7};
  ASSERT_TRUE((*log)->Append(bytes, 64).ok());
  (*log)->Force();
  const LogDeviceStats st = (*log)->stats();
  EXPECT_EQ(st.forces, 1u);
  EXPECT_GT(st.writev_batches, 0u);
  EXPECT_GT(st.fdatasyncs, 0u);
  // A second force with nothing staged must not sync again.
  (*log)->Force();
  EXPECT_EQ((*log)->stats().fdatasyncs, st.fdatasyncs);
}

// ------------------------------------------------------ heap on RealEnv

TEST(RealEnvHeapTest, CommitRecoverInProcess) {
  const std::string dir = TestDir("heap-basic");
  auto env = MustEnv(dir);
  auto opened = StableHeap::Open(env.get(), SmallHeapOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto heap = std::move(opened.value());

  auto cls = heap->RegisterClass({false, false});
  ASSERT_TRUE(cls.ok());
  TxnId txn = *heap->Begin();
  Ref obj = *heap->Allocate(txn, *cls, 2);
  ASSERT_TRUE(heap->WriteScalar(txn, obj, 0, 7).ok());
  ASSERT_TRUE(heap->SetRoot(txn, 0, obj).ok());
  ASSERT_TRUE(heap->Commit(txn).ok());

  TxnId loser = *heap->Begin();
  Ref lobj = *heap->GetRoot(loser, 0);
  ASSERT_TRUE(heap->WriteScalar(loser, lobj, 0, 999).ok());
  ASSERT_TRUE(heap->SimulateCrash(CrashOptions{0.5, 3, 0}).ok());
  heap.reset();

  auto recovered = StableHeap::Open(env.get(), SmallHeapOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  heap = std::move(recovered.value());
  TxnId check = *heap->Begin();
  Ref root = *heap->GetRoot(check, 0);
  EXPECT_EQ(*heap->ReadScalar(check, root, 0), 7u);  // loser undone
  ASSERT_TRUE(heap->Commit(check).ok());
}

// -------------------------------------------- fork kill-and-reopen harness

// Child protocol: increment a committed counter forever; after each
// commit-OK, record the new count in a synced sidecar file. A SIGKILL can
// land anywhere — mid-commit, between commit and sidecar write, mid-sync.
// Invariant checked by the parent: recovered counter >= last acked count.
// (The recovered counter may exceed the sidecar — a commit can be durable
// before its ack is — but it may never be behind.)

constexpr uint64_t kSidecarMagic = 0x53484b43;  // "SHKC"

uint64_t ReadSidecar(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return 0;  // killed before the first ack
  uint64_t rec[2] = {0, 0};
  const ssize_t n = ::pread(fd, rec, sizeof rec, 0);
  ::close(fd);
  if (n != static_cast<ssize_t>(sizeof rec) || rec[0] != kSidecarMagic) {
    return 0;
  }
  return rec[1];
}

[[noreturn]] void ChildCommitLoop(const std::string& dir,
                                  const std::string& sidecar) {
  RealEnvOptions ropts;
  ropts.dir = dir;
  ropts.hardware_barrier = false;
  auto env = RealEnv::Create(ropts);
  if (!env.ok()) _exit(10);
  StableHeapOptions opts = SmallHeapOptions();
  opts.force_on_commit = true;  // every commit durable before OK
  auto heap = StableHeap::Open(env.value().get(), opts);
  if (!heap.ok()) _exit(11);

  auto cls = (*heap)->RegisterClass({false});
  if (!cls.ok()) _exit(12);
  {
    TxnId txn = *(*heap)->Begin();
    Ref obj = *(*heap)->Allocate(txn, *cls, 1);
    if (!(*heap)->WriteScalar(txn, obj, 0, 0).ok()) _exit(13);
    if (!(*heap)->SetRoot(txn, 0, obj).ok()) _exit(13);
    if (!(*heap)->Commit(txn).ok()) _exit(13);
  }
  int fd = ::open(sidecar.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd < 0) _exit(14);
  for (uint64_t count = 1;; ++count) {
    TxnId txn = *(*heap)->Begin();
    Ref obj = *(*heap)->GetRoot(txn, 0);
    uint64_t v = *(*heap)->ReadScalar(txn, obj, 0);
    if (!(*heap)->WriteScalar(txn, obj, 0, v + 1).ok()) _exit(15);
    if (!(*heap)->Commit(txn).ok()) _exit(15);
    uint64_t rec[2] = {kSidecarMagic, count};
    if (::pwrite(fd, rec, sizeof rec, 0) !=
        static_cast<ssize_t>(sizeof rec)) {
      _exit(16);
    }
    if (::fdatasync(fd) != 0) _exit(16);
  }
}

void KillAndReopenOnce(unsigned delay_us, int round) {
  const std::string dir = TestDir("fork-kill-" + std::to_string(round));
  const std::string sidecar = dir + "/acked";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ChildCommitLoop(dir, sidecar);  // never returns
  }

  // Let the child reach steady state (first ack synced), then kill it at
  // the randomized point.
  for (int spin = 0; spin < 20000 && ReadSidecar(sidecar) == 0; ++spin) {
    ::usleep(100);
  }
  ::usleep(delay_us);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  const uint64_t acked = ReadSidecar(sidecar);
  ASSERT_GT(acked, 0u) << "child never acked a commit";

  RealEnvOptions ropts;
  ropts.dir = dir;
  ropts.hardware_barrier = false;
  auto env = RealEnv::Create(ropts);
  ASSERT_TRUE(env.ok());
  auto heap = StableHeap::Open(env.value().get(), SmallHeapOptions());
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  TxnId txn = *(*heap)->Begin();
  Ref obj = *(*heap)->GetRoot(txn, 0);
  const uint64_t recovered = *(*heap)->ReadScalar(txn, obj, 0);
  ASSERT_TRUE((*heap)->Commit(txn).ok());
  EXPECT_GE(recovered, acked)
      << "round " << round << ": lost " << (acked - recovered)
      << " acknowledged commit(s) of " << acked;
}

TEST(RealEnvKillTest, AcknowledgedCommitsSurviveSigkill) {
  // Deterministically seeded pseudo-random kill points: spread from
  // "immediately after first ack" to "well into the run".
  uint64_t seed = 0x5eed5eed;
  for (int round = 0; round < 4; ++round) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    const unsigned delay_us = 500 + static_cast<unsigned>(seed >> 33) % 20000;
    KillAndReopenOnce(delay_us, round);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ----------------------------------------------------- SIGSEGV handler

TEST(RealMappingTest, TrapUnprotectsAndCounts) {
  auto mapping = RealMapping::Create(16);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  auto& m = *mapping.value();
  m.Protect(0, 16);
  EXPECT_TRUE(m.Touch(3));   // protected: takes a real SIGSEGV
  EXPECT_FALSE(m.Touch(3));  // handler unprotected exactly that page
  EXPECT_TRUE(m.Touch(4));   // neighbours stay protected
  EXPECT_EQ(m.trap_count(), 2u);
}

TEST(RealMappingTest, RepeatedProtectCycles) {
  auto mapping = RealMapping::Create(4);
  ASSERT_TRUE(mapping.ok());
  auto& m = *mapping.value();
  for (int cycle = 0; cycle < 50; ++cycle) {
    m.Protect(0, 4);
    for (PageId pid = 0; pid < 4; ++pid) {
      ASSERT_TRUE(m.Touch(pid));
    }
  }
  EXPECT_EQ(m.trap_count(), 200u);
}

TEST(RealMappingTest, ConcurrentTrapsFromManyThreads) {
  constexpr uint64_t kPages = 256;
  constexpr int kThreads = 4;
  auto mapping = RealMapping::Create(kPages);
  ASSERT_TRUE(mapping.ok());
  auto& m = *mapping.value();
  m.Protect(0, kPages);

  // Disjoint ranges: every touch must trap, concurrently, with the
  // async-signal-safe handler running in several threads at once.
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      const uint64_t per = kPages / kThreads;
      for (uint64_t pid = t * per; pid < (t + 1) * per; ++pid) {
        if (!m.Touch(pid)) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(m.trap_count(), kPages);

  // Same page from all threads: exactly one thread's fault unprotects it;
  // the others either trap first or read it already-open. No wedge, no
  // crash, and afterwards the page is open.
  m.Protect(7, 1);
  std::vector<std::thread> racers;
  for (int t = 0; t < kThreads; ++t) {
    racers.emplace_back([&]() { (void)m.Touch(7); });
  }
  for (auto& th : racers) th.join();
  EXPECT_FALSE(m.Touch(7));
}

TEST(RealMappingTest, TwoMappingsShareOneHandler) {
  auto a = RealMapping::Create(4);
  auto b = RealMapping::Create(4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  (*a)->Protect(0, 4);
  (*b)->Protect(0, 4);
  EXPECT_TRUE((*a)->Touch(1));
  EXPECT_TRUE((*b)->Touch(1));
  EXPECT_EQ((*a)->trap_count(), 1u);
  EXPECT_EQ((*b)->trap_count(), 1u);
}

TEST(RealMappingDeathTest, WildFaultStillCrashes) {
  // With a mapping registered (handler installed), a SIGSEGV outside any
  // mapping must still terminate the process with SIGSEGV — fork a child
  // and watch it die rather than hang retrying the faulting load.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto mapping = RealMapping::Create(4);
    if (!mapping.ok()) _exit(30);
    (*mapping)->Protect(0, 4);
    if (!(*mapping)->Touch(0)) _exit(31);  // handler works in this child
    volatile uint64_t* wild = reinterpret_cast<uint64_t*>(0xdead000);
    uint64_t v = *wild;  // must crash, not resume
    _exit(static_cast<int>(v & 0x7f));
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status)) << "child exited " << WEXITSTATUS(status);
  if (WIFSIGNALED(status)) {
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  }
}

}  // namespace
}  // namespace sheap
