// Parallel-scan determinism (see src/gc/scan_executor.h): with a fixed
// workload, the collector must produce byte-identical results for every
// scan worker count — same WAL bytes (kGcCopyBatch / kGcScan spool order),
// same to-space layout and disk pages, same space table and UTT, and the
// same stats modulo the timing/steal fields. Workers only change how fast
// the scan phase runs in simulated time.
//
// This test runs under TSan in CI (the scan workers genuinely race on the
// claim index) — keep it free of any test-only synchronization that would
// mask a data race in the executor itself.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/stable_heap.h"
#include "gc/atomic_gc.h"
#include "util/coder.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

StableHeapOptions GcOptions(uint32_t gc_threads) {
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 128;
  opts.divided_heap = false;
  opts.buffer_pool_frames = 4096;
  opts.gc_threads = gc_threads;
  return opts;
}

constexpr uint64_t kLeaves = 40;
constexpr uint64_t kLeafSlots = 300;
constexpr uint64_t kWebSlots = 600;

/// Deterministic live graph spanning ~25 to-space pages: a pointer
/// directory of large scalar leaves (clean executor pages + one big copy
/// wave), plus a multi-page pointer web whose tail pages are scanned by
/// the executor and plan copies of their own leaves (kGcCopyBatch).
void PlantGraph(StableHeap* heap) {
  ClassId big = *heap->RegisterClass(std::vector<bool>(kLeafSlots, false));
  ClassId dir = *heap->RegisterClass(std::vector<bool>(kLeaves, true));

  TxnId setup = *heap->Begin();
  Ref dref = *heap->AllocateStable(setup, dir, kLeaves);
  ASSERT_TRUE(heap->SetRoot(setup, 0, dref).ok());
  for (uint64_t i = 0; i < kLeaves; ++i) {
    Ref obj = *heap->AllocateStable(setup, big, kLeafSlots);
    ASSERT_TRUE(heap->WriteScalar(setup, obj, 0, 1000 + i).ok());
    ASSERT_TRUE(heap->WriteRef(setup, dref, i, obj).ok());
  }
  Ref web = *heap->AllocateStable(setup, kClassPtrArray, kWebSlots);
  for (uint64_t i = 0; i < kWebSlots; i += 40) {
    Ref leaf = *heap->AllocateStable(setup, kClassDataArray, 3);
    ASSERT_TRUE(heap->WriteScalar(setup, leaf, 0, i).ok());
    ASSERT_TRUE(heap->WriteRef(setup, web, i, leaf).ok());
  }
  ASSERT_TRUE(heap->SetRoot(setup, 1, web).ok());
  ASSERT_TRUE(heap->Commit(setup).ok());
}

struct RunState {
  GcStats gc;
  std::vector<uint8_t> log_bytes;
  std::vector<PageImage> pages;  // every page slot on the sim disk
  std::vector<uint8_t> spaces_enc;
  std::vector<uint8_t> utt_enc;
  std::vector<uint8_t> gc_enc;  // AtomicGc checkpoint payload (sem/LOT)
};

void Capture(SimEnv* env, StableHeap* heap, const StableHeapOptions& opts,
             RunState* s) {
  s->gc = heap->stable_gc_stats();
  Encoder spaces_enc(&s->spaces_enc);
  heap->spaces()->EncodeTo(&spaces_enc);
  Encoder utt_enc(&s->utt_enc);
  heap->utt()->EncodeTo(&utt_enc);
  Encoder gc_enc(&s->gc_enc);
  heap->stable_gc()->EncodeTo(&gc_enc);

  ASSERT_TRUE(heap->Checkpoint().ok());
  ASSERT_TRUE(heap->pool()->FlushAll().ok());
  s->log_bytes.assign(env->log()->data(),
                      env->log()->data() + env->log()->size());
  const uint64_t npages =
      (opts.stable_space_pages + opts.volatile_space_pages) * 2 + 64;
  for (PageId pid = 0; pid < npages; ++pid) {
    PageImage img;
    ASSERT_TRUE(env->disk()->ReadPage(pid, &img).ok());
    s->pages.push_back(img);
  }
}

/// Two full incremental collections driven in fixed-size steps, with a
/// mutator traversal interleaved mid-collection (read-barrier traps mix
/// serial trap scans with executor rounds in the same log).
RunState RunCollections(uint32_t gc_threads) {
  const StableHeapOptions opts = GcOptions(gc_threads);
  auto env = std::make_unique<SimEnv>();
  std::unique_ptr<StableHeap> heap =
      std::move(*StableHeap::Open(env.get(), opts));
  PlantGraph(heap.get());

  EXPECT_TRUE(heap->StartStableCollection().ok());
  while (heap->stable_gc()->collecting()) {
    EXPECT_TRUE(heap->StepStableCollection(8).ok());
  }

  // Mid-collection mutator interleaving for the second cycle.
  EXPECT_TRUE(heap->StartStableCollection().ok());
  TxnId txn = *heap->Begin();
  Ref dref = *heap->GetRoot(txn, 0);
  for (uint64_t i = 0; i < kLeaves; i += 5) {
    Ref obj = *heap->ReadRef(txn, dref, i);
    EXPECT_EQ(*heap->ReadScalar(txn, obj, 0), 1000 + i);
    EXPECT_TRUE(heap->WriteScalar(txn, obj, 1, i).ok());
  }
  EXPECT_TRUE(heap->Commit(txn).ok());
  while (heap->stable_gc()->collecting()) {
    EXPECT_TRUE(heap->StepStableCollection(8).ok());
  }

  RunState s;
  Capture(env.get(), heap.get(), opts, &s);
  return s;
}

/// Crash mid-collection, recover with the same worker count, finish the
/// interrupted collection: recovery state and the resumed scan must also
/// be worker-count-independent.
RunState CrashAndRecover(uint32_t gc_threads) {
  const StableHeapOptions opts = GcOptions(gc_threads);
  auto env = std::make_unique<SimEnv>();
  {
    std::unique_ptr<StableHeap> heap =
      std::move(*StableHeap::Open(env.get(), opts));
    PlantGraph(heap.get());
    EXPECT_TRUE(heap->StartStableCollection().ok());
    EXPECT_TRUE(heap->StepStableCollection(8).ok());
    EXPECT_TRUE(heap->StepStableCollection(8).ok());
    EXPECT_TRUE(heap->SimulateCrash(CrashOptions{0.5, 23, 96}).ok());
  }
  std::unique_ptr<StableHeap> heap =
      std::move(*StableHeap::Open(env.get(), opts));
  EXPECT_TRUE(heap->CollectStableFully().ok());

  RunState s;
  Capture(env.get(), heap.get(), opts, &s);
  return s;
}

void ExpectIdentical(const RunState& a, const RunState& b,
                     uint32_t threads) {
  SCOPED_TRACE("gc_threads=" + std::to_string(threads));
  // Stats: everything but the worker count and the timing/steal fields.
  EXPECT_EQ(a.gc.collections_started, b.gc.collections_started);
  EXPECT_EQ(a.gc.collections_completed, b.gc.collections_completed);
  EXPECT_EQ(a.gc.objects_copied, b.gc.objects_copied);
  EXPECT_EQ(a.gc.words_copied, b.gc.words_copied);
  EXPECT_EQ(a.gc.pages_scanned, b.gc.pages_scanned);
  EXPECT_EQ(a.gc.read_barrier_traps, b.gc.read_barrier_traps);
  EXPECT_EQ(a.gc.read_barrier_fast_hits, b.gc.read_barrier_fast_hits);
  EXPECT_EQ(a.gc.read_barrier_fast_misses, b.gc.read_barrier_fast_misses);
  EXPECT_EQ(a.gc.scan_cursor_steps, b.gc.scan_cursor_steps);
  EXPECT_EQ(a.gc.waste_words, b.gc.waste_words);
  EXPECT_EQ(a.gc.scan_rounds, b.gc.scan_rounds);
  EXPECT_EQ(a.gc.copy_batch_records, b.gc.copy_batch_records);
  EXPECT_EQ(a.gc.copy_batch_objects, b.gc.copy_batch_objects);
  EXPECT_EQ(a.gc.scan_run_records, b.gc.scan_run_records);
  EXPECT_EQ(a.gc.scan_run_pages, b.gc.scan_run_pages);

  EXPECT_EQ(a.spaces_enc, b.spaces_enc) << "space table diverged";
  EXPECT_EQ(a.utt_enc, b.utt_enc) << "UTT diverged";
  EXPECT_EQ(a.gc_enc, b.gc_enc) << "collector state (sem/LOT) diverged";
  EXPECT_EQ(a.log_bytes, b.log_bytes)
      << "log bytes diverged (spool merge order)";

  ASSERT_EQ(a.pages.size(), b.pages.size());
  for (size_t i = 0; i < a.pages.size(); ++i) {
    EXPECT_EQ(a.pages[i].page_lsn, b.pages[i].page_lsn) << "page " << i;
    ASSERT_EQ(0, std::memcmp(a.pages[i].data.data(), b.pages[i].data.data(),
                             kPageSizeBytes))
        << "page " << i << " bytes diverged";
  }
}

TEST(GcParallelTest, WorkloadIsDeterministic) {
  // Sanity for everything below: the single-worker run is reproducible.
  RunState a = RunCollections(1);
  RunState b = RunCollections(1);
  ASSERT_EQ(a.log_bytes, b.log_bytes);
}

TEST(GcParallelTest, ByteIdenticalAcrossWorkerCounts) {
  RunState serial = RunCollections(1);
  EXPECT_EQ(serial.gc.scan_workers, 1u);
  // The workload exercises the whole protocol surface being compared.
  EXPECT_GT(serial.gc.copy_batch_records, 0u);
  EXPECT_GT(serial.gc.copy_batch_objects, serial.gc.copy_batch_records);
  EXPECT_GT(serial.gc.scan_run_records, 0u);
  EXPECT_GE(serial.gc.scan_run_pages, 2 * serial.gc.scan_run_records);
  EXPECT_GT(serial.gc.read_barrier_traps, 0u);
  EXPECT_GT(serial.gc.scan_rounds, 2u);
  // The paper's core claim: the collector never writes synchronously.
  EXPECT_EQ(serial.gc.sync_page_writes, 0u);
  for (uint32_t threads : {2u, 4u, 64u}) {
    RunState par = RunCollections(threads);
    EXPECT_EQ(par.gc.scan_workers, threads);
    ExpectIdentical(serial, par, threads);
  }
}

TEST(GcParallelTest, RecoveryStateByteIdenticalAcrossWorkerCounts) {
  RunState serial = CrashAndRecover(1);
  EXPECT_EQ(serial.gc.collections_completed, 1u);
  for (uint32_t threads : {2u, 4u, 64u}) {
    RunState par = CrashAndRecover(threads);
    ExpectIdentical(serial, par, threads);
  }
}

TEST(GcParallelTest, ParallelScanIsFasterInSimTime) {
  RunState serial = RunCollections(1);
  RunState par = RunCollections(4);
  // The executor charges the busiest lane (ceil(tasks/workers) page walks)
  // instead of every page serially, so four workers finish the scan phase
  // in measurably less simulated time; the spooled bytes stay identical.
  EXPECT_LT(par.gc.scan_phase_ns, serial.gc.scan_phase_ns);
  EXPECT_EQ(par.log_bytes, serial.log_bytes);
  // Work actually ran off-home-worker at some point (scheduling-dependent,
  // but with 8-page rounds on 4 workers a zero-steal run would mean the
  // dynamic claim index never advanced past a static partition).
  EXPECT_GT(par.gc.scan_workers, 1u);
}

}  // namespace
}  // namespace sheap
