// Unit tests for the deterministic fault-injection framework: transient
// device errors with bounded retry/backoff, retry-budget exhaustion
// surfacing typed IOErrors, CRC32C-detected bit rot reported as Corruption,
// crash points latching the machine dead, and the FaultStats counters that
// StableHeap::stats() aggregates.

#include <gtest/gtest.h>

#include <memory>

#include "core/stable_heap.h"
#include "fault/fault_injector.h"
#include "storage/sim_env.h"
#include "workload/workloads.h"

namespace sheap {
namespace {

using workload::Bank;

StableHeapOptions SmallOptions() {
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 128;
  return opts;
}

FaultSpec TransientFault(const char* site, uint64_t hit, uint64_t count) {
  FaultSpec spec;
  spec.point = site;
  spec.kind = FaultKind::kTransientError;
  spec.hit = hit;
  spec.count = count;
  return spec;
}

FaultSpec CrashFault(const char* point, uint64_t hit = 1) {
  FaultSpec spec;
  spec.point = point;
  spec.kind = FaultKind::kCrash;
  spec.hit = hit;
  return spec;
}

// --------------------------------------------------------- device level

TEST(FaultInjectorTest, TransientReadErrorIsRetriedByBufferPool) {
  SimEnv env;
  PageImage image;
  image.data[0] = 0xAB;
  ASSERT_TRUE(env.disk()->WritePage(7, image).ok());

  // Fail the next two reads of any page; the third attempt succeeds.
  env.faults()->Arm(TransientFault("disk.read", 1, 2));

  BufferPool::Hooks hooks;
  hooks.flush_log_to = [](Lsn) { return Status::OK(); };
  BufferPool pool(env.disk(), 16, std::move(hooks));
  auto frame = pool.Pin(7);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ((*frame)->data[0], 0xAB);
  pool.Unpin(7);

  const FaultStats& fs = env.faults()->stats();
  EXPECT_EQ(fs.armed, 1u);
  EXPECT_EQ(fs.fired, 2u);      // two failing attempts
  EXPECT_EQ(fs.retried, 2u);    // two backoff retries
  EXPECT_EQ(fs.exhausted, 0u);
}

TEST(FaultInjectorTest, RetryBudgetExhaustionSurfacesIOError) {
  SimEnv env;
  // More consecutive failures than the retry budget tolerates.
  env.faults()->Arm(TransientFault("disk.read", 1, kMaxIoRetries + 5));

  BufferPool::Hooks hooks;
  hooks.flush_log_to = [](Lsn) { return Status::OK(); };
  BufferPool pool(env.disk(), 16, std::move(hooks));
  auto frame = pool.Pin(3);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsIOError()) << frame.status().ToString();

  const FaultStats& fs = env.faults()->stats();
  EXPECT_EQ(fs.retried, static_cast<uint64_t>(kMaxIoRetries));
  EXPECT_EQ(fs.exhausted, 1u);
}

TEST(FaultInjectorTest, TransientWriteErrorIsRetriedOnWriteBack) {
  SimEnv env;
  env.faults()->Arm(TransientFault("disk.write", 1, 1));
  BufferPool::Hooks hooks;
  hooks.flush_log_to = [](Lsn) { return Status::OK(); };
  BufferPool pool(env.disk(), 16, std::move(hooks));
  auto frame = pool.Pin(5);
  ASSERT_TRUE(frame.ok());
  pool.MarkDirtyUnlogged(5);
  pool.Unpin(5);
  ASSERT_TRUE(pool.WriteBack(5).ok());
  EXPECT_TRUE(env.disk()->Exists(5));
  EXPECT_EQ(env.faults()->stats().retried, 1u);
}

TEST(FaultInjectorTest, BitRotIsDetectedAsCorruption) {
  SimEnv env;
  PageImage image;
  image.data[100] = 0x5A;
  ASSERT_TRUE(env.disk()->WritePage(9, image).ok());

  FaultSpec rot;
  rot.point = "disk.read";
  rot.kind = FaultKind::kBitRot;
  rot.hit = 0;  // fire on the next read
  rot.page = 9;
  env.faults()->Arm(rot);

  PageImage out;
  Status s = env.disk()->ReadPage(9, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_EQ(env.disk()->stats().crc_failures, 1u);
}

TEST(FaultInjectorTest, CorruptPageHookFlipsOneBit) {
  SimEnv env;
  PageImage image;
  ASSERT_TRUE(env.disk()->WritePage(2, image).ok());
  env.disk()->CorruptPage(2, /*bit_index=*/13);
  PageImage out;
  Status s = env.disk()->ReadPage(2, &out);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  // An untouched page still reads fine.
  PageImage other;
  ASSERT_TRUE(env.disk()->WritePage(4, other).ok());
  EXPECT_TRUE(env.disk()->ReadPage(4, &other).ok());
}

TEST(FaultInjectorTest, PageFilterRestrictsFault) {
  SimEnv env;
  FaultSpec spec = TransientFault("disk.write", 1, 100);
  spec.page = 42;  // only page 42 fails
  env.faults()->Arm(spec);
  PageImage image;
  EXPECT_TRUE(env.disk()->WritePage(41, image).ok());
  EXPECT_TRUE(env.disk()->WritePage(42, image).IsIOError());
}

// ----------------------------------------------------------- heap level

TEST(FaultInjectorTest, LogAppendFaultIsRetriedByLogWriter) {
  auto env = std::make_unique<SimEnv>();
  auto heap = StableHeap::Open(env.get(), SmallOptions());
  ASSERT_TRUE(heap.ok());

  Bank bank(heap->get(), 0);
  ASSERT_TRUE(bank.Setup(8, 100).ok());

  // The next stable-log append fails once; the flush retry carries it out.
  uint64_t appends_so_far = 0;
  for (const auto& [site, hits] : env->faults()->IoSites()) {
    if (site == "log.append") appends_so_far = hits;
  }
  env->faults()->Arm(TransientFault("log.append", appends_so_far + 1, 1));

  ASSERT_TRUE(bank.Transfer(0, 1, 5).ok());
  ASSERT_TRUE((*heap)->ForceLog().ok());
  EXPECT_GE(env->faults()->stats().retried, 1u);
  EXPECT_EQ(*bank.BalanceOf(1), 105u);
}

TEST(FaultInjectorTest, CrashPointKillsHeapUntilReopen) {
  auto env = std::make_unique<SimEnv>();
  auto opened = StableHeap::Open(env.get(), SmallOptions());
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<StableHeap> heap = std::move(*opened);

  Bank bank(heap.get(), 0);
  ASSERT_TRUE(bank.Setup(8, 100).ok());

  // Crash at the next commit-spooled point (commit record not forced).
  uint64_t hits = 0;
  for (const auto& [point, count] : env->faults()->Points()) {
    if (point == "txn.commit.logged") hits = count;
  }
  env->faults()->Arm(CrashFault("txn.commit.logged", hits + 1));

  Status s = bank.Transfer(0, 1, 30);
  ASSERT_TRUE(s.IsCrashed()) << s.ToString();
  EXPECT_TRUE(env->faults()->crash_fired());
  EXPECT_EQ(env->faults()->crash_point(), "txn.commit.logged");
  // Every subsequent operation refuses to run.
  EXPECT_TRUE(heap->Begin().status().IsCrashed());
  EXPECT_TRUE(heap->Checkpoint().IsCrashed());

  // Reopen on the same environment: the un-forced commit is rolled back.
  heap.reset();
  auto reopened = StableHeap::Open(env.get(), SmallOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(env->faults()->crash_fired());
  Bank after(reopened->get(), 0);
  ASSERT_TRUE(after.Attach().ok());
  EXPECT_EQ(*after.TotalBalance(), 8u * 100);
  EXPECT_EQ(*after.BalanceOf(0), 100u);
}

TEST(FaultInjectorTest, TracingEnumeratesPointsWithoutFiring) {
  auto env = std::make_unique<SimEnv>();
  env->faults()->set_tracing(true);
  env->faults()->Arm(CrashFault("txn.commit.logged", 1));

  auto heap = StableHeap::Open(env.get(), SmallOptions());
  ASSERT_TRUE(heap.ok());
  Bank bank(heap->get(), 0);
  ASSERT_TRUE(bank.Setup(8, 100).ok());    // commits; crash must NOT fire
  ASSERT_TRUE(bank.Transfer(0, 1, 5).ok());

  EXPECT_EQ(env->faults()->stats().fired, 0u);
  EXPECT_FALSE(env->faults()->crash_fired());
  const auto points = env->faults()->Points();
  EXPECT_FALSE(points.empty());
  bool saw_commit = false;
  for (const auto& [point, hit_count] : points) {
    if (point == "txn.commit.logged") {
      saw_commit = true;
      EXPECT_GE(hit_count, 2u);
    }
  }
  EXPECT_TRUE(saw_commit);
}

TEST(FaultInjectorTest, HeapStatsExposeFaultCounters) {
  auto env = std::make_unique<SimEnv>();
  auto heap = StableHeap::Open(env.get(), SmallOptions());
  ASSERT_TRUE(heap.ok());
  Bank bank(heap->get(), 0);
  ASSERT_TRUE(bank.Setup(8, 100).ok());

  env->faults()->Arm(TransientFault("disk.write", 1000000, 1));  // never hit
  HeapStats stats = (*heap)->stats();
  EXPECT_EQ(stats.fault.armed, 1u);
  EXPECT_EQ(stats.fault.fired, 0u);
  EXPECT_GT(stats.fault.points_hit, 0u);
  EXPECT_GT(stats.log_device.bytes_appended, 0u);
}

}  // namespace
}  // namespace sheap
