// Parallel-recovery determinism (see src/recovery/redo_executor.h): with a
// fixed crashed image, recovery must produce byte-identical results for
// every redo thread count — same heap pages on disk, same space table, UTT,
// in-doubt transactions, same log bytes (CLRs written during undo, the
// post-recovery checkpoint payload encoding the DPT/ATT/GC state), and the
// same stats modulo the timing fields.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/stable_heap.h"
#include "util/coder.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

StableHeapOptions BaseOptions() {
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 128;
  opts.divided_heap = false;
  opts.buffer_pool_frames = 4096;
  return opts;
}

/// Deterministic crashed image: a directory of page-sized objects, a full
/// writeback + checkpoint, post-checkpoint updates spanning many pages, a
/// mid-flight incremental collection, and an uncommitted loser — then a
/// partial-writeback, torn-tail crash.
std::unique_ptr<SimEnv> BuildCrashedEnv(const StableHeapOptions& opts) {
  auto env = std::make_unique<SimEnv>();
  auto opened = StableHeap::Open(env.get(), opts);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<StableHeap> heap = std::move(*opened);

  constexpr uint64_t kObjects = 48;
  const uint64_t slots = kPageSizeBytes / kWordSizeBytes - 1;
  ClassId big = *heap->RegisterClass(std::vector<bool>(slots, false));
  ClassId dir = *heap->RegisterClass(std::vector<bool>(kObjects, true));

  TxnId setup = *heap->Begin();
  Ref dref = *heap->AllocateStable(setup, dir, kObjects);
  EXPECT_TRUE(heap->SetRoot(setup, 0, dref).ok());
  for (uint64_t i = 0; i < kObjects; ++i) {
    Ref obj = *heap->AllocateStable(setup, big, slots);
    EXPECT_TRUE(heap->WriteRef(setup, dref, i, obj).ok());
  }
  EXPECT_TRUE(heap->Commit(setup).ok());
  EXPECT_TRUE(heap->WriteBackPages(1.0, 5).ok());
  EXPECT_TRUE(heap->Checkpoint().ok());

  // Redo work on many distinct pages.
  TxnId txn = *heap->Begin();
  Ref d2 = *heap->GetRoot(txn, 0);
  for (uint64_t i = 0; i < kObjects; ++i) {
    Ref obj = *heap->ReadRef(txn, d2, i);
    for (uint64_t k = 0; k < 4; ++k) {
      EXPECT_TRUE(heap->WriteScalar(txn, obj, (i + k) % slots, i + k).ok());
    }
  }
  EXPECT_TRUE(heap->Commit(txn).ok());

  // A loser for undo to abort.
  TxnId loser = *heap->Begin();
  Ref d3 = *heap->GetRoot(loser, 0);
  Ref victim = *heap->ReadRef(loser, d3, 7);
  EXPECT_TRUE(heap->WriteScalar(loser, victim, 3, 9999).ok());

  // Leave an incremental collection mid-flight: redo must repeat its copy
  // and scan records and recovery must reconstruct its state.
  EXPECT_TRUE(heap->StartStableCollection().ok());
  EXPECT_TRUE(heap->StepStableCollection(6).ok());

  EXPECT_TRUE(heap->SimulateCrash(CrashOptions{0.5, 23, 96}).ok());
  heap.reset();
  return env;
}

struct RecoveredState {
  RecoveryStats stats;
  std::vector<uint8_t> log_bytes;
  std::vector<PageImage> pages;  // every page slot on the sim disk
  std::vector<uint8_t> spaces_enc;
  std::vector<uint8_t> utt_enc;
  std::vector<std::pair<TxnId, uint64_t>> in_doubt;
};

/// Recover the crashed env with `threads` redo workers, then checkpoint
/// (its payload pins the recovered DPT/ATT/GC/space/UTT state into the log
/// bytes) and flush everything so the disk holds the recovered heap.
RecoveredState RecoverWith(const StableHeapOptions& base, uint32_t threads) {
  StableHeapOptions opts = base;
  opts.recovery_threads = threads;
  std::unique_ptr<SimEnv> env = BuildCrashedEnv(opts);

  auto opened = StableHeap::Open(env.get(), opts);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<StableHeap> heap = std::move(*opened);

  RecoveredState s;
  s.stats = heap->recovery_stats();
  s.in_doubt = heap->InDoubtTransactions();
  Encoder spaces_enc(&s.spaces_enc);
  heap->spaces()->EncodeTo(&spaces_enc);
  Encoder utt_enc(&s.utt_enc);
  heap->utt()->EncodeTo(&utt_enc);

  EXPECT_TRUE(heap->Checkpoint().ok());
  EXPECT_TRUE(heap->pool()->FlushAll().ok());
  s.log_bytes.assign(env->log()->data(),
                     env->log()->data() + env->log()->size());
  const uint64_t npages =
      (opts.stable_space_pages + opts.volatile_space_pages) * 2 + 64;
  for (PageId pid = 0; pid < npages; ++pid) {
    PageImage img;
    EXPECT_TRUE(env->disk()->ReadPage(pid, &img).ok());
    s.pages.push_back(img);
  }
  return s;
}

void ExpectIdentical(const RecoveredState& a, const RecoveredState& b,
                     uint32_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  // Stats: everything but the timing fields and the partition count.
  EXPECT_EQ(a.stats.analysis_records, b.stats.analysis_records);
  EXPECT_EQ(a.stats.redo_records_seen, b.stats.redo_records_seen);
  EXPECT_EQ(a.stats.redo_records_applied, b.stats.redo_records_applied);
  EXPECT_EQ(a.stats.undo_records, b.stats.undo_records);
  EXPECT_EQ(a.stats.clrs_written, b.stats.clrs_written);
  EXPECT_EQ(a.stats.losers_aborted, b.stats.losers_aborted);
  EXPECT_EQ(a.stats.winners_closed, b.stats.winners_closed);
  EXPECT_EQ(a.stats.prepared_restored, b.stats.prepared_restored);
  EXPECT_EQ(a.stats.log_bytes_read, b.stats.log_bytes_read);
  EXPECT_EQ(a.stats.log_segments_prefetched,
            b.stats.log_segments_prefetched);
  EXPECT_EQ(a.stats.used_master_checkpoint, b.stats.used_master_checkpoint);
  EXPECT_EQ(a.stats.saw_torn_tail, b.stats.saw_torn_tail);

  EXPECT_EQ(a.in_doubt, b.in_doubt);
  EXPECT_EQ(a.spaces_enc, b.spaces_enc) << "space table diverged";
  EXPECT_EQ(a.utt_enc, b.utt_enc) << "UTT diverged";
  EXPECT_EQ(a.log_bytes, b.log_bytes)
      << "log bytes diverged (CLR order or checkpoint payload)";

  ASSERT_EQ(a.pages.size(), b.pages.size());
  for (size_t i = 0; i < a.pages.size(); ++i) {
    EXPECT_EQ(a.pages[i].page_lsn, b.pages[i].page_lsn) << "page " << i;
    ASSERT_EQ(0, std::memcmp(a.pages[i].data.data(), b.pages[i].data.data(),
                             kPageSizeBytes))
        << "page " << i << " bytes diverged";
  }
}

TEST(RecoveryParallelTest, WorkloadIsDeterministic) {
  // Sanity for everything below: the crashed image itself is reproducible.
  StableHeapOptions opts = BaseOptions();
  std::unique_ptr<SimEnv> e1 = BuildCrashedEnv(opts);
  std::unique_ptr<SimEnv> e2 = BuildCrashedEnv(opts);
  ASSERT_EQ(e1->log()->size(), e2->log()->size());
  EXPECT_EQ(0, std::memcmp(e1->log()->data(), e2->log()->data(),
                           e1->log()->size()));
}

TEST(RecoveryParallelTest, ByteIdenticalAcrossThreadCounts) {
  StableHeapOptions opts = BaseOptions();
  RecoveredState serial = RecoverWith(opts, 1);
  EXPECT_EQ(serial.stats.redo_partitions, 1u);
  EXPECT_GT(serial.stats.redo_records_applied, 0u);
  EXPECT_GT(serial.stats.losers_aborted, 0u);
  for (uint32_t threads : {2u, 4u, 64u}) {
    RecoveredState par = RecoverWith(opts, threads);
    EXPECT_EQ(par.stats.redo_partitions, threads);
    ExpectIdentical(serial, par, threads);
  }
}

TEST(RecoveryParallelTest, ParallelRedoIsFasterInSimTime) {
  StableHeapOptions opts = BaseOptions();
  RecoveredState serial = RecoverWith(opts, 1);
  RecoveredState par = RecoverWith(opts, 4);
  // Partial writeback leaves dozens of cold pages to redo: four partitions
  // should beat one clearly (exact ratio depends on the hash balance).
  EXPECT_LT(par.stats.redo_ns, serial.stats.redo_ns);
  EXPECT_EQ(par.stats.analysis_ns, serial.stats.analysis_ns);
}

}  // namespace
}  // namespace sheap
