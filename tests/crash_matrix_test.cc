// Exhaustive crash-point recovery harness (the paper's recovery claims
// quantify over every crash state, §2.2/§4).
//
// A scripted, fully deterministic workload — commits, an abort, a
// checkpoint, a full incremental GC cycle, a 2PC prepare left in doubt,
// background write-back, a second checkpoint — is first run under the fault
// injector's tracing mode to enumerate every crash point it reaches and how
// often. Then, for each (point, hit) in that space (first / middle / last
// occurrence), a fresh machine runs the same workload with a one-shot crash
// armed there; the harness finalizes the crash state (partial write-back +
// torn log tail), reopens the heap, and checks the invariants:
//   * recovery succeeds,
//   * the bank's total balance is conserved (if the bank ever committed),
//   * at most the one in-doubt 2PC transaction survives, with its gtid,
//     and the coordinator's abort resolves it,
//   * the heap accepts new transactions and survives a full collection.
// Finally the harness crashes *during recovery itself* (after each recovery
// pass) and recovers from that, proving recovery is idempotent.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/stable_heap.h"
#include "crash_matrix_points.h"
#include "fault/fault_injector.h"
#include "shard/sharded_heap.h"
#include "storage/sim_env.h"
#include "workload/workloads.h"

namespace sheap {
namespace {

using workload::Bank;

constexpr uint64_t kAccounts = 32;
constexpr uint64_t kInitialBalance = 100;
constexpr uint64_t kTotal = kAccounts * kInitialBalance;
constexpr uint64_t kInDoubtGtid = 77;

StableHeapOptions MatrixOptions(uint32_t recovery_threads = 1,
                                uint32_t gc_threads = 1) {
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 128;
  opts.divided_heap = true;
  opts.recovery_threads = recovery_threads;
  // The parallel scan executor is byte-deterministic, so the workload
  // reaches the same crash points at the same dynamic hit counts for any
  // worker count; the matrix re-runs with workers active to prove the
  // crash states it creates (gc.scan.worker_claim, gc.batch.merged
  // included) recover identically.
  opts.gc_threads = gc_threads;
  // One flush writer keeps the parallel-writeback checkpoint (phase 7)
  // fully deterministic: runs are written in page order on the calling
  // thread, so flushrun crash points fire in the same order every run.
  opts.flush_writer_threads = 1;
  return opts;
}

/// The scripted workload. Every run on a fresh SimEnv executes the exact
/// same sequence of actions, so the injector's dynamic hit counters name
/// reproducible crash states. Returns the first error (Status::Crashed when
/// an armed crash point fires).
Status RunScriptedWorkload(SimEnv* env,
                           std::unique_ptr<StableHeap>* heap_out,
                           uint32_t gc_threads = 1) {
  auto opened =
      StableHeap::Open(env, MatrixOptions(/*recovery_threads=*/1, gc_threads));
  if (!opened.ok()) return opened.status();
  std::unique_ptr<StableHeap>& heap = *heap_out;
  heap = std::move(*opened);

  // Phase 1: bank setup + a first round of transfers (one aborted).
  Bank bank(heap.get(), /*root_index=*/0);
  SHEAP_RETURN_IF_ERROR(bank.Setup(kAccounts, kInitialBalance));
  for (uint64_t i = 0; i < 6; ++i) {
    SHEAP_RETURN_IF_ERROR(bank.Transfer(i, kAccounts - 1 - i, 7));
  }
  SHEAP_RETURN_IF_ERROR(
      bank.Transfer(0, 1, 50, /*abort_instead=*/true));

  // Phase 2: checkpoint.
  SHEAP_RETURN_IF_ERROR(heap->Checkpoint());

  // Phase 3 pre-load: bulk stable data so the collection's to-space spans
  // several fully-copied pages. The scan executor only claims such pages
  // (the partial frontier page always uses the serial scan), so without
  // this the matrix would never reach gc.scan.worker_claim or
  // gc.batch.merged, nor crash inside a batched-copy window.
  {
    auto txn = heap->Begin();
    if (!txn.ok()) return txn.status();
    // A pointer array spilling past to-space page 0: its tail pages are
    // scanned by the executor, whose candidates (the leaves) are copied
    // through a kGcCopyBatch record.
    auto index = heap->AllocateStable(*txn, kClassPtrArray, 700);
    if (!index.ok()) return index.status();
    for (uint64_t i = 0; i < 700; i += 50) {
      auto leaf = heap->AllocateStable(*txn, kClassDataArray, 3);
      if (!leaf.ok()) return leaf.status();
      SHEAP_RETURN_IF_ERROR(heap->WriteScalar(*txn, *leaf, 0, i));
      SHEAP_RETURN_IF_ERROR(heap->WriteRef(*txn, *index, i, *leaf));
    }
    SHEAP_RETURN_IF_ERROR(heap->SetRoot(*txn, 1, *index));
    // Scalar ballast: whole clean pages for the executor's run records.
    for (uint64_t i = 0; i < 4; ++i) {
      auto bulk = heap->AllocateStable(*txn, kClassDataArray, 500);
      if (!bulk.ok()) return bulk.status();
      SHEAP_RETURN_IF_ERROR(heap->WriteScalar(*txn, *bulk, 0, i));
      SHEAP_RETURN_IF_ERROR(heap->SetRoot(*txn, 2 + i, *bulk));
    }
    SHEAP_RETURN_IF_ERROR(heap->Commit(*txn));
  }

  // Phase 3: a full stable collection (flip + incremental steps + complete).
  // An open transaction with an uncommitted stable write spans the flip, so
  // the flip must translate its undo roots and log a UTR batch
  // (gc.utr.logged); it commits once the collection is done.
  auto span_txn = heap->Begin();
  if (!span_txn.ok()) return span_txn.status();
  auto scratch = heap->AllocateStable(*span_txn, kClassDataArray, 2);
  if (!scratch.ok()) return scratch.status();
  SHEAP_RETURN_IF_ERROR(heap->WriteScalar(*span_txn, *scratch, 0, 4242));
  SHEAP_RETURN_IF_ERROR(heap->StartStableCollection());
  while (heap->stable_gc()->collecting()) {
    SHEAP_RETURN_IF_ERROR(heap->StepStableCollection(2));
  }
  SHEAP_RETURN_IF_ERROR(heap->Commit(*span_txn));

  // Phase 4: a 2PC participant votes yes and is left in doubt. The
  // transaction touches its own object, not the bank, so its retained
  // locks cannot block verification.
  auto cls = heap->RegisterClass({false});
  if (!cls.ok()) return cls.status();
  auto txn = heap->Begin();
  if (!txn.ok()) return txn.status();
  auto obj = heap->Allocate(*txn, *cls, 1);
  if (!obj.ok()) return obj.status();
  SHEAP_RETURN_IF_ERROR(heap->WriteScalar(*txn, *obj, 0, 12345));
  SHEAP_RETURN_IF_ERROR(heap->Prepare(*txn, kInDoubtGtid));

  // Phase 5: more transfers over the in-doubt state.
  for (uint64_t i = 0; i < 4; ++i) {
    SHEAP_RETURN_IF_ERROR(bank.Transfer(2 * i, 2 * i + 1, 3));
  }

  // Phase 6: background write-back + second checkpoint + a final transfer.
  SHEAP_RETURN_IF_ERROR(heap->WriteBackPages(0.7, /*seed=*/5));
  SHEAP_RETURN_IF_ERROR(heap->Checkpoint());
  SHEAP_RETURN_IF_ERROR(bank.Transfer(3, 4, 11));
  SHEAP_RETURN_IF_ERROR(heap->ForceLog());

  // Phase 7: parallel-writeback checkpoint — exercises the run-coalescing
  // flush path (pool.flushrun.*, ckpt.flush.begin) the plain checkpoint
  // never reaches — then one more transfer over the clean pool.
  SHEAP_RETURN_IF_ERROR(heap->CheckpointWithWriteback());
  SHEAP_RETURN_IF_ERROR(bank.Transfer(9, 10, 5));
  SHEAP_RETURN_IF_ERROR(heap->ForceLog());
  return Status::OK();
}

/// Reopen the heap on a crashed environment and check every invariant the
/// workload guarantees in *any* crash state.
void VerifyRecovered(SimEnv* env, const std::string& context,
                     uint32_t recovery_threads = 1,
                     uint32_t gc_threads = 1) {
  SCOPED_TRACE(context);
  auto reopened =
      StableHeap::Open(env, MatrixOptions(recovery_threads, gc_threads));
  ASSERT_TRUE(reopened.ok())
      << "recovery failed: " << reopened.status().ToString();
  std::unique_ptr<StableHeap> heap = std::move(*reopened);
  EXPECT_FALSE(env->faults()->crash_fired());

  // Bank conservation (if the bank's setup ever committed).
  Bank bank(heap.get(), 0);
  const bool attached = bank.Attach().ok();
  if (attached) {
    auto total = bank.TotalBalance();
    ASSERT_TRUE(total.ok()) << total.status().ToString();
    EXPECT_EQ(*total, kTotal) << "balance not conserved";
  }

  // At most the one scripted in-doubt transaction survives, holding its
  // gtid; the coordinator's (presumed-)abort must resolve it.
  auto in_doubt = heap->InDoubtTransactions();
  ASSERT_LE(in_doubt.size(), 1u);
  if (!in_doubt.empty()) {
    EXPECT_EQ(in_doubt[0].second, kInDoubtGtid);
    EXPECT_TRUE(heap->AbortPrepared(in_doubt[0].first).ok());
  }

  // The heap accepts new work.
  auto cls = heap->RegisterClass({false});
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();
  auto txn = heap->Begin();
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();
  auto obj = heap->Allocate(*txn, *cls, 1);
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  ASSERT_TRUE(heap->WriteScalar(*txn, *obj, 0, 99).ok());
  ASSERT_TRUE(heap->Commit(*txn).ok());

  // And it survives a full collection with the state intact.
  ASSERT_TRUE(heap->CollectStableFully().ok());
  if (attached) {
    auto total = bank.TotalBalance();
    ASSERT_TRUE(total.ok()) << total.status().ToString();
    EXPECT_EQ(*total, kTotal) << "balance not conserved across post-"
                                 "recovery collection";
  }
}

/// Run the workload with a one-shot crash armed at (point, hit), finalize
/// the crash state, and verify recovery.
void CrashAtAndVerify(const std::string& point, uint64_t hit,
                      uint64_t tear_tail_bytes,
                      uint32_t recovery_threads = 1,
                      uint32_t gc_threads = 1) {
  const std::string context =
      point + "#" + std::to_string(hit) + " tear=" +
      std::to_string(tear_tail_bytes) + " threads=" +
      std::to_string(recovery_threads) + " gc_threads=" +
      std::to_string(gc_threads);
  SCOPED_TRACE(context);
  auto env = std::make_unique<SimEnv>();
  FaultSpec spec;
  spec.point = point;
  spec.kind = FaultKind::kCrash;
  spec.hit = hit;
  env->faults()->Arm(spec);

  std::unique_ptr<StableHeap> heap;
  Status s = RunScriptedWorkload(env.get(), &heap, gc_threads);
  ASSERT_TRUE(s.IsCrashed())
      << "armed crash did not fire (" << s.ToString() << ")";
  ASSERT_TRUE(env->faults()->crash_fired());
  EXPECT_EQ(env->faults()->crash_point(), point);

  // Finalize the crash state: a background writer got some dirty pages out
  // before the machine died, and the un-barriered log tail tears.
  if (heap != nullptr) {
    CrashOptions crash;
    crash.writeback_fraction = 0.5;
    crash.seed = 1 + hit;
    crash.tear_tail_bytes = tear_tail_bytes;
    ASSERT_TRUE(heap->SimulateCrash(crash).ok());
    heap.reset();
  }
  VerifyRecovered(env.get(), context, recovery_threads, gc_threads);
}

/// Enumerate the workload's reachable crash points under tracing mode.
std::vector<std::pair<std::string, uint64_t>> TraceWorkloadPoints(
    uint32_t gc_threads = 1) {
  auto env = std::make_unique<SimEnv>();
  env->faults()->set_tracing(true);
  std::unique_ptr<StableHeap> heap;
  Status s = RunScriptedWorkload(env.get(), &heap, gc_threads);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return env->faults()->Points();
}

TEST(CrashMatrixTest, WorkloadReachesTheFullCrashPointSurface) {
  const auto points = TraceWorkloadPoints();
  std::set<std::string> names;
  for (const auto& [point, hits] : points) {
    EXPECT_GE(hits, 1u);
    names.insert(point);
  }
  // The scripted workload must reach exactly its manifest section — a
  // missing name means the surface shrank; an extra one means a new crash
  // point exists that tools/sheap_lint.py (and this matrix) doesn't know
  // about. Keep tests/crash_matrix_points.h in sync with src/.
  const std::set<std::string> manifest(
      std::begin(crash_matrix::kScriptedWorkloadPoints),
      std::end(crash_matrix::kScriptedWorkloadPoints));
  for (const std::string& name : manifest) {
    EXPECT_TRUE(names.count(name) == 1)
        << "crash point not reached by the workload: " << name;
  }
  for (const std::string& name : names) {
    EXPECT_TRUE(manifest.count(name) == 1)
        << "crash point missing from tests/crash_matrix_points.h: " << name;
  }
}

/// The full matrix runs once per (redo threads, GC scan workers) pair:
/// recovery must converge to the same verified invariants whether redo is
/// serial or partitioned, and whether the interrupted collection was
/// driven by one scan worker or several.
struct ThreadsParam {
  uint32_t redo_threads;
  uint32_t gc_threads;
};

class CrashMatrixThreadsTest
    : public ::testing::TestWithParam<ThreadsParam> {};

INSTANTIATE_TEST_SUITE_P(
    RedoThreads, CrashMatrixThreadsTest,
    ::testing::Values(ThreadsParam{1, 1}, ThreadsParam{4, 1},
                      ThreadsParam{1, 4}),
    [](const auto& param_info) {
      return "threads" + std::to_string(param_info.param.redo_threads) +
             "gc" + std::to_string(param_info.param.gc_threads);
    });

TEST_P(CrashMatrixThreadsTest, RecoversFromEveryCrashPoint) {
  const uint32_t threads = GetParam().redo_threads;
  const uint32_t gc_threads = GetParam().gc_threads;
  const auto points = TraceWorkloadPoints(gc_threads);
  ASSERT_GE(points.size(), 12u);
  // The scan executor's determinism contract: the crash-point surface
  // (names and dynamic hit counts) must not depend on the worker count,
  // or the matrix would name different crash states per configuration.
  EXPECT_EQ(points, TraceWorkloadPoints(1));
  uint64_t crash_states = 0;
  for (const auto& [point, hits] : points) {
    // First, middle, and last dynamic occurrence of each point.
    std::set<uint64_t> chosen = {1, (hits + 1) / 2, hits};
    for (uint64_t hit : chosen) {
      // Alternate between a clean tail and a torn tail.
      const uint64_t tear = (hit % 2 == 0) ? 160 : 0;
      CrashAtAndVerify(point, hit, tear, threads, gc_threads);
      if (::testing::Test::HasFatalFailure()) return;
      ++crash_states;
    }
  }
  // The matrix must stay meaningfully large.
  EXPECT_GE(crash_states, 30u);
}

TEST_P(CrashMatrixThreadsTest, RecoveryItselfIsCrashSafe) {
  const uint32_t threads = GetParam().redo_threads;
  const uint32_t gc_threads = GetParam().gc_threads;
  // Crash mid-workload (a state with both redo and undo work: spooled
  // commits, an in-flight loser), then crash during each recovery pass,
  // then recover from *that*. Proves recovery is idempotent.
  for (const char* recovery_point : crash_matrix::kRecoveryPoints) {
    SCOPED_TRACE(recovery_point);
    auto env = std::make_unique<SimEnv>();
    FaultSpec first;
    first.point = "txn.commit.logged";
    first.kind = FaultKind::kCrash;
    first.hit = 9;  // mid-workload: after setup, inside the transfer runs
    env->faults()->Arm(first);

    std::unique_ptr<StableHeap> heap;
    Status s = RunScriptedWorkload(env.get(), &heap, gc_threads);
    ASSERT_TRUE(s.IsCrashed()) << s.ToString();
    if (heap != nullptr) {
      CrashOptions crash;
      crash.writeback_fraction = 0.5;
      crash.seed = 42;
      crash.tear_tail_bytes = 96;
      ASSERT_TRUE(heap->SimulateCrash(crash).ok());
      heap.reset();
    }

    // Arm the second crash inside recovery, then reopen: Open must fail at
    // exactly that pass.
    FaultSpec second;
    second.point = recovery_point;
    second.kind = FaultKind::kCrash;
    second.hit = 1;
    env->faults()->Arm(second);
    auto reopened =
        StableHeap::Open(env.get(), MatrixOptions(threads, gc_threads));
    ASSERT_FALSE(reopened.ok());
    EXPECT_TRUE(reopened.status().IsCrashed())
        << reopened.status().ToString();
    EXPECT_EQ(env->faults()->crash_point(), recovery_point);

    // Second reopen: the one-shot is consumed; recovery repeats history
    // (including any CLRs or write-backs the first attempt produced) and
    // must converge to the same state.
    VerifyRecovered(env.get(),
                    std::string("after mid-recovery crash at ") +
                        recovery_point,
                    threads, gc_threads);
  }
}

TEST(CrashMatrixTest, TornTailDeepensTheCrashState) {
  // Crashing right before the durable barrier is raised, with an
  // aggressive tear, exercises the WAL window: flushed-but-unbarriered
  // bytes vanish and recovery must fall back to the last barrier.
  const auto points = TraceWorkloadPoints();
  uint64_t barrier_hits = 0;
  for (const auto& [point, hits] : points) {
    if (point == "wal.force.before_barrier") barrier_hits = hits;
  }
  ASSERT_GE(barrier_hits, 1u);
  for (uint64_t hit : std::set<uint64_t>{1, barrier_hits}) {
    CrashAtAndVerify("wal.force.before_barrier", hit,
                     /*tear_tail_bytes=*/100000);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ----------------------------------------------------- instant recovery

StableHeapOptions InstantMatrixOptions(uint32_t drain_threads = 2) {
  StableHeapOptions opts = MatrixOptions();
  opts.instant_recovery = true;
  opts.instant_drain_threads = drain_threads;
  opts.instant_drain_pages = 1;  // one page per action: many drain windows
  return opts;
}

/// Crash the scripted workload mid-flight (late enough that the dirty-page
/// table spans the bank, the bulk pre-load, and the collection's copies)
/// and finalize a crash state with most of that redo work still pending.
std::unique_ptr<SimEnv> BuildMidWorkloadCrash() {
  auto env = std::make_unique<SimEnv>();
  FaultSpec spec;
  spec.point = "txn.prepare.forced";
  spec.kind = FaultKind::kCrash;
  spec.hit = 1;
  env->faults()->Arm(spec);
  std::unique_ptr<StableHeap> heap;
  Status s = RunScriptedWorkload(env.get(), &heap);
  EXPECT_TRUE(s.IsCrashed()) << s.ToString();
  if (heap != nullptr) {
    CrashOptions crash;
    crash.writeback_fraction = 0.3;
    crash.seed = 42;
    crash.tear_tail_bytes = 96;
    EXPECT_TRUE(heap->SimulateCrash(crash).ok());
    heap.reset();
  }
  return env;
}

/// Reopen `env` with the instant gate on and exercise every gate path:
/// first touches through the bank (on-demand redo), cooperative drain
/// steps at Begin/Commit, and a final full drain. Returns the first
/// non-OK status so an armed gate crash propagates to the caller.
Status DriveInstantReopen(SimEnv* env, std::unique_ptr<StableHeap>* heap_out,
                          uint32_t drain_threads = 2) {
  auto opened = StableHeap::Open(env, InstantMatrixOptions(drain_threads));
  if (!opened.ok()) return opened.status();
  std::unique_ptr<StableHeap>& heap = *heap_out;
  heap = std::move(*opened);
  Bank bank(heap.get(), 0);
  Status attached = bank.Attach();
  if (attached.IsCrashed()) return attached;
  if (attached.ok()) {
    auto total = bank.TotalBalance();
    if (!total.ok()) return total.status();
    if (*total != kTotal) return Status::Internal("balance not conserved");
  }
  return heap->DrainInstantRecovery();
}

TEST(CrashMatrixTest, InstantRecoveryReachesItsCrashPoints) {
  auto env = BuildMidWorkloadCrash();
  env->faults()->set_tracing(true);
  std::unique_ptr<StableHeap> heap;
  ASSERT_TRUE(DriveInstantReopen(env.get(), &heap).ok());
  EXPECT_EQ(heap->recovery_stats().outcome,
            RecoveryOutcome::kInstantComplete);
  // Both gate windows fired under tracing: the reopen redoes pages on
  // demand (the bank's first touches) and in drain batches.
  uint64_t ondemand_hits = 0;
  uint64_t drain_hits = 0;
  for (const auto& [point, hits] : env->faults()->Points()) {
    if (point == std::string("recovery.ondemand.page_redo")) {
      ondemand_hits = hits;
    }
    if (point == std::string("recovery.drain.step")) drain_hits = hits;
  }
  EXPECT_GE(ondemand_hits, 1u);
  EXPECT_GE(drain_hits, 1u);
  const RecoveryStats rs = heap->recovery_stats();
  EXPECT_GT(rs.ondemand_pages, 0u);
  EXPECT_GT(rs.drained_pages, 0u);
  EXPECT_EQ(rs.pending_pages, 0u);
}

TEST(CrashMatrixTest, InstantGateCrashesRecoverToOfflineState) {
  // Enumerate each gate point's dynamic hits under tracing, then crash at
  // the first / middle / last occurrence and verify an offline reopen
  // restores every workload invariant — the gate crash is just another
  // crash state.
  std::vector<std::pair<std::string, uint64_t>> gate_hits;
  {
    auto env = BuildMidWorkloadCrash();
    env->faults()->set_tracing(true);
    std::unique_ptr<StableHeap> heap;
    ASSERT_TRUE(DriveInstantReopen(env.get(), &heap).ok());
    for (const auto& [point, hits] : env->faults()->Points()) {
      for (const char* gate : crash_matrix::kInstantRecoveryPoints) {
        if (point == gate) gate_hits.emplace_back(point, hits);
      }
    }
  }
  ASSERT_EQ(gate_hits.size(),
            std::size(crash_matrix::kInstantRecoveryPoints));

  for (const auto& [point, hits] : gate_hits) {
    for (uint64_t hit : std::set<uint64_t>{1, (hits + 1) / 2, hits}) {
      const std::string context =
          point + "#" + std::to_string(hit) + " of " + std::to_string(hits);
      SCOPED_TRACE(context);
      auto env = BuildMidWorkloadCrash();
      FaultSpec spec;
      spec.point = point;
      spec.kind = FaultKind::kCrash;
      spec.hit = hit;
      env->faults()->Arm(spec);

      // The crash fires inside Open (undo's first touch of a pending
      // page) or during post-open use; finalize whichever state results.
      std::unique_ptr<StableHeap> heap;
      Status s = DriveInstantReopen(env.get(), &heap);
      ASSERT_TRUE(s.IsCrashed())
          << "armed gate crash did not fire (" << s.ToString() << ")";
      EXPECT_EQ(env->faults()->crash_point(), point);
      if (heap != nullptr) {
        EXPECT_EQ(heap->recovery_stats().outcome, RecoveryOutcome::kAborted);
        CrashOptions crash;
        crash.writeback_fraction = 0.5;
        crash.seed = 7 + hit;
        crash.tear_tail_bytes = (hit % 2 == 0) ? 160 : 0;
        ASSERT_TRUE(heap->SimulateCrash(crash).ok());
        heap.reset();
      }
      VerifyRecovered(env.get(), context);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(CrashMatrixTest, InstantReopenRecoversEveryWorkloadCrashPoint) {
  // A slice of the main matrix with the gate on: crash the workload at the
  // first hit of each point, then verify through an *instant* reopen —
  // every invariant must hold while redo completes behind the gate.
  const auto points = TraceWorkloadPoints();
  uint64_t crash_states = 0;
  for (const auto& [point, hits] : points) {
    const std::string context = point + "#1 (instant reopen)";
    SCOPED_TRACE(context);
    auto env = std::make_unique<SimEnv>();
    FaultSpec spec;
    spec.point = point;
    spec.kind = FaultKind::kCrash;
    spec.hit = 1;
    env->faults()->Arm(spec);
    std::unique_ptr<StableHeap> heap;
    Status s = RunScriptedWorkload(env.get(), &heap);
    ASSERT_TRUE(s.IsCrashed()) << s.ToString();
    if (heap != nullptr) {
      ASSERT_TRUE(heap->SimulateCrash(CrashOptions{0.5, 2, 96}).ok());
      heap.reset();
    }
    std::unique_ptr<StableHeap> reopened;
    ASSERT_TRUE(DriveInstantReopen(env.get(), &reopened).ok());
    // Post-drain, the reopened heap passes the same checks the offline
    // matrix applies: conservation, in-doubt resolution, new work, GC.
    Bank bank(reopened.get(), 0);
    if (bank.Attach().ok()) {
      auto total = bank.TotalBalance();
      ASSERT_TRUE(total.ok()) << total.status().ToString();
      EXPECT_EQ(*total, kTotal) << "balance not conserved";
    }
    auto in_doubt = reopened->InDoubtTransactions();
    ASSERT_LE(in_doubt.size(), 1u);
    if (!in_doubt.empty()) {
      EXPECT_EQ(in_doubt[0].second, kInDoubtGtid);
      EXPECT_TRUE(reopened->AbortPrepared(in_doubt[0].first).ok());
    }
    ASSERT_TRUE(reopened->CollectStableFully().ok());
    ++crash_states;
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GE(crash_states, 12u);
}

// --------------------------------------------------------- group commit

StableHeapOptions GroupMatrixOptions() {
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 128;
  opts.group_commit = true;
  opts.group_commit_options.max_batch = 4;
  return opts;
}

/// A write whose Commit returned OK before the crash: the group-commit
/// durability contract says recovery must preserve it.
struct AckedWrite {
  uint64_t root;
  uint64_t slot;
  uint64_t value;
};

constexpr uint64_t kGroupArrays = 4;
constexpr uint64_t kGroupWaves = 6;

/// Waves of kGroupArrays transactions (one per root object, so they can
/// all queue in the same batch) committed through the commit queue. Every
/// acknowledged (root, slot, value) is recorded in *acked before the next
/// action runs, so a crash anywhere leaves `acked` = exactly the commits
/// the application saw succeed.
Status RunGroupCommitWorkload(SimEnv* env,
                              std::unique_ptr<StableHeap>* heap_out,
                              std::vector<AckedWrite>* acked) {
  auto opened = StableHeap::Open(env, GroupMatrixOptions());
  if (!opened.ok()) return opened.status();
  std::unique_ptr<StableHeap>& heap = *heap_out;
  heap = std::move(*opened);

  {
    auto txn = heap->Begin();
    if (!txn.ok()) return txn.status();
    for (uint64_t i = 0; i < kGroupArrays; ++i) {
      auto arr = heap->AllocateStable(*txn, kClassDataArray, kGroupWaves);
      if (!arr.ok()) return arr.status();
      SHEAP_RETURN_IF_ERROR(heap->SetRoot(*txn, i, *arr));
    }
    SHEAP_RETURN_IF_ERROR(heap->CommitSync(*txn));
  }

  for (uint64_t wave = 0; wave < kGroupWaves; ++wave) {
    struct Pending {
      TxnId txn;
      uint64_t root;
      uint64_t value;
      bool done = false;
    };
    std::vector<Pending> pending;
    for (uint64_t i = 0; i < kGroupArrays; ++i) {
      auto txn = heap->Begin();
      if (!txn.ok()) return txn.status();
      auto arr = heap->GetRoot(*txn, i);
      if (!arr.ok()) return arr.status();
      const uint64_t value = 1000 + wave * kGroupArrays + i;
      SHEAP_RETURN_IF_ERROR(heap->WriteScalar(*txn, *arr, wave, value));
      pending.push_back({*txn, i, value, false});
    }
    // Round-robin commit retries: the fourth committer fills the batch
    // and leads the force (kGroupArrays == max_batch).
    size_t remaining = pending.size();
    while (remaining > 0) {
      for (auto& p : pending) {
        if (p.done) continue;
        Status st = heap->Commit(p.txn);
        if (st.IsBusy()) continue;
        SHEAP_RETURN_IF_ERROR(st);  // a crash point fires through here
        acked->push_back({p.root, wave, p.value});
        p.done = true;
        --remaining;
      }
    }
  }
  return Status::OK();
}

void VerifyGroupCommitRecovered(SimEnv* env,
                                const std::vector<AckedWrite>& acked,
                                const std::string& context) {
  SCOPED_TRACE(context);
  auto reopened = StableHeap::Open(env, GroupMatrixOptions());
  ASSERT_TRUE(reopened.ok())
      << "recovery failed: " << reopened.status().ToString();
  std::unique_ptr<StableHeap> heap = std::move(*reopened);

  // OK => durable: every acknowledged commit survived the crash.
  auto txn = heap->Begin();
  ASSERT_TRUE(txn.ok());
  for (const AckedWrite& w : acked) {
    auto arr = heap->GetRoot(*txn, w.root);
    ASSERT_TRUE(arr.ok()) << arr.status().ToString();
    auto got = heap->ReadScalar(*txn, *arr, w.slot);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, w.value) << "acknowledged commit lost: root " << w.root
                             << " slot " << w.slot;
  }
  ASSERT_TRUE(heap->CommitSync(*txn).ok());

  // The recovered heap still accepts group-committed work.
  auto t2 = heap->Begin();
  ASSERT_TRUE(t2.ok());
  auto obj = heap->AllocateStable(*t2, kClassDataArray, 1);
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  ASSERT_TRUE(heap->WriteScalar(*t2, *obj, 0, 7).ok());
  ASSERT_TRUE(heap->CommitSync(*t2).ok());
}

TEST(CrashMatrixTest, GroupCommitNeverLosesAcknowledgedCommits) {
  // Enumerate the batch-leader crash points under tracing mode.
  uint64_t leader_hits = 0;
  uint64_t durable_hits = 0;
  {
    auto env = std::make_unique<SimEnv>();
    env->faults()->set_tracing(true);
    std::unique_ptr<StableHeap> heap;
    std::vector<AckedWrite> acked;
    Status s = RunGroupCommitWorkload(env.get(), &heap, &acked);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(acked.size(), kGroupArrays * kGroupWaves);
    for (const auto& [point, hits] : env->faults()->Points()) {
      if (point == "wal.group.leader_force") leader_hits = hits;
      if (point == "wal.group.batch_durable") durable_hits = hits;
    }
  }
  // One leader force per wave (plus the setup commit's deadline close);
  // the post-force point fires exactly as often as the pre-force one.
  ASSERT_GE(leader_hits, kGroupWaves);
  ASSERT_EQ(durable_hits, leader_hits);

  // Crash at the first / middle / last occurrence of each point, with and
  // without a torn tail; no waiter may observe a commit recovery loses.
  for (const char* point : crash_matrix::kGroupCommitPoints) {
    for (uint64_t hit :
         std::set<uint64_t>{1, (leader_hits + 1) / 2, leader_hits}) {
      const uint64_t tear = (hit % 2 == 0) ? 160 : 0;
      const std::string context = std::string(point) + "#" +
                                  std::to_string(hit) +
                                  " tear=" + std::to_string(tear);
      SCOPED_TRACE(context);
      auto env = std::make_unique<SimEnv>();
      FaultSpec spec;
      spec.point = point;
      spec.kind = FaultKind::kCrash;
      spec.hit = hit;
      env->faults()->Arm(spec);

      std::unique_ptr<StableHeap> heap;
      std::vector<AckedWrite> acked;
      Status s = RunGroupCommitWorkload(env.get(), &heap, &acked);
      ASSERT_TRUE(s.IsCrashed())
          << "armed crash did not fire (" << s.ToString() << ")";
      if (heap != nullptr) {
        CrashOptions crash;
        crash.writeback_fraction = 0.5;
        crash.seed = 1 + hit;
        crash.tear_tail_bytes = tear;
        ASSERT_TRUE(heap->SimulateCrash(crash).ok());
        heap.reset();
      }
      VerifyGroupCommitRecovered(env.get(), acked, context);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ------------------------------------------------ 2PC coordinator crashes
//
// The dtx.coord.* points fire on the *coordinator's* SimEnv injector, so
// they get their own harness: a two-shard ShardedHeap whose cross-shard
// transfers run presumed-abort 2PC through the coordinator log. The three
// crash windows are the protocol's load-bearing ones:
//   * dtx.coord.prepared — every vote durable, no decision: reopen must
//     roll every participant back (no-decision-implies-abort);
//   * dtx.coord.decision_forced — decision durable, no participant acks:
//     reopen must commit every branch (the decision record IS the commit
//     point, so OK-implies-durable even though the caller never saw OK);
//   * dtx.coord.resolve_step — crash *during* in-doubt resolution on
//     reopen: the next reopen finishes idempotently, applying each branch
//     exactly once.

constexpr uint32_t kDtxShards = 2;
constexpr uint64_t kDtxAccounts = 32;
constexpr uint64_t kDtxTotal = kDtxShards * kDtxAccounts * kInitialBalance;

ShardedHeapOptions DtxMatrixOptions() {
  ShardedHeapOptions opts;
  opts.shards = kDtxShards;
  opts.shard_options.stable_space_pages = 128;
  opts.shard_options.volatile_space_pages = 64;
  opts.shard_options.divided_heap = false;
  // Group commit on: the 2PC decision's per-branch commit records ride
  // the participants' batches, so the crash states include open batches.
  opts.shard_options.group_commit = true;
  opts.parallel_open = false;
  return opts;
}

struct DtxCluster {
  std::vector<std::unique_ptr<SimEnv>> shard_envs;
  std::unique_ptr<SimEnv> coord_env;

  DtxCluster() {
    for (uint32_t i = 0; i < kDtxShards; ++i) {
      shard_envs.push_back(std::make_unique<SimEnv>());
    }
    coord_env = std::make_unique<SimEnv>();
  }

  StatusOr<std::unique_ptr<ShardedHeap>> Open() {
    std::vector<SimEnv*> envs;
    for (auto& e : shard_envs) envs.push_back(e.get());
    return ShardedHeap::Open(envs, coord_env.get(), DtxMatrixOptions());
  }
};

/// Cross-shard transfer: account `acct` of shard 0 pays the same account
/// index on shard 1. Always a two-participant 2PC.
Status DtxTransfer(ShardedHeap* heap, uint64_t acct, uint64_t amount) {
  SHEAP_ASSIGN_OR_RETURN(GTxnId txn, heap->Begin());
  SHEAP_ASSIGN_OR_RETURN(GRef from, heap->GetRoot(txn, 0));
  SHEAP_ASSIGN_OR_RETURN(GRef to, heap->GetRoot(txn, 1));
  SHEAP_ASSIGN_OR_RETURN(uint64_t fbal, heap->ReadScalar(txn, from, acct));
  SHEAP_ASSIGN_OR_RETURN(uint64_t tbal, heap->ReadScalar(txn, to, acct));
  SHEAP_RETURN_IF_ERROR(heap->WriteScalar(txn, from, acct, fbal - amount));
  SHEAP_RETURN_IF_ERROR(heap->WriteScalar(txn, to, acct, tbal + amount));
  return heap->CommitSync(txn);
}

/// Open the cluster and run three scripted cross-shard transfers (account
/// i moves 10 + i). Each transfer whose commit returned OK is recorded in
/// *acked before the next action, so a coordinator crash leaves `acked` =
/// exactly what the application saw succeed.
Status RunDtxWorkload(DtxCluster* cluster,
                      std::unique_ptr<ShardedHeap>* heap_out,
                      std::vector<uint64_t>* acked) {
  auto opened = cluster->Open();
  if (!opened.ok()) return opened.status();
  std::unique_ptr<ShardedHeap>& heap = *heap_out;
  heap = std::move(*opened);

  auto cls = heap->RegisterClass(std::vector<bool>(kDtxAccounts, false));
  if (!cls.ok()) return cls.status();
  for (uint32_t s = 0; s < kDtxShards; ++s) {
    SHEAP_ASSIGN_OR_RETURN(GTxnId txn, heap->Begin());
    SHEAP_ASSIGN_OR_RETURN(GRef bucket,
                           heap->AllocateOn(txn, s, *cls, kDtxAccounts));
    for (uint64_t a = 0; a < kDtxAccounts; ++a) {
      SHEAP_RETURN_IF_ERROR(
          heap->WriteScalar(txn, bucket, a, kInitialBalance));
    }
    SHEAP_RETURN_IF_ERROR(heap->SetRoot(txn, s, bucket));
    SHEAP_RETURN_IF_ERROR(heap->CommitSync(txn));
  }

  for (uint64_t i = 0; i < 3; ++i) {
    SHEAP_RETURN_IF_ERROR(DtxTransfer(heap.get(), i, 10 + i));
    acked->push_back(i);
  }
  return Status::OK();
}

/// Post-recovery invariants: every acknowledged transfer survived, the
/// crashed transfer is atomically all-in or all-out per `crashed_applied`,
/// nothing is left in doubt, and the grand total is conserved.
void VerifyDtxRecovered(ShardedHeap* heap,
                        const std::vector<uint64_t>& acked,
                        uint64_t crashed_acct, bool crashed_applied,
                        const std::string& context) {
  SCOPED_TRACE(context);
  for (uint32_t s = 0; s < kDtxShards; ++s) {
    EXPECT_TRUE(heap->shard(s)->InDoubtTransactions().empty())
        << "shard " << s << " left in doubt";
  }

  auto txn = heap->Begin();
  ASSERT_TRUE(txn.ok());
  auto from = heap->GetRoot(*txn, 0);
  auto to = heap->GetRoot(*txn, 1);
  ASSERT_TRUE(from.ok() && to.ok());
  uint64_t total = 0;
  for (uint64_t a = 0; a < kDtxAccounts; ++a) {
    auto fbal = heap->ReadScalar(*txn, *from, a);
    auto tbal = heap->ReadScalar(*txn, *to, a);
    ASSERT_TRUE(fbal.ok() && tbal.ok());
    uint64_t moved = 0;
    for (uint64_t i : acked) {
      if (i == a) moved = 10 + i;  // acknowledged: must be durable
    }
    if (a == crashed_acct && crashed_applied) moved = 10 + a;
    EXPECT_EQ(*fbal, kInitialBalance - moved) << "debit, account " << a;
    EXPECT_EQ(*tbal, kInitialBalance + moved) << "credit, account " << a;
    total += *fbal + *tbal;
  }
  ASSERT_TRUE(heap->CommitSync(*txn).ok());
  EXPECT_EQ(total, kDtxTotal) << "balance not conserved";

  // The recovered cluster accepts new cross-shard work.
  ASSERT_TRUE(DtxTransfer(heap, kDtxAccounts - 1, 1).ok());
}

TEST(CrashMatrixTest, CoordinatorCrashSurfaceMatchesManifest) {
  // The commit path reaches dtx.coord.prepared and decision_forced once
  // per cross-shard transfer; resolve_step is reached by reopening over an
  // in-doubt state. Together the two runs must cover exactly the
  // kDtxCoordinatorPoints manifest. (The coordinator's own LogWriter also
  // fires wal.* points on this env; only the dtx.* surface is at issue.)
  std::set<std::string> names;

  {  // Commit path, traced end to end.
    DtxCluster cluster;
    cluster.coord_env->faults()->set_tracing(true);
    std::unique_ptr<ShardedHeap> heap;
    std::vector<uint64_t> acked;
    ASSERT_TRUE(RunDtxWorkload(&cluster, &heap, &acked).ok());
    for (const auto& [point, hits] : cluster.coord_env->faults()->Points()) {
      if (point.rfind("dtx.", 0) != 0) continue;
      EXPECT_EQ(hits, 3u) << point;  // once per scripted transfer
      names.insert(point);
    }
    EXPECT_EQ(names, (std::set<std::string>{"dtx.coord.prepared",
                                            "dtx.coord.decision_forced"}));
  }

  {  // Resolution path: crash mid-2PC, reopen under tracing.
    DtxCluster cluster;
    FaultSpec spec;
    spec.point = "dtx.coord.decision_forced";
    spec.kind = FaultKind::kCrash;
    spec.hit = 1;
    cluster.coord_env->faults()->Arm(spec);
    std::unique_ptr<ShardedHeap> heap;
    std::vector<uint64_t> acked;
    ASSERT_TRUE(RunDtxWorkload(&cluster, &heap, &acked).IsCrashed());
    ASSERT_TRUE(heap->SimulateCrashAll(CrashOptions{0.5, 3, 96}).ok());
    heap.reset();
    cluster.coord_env->faults()->set_tracing(true);
    auto reopened = cluster.Open();
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    uint64_t resolve_hits = 0;
    for (const auto& [point, hits] : cluster.coord_env->faults()->Points()) {
      if (point == std::string("dtx.coord.resolve_step")) {
        resolve_hits = hits;
        names.insert(point);
      }
    }
    EXPECT_EQ(resolve_hits, kDtxShards);  // one step per in-doubt branch
  }

  const std::set<std::string> manifest(
      std::begin(crash_matrix::kDtxCoordinatorPoints),
      std::end(crash_matrix::kDtxCoordinatorPoints));
  EXPECT_EQ(names, manifest)
      << "tests/crash_matrix_points.h kDtxCoordinatorPoints drifted from "
         "the surface these workloads reach";
}

TEST(CrashMatrixTest, CoordinatorCrashBeforeDecisionPresumesAbort) {
  // Crash between prepare-durable and decision-force: every vote is on
  // disk but no decision exists, so reopen must abort all branches.
  for (uint64_t hit : {1u, 3u}) {
    const std::string context =
        "dtx.coord.prepared#" + std::to_string(hit);
    SCOPED_TRACE(context);
    DtxCluster cluster;
    FaultSpec spec;
    spec.point = "dtx.coord.prepared";
    spec.kind = FaultKind::kCrash;
    spec.hit = hit;
    cluster.coord_env->faults()->Arm(spec);

    std::unique_ptr<ShardedHeap> heap;
    std::vector<uint64_t> acked;
    Status s = RunDtxWorkload(&cluster, &heap, &acked);
    ASSERT_TRUE(s.IsCrashed())
        << "armed crash did not fire (" << s.ToString() << ")";
    EXPECT_EQ(cluster.coord_env->faults()->crash_point(),
              "dtx.coord.prepared");
    EXPECT_EQ(acked.size(), hit - 1);
    ASSERT_TRUE(heap->SimulateCrashAll(CrashOptions{0.5, 11 + hit, 96}).ok());
    heap.reset();

    auto reopened = cluster.Open();
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<ShardedHeap> recovered = std::move(*reopened);
    const ShardedHeapStats stats = recovered->stats();
    EXPECT_EQ(stats.dtx.resolved_abort, kDtxShards);  // one branch per shard
    EXPECT_EQ(stats.dtx.resolved_commit, 0u);
    VerifyDtxRecovered(recovered.get(), acked, /*crashed_acct=*/hit - 1,
                       /*crashed_applied=*/false, context);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashMatrixTest, CoordinatorCrashAfterDecisionCommitsOnReopen) {
  // Crash after the decision force but before any participant ack: the
  // decision record is the commit point, so reopen must commit every
  // branch even though the application never saw OK.
  for (uint64_t hit : {1u, 3u}) {
    const std::string context =
        "dtx.coord.decision_forced#" + std::to_string(hit);
    SCOPED_TRACE(context);
    DtxCluster cluster;
    FaultSpec spec;
    spec.point = "dtx.coord.decision_forced";
    spec.kind = FaultKind::kCrash;
    spec.hit = hit;
    cluster.coord_env->faults()->Arm(spec);

    std::unique_ptr<ShardedHeap> heap;
    std::vector<uint64_t> acked;
    Status s = RunDtxWorkload(&cluster, &heap, &acked);
    ASSERT_TRUE(s.IsCrashed())
        << "armed crash did not fire (" << s.ToString() << ")";
    EXPECT_EQ(cluster.coord_env->faults()->crash_point(),
              "dtx.coord.decision_forced");
    EXPECT_EQ(acked.size(), hit - 1);
    ASSERT_TRUE(heap->SimulateCrashAll(CrashOptions{0.5, 17 + hit, 96}).ok());
    heap.reset();

    auto reopened = cluster.Open();
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<ShardedHeap> recovered = std::move(*reopened);
    const ShardedHeapStats stats = recovered->stats();
    EXPECT_EQ(stats.dtx.resolved_commit, kDtxShards);
    EXPECT_EQ(stats.dtx.resolved_abort, 0u);
    VerifyDtxRecovered(recovered.get(), acked, /*crashed_acct=*/hit - 1,
                       /*crashed_applied=*/true, context);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CrashMatrixTest, CoordinatorCrashDuringResolutionIsIdempotent) {
  // Crash *during* in-doubt resolution on reopen, at each step: the
  // branches resolved before the crash are committed, the rest stay in
  // doubt holding their locks, and the next reopen finishes the job from
  // the decision log — each branch applied exactly once.
  for (uint64_t hit : {1u, 2u}) {
    const std::string context =
        "dtx.coord.resolve_step#" + std::to_string(hit);
    SCOPED_TRACE(context);
    DtxCluster cluster;
    // Build the in-doubt state: decision durable, no acks.
    FaultSpec spec;
    spec.point = "dtx.coord.decision_forced";
    spec.kind = FaultKind::kCrash;
    spec.hit = 1;
    cluster.coord_env->faults()->Arm(spec);
    std::unique_ptr<ShardedHeap> heap;
    std::vector<uint64_t> acked;
    Status s = RunDtxWorkload(&cluster, &heap, &acked);
    ASSERT_TRUE(s.IsCrashed()) << s.ToString();
    ASSERT_TRUE(heap->SimulateCrashAll(CrashOptions{0.5, 29 + hit, 96}).ok());
    heap.reset();

    // First reopen crashes at resolution step `hit` (one step per
    // restored prepared transaction, shard order).
    FaultSpec second;
    second.point = "dtx.coord.resolve_step";
    second.kind = FaultKind::kCrash;
    second.hit = hit;
    cluster.coord_env->faults()->Arm(second);
    auto failed = cluster.Open();
    ASSERT_FALSE(failed.ok());
    EXPECT_TRUE(failed.status().IsCrashed()) << failed.status().ToString();
    EXPECT_EQ(cluster.coord_env->faults()->crash_point(),
              "dtx.coord.resolve_step");

    // Second reopen: the one-shot is consumed; resolution must converge.
    auto reopened = cluster.Open();
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<ShardedHeap> recovered = std::move(*reopened);
    // Steps before the crash already committed their branch; the rest
    // resolve now. Either way the transfer lands exactly once.
    EXPECT_EQ(recovered->stats().dtx.resolved_commit,
              kDtxShards - (hit - 1));
    VerifyDtxRecovered(recovered.get(), acked, /*crashed_acct=*/0,
                       /*crashed_applied=*/true, context);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace sheap
