// Randomized two-phase-commit torture: distributed transfers between two
// bank nodes with crashes injected at every protocol stage (before prepare,
// between prepare and decision, after decision before phase 2, coordinator
// loss), plus garbage collections and checkpoints on the participants.
// Invariant: the GLOBAL total (sum over both nodes) never changes, and
// every distributed transfer is all-or-nothing across nodes.

#include <gtest/gtest.h>

#include <memory>

#include "dtx/two_phase.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

using workload::Bank;

constexpr uint64_t kAccounts = 32;
constexpr uint64_t kInitial = 1000;

struct Node {
  std::unique_ptr<SimEnv> env;
  std::unique_ptr<StableHeap> heap;

  void Open() {
    StableHeapOptions opts;
    opts.stable_space_pages = 384;
    opts.volatile_space_pages = 128;
    if (env == nullptr) env = std::make_unique<SimEnv>();
    heap = std::move(*StableHeap::Open(env.get(), opts));
  }

  void Crash(Rng* rng) {
    CrashOptions crash;
    crash.writeback_fraction = rng->NextDouble();
    crash.seed = rng->Next();
    crash.tear_tail_bytes = rng->Bernoulli(0.5) ? rng->Uniform(3000) : 0;
    SHEAP_CHECK_OK(heap->SimulateCrash(crash));
    heap.reset();
    Open();
  }

  /// Debit (amount from account `acct`) or credit (negative direction) as
  /// an un-committed transaction; kNoTxn when funds are insufficient.
  StatusOr<TxnId> StartDebit(uint64_t acct, int64_t delta) {
    SHEAP_ASSIGN_OR_RETURN(TxnId txn, heap->Begin());
    auto body = [&]() -> Status {
      SHEAP_ASSIGN_OR_RETURN(Ref dir, heap->GetRoot(txn, 0));
      SHEAP_ASSIGN_OR_RETURN(Ref bucket, heap->ReadRef(txn, dir, acct / 64));
      SHEAP_ASSIGN_OR_RETURN(uint64_t bal,
                             heap->ReadScalar(txn, bucket, acct % 64));
      if (delta < 0 && bal < static_cast<uint64_t>(-delta)) {
        return Status::InvalidArgument("insufficient");
      }
      return heap->WriteScalar(txn, bucket, acct % 64, bal + delta);
    };
    Status st = body();
    if (!st.ok()) {
      // Best-effort rollback; the body's error propagates (audited
      // discard).
      (void)heap->Abort(txn);
      return st;
    }
    return txn;
  }

  uint64_t Total() {
    Bank bank(heap.get(), 0);
    SHEAP_CHECK_OK(bank.Attach());
    return *bank.TotalBalance();
  }
};

class DtxTortureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DtxTortureTest, GlobalTotalInvariantUnderProtocolCrashes) {
  Rng rng(GetParam());
  Node a, b;
  a.Open();
  b.Open();
  {
    Bank ba(a.heap.get(), 0), bb(b.heap.get(), 0);
    ASSERT_TRUE(ba.Setup(kAccounts, kInitial).ok());
    ASSERT_TRUE(bb.Setup(kAccounts, kInitial).ok());
  }
  auto coord_env = std::make_unique<SimEnv>();
  auto coord = std::make_unique<TwoPhaseCoordinator>(coord_env.get());
  const uint64_t kGlobalTotal = 2 * kAccounts * kInitial;

  for (int round = 0; round < 40; ++round) {
    const uint64_t amount = 1 + rng.Uniform(50);
    const uint64_t from = rng.Uniform(kAccounts);
    const uint64_t to = rng.Uniform(kAccounts);

    // A cross-node transfer: debit on A, credit on B.
    auto ta = a.StartDebit(from, -static_cast<int64_t>(amount));
    if (!ta.ok()) continue;  // bounced
    auto tb = b.StartDebit(to, static_cast<int64_t>(amount));
    ASSERT_TRUE(tb.ok());

    const Gtid gtid = coord->NewGtid();
    const uint64_t crash_stage = rng.Uniform(6);

    if (crash_stage == 0) {
      // Crash a participant before prepare: both transactions die.
      // The surviving branch's rollback is best-effort (audited discard).
      a.Crash(&rng);
      (void)b.heap->Abort(*tb);
    } else {
      auto voted = coord->PrepareAll(gtid, {{a.heap.get(), *ta},
                                            {b.heap.get(), *tb}});
      ASSERT_TRUE(voted.ok());
      if (!*voted) continue;
      if (crash_stage == 1) {
        // Crash both while in doubt, no decision: presumed abort.
        a.Crash(&rng);
        b.Crash(&rng);
      } else if (crash_stage == 2) {
        // Coordinator "crashes" (rebuilt) before deciding: presumed abort.
        coord = std::make_unique<TwoPhaseCoordinator>(coord_env.get());
      } else {
        ASSERT_TRUE(coord->LogCommitDecision(gtid).ok());
        if (crash_stage == 3) {
          a.Crash(&rng);  // one participant lost before phase 2
        } else if (crash_stage == 4) {
          a.Crash(&rng);
          b.Crash(&rng);
          coord = std::make_unique<TwoPhaseCoordinator>(coord_env.get());
        }
        // stage 5: clean path.
      }
      ASSERT_TRUE(coord->Resolve(a.heap.get()).ok());
      ASSERT_TRUE(coord->Resolve(b.heap.get()).ok());
      if (coord->Committed(gtid)) {
        ASSERT_TRUE(coord->LogEnd(gtid).ok());
      }
    }

    // Occasionally collect and checkpoint the participants.
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(a.heap->CollectStableFully().ok());
    }
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(b.heap->Checkpoint().ok());
    }

    // The global invariant: money neither minted nor destroyed, and no
    // half-transfers (each node's local total differs from its base by the
    // same committed transfer amounts).
    ASSERT_EQ(a.Total() + b.Total(), kGlobalTotal) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtxTortureTest,
                         ::testing::Values(3u, 14u, 159u, 2653u));

}  // namespace
}  // namespace sheap
