// Unit tests for the heap layer: object headers, type registry, spaces,
// handle table, word/byte memory access.

#include <gtest/gtest.h>

#include "heap/handle_table.h"
#include "heap/heap_memory.h"
#include "heap/object.h"
#include "heap/space_manager.h"
#include "heap/type_registry.h"
#include "wal/log_reader.h"
#include "storage/sim_env.h"
#include "wal/log_writer.h"

namespace sheap {
namespace {

TEST(ObjectHeaderTest, EncodeDecodeRoundTrip) {
  uint64_t w = EncodeHeader(/*class_id=*/12, /*nslots=*/345);
  ASSERT_TRUE(IsHeaderWord(w));
  EXPECT_FALSE(IsForwardWord(w));
  ObjectHeader hdr = DecodeHeader(w);
  EXPECT_EQ(hdr.class_id, 12u);
  EXPECT_EQ(hdr.nslots, 345u);
  EXPECT_EQ(hdr.TotalWords(), 346u);
}

TEST(ObjectHeaderTest, ForwardWordRoundTrip) {
  const HeapAddr to = 0x123456789 * 8;
  uint64_t w = MakeForwardWord(to);
  ASSERT_TRUE(IsForwardWord(w));
  EXPECT_FALSE(IsHeaderWord(w));
  EXPECT_EQ(ForwardTarget(w), to);
}

TEST(ObjectHeaderTest, ZeroIsNeitherHeaderNorForward) {
  EXPECT_FALSE(IsHeaderWord(0));
  EXPECT_FALSE(IsForwardWord(0));
}

TEST(ObjectHeaderTest, SlotAddressing) {
  const HeapAddr base = 4096;
  EXPECT_EQ(SlotAddr(base, 0), base + 8);
  EXPECT_EQ(SlotAddr(base, 3), base + 32);
  EXPECT_EQ(SlotIndex(base, SlotAddr(base, 5)), 5u);
}

TEST(TypeRegistryTest, BuiltInArrays) {
  TypeRegistry reg;
  EXPECT_TRUE(reg.IsRegistered(kClassDataArray));
  EXPECT_TRUE(reg.IsRegistered(kClassPtrArray));
  EXPECT_FALSE(reg.IsPointerSlot(kClassDataArray, 0));
  EXPECT_TRUE(reg.IsPointerSlot(kClassPtrArray, 99));
  EXPECT_EQ(reg.FixedSlots(kClassPtrArray), 0u);
}

TEST(TypeRegistryTest, UserClassPointerMap) {
  TypeRegistry reg;
  auto id = reg.Register({false, true, false, true});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, kFirstUserClass);
  EXPECT_FALSE(reg.IsPointerSlot(*id, 0));
  EXPECT_TRUE(reg.IsPointerSlot(*id, 1));
  EXPECT_TRUE(reg.IsPointerSlot(*id, 3));
  EXPECT_EQ(reg.FixedSlots(*id), 4u);
}

TEST(TypeRegistryTest, MapEncodeDecodeRoundTrip) {
  TypeRegistry reg;
  std::vector<bool> map = {true, false, false, true, true, false, true,
                           false, true};
  auto id = reg.Register(map);
  ASSERT_TRUE(id.ok());
  auto bytes = reg.EncodeMap(*id);
  EXPECT_EQ(TypeRegistry::DecodeMap(bytes, map.size()), map);
}

TEST(TypeRegistryTest, InstallAtMatchesOrConflicts) {
  TypeRegistry reg;
  ASSERT_TRUE(reg.InstallAt(kFirstUserClass, {true, false}).ok());
  // Identical re-install is fine (re-registration after recovery).
  EXPECT_TRUE(reg.InstallAt(kFirstUserClass, {true, false}).ok());
  // Conflicting definition is rejected.
  EXPECT_TRUE(
      reg.InstallAt(kFirstUserClass, {false, false}).IsInvalidArgument());
  // Out-of-order install is rejected.
  EXPECT_TRUE(reg.InstallAt(kFirstUserClass + 5, {true}).IsInvalidArgument());
}

TEST(TypeRegistryTest, FullTableRoundTrip) {
  TypeRegistry reg;
  ASSERT_TRUE(reg.Register({true, false}).ok());
  ASSERT_TRUE(reg.Register({false, false, true}).ok());
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  reg.EncodeAllTo(&enc);
  TypeRegistry reg2;
  Decoder dec(buf);
  ASSERT_TRUE(reg2.DecodeAllFrom(&dec).ok());
  EXPECT_TRUE(reg2.IsPointerSlot(kFirstUserClass, 0));
  EXPECT_TRUE(reg2.IsPointerSlot(kFirstUserClass + 1, 2));
  EXPECT_FALSE(reg2.IsPointerSlot(kFirstUserClass + 1, 0));
}

class SpaceTest : public ::testing::Test {
 protected:
  SpaceTest()
      : writer_(env_.log()),
        pool_(env_.disk(), 64,
              BufferPool::Hooks{
                  [this](Lsn lsn) { return writer_.FlushTo(lsn); },
                  nullptr,
                  nullptr}),
        spaces_(&writer_, env_.disk(), &pool_) {}

  SimEnv env_;
  LogWriter writer_;
  BufferPool pool_;
  SpaceManager spaces_;
};

TEST_F(SpaceTest, AllocateAssignsFreshPages) {
  auto a = spaces_.Allocate(10, Area::kStable);
  auto b = spaces_.Allocate(5, Area::kVolatile);
  ASSERT_TRUE(a.ok() && b.ok());
  const Space* sa = spaces_.Find(*a);
  const Space* sb = spaces_.Find(*b);
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(sa->base_page + sa->npages, sb->base_page);  // no overlap
  EXPECT_EQ(sa->area, Area::kStable);
  EXPECT_EQ(sb->area, Area::kVolatile);
}

TEST_F(SpaceTest, ContainingFindsLiveSpaceOnly) {
  auto a = spaces_.Allocate(4, Area::kStable);
  ASSERT_TRUE(a.ok());
  const Space* sp = spaces_.Find(*a);
  EXPECT_EQ(spaces_.Containing(sp->base()), sp);
  EXPECT_EQ(spaces_.Containing(sp->end() - 8), sp);
  ASSERT_TRUE(spaces_.Free(*a).ok());
  EXPECT_EQ(spaces_.Containing(sp->base()), nullptr);
}

TEST_F(SpaceTest, FreeDropsDiskPages) {
  auto a = spaces_.Allocate(2, Area::kStable);
  ASSERT_TRUE(a.ok());
  const Space* sp = spaces_.Find(*a);
  PageImage img;
  img.WriteWord(0, 42);
  ASSERT_TRUE(env_.disk()->WritePage(sp->base_page, img).ok());
  ASSERT_TRUE(spaces_.Free(*a).ok());
  PageImage out;
  ASSERT_TRUE(env_.disk()->ReadPage(sp->base_page, &out).ok());
  EXPECT_EQ(out.ReadWord(0), 0u);
}

TEST_F(SpaceTest, RecoveryReplayRebuildsTable) {
  auto a = spaces_.Allocate(3, Area::kStable);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(writer_.Flush().ok());

  // Rebuild from the log on a fresh manager.
  LogWriter writer2(env_.log());
  SpaceManager rebuilt(&writer2, env_.disk(), &pool_);
  LogReader reader(env_.log());
  LogRecord rec;
  while (true) {
    auto more = reader.Next(&rec);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    if (rec.type == RecordType::kSpaceAlloc) rebuilt.ApplyAllocRecord(rec);
    if (rec.type == RecordType::kSpaceFree) rebuilt.ApplyFreeRecord(rec);
  }
  const Space* sp = rebuilt.Find(*a);
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->npages, 3u);
  const PageId end_page = sp->base_page + sp->npages;
  // The rebuilt manager continues page allocation past existing spaces.
  // (Allocate may grow the space vector, so don't hold `sp` across it.)
  auto b = rebuilt.Allocate(1, Area::kStable);
  ASSERT_TRUE(b.ok());
  EXPECT_GE(rebuilt.Find(*b)->base_page, end_page);
}

TEST_F(SpaceTest, EncodeDecodeRoundTrip) {
  ASSERT_TRUE(spaces_.Allocate(3, Area::kStable).ok());
  auto b = spaces_.Allocate(2, Area::kVolatile);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(spaces_.Free(*b).ok());
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  spaces_.EncodeTo(&enc);
  LogWriter writer2(env_.log());
  SpaceManager copy(&writer2, env_.disk(), &pool_);
  Decoder dec(buf);
  ASSERT_TRUE(copy.DecodeFrom(&dec).ok());
  ASSERT_EQ(copy.spaces().size(), 2u);
  EXPECT_FALSE(copy.spaces()[0].freed);
  EXPECT_TRUE(copy.spaces()[1].freed);
}

TEST(HandleTableTest, CreateGetSetRelease) {
  HandleTable table;
  Ref r = table.Create(1, 4096);
  auto addr = table.Get(r);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(*addr, 4096u);
  ASSERT_TRUE(table.Set(r, 8192).ok());
  EXPECT_EQ(*table.Get(r), 8192u);
  ASSERT_TRUE(table.Release(r).ok());
  EXPECT_TRUE(table.Get(r).status().IsInvalidArgument());
}

TEST(HandleTableTest, StaleGenerationsDetected) {
  HandleTable table;
  Ref r1 = table.Create(1, 100);
  table.ReleaseTxn(1);
  Ref r2 = table.Create(2, 200);  // reuses the slot, bumps generation
  EXPECT_TRUE(table.Get(r1).status().IsInvalidArgument());
  EXPECT_EQ(*table.Get(r2), 200u);
}

TEST(HandleTableTest, ReleaseTxnOnlyDropsOwned) {
  HandleTable table;
  Ref a = table.Create(1, 10);
  Ref b = table.Create(2, 20);
  Ref global = table.Create(kNoTxn, 30);
  table.ReleaseTxn(1);
  EXPECT_FALSE(table.Get(a).ok());
  EXPECT_TRUE(table.Get(b).ok());
  EXPECT_TRUE(table.Get(global).ok());
  EXPECT_EQ(table.LiveCount(), 2u);
}

TEST(HandleTableTest, ForEachLiveAllowsRewriting) {
  HandleTable table;
  table.Create(1, 100);
  table.Create(1, 200);
  table.ForEachLive([](HeapAddr* a) { *a += 1; });
  size_t seen = 0;
  table.ForEachLive([&](HeapAddr* a) {
    ++seen;
    EXPECT_TRUE(*a == 101 || *a == 201);
  });
  EXPECT_EQ(seen, 2u);
}

class HeapMemoryTest : public ::testing::Test {
 protected:
  HeapMemoryTest()
      : writer_(env_.log()),
        pool_(env_.disk(), 64,
              BufferPool::Hooks{
                  [this](Lsn lsn) { return writer_.FlushTo(lsn); },
                  nullptr,
                  nullptr}),
        mem_(&pool_) {}

  SimEnv env_;
  LogWriter writer_;
  BufferPool pool_;
  HeapMemory mem_;
};

TEST_F(HeapMemoryTest, WordRoundTrip) {
  ASSERT_TRUE(mem_.WriteWordLogged(4096, 77, 1).ok());
  auto v = mem_.ReadWord(4096);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 77u);
}

TEST_F(HeapMemoryTest, BytesSpanPages) {
  std::vector<uint8_t> data(3 * kPageSizeBytes);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  const HeapAddr addr = kPageSizeBytes - 64;  // crosses two boundaries
  ASSERT_TRUE(mem_.WriteBytesLogged(addr, data.data(), data.size(), 9).ok());
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(mem_.ReadBytes(addr, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
  // All touched pages carry the record's LSN.
  for (PageId p = PageOf(addr); p <= PageOf(addr + data.size() - 1); ++p) {
    auto frame = pool_.Pin(p);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ((*frame)->page_lsn, 9u);
    pool_.Unpin(p);
  }
}

TEST_F(HeapMemoryTest, ReadHeaderValidates) {
  ASSERT_TRUE(mem_.WriteWordLogged(8192, EncodeHeader(2, 10), 1).ok());
  auto hdr = mem_.ReadHeader(8192);
  ASSERT_TRUE(hdr.ok());
  EXPECT_EQ(hdr->nslots, 10u);
  ASSERT_TRUE(mem_.WriteWordLogged(8192, MakeForwardWord(16384), 2).ok());
  EXPECT_TRUE(mem_.ReadHeader(8192).status().IsCorruption());
}

}  // namespace
}  // namespace sheap
