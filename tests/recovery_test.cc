// Crash-recovery tests (paper Chapters 3-4): atomicity and durability
// across simulated crashes at adversarial points — varying which dirty
// pages reached disk, torn log tails, crashes in the middle of incremental
// collections, torn checkpoints, and repeated crash/recover cycles. Also
// checks the headline property: recovery work is independent of heap size.

#include <gtest/gtest.h>

#include <memory>

#include "core/stable_heap.h"
#include "workload/graph_gen.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

using workload::Bank;
using workload::BuildTree;
using workload::GraphChecksum;
using workload::NodeClass;
using workload::RegisterNodeClass;

StableHeapOptions TestOptions(bool divided) {
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 128;
  opts.divided_heap = divided;
  return opts;
}

/// Crash the heap and reopen it on the same environment.
void CrashAndReopen(std::unique_ptr<SimEnv>& env,
                    std::unique_ptr<StableHeap>& heap,
                    const StableHeapOptions& opts,
                    const CrashOptions& crash) {
  ASSERT_TRUE(heap->SimulateCrash(crash).ok());
  heap.reset();
  auto reopened = StableHeap::Open(env.get(), opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  heap = std::move(*reopened);
}

class RecoveryTest
    : public ::testing::TestWithParam<std::tuple<bool, double>> {
 protected:
  void SetUp() override {
    divided_ = std::get<0>(GetParam());
    writeback_ = std::get<1>(GetParam());
    env_ = std::make_unique<SimEnv>();
    auto heap = StableHeap::Open(env_.get(), TestOptions(divided_));
    ASSERT_TRUE(heap.ok());
    heap_ = std::move(*heap);
  }

  CrashOptions Crash(uint64_t seed = 1, uint64_t tear = 0) {
    CrashOptions c;
    c.writeback_fraction = writeback_;
    c.seed = seed;
    c.tear_tail_bytes = tear;
    return c;
  }

  bool divided_;
  double writeback_;
  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<StableHeap> heap_;
};

INSTANTIATE_TEST_SUITE_P(
    Matrix, RecoveryTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(0.0, 0.4, 1.0)),
    [](const ::testing::TestParamInfo<std::tuple<bool, double>>& param_info) {
      std::string name = std::get<0>(param_info.param) ? "Divided" : "AllStable";
      name += "_Wb";
      name += std::to_string(static_cast<int>(std::get<1>(param_info.param) * 10));
      return name;
    });

TEST_P(RecoveryTest, CommittedTransactionsSurvive) {
  Bank bank(heap_.get(), 0);
  ASSERT_TRUE(bank.Setup(100, 1000).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bank.Transfer(i, 99 - i, 10).ok());
  }
  CrashAndReopen(env_, heap_, TestOptions(divided_), Crash(7));
  Bank after(heap_.get(), 0);
  ASSERT_TRUE(after.Attach().ok());
  auto total = after.TotalBalance();
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  EXPECT_EQ(*total, 100u * 1000);
  // Spot-check a transferred account.
  EXPECT_EQ(*after.BalanceOf(0), 990u);
  EXPECT_EQ(*after.BalanceOf(99), 1010u);
}

TEST_P(RecoveryTest, UncommittedTransactionsVanish) {
  Bank bank(heap_.get(), 0);
  ASSERT_TRUE(bank.Setup(50, 1000).ok());

  // Leave a transaction in flight at the crash.
  auto txn = heap_->Begin();
  ASSERT_TRUE(txn.ok());
  auto dir = heap_->GetRoot(*txn, 0);
  ASSERT_TRUE(dir.ok());
  auto bucket = heap_->ReadRef(*txn, *dir, 0);
  ASSERT_TRUE(bucket.ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *bucket, 0, 0).ok());  // steal all
  // Push dirty pages so the uncommitted write may reach disk.
  ASSERT_TRUE(heap_->WriteBackPages(1.0, 3).ok());

  CrashAndReopen(env_, heap_, TestOptions(divided_), Crash(11));
  Bank after(heap_.get(), 0);
  ASSERT_TRUE(after.Attach().ok());
  EXPECT_EQ(*after.BalanceOf(0), 1000u);  // undone by recovery
  EXPECT_EQ(*after.TotalBalance(), 50u * 1000);
}

TEST_P(RecoveryTest, AbortedTransactionsStayAborted) {
  Bank bank(heap_.get(), 0);
  ASSERT_TRUE(bank.Setup(50, 1000).ok());
  ASSERT_TRUE(bank.Transfer(1, 2, 500, /*abort_instead=*/true).ok());
  CrashAndReopen(env_, heap_, TestOptions(divided_), Crash(5));
  Bank after(heap_.get(), 0);
  ASSERT_TRUE(after.Attach().ok());
  EXPECT_EQ(*after.BalanceOf(1), 1000u);
  EXPECT_EQ(*after.BalanceOf(2), 1000u);
}

TEST_P(RecoveryTest, TornLogTailLosesOnlyUnforcedWork) {
  Bank bank(heap_.get(), 0);
  ASSERT_TRUE(bank.Setup(50, 1000).ok());
  ASSERT_TRUE(bank.Transfer(3, 4, 100).ok());  // forced by commit
  // Tear far more bytes than the tail: the durable barrier (raised by the
  // commit force) must protect everything acknowledged.
  CrashAndReopen(env_, heap_, TestOptions(divided_),
                 Crash(13, /*tear=*/1 << 20));
  Bank after(heap_.get(), 0);
  ASSERT_TRUE(after.Attach().ok());
  EXPECT_EQ(*after.BalanceOf(3), 900u);
  EXPECT_EQ(*after.BalanceOf(4), 1100u);
  EXPECT_EQ(*after.TotalBalance(), 50u * 1000);
}

TEST_P(RecoveryTest, ObjectGraphChecksumStableAcrossCrash) {
  auto cls = RegisterNodeClass(heap_.get(), 3);
  ASSERT_TRUE(cls.ok());
  uint64_t checksum;
  {
    auto txn = heap_->Begin();
    auto root = BuildTree(heap_.get(), *txn, *cls, 5);
    ASSERT_TRUE(root.ok());
    ASSERT_TRUE(heap_->SetRoot(*txn, 0, *root).ok());
    ASSERT_TRUE(heap_->Commit(*txn).ok());
    auto t2 = heap_->Begin();
    auto r = heap_->GetRoot(*t2, 0);
    checksum = *GraphChecksum(heap_.get(), *t2, *r);
    ASSERT_TRUE(heap_->Commit(*t2).ok());
  }
  CrashAndReopen(env_, heap_, TestOptions(divided_), Crash(17));
  auto txn = heap_->Begin();
  auto root = heap_->GetRoot(*txn, 0);
  ASSERT_TRUE(root.ok());
  auto sum = GraphChecksum(heap_.get(), *txn, *root);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, checksum);
  ASSERT_TRUE(heap_->Commit(*txn).ok());
}

TEST_P(RecoveryTest, CrashDuringIncrementalCollection) {
  auto cls = RegisterNodeClass(heap_.get(), 3);
  ASSERT_TRUE(cls.ok());
  uint64_t checksum;
  {
    auto txn = heap_->Begin();
    auto root = BuildTree(heap_.get(), *txn, *cls, 5);
    ASSERT_TRUE(root.ok());
    ASSERT_TRUE(heap_->SetRoot(*txn, 0, *root).ok());
    ASSERT_TRUE(heap_->Commit(*txn).ok());
    auto t2 = heap_->Begin();
    auto r = heap_->GetRoot(*t2, 0);
    checksum = *GraphChecksum(heap_.get(), *t2, *r);
    ASSERT_TRUE(heap_->Commit(*t2).ok());
  }

  // Crash at several depths into the collection, reopening each time.
  for (uint64_t steps : {0u, 1u, 3u, 7u, 15u}) {
    ASSERT_TRUE(heap_->StartStableCollection().ok());
    for (uint64_t s = 0; s < steps && heap_->stable_gc()->collecting();
         ++s) {
      ASSERT_TRUE(heap_->StepStableCollection(1).ok());
    }
    CrashAndReopen(env_, heap_, TestOptions(divided_), Crash(steps + 23));
    // Finish whatever collection state was recovered, then verify.
    ASSERT_TRUE(heap_->CollectStableFully().ok());
    auto txn = heap_->Begin();
    auto root = heap_->GetRoot(*txn, 0);
    ASSERT_TRUE(root.ok());
    auto sum = GraphChecksum(heap_.get(), *txn, *root);
    ASSERT_TRUE(sum.ok()) << "steps=" << steps << ": "
                          << sum.status().ToString();
    EXPECT_EQ(*sum, checksum) << "steps=" << steps;
    ASSERT_TRUE(heap_->Commit(*txn).ok());
  }
}

TEST_P(RecoveryTest, CrashWithActiveTxnDuringCollection) {
  Bank bank(heap_.get(), 0);
  ASSERT_TRUE(bank.Setup(64, 1000).ok());
  ASSERT_TRUE(heap_->StartStableCollection().ok());
  ASSERT_TRUE(heap_->StepStableCollection(2).ok());

  // Start a transaction mid-collection, modify, don't commit.
  auto txn = heap_->Begin();
  auto dir = heap_->GetRoot(*txn, 0);
  ASSERT_TRUE(dir.ok());
  auto bucket = heap_->ReadRef(*txn, *dir, 0);
  ASSERT_TRUE(bucket.ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *bucket, 5, 1).ok());
  ASSERT_TRUE(heap_->StepStableCollection(2).ok());
  ASSERT_TRUE(heap_->WriteBackPages(0.8, 31).ok());

  CrashAndReopen(env_, heap_, TestOptions(divided_), Crash(37));
  ASSERT_TRUE(heap_->CollectStableFully().ok());
  Bank after(heap_.get(), 0);
  ASSERT_TRUE(after.Attach().ok());
  EXPECT_EQ(*after.BalanceOf(5), 1000u);  // loser undone, via UTT if moved
  EXPECT_EQ(*after.TotalBalance(), 64u * 1000);
}

TEST_P(RecoveryTest, RepeatedCrashRecoverCycles) {
  Bank bank(heap_.get(), 0);
  ASSERT_TRUE(bank.Setup(40, 500).ok());
  for (uint64_t round = 0; round < 6; ++round) {
    Bank b(heap_.get(), 0);
    ASSERT_TRUE(b.Attach().ok());
    ASSERT_TRUE(b.Transfer(round, round + 10, 50).ok());
    // Alternate crash flavors.
    CrashOptions c = Crash(100 + round, round % 2 == 0 ? 4096 : 0);
    c.writeback_fraction = (round % 3) * 0.5;
    CrashAndReopen(env_, heap_, TestOptions(divided_), c);
  }
  Bank final_bank(heap_.get(), 0);
  ASSERT_TRUE(final_bank.Attach().ok());
  EXPECT_EQ(*final_bank.TotalBalance(), 40u * 500);
  EXPECT_EQ(*final_bank.BalanceOf(0), 450u);
  EXPECT_EQ(*final_bank.BalanceOf(10), 550u);
}

TEST_P(RecoveryTest, CheckpointShortensRedo) {
  Bank bank(heap_.get(), 0);
  ASSERT_TRUE(bank.Setup(64, 1000).ok());
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(bank.Transfer(i % 64, (i + 1) % 64, 1).ok());
  ASSERT_TRUE(heap_->Checkpoint().ok());
  ASSERT_TRUE(bank.Transfer(0, 1, 5).ok());
  CrashAndReopen(env_, heap_, TestOptions(divided_), Crash(41));
  // Analysis started at the checkpoint: only the trailing records were read.
  EXPECT_LT(heap_->recovery_stats().analysis_records, 40u);
  Bank after(heap_.get(), 0);
  ASSERT_TRUE(after.Attach().ok());
  EXPECT_EQ(*after.TotalBalance(), 64u * 1000);
}

TEST_P(RecoveryTest, TornCheckpointFallsBackToEarlierOne) {
  Bank bank(heap_.get(), 0);
  ASSERT_TRUE(bank.Setup(32, 100).ok());
  ASSERT_TRUE(heap_->Checkpoint().ok());  // good checkpoint
  ASSERT_TRUE(bank.Transfer(1, 2, 10).ok());
  ASSERT_TRUE(heap_->Checkpoint().ok());  // to be torn
  // Tear the log back past the final checkpoint record; the master pointer
  // now points at garbage and recovery must fall back.
  const uint64_t tear =
      env_->log()->size() - (env_->log()->master_lsn() - 1) - 10;
  CrashAndReopen(env_, heap_, TestOptions(divided_), Crash(43, tear));
  Bank after(heap_.get(), 0);
  ASSERT_TRUE(after.Attach().ok());
  EXPECT_EQ(*after.TotalBalance(), 32u * 100);
  EXPECT_EQ(*after.BalanceOf(1), 90u);  // the forced commit survived
}

TEST_P(RecoveryTest, RecoveryWorkIndependentOfHeapSize) {
  // Two heaps, 8x different in live size; same work after the checkpoint.
  auto run = [&](uint64_t accounts) -> uint64_t {
    auto env = std::make_unique<SimEnv>();
    StableHeapOptions opts = TestOptions(divided_);
    opts.stable_space_pages = 2048;
    opts.volatile_space_pages = 1024;
    auto heap_or = StableHeap::Open(env.get(), opts);
    SHEAP_CHECK_OK(heap_or.status());
    auto heap = std::move(*heap_or);
    Bank bank(heap.get(), 0);
    SHEAP_CHECK_OK(bank.Setup(accounts, 100));
    // Steady state: the background writer has cleaned the old dirty pages
    // (redo work is bounded by the oldest dirty page's recovery LSN, so a
    // heap whose pages never reach disk would pay for its whole history).
    SHEAP_CHECK_OK(heap->WriteBackPages(1.0, 77));
    SHEAP_CHECK_OK(heap->Checkpoint());
    for (int i = 0; i < 10; ++i) {
      SHEAP_CHECK_OK(bank.Transfer(i, i + 1, 1));
    }
    SHEAP_CHECK_OK(heap->SimulateCrash(CrashOptions{0.5, 9, 0}));
    heap.reset();
    auto reopened = StableHeap::Open(env.get(), opts);
    SHEAP_CHECK_OK(reopened.status());
    const RecoveryStats& rs = (*reopened)->recovery_stats();
    return rs.analysis_records + rs.redo_records_seen + rs.undo_records;
  };
  const uint64_t small = run(100);
  const uint64_t big = run(800);
  // The paper's claim: recovery does not traverse the heap. Allow slack for
  // page-fetch/end-write noise, but the work must not scale with the heap.
  EXPECT_LT(big, small * 2);
}

TEST_P(RecoveryTest, GroupCommitLosesAtMostUnforcedSuffixAtomically) {
  StableHeapOptions opts = TestOptions(divided_);
  opts.force_on_commit = false;  // group commit
  env_ = std::make_unique<SimEnv>();
  auto heap = StableHeap::Open(env_.get(), opts);
  ASSERT_TRUE(heap.ok());
  heap_ = std::move(*heap);

  Bank bank(heap_.get(), 0);
  ASSERT_TRUE(bank.Setup(32, 100).ok());
  ASSERT_TRUE(heap_->ForceLog().ok());  // setup is durable
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(bank.Transfer(i, i + 8, 10).ok());
  // No force since: the batch may be lost, but never half a transfer.
  CrashAndReopen(env_, heap_, opts, Crash(51));
  Bank after(heap_.get(), 0);
  ASSERT_TRUE(after.Attach().ok());
  EXPECT_EQ(*after.TotalBalance(), 32u * 100);
  for (int i = 0; i < 8; ++i) {
    const uint64_t from = *after.BalanceOf(i);
    const uint64_t to = *after.BalanceOf(i + 8);
    EXPECT_TRUE((from == 100 && to == 100) || (from == 90 && to == 110))
        << "transfer " << i << " was torn: " << from << "/" << to;
  }
}

}  // namespace
}  // namespace sheap
