// Manifest of every SHEAP_FAULT_POINT name in src/, grouped by the harness
// that reaches it. This is the bridge between the source tree and the
// crash matrix:
//
//   * crash_matrix_test.cc asserts the traced surface of each workload
//     equals its section here (a new point in src/ that nobody lists is a
//     crash state the matrix silently skips; a listed point no workload
//     reaches is dead coverage), and
//   * tools/sheap_lint.py (ctest -L lint) parses these arrays and fails if
//     they drift from the `SHEAP_FAULT_POINT(..., "name")` sites in src/ —
//     orphans in either direction are build errors.
//
// So: adding a crash point means adding it here AND making a workload reach
// it, in the same change. Names follow `subsystem.component.event`
// (three dot-separated lower_snake segments), also lint-enforced.

#ifndef SHEAP_TESTS_CRASH_MATRIX_POINTS_H_
#define SHEAP_TESTS_CRASH_MATRIX_POINTS_H_

namespace sheap {
namespace crash_matrix {

/// Reached by the scripted workload (RunScriptedWorkload): commits, an
/// abort, checkpoints (plain and writeback), a full GC cycle, a 2PC
/// prepare, background write-back. The matrix crashes at the first,
/// middle, and last dynamic hit of each.
inline constexpr const char* kScriptedWorkloadPoints[] = {
    "ckpt.flush.begin",
    "ckpt.take.begin",
    "ckpt.take.end",
    "ckpt.take.logged",
    "ckpt.take.master",
    "gc.batch.merged",
    "gc.complete.logged",
    "gc.flip.done",
    "gc.flip.logged",
    "gc.scan.worker_claim",
    "gc.step.begin",
    "gc.utr.logged",
    "pool.flushrun.after",
    "pool.flushrun.before",
    "pool.writeback.after",
    "pool.writeback.before",
    "promote.utr.logged",
    "txn.abort.logged",
    "txn.commit.forced",
    "txn.commit.logged",
    "txn.commit.promoted",
    "txn.prepare.forced",
    "wal.flush.begin",
    "wal.flush.mid",
    "wal.force.after_barrier",
    "wal.force.before_barrier",
    "wal.walflush.barrier",
};

/// Reached only inside StableHeap::Open's recovery passes; exercised by
/// RecoveryItselfIsCrashSafe (crash during recovery, then recover again).
inline constexpr const char* kRecoveryPoints[] = {
    "recovery.analysis.done",
    "recovery.redo.done",
    "recovery.undo.done",
};

/// Instant-recovery gate points (StableHeapOptions::instant_recovery):
/// the crash window after a page is claimed for on-demand redo at first
/// touch, and the window after a drain batch is claimed at an action
/// boundary. Exercised by InstantRecoveryReachesItsCrashPoints /
/// InstantGateCrashesRecoverToOfflineState (reopen with instant recovery
/// on, crash mid-drain / mid-on-demand-redo, recover again).
inline constexpr const char* kInstantRecoveryPoints[] = {
    "recovery.drain.step",
    "recovery.ondemand.page_redo",
};

/// Batch-leader points of the commit queue; exercised by
/// GroupCommitNeverLosesAcknowledgedCommits (group_commit = true).
inline constexpr const char* kGroupCommitPoints[] = {
    "wal.group.leader_force",
    "wal.group.batch_durable",
};

/// Concurrent-commit fast-path points (StableHeapOptions::mutator_threads
/// > 1): the crash windows after a commit record is spooled / forced from
/// inside a shared gate section. Mirrors of txn.commit.logged/forced,
/// split out because the fault-point lint requires one site per name and
/// the single-thread crash matrix pins the originals. Exercised by
/// concurrent_torture_test (crash at a random commit, reopen, verify).
inline constexpr const char* kConcurrentCommitPoints[] = {
    "txn.mtcommit.forced",
    "txn.mtcommit.logged",
};

/// 2PC coordinator points (src/dtx/two_phase.cc). These fire on the
/// *coordinator's* SimEnv injector, not a participant's, so they live in
/// their own section — the scripted-workload surface assertion never sees
/// them. Exercised by the CoordinatorCrash* tests: crash between
/// prepare-durable and decision-force (presumed abort must win), after
/// decision-force before participant acks (commit must win on reopen),
/// and mid in-doubt resolution on reopen (remaining txns stay in doubt,
/// the next resolve pass finishes idempotently).
inline constexpr const char* kDtxCoordinatorPoints[] = {
    "dtx.coord.prepared",
    "dtx.coord.decision_forced",
    "dtx.coord.resolve_step",
};

}  // namespace crash_matrix
}  // namespace sheap

#endif  // SHEAP_TESTS_CRASH_MATRIX_POINTS_H_
