// Unit tests for the transaction layer: read/write locks, upgrades,
// deadlock detection, lock rekeying, the transaction table and record
// chains, and the undo translation table.

#include <gtest/gtest.h>

#include "recovery/utt.h"
#include "storage/sim_env.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "wal/log_writer.h"

namespace sheap {
namespace {

TEST(LockManagerTest, SharedReadersCoexist) {
  LockManager locks;
  EXPECT_TRUE(locks.AcquireRead(1, 100).ok());
  EXPECT_TRUE(locks.AcquireRead(2, 100).ok());
  EXPECT_TRUE(locks.HoldsRead(1, 100));
  EXPECT_TRUE(locks.HoldsRead(2, 100));
}

TEST(LockManagerTest, WriterExcludesOthers) {
  LockManager locks;
  EXPECT_TRUE(locks.AcquireWrite(1, 100).ok());
  EXPECT_TRUE(locks.AcquireRead(2, 100).IsBusy());
  EXPECT_TRUE(locks.AcquireWrite(2, 100).IsBusy());
  // The holder can reacquire freely.
  EXPECT_TRUE(locks.AcquireRead(1, 100).ok());
  EXPECT_TRUE(locks.AcquireWrite(1, 100).ok());
}

TEST(LockManagerTest, UpgradeSoleReader) {
  LockManager locks;
  EXPECT_TRUE(locks.AcquireRead(1, 100).ok());
  EXPECT_TRUE(locks.AcquireWrite(1, 100).ok());
  EXPECT_TRUE(locks.HoldsWrite(1, 100));
}

TEST(LockManagerTest, UpgradeBlockedByOtherReaders) {
  LockManager locks;
  EXPECT_TRUE(locks.AcquireRead(1, 100).ok());
  EXPECT_TRUE(locks.AcquireRead(2, 100).ok());
  EXPECT_TRUE(locks.AcquireWrite(1, 100).IsBusy());
}

TEST(LockManagerTest, ReleaseAllFreesObjects) {
  LockManager locks;
  EXPECT_TRUE(locks.AcquireWrite(1, 100).ok());
  EXPECT_TRUE(locks.AcquireWrite(1, 200).ok());
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.AcquireWrite(2, 100).ok());
  EXPECT_TRUE(locks.AcquireWrite(2, 200).ok());
}

TEST(LockManagerTest, DeadlockDetected) {
  LockManager locks;
  EXPECT_TRUE(locks.AcquireWrite(1, 100).ok());
  EXPECT_TRUE(locks.AcquireWrite(2, 200).ok());
  // 1 waits for 2.
  EXPECT_TRUE(locks.AcquireWrite(1, 200).IsBusy());
  // 2 waiting for 1 closes the cycle.
  EXPECT_TRUE(locks.AcquireWrite(2, 100).IsDeadlock());
  EXPECT_EQ(locks.stats().deadlocks, 1u);
}

TEST(LockManagerTest, ThreeWayDeadlockDetected) {
  LockManager locks;
  EXPECT_TRUE(locks.AcquireWrite(1, 10).ok());
  EXPECT_TRUE(locks.AcquireWrite(2, 20).ok());
  EXPECT_TRUE(locks.AcquireWrite(3, 30).ok());
  EXPECT_TRUE(locks.AcquireWrite(1, 20).IsBusy());
  EXPECT_TRUE(locks.AcquireWrite(2, 30).IsBusy());
  EXPECT_TRUE(locks.AcquireWrite(3, 10).IsDeadlock());
}

TEST(LockManagerTest, RekeyMovesLockWithObject) {
  LockManager locks;
  EXPECT_TRUE(locks.AcquireWrite(1, 100).ok());
  locks.Rekey(100, 500);
  EXPECT_TRUE(locks.HoldsWrite(1, 500));
  EXPECT_FALSE(locks.HoldsWrite(1, 100));
  // The moved lock still excludes others.
  EXPECT_TRUE(locks.AcquireWrite(2, 500).IsBusy());
}

TEST(LockManagerTest, WaitEdgesClearOnRelease) {
  LockManager locks;
  EXPECT_TRUE(locks.AcquireWrite(1, 100).ok());
  EXPECT_TRUE(locks.AcquireWrite(2, 100).IsBusy());
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.AcquireWrite(2, 100).ok());
  // No phantom cycle from the stale wait edge.
  EXPECT_TRUE(locks.AcquireWrite(1, 100).IsBusy());
}

class TxnManagerTest : public ::testing::Test {
 protected:
  TxnManagerTest() : writer_(env_.log()), txns_(&writer_) {}
  SimEnv env_;
  LogWriter writer_;
  TxnManager txns_;
};

TEST_F(TxnManagerTest, BeginAssignsIdsAndLogs) {
  Txn* a = txns_.Begin();
  Txn* b = txns_.Begin();
  EXPECT_LT(a->id, b->id);
  EXPECT_NE(a->first_lsn, kInvalidLsn);
  EXPECT_EQ(a->first_lsn, a->last_lsn);
  EXPECT_EQ(txns_.ActiveCount(), 2u);
}

TEST_F(TxnManagerTest, AppendChainedMaintainsBackChain) {
  Txn* t = txns_.Begin();
  const Lsn begin_lsn = t->last_lsn;
  LogRecord rec;
  rec.type = RecordType::kUpdate;
  rec.addr = 8;
  Lsn l1 = txns_.AppendChained(t, &rec);
  EXPECT_EQ(rec.prev_lsn, begin_lsn);
  LogRecord rec2;
  rec2.type = RecordType::kUpdate;
  rec2.addr = 16;
  Lsn l2 = txns_.AppendChained(t, &rec2);
  EXPECT_EQ(rec2.prev_lsn, l1);
  EXPECT_EQ(t->last_lsn, l2);
}

TEST_F(TxnManagerTest, BumpNextIdAfterRecovery) {
  txns_.BumpNextId(41);
  Txn* t = txns_.Begin();
  EXPECT_EQ(t->id, 42u);
}

TEST(UttTest, TranslateUncoveredUnchanged) {
  UndoTranslationTable utt;
  EXPECT_EQ(utt.Translate(12345), 12345u);
  EXPECT_FALSE(utt.Covers(12345));
}

TEST(UttTest, TranslatesWithinRange) {
  UndoTranslationTable utt;
  // Object of 4 words moved from 1000 to 9000.
  utt.AddBatch({{1000, 9000, 4}}, {1});
  EXPECT_EQ(utt.Translate(1000), 9000u);
  EXPECT_EQ(utt.Translate(1016), 9016u);  // slot within the object
  EXPECT_EQ(utt.Translate(1032), 1032u);  // one past the end: uncovered
}

TEST(UttTest, ComposesAcrossFlips) {
  UndoTranslationTable utt;
  utt.AddBatch({{1000, 9000, 4}}, {1});
  utt.AddBatch({{9000, 20000, 4}}, {1});
  EXPECT_EQ(utt.Translate(1008), 20008u);
}

TEST(UttTest, PrunedWhenAllDependentTxnsEnd) {
  UndoTranslationTable utt;
  utt.AddBatch({{1000, 9000, 4}}, {1, 2});
  utt.OnTxnEnd(1);
  EXPECT_TRUE(utt.Covers(1000));  // txn 2 still active
  utt.OnTxnEnd(2);
  EXPECT_FALSE(utt.Covers(1000));
  EXPECT_EQ(utt.BatchCount(), 0u);
}

TEST(UttTest, EncodeDecodeRoundTrip) {
  UndoTranslationTable utt;
  utt.AddBatch({{1000, 9000, 4}, {2000, 9500, 2}}, {1, 7});
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  utt.EncodeTo(&enc);
  UndoTranslationTable copy;
  Decoder dec(buf);
  ASSERT_TRUE(copy.DecodeFrom(&dec).ok());
  EXPECT_EQ(copy.Translate(2008), 9508u);
  copy.OnTxnEnd(1);
  copy.OnTxnEnd(7);
  EXPECT_FALSE(copy.Covers(1000));
}

}  // namespace
}  // namespace sheap
