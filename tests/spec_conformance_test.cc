// Specification-conformance test (paper Chapter 6 / Appendix A, as an
// executable check): drive an identical random operation stream through
// the abstract SpecHeap and the real StableHeap and demand identical
// observable behaviour — every read, every null-ness, and after every
// crash the full reachable object graph (classes, scalars, topology,
// sharing). Collections, checkpoints, background write-backs, and crashes
// are interleaved everywhere; none of them may be observable.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/stable_heap.h"
#include "wal/log_reader.h"
#include "workload/spec_heap.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

using spec::Oid;
using spec::SpecHeap;
using spec::SpecObject;

struct ConformanceConfig {
  uint64_t seed;
  bool divided;
  PromotionMethod promotion = PromotionMethod::kAtCommit;
};

class SpecConformanceTest
    : public ::testing::TestWithParam<ConformanceConfig> {};

struct Var {
  Oid oid = spec::kNullOid;
  Ref ref = kNullRef;
};

class Driver {
 public:
  explicit Driver(const ConformanceConfig& cfg) : rng_(cfg.seed) {
    opts_.stable_space_pages = 512;
    opts_.volatile_space_pages = 256;
    opts_.root_slots = 16;
    opts_.divided_heap = cfg.divided;
    opts_.promotion_method = cfg.promotion;
    env_ = std::make_unique<SimEnv>();
    heap_ = std::move(*StableHeap::Open(env_.get(), opts_));
    spec_ = std::make_unique<SpecHeap>(opts_.root_slots);
    // Class 1: slot 0 scalar, slots 1-2 pointers. Registered identically
    // on both sides.
    node_cls_ = *heap_->RegisterClass({false, true, true});
    SHEAP_CHECK_OK(types_.InstallAt(node_cls_, {false, true, true}));
  }

  void Step() {
    if (txn_open_) {
      switch (rng_.Uniform(12)) {
        case 0:
        case 1:
          DoAllocate();
          break;
        case 2:
        case 3:
          DoWriteScalar();
          break;
        case 4:
        case 5:
          DoWriteRef();
          break;
        case 6:
          DoSetRoot();
          break;
        case 7:
          DoGetRoot();
          break;
        case 8:
        case 9:
          DoReadAndCompare();
          break;
        case 10:
          DoCommit();
          break;
        default:
          DoAbort();
          break;
      }
    } else {
      switch (rng_.Uniform(10)) {
        case 0:
          DoCrashRecoverCompare();
          break;
        case 1:
          ASSERT_TRUE(heap_->CollectStableFully().ok());
          break;
        case 2:
          if (opts_.divided_heap) {
            ASSERT_TRUE(heap_->CollectVolatile().ok());
          }
          break;
        case 3:
          ASSERT_TRUE(heap_->Checkpoint().ok());
          break;
        case 4:
          ASSERT_TRUE(heap_->WriteBackPages(rng_.NextDouble(), rng_.Next())
                          .ok());
          break;
        case 5:
          if (!heap_->stable_gc()->collecting()) {
            ASSERT_TRUE(heap_->StartStableCollection().ok());
          } else {
            ASSERT_TRUE(heap_->StepStableCollection(2).ok());
          }
          break;
        default:
          DoBegin();
          break;
      }
    }
  }

  /// Full-graph comparison from the stable roots (run after crashes and at
  /// the end). Checks classes, slot counts, scalar values, topology and
  /// sharing via an oid<->address bijection.
  void CompareReachable() {
    auto txn_or = heap_->Begin();
    ASSERT_TRUE(txn_or.ok()) << txn_or.status().ToString();
    TxnId txn = *txn_or;
    const TxnId stxn = spec_->Begin();
    std::map<Oid, HeapAddr> oid_to_addr;
    std::map<HeapAddr, Oid> addr_to_oid;
    struct Item {
      Oid oid;
      Ref ref;
      HeapAddr parent_slot = kNullAddr;  // diagnostics
    };
    std::vector<Item> work;
    for (uint64_t i = 0; i < opts_.root_slots; ++i) {
      Oid so = *spec_->GetRoot(stxn, i);
      auto ir_or = heap_->GetRoot(txn, i);
      ASSERT_TRUE(ir_or.ok()) << "root " << i << ": "
                              << ir_or.status().ToString();
      Ref ir = *ir_or;
      ASSERT_EQ(so == spec::kNullOid, ir == kNullRef) << "root " << i;
      if (so != spec::kNullOid) {
        work.push_back(
            {so, ir, SlotAddr(heap_->stable_gc()->root_object(), i)});
      }
    }
    while (!work.empty()) {
      Item item = work.back();
      work.pop_back();
      auto addr_or = heap_->DebugAddrOf(item.ref);
      ASSERT_TRUE(addr_or.ok()) << addr_or.status().ToString();
      HeapAddr addr = *addr_or;
      auto [it, fresh] = oid_to_addr.emplace(item.oid, addr);
      ASSERT_EQ(it->second, addr) << "sharing broken for oid " << item.oid;
      auto [jt, fresh2] = addr_to_oid.emplace(addr, item.oid);
      ASSERT_EQ(jt->second, item.oid) << "aliasing broken at addr " << addr;
      if (!fresh) continue;

      const SpecObject* sobj = spec_->Committed(item.oid);
      ASSERT_NE(sobj, nullptr);
      auto header_or = heap_->DebugReadWord(addr);
      ASSERT_TRUE(header_or.ok()) << header_or.status().ToString();
      if (!IsHeaderWord(*header_or)) {
        fprintf(stderr, "parent slot addr: %llu\n",
                (unsigned long long)item.parent_slot);
        DumpValueWriters(addr);
        if (item.parent_slot != kNullAddr) DumpRecordsFor(item.parent_slot);
      }
      ASSERT_TRUE(IsHeaderWord(*header_or))
          << "oid " << item.oid << " addr " << addr << " word " << std::hex
          << *header_or << std::dec << " fwd " << IsForwardWord(*header_or)
          << " pending " << heap_->pending_materializations()->size();
      const ObjectHeader hdr = DecodeHeader(*header_or);
      ASSERT_EQ(hdr.class_id, sobj->cls) << "oid " << item.oid;
      ASSERT_EQ(hdr.nslots, sobj->slots.size());
      for (uint64_t s = 0; s < hdr.nslots; ++s) {
        if (types_.IsPointerSlot(sobj->cls, s)) {
          auto child_or = heap_->ReadRef(txn, item.ref, s);
          ASSERT_TRUE(child_or.ok())
              << "oid " << item.oid << " slot " << s << ": "
              << child_or.status().ToString();
          Oid child_oid = sobj->slots[s];
          ASSERT_EQ(child_oid == spec::kNullOid, *child_or == kNullRef)
              << "oid " << item.oid << " slot " << s;
          if (*child_or != kNullRef) {
            work.push_back({child_oid, *child_or, SlotAddr(addr, s)});
          }
        } else {
          auto value_or = heap_->ReadScalar(txn, item.ref, s);
          ASSERT_TRUE(value_or.ok())
              << "oid " << item.oid << " slot " << s << ": "
              << value_or.status().ToString();
          ASSERT_EQ(*value_or, sobj->slots[s])
              << "oid " << item.oid << " slot " << s;
        }
      }
    }
    ASSERT_TRUE(heap_->Commit(txn).ok());
    ASSERT_TRUE(spec_->Commit(stxn).ok());
  }

  /// Close any open transaction (committing on both sides), then compare.
  void FinalCompare() {
    if (txn_open_) DoCommit();
    if (::testing::Test::HasFatalFailure()) return;
    CompareReachable();
  }

  uint64_t steps_run() const { return steps_; }

  void DumpValueWriters(uint64_t value) {
    LogReader reader(env_->log());
    SHEAP_CHECK_OK(reader.Seek(env_->log()->truncated_prefix() + 1));
    LogRecord rec;
    fprintf(stderr, "--- records writing value %llu ---\n",
            (unsigned long long)value);
    while (true) {
      auto more = reader.Next(&rec);
      if (!more.ok() || !*more) break;
      bool hit = (rec.type == RecordType::kUpdate ||
                  rec.type == RecordType::kClr) &&
                 rec.new_word == value;
      if (rec.type == RecordType::kGcScan) {
        for (auto& [w, v] : rec.slot_updates) hit = hit || v == value;
      }
      if (hit) {
        fprintf(stderr,
                "lsn %llu %-8s txn=%llu addr=%llu new=%llu old=%llu aux=%llu page=%llu\n",
                (unsigned long long)rec.lsn, LogRecord::TypeName(rec.type),
                (unsigned long long)rec.txn_id, (unsigned long long)rec.addr,
                (unsigned long long)rec.new_word,
                (unsigned long long)rec.old_word, (unsigned long long)rec.aux,
                (unsigned long long)rec.page);
      }
    }
  }

  void DumpTxn(TxnId id) {
    LogReader reader(env_->log());
    SHEAP_CHECK_OK(reader.Seek(env_->log()->truncated_prefix() + 1));
    LogRecord rec;
    fprintf(stderr, "--- records of txn %llu ---\n", (unsigned long long)id);
    while (true) {
      auto more = reader.Next(&rec);
      if (!more.ok() || !*more) break;
      if (rec.IsTransactional() && rec.txn_id == id) {
        fprintf(stderr,
                "lsn %llu %-12s prev=%llu unext=%llu addr=%llu addr2=%llu "
                "new=%llu old=%llu aux=%llu\n",
                (unsigned long long)rec.lsn, LogRecord::TypeName(rec.type),
                (unsigned long long)rec.prev_lsn,
                (unsigned long long)rec.undo_next_lsn,
                (unsigned long long)rec.addr, (unsigned long long)rec.addr2,
                (unsigned long long)rec.new_word,
                (unsigned long long)rec.old_word,
                (unsigned long long)rec.aux);
      }
    }
  }

  void DumpRecordsFor(HeapAddr target) {
    LogReader reader(env_->log());
    SHEAP_CHECK_OK(reader.Seek(env_->log()->truncated_prefix() + 1));
    LogRecord rec;
    fprintf(stderr, "--- records covering addr %llu (page %llu) ---\n",
            (unsigned long long)target, (unsigned long long)PageOf(target));
    while (true) {
      auto more = reader.Next(&rec);
      if (!more.ok() || !*more) break;
      bool hit = false;
      auto covers = [&](HeapAddr a, uint64_t n) {
        return target >= a && target < a + n;
      };
      switch (rec.type) {
        case RecordType::kUpdate:
        case RecordType::kClr:
        case RecordType::kAlloc:
          hit = covers(rec.addr, 8);
          break;
        case RecordType::kGcCopy:
          hit = covers(rec.addr2, rec.count * 8) || covers(rec.addr, 8) ||
                covers(rec.addr, rec.count * 8);
          break;
        case RecordType::kV2sCopy:
          hit = covers(rec.addr2, rec.count * 8);
          break;
        case RecordType::kInitialValue:
          hit = covers(rec.addr, rec.count * 8) ||
                covers(rec.addr2, rec.count * 8);
          break;
        case RecordType::kGcScan:
          hit = rec.page == PageOf(target);
          break;
        case RecordType::kSpaceFree:
        case RecordType::kSpaceAlloc:
        case RecordType::kGcFlip:
        case RecordType::kGcComplete:
          hit = true;
          break;
        default:
          break;
      }
      if (hit) {
        fprintf(stderr,
                "lsn %llu %-12s txn=%llu prev=%llu unext=%llu addr=%llu "
                "addr2=%llu new=%llu old=%llu count=%llu aux=%llu page=%llu\n",
                (unsigned long long)rec.lsn, LogRecord::TypeName(rec.type),
                (unsigned long long)rec.txn_id,
                (unsigned long long)rec.prev_lsn,
                (unsigned long long)rec.undo_next_lsn,
                (unsigned long long)rec.addr, (unsigned long long)rec.addr2,
                (unsigned long long)rec.new_word,
                (unsigned long long)rec.old_word,
                (unsigned long long)rec.count, (unsigned long long)rec.aux,
                (unsigned long long)rec.page);
      }
    }
  }

 private:
  Var* RandomVar() {
    if (vars_.empty()) return nullptr;
    auto it = vars_.begin();
    std::advance(it, rng_.Uniform(vars_.size()));
    return &it->second;
  }

  void DoBegin() {
    itxn_ = *heap_->Begin();
    stxn_ = spec_->Begin();
    txn_open_ = true;
    vars_.clear();
    ++steps_;
  }

  void DoAllocate() {
    const bool array = rng_.Bernoulli(0.3);
    ClassId cls = array ? (rng_.Bernoulli(0.5) ? kClassPtrArray
                                               : kClassDataArray)
                        : node_cls_;
    uint64_t nslots = array ? 1 + rng_.Uniform(6) : 3;
    auto ir = heap_->Allocate(itxn_, cls, nslots);
    auto so = spec_->Allocate(stxn_, cls, nslots);
    ASSERT_TRUE(ir.ok() && so.ok()) << ir.status().ToString();
    vars_[next_var_++] = Var{*so, *ir};
    ++steps_;
  }

  void DoWriteScalar() {
    Var* v = RandomVar();
    if (v == nullptr) return;
    // Pick a slot; only proceed if it's a scalar slot on the spec side.
    const SpecObject* view = nullptr;
    {
      auto read0 = spec_->ReadSlot(stxn_, v->oid, 0);
      if (!read0.ok()) return;
      view = spec_->Committed(v->oid);  // may be null for fresh: fine
    }
    (void)view;
    const uint64_t value = rng_.Next();
    // Find the slot count via spec reads (slot 0 exists for all classes).
    uint64_t slot = rng_.Uniform(6);
    auto sres = spec_->ReadSlot(stxn_, v->oid, slot);
    if (!sres.ok()) return;  // out of range: skip
    // Scalar or pointer? mirror the registry.
    // (arrays: data=scalar everywhere, ptr=pointer everywhere)
    // We need the class; read it from the impl header via Debug.
    auto addr_or = heap_->DebugAddrOf(v->ref);
    ASSERT_TRUE(addr_or.ok()) << addr_or.status().ToString();
    const ObjectHeader hdr = DecodeHeader(*heap_->DebugReadWord(*addr_or));
    if (types_.IsPointerSlot(hdr.class_id, slot)) return;
    ASSERT_TRUE(heap_->WriteScalar(itxn_, v->ref, slot, value).ok());
    ASSERT_TRUE(spec_->WriteSlot(stxn_, v->oid, slot, value).ok());
    ++steps_;
  }

  void DoWriteRef() {
    Var* dst = RandomVar();
    Var* src = rng_.Bernoulli(0.15) ? nullptr : RandomVar();
    if (dst == nullptr) return;
    uint64_t slot = rng_.Uniform(6);
    auto sres = spec_->ReadSlot(stxn_, dst->oid, slot);
    if (!sres.ok()) return;
    auto addr_or = heap_->DebugAddrOf(dst->ref);
    ASSERT_TRUE(addr_or.ok()) << addr_or.status().ToString();
    const ObjectHeader hdr = DecodeHeader(*heap_->DebugReadWord(*addr_or));
    if (!types_.IsPointerSlot(hdr.class_id, slot)) return;
    ASSERT_TRUE(heap_->WriteRef(itxn_, dst->ref, slot,
                                src == nullptr ? kNullRef : src->ref)
                    .ok());
    ASSERT_TRUE(spec_->WriteSlot(stxn_, dst->oid, slot,
                                 src == nullptr ? spec::kNullOid : src->oid)
                    .ok());
    ++steps_;
  }

  void DoSetRoot() {
    Var* v = rng_.Bernoulli(0.2) ? nullptr : RandomVar();
    const uint64_t index = rng_.Uniform(opts_.root_slots);
    ASSERT_TRUE(
        heap_->SetRoot(itxn_, index, v == nullptr ? kNullRef : v->ref).ok());
    ASSERT_TRUE(spec_->SetRoot(stxn_, index,
                               v == nullptr ? spec::kNullOid : v->oid)
                    .ok());
    ++steps_;
  }

  void DoGetRoot() {
    const uint64_t index = rng_.Uniform(opts_.root_slots);
    auto ir = heap_->GetRoot(itxn_, index);
    auto so = spec_->GetRoot(stxn_, index);
    ASSERT_TRUE(ir.ok() && so.ok());
    ASSERT_EQ(*so == spec::kNullOid, *ir == kNullRef) << "root " << index;
    if (*ir != kNullRef) vars_[next_var_++] = Var{*so, *ir};
    ++steps_;
  }

  void DoReadAndCompare() {
    Var* v = RandomVar();
    if (v == nullptr) return;
    uint64_t slot = rng_.Uniform(6);
    auto sres = spec_->ReadSlot(stxn_, v->oid, slot);
    auto addr_or = heap_->DebugAddrOf(v->ref);
    ASSERT_TRUE(addr_or.ok()) << addr_or.status().ToString();
    const ObjectHeader hdr = DecodeHeader(*heap_->DebugReadWord(*addr_or));
    if (!sres.ok()) {
      // Out of range on the spec side must be out of range on ours too.
      ASSERT_GE(slot, hdr.nslots);
      return;
    }
    if (types_.IsPointerSlot(hdr.class_id, slot)) {
      auto child = heap_->ReadRef(itxn_, v->ref, slot);
      ASSERT_TRUE(child.ok());
      ASSERT_EQ(*sres == spec::kNullOid, *child == kNullRef);
      if (*child != kNullRef) vars_[next_var_++] = Var{*sres, *child};
    } else {
      auto value = heap_->ReadScalar(itxn_, v->ref, slot);
      ASSERT_TRUE(value.ok());
      ASSERT_EQ(*value, *sres) << "oid " << v->oid << " slot " << slot;
    }
    ++steps_;
  }

  void DoCommit() {
    ASSERT_TRUE(heap_->Commit(itxn_).ok());
    ASSERT_TRUE(spec_->Commit(stxn_).ok());
    txn_open_ = false;
    vars_.clear();
    ++steps_;
  }

  void DoAbort() {
    ASSERT_TRUE(heap_->Abort(itxn_).ok());
    ASSERT_TRUE(spec_->Abort(stxn_).ok());
    txn_open_ = false;
    vars_.clear();
    ++steps_;
  }

  void DoCrashRecoverCompare() {
    CrashOptions crash;
    crash.writeback_fraction = rng_.NextDouble();
    crash.seed = rng_.Next();
    crash.tear_tail_bytes = rng_.Bernoulli(0.5) ? rng_.Uniform(4000) : 0;
    ASSERT_TRUE(heap_->SimulateCrash(crash).ok());
    heap_.reset();
    auto reopened = StableHeap::Open(env_.get(), opts_);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    heap_ = std::move(*reopened);
    spec_->Crash(types_);
    CompareReachable();
    ++steps_;
  }

  StableHeapOptions opts_;
  Rng rng_;
  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<StableHeap> heap_;
  std::unique_ptr<SpecHeap> spec_;
  TypeRegistry types_;
  ClassId node_cls_ = 0;

  bool txn_open_ = false;
  TxnId itxn_ = 0;
  TxnId stxn_ = 0;
  std::map<uint64_t, Var> vars_;
  uint64_t next_var_ = 0;
  uint64_t steps_ = 0;
};

TEST_P(SpecConformanceTest, ImplementationRefinesSpecification) {
  Driver driver(GetParam());
  for (int i = 0; i < 900 && !::testing::Test::HasFatalFailure(); ++i) {
    driver.Step();
  }
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  driver.FinalCompare();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SpecConformanceTest,
    ::testing::Values(
        ConformanceConfig{1, true}, ConformanceConfig{2, true},
        ConformanceConfig{3, true}, ConformanceConfig{4, false},
        ConformanceConfig{5, false}, ConformanceConfig{1ull << 40, true},
        ConformanceConfig{11, true, PromotionMethod::kAtNextVolatileGc},
        ConformanceConfig{12, true, PromotionMethod::kAtNextVolatileGc},
        ConformanceConfig{13, true, PromotionMethod::kAtNextVolatileGc}),
    [](const ::testing::TestParamInfo<ConformanceConfig>& param_info) {
      return std::string(param_info.param.divided ? "Div" : "All") +
             (param_info.param.promotion == PromotionMethod::kAtNextVolatileGc
                  ? "M2"
                  : "") +
             "Seed" + std::to_string(param_info.param.seed & 0xffff);
    });

}  // namespace
}  // namespace sheap
