// Real-threads stress test of the action-interleaving concurrency model
// (paper §2.1): the stable heap's public methods are indivisible low-level
// actions; a runtime serializes them (here: one mutex) while threads
// preempt each other at arbitrary action boundaries. The interleavings are
// non-deterministic — unlike workload::Scheduler — which stresses lock
// retry/deadlock paths under real timing.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "core/stable_heap.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

class ThreadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<SimEnv>();
    StableHeapOptions opts;
    opts.stable_space_pages = 1024;
    opts.volatile_space_pages = 256;
    heap_ = std::move(*StableHeap::Open(env_.get(), opts));
  }

  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<StableHeap> heap_;
  Mutex action_mutex_;  // serializes low-level actions
};

TEST_F(ThreadsTest, ConcurrentTransfersPreserveTotal) {
  constexpr uint64_t kAccounts = 32;
  constexpr uint64_t kInitial = 1000;
  constexpr int kThreads = 4;
  constexpr int kTransfersPerThread = 60;

  {
    MutexLock lock(&action_mutex_);
    workload::Bank bank(heap_.get(), 0);
    ASSERT_TRUE(bank.Setup(kAccounts, kInitial).ok());
  }

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> retried{0};
  std::atomic<bool> failed{false};

  auto worker = [&](uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < kTransfersPerThread && !failed; ++i) {
      const uint64_t from = rng.Uniform(kAccounts);
      const uint64_t to = (from + 1 + rng.Uniform(kAccounts - 1)) % kAccounts;
      const uint64_t amount = 1 + rng.Uniform(20);

      // One transfer, action by action, retrying the whole transaction on
      // lock conflicts or deadlock victimhood.
      bool done = false;
      while (!done && !failed) {
        TxnId txn = kNoTxn;
        Status st;
        {
          MutexLock lock(&action_mutex_);
          auto t = heap_->Begin();
          if (!t.ok()) {
            failed = true;
            break;
          }
          txn = *t;
        }
        auto action = [&](auto fn) -> Status {
          MutexLock lock(&action_mutex_);
          return fn();
        };
        Ref fb = kNullRef, tb = kNullRef;
        uint64_t fbal = 0, tbal = 0;
        st = action([&] {
          auto dir = heap_->GetRoot(txn, 0);
          if (!dir.ok()) return dir.status();
          auto f = heap_->ReadRef(txn, *dir, from / 64);
          if (!f.ok()) return f.status();
          fb = *f;
          auto t2 = heap_->ReadRef(txn, *dir, to / 64);
          if (!t2.ok()) return t2.status();
          tb = *t2;
          return Status::OK();
        });
        if (st.ok()) {
          st = action([&] {
            auto v = heap_->ReadScalar(txn, fb, from % 64);
            if (!v.ok()) return v.status();
            fbal = *v;
            auto w = heap_->ReadScalar(txn, tb, to % 64);
            if (!w.ok()) return w.status();
            tbal = *w;
            return Status::OK();
          });
        }
        if (st.ok() && fbal >= amount) {
          st = action([&] {
            return heap_->WriteScalar(txn, fb, from % 64, fbal - amount);
          });
          if (st.ok()) {
            st = action([&] {
              return heap_->WriteScalar(txn, tb, to % 64, tbal + amount);
            });
          }
        }
        {
          MutexLock lock(&action_mutex_);
          if (st.ok()) {
            if (heap_->Commit(txn).ok()) {
              done = true;
              ++committed;
            }
          } else if (st.IsBusy() || st.IsDeadlock()) {
            // Retry path: best-effort rollback (audited discard).
            (void)heap_->Abort(txn);
            ++retried;
            std::this_thread::yield();
          } else {
            // The write's error is the failure we report; the rollback is
            // best-effort (audited discard).
            (void)heap_->Abort(txn);
            failed = true;
          }
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(worker, 1000 + i);
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed.load());
  EXPECT_EQ(committed.load(),
            static_cast<uint64_t>(kThreads) * kTransfersPerThread);

  MutexLock lock(&action_mutex_);
  workload::Bank bank(heap_.get(), 0);
  ASSERT_TRUE(bank.Attach().ok());
  EXPECT_EQ(*bank.TotalBalance(), kAccounts * kInitial);
}

TEST_F(ThreadsTest, CollectorInterleavesWithThreadedMutators) {
  auto cls_or = [&] {
    MutexLock lock(&action_mutex_);
    return workload::RegisterNodeClass(heap_.get(), 2);
  }();
  ASSERT_TRUE(cls_or.ok());
  const workload::NodeClass cls = *cls_or;

  {
    MutexLock lock(&action_mutex_);
    TxnId t = *heap_->Begin();
    Ref root = *workload::BuildTree(heap_.get(), t, cls, 4);
    ASSERT_TRUE(heap_->SetRoot(t, 0, root).ok());
    ASSERT_TRUE(heap_->Commit(t).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  // One thread drives the incremental collector; others traverse.
  std::thread collector([&] {
    for (int round = 0; round < 6 && !failed; ++round) {
      {
        MutexLock lock(&action_mutex_);
        if (!heap_->stable_gc()->collecting()) {
          if (!heap_->StartStableCollection().ok()) failed = true;
        }
      }
      while (!failed) {
        MutexLock lock(&action_mutex_);
        if (!heap_->stable_gc()->collecting()) break;
        if (!heap_->StepStableCollection(1).ok()) failed = true;
        std::this_thread::yield();
      }
    }
    stop = true;
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop && !failed) {
        MutexLock lock(&action_mutex_);
        TxnId t = *heap_->Begin();
        auto root = heap_->GetRoot(t, 0);
        if (root.ok() && *root != kNullRef) {
          auto count = workload::CountReachable(heap_.get(), t, *root);
          if (!count.ok() || *count != 31) failed = true;  // 1+2+4+8+16
        } else if (root.status().IsBusy()) {
          // fine: retry next round
        } else if (!root.ok()) {
          failed = true;
        }
        // Read-only txn: its commit outcome is irrelevant to the
        // reachability check above (audited discard).
        (void)heap_->Commit(t);
      }
    });
  }
  collector.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  MutexLock lock(&action_mutex_);
  EXPECT_GE(heap_->stable_gc_stats().collections_completed, 6u);
}

// The two tests below exercise the *internal* worker pools (redo
// partitions, flush writers) with real threads — the paths TSan must see
// clean: sharded BufferPool mutexes, the SimClock thread-charge scopes,
// the locked FaultInjector and SimDisk.

TEST(ThreadsRecoveryTest, ParallelRedoWorkersRecoverUnderRealThreads) {
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 128;
  opts.divided_heap = false;
  opts.recovery_threads = 4;

  auto env = std::make_unique<SimEnv>();
  auto heap = std::move(*StableHeap::Open(env.get(), opts));

  constexpr uint64_t kObjects = 48;
  const uint64_t slots = kPageSizeBytes / kWordSizeBytes - 1;
  ClassId big = *heap->RegisterClass(std::vector<bool>(slots, false));
  ClassId dir = *heap->RegisterClass(std::vector<bool>(kObjects, true));
  TxnId setup = *heap->Begin();
  Ref dref = *heap->AllocateStable(setup, dir, kObjects);
  ASSERT_TRUE(heap->SetRoot(setup, 0, dref).ok());
  for (uint64_t i = 0; i < kObjects; ++i) {
    Ref obj = *heap->AllocateStable(setup, big, slots);
    ASSERT_TRUE(heap->WriteRef(setup, dref, i, obj).ok());
  }
  ASSERT_TRUE(heap->Commit(setup).ok());
  ASSERT_TRUE(heap->WriteBackPages(1.0, 3).ok());
  ASSERT_TRUE(heap->Checkpoint().ok());

  TxnId txn = *heap->Begin();
  Ref d2 = *heap->GetRoot(txn, 0);
  for (uint64_t i = 0; i < kObjects; ++i) {
    Ref obj = *heap->ReadRef(txn, d2, i);
    ASSERT_TRUE(heap->WriteScalar(txn, obj, i % slots, i + 1).ok());
  }
  ASSERT_TRUE(heap->Commit(txn).ok());
  ASSERT_TRUE(heap->SimulateCrash(CrashOptions{0.3, 11, 64}).ok());
  heap.reset();

  // Reopen: redo fans out across 4 real worker threads.
  auto reopened = StableHeap::Open(env.get(), opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  heap = std::move(*reopened);
  EXPECT_EQ(heap->recovery_stats().redo_partitions, 4u);
  EXPECT_GT(heap->recovery_stats().redo_records_applied, 0u);

  // The recovered values are all visible.
  TxnId check = *heap->Begin();
  Ref d3 = *heap->GetRoot(check, 0);
  for (uint64_t i = 0; i < kObjects; ++i) {
    Ref obj = *heap->ReadRef(check, d3, i);
    auto v = heap->ReadScalar(check, obj, i % slots);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, i + 1) << "object " << i;
  }
  ASSERT_TRUE(heap->Commit(check).ok());
}

TEST(ThreadsRecoveryTest, ParallelFlushWritersUnderRealThreads) {
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 128;
  opts.divided_heap = false;
  opts.flush_writer_threads = 4;

  auto env = std::make_unique<SimEnv>();
  auto heap = std::move(*StableHeap::Open(env.get(), opts));

  constexpr uint64_t kObjects = 48;
  const uint64_t slots = kPageSizeBytes / kWordSizeBytes - 1;
  ClassId big = *heap->RegisterClass(std::vector<bool>(slots, false));
  ClassId dir = *heap->RegisterClass(std::vector<bool>(kObjects, true));
  TxnId setup = *heap->Begin();
  Ref dref = *heap->AllocateStable(setup, dir, kObjects);
  ASSERT_TRUE(heap->SetRoot(setup, 0, dref).ok());
  for (uint64_t i = 0; i < kObjects; ++i) {
    Ref obj = *heap->AllocateStable(setup, big, slots);
    ASSERT_TRUE(heap->WriteRef(setup, dref, i, obj).ok());
  }
  ASSERT_TRUE(heap->Commit(setup).ok());

  // Flush checkpoint: dirty pages coalesce into adjacent runs written by
  // 4 real writer threads.
  ASSERT_TRUE(heap->CheckpointWithWriteback().ok());
  EXPECT_EQ(heap->pool()->DirtyCount(), 0u);
  EXPECT_GT(heap->stats().pool.flush_runs, 0u);
  EXPECT_EQ(heap->checkpoint_stats().flush_checkpoints_taken, 1u);

  // Nothing to redo after a crash with no surviving writeback: the flush
  // already made the disk current.
  ASSERT_TRUE(heap->SimulateCrash(CrashOptions{0.0, 7, 0}).ok());
  heap.reset();
  auto reopened = StableHeap::Open(env.get(), opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  heap = std::move(*reopened);
  EXPECT_EQ(heap->recovery_stats().redo_records_applied, 0u);

  TxnId check = *heap->Begin();
  Ref d3 = *heap->GetRoot(check, 0);
  for (uint64_t i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(heap->ReadRef(check, d3, i).ok());
  }
  ASSERT_TRUE(heap->Commit(check).ok());
}

}  // namespace
}  // namespace sheap
