// Garbage collection tests: stop-the-world and incremental atomic
// collection of the stable area, the Ellis read barrier, Baker mode,
// volatile-area collection, preservation of sharing and cycles, garbage
// reclamation, undo-root handling at flips, and lock rekeying.

#include <gtest/gtest.h>

#include <memory>

#include "core/stable_heap.h"
#include "workload/graph_gen.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

using workload::BuildList;
using workload::BuildRandomGraph;
using workload::BuildTree;
using workload::CountReachable;
using workload::GraphChecksum;
using workload::NodeClass;
using workload::RegisterNodeClass;

struct GcTestConfig {
  bool divided;
  bool incremental;
  GcBarrierMode barrier;
  std::string name;
};

class GcTest : public ::testing::TestWithParam<GcTestConfig> {
 protected:
  void SetUp() override {
    env_ = std::make_unique<SimEnv>();
    StableHeapOptions opts;
    opts.stable_space_pages = 128;
    opts.volatile_space_pages = 128;
    opts.divided_heap = GetParam().divided;
    opts.incremental_gc = GetParam().incremental;
    opts.barrier_mode = GetParam().barrier;
    auto heap = StableHeap::Open(env_.get(), opts);
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    heap_ = std::move(*heap);
    auto cls = RegisterNodeClass(heap_.get(), 3);
    ASSERT_TRUE(cls.ok());
    cls_ = *cls;
  }

  /// Commit a tree under root `index` and return its checksum.
  uint64_t PlantTree(uint64_t index, uint64_t depth) {
    auto txn = heap_->Begin();
    SHEAP_CHECK_OK(txn.status());
    auto root = BuildTree(heap_.get(), *txn, cls_, depth);
    SHEAP_CHECK_OK(root.status());
    SHEAP_CHECK_OK(heap_->SetRoot(*txn, index, *root));
    SHEAP_CHECK_OK(heap_->Commit(*txn));
    return ChecksumOf(index);
  }

  uint64_t ChecksumOf(uint64_t index) {
    auto txn = heap_->Begin();
    SHEAP_CHECK_OK(txn.status());
    auto root = heap_->GetRoot(*txn, index);
    SHEAP_CHECK_OK(root.status());
    auto sum = GraphChecksum(heap_.get(), *txn, *root);
    SHEAP_CHECK_OK(sum.status());
    SHEAP_CHECK_OK(heap_->Commit(*txn));
    return *sum;
  }

  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<StableHeap> heap_;
  NodeClass cls_;
};

INSTANTIATE_TEST_SUITE_P(
    Modes, GcTest,
    ::testing::Values(
        GcTestConfig{false, false, GcBarrierMode::kPageProtection,
                     "AllStableStw"},
        GcTestConfig{false, true, GcBarrierMode::kPageProtection,
                     "AllStableIncremental"},
        GcTestConfig{false, true, GcBarrierMode::kPerAccess,
                     "AllStableBaker"},
        GcTestConfig{true, true, GcBarrierMode::kPageProtection,
                     "DividedIncremental"}),
    [](const ::testing::TestParamInfo<GcTestConfig>& param_info) {
      return param_info.param.name;
    });

TEST_P(GcTest, FullCollectionPreservesCommittedGraph) {
  const uint64_t before = PlantTree(0, 4);
  ASSERT_TRUE(heap_->CollectStableFully().ok());
  EXPECT_EQ(ChecksumOf(0), before);
  EXPECT_EQ(heap_->stable_gc_stats().collections_completed, 1u);
}

TEST_P(GcTest, SharingPreservedAcrossCollection) {
  // Two roots share one subtree (Figure 3.1's diamond).
  auto txn = heap_->Begin();
  ASSERT_TRUE(txn.ok());
  auto shared = BuildTree(heap_.get(), *txn, cls_, 2);
  auto a = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  auto b = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(shared.ok() && a.ok() && b.ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *a, 1, *shared).ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *b, 1, *shared).ok());
  ASSERT_TRUE(heap_->SetRoot(*txn, 0, *a).ok());
  ASSERT_TRUE(heap_->SetRoot(*txn, 1, *b).ok());
  ASSERT_TRUE(heap_->Commit(*txn).ok());

  ASSERT_TRUE(heap_->CollectStableFully().ok());

  // Mutating the shared subtree through root 0 must be visible via root 1.
  auto t2 = heap_->Begin();
  auto ra = heap_->GetRoot(*t2, 0);
  auto rb = heap_->GetRoot(*t2, 1);
  ASSERT_TRUE(ra.ok() && rb.ok());
  auto sa = heap_->ReadRef(*t2, *ra, 1);
  auto sb = heap_->ReadRef(*t2, *rb, 1);
  ASSERT_TRUE(sa.ok() && sb.ok());
  ASSERT_TRUE(heap_->WriteScalar(*t2, *sa, 0, 424242).ok());
  EXPECT_EQ(*heap_->ReadScalar(*t2, *sb, 0), 424242u);
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(GcTest, CyclesSurviveCollection) {
  auto txn = heap_->Begin();
  ASSERT_TRUE(txn.ok());
  auto a = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  auto b = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *a, 1, *b).ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *b, 1, *a).ok());  // cycle
  ASSERT_TRUE(heap_->WriteScalar(*txn, *a, 0, 1).ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *b, 0, 2).ok());
  ASSERT_TRUE(heap_->SetRoot(*txn, 0, *a).ok());
  ASSERT_TRUE(heap_->Commit(*txn).ok());
  const uint64_t before = ChecksumOf(0);

  ASSERT_TRUE(heap_->CollectStableFully().ok());
  EXPECT_EQ(ChecksumOf(0), before);

  auto t2 = heap_->Begin();
  auto root = heap_->GetRoot(*t2, 0);
  auto next = heap_->ReadRef(*t2, *root, 1);
  auto back = heap_->ReadRef(*t2, *next, 1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*heap_->ReadScalar(*t2, *back, 0), 1u);  // back to a
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(GcTest, GarbageIsReclaimed) {
  PlantTree(0, 5);
  // Drop the tree: root 0 = null.
  auto txn = heap_->Begin();
  ASSERT_TRUE(heap_->SetRoot(*txn, 0, kNullRef).ok());
  ASSERT_TRUE(heap_->Commit(*txn).ok());
  const uint64_t free_before = heap_->stable_gc()->free_bytes();
  ASSERT_TRUE(heap_->CollectStableFully().ok());
  // Nothing live except the root array: almost everything is reclaimed.
  EXPECT_GT(heap_->stable_gc()->free_bytes(), free_before);
  EXPECT_LT(heap_->stable_gc_stats().objects_copied,
            10u);  // root array + a few promoted stragglers at most
}

TEST_P(GcTest, IncrementalCollectionInterleavesWithMutator) {
  if (!GetParam().incremental) GTEST_SKIP();
  const uint64_t before = PlantTree(0, 5);
  ASSERT_TRUE(heap_->StartStableCollection().ok());
  EXPECT_TRUE(heap_->stable_gc()->collecting());

  // Mutator works while the collection is in progress: reads traverse the
  // whole graph (forcing barrier traps / translations), writes mutate it.
  auto txn = heap_->Begin();
  auto root = heap_->GetRoot(*txn, 0);
  ASSERT_TRUE(root.ok());
  auto sum = GraphChecksum(heap_.get(), *txn, *root);
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, before);
  ASSERT_TRUE(heap_->Commit(*txn).ok());

  // Drive the collection to completion.
  while (heap_->stable_gc()->collecting()) {
    ASSERT_TRUE(heap_->StepStableCollection(4).ok());
  }
  EXPECT_EQ(ChecksumOf(0), before);
  EXPECT_EQ(heap_->stable_gc_stats().collections_completed, 1u);
}

TEST_P(GcTest, ReadBarrierFiresDuringCollection) {
  if (!GetParam().incremental) GTEST_SKIP();
  PlantTree(0, 5);
  ASSERT_TRUE(heap_->StartStableCollection().ok());
  ChecksumOf(0);  // full traversal mid-collection
  EXPECT_GT(heap_->stable_gc_stats().read_barrier_traps, 0u);
  ASSERT_TRUE(heap_->CollectStableFully().ok());
}

TEST_P(GcTest, UncommittedUpdatesSurviveFlip) {
  // A transaction's uncommitted writes and its undo information must both
  // survive a flip in the middle of the transaction (§4.2.1).
  auto setup = heap_->Begin();
  auto obj = heap_->Allocate(*setup, cls_.id, cls_.nslots);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(heap_->WriteScalar(*setup, *obj, 0, 111).ok());
  ASSERT_TRUE(heap_->SetRoot(*setup, 0, *obj).ok());
  ASSERT_TRUE(heap_->Commit(*setup).ok());

  auto txn = heap_->Begin();
  auto root = heap_->GetRoot(*txn, 0);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *root, 0, 222).ok());

  ASSERT_TRUE(heap_->CollectStableFully().ok());  // flip mid-transaction

  // The uncommitted value is visible through the moved object...
  EXPECT_EQ(*heap_->ReadScalar(*txn, *root, 0), 222u);
  // ...and abort still restores the committed value at the new address.
  ASSERT_TRUE(heap_->Abort(*txn).ok());
  auto t2 = heap_->Begin();
  auto r2 = heap_->GetRoot(*t2, 0);
  EXPECT_EQ(*heap_->ReadScalar(*t2, *r2, 0), 111u);
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(GcTest, AbortAfterTwoFlipsRestoresOldValues) {
  auto setup = heap_->Begin();
  auto obj = heap_->Allocate(*setup, cls_.id, cls_.nslots);
  ASSERT_TRUE(heap_->WriteScalar(*setup, *obj, 0, 5).ok());
  ASSERT_TRUE(heap_->SetRoot(*setup, 0, *obj).ok());
  ASSERT_TRUE(heap_->Commit(*setup).ok());

  auto txn = heap_->Begin();
  auto root = heap_->GetRoot(*txn, 0);
  ASSERT_TRUE(heap_->WriteScalar(*txn, *root, 0, 6).ok());
  ASSERT_TRUE(heap_->CollectStableFully().ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *root, 0, 7).ok());
  ASSERT_TRUE(heap_->CollectStableFully().ok());
  ASSERT_TRUE(heap_->Abort(*txn).ok());

  auto t2 = heap_->Begin();
  auto r2 = heap_->GetRoot(*t2, 0);
  EXPECT_EQ(*heap_->ReadScalar(*t2, *r2, 0), 5u);
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(GcTest, OldPointerValuesAreUndoRoots) {
  // txn overwrites a pointer; the old target is reachable only from the
  // undo information. A flip must keep it alive and abort must restore a
  // valid reference to it (§3.5.2).
  auto setup = heap_->Begin();
  auto holder = heap_->Allocate(*setup, cls_.id, cls_.nslots);
  auto old_target = heap_->Allocate(*setup, cls_.id, cls_.nslots);
  ASSERT_TRUE(holder.ok() && old_target.ok());
  ASSERT_TRUE(heap_->WriteScalar(*setup, *old_target, 0, 777).ok());
  ASSERT_TRUE(heap_->WriteRef(*setup, *holder, 1, *old_target).ok());
  ASSERT_TRUE(heap_->SetRoot(*setup, 0, *holder).ok());
  ASSERT_TRUE(heap_->Commit(*setup).ok());

  auto txn = heap_->Begin();
  auto root = heap_->GetRoot(*txn, 0);
  auto replacement = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(replacement.ok());
  // After this write, old_target is unreachable from the heap.
  ASSERT_TRUE(heap_->WriteRef(*txn, *root, 1, *replacement).ok());

  ASSERT_TRUE(heap_->CollectStableFully().ok());
  ASSERT_TRUE(heap_->Abort(*txn).ok());

  auto t2 = heap_->Begin();
  auto r2 = heap_->GetRoot(*t2, 0);
  auto restored = heap_->ReadRef(*t2, *r2, 1);
  ASSERT_TRUE(restored.ok());
  ASSERT_NE(*restored, kNullRef);
  EXPECT_EQ(*heap_->ReadScalar(*t2, *restored, 0), 777u);
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(GcTest, LocksFollowMovedObjects) {
  auto setup = heap_->Begin();
  auto obj = heap_->Allocate(*setup, cls_.id, cls_.nslots);
  ASSERT_TRUE(heap_->SetRoot(*setup, 0, *obj).ok());
  ASSERT_TRUE(heap_->Commit(*setup).ok());

  auto t1 = heap_->Begin();
  auto r1 = heap_->GetRoot(*t1, 0);
  ASSERT_TRUE(heap_->WriteScalar(*t1, *r1, 0, 1).ok());  // t1 write-locks

  ASSERT_TRUE(heap_->CollectStableFully().ok());  // object moves

  auto t2 = heap_->Begin();
  auto r2 = heap_->GetRoot(*t2, 0);
  // The lock moved with the object: t2 still conflicts.
  EXPECT_TRUE(heap_->WriteScalar(*t2, *r2, 0, 2).IsBusy());
  ASSERT_TRUE(heap_->Commit(*t1).ok());
  EXPECT_TRUE(heap_->WriteScalar(*t2, *r2, 0, 2).ok());
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(GcTest, BackToBackCollections) {
  const uint64_t before = PlantTree(0, 4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(heap_->CollectStableFully().ok());
    EXPECT_EQ(ChecksumOf(0), before);
  }
  EXPECT_EQ(heap_->stable_gc_stats().collections_completed, 4u);
}

TEST_P(GcTest, AutoCollectionTriggersOnExhaustion) {
  // Keep planting and dropping trees in all-stable mode (or churning the
  // volatile area in divided mode) until collections must happen.
  // Each round allocates ~4000 words; the 128-page (64k-word) semispaces
  // must be recycled several times over the 40 rounds.
  for (int round = 0; round < 40; ++round) {
    auto txn = heap_->Begin();
    ASSERT_TRUE(txn.ok());
    auto list = BuildList(heap_.get(), *txn, cls_, 1000);
    ASSERT_TRUE(list.ok()) << list.status().ToString();
    ASSERT_TRUE(heap_->SetRoot(*txn, 3, *list).ok());
    ASSERT_TRUE(heap_->Commit(*txn).ok());
  }
  if (GetParam().divided) {
    EXPECT_GT(heap_->volatile_gc_stats().collections_completed, 0u);
  } else {
    EXPECT_GT(heap_->stable_gc_stats().collections_completed, 0u);
  }
  // The latest list is intact.
  auto txn = heap_->Begin();
  auto root = heap_->GetRoot(*txn, 3);
  auto count = CountReachable(heap_.get(), *txn, *root);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1000u);
  ASSERT_TRUE(heap_->Commit(*txn).ok());
}

TEST_P(GcTest, EllisTrapsAtMostOncePerPage) {
  if (GetParam().barrier != GcBarrierMode::kPageProtection ||
      !GetParam().incremental) {
    GTEST_SKIP();
  }
  PlantTree(0, 6);
  ASSERT_TRUE(heap_->StartStableCollection().ok());
  ChecksumOf(0);
  ChecksumOf(0);  // second traversal: everything already scanned
  const uint64_t traps = heap_->stable_gc_stats().read_barrier_traps;
  const uint64_t pages = heap_->stable_gc_stats().pages_scanned;
  EXPECT_LE(traps, pages + 1);
  ASSERT_TRUE(heap_->CollectStableFully().ok());
}

TEST_P(GcTest, ScanCursorWorkStaysLinear) {
  if (!GetParam().incremental) GTEST_SKIP();
  PlantTree(0, 6);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(heap_->CollectStableFully().ok());
  }
  const GcStats& st = heap_->stable_gc_stats();
  // The monotone scan cursor replaced a from-zero bitmap walk that made
  // finding the next unscanned page O(pages) per query — O(pages^2) per
  // collection. scan_cursor_steps counts bitmap words examined; with the
  // cursor it telescopes to roughly one word per claimed page plus one
  // probe per query, i.e. linear in pages scanned across the whole run.
  EXPECT_GT(st.scan_cursor_steps, 0u);
  EXPECT_LE(st.scan_cursor_steps,
            2 * st.pages_scanned + 16 * st.collections_started + 64);
}

class VolatileGcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<SimEnv>();
    StableHeapOptions opts;
    opts.stable_space_pages = 128;
    opts.volatile_space_pages = 64;
    opts.divided_heap = true;
    auto heap = StableHeap::Open(env_.get(), opts);
    ASSERT_TRUE(heap.ok());
    heap_ = std::move(*heap);
    auto cls = RegisterNodeClass(heap_.get(), 2);
    ASSERT_TRUE(cls.ok());
    cls_ = *cls;
  }

  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<StableHeap> heap_;
  NodeClass cls_;
};

TEST_F(VolatileGcTest, VolatileCollectionIsUnlogged) {
  auto txn = heap_->Begin();
  auto list = BuildList(heap_.get(), *txn, cls_, 50);
  ASSERT_TRUE(list.ok());
  const uint64_t log_bytes = heap_->log_volume().TotalBytes();
  ASSERT_TRUE(heap_->CollectVolatile().ok());
  // Only the volatile-flip + space records hit the log; no copy/scan data.
  EXPECT_EQ(heap_->log_volume().For(RecordType::kGcCopy).records, 0u);
  EXPECT_LT(heap_->log_volume().TotalBytes() - log_bytes, 200u);
  // The uncommitted list survives via the transaction's handle.
  auto count = CountReachable(heap_.get(), *txn, *list);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 50u);
  ASSERT_TRUE(heap_->Commit(*txn).ok());
}

TEST_F(VolatileGcTest, UncommittedStableSlotKeepsVolatileTargetAlive) {
  // A stable slot holds an uncommitted pointer to a volatile object; the
  // volatile collection must trace it through the remembered set and
  // rewrite the (logged) stable slot.
  auto setup = heap_->Begin();
  auto stable_obj = heap_->AllocateStable(*setup, cls_.id, cls_.nslots);
  ASSERT_TRUE(stable_obj.ok());
  ASSERT_TRUE(heap_->SetRoot(*setup, 0, *stable_obj).ok());
  ASSERT_TRUE(heap_->Commit(*setup).ok());

  auto txn = heap_->Begin();
  auto root = heap_->GetRoot(*txn, 0);
  auto vol = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(vol.ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *vol, 0, 987).ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *root, 1, *vol).ok());
  EXPECT_EQ(heap_->remembered()->size(), 1u);

  ASSERT_TRUE(heap_->CollectVolatile().ok());

  auto moved = heap_->ReadRef(*txn, *root, 1);
  ASSERT_TRUE(moved.ok());
  ASSERT_NE(*moved, kNullRef);
  EXPECT_EQ(*heap_->ReadScalar(*txn, *moved, 0), 987u);
  ASSERT_TRUE(heap_->Commit(*txn).ok());
}

TEST_F(VolatileGcTest, VolatileUndoInfoSurvivesCollection) {
  auto txn = heap_->Begin();
  auto vol = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(vol.ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *vol, 0, 1).ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *vol, 0, 2).ok());
  ASSERT_TRUE(heap_->CollectVolatile().ok());
  // Abort after the object moved: the in-memory undo info was rewritten.
  ASSERT_TRUE(heap_->Abort(*txn).ok());
  // (The object is garbage now; the test passes if abort didn't corrupt
  // anything — a follow-up collection still works.)
  ASSERT_TRUE(heap_->CollectVolatile().ok());
}

TEST_F(VolatileGcTest, StableCollectionScansVolatileAreaAsRoots) {
  // A volatile object points to a stable object that is otherwise garbage;
  // the stable collection must keep the stable target alive (§5.4).
  auto txn = heap_->Begin();
  auto stable_obj = heap_->AllocateStable(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(stable_obj.ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *stable_obj, 0, 4242).ok());
  auto vol = heap_->Allocate(*txn, cls_.id, cls_.nslots);
  ASSERT_TRUE(vol.ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *vol, 1, *stable_obj).ok());
  ASSERT_TRUE(heap_->ReleaseRef(*txn, *stable_obj).ok());

  ASSERT_TRUE(heap_->CollectStableFully().ok());

  auto back = heap_->ReadRef(*txn, *vol, 1);
  ASSERT_TRUE(back.ok());
  ASSERT_NE(*back, kNullRef);
  EXPECT_EQ(*heap_->ReadScalar(*txn, *back, 0), 4242u);
  ASSERT_TRUE(heap_->Commit(*txn).ok());
}

}  // namespace
}  // namespace sheap
