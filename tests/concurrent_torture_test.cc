// Concurrent-mutator torture (DESIGN.md §5i): real OS threads drive
// transactions through one StableHeap with mutator_threads > 1, racing an
// in-flight incremental collection, lock conflicts on shared objects, and
// an injected crash mid-run. The concurrency contract is serializability
// plus invariants — not byte determinism — so these tests assert
// conservation, atomicity, and reachability after the dust settles:
//   * a Begin storm allocates globally unique transaction ids,
//   * randomized transfers (private + contended shared arrays) conserve
//     every balance while thread 0 steps a stable collection,
//   * a crash at a random concurrent commit recovers to a state where
//     every transfer was all-or-nothing.
// This binary also runs under ThreadSanitizer in CI (the tsan job), which
// is the real referee for the gate/queue/barrier memory orderings.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/stable_heap.h"
#include "workload/graph_gen.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

constexpr uint64_t kAccounts = 32;
constexpr uint64_t kInitBalance = 100;

StableHeapOptions ConcurrentOptions(uint32_t threads) {
  StableHeapOptions opts;
  opts.stable_space_pages = 512;
  opts.volatile_space_pages = 128;
  opts.divided_heap = false;
  opts.mutator_threads = threads;
  opts.group_commit = true;
  opts.group_commit_options.max_batch = 8;
  opts.group_commit_options.close_after_polls = 4;
  return opts;
}

/// Commit with the group-commit Busy retry protocol; returns the first
/// non-Busy status (OK, Crashed, ...).
Status CommitRetry(StableHeap* heap, TxnId txn) {
  for (;;) {
    Status st = heap->Commit(txn);
    if (!st.IsBusy()) return st;
  }
}

TEST(ConcurrentTortureTest, BeginStormAllocatesUniqueIds) {
  constexpr uint32_t kThreads = 8;
  constexpr uint32_t kBeginsPerThread = 256;
  auto env = std::make_unique<SimEnv>();
  auto heap_or = StableHeap::Open(env.get(), ConcurrentOptions(kThreads));
  ASSERT_TRUE(heap_or.ok()) << heap_or.status().ToString();
  std::unique_ptr<StableHeap> heap = std::move(*heap_or);

  std::vector<std::vector<TxnId>> ids(kThreads);
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      ids[t].reserve(kBeginsPerThread);
      for (uint32_t i = 0; i < kBeginsPerThread; ++i) {
        auto txn = heap->Begin();
        ASSERT_TRUE(txn.ok()) << txn.status().ToString();
        ids[t].push_back(*txn);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Globally unique ids, and every one of them is a live, abortable
  // transaction (i.e. it landed in the manager, not just in a counter).
  std::set<TxnId> unique;
  for (const auto& v : ids) unique.insert(v.begin(), v.end());
  EXPECT_EQ(unique.size(), kThreads * kBeginsPerThread);
  for (const auto& v : ids) {
    for (TxnId id : v) {
      EXPECT_TRUE(heap->Abort(id).ok());
    }
  }
}

class TortureRig {
 public:
  /// Worker-side operation wrapper: Busy lock conflicts retry the op after
  /// a yield, Deadlock/Aborted abort the whole transaction (caller retries
  /// it), Crashed stops the worker.
  enum class Outcome { kOk, kRetryTxn, kStop };

  static Outcome Classify(StableHeap* heap, TxnId txn, const Status& st,
                          std::atomic<uint64_t>* deadlocks) {
    if (st.ok()) return Outcome::kOk;
    if (st.IsCrashed()) return Outcome::kStop;
    if (st.IsDeadlock() || st.IsAborted()) {
      if (st.IsDeadlock()) deadlocks->fetch_add(1, std::memory_order_relaxed);
      Status abort_st = heap->Abort(txn);
      (void)abort_st;  // Crashed/Aborted here is fine; the txn is dead
      return Outcome::kRetryTxn;
    }
    ADD_FAILURE() << "unexpected status: " << st.ToString();
    return Outcome::kStop;
  }
};

/// Retry `op` through Busy conflicts. Returns kOk/kRetryTxn/kStop.
template <typename Op>
TortureRig::Outcome RunOp(StableHeap* heap, TxnId txn, Op op,
                          std::atomic<uint64_t>* deadlocks) {
  for (;;) {
    Status st = op();
    if (st.IsBusy()) {
      std::this_thread::yield();
      continue;
    }
    return TortureRig::Classify(heap, txn, st, deadlocks);
  }
}

struct Lcg {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

TEST(ConcurrentTortureTest, TransfersVsConcurrentGcConserveEveryBalance) {
  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kTxnsPerThread = 120;
  constexpr uint32_t kSharedArrays = 2;  // contended: roots kThreads..+1
  auto env = std::make_unique<SimEnv>();
  auto heap_or = StableHeap::Open(env.get(), ConcurrentOptions(kThreads));
  ASSERT_TRUE(heap_or.ok()) << heap_or.status().ToString();
  std::unique_ptr<StableHeap> heap = std::move(*heap_or);

  auto cls_or = heap->RegisterClass(std::vector<bool>(kAccounts, false));
  ASSERT_TRUE(cls_or.ok());
  const ClassId cls = *cls_or;
  auto plant_array = [&](uint64_t root) {
    auto txn = heap->Begin();
    ASSERT_TRUE(txn.ok());
    auto arr = heap->Allocate(*txn, cls, kAccounts);
    ASSERT_TRUE(arr.ok());
    for (uint64_t a = 0; a < kAccounts; ++a) {
      ASSERT_TRUE(heap->WriteScalar(*txn, *arr, a, kInitBalance).ok());
    }
    ASSERT_TRUE(heap->SetRoot(*txn, root, *arr).ok());
    ASSERT_TRUE(CommitRetry(heap.get(), *txn).ok());
  };
  for (uint32_t t = 0; t < kThreads + kSharedArrays; ++t) plant_array(t);
  // Live list data so the collection has real copy/scan work.
  auto node_cls = workload::RegisterNodeClass(heap.get(), 2);
  ASSERT_TRUE(node_cls.ok());
  for (uint32_t l = 0; l < 4; ++l) {
    auto txn = heap->Begin();
    ASSERT_TRUE(txn.ok());
    auto head = workload::BuildList(heap.get(), *txn, *node_cls, 64);
    ASSERT_TRUE(head.ok());
    ASSERT_TRUE(heap->SetRoot(*txn, 16 + l, *head).ok());
    ASSERT_TRUE(CommitRetry(heap.get(), *txn).ok());
  }
  ASSERT_TRUE(heap->StartStableCollection().ok());

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> deadlocks{0};
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      Lcg rng{4242 + t * 7919ull};
      for (uint32_t i = 0; i < kTxnsPerThread; ++i) {
        // Every third transaction transfers between the two shared arrays
        // in random order (lock conflicts + upgrade deadlocks); the rest
        // stay on this thread's private array.
        const bool shared = i % 3 == 2;
        // Retry until the transfer commits: liveness is the scheduler's
        // business (under TSan a thread can lose dozens of deadlock races
        // in a row), conservation is ours. Victims back off so a deadlock
        // storm between the shared arrays cannot spin forever.
        bool done = false;
        for (uint32_t attempt = 0; !done; ++attempt) {
          if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(50 * std::min<uint32_t>(attempt, 8)));
          }
          auto txn_or = heap->Begin();
          if (!txn_or.ok()) return;  // crashed
          const TxnId txn = *txn_or;
          uint64_t r1 = t, r2 = t;
          if (shared) {
            r1 = kThreads + rng.Next() % kSharedArrays;
            r2 = kThreads + rng.Next() % kSharedArrays;
          }
          const uint64_t from = rng.Next() % kAccounts;
          const uint64_t to = rng.Next() % kAccounts;
          Ref a1 = kNullRef, a2 = kNullRef;
          uint64_t fbal = 0, tbal = 0;
          auto body = [&]() -> TortureRig::Outcome {
            auto step = [&](auto op) {
              return RunOp(heap.get(), txn, op, &deadlocks);
            };
            TortureRig::Outcome o;
            o = step([&]() -> Status {
              auto r = heap->GetRoot(txn, r1);
              if (r.ok()) a1 = *r;
              return r.status();
            });
            if (o != TortureRig::Outcome::kOk) return o;
            o = step([&]() -> Status {
              auto r = heap->GetRoot(txn, r2);
              if (r.ok()) a2 = *r;
              return r.status();
            });
            if (o != TortureRig::Outcome::kOk) return o;
            o = step([&]() -> Status {
              auto r = heap->ReadScalar(txn, a1, from);
              if (r.ok()) fbal = *r;
              return r.status();
            });
            if (o != TortureRig::Outcome::kOk) return o;
            o = step([&]() -> Status {
              auto r = heap->ReadScalar(txn, a2, to);
              if (r.ok()) tbal = *r;
              return r.status();
            });
            if (o != TortureRig::Outcome::kOk) return o;
            // Same underlying slot iff same root AND same index: two
            // GetRoot calls can hand back distinct handles for one object,
            // so comparing a1 == a2 would miss the aliasing.
            if (r1 == r2 && from == to) {
              return step([&]() { return heap->WriteScalar(txn, a1, from,
                                                           fbal); });
            }
            o = step([&]() {
              return heap->WriteScalar(txn, a1, from, fbal - 1);
            });
            if (o != TortureRig::Outcome::kOk) return o;
            return step([&]() {
              return heap->WriteScalar(txn, a2, to, tbal + 1);
            });
          };
          TortureRig::Outcome o = body();
          if (o == TortureRig::Outcome::kStop) return;
          if (o == TortureRig::Outcome::kRetryTxn) continue;
          Status st = CommitRetry(heap.get(), txn);
          if (st.ok()) {
            committed.fetch_add(1, std::memory_order_relaxed);
            done = true;
          } else if (st.IsCrashed()) {
            return;
          } else {
            // Commit-side abort (e.g. deadlock during promotion): retry.
            continue;
          }
        }
        if (t == 0 && i % 8 == 7) {
          ASSERT_TRUE(heap->StepStableCollection(2).ok());
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(committed.load(), kThreads * kTxnsPerThread);
  EXPECT_GT(heap->gate_stats().handshakes, 0u);

  // Full-heap invariants, twice: as-left by the race, and again after the
  // collection finishes (objects moved, from-space freed).
  auto audit = [&]() {
    uint64_t total = 0;
    auto txn = heap->Begin();
    ASSERT_TRUE(txn.ok());
    for (uint32_t r = 0; r < kThreads + kSharedArrays; ++r) {
      auto arr = heap->GetRoot(*txn, r);
      ASSERT_TRUE(arr.ok()) << arr.status().ToString();
      for (uint64_t a = 0; a < kAccounts; ++a) {
        auto bal = heap->ReadScalar(*txn, *arr, a);
        ASSERT_TRUE(bal.ok()) << bal.status().ToString();
        total += *bal;
      }
    }
    // The planted lists are still fully reachable.
    for (uint32_t l = 0; l < 4; ++l) {
      auto head = heap->GetRoot(*txn, 16 + l);
      ASSERT_TRUE(head.ok());
      Ref node = *head;
      uint32_t len = 0;
      while (node != kNullRef && len <= 64) {
        auto next = heap->ReadRef(*txn, node, 1);
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        node = *next;
        ++len;
      }
      EXPECT_EQ(len, 64u);
    }
    ASSERT_TRUE(CommitRetry(heap.get(), *txn).ok());
    EXPECT_EQ(total,
              (kThreads + kSharedArrays) * kAccounts * kInitBalance);
  };
  audit();
  ASSERT_TRUE(heap->CollectStableFully().ok());
  audit();
}

#if SHEAP_FAULT_INJECTION
TEST(ConcurrentTortureTest, CrashAtRandomConcurrentCommitRecoversAtomically) {
  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kTxnsPerThread = 100;
  auto env = std::make_unique<SimEnv>();
  auto heap_or = StableHeap::Open(env.get(), ConcurrentOptions(kThreads));
  ASSERT_TRUE(heap_or.ok());
  std::unique_ptr<StableHeap> heap = std::move(*heap_or);

  auto cls_or = heap->RegisterClass(std::vector<bool>(kAccounts, false));
  ASSERT_TRUE(cls_or.ok());
  for (uint32_t t = 0; t < kThreads; ++t) {
    auto txn = heap->Begin();
    ASSERT_TRUE(txn.ok());
    auto arr = heap->Allocate(*txn, *cls_or, kAccounts);
    ASSERT_TRUE(arr.ok());
    for (uint64_t a = 0; a < kAccounts; ++a) {
      ASSERT_TRUE(heap->WriteScalar(*txn, *arr, a, kInitBalance).ok());
    }
    ASSERT_TRUE(heap->SetRoot(*txn, t, *arr).ok());
    ASSERT_TRUE(CommitRetry(heap.get(), *txn).ok());
  }

  // Crash at a "random" (fixed-seed) dynamic hit of the concurrent commit
  // fast path, somewhere in the middle of the run.
  FaultSpec crash;
  crash.point = "txn.mtcommit.logged";
  crash.kind = FaultKind::kCrash;
  crash.hit = 37;
  crash.tear_tail_bytes = 1500;
  env->faults()->Arm(crash);

  std::atomic<uint64_t> deadlocks{0};
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      Lcg rng{1000 + t * 31ull};
      for (uint32_t i = 0; i < kTxnsPerThread; ++i) {
        auto txn_or = heap->Begin();
        if (!txn_or.ok()) return;
        const TxnId txn = *txn_or;
        const uint64_t from = rng.Next() % kAccounts;
        const uint64_t to = rng.Next() % kAccounts;
        Ref arr = kNullRef;
        uint64_t fbal = 0, tbal = 0;
        auto get = [&]() -> Status {
          auto r = heap->GetRoot(txn, t);
          if (r.ok()) arr = *r;
          return r.status();
        };
        if (RunOp(heap.get(), txn, get, &deadlocks) !=
            TortureRig::Outcome::kOk) {
          return;
        }
        auto rd1 = [&]() -> Status {
          auto r = heap->ReadScalar(txn, arr, from);
          if (r.ok()) fbal = *r;
          return r.status();
        };
        auto rd2 = [&]() -> Status {
          auto r = heap->ReadScalar(txn, arr, to);
          if (r.ok()) tbal = *r;
          return r.status();
        };
        if (RunOp(heap.get(), txn, rd1, &deadlocks) !=
                TortureRig::Outcome::kOk ||
            RunOp(heap.get(), txn, rd2, &deadlocks) !=
                TortureRig::Outcome::kOk) {
          return;
        }
        Status ws;
        if (from == to) {
          ws = heap->WriteScalar(txn, arr, from, fbal);
        } else {
          ws = heap->WriteScalar(txn, arr, from, fbal - 1);
          if (ws.ok()) ws = heap->WriteScalar(txn, arr, to, tbal + 1);
        }
        if (!ws.ok()) return;
        if (!CommitRetry(heap.get(), txn).ok()) return;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_TRUE(env->faults()->crash_fired());

  // Finalize the crash (partial write-back, torn tail), reopen — still in
  // concurrent mode — and check atomicity: transfers touched only a
  // thread's own array, so every array must sum to exactly its initial
  // total, committed transfers included, torn ones rolled back whole.
  ASSERT_TRUE(heap->SimulateCrash(CrashOptions{0.5, 97, 0}).ok());
  heap.reset();
  heap_or = StableHeap::Open(env.get(), ConcurrentOptions(kThreads));
  ASSERT_TRUE(heap_or.ok()) << heap_or.status().ToString();
  heap = std::move(*heap_or);
  auto txn = heap->Begin();
  ASSERT_TRUE(txn.ok());
  for (uint32_t t = 0; t < kThreads; ++t) {
    auto arr = heap->GetRoot(*txn, t);
    ASSERT_TRUE(arr.ok()) << arr.status().ToString();
    uint64_t total = 0;
    for (uint64_t a = 0; a < kAccounts; ++a) {
      auto bal = heap->ReadScalar(*txn, *arr, a);
      ASSERT_TRUE(bal.ok()) << bal.status().ToString();
      total += *bal;
    }
    EXPECT_EQ(total, kAccounts * kInitBalance) << "array " << t;
  }
  ASSERT_TRUE(CommitRetry(heap.get(), *txn).ok());
}
#endif  // SHEAP_FAULT_INJECTION

}  // namespace
}  // namespace sheap
