// Unit tests for the write-ahead log: record encode/decode for every type,
// writer/reader framing, flush/force semantics, torn tails, random access.

#include <gtest/gtest.h>

#include "storage/sim_env.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"
#include "wal/record.h"

namespace sheap {
namespace {

LogRecord RoundTrip(const LogRecord& rec) {
  std::vector<uint8_t> buf;
  rec.EncodeTo(&buf);
  Decoder dec(buf);
  LogRecord out;
  SHEAP_CHECK_OK(LogRecord::DecodeFrom(&dec, &out));
  SHEAP_CHECK(dec.empty());
  return out;
}

TEST(RecordTest, UpdateRoundTrip) {
  LogRecord rec;
  rec.type = RecordType::kUpdate;
  rec.txn_id = 7;
  rec.prev_lsn = 100;
  rec.addr = 4096 + 16;
  rec.new_word = 0xbeef;
  rec.old_word = 0xcafe;
  rec.aux = LogRecord::kFlagPointer;
  LogRecord out = RoundTrip(rec);
  EXPECT_EQ(out.type, RecordType::kUpdate);
  EXPECT_EQ(out.txn_id, 7u);
  EXPECT_EQ(out.prev_lsn, 100u);
  EXPECT_EQ(out.addr, 4096u + 16);
  EXPECT_EQ(out.new_word, 0xbeefu);
  EXPECT_EQ(out.old_word, 0xcafeu);
  EXPECT_EQ(out.aux, LogRecord::kFlagPointer);
}

TEST(RecordTest, GcCopyRoundTripCarriesContents) {
  LogRecord rec;
  rec.type = RecordType::kGcCopy;
  rec.addr = 8192;
  rec.addr2 = 65536;
  rec.count = 3;
  rec.contents = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  LogRecord out = RoundTrip(rec);
  EXPECT_EQ(out.addr, 8192u);
  EXPECT_EQ(out.addr2, 65536u);
  EXPECT_EQ(out.count, 3u);
  EXPECT_EQ(out.contents, rec.contents);
}

TEST(RecordTest, GcScanRoundTrip) {
  LogRecord rec;
  rec.type = RecordType::kGcScan;
  rec.page = 17;
  rec.aux = 0;
  rec.slot_updates = {{4, 0x1000}, {9, 0x2000}};
  LogRecord out = RoundTrip(rec);
  EXPECT_EQ(out.page, 17u);
  EXPECT_EQ(out.slot_updates, rec.slot_updates);
}

TEST(RecordTest, UtrRoundTrip) {
  LogRecord rec;
  rec.type = RecordType::kUtr;
  rec.utr_entries = {{100, 200, 5}, {300, 400, 2}};
  LogRecord out = RoundTrip(rec);
  ASSERT_EQ(out.utr_entries.size(), 2u);
  EXPECT_EQ(out.utr_entries[0], (UtrEntry{100, 200, 5}));
  EXPECT_EQ(out.utr_entries[1], (UtrEntry{300, 400, 2}));
}

TEST(RecordTest, CheckpointPayloadRoundTrip) {
  LogRecord rec;
  rec.type = RecordType::kCheckpoint;
  rec.payload = std::vector<uint8_t>(1000, 0x5a);
  LogRecord out = RoundTrip(rec);
  EXPECT_EQ(out.payload, rec.payload);
}

TEST(RecordTest, EveryTypeRoundTripsItsFields) {
  for (uint8_t t = 1; t <= static_cast<uint8_t>(RecordType::kMaxRecordType);
       ++t) {
    LogRecord rec;
    rec.type = static_cast<RecordType>(t);
    rec.txn_id = 1;
    rec.prev_lsn = 2;
    rec.undo_next_lsn = 3;
    rec.addr = 4;
    rec.addr2 = 5;
    rec.new_word = 6;
    rec.old_word = 7;
    rec.aux = 0;
    rec.count = 9;
    rec.page = 10;
    rec.contents = {0xaa};
    rec.slot_updates = {{1, 2}};
    rec.utr_entries = {{1, 2, 3}};
    rec.payload = {0xbb};
    LogRecord out = RoundTrip(rec);
    EXPECT_EQ(out.type, rec.type) << LogRecord::TypeName(rec.type);
  }
}

TEST(RecordTest, DecodeRejectsBadType) {
  std::vector<uint8_t> buf = {0};  // type 0 invalid
  Decoder dec(buf);
  LogRecord out;
  EXPECT_TRUE(LogRecord::DecodeFrom(&dec, &out).IsCorruption());
  std::vector<uint8_t> buf2 = {99};
  Decoder dec2(buf2);
  EXPECT_TRUE(LogRecord::DecodeFrom(&dec2, &out).IsCorruption());
}

class LogTest : public ::testing::Test {
 protected:
  SimEnv env_;
};

TEST_F(LogTest, AppendAssignsMonotonicLsns) {
  LogWriter writer(env_.log());
  LogRecord a, b;
  a.type = RecordType::kBegin;
  a.txn_id = 1;
  b.type = RecordType::kBegin;
  b.txn_id = 2;
  Lsn la = writer.Append(&a);
  Lsn lb = writer.Append(&b);
  EXPECT_EQ(la, 1u);  // first record: offset 0 => LSN 1
  EXPECT_GT(lb, la);
}

TEST_F(LogTest, ReaderSeesRecordsAfterFlush) {
  LogWriter writer(env_.log());
  LogRecord rec;
  rec.type = RecordType::kBegin;
  rec.txn_id = 5;
  Lsn lsn = writer.Append(&rec);
  // Not flushed yet: the stable log is empty.
  LogReader before(env_.log());
  LogRecord out;
  auto more = before.Next(&out);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);

  ASSERT_TRUE(writer.Flush().ok());
  LogReader after(env_.log());
  more = after.Next(&out);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  EXPECT_EQ(out.type, RecordType::kBegin);
  EXPECT_EQ(out.txn_id, 5u);
  EXPECT_EQ(out.lsn, lsn);
}

TEST_F(LogTest, FlushToIsIdempotent) {
  LogWriter writer(env_.log());
  LogRecord rec;
  rec.type = RecordType::kBegin;
  rec.txn_id = 1;
  Lsn lsn = writer.Append(&rec);
  ASSERT_TRUE(writer.FlushTo(lsn).ok());
  const uint64_t size = env_.log()->size();
  ASSERT_TRUE(writer.FlushTo(lsn).ok());
  EXPECT_EQ(env_.log()->size(), size);
  EXPECT_GE(writer.flushed_lsn(), lsn);
}

TEST_F(LogTest, ForceRaisesDurableBarrier) {
  LogWriter writer(env_.log());
  LogRecord rec;
  rec.type = RecordType::kBegin;
  rec.txn_id = 1;
  writer.Append(&rec);
  ASSERT_TRUE(writer.Force().ok());
  EXPECT_EQ(env_.log()->durable_barrier(), env_.log()->size());
  EXPECT_EQ(env_.log()->stats().forces, 1u);
}

TEST_F(LogTest, SpoolBufferIsReusedWithoutReallocation) {
  LogWriter writer(env_.log());
  EXPECT_EQ(writer.writer_stats().spool_reallocs, 0u);
  // Steady state: appends drain through the spool without ever growing it
  // (the capacity is reserved once at construction and then recycled).
  for (uint64_t i = 0; i < 20000; ++i) {
    LogRecord rec;
    rec.type = RecordType::kBegin;
    rec.txn_id = i + 1;
    writer.Append(&rec);
  }
  const LogWriterStats& ws = writer.writer_stats();
  EXPECT_EQ(ws.appends, 20000u);
  EXPECT_GT(ws.drains, 0u);          // auto-drain bounded the spool size
  EXPECT_EQ(ws.spool_reallocs, 0u);  // never regrown
}

TEST_F(LogTest, DurableLsnAdvancesOnlyAtBarriers) {
  LogWriter writer(env_.log());
  LogRecord rec;
  rec.type = RecordType::kBegin;
  rec.txn_id = 1;
  Lsn lsn = writer.Append(&rec);
  EXPECT_EQ(writer.durable_lsn(), kInvalidLsn);  // nothing barriered yet
  ASSERT_TRUE(writer.Flush().ok());  // on the device, but still tearable
  EXPECT_EQ(writer.durable_lsn(), kInvalidLsn);
  ASSERT_TRUE(writer.Force().ok());  // the barrier makes it durable
  EXPECT_GE(writer.durable_lsn(), lsn);
}

TEST_F(LogTest, ReadAtRandomAccess) {
  LogWriter writer(env_.log());
  std::vector<Lsn> lsns;
  for (uint64_t i = 0; i < 10; ++i) {
    LogRecord rec;
    rec.type = RecordType::kBegin;
    rec.txn_id = i + 1;
    lsns.push_back(writer.Append(&rec));
  }
  ASSERT_TRUE(writer.Flush().ok());
  LogReader reader(env_.log());
  LogRecord out;
  ASSERT_TRUE(reader.ReadAt(lsns[7], &out).ok());
  EXPECT_EQ(out.txn_id, 8u);
  ASSERT_TRUE(reader.ReadAt(lsns[0], &out).ok());
  EXPECT_EQ(out.txn_id, 1u);
}

TEST_F(LogTest, TornTailStopsIterationCleanly) {
  LogWriter writer(env_.log());
  for (uint64_t i = 0; i < 5; ++i) {
    LogRecord rec;
    rec.type = RecordType::kBegin;
    rec.txn_id = i + 1;
    writer.Append(&rec);
  }
  ASSERT_TRUE(writer.Flush().ok());
  env_.log()->TearTail(3);  // mid-record tear

  LogReader reader(env_.log());
  LogRecord out;
  uint64_t count = 0;
  while (true) {
    auto more = reader.Next(&out);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++count;
  }
  EXPECT_EQ(count, 4u);
  EXPECT_TRUE(reader.saw_torn_tail());
}

TEST_F(LogTest, CorruptedBodyDetected) {
  LogWriter writer(env_.log());
  LogRecord rec;
  rec.type = RecordType::kUpdate;
  rec.txn_id = 1;
  rec.prev_lsn = 0;
  rec.addr = 8;
  rec.new_word = 1;
  rec.old_word = 2;
  rec.aux = 0;
  Lsn lsn = writer.Append(&rec);
  ASSERT_TRUE(writer.Flush().ok());
  // Flip a byte inside the record body.
  const_cast<uint8_t*>(env_.log()->data())[kRecordFrameHeader + 2] ^= 0xff;
  LogReader reader(env_.log());
  LogRecord out;
  EXPECT_TRUE(reader.ReadAt(lsn, &out).IsCorruption());
}

TEST_F(LogTest, VolumeStatsTrackPerType) {
  LogWriter writer(env_.log());
  LogRecord rec;
  rec.type = RecordType::kBegin;
  rec.txn_id = 1;
  writer.Append(&rec);
  rec = LogRecord();
  rec.type = RecordType::kCommit;
  rec.txn_id = 1;
  writer.Append(&rec);
  EXPECT_EQ(writer.volume_stats().For(RecordType::kBegin).records, 1u);
  EXPECT_EQ(writer.volume_stats().For(RecordType::kCommit).records, 1u);
  EXPECT_GT(writer.volume_stats().TotalBytes(), 0u);
}

TEST_F(LogTest, WriterResumesAfterReopen) {
  Lsn last;
  {
    LogWriter writer(env_.log());
    LogRecord rec;
    rec.type = RecordType::kBegin;
    rec.txn_id = 1;
    last = writer.Append(&rec);
    ASSERT_TRUE(writer.Flush().ok());
  }
  LogWriter writer2(env_.log());
  LogRecord rec;
  rec.type = RecordType::kBegin;
  rec.txn_id = 2;
  Lsn next = writer2.Append(&rec);
  EXPECT_GT(next, last);
  ASSERT_TRUE(writer2.Flush().ok());
  // Both records readable in order.
  LogReader reader(env_.log());
  LogRecord out;
  auto more = reader.Next(&out);
  ASSERT_TRUE(more.ok() && *more);
  EXPECT_EQ(out.txn_id, 1u);
  more = reader.Next(&out);
  ASSERT_TRUE(more.ok() && *more);
  EXPECT_EQ(out.txn_id, 2u);
}

}  // namespace
}  // namespace sheap
