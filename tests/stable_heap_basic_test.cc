// End-to-end basics of the StableHeap public API: format, allocate,
// read/write, roots, commit/abort semantics, reopen-after-shutdown, and
// basic stable/volatile division behaviour.

#include <gtest/gtest.h>

#include <memory>

#include "core/stable_heap.h"
#include "workload/graph_gen.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

StableHeapOptions SmallOptions(bool divided = true) {
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 128;
  opts.divided_heap = divided;
  return opts;
}

class StableHeapBasicTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    env_ = std::make_unique<SimEnv>();
    auto heap = StableHeap::Open(env_.get(), SmallOptions(GetParam()));
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    heap_ = std::move(*heap);
  }

  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<StableHeap> heap_;
};

INSTANTIATE_TEST_SUITE_P(DividedAndAllStable, StableHeapBasicTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "Divided" : "AllStable";
                         });

TEST_P(StableHeapBasicTest, AllocateWriteReadScalar) {
  auto txn = heap_->Begin();
  ASSERT_TRUE(txn.ok());
  auto obj = heap_->Allocate(*txn, kClassDataArray, 8);
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  ASSERT_TRUE(heap_->WriteScalar(*txn, *obj, 3, 0xabcdef).ok());
  auto v = heap_->ReadScalar(*txn, *obj, 3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0xabcdefu);
  // Unwritten slots read as zero.
  EXPECT_EQ(*heap_->ReadScalar(*txn, *obj, 0), 0u);
  ASSERT_TRUE(heap_->Commit(*txn).ok());
}

TEST_P(StableHeapBasicTest, PointerLinksAndTypeChecks) {
  auto txn = heap_->Begin();
  ASSERT_TRUE(txn.ok());
  auto a = heap_->Allocate(*txn, kClassPtrArray, 2);
  auto b = heap_->Allocate(*txn, kClassDataArray, 1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(heap_->WriteRef(*txn, *a, 0, *b).ok());
  auto back = heap_->ReadRef(*txn, *a, 0);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(heap_->WriteScalar(*txn, *back, 0, 55).ok());
  EXPECT_EQ(*heap_->ReadScalar(*txn, *b, 0), 55u);  // same object
  // Type discipline.
  EXPECT_TRUE(heap_->ReadScalar(*txn, *a, 0).status().IsInvalidArgument());
  EXPECT_TRUE(heap_->ReadRef(*txn, *b, 0).status().IsInvalidArgument());
  EXPECT_TRUE(heap_->WriteRef(*txn, *b, 0, *a).IsInvalidArgument());
  ASSERT_TRUE(heap_->Commit(*txn).ok());
}

TEST_P(StableHeapBasicTest, SlotRangeChecked) {
  auto txn = heap_->Begin();
  auto obj = heap_->Allocate(*txn, kClassDataArray, 2);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(heap_->ReadScalar(*txn, *obj, 2).status().IsInvalidArgument());
  EXPECT_TRUE(heap_->WriteScalar(*txn, *obj, 99, 1).IsInvalidArgument());
  ASSERT_TRUE(heap_->Abort(*txn).ok());
}

TEST_P(StableHeapBasicTest, RegisterClassEnforcesShape) {
  auto cls = heap_->RegisterClass({false, true});
  ASSERT_TRUE(cls.ok());
  auto txn = heap_->Begin();
  EXPECT_TRUE(
      heap_->Allocate(*txn, *cls, 5).status().IsInvalidArgument());
  auto obj = heap_->Allocate(*txn, *cls, 2);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(heap_->WriteScalar(*txn, *obj, 0, 7).ok());
  EXPECT_TRUE(heap_->WriteRef(*txn, *obj, 1, *obj).ok());  // self-link
  ASSERT_TRUE(heap_->Commit(*txn).ok());
}

TEST_P(StableHeapBasicTest, UnregisteredClassRejected) {
  auto txn = heap_->Begin();
  EXPECT_TRUE(
      heap_->Allocate(*txn, 999, 2).status().IsInvalidArgument());
  ASSERT_TRUE(heap_->Abort(*txn).ok());
}

TEST_P(StableHeapBasicTest, RootsPersistAcrossTransactions) {
  auto t1 = heap_->Begin();
  auto obj = heap_->Allocate(*t1, kClassDataArray, 1);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(heap_->WriteScalar(*t1, *obj, 0, 31337).ok());
  ASSERT_TRUE(heap_->SetRoot(*t1, 0, *obj).ok());
  ASSERT_TRUE(heap_->Commit(*t1).ok());

  auto t2 = heap_->Begin();
  auto root = heap_->GetRoot(*t2, 0);
  ASSERT_TRUE(root.ok());
  ASSERT_NE(*root, kNullRef);
  EXPECT_EQ(*heap_->ReadScalar(*t2, *root, 0), 31337u);
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(StableHeapBasicTest, AbortUndoesWrites) {
  // Committed baseline.
  auto t1 = heap_->Begin();
  auto obj = heap_->Allocate(*t1, kClassDataArray, 2);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(heap_->WriteScalar(*t1, *obj, 0, 100).ok());
  ASSERT_TRUE(heap_->SetRoot(*t1, 1, *obj).ok());
  ASSERT_TRUE(heap_->Commit(*t1).ok());

  // Aborted overwrite.
  auto t2 = heap_->Begin();
  auto root = heap_->GetRoot(*t2, 1);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap_->WriteScalar(*t2, *root, 0, 999).ok());
  EXPECT_EQ(*heap_->ReadScalar(*t2, *root, 0), 999u);
  ASSERT_TRUE(heap_->Abort(*t2).ok());

  auto t3 = heap_->Begin();
  root = heap_->GetRoot(*t3, 1);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*heap_->ReadScalar(*t3, *root, 0), 100u);
  ASSERT_TRUE(heap_->Commit(*t3).ok());
}

TEST_P(StableHeapBasicTest, AbortUndoesRootWrites) {
  auto t1 = heap_->Begin();
  auto obj = heap_->Allocate(*t1, kClassDataArray, 1);
  ASSERT_TRUE(heap_->SetRoot(*t1, 2, *obj).ok());
  ASSERT_TRUE(heap_->Abort(*t1).ok());
  auto t2 = heap_->Begin();
  auto root = heap_->GetRoot(*t2, 2);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, kNullRef);
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(StableHeapBasicTest, HandlesDieWithTransaction) {
  auto t1 = heap_->Begin();
  auto obj = heap_->Allocate(*t1, kClassDataArray, 1);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(heap_->Commit(*t1).ok());
  auto t2 = heap_->Begin();
  EXPECT_TRUE(
      heap_->ReadScalar(*t2, *obj, 0).status().IsInvalidArgument());
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(StableHeapBasicTest, TransactionsCannotUseOthersHandles) {
  auto t1 = heap_->Begin();
  auto t2 = heap_->Begin();
  auto obj = heap_->Allocate(*t1, kClassDataArray, 1);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(
      heap_->ReadScalar(*t2, *obj, 0).status().IsInvalidArgument());
  ASSERT_TRUE(heap_->Commit(*t1).ok());
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(StableHeapBasicTest, WriteConflictReturnsBusy) {
  auto setup = heap_->Begin();
  auto obj = heap_->Allocate(*setup, kClassDataArray, 1);
  ASSERT_TRUE(heap_->SetRoot(*setup, 0, *obj).ok());
  ASSERT_TRUE(heap_->Commit(*setup).ok());

  auto t1 = heap_->Begin();
  auto t2 = heap_->Begin();
  auto r1 = heap_->GetRoot(*t1, 0);
  auto r2 = heap_->GetRoot(*t2, 0);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_TRUE(heap_->WriteScalar(*t1, *r1, 0, 1).ok());
  EXPECT_TRUE(heap_->WriteScalar(*t2, *r2, 0, 2).IsBusy());
  ASSERT_TRUE(heap_->Commit(*t1).ok());
  // After t1 releases its locks, t2 can proceed.
  EXPECT_TRUE(heap_->WriteScalar(*t2, *r2, 0, 2).ok());
  ASSERT_TRUE(heap_->Commit(*t2).ok());
}

TEST_P(StableHeapBasicTest, CommittedDataSurvivesCleanReopen) {
  {
    auto t = heap_->Begin();
    auto cls = workload::RegisterNodeClass(heap_.get(), 2);
    ASSERT_TRUE(cls.ok());
    auto root = workload::BuildTree(heap_.get(), *t, *cls, 3);
    ASSERT_TRUE(root.ok());
    ASSERT_TRUE(heap_->SetRoot(*t, 0, *root).ok());
    ASSERT_TRUE(heap_->Commit(*t).ok());
  }
  uint64_t checksum_before;
  {
    auto t = heap_->Begin();
    auto root = heap_->GetRoot(*t, 0);
    ASSERT_TRUE(root.ok());
    auto sum = workload::GraphChecksum(heap_.get(), *t, *root);
    ASSERT_TRUE(sum.ok());
    checksum_before = *sum;
    ASSERT_TRUE(heap_->Commit(*t).ok());
  }
  // Clean shutdown + reopen (even without an explicit crash this exercises
  // the recovery path: the new instance reads the log and checkpoint).
  ASSERT_TRUE(heap_->SimulateCrash({/*writeback_fraction=*/1.0}).ok());
  heap_.reset();
  auto reopened = StableHeap::Open(env_.get(), SmallOptions(GetParam()));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  heap_ = std::move(*reopened);

  auto t = heap_->Begin();
  auto root = heap_->GetRoot(*t, 0);
  ASSERT_TRUE(root.ok());
  ASSERT_NE(*root, kNullRef);
  auto sum = workload::GraphChecksum(heap_.get(), *t, *root);
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, checksum_before);
  ASSERT_TRUE(heap_->Commit(*t).ok());
}

TEST_P(StableHeapBasicTest, ApiRejectsUseAfterCrash) {
  ASSERT_TRUE(heap_->SimulateCrash({}).ok());
  EXPECT_TRUE(heap_->Begin().status().IsCrashed());
  EXPECT_TRUE(heap_->Checkpoint().IsCrashed());
}

TEST(StableHeapDividedTest, NewObjectsPayNoLogUntilStable) {
  SimEnv env;
  auto heap = StableHeap::Open(&env, SmallOptions(true));
  ASSERT_TRUE(heap.ok());
  const uint64_t update_bytes_before =
      (*heap)->log_volume().For(RecordType::kUpdate).bytes;
  auto t = (*heap)->Begin();
  auto obj = (*heap)->Allocate(*t, kClassDataArray, 64);
  ASSERT_TRUE(obj.ok());
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE((*heap)->WriteScalar(*t, *obj, i, i).ok());
  }
  ASSERT_TRUE((*heap)->Commit(*t).ok());
  // The object never became reachable from a stable root: all 64 writes
  // were volatile and produced no update records (Invariant I6).
  EXPECT_EQ((*heap)->log_volume().For(RecordType::kUpdate).bytes,
            update_bytes_before);
}

TEST(StableHeapAllStableTest, EveryUpdateIsLogged) {
  SimEnv env;
  auto heap = StableHeap::Open(&env, SmallOptions(false));
  ASSERT_TRUE(heap.ok());
  auto t = (*heap)->Begin();
  auto obj = (*heap)->Allocate(*t, kClassDataArray, 4);
  ASSERT_TRUE(obj.ok());
  const uint64_t before =
      (*heap)->log_volume().For(RecordType::kUpdate).records;
  ASSERT_TRUE((*heap)->WriteScalar(*t, *obj, 0, 1).ok());
  ASSERT_TRUE((*heap)->WriteScalar(*t, *obj, 1, 2).ok());
  EXPECT_EQ((*heap)->log_volume().For(RecordType::kUpdate).records,
            before + 2);
  ASSERT_TRUE((*heap)->Commit(*t).ok());
}

}  // namespace
}  // namespace sheap
