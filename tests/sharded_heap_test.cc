// ShardedHeap tests (src/shard/sharded_heap.h): deterministic routing,
// single-shard fast path vs cross-shard 2PC, and — the heart of it —
// per-shard byte determinism: with a fixed crashed multi-shard image
// (including a mid-2PC in-doubt state), every recovery configuration
// (shard order forward/reverse/parallel, redo thread counts, instant
// recovery with any drain thread count) must produce identical per-shard
// disk/spaces/UTT bytes and the identical in-doubt set. Then
// crash-recover-resume: reopening with in-doubt resolution applies the
// decided transfer exactly once and presumed-aborts the undecided one.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "shard/sharded_heap.h"
#include "util/coder.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

constexpr uint32_t kShards = 3;
constexpr uint64_t kAccountsPerShard = 64;
constexpr uint64_t kInitialBalance = 100;
// Two buckets per shard (locks are object-granularity; concurrent in-doubt
// 2PC rounds need disjoint objects on the shard they share).
constexpr uint64_t kBuckets = 2;
constexpr uint64_t kTotal =
    kShards * kBuckets * kAccountsPerShard * kInitialBalance;

ShardedHeapOptions BaseOptions() {
  ShardedHeapOptions opts;
  opts.shards = kShards;
  opts.shard_options.stable_space_pages = 128;
  opts.shard_options.volatile_space_pages = 64;
  opts.shard_options.divided_heap = false;
  opts.shard_options.group_commit = true;  // exercise the 2PC piggyback
  opts.parallel_open = false;
  return opts;
}

struct Cluster {
  std::vector<std::unique_ptr<SimEnv>> shard_envs;
  std::unique_ptr<SimEnv> coord_env;

  Cluster() {
    for (uint32_t i = 0; i < kShards; ++i) {
      shard_envs.push_back(std::make_unique<SimEnv>());
    }
    coord_env = std::make_unique<SimEnv>();
  }

  std::vector<SimEnv*> envs() {
    std::vector<SimEnv*> out;
    for (auto& e : shard_envs) out.push_back(e.get());
    return out;
  }

  StatusOr<std::unique_ptr<ShardedHeap>> Open(
      const ShardedHeapOptions& opts) {
    return ShardedHeap::Open(envs(), coord_env.get(), opts);
  }
};

// Each shard holds kBuckets 64-account buckets. Bucket b of shard s hangs
// off global root index b * kShards + s, which routes to shard s (local
// root slot b).
Status SetupAccounts(ShardedHeap* heap, ClassId cls) {
  for (uint64_t b = 0; b < kBuckets; ++b) {
    for (uint32_t s = 0; s < kShards; ++s) {
      SHEAP_ASSIGN_OR_RETURN(GTxnId txn, heap->Begin());
      SHEAP_ASSIGN_OR_RETURN(
          GRef bucket, heap->AllocateOn(txn, s, cls, kAccountsPerShard));
      for (uint64_t a = 0; a < kAccountsPerShard; ++a) {
        SHEAP_RETURN_IF_ERROR(
            heap->WriteScalar(txn, bucket, a, kInitialBalance));
      }
      SHEAP_RETURN_IF_ERROR(heap->SetRoot(txn, b * kShards + s, bucket));
      SHEAP_RETURN_IF_ERROR(heap->CommitSync(txn));
    }
  }
  return Status::OK();
}

// Transfer through the front end; spans shards when from/to differ.
Status Transfer(ShardedHeap* heap, uint32_t from_shard, uint64_t from_acct,
                uint32_t to_shard, uint64_t to_acct, uint64_t amount) {
  SHEAP_ASSIGN_OR_RETURN(GTxnId txn, heap->Begin());
  SHEAP_ASSIGN_OR_RETURN(GRef fb, heap->GetRoot(txn, from_shard));
  SHEAP_ASSIGN_OR_RETURN(GRef tb, heap->GetRoot(txn, to_shard));
  SHEAP_ASSIGN_OR_RETURN(uint64_t fbal,
                         heap->ReadScalar(txn, fb, from_acct));
  SHEAP_ASSIGN_OR_RETURN(uint64_t tbal, heap->ReadScalar(txn, tb, to_acct));
  SHEAP_RETURN_IF_ERROR(
      heap->WriteScalar(txn, fb, from_acct, fbal - amount));
  SHEAP_RETURN_IF_ERROR(heap->WriteScalar(txn, tb, to_acct, tbal + amount));
  return heap->CommitSync(txn);
}

StatusOr<uint64_t> GrandTotal(ShardedHeap* heap) {
  uint64_t total = 0;
  SHEAP_ASSIGN_OR_RETURN(GTxnId txn, heap->Begin());
  for (uint64_t r = 0; r < kBuckets * kShards; ++r) {
    SHEAP_ASSIGN_OR_RETURN(GRef bucket, heap->GetRoot(txn, r));
    for (uint64_t a = 0; a < kAccountsPerShard; ++a) {
      SHEAP_ASSIGN_OR_RETURN(uint64_t bal, heap->ReadScalar(txn, bucket, a));
      total += bal;
    }
  }
  SHEAP_RETURN_IF_ERROR(heap->CommitSync(txn));
  return total;
}

/// The scripted pre-crash workload: setup, single-shard and cross-shard
/// traffic, checkpoints, post-checkpoint redo work, then two 2PC rounds
/// left in doubt — gtid_decided has a forced decision but unapplied
/// participant commits; gtid_undecided stopped after the votes (presumed
/// abort must roll it back). Crashes every shard. Returns the two gtids.
struct InDoubtSetup {
  Gtid decided = 0;
  Gtid undecided = 0;
};

InDoubtSetup BuildCrashedCluster(Cluster* cluster,
                                 const ShardedHeapOptions& opts) {
  auto opened = cluster->Open(opts);
  SHEAP_CHECK_OK(opened.status());
  std::unique_ptr<ShardedHeap> heap = std::move(*opened);

  auto cls = heap->RegisterClass(std::vector<bool>(kAccountsPerShard, false));
  SHEAP_CHECK_OK(cls.status());
  SHEAP_CHECK_OK(SetupAccounts(heap.get(), *cls));

  // Single-shard traffic on every shard.
  for (uint32_t i = 0; i < 9; ++i) {
    const uint32_t s = i % kShards;
    SHEAP_CHECK_OK(Transfer(heap.get(), s, i, s, i + 1, 5));
  }
  // Cross-shard traffic (conserves the grand total).
  SHEAP_CHECK_OK(Transfer(heap.get(), 0, 2, 1, 3, 10));
  SHEAP_CHECK_OK(Transfer(heap.get(), 1, 4, 2, 5, 10));
  SHEAP_CHECK_OK(Transfer(heap.get(), 2, 6, 0, 7, 10));

  // Partial write-back + checkpoint, then post-checkpoint redo work.
  for (uint32_t s = 0; s < kShards; ++s) {
    SHEAP_CHECK_OK(heap->shard(s)->WriteBackPages(0.6, 11 + s));
  }
  SHEAP_CHECK_OK(heap->Checkpoint());
  SHEAP_CHECK_OK(Transfer(heap.get(), 0, 8, 2, 9, 20));
  SHEAP_CHECK_OK(Transfer(heap.get(), 1, 10, 1, 11, 15));

  // Two in-doubt 2PC rounds, driven through the coordinator's exposed
  // protocol steps on direct shard transactions (the front end would
  // finish them; the crash matrix needs them cut mid-protocol).
  TwoPhaseCoordinator* coord = heap->coordinator();
  InDoubtSetup out;
  // Moves `amount` between two accounts of local bucket `b` on shard `s`.
  // The two in-doubt rounds share shard 1, so they use different buckets —
  // locks are object-granularity and both prepared txns must coexist.
  auto start_local = [&](uint32_t s, uint64_t b, uint64_t from, uint64_t to,
                         uint64_t amount) {
    StableHeap* shard = heap->shard(s);
    TxnId txn = *shard->Begin();
    Ref bucket = *shard->GetRoot(txn, b);
    uint64_t fbal = *shard->ReadScalar(txn, bucket, from);
    uint64_t tbal = *shard->ReadScalar(txn, bucket, to);
    SHEAP_CHECK_OK(shard->WriteScalar(txn, bucket, from, fbal - amount));
    SHEAP_CHECK_OK(shard->WriteScalar(txn, bucket, to, tbal + amount));
    return txn;
  };

  {
    out.decided = coord->NewGtid();
    TxnId t0 = start_local(0, 0, 20, 21, 7);
    TxnId t1 = start_local(1, 0, 22, 23, 7);
    auto voted = coord->PrepareAll(
        out.decided, {{heap->shard(0), t0}, {heap->shard(1), t1}});
    SHEAP_CHECK_OK(voted.status());
    SHEAP_CHECK(*voted);
    SHEAP_CHECK_OK(coord->LogCommitDecision(out.decided, 2));
  }
  {
    out.undecided = coord->NewGtid();
    TxnId t1 = start_local(1, 1, 30, 31, 9);
    TxnId t2 = start_local(2, 1, 32, 33, 9);
    auto voted = coord->PrepareAll(
        out.undecided, {{heap->shard(1), t1}, {heap->shard(2), t2}});
    SHEAP_CHECK_OK(voted.status());
    SHEAP_CHECK(*voted);
    // No decision: the crash must resolve this one by presumed abort.
  }

  SHEAP_CHECK_OK(heap->SimulateCrashAll(CrashOptions{0.5, 23, 96}));
  return out;
}

struct ShardState {
  std::vector<std::pair<TxnId, uint64_t>> in_doubt;
  std::vector<uint8_t> spaces_enc;
  std::vector<uint8_t> utt_enc;
  std::vector<PageImage> pages;
  std::vector<uint8_t> log_bytes;
};

struct RecoveredState {
  std::vector<ShardState> shards;
  uint64_t prepared_restored = 0;
};

/// Reopen the crashed cluster with `opts` (resolution off, so the
/// restored in-doubt set is observable), drain any instant-recovery
/// backlog, flush, and snapshot every shard's bytes.
RecoveredState RecoverWith(Cluster* cluster, ShardedHeapOptions opts) {
  opts.resolve_in_doubt = false;
  auto opened = cluster->Open(opts);
  SHEAP_CHECK_OK(opened.status());
  std::unique_ptr<ShardedHeap> heap = std::move(*opened);
  if (opts.shard_options.instant_recovery) {
    SHEAP_CHECK_OK(heap->DrainInstantRecovery());
  }

  RecoveredState out;
  for (uint32_t s = 0; s < kShards; ++s) {
    StableHeap* shard = heap->shard(s);
    ShardState st;
    st.in_doubt = shard->InDoubtTransactions();
    Encoder spaces_enc(&st.spaces_enc);
    shard->spaces()->EncodeTo(&spaces_enc);
    Encoder utt_enc(&st.utt_enc);
    shard->utt()->EncodeTo(&utt_enc);
    SHEAP_CHECK_OK(shard->pool()->FlushAll());
    SimEnv* env = cluster->shard_envs[s].get();
    st.log_bytes.assign(env->log()->data(),
                        env->log()->data() + env->log()->size());
    const uint64_t npages = (opts.shard_options.stable_space_pages +
                             opts.shard_options.volatile_space_pages) *
                                2 +
                            64;
    for (PageId pid = 0; pid < npages; ++pid) {
      PageImage img;
      SHEAP_CHECK_OK(env->disk()->ReadPage(pid, &img));
      st.pages.push_back(img);
    }
    out.prepared_restored += shard->recovery_stats().prepared_restored;
    out.shards.push_back(std::move(st));
  }
  return out;
}

void ExpectIdentical(const RecoveredState& a, const RecoveredState& b,
                     const char* label, bool compare_log) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.prepared_restored, b.prepared_restored);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t s = 0; s < a.shards.size(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    const ShardState& x = a.shards[s];
    const ShardState& y = b.shards[s];
    EXPECT_EQ(x.in_doubt, y.in_doubt);
    EXPECT_EQ(x.spaces_enc, y.spaces_enc) << "space table diverged";
    EXPECT_EQ(x.utt_enc, y.utt_enc) << "UTT diverged";
    if (compare_log) {
      EXPECT_EQ(x.log_bytes, y.log_bytes) << "log bytes diverged";
    }
    ASSERT_EQ(x.pages.size(), y.pages.size());
    for (size_t i = 0; i < x.pages.size(); ++i) {
      EXPECT_EQ(x.pages[i].page_lsn, y.pages[i].page_lsn) << "page " << i;
      ASSERT_EQ(0, std::memcmp(x.pages[i].data.data(),
                               y.pages[i].data.data(), kPageSizeBytes))
          << "page " << i << " bytes diverged";
    }
  }
}

TEST(ShardedHeapTest, RoutingAndCommitFastPaths) {
  Cluster cluster;
  ShardedHeapOptions opts = BaseOptions();
  auto heap = std::move(*cluster.Open(opts));
  auto cls =
      heap->RegisterClass(std::vector<bool>(kAccountsPerShard, false));
  ASSERT_TRUE(cls.ok());
  ASSERT_TRUE(SetupAccounts(heap.get(), *cls).ok());

  // Root striping: index s routes to shard s.
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(heap->ShardOfRoot(s), s);
    EXPECT_EQ(heap->ShardOfRoot(s + kShards), s);
  }

  ASSERT_TRUE(Transfer(heap.get(), 0, 0, 0, 1, 10).ok());   // single-shard
  ASSERT_TRUE(Transfer(heap.get(), 0, 0, 2, 1, 10).ok());   // cross-shard

  // Snapshot the counters before GrandTotal — the audit itself is a
  // (read-only) cross-shard transaction and would count too.
  const ShardedHeapStats stats = heap->stats();
  EXPECT_EQ(*GrandTotal(heap.get()), kTotal);
  EXPECT_EQ(stats.per_shard.size(), kShards);
  // Setup commits are single-shard; the two transfers split 1/1.
  EXPECT_GE(stats.single_shard_commits, kShards + 1u);
  EXPECT_EQ(stats.cross_shard_commits, 1u);
  EXPECT_EQ(stats.cross_shard_aborts, 0u);
  EXPECT_EQ(stats.dtx.distributed_commits, 1u);
  EXPECT_EQ(stats.dtx.ends_logged, 1u);
  // The decision log holds no open decisions once everything acked.
  EXPECT_EQ(heap->coordinator()->OpenDecisions(), 0u);
}

TEST(ShardedHeapTest, CrossShardPointersAreRejected) {
  Cluster cluster;
  auto heap = std::move(*cluster.Open(BaseOptions()));
  auto ptr_cls = heap->RegisterClass({true, true});
  ASSERT_TRUE(ptr_cls.ok());

  GTxnId txn = *heap->Begin();
  GRef a = *heap->AllocateOn(txn, 0, *ptr_cls, 2);
  GRef b = *heap->AllocateOn(txn, 1, *ptr_cls, 2);
  Status st = heap->WriteRef(txn, a, 0, b);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  // Same-shard pointers and null stores stay legal.
  GRef a2 = *heap->AllocateOn(txn, 0, *ptr_cls, 2);
  EXPECT_TRUE(heap->WriteRef(txn, a, 0, a2).ok());
  EXPECT_TRUE(heap->WriteRef(txn, a, 1, kNullGRef).ok());
  EXPECT_TRUE(heap->Abort(txn).ok());
}

TEST(ShardedHeapTest, StaleGRefsAreRejected) {
  Cluster cluster;
  auto heap = std::move(*cluster.Open(BaseOptions()));
  auto cls = heap->RegisterClass(std::vector<bool>(4, false));
  ASSERT_TRUE(cls.ok());

  GTxnId t1 = *heap->Begin();
  GRef obj = *heap->AllocateOn(t1, 1, *cls, 4);
  ASSERT_TRUE(heap->WriteScalar(t1, obj, 0, 42).ok());
  ASSERT_TRUE(heap->CommitSync(t1).ok());

  // The handle died with its transaction; a new transaction cannot reuse it.
  GTxnId t2 = *heap->Begin();
  EXPECT_TRUE(heap->ReadScalar(t2, obj, 0).status().IsInvalidArgument());
  EXPECT_TRUE(heap->Abort(t2).ok());
}

TEST(ShardedHeapTest, WorkloadIsDeterministic) {
  // Sanity for the matrix below: the crashed image itself is reproducible.
  ShardedHeapOptions opts = BaseOptions();
  Cluster c1, c2;
  BuildCrashedCluster(&c1, opts);
  BuildCrashedCluster(&c2, opts);
  for (uint32_t s = 0; s < kShards; ++s) {
    ASSERT_EQ(c1.shard_envs[s]->log()->size(),
              c2.shard_envs[s]->log()->size());
    EXPECT_EQ(0, std::memcmp(c1.shard_envs[s]->log()->data(),
                             c2.shard_envs[s]->log()->data(),
                             c1.shard_envs[s]->log()->size()));
  }
  ASSERT_EQ(c1.coord_env->log()->size(), c2.coord_env->log()->size());
}

TEST(ShardedHeapTest, ByteIdenticalAcrossRecoveryConfigs) {
  ShardedHeapOptions base = BaseOptions();

  auto fresh_recover = [&](ShardedHeapOptions opts) {
    Cluster cluster;
    BuildCrashedCluster(&cluster, base);
    return RecoverWith(&cluster, opts);
  };

  RecoveredState serial = fresh_recover(base);
  // Both in-doubt rounds survive: one prepared txn on shard 0, two on
  // shard 1, one on shard 2.
  EXPECT_EQ(serial.prepared_restored, 4u);

  {  // Reverse shard recovery order.
    ShardedHeapOptions opts = base;
    opts.reverse_open_order = true;
    ExpectIdentical(serial, fresh_recover(opts), "reverse order",
                    /*compare_log=*/true);
  }
  {  // Parallel per-shard recovery.
    ShardedHeapOptions opts = base;
    opts.parallel_open = true;
    ExpectIdentical(serial, fresh_recover(opts), "parallel open",
                    /*compare_log=*/true);
  }
  {  // Parallel redo inside every shard.
    ShardedHeapOptions opts = base;
    opts.shard_options.recovery_threads = 4;
    ExpectIdentical(serial, fresh_recover(opts), "redo threads 4",
                    /*compare_log=*/true);
  }
  for (uint32_t drain : {1u, 4u}) {  // Instant recovery, drained.
    ShardedHeapOptions opts = base;
    opts.parallel_open = true;
    opts.shard_options.instant_recovery = true;
    opts.shard_options.instant_drain_threads = drain;
    ExpectIdentical(serial, fresh_recover(opts),
                    ("instant drain " + std::to_string(drain)).c_str(),
                    /*compare_log=*/false);
  }
}

TEST(ShardedHeapTest, CrashRecoverResumeMid2pc) {
  ShardedHeapOptions opts = BaseOptions();
  Cluster cluster;
  InDoubtSetup setup = BuildCrashedCluster(&cluster, opts);

  // Reopen with resolution: the decided transfer commits exactly once,
  // the undecided one presumed-aborts, the grand total is conserved.
  auto reopened = cluster.Open(opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<ShardedHeap> heap = std::move(*reopened);

  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_TRUE(heap->shard(s)->InDoubtTransactions().empty())
        << "shard " << s << " still in doubt";
  }
  const ShardedHeapStats stats = heap->stats();
  EXPECT_EQ(stats.dtx.resolved_commit, 2u);  // two branches of gtid_decided
  EXPECT_EQ(stats.dtx.resolved_abort, 2u);   // two of gtid_undecided
  EXPECT_TRUE(heap->coordinator()->Committed(setup.decided));
  EXPECT_FALSE(heap->coordinator()->Committed(setup.undecided));
  EXPECT_EQ(*GrandTotal(heap.get()), kTotal);

  // The decided transfer's effects are visible (bucket 0 of shards 0/1,
  // accounts 20..23 moved 7 each); the undecided one's are rolled back
  // (bucket 1 of shards 1/2, accounts 30..33 untouched).
  GTxnId txn = *heap->Begin();
  GRef a0 = *heap->GetRoot(txn, 0);              // bucket 0, shard 0
  GRef a1 = *heap->GetRoot(txn, 1);              // bucket 0, shard 1
  GRef b1 = *heap->GetRoot(txn, kShards + 1);    // bucket 1, shard 1
  GRef b2 = *heap->GetRoot(txn, kShards + 2);    // bucket 1, shard 2
  EXPECT_EQ(*heap->ReadScalar(txn, a0, 20), kInitialBalance - 7);
  EXPECT_EQ(*heap->ReadScalar(txn, a0, 21), kInitialBalance + 7);
  EXPECT_EQ(*heap->ReadScalar(txn, a1, 22), kInitialBalance - 7);
  EXPECT_EQ(*heap->ReadScalar(txn, a1, 23), kInitialBalance + 7);
  EXPECT_EQ(*heap->ReadScalar(txn, b1, 30), kInitialBalance);
  EXPECT_EQ(*heap->ReadScalar(txn, b1, 31), kInitialBalance);
  EXPECT_EQ(*heap->ReadScalar(txn, b2, 32), kInitialBalance);
  EXPECT_EQ(*heap->ReadScalar(txn, b2, 33), kInitialBalance);
  ASSERT_TRUE(heap->CommitSync(txn).ok());

  // Resume: the recovered cluster accepts new single- and cross-shard
  // work, survives a full collection, and conserves the total.
  ASSERT_TRUE(Transfer(heap.get(), 0, 0, 1, 1, 25).ok());
  ASSERT_TRUE(Transfer(heap.get(), 2, 2, 2, 3, 5).ok());
  ASSERT_TRUE(heap->CollectStableFully().ok());
  EXPECT_EQ(*GrandTotal(heap.get()), kTotal);
}

TEST(ShardedHeapTest, ParallelOpenCostsTheSlowestShard) {
  ShardedHeapOptions opts = BaseOptions();
  Cluster cluster;
  BuildCrashedCluster(&cluster, opts);
  opts.parallel_open = true;
  auto heap = std::move(*cluster.Open(opts));
  const ShardedHeapStats stats = heap->stats();
  EXPECT_GT(stats.open_ns_max, 0u);
  EXPECT_GE(stats.open_ns_sum, stats.open_ns_max);
  // Three shards recovered: the serial path would pay the sum. With
  // comparable per-shard work the parallel span is well under it.
  EXPECT_LT(stats.open_ns_max, stats.open_ns_sum);
  // The rolled-up view maxes time-to-open (critical path) and sums the
  // rest.
  EXPECT_EQ(stats.total.recovery.time_to_open_ns, stats.open_ns_max);
  uint64_t summed = 0;
  for (const HeapStats& s : stats.per_shard) {
    summed += s.recovery.redo_records_applied;
  }
  EXPECT_EQ(stats.total.recovery.redo_records_applied, summed);
}

}  // namespace
}  // namespace sheap
