// Property tests over the log stack: random sequences of appends, flushes,
// forces, WAL flushes, tears, and truncations must preserve
//   P1  prefix property: the readable stable log is always a prefix of the
//       appended record sequence (no holes, no reordering),
//   P2  durability barrier: records required by a Force or a WAL flush
//       never tear,
//   P3  framing: a torn tail never yields a corrupt record, only a clean
//       end.
// Also: buffer-pool eviction respects the WAL constraint under random
// pin/write/evict interleavings.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/sim_env.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace sheap {
namespace {

class WalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalPropertyTest, PrefixAndBarrierInvariants) {
  Rng rng(GetParam());
  SimEnv env;
  LogWriter writer(env.log());

  std::vector<uint64_t> appended;   // payload ids, in append order
  uint64_t barrier_count = 0;       // ids protected by the last barrier
  uint64_t next_id = 1;

  for (int step = 0; step < 3000; ++step) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 70) {
      LogRecord rec;
      rec.type = RecordType::kBegin;
      rec.txn_id = next_id;
      writer.Append(&rec);
      appended.push_back(next_id++);
    } else if (dice < 80) {
      ASSERT_TRUE(writer.Flush().ok());  // tearable
    } else if (dice < 88) {
      ASSERT_TRUE(writer.Force().ok());  // barrier
      barrier_count = appended.size();
    } else {
      ASSERT_TRUE(writer.FlushTo(writer.last_lsn()).ok());  // WAL barrier
      barrier_count = appended.size();
    }
  }
  // The tear happens at the crash, after which nothing appends: take an
  // adversarial bite out of the unbarriered tail.
  env.log()->TearTail(rng.Uniform(1 << 20));

  // P1 + P3: the readable log is a clean, in-order prefix.
  LogReader reader(env.log());
  LogRecord rec;
  uint64_t read = 0;
  while (true) {
    auto more = reader.Next(&rec);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ASSERT_LT(read, appended.size());
    ASSERT_EQ(rec.txn_id, appended[read]) << "out of order at " << read;
    ++read;
  }
  // P2: everything behind the last barrier survived.
  EXPECT_GE(read, barrier_count);
}

TEST_P(WalPropertyTest, BufferPoolNeverWritesAheadOfTheLog) {
  Rng rng(GetParam() * 31 + 7);
  SimEnv env;
  LogWriter writer(env.log());
  Lsn flushed_floor = 0;  // what the hook has been asked to guarantee
  BufferPool::Hooks hooks;
  hooks.flush_log_to = [&](Lsn lsn) {
    Status st = writer.FlushTo(lsn);
    if (st.ok() && lsn > flushed_floor) flushed_floor = lsn;
    return st;
  };
  BufferPool pool(env.disk(), 8, hooks);  // tiny: constant eviction

  Lsn last_lsn = 0;
  for (int step = 0; step < 2000; ++step) {
    const PageId pid = rng.Uniform(32);
    auto frame = pool.Pin(pid);
    ASSERT_TRUE(frame.ok());
    if (rng.Bernoulli(0.7)) {
      LogRecord rec;
      rec.type = RecordType::kUpdate;
      rec.addr = pid * kPageSizeBytes;
      rec.addr2 = pid * kPageSizeBytes;
      last_lsn = writer.Append(&rec);
      (*frame)->WriteWord(0, step);
      pool.MarkDirty(pid, last_lsn);
    }
    pool.Unpin(pid);
    if (rng.Bernoulli(0.1)) {
      // Random page: Busy (pinned) and NotFound (not resident) are
      // expected; anything else is a real failure.
      const Status wb = pool.WriteBack(rng.Uniform(32));
      EXPECT_TRUE(wb.ok() || wb.IsBusy() || wb.IsNotFound())
          << wb.ToString();
    }
    // Invariant I2: every disk-resident page's pageLSN is covered by the
    // stable log.
    if (step % 50 == 0) {
      for (PageId p = 0; p < 32; ++p) {
        PageImage img;
        ASSERT_TRUE(env.disk()->ReadPage(p, &img).ok());
        EXPECT_LE(img.page_lsn, writer.flushed_lsn())
            << "page " << p << " reached disk ahead of its log records";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalPropertyTest,
                         ::testing::Values(1u, 42u, 777u, 31337u));

// Exhaustive torn-tail property: for EVERY byte-granular prefix truncation
// of the un-barriered log tail (not just sampled tears), the readable log is
// a clean in-order prefix that still contains everything behind the last
// durable barrier. The log build is deterministic, so each tear length is
// tested against an identical byte layout.
TEST(TornTailExhaustiveTest, EveryPrefixTruncationRecoversToTheBarrier) {
  constexpr uint64_t kBarrierRecords = 25;  // protected by Force()
  constexpr uint64_t kTailRecords = 15;     // flushed but un-barriered

  // Deterministically rebuild the same log contents on a fresh device.
  auto build = [&](SimEnv* env) {
    LogWriter writer(env->log());
    for (uint64_t id = 1; id <= kBarrierRecords; ++id) {
      LogRecord rec;
      rec.type = RecordType::kBegin;
      rec.txn_id = id;
      writer.Append(&rec);
    }
    EXPECT_TRUE(writer.Force().ok());  // raises the durable barrier
    for (uint64_t id = kBarrierRecords + 1;
         id <= kBarrierRecords + kTailRecords; ++id) {
      LogRecord rec;
      rec.type = RecordType::kBegin;
      rec.txn_id = id;
      writer.Append(&rec);
    }
    EXPECT_TRUE(writer.Flush().ok());  // on device, tearable
  };

  // Probe the geometry once.
  uint64_t tail_bytes = 0;
  {
    SimEnv env;
    build(&env);
    ASSERT_GT(env.log()->size(), env.log()->durable_barrier());
    tail_bytes = env.log()->size() - env.log()->durable_barrier();
  }

  for (uint64_t tear = 0; tear <= tail_bytes + 8; ++tear) {
    SimEnv env;
    build(&env);
    env.log()->TearTail(tear);
    // The tear never bites past the barrier, no matter how large.
    ASSERT_GE(env.log()->size(), env.log()->durable_barrier());

    LogReader reader(env.log());
    LogRecord rec;
    uint64_t read = 0;
    while (true) {
      auto more = reader.Next(&rec);
      ASSERT_TRUE(more.ok()) << "corrupt record after tear=" << tear;
      if (!*more) break;
      ++read;
      ASSERT_EQ(rec.txn_id, read) << "out of order after tear=" << tear;
    }
    EXPECT_GE(read, kBarrierRecords) << "lost barriered records, tear=" << tear;
    EXPECT_LE(read, kBarrierRecords + kTailRecords);
    if (tear == 0) {
      EXPECT_EQ(read, kBarrierRecords + kTailRecords);
    }
    if (tear >= tail_bytes) {
      EXPECT_EQ(read, kBarrierRecords);
    }
  }
}

}  // namespace
}  // namespace sheap
