// Unit tests for common/ and util/: Status, CRC32C, coder, bitmap, RNG,
// simulated clock.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "util/bitmap.h"
#include "util/coder.h"
#include "util/crc32c.h"
#include "util/sim_clock.h"

namespace sheap {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::Corruption("bad page");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_EQ(st.ToString(), "Corruption: bad page");
}

TEST(StatusTest, AllCodesDistinct) {
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("").IsIOError());
  EXPECT_TRUE(Status::Busy("").IsBusy());
  EXPECT_TRUE(Status::Deadlock("").IsDeadlock());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_TRUE(Status::NotSupported("").IsNotSupported());
  EXPECT_TRUE(Status::OutOfSpace("").IsOutOfSpace());
  EXPECT_TRUE(Status::Crashed("").IsCrashed());
  EXPECT_TRUE(Status::Internal("").IsInternal());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(Crc32cTest, KnownVectors) {
  // CRC-32C of "123456789" is 0xE3069283 (RFC 3720 test vector).
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
  // CRC of 32 zero bytes: 0x8A9136AA.
  uint8_t zeros[32] = {};
  EXPECT_EQ(crc32c::Value(zeros, 32), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendComposes) {
  const char* data = "hello, stable heap";
  uint32_t whole = crc32c::Value(data, 18);
  uint32_t split = crc32c::Extend(crc32c::Value(data, 7), data + 7, 11);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskRoundTrips) {
  uint32_t crc = crc32c::Value("abc", 3);
  EXPECT_NE(crc32c::Mask(crc), crc);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
}

TEST(Crc32cTest, PortablePathMatchesKnownVectors) {
  EXPECT_EQ(crc32c::ExtendPortable(0, "123456789", 9), 0xE3069283u);
  uint8_t zeros[32] = {};
  EXPECT_EQ(crc32c::ExtendPortable(0, zeros, 32), 0x8A9136AAu);
}

TEST(Crc32cTest, DispatchedAndPortablePathsAgree) {
  // The log format must not depend on the host: whatever Extend dispatches
  // to (SSE4.2 or slice-by-8) has to agree with the portable path on
  // arbitrary buffers, unaligned offsets, lengths, and seed CRCs.
  Rng rng(77);
  std::vector<uint8_t> buf(1 << 12);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Uniform(256));
  for (int trial = 0; trial < 200; ++trial) {
    const size_t off = rng.Uniform(64);
    const size_t len = rng.Uniform(buf.size() - off + 1);
    const uint32_t seed = static_cast<uint32_t>(rng.Uniform(1ull << 32));
    ASSERT_EQ(crc32c::Extend(seed, buf.data() + off, len),
              crc32c::ExtendPortable(seed, buf.data() + off, len))
        << "off=" << off << " len=" << len << " seed=" << seed;
  }
}

TEST(CoderTest, FixedWidthRoundTrip) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutU8(0xab);
  enc.PutU16(0x1234);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  Decoder dec(buf);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  ASSERT_TRUE(dec.GetU8(&u8));
  ASSERT_TRUE(dec.GetU16(&u16));
  ASSERT_TRUE(dec.GetU32(&u32));
  ASSERT_TRUE(dec.GetU64(&u64));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.empty());
}

TEST(CoderTest, VarintRoundTrip) {
  std::vector<uint64_t> values = {0,    1,    127,        128,
                                  300,  1u << 20,         (1ull << 35) + 7,
                                  ~0ull};
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  for (uint64_t v : values) enc.PutVarint(v);
  Decoder dec(buf);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(dec.GetVarint(&got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(dec.empty());
}

TEST(CoderTest, VarintSmallValuesAreOneByte) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutVarint(42);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(CoderTest, LengthPrefixedRoundTrip) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutLengthPrefixed("payload", 7);
  Decoder dec(buf);
  std::vector<uint8_t> out;
  ASSERT_TRUE(dec.GetLengthPrefixed(&out));
  EXPECT_EQ(std::string(out.begin(), out.end()), "payload");
}

TEST(CoderTest, DecoderRefusesShortReads) {
  std::vector<uint8_t> buf = {1, 2};
  Decoder dec(buf);
  uint32_t v;
  EXPECT_FALSE(dec.GetU32(&v));
  uint64_t big;
  EXPECT_FALSE(dec.GetU64(&big));
}

TEST(CoderTest, TruncatedVarintFails) {
  std::vector<uint8_t> buf = {0x80, 0x80};  // continuation with no end
  Decoder dec(buf);
  uint64_t v;
  EXPECT_FALSE(dec.GetVarint(&v));
}

TEST(BitmapTest, SetGetClear) {
  Bitmap bm(200);
  EXPECT_EQ(bm.Count(), 0u);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(199);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_TRUE(bm.Get(63));
  EXPECT_TRUE(bm.Get(64));
  EXPECT_TRUE(bm.Get(199));
  EXPECT_FALSE(bm.Get(1));
  EXPECT_EQ(bm.Count(), 4u);
  bm.Clear(63);
  EXPECT_FALSE(bm.Get(63));
  EXPECT_EQ(bm.Count(), 3u);
}

TEST(BitmapTest, FindFirstSet) {
  Bitmap bm(300);
  EXPECT_EQ(bm.FindFirstSet(), 300u);
  bm.Set(130);
  bm.Set(250);
  EXPECT_EQ(bm.FindFirstSet(), 130u);
  EXPECT_EQ(bm.FindFirstSet(131), 250u);
  EXPECT_EQ(bm.FindFirstSet(251), 300u);
}

TEST(BitmapTest, SetAllClearAll) {
  Bitmap bm(100);
  bm.SetAll();
  EXPECT_TRUE(bm.Get(99));
  bm.ClearAll();
  EXPECT_EQ(bm.FindFirstSet(), 100u);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t r = rng.Range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(SimClockTest, ChargesCosts) {
  CostModel model;
  model.disk_seek_ns = 1000;
  model.disk_transfer_ns_per_kib = 10;
  SimClock clock(model);
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.ChargeRandomIo(4096);
  EXPECT_EQ(clock.now_ns(), 1000u + 4 * 10);
  uint64_t before = clock.now_ns();
  clock.ChargeTrap();
  EXPECT_EQ(clock.now_ns() - before, model.trap_ns);
}

TEST(SimClockTest, SpanMeasuresElapsed) {
  SimClock clock;
  SimSpan span(&clock);
  clock.Advance(12345);
  EXPECT_EQ(span.elapsed_ns(), 12345u);
}

}  // namespace
}  // namespace sheap
