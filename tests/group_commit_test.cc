// Group-commit scheduler tests (paper §2.2.1, footnote 1): committing
// transactions join a commit queue and one batch-leader Force() makes the
// whole batch durable. The durability contract is unchanged — Commit
// returns OK only after the commit record is behind the durable barrier —
// and while queued Commit returns Busy, the simulator's "retry this
// low-level action" signal.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "core/stable_heap.h"
#include "workload/scheduler.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

using workload::Op;
using workload::Scheduler;

class GroupCommitTest : public ::testing::Test {
 protected:
  void Open(uint32_t max_batch = 16, uint64_t max_delay_ns = 2'000'000) {
    if (env_ == nullptr) env_ = std::make_unique<SimEnv>();
    StableHeapOptions opts;
    opts.stable_space_pages = 512;
    opts.volatile_space_pages = 256;
    opts.group_commit = true;
    opts.group_commit_options.max_batch = max_batch;
    opts.group_commit_options.max_delay_ns = max_delay_ns;
    auto heap = StableHeap::Open(env_.get(), opts);
    ASSERT_TRUE(heap.ok());
    heap_ = std::move(*heap);
  }

  /// Commit, piggybacking on an explicit ForceLog if queued. Unlike
  /// CommitSync this does not have to poll out a long deadline, so it is
  /// safe in tests that set max_delay_ns very high.
  void CommitViaForce(TxnId txn) {
    Status st = heap_->Commit(txn);
    if (st.IsBusy()) {
      SHEAP_CHECK_OK(heap_->ForceLog());
      st = heap_->Commit(txn);
    }
    SHEAP_CHECK_OK(st);
  }

  /// Commit a stable scalar array under root 0 with `slots` slots.
  /// Object handles are per-transaction, so callers re-fetch the array
  /// with GetRoot(t, 0) inside their own transactions.
  void SetupArray(uint64_t slots) {
    TxnId txn = *heap_->Begin();
    Ref arr = *heap_->AllocateStable(txn, kClassDataArray, slots);
    SHEAP_CHECK_OK(heap_->SetRoot(txn, 0, arr));
    CommitViaForce(txn);
  }

  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<StableHeap> heap_;
};

// Filling the batch closes it: the last committer acts as leader, performs
// the single force, and every earlier waiter's retry then succeeds.
TEST_F(GroupCommitTest, BatchClosesAtMaxBatchWithOneForce) {
  Open(/*max_batch=*/4, /*max_delay_ns=*/3'600'000'000'000ull);
  // Distinct objects so all four committers can be queued at once.
  {
    TxnId txn = *heap_->Begin();
    for (int i = 0; i < 4; ++i) {
      Ref arr = *heap_->AllocateStable(txn, kClassDataArray, 2);
      SHEAP_CHECK_OK(heap_->SetRoot(txn, i, arr));
    }
    CommitViaForce(txn);
  }

  std::vector<TxnId> txns;
  for (uint64_t i = 0; i < 3; ++i) {
    TxnId t = *heap_->Begin();
    Ref arr = *heap_->GetRoot(t, i);
    ASSERT_TRUE(heap_->WriteScalar(t, arr, 0, 100 + i).ok());
    EXPECT_TRUE(heap_->Commit(t).IsBusy()) << "waiter " << i;
    txns.push_back(t);
  }
  // Fourth committer fills the batch and leads the force.
  TxnId leader = *heap_->Begin();
  Ref arr = *heap_->GetRoot(leader, 3);
  ASSERT_TRUE(heap_->WriteScalar(leader, arr, 0, 103).ok());
  EXPECT_TRUE(heap_->Commit(leader).ok());
  // Every waiter completes on its next retry, with no further force.
  for (TxnId t : txns) EXPECT_TRUE(heap_->Commit(t).ok());

  const GroupCommitStats& gc = heap_->group_commit_stats();
  EXPECT_EQ(gc.enqueued, 5u);  // setup commit + 4
  EXPECT_EQ(gc.size_closes, 1u);
  EXPECT_EQ(gc.max_batch_seen, 4u);
  EXPECT_TRUE(heap_->commit_queue()->Empty());
}

// A lone committer must not wait forever: each Busy retry charges poll_ns
// of simulated time, so the max_delay_ns deadline arrives and the waiter
// becomes its own batch leader.
TEST_F(GroupCommitTest, LoneCommitterClosesAtDeadline) {
  Open(/*max_batch=*/64, /*max_delay_ns=*/2'000'000);
  SetupArray(4);

  TxnId t = *heap_->Begin();
  Ref arr = *heap_->GetRoot(t, 0);
  ASSERT_TRUE(heap_->WriteScalar(t, arr, 0, 7).ok());
  const uint64_t start_ns = env_->clock()->now_ns();
  int retries = 0;
  Status st = heap_->Commit(t);
  while (st.IsBusy()) {
    ASSERT_LT(++retries, 1000) << "commit never completed";
    st = heap_->Commit(t);
  }
  ASSERT_TRUE(st.ok());
  EXPECT_GT(retries, 0);  // it really did wait for the deadline
  EXPECT_GE(env_->clock()->now_ns() - start_ns, 2'000'000u);

  const GroupCommitStats& gc = heap_->group_commit_stats();
  EXPECT_GE(gc.deadline_closes, 1u);
  EXPECT_GE(gc.polls, static_cast<uint64_t>(retries - 1));
}

// An unrelated durability barrier (here an explicit ForceLog) completes
// queued waiters without a leader force: piggybacking.
TEST_F(GroupCommitTest, WaitersPiggybackOnUnrelatedForce) {
  Open(/*max_batch=*/64, /*max_delay_ns=*/3'600'000'000'000ull);
  SetupArray(4);
  const uint64_t batches_before = heap_->group_commit_stats().batches;

  TxnId t = *heap_->Begin();
  Ref arr = *heap_->GetRoot(t, 0);
  ASSERT_TRUE(heap_->WriteScalar(t, arr, 0, 42).ok());
  EXPECT_TRUE(heap_->Commit(t).IsBusy());
  ASSERT_TRUE(heap_->ForceLog().ok());
  EXPECT_TRUE(heap_->Commit(t).ok());

  const GroupCommitStats& gc = heap_->group_commit_stats();
  EXPECT_GE(gc.piggybacked, 1u);
  EXPECT_EQ(gc.batches, batches_before);  // no leader force was needed
}

// While queued the transaction is still kCommitting: its locks stay held,
// so conflicting writers keep getting Busy until the batch is durable.
TEST_F(GroupCommitTest, QueuedCommitHoldsLocksUntilDurable) {
  Open(/*max_batch=*/64, /*max_delay_ns=*/3'600'000'000'000ull);
  SetupArray(4);

  TxnId t1 = *heap_->Begin();
  Ref arr1 = *heap_->GetRoot(t1, 0);
  ASSERT_TRUE(heap_->WriteScalar(t1, arr1, 0, 1).ok());
  EXPECT_TRUE(heap_->Commit(t1).IsBusy());

  TxnId t2 = *heap_->Begin();
  Ref arr2 = *heap_->GetRoot(t2, 0);
  EXPECT_TRUE(heap_->WriteScalar(t2, arr2, 0, 2).IsBusy());  // t1's lock

  ASSERT_TRUE(heap_->ForceLog().ok());  // makes t1 durable, releases locks
  EXPECT_TRUE(heap_->Commit(t1).ok());
  EXPECT_TRUE(heap_->WriteScalar(t2, arr2, 0, 2).ok());
  CommitViaForce(t2);
}

// Durability contract under crash: every transaction whose Commit returned
// OK must survive a crash that loses all of main memory.
TEST_F(GroupCommitTest, CommittedBatchesSurviveCrash) {
  Open(/*max_batch=*/4, /*max_delay_ns=*/2'000'000);
  // One array per queue position: the 4 transactions of a wave touch
  // distinct objects, so they can all sit in the same batch.
  {
    TxnId txn = *heap_->Begin();
    for (int i = 0; i < 4; ++i) {
      Ref arr = *heap_->AllocateStable(txn, kClassDataArray, 4);
      SHEAP_CHECK_OK(heap_->SetRoot(txn, i, arr));
    }
    CommitViaForce(txn);
  }

  // Waves of 4 fill batches exactly; each wave is one leader force.
  for (uint64_t wave = 0; wave < 4; ++wave) {
    std::vector<TxnId> txns;
    for (uint64_t i = 0; i < 4; ++i) {
      TxnId t = *heap_->Begin();
      Ref arr = *heap_->GetRoot(t, i);
      ASSERT_TRUE(heap_->WriteScalar(t, arr, wave, 1000 + wave * 4 + i).ok());
      Status st = heap_->Commit(t);
      if (st.IsBusy()) {
        txns.push_back(t);
      } else {
        ASSERT_TRUE(st.ok());
      }
    }
    for (TxnId t : txns) ASSERT_TRUE(heap_->CommitSync(t).ok());
  }

  ASSERT_TRUE(
      heap_->SimulateCrash(CrashOptions{/*writeback_fraction=*/0.0,
                                        /*seed=*/1, /*max_steps=*/100})
          .ok());
  heap_.reset();
  Open(/*max_batch=*/4);

  TxnId t = *heap_->Begin();
  for (uint64_t i = 0; i < 4; ++i) {
    Ref arr = *heap_->GetRoot(t, i);
    for (uint64_t wave = 0; wave < 4; ++wave) {
      EXPECT_EQ(*heap_->ReadScalar(t, arr, wave), 1000 + wave * 4 + i)
          << "array " << i << " wave " << wave;
    }
  }
  ASSERT_TRUE(heap_->CommitSync(t).ok());
}

// The scripted scheduler drives Busy retries exactly like a transactional
// runtime: clients whose Commit is queued get re-run until their batch
// closes; everything still serializes.
TEST_F(GroupCommitTest, SchedulerInterleavesQueuedCommits) {
  Open(/*max_batch=*/8, /*max_delay_ns=*/2'000'000);
  SetupArray(8);

  Scheduler sched(heap_.get(), /*seed=*/1234);
  constexpr uint64_t kClients = 4;
  constexpr uint64_t kReps = 10;
  for (uint64_t c = 0; c < kClients; ++c) {
    std::vector<Op> script;
    for (uint64_t r = 0; r < kReps; ++r) {
      script.push_back(Op::Begin());
      script.push_back(Op::GetRoot(0, 0));
      script.push_back(Op::WriteScalar(0, c, r + 1));
      script.push_back(Op::Commit());
    }
    sched.AddClient(std::move(script));
  }
  ASSERT_TRUE(sched.Run().ok());
  EXPECT_EQ(sched.stats().clients_completed, kClients);
  EXPECT_GT(sched.stats().busy_retries, 0u);  // commits really queued

  const GroupCommitStats& gc = heap_->group_commit_stats();
  EXPECT_GE(gc.enqueued, kClients * kReps);
  // Batching must beat one force per commit.
  EXPECT_LT(gc.batches, gc.enqueued);

  TxnId t = *heap_->Begin();
  Ref root = *heap_->GetRoot(t, 0);
  for (uint64_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(*heap_->ReadScalar(t, root, c), kReps);
  }
  ASSERT_TRUE(heap_->CommitSync(t).ok());
}

// Real threads, one mutex serializing low-level actions (the paper's
// action-interleaving model): threads' Busy commit retries interleave, so
// batches form across threads. Run under -DSHEAP_SANITIZE=THREAD to let
// TSan check the serialization.
TEST_F(GroupCommitTest, ThreadsShareBatchesUnderActionMutex) {
  Open(/*max_batch=*/8, /*max_delay_ns=*/2'000'000);

  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 16;
  // One stable array per thread (distinct objects => no lock conflicts, so
  // commits from different threads really share batches).
  {
    TxnId txn = *heap_->Begin();
    for (int i = 0; i < kThreads; ++i) {
      Ref arr =
          *heap_->AllocateStable(txn, kClassDataArray, kCommitsPerThread);
      SHEAP_CHECK_OK(heap_->SetRoot(txn, i, arr));
    }
    SHEAP_CHECK_OK(heap_->CommitSync(txn));
  }

  Mutex action_mutex;
  std::atomic<bool> failed{false};

  auto worker = [&](uint64_t id) {
    for (int i = 0; i < kCommitsPerThread && !failed; ++i) {
      TxnId txn = kNoTxn;
      {
        MutexLock lock(&action_mutex);
        auto t = heap_->Begin();
        if (!t.ok()) { failed = true; return; }
        txn = *t;
        auto arr = heap_->GetRoot(txn, id);
        if (!arr.ok() ||
            !heap_->WriteScalar(txn, *arr, i, i + 1).ok()) {
          // Busy/conflict path: retry the slot; best-effort rollback
          // (audited discard).
          (void)heap_->Abort(txn);
          --i;
          continue;
        }
      }
      // Commit retry loop, releasing the mutex between actions so other
      // threads can join (and close) the batch.
      for (;;) {
        Status st;
        {
          MutexLock lock(&action_mutex);
          st = heap_->Commit(txn);
        }
        if (st.ok()) break;
        if (!st.IsBusy()) { failed = true; return; }
        std::this_thread::yield();
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed);

  MutexLock lock(&action_mutex);
  const GroupCommitStats& gc = heap_->group_commit_stats();
  EXPECT_GE(gc.enqueued, uint64_t{kThreads * kCommitsPerThread});
  TxnId t = *heap_->Begin();
  for (int id = 0; id < kThreads; ++id) {
    Ref arr = *heap_->GetRoot(t, id);
    for (int i = 0; i < kCommitsPerThread; ++i) {
      EXPECT_EQ(*heap_->ReadScalar(t, arr, i), uint64_t(i + 1))
          << "thread " << id << " slot " << i;
    }
  }
  ASSERT_TRUE(heap_->CommitSync(t).ok());
}

}  // namespace
}  // namespace sheap
