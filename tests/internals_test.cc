// Unit tests for internals not covered by their own suites: checkpoint
// payloads and retention, the stability side tables, pending
// materializations, the spec-heap oracle itself, and workload helpers.

#include <gtest/gtest.h>

#include <memory>

#include "core/stable_heap.h"
#include "recovery/checkpoint.h"
#include "stability/promotion.h"
#include "stability/stable_sets.h"
#include "workload/graph_gen.h"
#include "workload/spec_heap.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

TEST(RememberedSetTest, PutEraseOwnership) {
  RememberedSet set;
  set.Put(1000, 2, 7);
  set.Put(1000, 3, 7);
  set.Put(2000, 0, 8);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.Contains(1000, 2));
  EXPECT_EQ(set.OwnerOf(1000, 3), 7u);
  EXPECT_EQ(set.SlotsOf(7).size(), 2u);
  set.Erase(1000, 2);
  EXPECT_FALSE(set.Contains(1000, 2));
  set.EraseTxn(7);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Contains(2000, 0));
}

TEST(RememberedSetTest, RekeyMovesWholeObject) {
  RememberedSet set;
  set.Put(1000, 2, 7);
  set.Put(1000, 5, 7);
  set.RekeyObject(1000, 9000);
  EXPECT_FALSE(set.Contains(1000, 2));
  EXPECT_TRUE(set.Contains(9000, 2));
  EXPECT_TRUE(set.Contains(9000, 5));
}

TEST(LikelyStableSetTest, DependeeLifecycle) {
  LikelyStableSet ls;
  EXPECT_TRUE(ls.Add(100, 1));
  EXPECT_FALSE(ls.Add(100, 1));  // already tracked for txn 1
  EXPECT_TRUE(ls.Add(100, 2));
  EXPECT_TRUE(ls.DependsOn(100, 1));
  ls.EraseTxn(1);
  EXPECT_TRUE(ls.Contains(100));  // txn 2 still depends
  ls.EraseTxn(2);
  EXPECT_FALSE(ls.Contains(100));  // dropped with last dependee
}

TEST(LikelyStableSetTest, RekeyPreservesDependees) {
  LikelyStableSet ls;
  ls.Add(100, 1);
  ls.Add(100, 2);
  ls.Rekey(100, 500);
  EXPECT_FALSE(ls.Contains(100));
  EXPECT_EQ(ls.DepsOf(500).size(), 2u);
}

TEST(PendingMaterializationsTest, RedirectAndLookup) {
  PendingMaterializations pending;
  PendingMaterializations::Entry e;
  e.volatile_base = 5000;
  e.cls = 3;
  e.nslots = 4;  // object covers [9000, 9040)
  e.initial_lsn = 77;
  pending.Add(9000, e);

  // The header word is looked up, not redirected.
  ASSERT_NE(pending.Lookup(9000), nullptr);
  EXPECT_EQ(pending.Redirect(9000), kNullAddr);
  // Slots redirect with the right offset.
  EXPECT_EQ(pending.Redirect(9008), 5008u);
  EXPECT_EQ(pending.Redirect(9032), 5032u);
  // One past the end: not covered.
  EXPECT_EQ(pending.Redirect(9040), kNullAddr);
  EXPECT_EQ(pending.Redirect(8999), kNullAddr);
  EXPECT_EQ(pending.OldestLsn(), 77u);
  pending.Erase(9000);
  EXPECT_TRUE(pending.empty());
  EXPECT_EQ(pending.OldestLsn(), kInvalidLsn);
}

TEST(CheckpointRetentionTest, PreviousCheckpointSurvivesTruncation) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 64;
  opts.volatile_space_pages = 32;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  ASSERT_TRUE(heap->Checkpoint().ok());
  const Lsn first = heap->checkpoint_stats().last_checkpoint_lsn;
  ASSERT_TRUE(heap->Checkpoint().ok());
  // The newest checkpoint is unforced and may tear; truncation must keep
  // the previous one readable.
  EXPECT_LE(env.log()->truncated_prefix(), first - 1);
  LogReader reader(env.log());
  LogRecord rec;
  EXPECT_TRUE(reader.ReadAt(first, &rec).ok());
  EXPECT_EQ(rec.type, RecordType::kCheckpoint);
}

TEST(SpecHeapTest, ReadYourWritesAndIsolationFromCommitted) {
  TypeRegistry types;
  spec::SpecHeap heap(4);
  TxnId t1 = heap.Begin();
  auto oid = heap.Allocate(t1, kClassDataArray, 2);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(heap.WriteSlot(t1, *oid, 0, 42).ok());
  EXPECT_EQ(*heap.ReadSlot(t1, *oid, 0), 42u);  // read-your-writes
  EXPECT_EQ(heap.committed_objects(), 0u);      // nothing committed yet
  ASSERT_TRUE(heap.Commit(t1).ok());
  EXPECT_EQ(heap.committed_objects(), 1u);
}

TEST(SpecHeapTest, AbortDiscardsEverything) {
  spec::SpecHeap heap(4);
  TxnId t = heap.Begin();
  auto oid = heap.Allocate(t, kClassDataArray, 1);
  ASSERT_TRUE(heap.SetRoot(t, 0, *oid).ok());
  ASSERT_TRUE(heap.Abort(t).ok());
  EXPECT_EQ(heap.committed_objects(), 0u);
  TxnId t2 = heap.Begin();
  EXPECT_EQ(*heap.GetRoot(t2, 0), spec::kNullOid);
}

TEST(SpecHeapTest, CrashPrunesUnreachableState) {
  TypeRegistry types;
  spec::SpecHeap heap(4);
  TxnId t = heap.Begin();
  auto kept = heap.Allocate(t, kClassPtrArray, 1);
  auto child = heap.Allocate(t, kClassPtrArray, 1);
  auto dropped = heap.Allocate(t, kClassPtrArray, 1);
  ASSERT_TRUE(heap.WriteSlot(t, *kept, 0, *child).ok());
  ASSERT_TRUE(heap.SetRoot(t, 0, *kept).ok());
  ASSERT_TRUE(heap.Commit(t).ok());
  (void)dropped;
  EXPECT_EQ(heap.committed_objects(), 3u);
  heap.Crash(types);
  // `dropped` was committed but unreachable: volatile, lost at the crash.
  EXPECT_EQ(heap.committed_objects(), 2u);
  EXPECT_NE(heap.Committed(*kept), nullptr);
  EXPECT_NE(heap.Committed(*child), nullptr);
  EXPECT_EQ(heap.Committed(*dropped), nullptr);
}

TEST(SpecHeapTest, ActiveTransactionsDieAtCrash) {
  TypeRegistry types;
  spec::SpecHeap heap(4);
  TxnId setup = heap.Begin();
  auto obj = heap.Allocate(setup, kClassDataArray, 1);
  ASSERT_TRUE(heap.WriteSlot(setup, *obj, 0, 5).ok());
  ASSERT_TRUE(heap.SetRoot(setup, 0, *obj).ok());
  ASSERT_TRUE(heap.Commit(setup).ok());

  TxnId t = heap.Begin();
  ASSERT_TRUE(heap.WriteSlot(t, *obj, 0, 99).ok());
  heap.Crash(types);
  TxnId t2 = heap.Begin();
  EXPECT_EQ(*heap.ReadSlot(t2, *obj, 0), 5u);  // uncommitted write gone
}

TEST(GraphChecksumTest, DetectsScalarMutation) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 64;
  opts.volatile_space_pages = 32;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  auto cls = *workload::RegisterNodeClass(heap.get(), 2);
  TxnId t = *heap->Begin();
  Ref root = *workload::BuildTree(heap.get(), t, cls, 2);
  uint64_t before = *workload::GraphChecksum(heap.get(), t, root);
  ASSERT_TRUE(heap->WriteScalar(t, root, 0, 999999).ok());
  uint64_t after = *workload::GraphChecksum(heap.get(), t, root);
  EXPECT_NE(before, after);
  ASSERT_TRUE(heap->Abort(t).ok());
}

TEST(GraphChecksumTest, DistinguishesSharingFromCopies) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 64;
  opts.volatile_space_pages = 32;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  auto cls = *workload::RegisterNodeClass(heap.get(), 2);
  TxnId t = *heap->Begin();
  // Diamond: a -> {s, s} (shared child).
  Ref a = *heap->Allocate(t, cls.id, cls.nslots);
  Ref s = *heap->Allocate(t, cls.id, cls.nslots);
  ASSERT_TRUE(heap->WriteScalar(t, s, 0, 5).ok());
  ASSERT_TRUE(heap->WriteRef(t, a, 1, s).ok());
  ASSERT_TRUE(heap->WriteRef(t, a, 2, s).ok());
  uint64_t shared = *workload::GraphChecksum(heap.get(), t, a);
  // Copies: b -> {c1, c2} (identical but distinct children).
  Ref b = *heap->Allocate(t, cls.id, cls.nslots);
  Ref c1 = *heap->Allocate(t, cls.id, cls.nslots);
  Ref c2 = *heap->Allocate(t, cls.id, cls.nslots);
  ASSERT_TRUE(heap->WriteScalar(t, c1, 0, 5).ok());
  ASSERT_TRUE(heap->WriteScalar(t, c2, 0, 5).ok());
  ASSERT_TRUE(heap->WriteRef(t, b, 1, c1).ok());
  ASSERT_TRUE(heap->WriteRef(t, b, 2, c2).ok());
  uint64_t copies = *workload::GraphChecksum(heap.get(), t, b);
  EXPECT_NE(shared, copies);
  ASSERT_TRUE(heap->Abort(t).ok());
}

TEST(BankWorkloadTest, InsufficientFundsBounce) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 128;
  opts.volatile_space_pages = 64;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  workload::Bank bank(heap.get(), 0);
  ASSERT_TRUE(bank.Setup(4, 10).ok());
  EXPECT_TRUE(bank.Transfer(0, 1, 100).IsInvalidArgument());
  EXPECT_EQ(*bank.BalanceOf(0), 10u);
  EXPECT_EQ(*bank.TotalBalance(), 40u);
}

TEST(HandleApiTest, ReleaseRefDropsOnlyThatHandle) {
  SimEnv env;
  StableHeapOptions opts;
  opts.stable_space_pages = 64;
  opts.volatile_space_pages = 32;
  auto heap = std::move(*StableHeap::Open(&env, opts));
  TxnId t = *heap->Begin();
  Ref a = *heap->Allocate(t, kClassDataArray, 1);
  Ref b = *heap->Allocate(t, kClassDataArray, 1);
  ASSERT_TRUE(heap->ReleaseRef(t, a).ok());
  EXPECT_TRUE(heap->ReadScalar(t, a, 0).status().IsInvalidArgument());
  EXPECT_TRUE(heap->ReadScalar(t, b, 0).ok());
  // Releasing someone else's handle is rejected.
  TxnId t2 = *heap->Begin();
  EXPECT_TRUE(heap->ReleaseRef(t2, b).IsInvalidArgument());
  ASSERT_TRUE(heap->Commit(t).ok());
  ASSERT_TRUE(heap->Commit(t2).ok());
}

TEST(ReopenGeometryTest, PersistedOptionsWinOverCallerOptions) {
  auto env = std::make_unique<SimEnv>();
  StableHeapOptions opts;
  opts.stable_space_pages = 128;
  opts.volatile_space_pages = 64;
  opts.root_slots = 16;
  opts.divided_heap = true;
  {
    auto heap = std::move(*StableHeap::Open(env.get(), opts));
    ASSERT_TRUE(heap->SimulateCrash({}).ok());
  }
  // Reopen with different (wrong) geometry: the format record wins.
  StableHeapOptions other;
  other.stable_space_pages = 9999;
  other.root_slots = 3;
  other.divided_heap = false;
  auto heap = std::move(*StableHeap::Open(env.get(), other));
  EXPECT_EQ(heap->options().root_slots, 16u);
  EXPECT_TRUE(heap->options().divided_heap);
  EXPECT_EQ(heap->options().stable_space_pages, 128u);
}

}  // namespace
}  // namespace sheap
