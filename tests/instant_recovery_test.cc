// Instant recovery (StableHeapOptions::instant_recovery, see
// src/recovery/instant_redo.h): Open returns right after analysis + undo
// with the redo plan parked behind a per-page gate; pages are redone on
// demand at first touch and in cooperative drain batches at action
// boundaries. The contract tested here:
//
//   * the heap opens before any planned redo work has run (time-to-open is
//     independent of the redo backlog),
//   * the recovered machine state — disk page bytes + page LSNs, the space
//     table, the UTT, the in-doubt set — is byte-identical to offline
//     recovery for *every* first-touch order and drain thread count (the
//     log may differ: fetch/end-write records depend on access order),
//   * a crash mid-drain or mid-on-demand-redo recovers, offline, to the
//     same state as if the gate had never existed, and
//   * a transient-I/O storm during the drain surfaces retries and typed
//     errors (latency) but never changes the converged state (correctness).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/stable_heap.h"
#include "fault/fault_injector.h"
#include "util/coder.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

namespace sheap {
namespace {

StableHeapOptions BaseOptions() {
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 128;
  opts.divided_heap = false;
  opts.buffer_pool_frames = 4096;
  return opts;
}

StableHeapOptions InstantOptions(uint32_t drain_threads) {
  StableHeapOptions opts = BaseOptions();
  opts.instant_recovery = true;
  opts.instant_drain_threads = drain_threads;
  opts.instant_drain_pages = 2;  // small batches: many cooperative steps
  return opts;
}

/// Deterministic crashed image (same recipe as recovery_parallel_test): a
/// directory of page-sized objects, full writeback + checkpoint, updates
/// spanning many pages, an uncommitted loser, optionally a mid-flight
/// incremental collection — then a partial-writeback torn-tail crash.
/// `midflight_gc` is off for the first-touch-order tests: with a
/// collection in progress, post-open reads would copy objects through the
/// read barrier and the state would (correctly) depend on what was read.
std::unique_ptr<SimEnv> BuildCrashedEnv(const StableHeapOptions& opts,
                                        bool midflight_gc) {
  auto env = std::make_unique<SimEnv>();
  auto opened = StableHeap::Open(env.get(), opts);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<StableHeap> heap = std::move(*opened);

  constexpr uint64_t kObjects = 48;
  const uint64_t slots = kPageSizeBytes / kWordSizeBytes - 1;
  ClassId big = *heap->RegisterClass(std::vector<bool>(slots, false));
  ClassId dir = *heap->RegisterClass(std::vector<bool>(kObjects, true));

  TxnId setup = *heap->Begin();
  Ref dref = *heap->AllocateStable(setup, dir, kObjects);
  EXPECT_TRUE(heap->SetRoot(setup, 0, dref).ok());
  for (uint64_t i = 0; i < kObjects; ++i) {
    Ref obj = *heap->AllocateStable(setup, big, slots);
    EXPECT_TRUE(heap->WriteRef(setup, dref, i, obj).ok());
  }
  EXPECT_TRUE(heap->Commit(setup).ok());
  EXPECT_TRUE(heap->WriteBackPages(1.0, 5).ok());
  EXPECT_TRUE(heap->Checkpoint().ok());

  // Redo work on many distinct pages.
  TxnId txn = *heap->Begin();
  Ref d2 = *heap->GetRoot(txn, 0);
  for (uint64_t i = 0; i < kObjects; ++i) {
    Ref obj = *heap->ReadRef(txn, d2, i);
    for (uint64_t k = 0; k < 4; ++k) {
      EXPECT_TRUE(heap->WriteScalar(txn, obj, (i + k) % slots, i + k).ok());
    }
  }
  EXPECT_TRUE(heap->Commit(txn).ok());

  // A loser for undo to abort: its CLR touches a planned page, so undo
  // itself goes through the gate during Open.
  TxnId loser = *heap->Begin();
  Ref d3 = *heap->GetRoot(loser, 0);
  Ref victim = *heap->ReadRef(loser, d3, 7);
  EXPECT_TRUE(heap->WriteScalar(loser, victim, 3, 9999).ok());

  if (midflight_gc) {
    EXPECT_TRUE(heap->StartStableCollection().ok());
    EXPECT_TRUE(heap->StepStableCollection(6).ok());
  }

  EXPECT_TRUE(heap->SimulateCrash(CrashOptions{0.5, 23, 96}).ok());
  heap.reset();
  return env;
}

/// The recovered machine state compared across recovery modes. The log is
/// deliberately absent: kPageFetch / kEndWrite records depend on the
/// access order, which is exactly what instant recovery varies.
struct HeapState {
  RecoveryStats stats;
  std::vector<PageImage> pages;  // every page slot on the sim disk
  std::vector<uint8_t> spaces_enc;
  std::vector<uint8_t> utt_enc;
  std::vector<std::pair<TxnId, uint64_t>> in_doubt;
};

/// Snapshot stats + tables, flush every frame, and read the disk back.
HeapState FinishAndSnapshot(SimEnv* env, StableHeap* heap,
                            const StableHeapOptions& opts) {
  HeapState s;
  s.stats = heap->recovery_stats();
  s.in_doubt = heap->InDoubtTransactions();
  Encoder spaces_enc(&s.spaces_enc);
  heap->spaces()->EncodeTo(&spaces_enc);
  Encoder utt_enc(&s.utt_enc);
  heap->utt()->EncodeTo(&utt_enc);
  EXPECT_TRUE(heap->pool()->FlushAll().ok());
  const uint64_t npages =
      (opts.stable_space_pages + opts.volatile_space_pages) * 2 + 64;
  for (PageId pid = 0; pid < npages; ++pid) {
    PageImage img;
    EXPECT_TRUE(env->disk()->ReadPage(pid, &img).ok());
    s.pages.push_back(img);
  }
  return s;
}

HeapState RecoverOffline(bool midflight_gc) {
  StableHeapOptions opts = BaseOptions();
  std::unique_ptr<SimEnv> env = BuildCrashedEnv(opts, midflight_gc);
  auto opened = StableHeap::Open(env.get(), opts);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<StableHeap> heap = std::move(*opened);
  EXPECT_EQ(heap->recovery_stats().outcome, RecoveryOutcome::kComplete);
  return FinishAndSnapshot(env.get(), heap.get(), opts);
}

/// First-touch orders over the gate's pending set.
enum class Touch {
  kNone,        // pure drain
  kAscending,   // every pending page, low to high
  kDescending,  // every pending page, high to low
  kShuffled,    // seeded permutation of a prefix of the pending set
};

/// Pin/Unpin each page (the raw fetch path the gate protects), optionally
/// interleaving empty transactions whose Begin/Commit run drain steps.
void TouchPages(StableHeap* heap, const std::vector<PageId>& order,
                bool interleave) {
  uint64_t n = 0;
  for (PageId pid : order) {
    auto frame = heap->pool()->Pin(pid);
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    if (frame.ok()) heap->pool()->Unpin(pid);
    if (interleave && (++n % 8 == 0)) {
      auto txn = heap->Begin();
      EXPECT_TRUE(txn.ok()) << txn.status().ToString();
      if (txn.ok()) {
        EXPECT_TRUE(heap->Commit(*txn).ok());
      }
    }
  }
}

HeapState RecoverInstant(bool midflight_gc, uint32_t drain_threads,
                         Touch touch, bool interleave = false,
                         uint32_t seed = 0) {
  StableHeapOptions opts = InstantOptions(drain_threads);
  std::unique_ptr<SimEnv> env = BuildCrashedEnv(opts, midflight_gc);
  auto opened = StableHeap::Open(env.get(), opts);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<StableHeap> heap = std::move(*opened);
  EXPECT_EQ(heap->recovery_stats().outcome,
            RecoveryOutcome::kOpenPendingRedo);

  std::vector<PageId> order;
  for (const auto& [pid, rec_lsn] : heap->instant_redo()->PendingDirtyPages()) {
    order.push_back(pid);
  }
  EXPECT_FALSE(order.empty());
  switch (touch) {
    case Touch::kNone:
      order.clear();
      break;
    case Touch::kAscending:
      break;
    case Touch::kDescending:
      std::reverse(order.begin(), order.end());
      break;
    case Touch::kShuffled: {
      std::mt19937 rng(seed);
      std::shuffle(order.begin(), order.end(), rng);
      // A seed-dependent prefix: the rest is left to the drain.
      order.resize(1 + order.size() * (seed % 5) / 5);
      break;
    }
  }
  TouchPages(heap.get(), order, interleave);

  EXPECT_TRUE(heap->DrainInstantRecovery().ok());
  HeapState s = FinishAndSnapshot(env.get(), heap.get(), opts);
  EXPECT_EQ(s.stats.outcome, RecoveryOutcome::kInstantComplete);
  EXPECT_EQ(s.stats.pending_pages, 0u);
  return s;
}

/// Machine-state equality (pages, tables, in-doubt set) across modes.
void ExpectSameState(const HeapState& a, const HeapState& b,
                     const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.in_doubt, b.in_doubt);
  EXPECT_EQ(a.spaces_enc, b.spaces_enc) << "space table diverged";
  EXPECT_EQ(a.utt_enc, b.utt_enc) << "UTT diverged";
  ASSERT_EQ(a.pages.size(), b.pages.size());
  for (size_t i = 0; i < a.pages.size(); ++i) {
    EXPECT_EQ(a.pages[i].page_lsn, b.pages[i].page_lsn) << "page " << i;
    ASSERT_EQ(0, std::memcmp(a.pages[i].data.data(), b.pages[i].data.data(),
                             kPageSizeBytes))
        << "page " << i << " bytes diverged";
  }
}

/// Recovery *work* equality: instant recovery must do exactly the offline
/// record set, just later.
void ExpectSameRecoveryWork(const HeapState& offline,
                            const HeapState& instant) {
  EXPECT_EQ(offline.stats.analysis_records, instant.stats.analysis_records);
  EXPECT_EQ(offline.stats.redo_records_seen, instant.stats.redo_records_seen);
  EXPECT_EQ(offline.stats.redo_records_applied,
            instant.stats.redo_records_applied);
  EXPECT_EQ(offline.stats.undo_records, instant.stats.undo_records);
  EXPECT_EQ(offline.stats.clrs_written, instant.stats.clrs_written);
  EXPECT_EQ(offline.stats.losers_aborted, instant.stats.losers_aborted);
  EXPECT_EQ(offline.stats.log_bytes_read, instant.stats.log_bytes_read);
}

TEST(InstantRecoveryTest, OpensBeforeRedoCompletes) {
  StableHeapOptions opts = InstantOptions(1);
  std::unique_ptr<SimEnv> env = BuildCrashedEnv(opts, /*midflight_gc=*/true);
  auto opened = StableHeap::Open(env.get(), opts);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<StableHeap> heap = std::move(*opened);

  // Open returned with the backlog parked, nothing applied yet beyond what
  // undo's own touches forced through the gate.
  RecoveryStats at_open = heap->recovery_stats();
  EXPECT_EQ(at_open.outcome, RecoveryOutcome::kOpenPendingRedo);
  EXPECT_GT(at_open.pending_pages, 0u);
  EXPECT_EQ(at_open.drained_pages, 0u);
  EXPECT_GT(at_open.redo_records_seen, 0u);

  // Offline recovery of the same image pays the full redo inside Open.
  HeapState offline = RecoverOffline(/*midflight_gc=*/true);
  EXPECT_LT(at_open.time_to_open_ns, offline.stats.time_to_open_ns);

  // The backlog drains to completion and lands on the offline record set.
  ASSERT_TRUE(heap->DrainInstantRecovery().ok());
  RecoveryStats done = heap->recovery_stats();
  EXPECT_EQ(done.outcome, RecoveryOutcome::kInstantComplete);
  EXPECT_EQ(done.pending_pages, 0u);
  EXPECT_GT(done.ondemand_pages + done.drained_pages, 0u);
  EXPECT_EQ(done.redo_records_applied, offline.stats.redo_records_applied);
}

TEST(InstantRecoveryTest, ThreeWayByteDeterminism) {
  // Offline vs adversarial first-touch orders vs drain thread counts: the
  // recovered machine state is byte-identical in every combination.
  HeapState offline = RecoverOffline(/*midflight_gc=*/false);
  EXPECT_GT(offline.stats.redo_records_applied, 0u);
  EXPECT_GT(offline.stats.losers_aborted, 0u);

  struct Arm {
    uint32_t threads;
    Touch touch;
    bool interleave;
    const char* name;
  };
  const Arm arms[] = {
      {1, Touch::kNone, false, "drain1"},
      {2, Touch::kNone, false, "drain2"},
      {4, Touch::kNone, false, "drain4"},
      {1, Touch::kAscending, false, "ascending"},
      {2, Touch::kDescending, false, "descending"},
      {4, Touch::kDescending, true, "descending+interleaved"},
  };
  for (const Arm& arm : arms) {
    HeapState instant =
        RecoverInstant(/*midflight_gc=*/false, arm.threads, arm.touch,
                       arm.interleave);
    ExpectSameState(offline, instant, arm.name);
    ExpectSameRecoveryWork(offline, instant);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(InstantRecoveryTest, MidFlightGcDrainMatchesOffline) {
  // The crashed image holds an interrupted collection: its copy/scan
  // records redo through the gate exactly as offline.
  HeapState offline = RecoverOffline(/*midflight_gc=*/true);
  for (uint32_t threads : {1u, 2u, 4u}) {
    HeapState instant =
        RecoverInstant(/*midflight_gc=*/true, threads, Touch::kNone);
    ExpectSameState(offline, instant,
                    "gc drain threads=" + std::to_string(threads));
    ExpectSameRecoveryWork(offline, instant);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(InstantRecoveryTest, RandomFirstTouchOrdersConverge) {
  // Property: any seeded random first-touch order (a shuffled prefix of
  // the pending set, interleaved with drain steps) converges to the
  // offline-recovery byte-identical state.
  HeapState offline = RecoverOffline(/*midflight_gc=*/false);
  for (uint32_t seed = 1; seed <= 6; ++seed) {
    HeapState instant = RecoverInstant(/*midflight_gc=*/false,
                                       /*drain_threads=*/1 + seed % 4,
                                       Touch::kShuffled,
                                       /*interleave=*/seed % 2 == 0, seed);
    ExpectSameState(offline, instant, "seed=" + std::to_string(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

#if SHEAP_FAULT_INJECTION

TEST(InstantRecoveryTest, ReopenAfterCrashMidDrainMatchesOffline) {
  HeapState offline = RecoverOffline(/*midflight_gc=*/true);
  for (uint64_t hit : {uint64_t{1}, uint64_t{5}}) {
    SCOPED_TRACE("drain crash hit=" + std::to_string(hit));
    StableHeapOptions opts = InstantOptions(2);
    std::unique_ptr<SimEnv> env = BuildCrashedEnv(opts, /*midflight_gc=*/true);

    FaultSpec spec;
    spec.point = "recovery.drain.step";
    spec.kind = FaultKind::kCrash;
    spec.hit = hit;
    env->faults()->Arm(spec);

    auto opened = StableHeap::Open(env.get(), opts);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<StableHeap> heap = std::move(*opened);

    // Drive cooperative drain steps until the armed crash fires.
    Status st = Status::OK();
    for (int i = 0; i < 1000 && st.ok(); ++i) {
      auto txn = heap->Begin();
      st = txn.ok() ? heap->Commit(*txn) : txn.status();
    }
    ASSERT_TRUE(st.IsCrashed()) << st.ToString();
    EXPECT_EQ(env->faults()->crash_point(), "recovery.drain.step");
    EXPECT_EQ(heap->recovery_stats().outcome, RecoveryOutcome::kAborted);

    // Finalize the second crash (partial write-back of redone frames) and
    // recover offline: same state as if the gate had never existed.
    ASSERT_TRUE(heap->SimulateCrash(CrashOptions{0.5, 7 + hit, 0}).ok());
    heap.reset();

    StableHeapOptions plain = BaseOptions();
    auto reopened = StableHeap::Open(env.get(), plain);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    std::unique_ptr<StableHeap> heap2 = std::move(*reopened);
    HeapState recovered = FinishAndSnapshot(env.get(), heap2.get(), plain);
    ExpectSameState(offline, recovered, "after mid-drain crash");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(InstantRecoveryTest, CrashDuringOnDemandRedoRecovers) {
  // The loser's CLR pins a planned page, so undo inside Open reaches the
  // on-demand window; a crash there aborts Open itself, and a plain reopen
  // converges to the offline state.
  HeapState offline = RecoverOffline(/*midflight_gc=*/true);
  StableHeapOptions opts = InstantOptions(2);
  std::unique_ptr<SimEnv> env = BuildCrashedEnv(opts, /*midflight_gc=*/true);

  FaultSpec spec;
  spec.point = "recovery.ondemand.page_redo";
  spec.kind = FaultKind::kCrash;
  spec.hit = 1;
  env->faults()->Arm(spec);

  auto opened = StableHeap::Open(env.get(), opts);
  if (opened.ok()) {
    // Undo did not touch a pending page; force a first touch instead.
    std::unique_ptr<StableHeap> heap = std::move(*opened);
    auto pending = heap->instant_redo()->PendingDirtyPages();
    ASSERT_FALSE(pending.empty());
    auto frame = heap->pool()->Pin(pending.front().first);
    ASSERT_FALSE(frame.ok());
    ASSERT_TRUE(frame.status().IsCrashed()) << frame.status().ToString();
    EXPECT_EQ(heap->recovery_stats().outcome, RecoveryOutcome::kAborted);
    ASSERT_TRUE(heap->SimulateCrash(CrashOptions{0.5, 11, 0}).ok());
    heap.reset();
  } else {
    ASSERT_TRUE(opened.status().IsCrashed()) << opened.status().ToString();
  }
  EXPECT_EQ(env->faults()->crash_point(), "recovery.ondemand.page_redo");

  StableHeapOptions plain = BaseOptions();
  auto reopened = StableHeap::Open(env.get(), plain);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<StableHeap> heap2 = std::move(*reopened);
  HeapState recovered = FinishAndSnapshot(env.get(), heap2.get(), plain);
  ExpectSameState(offline, recovered, "after on-demand crash");
}

TEST(InstantRecoveryTest, TransientStormDuringDrainDegradesOnlyLatency) {
  HeapState offline = RecoverOffline(/*midflight_gc=*/true);

  StableHeapOptions opts = InstantOptions(2);
  std::unique_ptr<SimEnv> env = BuildCrashedEnv(opts, /*midflight_gc=*/true);
  auto opened = StableHeap::Open(env.get(), opts);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<StableHeap> heap = std::move(*opened);

  // Storm: a burst of transient read errors long enough to exhaust a
  // fetch's retry budget (kMaxIoRetries) and surface a typed IOError even
  // when two drain workers split the burst between their retry loops.
  uint64_t reads = 0;
  for (const auto& [site, hits] : env->faults()->IoSites()) {
    if (site == "disk.read") reads = hits;
  }
  FaultSpec storm;
  storm.point = "disk.read";
  storm.kind = FaultKind::kTransientError;
  storm.hit = reads + 1;
  storm.count = 2 * (kMaxIoRetries + 1);
  env->faults()->Arm(storm);

  const FaultStats before = env->faults()->stats();
  uint64_t surfaced = 0;
  Status st;
  do {
    st = heap->DrainInstantRecovery();
    if (!st.ok()) {
      ASSERT_TRUE(st.IsIOError()) << st.ToString();
      ++surfaced;
      ASSERT_LT(surfaced, 100u) << "storm never cleared";
    }
  } while (!st.ok());
  const FaultStats after = env->faults()->stats();

  // Latency degraded: retries burned, at least one budget exhausted, the
  // failed batch went back behind the gate and was retried.
  EXPECT_GE(surfaced, 1u);
  EXPECT_GT(after.retried, before.retried);
  EXPECT_GT(after.exhausted, before.exhausted);

  // Correctness untouched: the converged state is the offline state.
  EXPECT_EQ(heap->recovery_stats().outcome,
            RecoveryOutcome::kInstantComplete);
  HeapState instant = FinishAndSnapshot(env.get(), heap.get(), opts);
  ExpectSameState(offline, instant, "after transient storm");
}

#endif  // SHEAP_FAULT_INJECTION

}  // namespace
}  // namespace sheap
