// Unit tests for the storage substrate: simulated disk, stable log device,
// and the buffer pool's pinning / WAL-constraint / write-back behaviour.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/sim_disk.h"
#include "storage/sim_env.h"
#include "storage/sim_log_device.h"

namespace sheap {
namespace {

TEST(SimDiskTest, UnwrittenPagesReadZero) {
  SimClock clock;
  SimDisk disk(&clock);
  PageImage img;
  ASSERT_TRUE(disk.ReadPage(42, &img).ok());
  EXPECT_EQ(img.page_lsn, kInvalidLsn);
  for (uint32_t w = 0; w < kWordsPerPage; ++w) EXPECT_EQ(img.ReadWord(w), 0u);
}

TEST(SimDiskTest, WriteThenReadRoundTrips) {
  SimClock clock;
  SimDisk disk(&clock);
  PageImage img;
  img.WriteWord(5, 0xdead);
  img.page_lsn = 77;
  ASSERT_TRUE(disk.WritePage(3, img).ok());
  PageImage out;
  ASSERT_TRUE(disk.ReadPage(3, &out).ok());
  EXPECT_EQ(out.ReadWord(5), 0xdeadu);
  EXPECT_EQ(out.page_lsn, 77u);
}

TEST(SimDiskTest, DropPageZeroes) {
  SimClock clock;
  SimDisk disk(&clock);
  PageImage img;
  img.WriteWord(0, 1);
  ASSERT_TRUE(disk.WritePage(9, img).ok());
  disk.DropPage(9);
  PageImage out;
  ASSERT_TRUE(disk.ReadPage(9, &out).ok());
  EXPECT_EQ(out.ReadWord(0), 0u);
}

TEST(SimDiskTest, ChargesSimulatedTime) {
  SimClock clock;
  SimDisk disk(&clock);
  PageImage img;
  ASSERT_TRUE(disk.WritePage(0, img).ok());
  EXPECT_GT(clock.now_ns(), 0u);
  EXPECT_EQ(disk.stats().page_writes, 1u);
}

TEST(SimLogDeviceTest, AppendAndReadAt) {
  SimClock clock;
  SimLogDevice log(&clock);
  const uint8_t data[] = {1, 2, 3, 4, 5};
  ASSERT_TRUE(log.Append(data, 5).ok());
  uint8_t out[5];
  ASSERT_TRUE(log.ReadAt(0, 5, out).ok());
  EXPECT_EQ(out[4], 5);
  EXPECT_TRUE(log.ReadAt(3, 5, out).IsCorruption());  // past end
}

TEST(SimLogDeviceTest, TearTailRespectsDurableBarrier) {
  SimClock clock;
  SimLogDevice log(&clock);
  uint8_t bytes[10] = {};
  ASSERT_TRUE(log.Append(bytes, 10).ok());
  log.MarkDurableBarrier();
  ASSERT_TRUE(log.Append(bytes, 6).ok());
  log.TearTail(100);  // wants everything; clamped at the barrier
  EXPECT_EQ(log.size(), 10u);
}

TEST(SimLogDeviceTest, TruncatePrefixBlocksReads) {
  SimClock clock;
  SimLogDevice log(&clock);
  uint8_t bytes[16] = {};
  ASSERT_TRUE(log.Append(bytes, 16).ok());
  log.TruncatePrefix(8);
  uint8_t out[4];
  EXPECT_TRUE(log.ReadAt(0, 4, out).IsCorruption());
  EXPECT_TRUE(log.ReadAt(8, 4, out).ok());
}

TEST(SimLogDeviceTest, MasterLsnPersists) {
  SimClock clock;
  SimLogDevice log(&clock);
  EXPECT_EQ(log.master_lsn(), kInvalidLsn);
  log.SetMasterLsn(123);
  EXPECT_EQ(log.master_lsn(), 123u);
}

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(&clock_) {}

  BufferPool MakePool(size_t capacity) {
    BufferPool::Hooks hooks;
    hooks.flush_log_to = [this](Lsn lsn) {
      flushed_to_ = std::max(flushed_to_, lsn);
      return Status::OK();
    };
    hooks.on_page_fetch = [this](PageId p) { fetches_.push_back(p); };
    hooks.on_end_write = [this](PageId p) { end_writes_.push_back(p); };
    return BufferPool(&disk_, capacity, hooks);
  }

  SimClock clock_;
  SimDisk disk_;
  Lsn flushed_to_ = 0;
  std::vector<PageId> fetches_;
  std::vector<PageId> end_writes_;
};

TEST_F(BufferPoolTest, PinFetchesAndNotifies) {
  BufferPool pool = MakePool(4);
  auto frame = pool.Pin(7);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(fetches_, std::vector<PageId>{7});
  EXPECT_EQ(pool.PinCount(7), 1u);
  pool.Unpin(7);
  EXPECT_EQ(pool.PinCount(7), 0u);
}

TEST_F(BufferPoolTest, PinsNest) {
  BufferPool pool = MakePool(4);
  ASSERT_TRUE(pool.Pin(1).ok());
  ASSERT_TRUE(pool.Pin(1).ok());
  EXPECT_EQ(pool.PinCount(1), 2u);
  EXPECT_EQ(fetches_.size(), 1u);  // second pin is a hit
  pool.Unpin(1);
  pool.Unpin(1);
}

TEST_F(BufferPoolTest, WriteBackEnforcesWalConstraint) {
  BufferPool pool = MakePool(4);
  auto frame = pool.Pin(2);
  ASSERT_TRUE(frame.ok());
  (*frame)->WriteWord(0, 99);
  pool.MarkDirty(2, /*lsn=*/500);
  pool.Unpin(2);
  ASSERT_TRUE(pool.WriteBack(2).ok());
  // The WAL hook must have been asked to flush through the page LSN
  // before the page reached disk (Invariant I2).
  EXPECT_GE(flushed_to_, 500u);
  EXPECT_EQ(end_writes_, std::vector<PageId>{2});
  PageImage img;
  ASSERT_TRUE(disk_.ReadPage(2, &img).ok());
  EXPECT_EQ(img.ReadWord(0), 99u);
  EXPECT_EQ(img.page_lsn, 500u);
}

TEST_F(BufferPoolTest, WriteBackRefusesPinnedPages) {
  BufferPool pool = MakePool(4);
  auto frame = pool.Pin(3);
  ASSERT_TRUE(frame.ok());
  (*frame)->WriteWord(0, 1);
  pool.MarkDirty(3, 1);
  EXPECT_TRUE(pool.WriteBack(3).IsBusy());
  pool.Unpin(3);
  EXPECT_TRUE(pool.WriteBack(3).ok());
}

TEST_F(BufferPoolTest, EvictionWritesDirtyVictims) {
  BufferPool pool = MakePool(2);
  for (PageId p = 0; p < 2; ++p) {
    auto frame = pool.Pin(p);
    ASSERT_TRUE(frame.ok());
    (*frame)->WriteWord(0, p + 100);
    pool.MarkDirty(p, p + 1);
    pool.Unpin(p);
  }
  // Third page forces an eviction of the LRU (page 0), which is dirty.
  ASSERT_TRUE(pool.Pin(5).ok());
  pool.Unpin(5);
  EXPECT_FALSE(pool.IsResident(0));
  PageImage img;
  ASSERT_TRUE(disk_.ReadPage(0, &img).ok());
  EXPECT_EQ(img.ReadWord(0), 100u);
}

TEST_F(BufferPoolTest, DirtyPagesSnapshotHasRecLsns) {
  BufferPool pool = MakePool(8);
  for (PageId p = 0; p < 3; ++p) {
    auto frame = pool.Pin(p);
    ASSERT_TRUE(frame.ok());
    pool.MarkDirty(p, 10 * (p + 1));
    pool.MarkDirty(p, 10 * (p + 1) + 5);  // recLSN stays at first dirty
    pool.Unpin(p);
  }
  auto dirty = pool.DirtyPages();
  ASSERT_EQ(dirty.size(), 3u);
  EXPECT_EQ(dirty[0], (std::pair<PageId, Lsn>{0, 10}));
  EXPECT_EQ(dirty[2], (std::pair<PageId, Lsn>{2, 30}));
}

TEST_F(BufferPoolTest, DropAllLosesUnwrittenData) {
  BufferPool pool = MakePool(4);
  auto frame = pool.Pin(1);
  ASSERT_TRUE(frame.ok());
  (*frame)->WriteWord(0, 123);
  pool.MarkDirty(1, 1);
  pool.Unpin(1);
  pool.DropAll();  // crash: memory lost
  PageImage img;
  ASSERT_TRUE(disk_.ReadPage(1, &img).ok());
  EXPECT_EQ(img.ReadWord(0), 0u);  // never reached disk
}

TEST_F(BufferPoolTest, WriteBackRandomSubsetIsDeterministic) {
  BufferPool pool = MakePool(32);
  for (PageId p = 0; p < 16; ++p) {
    auto frame = pool.Pin(p);
    ASSERT_TRUE(frame.ok());
    pool.MarkDirty(p, p + 1);
    pool.Unpin(p);
  }
  Rng rng(42);
  ASSERT_TRUE(pool.WriteBackRandomSubset(&rng, 0.5).ok());
  const uint64_t written = disk_.stats().page_writes;
  EXPECT_GT(written, 0u);
  EXPECT_LT(written, 16u);
}

TEST_F(BufferPoolTest, UnloggedDirtyPagesSkipWalFlush) {
  BufferPool pool = MakePool(4);
  auto frame = pool.Pin(6);
  ASSERT_TRUE(frame.ok());
  (*frame)->WriteWord(0, 1);
  pool.MarkDirtyUnlogged(6);
  pool.Unpin(6);
  ASSERT_TRUE(pool.WriteBack(6).ok());
  EXPECT_EQ(flushed_to_, 0u);  // no WAL dependency for volatile pages
}

TEST_F(BufferPoolTest, AllPinnedEvictionGrowsPastCapacity) {
  BufferPool pool = MakePool(2);
  ASSERT_TRUE(pool.Pin(0).ok());
  ASSERT_TRUE(pool.Pin(1).ok());
  // Every frame pinned: the pool must grow rather than evict or fail.
  ASSERT_TRUE(pool.Pin(2).ok());
  EXPECT_EQ(pool.ResidentCount(), 3u);
  EXPECT_TRUE(pool.IsResident(0));
  EXPECT_TRUE(pool.IsResident(1));
  EXPECT_EQ(pool.stats().evictions, 0u);
  // Once pins release, the next fault evicts normally (LRU = first
  // unpinned) and the pool shrinks back toward capacity.
  pool.Unpin(0);
  pool.Unpin(1);
  pool.Unpin(2);
  ASSERT_TRUE(pool.Pin(3).ok());
  pool.Unpin(3);
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_FALSE(pool.IsResident(0));
}

TEST_F(BufferPoolTest, RecLsnResetAcrossCleanDirtyCleanCycle) {
  BufferPool pool = MakePool(4);
  auto frame = pool.Pin(5);
  ASSERT_TRUE(frame.ok());
  (*frame)->WriteWord(0, 1);
  pool.MarkDirty(5, 100);
  pool.Unpin(5);
  EXPECT_EQ(pool.MinRecLsn(), 100u);
  ASSERT_TRUE(pool.WriteBack(5).ok());
  EXPECT_FALSE(pool.IsDirty(5));
  EXPECT_EQ(pool.MinRecLsn(), kInvalidLsn);
  // Re-dirty: the recLSN must be the NEW first-dirtying record, not the
  // stale one from the previous cycle.
  frame = pool.Pin(5);
  ASSERT_TRUE(frame.ok());
  (*frame)->WriteWord(0, 2);
  pool.MarkDirty(5, 900);
  pool.Unpin(5);
  auto dirty = pool.DirtyPages();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], (std::pair<PageId, Lsn>{5, 900}));
  EXPECT_EQ(pool.MinRecLsn(), 900u);
}

TEST_F(BufferPoolTest, MinRecLsnTracksDirtySet) {
  BufferPool pool = MakePool(8);
  for (const auto& [pid, lsn] :
       std::vector<std::pair<PageId, Lsn>>{{1, 50}, {2, 20}, {3, 70}}) {
    auto frame = pool.Pin(pid);
    ASSERT_TRUE(frame.ok());
    pool.MarkDirty(pid, lsn);
    pool.Unpin(pid);
  }
  // Unlogged dirty pages carry no recLSN and must not affect the floor.
  auto frame = pool.Pin(4);
  ASSERT_TRUE(frame.ok());
  pool.MarkDirtyUnlogged(4);
  pool.Unpin(4);
  EXPECT_EQ(pool.MinRecLsn(), 20u);
  ASSERT_TRUE(pool.WriteBack(2).ok());
  EXPECT_EQ(pool.MinRecLsn(), 50u);
  ASSERT_TRUE(pool.WriteBack(1).ok());
  ASSERT_TRUE(pool.WriteBack(3).ok());
  EXPECT_EQ(pool.MinRecLsn(), kInvalidLsn);  // only the unlogged page left
  EXPECT_TRUE(pool.IsDirty(4));
}

TEST_F(BufferPoolTest, WriteBackRandomSubsetHonorsWalFailure) {
  BufferPool pool = MakePool(4);
  auto frame = pool.Pin(9);
  ASSERT_TRUE(frame.ok());
  (*frame)->WriteWord(0, 77);
  pool.MarkDirty(9, 300);
  pool.Unpin(9);
  // Injected WAL failure: the log cannot reach the page LSN, so the page
  // must NOT go to disk and must stay dirty for a later retry.
  pool.SetHooks(BufferPool::Hooks{
      [](Lsn) { return Status::IOError("injected flush_log_to failure"); },
      nullptr, nullptr});
  Rng rng(7);
  EXPECT_TRUE(pool.WriteBackRandomSubset(&rng, 1.0).IsIOError());
  EXPECT_TRUE(pool.IsDirty(9));
  PageImage img;
  ASSERT_TRUE(disk_.ReadPage(9, &img).ok());
  EXPECT_EQ(img.ReadWord(0), 0u);  // never reached disk
  // With the WAL healthy again the same call succeeds.
  pool.SetHooks(BufferPool::Hooks{[](Lsn) { return Status::OK(); },
                                  nullptr, nullptr});
  Rng rng2(7);
  ASSERT_TRUE(pool.WriteBackRandomSubset(&rng2, 1.0).ok());
  EXPECT_FALSE(pool.IsDirty(9));
  ASSERT_TRUE(disk_.ReadPage(9, &img).ok());
  EXPECT_EQ(img.ReadWord(0), 77u);
}

TEST_F(BufferPoolTest, ScanCountersBoundedByDirtyNotResidency) {
  BufferPool pool = MakePool(64);
  // 32 resident pages, only 4 dirty.
  for (PageId p = 0; p < 32; ++p) {
    auto frame = pool.Pin(p);
    ASSERT_TRUE(frame.ok());
    if (p < 4) pool.MarkDirty(p, p + 1);
    pool.Unpin(p);
  }
  pool.ResetStats();
  (void)pool.DirtyPages();
  EXPECT_EQ(pool.stats().dirty_scan_steps, 4u);  // O(dirty), not O(frames)
  Rng rng(3);
  ASSERT_TRUE(pool.WriteBackRandomSubset(&rng, 0.0).ok());
  EXPECT_EQ(pool.stats().dirty_scan_steps, 8u);  // +4 candidates examined
}

TEST_F(BufferPoolTest, EvictionProbesExactlyOneFrame) {
  BufferPool pool = MakePool(8);
  for (PageId p = 0; p < 8; ++p) {
    auto frame = pool.Pin(p);
    ASSERT_TRUE(frame.ok());
    pool.Unpin(p);
  }
  pool.ResetStats();
  // 16 faults at capacity: each eviction examines exactly the LRU head.
  for (PageId p = 100; p < 116; ++p) {
    auto frame = pool.Pin(p);
    ASSERT_TRUE(frame.ok());
    pool.Unpin(p);
  }
  EXPECT_EQ(pool.stats().evictions, 16u);
  EXPECT_EQ(pool.stats().evict_probe_steps, pool.stats().evictions);
}

TEST_F(BufferPoolTest, EvictedFramesAreReused) {
  BufferPool pool = MakePool(2);
  for (PageId p = 0; p < 6; ++p) {
    auto frame = pool.Pin(p);
    ASSERT_TRUE(frame.ok());
    pool.Unpin(p);
  }
  // Evictions recycle frames through the free list; the store never grows
  // beyond the high-water mark of capacity (+ transient all-pinned case).
  EXPECT_EQ(pool.ResidentCount(), 2u);
  EXPECT_EQ(pool.stats().evictions, 4u);
  EXPECT_LE(pool.FreeFrameCount(), 1u);
}

}  // namespace
}  // namespace sheap
