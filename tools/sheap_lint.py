#!/usr/bin/env python3
"""sheap-lint: protocol lints the C++ compiler cannot express.

Run from ctest as the `lint` label (`ctest -L lint`), or directly:

    python3 tools/sheap_lint.py [--repo /path/to/repo]
    python3 tools/sheap_lint.py --selftest

Rules
-----
R1  fault-points
    Every `SHEAP_FAULT_POINT(injector, "name")` site in src/ must
      * use a unique name (one site per name — the crash matrix addresses
        states as (point, hit); two sites sharing a name make hits
        ambiguous),
      * follow `subsystem.component.event` (exactly three dot-separated
        lower_snake segments), and
      * agree set-for-set with the manifest arrays in
        tests/crash_matrix_points.h: a point in src/ that no array lists is
        a crash state the matrix silently skips; a listed point with no
        src/ site is dead coverage. Both directions fail.

R2  record-types
    Every RecordType enumerator (except the kMaxRecordType sentinel) must
    be named in each protocol-dispatch file (redo plan, analysis/undo,
    encoder masks, log inspector). Those switches are written without
    `default:` so a new record type does not compile until each dispatcher
    decides what to do with it; this rule catches the file that quietly
    grows a `default:` back.

R3  raw-mutex
    `std::mutex` and friends are banned outside
    src/common/thread_annotations.h. Locks must be `sheap::Mutex` taken
    via `sheap::MutexLock` so clang's thread-safety analysis sees every
    acquisition (a raw mutex is invisible to it).

R4  dropped-status
    Statement-position calls to durability entry points (Flush, Force,
    WritePage, ...) whose Status is discarded. Class-level [[nodiscard]] +
    -Werror=unused-result already reject these at compile time; the lint
    additionally rejects `(void)`-casts of them, which the compiler
    accepts — blanket voiding defeats the audit.
"""

import argparse
import pathlib
import re
import shutil
import sys
import tempfile

CXX_EXTS = {".h", ".hpp", ".cc", ".cpp"}

FAULT_POINT_RE = re.compile(r'SHEAP_FAULT_POINT\s*\(\s*[^,]+,\s*"([^"]+)"',
                            re.DOTALL)
POINT_NAME_RE = re.compile(r"^[a-z0-9_]+\.[a-z0-9_]+\.[a-z0-9_]+$")
MANIFEST_ARRAY_RE = re.compile(r"\[\]\s*=\s*\{(.*?)\};", re.DOTALL)
QUOTED_RE = re.compile(r'"([^"]+)"')
ENUM_RE = re.compile(r"enum\s+class\s+RecordType[^{]*\{(.*?)\};", re.DOTALL)
ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*=", re.MULTILINE)
RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"recursive_timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|"
    r"condition_variable(?:_any)?)\b")

# Durability entry points returning Status whose result must be consumed.
# (Plain `Force` is absent on purpose: SimLogDevice::Force returns void —
# it only charges latency; the Status-returning force is LogWriter::Force,
# whose drops the compiler already rejects via [[nodiscard]].)
STATUS_METHODS = ("AppendAsync|WritePage|WritePageRun|WriteBackPages|"
                  "WriteBack|WriteBackRandomSubset|FlushTo|FlushAll|Flush|"
                  "ForceLog")
DROPPED_CALL_RE = re.compile(
    r"^\s*[\w\.\[\]]+(?:(?:\.|->)[\w\[\]]+(?:\(\s*\))?)*(?:\.|->)"
    r"(?:" + STATUS_METHODS + r")\s*\(.*\)\s*;\s*$")
VOIDED_CALL_RE = re.compile(
    r"^\s*(?:\(\s*void\s*\)|std::ignore\s*=)\s*[\w\.\[\]]+"
    r"(?:(?:\.|->)[\w\[\]]+(?:\(\s*\))?)*(?:\.|->)"
    r"(?:" + STATUS_METHODS + r")\s*\(.*\)\s*;\s*$")

# Files whose RecordType dispatch must stay exhaustive (repo-relative).
PROTOCOL_FILES = (
    "src/recovery/redo_executor.cc",  # redo plan: what touches heap pages
    "src/recovery/recovery.cc",       # analysis/undo dispatch
    "src/wal/record.cc",              # encode/decode field masks + names
    "src/dtx/two_phase.cc",           # coordinator decision-log rescan
    "examples/log_inspector.cpp",     # human-readable dump
)
RECORD_ENUM_FILE = "src/wal/record.h"
MANIFEST_FILE = "tests/crash_matrix_points.h"
ANNOTATIONS_FILE = "src/common/thread_annotations.h"
SENTINEL_ENUMERATOR = "kMaxRecordType"
LINT_DIRS = ("src", "tests", "bench", "examples")


def cxx_files(repo, subdirs=LINT_DIRS):
    for sub in subdirs:
        d = repo / sub
        if not d.is_dir():
            continue
        for p in sorted(d.rglob("*")):
            if p.suffix in CXX_EXTS and p.is_file():
                yield p


def strip_comments(text):
    """Blank out // and /* */ comments and string/char contents, keeping
    line structure so reported line numbers stay right."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        if mode is None:
            if text.startswith("//", i):
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if text.startswith("/*", i):
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                mode = c
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if text.startswith("*/", i):
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a literal: keep delimiters, blank the contents
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == mode:
                mode = None
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class Linter:
    def __init__(self, repo):
        self.repo = pathlib.Path(repo)
        self.errors = []

    def error(self, rule, path, line, msg):
        rel = path.relative_to(self.repo) if path else "<repo>"
        where = f"{rel}:{line}" if line else str(rel)
        self.errors.append(f"[{rule}] {where}: {msg}")

    # ------------------------------------------------------------------ R1
    def check_fault_points(self):
        sites = {}  # name -> [(path, line)]
        for p in cxx_files(self.repo, subdirs=("src",)):
            text = p.read_text()
            for m in FAULT_POINT_RE.finditer(strip_comments(text)):
                # The name survives comment stripping only for real call
                # sites; re-read it from the original text by position.
                name = FAULT_POINT_RE.match(text, m.start())
                name = name.group(1) if name else m.group(1)
                sites.setdefault(name, []).append((p, line_of(text,
                                                              m.start())))
        for name, where in sorted(sites.items()):
            if len(where) > 1:
                locs = ", ".join(f"{p.relative_to(self.repo)}:{ln}"
                                 for p, ln in where)
                self.error("fault-points", where[0][0], where[0][1],
                           f'duplicate crash point "{name}" ({locs}); '
                           "(point, hit) must name one site")
            if not POINT_NAME_RE.match(name):
                p, ln = where[0]
                self.error("fault-points", p, ln,
                           f'crash point "{name}" does not follow '
                           "subsystem.component.event "
                           "(three dot-separated lower_snake segments)")

        manifest_path = self.repo / MANIFEST_FILE
        if not manifest_path.is_file():
            self.error("fault-points", None, 0,
                       f"missing manifest {MANIFEST_FILE}")
            return
        mtext = manifest_path.read_text()
        manifest = set()
        for arr in MANIFEST_ARRAY_RE.finditer(mtext):
            manifest.update(QUOTED_RE.findall(arr.group(1)))
        if not manifest:
            self.error("fault-points", manifest_path, 0,
                       "manifest has no point arrays")
            return
        for name in sorted(set(sites) - manifest):
            p, ln = sites[name][0]
            self.error("fault-points", p, ln,
                       f'crash point "{name}" is not listed in '
                       f"{MANIFEST_FILE} — the crash matrix will never "
                       "crash there")
        for name in sorted(manifest - set(sites)):
            self.error("fault-points", manifest_path,
                       line_of(mtext, mtext.index(f'"{name}"')),
                       f'manifest lists "{name}" but src/ has no such '
                       "SHEAP_FAULT_POINT site")

    # ------------------------------------------------------------------ R2
    def check_record_types(self):
        enum_path = self.repo / RECORD_ENUM_FILE
        if not enum_path.is_file():
            self.error("record-types", None, 0,
                       f"missing {RECORD_ENUM_FILE}")
            return
        m = ENUM_RE.search(strip_comments(enum_path.read_text()))
        if not m:
            self.error("record-types", enum_path, 0,
                       "could not parse enum class RecordType")
            return
        enumerators = [e for e in ENUMERATOR_RE.findall(m.group(1))
                       if e != SENTINEL_ENUMERATOR]
        for rel in PROTOCOL_FILES:
            path = self.repo / rel
            if not path.is_file():
                self.error("record-types", None, 0,
                           f"protocol file {rel} is missing")
                continue
            used = set(re.findall(r"RecordType::(k\w+)",
                                  strip_comments(path.read_text())))
            for e in enumerators:
                if e not in used:
                    self.error("record-types", path, 0,
                               f"RecordType::{e} is never dispatched here; "
                               "the switch must stay exhaustive")

    # ------------------------------------------------------------------ R3
    def check_raw_mutex(self):
        allowed = self.repo / ANNOTATIONS_FILE
        for p in cxx_files(self.repo):
            if p == allowed:
                continue
            text = strip_comments(p.read_text())
            for m in RAW_MUTEX_RE.finditer(text):
                self.error("raw-mutex", p, line_of(text, m.start()),
                           f"{m.group(0)} bypasses thread-safety analysis; "
                           "use sheap::Mutex / sheap::MutexLock "
                           f"({ANNOTATIONS_FILE})")

    # ------------------------------------------------------------------ R4
    def check_dropped_status(self):
        for p in cxx_files(self.repo):
            text = strip_comments(p.read_text())
            for i, line in enumerate(text.splitlines(), 1):
                # Continuation lines of a wrapped checking macro have
                # unbalanced parens; whole-statement calls balance.
                if line.count("(") != line.count(")"):
                    continue
                if DROPPED_CALL_RE.match(line):
                    self.error("dropped-status", p, i,
                               "Status discarded at statement position; "
                               "check it (SHEAP_RETURN_IF_ERROR, "
                               "a named local, or an assertion)")
                elif VOIDED_CALL_RE.match(line):
                    self.error("dropped-status", p, i,
                               "Status explicitly voided; blanket voiding "
                               "defeats the audit — handle or propagate")

    def run(self):
        self.check_fault_points()
        self.check_record_types()
        self.check_raw_mutex()
        self.check_dropped_status()
        return self.errors


# ---------------------------------------------------------------- selftest

# Fixtures are stored deduplicated: tools/testdata/lint/base/ is the one
# clean tree, and cases/<name>/ holds only the files a case changes or
# adds. Each case is composed base-then-overlay into a temp dir at test
# time, so the shared nine-file skeleton exists exactly once.

# case name -> substrings that must each match >= 1 error, with the
# expected total count. "clean" (no overlay) must produce zero errors.
FIXTURES = {
    "clean": [],
    "dup_point": ["duplicate crash point"],
    "bad_name": ["does not follow"],
    "manifest_drift": ["is not listed in", "no such SHEAP_FAULT_POINT"],
    "nonexhaustive_switch": ["never dispatched"],
    "raw_mutex": ["bypasses thread-safety analysis"],
    "dropped_status": ["Status discarded", "explicitly voided"],
}


def _compose_case(base, overlay, dest):
    shutil.copytree(base, dest, dirs_exist_ok=True)
    if overlay.is_dir():
        shutil.copytree(overlay, dest, dirs_exist_ok=True)


def selftest(testdata):
    failures = []
    base = testdata / "lint" / "base"
    cases = testdata / "lint" / "cases"
    if not base.is_dir():
        print(f"sheap_lint selftest: missing base tree {base}")
        return 1
    for name, expected in FIXTURES.items():
        with tempfile.TemporaryDirectory(prefix="sheap_lint_") as tmp:
            _compose_case(base, cases / name, pathlib.Path(tmp))
            errors = Linter(pathlib.Path(tmp)).run()
        if not expected:
            if errors:
                failures.append(f"{name}: expected a clean pass, got:\n  " +
                                "\n  ".join(errors))
            continue
        for want in expected:
            if not any(want in e for e in errors):
                failures.append(
                    f"{name}: no error matching {want!r}; got:\n  " +
                    ("\n  ".join(errors) if errors else "(none)"))
        if len(errors) != len(expected):
            failures.append(
                f"{name}: expected exactly {len(expected)} error(s), "
                f"got {len(errors)}:\n  " + "\n  ".join(errors))
    if failures:
        print("sheap_lint selftest FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"sheap_lint selftest: {len(FIXTURES)} fixtures OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=str(pathlib.Path(__file__).parent.parent),
                    help="repository root (default: this script's repo)")
    ap.add_argument("--selftest", action="store_true",
                    help="lint the fixtures in tools/testdata instead")
    args = ap.parse_args()
    if args.selftest:
        return selftest(pathlib.Path(__file__).parent / "testdata")
    errors = Linter(pathlib.Path(args.repo).resolve()).run()
    for e in errors:
        print(e)
    if errors:
        print(f"sheap_lint: {len(errors)} error(s)")
        return 1
    print("sheap_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
