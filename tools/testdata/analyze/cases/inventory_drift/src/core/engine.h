#ifndef FIX_CORE_ENGINE_H_
#define FIX_CORE_ENGINE_H_

#include <atomic>

#include "common/sync.h"
#include "txn/table.h"
#include "wal/log.h"

namespace fix {

struct EngineStats {
  long commits = 0;
};

/// The fixture's gate class: every public entry point must open a
/// MutatorGate section (or be exempted in lock_rank.json).
class Engine {
 public:
  void Begin();
  void Commit();
  void Checkpoint();
  long Published() const;
  EngineStats stats() const;

 private:
  void CommitLocked() SHEAP_REQUIRES(mu_);

  MutatorGate gate_;
  mutable Mutex mu_;
  Mutex extra_mu_;
  EngineStats stats_ SHEAP_GUARDED_BY(mu_);
  Table table_;
  Log log_;
  /// Structural epoch counter: only exclusive sections may advance it.
  long ckpt_epoch_ SHEAP_GATE_EXCLUSIVE = 0;
  mutable std::atomic<long> published_{0};
};

}  // namespace fix

#endif  // FIX_CORE_ENGINE_H_
