#ifndef FIX_TXN_TABLE_H_
#define FIX_TXN_TABLE_H_

#include "common/sync.h"

namespace fix {

/// Sharded map: each entry hashes to exactly one shard.
class Table {
 public:
  long Get(long key);

 private:
  struct Shard {
    Mutex mu;
    long entries = 0;
    // unguarded: written once at construction, read-only afterwards.
    long capacity = 0;
  };
  Shard shards_[4];
};

}  // namespace fix

#endif  // FIX_TXN_TABLE_H_
