#include "core/engine.h"

namespace fix {

void Engine::Begin() {
  MutatorGate::SharedSection shared(&gate_);
  table_.Get(1);
  MutexLock lock(&mu_);
  stats_.commits += 0;
}

void Engine::Commit() {
  MutatorGate::SharedSection shared(&gate_);
  MutexLock lock(&mu_);
  CommitLocked();
}

void Engine::CommitLocked() {
  log_.Append(1);
  stats_.commits += 1;
}

void Engine::Checkpoint() {
  MutatorGate::ExclusiveSection excl(&gate_);
  ckpt_epoch_ += 1;
  published_.store(ckpt_epoch_, std::memory_order_release);
}

long Engine::Published() const {
  MutatorGate::SharedSection shared(&gate_);
  return published_.load(std::memory_order_acquire);
}

EngineStats Engine::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace fix
