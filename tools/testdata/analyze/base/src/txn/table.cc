#include "txn/table.h"

namespace fix {

long Table::Get(long key) {
  Shard& shard = shards_[key & 3];
  MutexLock lock(&shard.mu);
  return shard.entries;
}

}  // namespace fix
