// Minimal stand-ins for the analyzer fixture tree. sheap_analyze keys off
// the repo's textual idioms (Mutex members, RAII MutexLock, MutatorGate
// sections, SHEAP_* annotations); nothing here is ever compiled, so the
// stubs only need to look like the real thing.
#ifndef FIX_COMMON_SYNC_H_
#define FIX_COMMON_SYNC_H_

#define SHEAP_GUARDED_BY(x)
#define SHEAP_REQUIRES(x)
#define SHEAP_GATE_EXCLUSIVE

namespace fix {

class Mutex {
 public:
  void lock();
  void unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class MutatorGate {
 public:
  class SharedSection {
   public:
    explicit SharedSection(MutatorGate* gate);
  };
  class ExclusiveSection {
   public:
    explicit ExclusiveSection(MutatorGate* gate);
  };
};

}  // namespace fix

#endif  // FIX_COMMON_SYNC_H_
