#ifndef FIX_WAL_LOG_H_
#define FIX_WAL_LOG_H_

#include "common/sync.h"

namespace fix {

/// Append-only log; every record append serializes on mu_.
class Log {
 public:
  void Append(int rec);
  long durable() const;

 private:
  Mutex mu_;
  long bytes_ SHEAP_GUARDED_BY(mu_) = 0;
};

}  // namespace fix

#endif  // FIX_WAL_LOG_H_
