#include "wal/log.h"

namespace fix {

void Log::Append(int rec) {
  MutexLock lock(&mu_);
  bytes_ += rec;
}

long Log::durable() const { return 0; }

}  // namespace fix
