// Fixture fault-point sites.
Status Step(FaultInjector* faults) {
  SHEAP_FAULT_POINT(faults, "foo.bar.baz");
  SHEAP_FAULT_POINT(faults, "foo.bar.qux");
  return Status::OK();
}
