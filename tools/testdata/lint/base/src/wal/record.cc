// Fixture dispatcher naming every enumerator.
bool Dispatch(RecordType t) {
  switch (t) {
    case RecordType::kAlpha:
      return true;
    case RecordType::kBeta:
      return false;
  }
  return false;
}
