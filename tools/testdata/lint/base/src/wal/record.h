// Fixture enum mirroring src/wal/record.h's shape.
enum class RecordType : uint8_t {
  kAlpha = 1,
  kBeta = 2,
  kMaxRecordType = 2,
};
