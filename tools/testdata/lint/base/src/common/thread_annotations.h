// Fixture stand-in for src/common/thread_annotations.h: the one file
// allowed to name std::mutex.
class Mutex {
  std::mutex mu_;
};
