// Fixture: malformed point name.
Status Step(FaultInjector* faults) {
  SHEAP_FAULT_POINT(faults, "foo.bar.baz");
  SHEAP_FAULT_POINT(faults, "foo.qux");
  return Status::OK();
}
