// Fixture manifest.
inline constexpr const char* kPoints[] = {
    "foo.bar.baz",
    "foo.qux",
};
