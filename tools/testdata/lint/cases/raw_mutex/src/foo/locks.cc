// Fixture: raw mutex.
class Cache {
  std::mutex mu_;
};
