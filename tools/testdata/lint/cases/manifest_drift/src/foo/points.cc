// Fixture: manifest drift.
Status Step(FaultInjector* faults) {
  SHEAP_FAULT_POINT(faults, "foo.bar.baz");
  SHEAP_FAULT_POINT(faults, "foo.bar.new_point");
  return Status::OK();
}
