// Fixture: dispatcher missing kBeta.
bool Dispatch(RecordType t) {
  switch (t) {
    case RecordType::kAlpha:
      return true;
    default:
      return false;
  }
}
