// Fixture: discarded Status.
Status Sync(Device* device) {
  device->Flush();
  (void)device->FlushAll();
  return Status::OK();
}
