"""Optional libclang cross-check (python `clang.cindex`).

The text frontend is the canonical model builder — it has no dependencies
and the fixtures pin its behavior. When python clang bindings ARE importable
(CI installs a pinned `libclang`; the dev container may not have it), this
module parses the real AST out of compile_commands.json and cross-validates
the text model's inventories: every sheap::Mutex field, std::atomic field,
and StableHeap public method the AST sees must be in the text model, and
vice versa. A divergence means the text scanner mis-parsed something — it
surfaces as a finding instead of silently analyzing the wrong model.

Any failure to load bindings/libclang degrades to the text frontend with a
note on stderr; exit codes never depend on clang being present.
"""

import json
import os
import sys


def available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def _config_library():
    import clang.cindex as ci
    if ci.Config.loaded:
        return
    override = os.environ.get("SHEAP_LIBCLANG")
    if override:
        ci.Config.set_library_file(override)


def ast_inventory(repo, compdb_path, limit=None):
    """{'locks': set('Cls::field'), 'atomics': set(...), 'methods': set(...)}
    from the AST, or None if clang is unusable."""
    try:
        import clang.cindex as ci
        _config_library()
        with open(compdb_path, "r", encoding="utf-8") as fh:
            db = json.load(fh)
        index = ci.Index.create()
    except Exception as exc:  # missing bindings, missing libclang.so, ...
        print("sheap_analyze: clang frontend unavailable (%s); "
              "using text frontend only" % exc, file=sys.stderr)
        return None
    locks, atomics, methods = set(), set(), set()
    seen_tu = 0
    for entry in db:
        f = entry.get("file", "")
        if not f.endswith(".cc") or "/src/" not in f.replace("\\", "/"):
            continue
        args = [a for a in entry.get("arguments") or
                entry.get("command", "").split()
                if a not in (entry.get("file"),)][1:]
        args = [a for a in args if not a.startswith(("-o", "-c"))
                and a != entry.get("file")]
        try:
            tu = index.parse(f, args=args)
        except Exception:
            continue
        seen_tu += 1
        if limit and seen_tu > limit:
            break
        for cur in tu.cursor.walk_preorder():
            try:
                if not cur.location.file or \
                        "/src/" not in str(cur.location.file):
                    continue
                if cur.kind == ci.CursorKind.FIELD_DECL:
                    t = cur.type.spelling
                    qual = _class_path(cur)
                    if t.endswith("Mutex") and "*" not in t:
                        locks.add(qual + "::" + cur.spelling)
                    if t.startswith(("std::atomic<", "atomic<")):
                        atomics.add(qual + "::" + cur.spelling)
                elif cur.kind == ci.CursorKind.CXX_METHOD and \
                        cur.is_definition():
                    methods.add(_class_path(cur) + "::" + cur.spelling)
            except Exception:
                continue
    if seen_tu == 0:
        print("sheap_analyze: clang frontend parsed no TUs; "
              "using text frontend only", file=sys.stderr)
        return None
    return {"locks": locks, "atomics": atomics, "methods": methods}


def _class_path(cur):
    parts = []
    p = cur.semantic_parent
    import clang.cindex as ci
    while p is not None and p.kind in (ci.CursorKind.CLASS_DECL,
                                       ci.CursorKind.STRUCT_DECL,
                                       ci.CursorKind.UNION_DECL):
        parts.append(p.spelling)
        p = p.semantic_parent
    return "::".join(reversed(parts))


def cross_check(model, inventory):
    """Findings (as (file, message) tuples) where AST and text disagree."""
    from .checks import key_str
    out = []
    text_locks = {key_str(d.class_path, d.field) for d in model.locks}
    ast_locks = inventory["locks"]
    for k in sorted(ast_locks - text_locks):
        out.append(("<ast>", "clang sees mutex '%s' that the text frontend "
                    "missed" % k))
    for k in sorted(text_locks - ast_locks):
        out.append(("<ast>", "text frontend sees mutex '%s' that clang "
                    "does not" % k))
    text_atomics = {key_str(d.class_path, d.name) for d in model.atomics
                    if d.class_path}
    for k in sorted(inventory["atomics"] - text_atomics):
        out.append(("<ast>", "clang sees atomic member '%s' that the text "
                    "frontend missed" % k))
    return out
