"""The four sheap_analyze checks, run against a Model + tools/lock_rank.json.

  rank     — extract the mutex-acquisition graph (MutexLock nesting, manual
             lock()/unlock(), REQUIRES preconditions, interprocedural
             may-acquire), reconcile it two-sidedly with the declared table,
             verify ranks are monotone and the combined graph is acyclic.
  gate     — every non-exempt public method of the gate class must open (or
             reach) a MutatorGate section; SHEAP_GATE_EXCLUSIVE members must
             never be touched from a shared section, directly or through
             calls.
  atomics  — every atomic access in the declared scope must name an explicit
             std::memory_order, and per variable the release/acquire sides
             must pair up (all-relaxed is fine; one-sided fencing is not).
  coverage — in the declared scope, a member of a mutex-owning class without
             GUARDED_BY needs an explicit `// unguarded:` justification.
"""

import dataclasses
import json
import re

RELEASE_SIDE = {"release", "acq_rel", "seq_cst"}
ACQUIRE_SIDE = {"acquire", "acq_rel", "seq_cst", "consume"}
RMW_OPS = {"exchange", "fetch_add", "fetch_sub", "fetch_or", "fetch_and",
           "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
           "implicit-rmw"}
WRITE_OPS = {"store", "implicit-store"} | RMW_OPS
READ_OPS = {"load", "implicit-load", "wait"} | RMW_OPS


@dataclasses.dataclass
class Finding:
    check: str
    file: str
    line: int
    message: str

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.file, self.line, self.check,
                                   self.message)


class RankTable:
    """tools/lock_rank.json — the declared side of the reconciliation."""

    def __init__(self, data):
        self.data = data
        self.ranks = {e["key"]: e["rank"] for e in data.get("locks", [])}
        self.notes = {e["key"]: e.get("note", "")
                      for e in data.get("locks", [])}
        self.edges = {(e["from"], e["to"]): e
                      for e in data.get("edges", [])}
        # Pseudo entries (e.g. the MutatorGate epoch sections) order real
        # mutexes in the documented hierarchy without being sheap::Mutex
        # members themselves, so inventory reconciliation skips them.
        self.pseudo = {e["key"] for e in data.get("locks", [])
                       if e.get("pseudo")}
        gate = data.get("gate", {})
        self.gate_class = gate.get("class", "")
        self.gate_exempt = {e["name"]: e.get("reason", "")
                            for e in gate.get("exempt", [])}
        self.atomics_scope = data.get("atomics", {}).get("scope", [])
        self.coverage_scope = data.get("coverage", {}).get("scope", [])

    @staticmethod
    def load(path):
        with open(path, "r", encoding="utf-8") as fh:
            return RankTable(json.load(fh))


def key_str(cls, field):
    return (cls + "::" + field) if cls else field


def in_scope(path, prefixes):
    return any(path.startswith(p) for p in prefixes)


class Analysis:
    """Shared resolution machinery + the extracted acquisition graph."""

    def __init__(self, model, table):
        self.model = model
        self.table = table
        self.findings = []
        self.func_idx = model.func_index()
        self.lock_by_field = {}
        for d in model.locks:
            self.lock_by_field.setdefault(d.field, []).append(d)
        self._acq = None
        self._edges = None

    # ---- resolution ----

    def resolve_lock(self, expr, cls, file, line, report=True):
        """Lock expression ('mu_', 'shard.mu', 'first.mu') -> key string."""
        expr = re.sub(r"\s+", "", expr)
        parts = re.split(r"\.|->", expr)
        field = re.sub(r"\[[^\]]*\]", "", parts[-1])
        cands = self.lock_by_field.get(field, [])
        if len(cands) == 1:
            return key_str(cands[0].class_path, field)
        if len(parts) > 1:
            recv = re.sub(r"\[[^\]]*\]", "", parts[0])
            t = self._member_type(cls, recv)
            if t:
                narrowed = [d for d in cands
                            if d.class_path == t or
                            d.class_path.startswith(t + "::") or
                            d.class_path.endswith("::" + t)]
                if len(narrowed) == 1:
                    return key_str(narrowed[0].class_path, field)
        scope = cls
        while scope:
            narrowed = [d for d in cands
                        if d.class_path == scope or
                        d.class_path.startswith(scope + "::")]
            if len(narrowed) == 1:
                return key_str(narrowed[0].class_path, field)
            scope = scope.rsplit("::", 1)[0] if "::" in scope else ""
        if report:
            self.findings.append(Finding(
                "rank", file, line,
                "cannot resolve lock expression '%s' (in class '%s') to a "
                "unique sheap::Mutex member" % (expr, cls)))
        return None

    def _member_type(self, cls, name):
        scope = cls
        while True:
            t = self.model.var_types.get(key_str(scope, name))
            if t:
                return t
            if "::" in scope:
                scope = scope.rsplit("::", 1)[0]
            elif scope:
                scope = ""
            else:
                return None

    def resolve_callees(self, fn, recv, method):
        idx = self.func_idx
        out = []
        if recv in ("", "this"):
            scope = fn.class_path
            while True:
                q = key_str(scope, method)
                if q in idx:
                    return idx[q]
                if "::" in scope:
                    scope = scope.rsplit("::", 1)[0]
                elif scope:
                    scope = ""
                else:
                    return idx.get(method, [])
        first = re.sub(r"\[[^\]]*\]", "", re.split(r"\.|->|::", recv)[0])
        t = self._member_type(fn.class_path, first)
        if t is None and first in self.model.classes:
            t = first  # static-style qualified call
        if t:
            q = t + "::" + method
            out = idx.get(q, [])
        return out

    def requires_of(self, fn):
        exprs = list(fn.requires)
        exprs += self.model.requires.get((fn.class_path, fn.name), [])
        keys = set()
        for e in exprs:
            e = e.strip()
            if not e or e.startswith("!"):
                continue
            k = self.resolve_lock(e, fn.class_path, fn.file, fn.line,
                                  report=False)
            if k:
                keys.add(k)
        return keys

    # ---- interprocedural may-acquire ----

    def acquires(self):
        """qname-keyed transitive may-acquire sets (minus REQUIRES)."""
        if self._acq is not None:
            return self._acq
        direct = {}
        calls = {}
        reqs = {}
        for fn in self.model.funcs:
            d = set()
            for ev in fn.events:
                if ev.kind in ("lock", "manual_lock"):
                    k = self.resolve_lock(ev.data, fn.class_path, fn.file,
                                          self._line(fn, ev), report=False)
                    if k:
                        d.add(k)
            direct.setdefault(fn.qname, set()).update(d)
            cl = calls.setdefault(fn.qname, set())
            for ev in fn.events:
                if ev.kind == "call":
                    for callee in self.resolve_callees(fn, *ev.data):
                        cl.add(callee.qname)
            reqs.setdefault(fn.qname, set()).update(self.requires_of(fn))
        acq = {q: set(s) for q, s in direct.items()}
        changed = True
        while changed:
            changed = False
            for q, cl in calls.items():
                for callee in cl:
                    add = acq.get(callee, set()) - reqs.get(callee, set())
                    if not add <= acq[q]:
                        acq[q] |= add
                        changed = True
        self._acq = acq
        return acq

    def _line(self, fn, ev):
        return self.model.lines[fn.file].line_of(ev.pos)

    # ---- extracted edge set ----

    def extract_edges(self):
        """{(from,to): (witness_file, witness_line, count)}."""
        if self._edges is not None:
            return self._edges
        acq = self.acquires()
        edges = {}

        def add(frm, to, file, line):
            cur = edges.get((frm, to))
            edges[(frm, to)] = (cur[0], cur[1], cur[2] + 1) if cur else (
                file, line, 1)

        for fn in self.model.funcs:
            held = []  # (key, start, end)
            for k in self.requires_of(fn):
                held.append((k, fn.body_start, fn.body_end))
            manual_open = []
            events = sorted(fn.events, key=lambda e: e.pos)
            for ev in events:
                line = self._line(fn, ev)
                if ev.kind == "lock":
                    k = self.resolve_lock(ev.data, fn.class_path, fn.file,
                                          line)
                    if not k:
                        continue
                    # h == k yields a self-edge: either an index/address-
                    # ordered two-shard acquisition (declare it with
                    # witness "ordered") or a genuine recursive-lock bug.
                    for h, s, e in held:
                        if s <= ev.pos < e:
                            add(h, k, fn.file, line)
                    for h, s in manual_open:
                        add(h, k, fn.file, line)
                    held.append((k, ev.pos, ev.end))
                elif ev.kind == "manual_lock":
                    k = self.resolve_lock(ev.data, fn.class_path, fn.file,
                                          line, report=False)
                    if not k:
                        continue
                    for h, s, e in held:
                        if s <= ev.pos < e and h != k:
                            add(h, k, fn.file, line)
                    manual_open.append((k, ev.pos))
                elif ev.kind == "manual_unlock":
                    k = self.resolve_lock(ev.data, fn.class_path, fn.file,
                                          line, report=False)
                    manual_open = [(h, s) for h, s in manual_open if h != k]
                elif ev.kind == "call":
                    callees = self.resolve_callees(fn, *ev.data)
                    if not callees:
                        continue
                    now = [h for h, s, e in held if s <= ev.pos < e]
                    now += [h for h, s in manual_open]
                    for callee in callees:
                        inner = (acq.get(callee.qname, set()) -
                                 self.requires_of(callee))
                        for h in now:
                            for k in inner - {h}:
                                add(h, k, fn.file, line)
        self._edges = edges
        return edges

    # ---- check 1: lock rank ----

    def check_rank(self):
        t = self.table
        extracted = self.extract_edges()
        inv = {key_str(d.class_path, d.field) for d in self.model.locks}
        for k in sorted(inv - set(t.ranks)):
            d = next(d for d in self.model.locks
                     if key_str(d.class_path, d.field) == k)
            self.findings.append(Finding(
                "rank", d.file, d.line,
                "mutex '%s' is not in tools/lock_rank.json" % k))
        for k in sorted(set(t.ranks) - inv - t.pseudo):
            self.findings.append(Finding(
                "rank", "tools/lock_rank.json", 0,
                "declared lock '%s' no longer exists in src/" % k))
        for (frm, to), (file, line, count) in sorted(extracted.items()):
            decl = t.edges.get((frm, to))
            if frm == to:
                if not decl or decl.get("witness") != "ordered":
                    self.findings.append(Finding(
                        "rank", file, line,
                        "same-rank double acquisition '%s' -> '%s' must be "
                        "declared with witness \"ordered\" (index/address-"
                        "ordered) in lock_rank.json" % (frm, to)))
                continue
            if decl is None:
                self.findings.append(Finding(
                    "rank", file, line,
                    "acquisition edge '%s' -> '%s' is not declared in "
                    "tools/lock_rank.json (%d site%s)" %
                    (frm, to, count, "s" if count > 1 else "")))
                continue
            rf, rt = t.ranks.get(frm), t.ranks.get(to)
            if rf is not None and rt is not None and rf >= rt:
                self.findings.append(Finding(
                    "rank", file, line,
                    "rank inversion: '%s' (rank %d) acquired while holding "
                    "'%s' (rank %d)" % (to, rt, frm, rf)))
        for (frm, to), decl in sorted(t.edges.items()):
            for end in (frm, to):
                if end not in t.ranks:
                    self.findings.append(Finding(
                        "rank", "tools/lock_rank.json", 0,
                        "edge endpoint '%s' is not a declared lock" % end))
            witness = decl.get("witness", "static")
            if witness == "static" and (frm, to) not in extracted:
                self.findings.append(Finding(
                    "rank", "tools/lock_rank.json", 0,
                    "declared static edge '%s' -> '%s' was not extracted "
                    "from src/ (stale table?)" % (frm, to)))
            if frm != to and frm in t.ranks and to in t.ranks and \
                    t.ranks[frm] >= t.ranks[to]:
                self.findings.append(Finding(
                    "rank", "tools/lock_rank.json", 0,
                    "declared edge '%s' -> '%s' contradicts its ranks "
                    "(%d >= %d)" % (frm, to, t.ranks[frm], t.ranks[to])))
        self._check_acquired_after()
        self._check_cycles(extracted)

    def _check_acquired_after(self):
        for d in self.model.locks:
            me = key_str(d.class_path, d.field)
            for expr in d.acquired_after:
                other = self.resolve_lock(expr, d.class_path, d.file, d.line,
                                          report=False)
                if not other:
                    continue
                rm, ro = self.table.ranks.get(me), self.table.ranks.get(other)
                if rm is not None and ro is not None and rm <= ro:
                    self.findings.append(Finding(
                        "rank", d.file, d.line,
                        "SHEAP_ACQUIRED_AFTER(%s) contradicts lock_rank.json"
                        " (%s rank %d <= %s rank %d)" %
                        (expr, me, rm, other, ro)))

    def _check_cycles(self, extracted):
        graph = {}
        for (frm, to) in list(extracted) + list(self.table.edges):
            if frm != to:
                graph.setdefault(frm, set()).add(to)
        WHITE, GREY, BLACK = 0, 1, 2
        color = {}
        cycle = []

        def dfs(n, path):
            color[n] = GREY
            for m in sorted(graph.get(n, ())):
                if color.get(m, WHITE) == GREY:
                    cycle.append(path[path.index(m):] + [m])
                    return True
                if color.get(m, WHITE) == WHITE and dfs(m, path + [m]):
                    return True
            color[n] = BLACK
            return False

        for n in sorted(graph):
            if color.get(n, WHITE) == WHITE and dfs(n, [n]):
                break
        if cycle:
            self.findings.append(Finding(
                "rank", "tools/lock_rank.json", 0,
                "acquisition graph has a cycle: " +
                " -> ".join(cycle[0])))

    # ---- check 2: gate discipline ----

    def _gate_funcs(self):
        cls = self.table.gate_class
        return [fn for fn in self.model.funcs
                if fn.class_path == cls or
                fn.class_path.startswith(cls + "::") or
                fn.qname.startswith(cls + "::")]

    def _opens_gate(self):
        """qname -> True if the function (transitively) opens a section."""
        opens = {fn.qname: any(ev.kind == "gate" for ev in fn.events)
                 for fn in self.model.funcs}
        calls = {}
        for fn in self.model.funcs:
            cl = calls.setdefault(fn.qname, set())
            for ev in fn.events:
                if ev.kind == "call":
                    for callee in self.resolve_callees(fn, *ev.data):
                        cl.add(callee.qname)
        changed = True
        while changed:
            changed = False
            for q, cl in calls.items():
                if not opens.get(q) and any(opens.get(c) for c in cl):
                    opens[q] = True
                    changed = True
        return opens

    def check_gate(self):
        cls = self.table.gate_class
        if not cls:
            return
        idx = self.func_idx
        opens = self._opens_gate()
        seen = set()
        for md in self.model.method_decls:
            if md.class_path != cls or md.access != "public":
                continue
            base = cls.split("::")[-1]
            if md.name in (base, "operator") or md.name.startswith("~"):
                continue
            if md.name in seen:
                continue
            seen.add(md.name)
            if md.name in self.table.gate_exempt:
                continue
            q = cls + "::" + md.name
            defs = idx.get(q, [])
            if not defs:
                self.findings.append(Finding(
                    "gate", md.file, md.line,
                    "public entry point '%s' has no analyzable definition "
                    "(add it to gate.exempt with a reason if intentional)"
                    % q))
                continue
            for fn in defs:
                if not opens.get(fn.qname):
                    self.findings.append(Finding(
                        "gate", fn.file, fn.line,
                        "public entry point '%s' never opens a MutatorGate "
                        "Shared/ExclusiveSection (and reaches none); gate "
                        "it or add it to gate.exempt with a reason" % q))
        for name in self.table.gate_exempt:
            if name not in seen and not any(
                    md.class_path == cls and md.name == name
                    for md in self.model.method_decls):
                self.findings.append(Finding(
                    "gate", "tools/lock_rank.json", 0,
                    "gate.exempt entry '%s' is not a public method of %s"
                    % (name, cls)))
        self._check_gate_exclusive()

    def _gate_context(self, fn, pos):
        """'shared' / 'exclusive' / None for a position in fn's body."""
        best = None
        best_pos = -1
        for ev in fn.events:
            if ev.kind == "gate" and ev.pos <= pos < ev.end and \
                    ev.pos > best_pos:
                best, best_pos = ev.data, ev.pos
        return best

    def _lambda_spans(self, fn):
        return [(g.body_start, g.body_end) for g in self.model.funcs
                if g.file == fn.file and "<lambda" in g.qname
                and g.qname != fn.qname
                and fn.body_start < g.body_start and
                g.body_end <= fn.body_end]

    def _check_gate_exclusive(self):
        cls = self.table.gate_class
        fields = [m for m in self.model.members
                  if m.class_path == cls and
                  "SHEAP_GATE_EXCLUSIVE" in m.annotations]
        if not fields:
            return
        gate_funcs = self._gate_funcs()
        touches = {}
        for fn in gate_funcs:
            s = self.model.stripped[fn.file]
            spans = self._lambda_spans(fn)
            mine = {}
            for m in fields:
                for occ in re.finditer(r"\b%s\b" % re.escape(m.name), s,
                                       ):
                    p = occ.start()
                    if not (fn.body_start < p < fn.body_end):
                        continue
                    if any(a <= p < b for a, b in spans):
                        continue
                    mine.setdefault(m.name, []).append(p)
            touches[fn.qname] = mine
        trans = {q: set(v) for q, v in touches.items()}
        calls = {}
        for fn in gate_funcs:
            cl = calls.setdefault(fn.qname, set())
            for ev in fn.events:
                if ev.kind == "call":
                    for callee in self.resolve_callees(fn, *ev.data):
                        cl.add(callee.qname)
        changed = True
        while changed:
            changed = False
            for q, cl in calls.items():
                for c in cl:
                    add = trans.get(c, set())
                    if not add <= trans.get(q, set()):
                        trans.setdefault(q, set()).update(add)
                        changed = True
        for fn in gate_funcs:
            for name, positions in touches.get(fn.qname, {}).items():
                for p in positions:
                    if self._gate_context(fn, p) == "shared":
                        self.findings.append(Finding(
                            "gate", fn.file,
                            self.model.lines[fn.file].line_of(p),
                            "SHEAP_GATE_EXCLUSIVE field '%s::%s' touched "
                            "inside a SharedSection" % (cls, name)))
            for ev in fn.events:
                if ev.kind != "call":
                    continue
                if self._gate_context(fn, ev.pos) != "shared":
                    continue
                for callee in self.resolve_callees(fn, *ev.data):
                    hit = trans.get(callee.qname, set())
                    if hit:
                        self.findings.append(Finding(
                            "gate", fn.file, self._line(fn, ev),
                            "call to '%s' inside a SharedSection reaches "
                            "SHEAP_GATE_EXCLUSIVE field(s): %s" %
                            (callee.qname, ", ".join(sorted(hit)))))

    # ---- check 3: atomics audit ----

    def check_atomics(self):
        scope = self.table.atomics_scope
        scoped_names = set()
        for d in self.model.atomics:
            stem = d.file.rsplit(".", 1)[0]
            if in_scope(stem, scope) or in_scope(d.file, scope):
                scoped_names.add(d.name)
        writes = {}
        reads = {}
        sites = {}
        for op in self.model.atomic_ops:
            if op.name not in scoped_names:
                continue
            stem = op.file.rsplit(".", 1)[0]
            if not (in_scope(stem, scope) or in_scope(op.file, scope)):
                continue
            if op.op in ("notify_one", "notify_all"):
                continue
            if not op.orders:
                self.findings.append(Finding(
                    "atomics", op.file, op.line,
                    "atomic '%s': %s without an explicit std::memory_order "
                    "(implicit seq_cst)" % (op.name, op.op)))
                continue
            sites.setdefault(op.name, (op.file, op.line))
            if op.op in WRITE_OPS:
                w = op.orders[0]
                writes.setdefault(op.name, set()).add(w)
            if op.op in READ_OPS:
                r = op.orders[-1] if op.op.startswith("compare_exchange") \
                    else op.orders[0]
                reads.setdefault(op.name, set()).add(r)
                if op.op.startswith("compare_exchange"):
                    reads[op.name].add(op.orders[0])
        for name in sorted(scoped_names):
            w = writes.get(name, set())
            r = reads.get(name, set())
            file, line = sites.get(name, ("", 0))
            if not file:
                continue
            if w & RELEASE_SIDE and r and not (r & ACQUIRE_SIDE):
                self.findings.append(Finding(
                    "atomics", file, line,
                    "atomic '%s': release-side writes (%s) but no acquire-"
                    "side reads (%s) — one-sided fence" %
                    (name, ",".join(sorted(w)), ",".join(sorted(r)))))
            if r & ACQUIRE_SIDE and w and not (w & RELEASE_SIDE):
                self.findings.append(Finding(
                    "atomics", file, line,
                    "atomic '%s': acquire-side reads (%s) but no release-"
                    "side writes (%s) — one-sided fence" %
                    (name, ",".join(sorted(r)), ",".join(sorted(w)))))

    # ---- check 4: annotation coverage ----

    def check_coverage(self):
        scope = self.table.coverage_scope
        locked_classes = {d.class_path for d in self.model.locks}
        for m in self.model.members:
            if not in_scope(m.file, scope):
                continue
            if m.class_path not in locked_classes:
                continue
            if re.search(r"\b(const|constexpr)\b", m.type_text):
                continue
            bare = re.sub(r"\b(mutable|static|inline)\b", " ", m.type_text)
            core = bare.replace(" ", "")
            if core in ("Mutex", "sheap::Mutex", "CondVar",
                        "sheap::CondVar"):
                continue
            if re.match(r"^std::atomic<", core):
                continue
            if m.guarded_by:
                continue
            if self._justified(m):
                continue
            self.findings.append(Finding(
                "coverage", m.file, m.line,
                "member '%s::%s' of a mutex-owning class has no GUARDED_BY "
                "and no '// unguarded:' justification" %
                (m.class_path, m.name)))

    def _justified(self, m):
        raw = self.model.files[m.file].split("\n")
        # The comment must be on the declaration line or up to two lines
        # above it — never below, where it would belong to the next member.
        for ln in range(max(0, m.line - 3), min(len(raw), m.line)):
            if "unguarded:" in raw[ln]:
                return True
        return False

    # ---- driver ----

    def run(self, which=("rank", "gate", "atomics", "coverage")):
        if "rank" in which:
            self.check_rank()
        if "gate" in which:
            self.check_gate()
        if "atomics" in which:
            self.check_atomics()
        if "coverage" in which:
            self.check_coverage()
        return self.findings

    # ---- reporting ----

    def graph_json(self):
        extracted = self.extract_edges()
        return {
            "locks": [{"key": key_str(d.class_path, d.field),
                       "rank": self.table.ranks.get(
                           key_str(d.class_path, d.field)),
                       "declared_at": "%s:%d" % (d.file, d.line)}
                      for d in sorted(self.model.locks,
                                      key=lambda d: d.key)],
            "extracted_edges": [
                {"from": frm, "to": to, "sites": count,
                 "witness": "%s:%d" % (file, line)}
                for (frm, to), (file, line, count)
                in sorted(extracted.items())],
            "declared_edges": [
                dict(e) for _, e in sorted(self.table.edges.items())],
        }

    def report(self):
        lines = []
        lines.append("== locks ==")
        for d in sorted(self.model.locks, key=lambda d: d.key):
            k = key_str(d.class_path, d.field)
            lines.append("  %-40s rank=%-4s %s:%d" %
                         (k, self.table.ranks.get(k, "?"), d.file, d.line))
        lines.append("== extracted edges ==")
        for (frm, to), (file, line, count) in sorted(
                self.extract_edges().items()):
            mark = " " if (frm, to) in self.table.edges else "!"
            lines.append("%s %-38s -> %-38s %dx  %s:%d" %
                         (mark, frm, to, count, file, line))
        lines.append("== atomics ==")
        for op in self.model.atomic_ops:
            lines.append("  %-22s %-24s [%s]  %s:%d" %
                         (op.name, op.op, ",".join(op.orders),
                          op.file, op.line))
        lines.append("== gate entry points (%s) ==" % self.table.gate_class)
        opens = self._opens_gate()
        seen = set()
        for md in self.model.method_decls:
            if md.class_path != self.table.gate_class or \
                    md.access != "public" or md.name in seen:
                continue
            seen.add(md.name)
            q = md.class_path + "::" + md.name
            status = ("exempt" if md.name in self.table.gate_exempt else
                      "gated" if any(opens.get(f.qname)
                                     for f in self.func_idx.get(q, []))
                      else "UNGATED")
            lines.append("  %-44s %s" % (q, status))
        return "\n".join(lines)
