"""DESIGN.md §5e is generated from tools/lock_rank.json.

The table between the BEGIN/END markers below is machine-written by
`sheap_analyze --write-markdown` and verified by `--check-markdown` (a lint
ctest), so the documented rank table and the checker's rank table are the
same bytes and can never drift.
"""

BEGIN = ("<!-- BEGIN GENERATED: lock-rank "
         "(tools/lock_rank.json via sheap_analyze --write-markdown; "
         "do not edit by hand) -->")
END = "<!-- END GENERATED: lock-rank -->"

WITNESS_LABEL = {
    "static": "static nesting",
    "indirect": "via callback",
    "ordered": "index-ordered pair",
}


def render(data):
    locks = sorted(data.get("locks", []),
                   key=lambda e: (e["rank"], e["key"]))
    edges = data.get("edges", [])
    has_out = {e["from"] for e in edges if e["from"] != e["to"]}
    lines = [BEGIN, ""]
    lines.append("| rank | lock | guards |")
    lines.append("|------|------|--------|")
    for e in locks:
        rank = str(e["rank"])
        if not e.get("pseudo") and e["key"] not in has_out:
            rank += " (leaf)"
        name = "`%s`" % e["key"]
        if e.get("display"):
            name = e["display"]
        lines.append("| %s | %s | %s |" % (rank, name, e.get("note", "")))
    lines.append("")
    lines.append("The acquisition edges that actually occur — each one "
                 "reconciled two-sidedly against the graph extracted from "
                 "`src/` by `sheap_analyze` (`ctest -L lint`):")
    lines.append("")
    lines.append("| held | acquires | how | why |")
    lines.append("|------|----------|-----|-----|")
    for e in sorted(edges, key=lambda e: (e["from"], e["to"])):
        lines.append("| `%s` | `%s` | %s | %s |" % (
            e["from"], e["to"],
            WITNESS_LABEL.get(e.get("witness", "static"), e["witness"]),
            e.get("note", "")))
    lines.append("")
    lines.append(END)
    return "\n".join(lines)


def find_block(text):
    """(start, end) character span of the generated block, or None."""
    b = text.find(BEGIN)
    if b < 0:
        return None
    e = text.find(END, b)
    if e < 0:
        return None
    return (b, e + len(END))


def check(design_text, data):
    """Error message if the generated block is missing or stale, else None."""
    span = find_block(design_text)
    if span is None:
        return ("DESIGN.md has no generated lock-rank block "
                "(markers '%s' ... '%s')" % (BEGIN[:40], END))
    current = design_text[span[0]:span[1]]
    if current != render(data):
        return ("DESIGN.md lock-rank block is stale; run "
                "`python3 tools/sheap_analyze --write-markdown`")
    return None


def write(design_path, data):
    with open(design_path, "r", encoding="utf-8") as fh:
        text = fh.read()
    span = find_block(text)
    if span is None:
        raise SystemExit("no generated lock-rank block in " + design_path)
    out = text[:span[0]] + render(data) + text[span[1]:]
    with open(design_path, "w", encoding="utf-8") as fh:
        fh.write(out)
