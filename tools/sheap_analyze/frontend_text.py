"""Text frontend: builds the protocol Model without a C++ parser.

The scanner walks each comment/string-blanked file tracking a scope stack
(namespace / class / function / control / block / lambda), classifying each
`{` by the statement segment that precedes it. That is enough structure to
recover, with real source locations:

  * Mutex / std::atomic / annotated member declarations (class scope),
  * method declarations and their REQUIRES annotations,
  * function definitions with body spans,
  * MutexLock / manual lock() / gate-section / call events inside bodies.

Lambdas become their own FuncDefs (`Outer::<lambda:LINE>`): their events are
analyzed in the lambda's context and excluded from the enclosing function,
because a lambda body runs at its *call* site (possibly under different
locks), not its definition site. Edges through type-erased callbacks are
declared in tools/lock_rank.json with witness "indirect" instead.

This is deliberately not a C++ parser; it is tuned to the repo's lint-enforced
idioms (sheap::Mutex members, RAII MutexLock, SHEAP_* annotations) and the
selftest fixtures pin its behavior. The clang frontend cross-checks the
inventories when python clang bindings are available.
"""

import os
import re

from . import cxxlex
from . import cxxmodel

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch"}
BARE_CONTROL = {"else", "do", "try"}
TYPE_KEYWORDS = {"void", "int", "bool", "char", "auto", "unsigned", "long",
                 "short", "float", "double", "return", "co_return", "new",
                 "delete", "sizeof", "alignof", "decltype", "static_assert",
                 "throw", "case", "default", "goto", "operator"}
NOT_A_CALL = CONTROL_KEYWORDS | TYPE_KEYWORDS | {
    "MutexLock", "SharedSection", "ExclusiveSection", "defined", "assert"}
ANNOTATIONS_WITH_ARG = (
    "SHEAP_GUARDED_BY", "SHEAP_PT_GUARDED_BY", "SHEAP_REQUIRES",
    "SHEAP_REQUIRES_SHARED", "SHEAP_EXCLUDES", "SHEAP_ACQUIRE",
    "SHEAP_RELEASE", "SHEAP_ACQUIRED_AFTER", "SHEAP_ACQUIRED_BEFORE",
    "SHEAP_RETURN_CAPABILITY", "SHEAP_CAPABILITY")
ANNOTATIONS_BARE = ("SHEAP_GATE_EXCLUSIVE", "SHEAP_SCOPED_CAPABILITY",
                    "SHEAP_NO_THREAD_SAFETY_ANALYSIS")

MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*&\s*([^()]+?)\s*\)")
GATE_RE = re.compile(
    r"\b(?:MutatorGate\s*::\s*)?(SharedSection|ExclusiveSection)"
    r"\s+\w+\s*\(\s*&?\s*([\w.>-]+)\s*\)")
CALL_RE = re.compile(
    r"(?<![\w.>:])((?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*)([A-Za-z_]\w*)\s*\(")
ACCESS_RE = re.compile(r"\b(public|private|protected)\s*:")
ATOMIC_DECL_RE = re.compile(
    r"\bstd\s*::\s*atomic\s*<[^;{}()]*>\s+([A-Za-z_]\w*)\s*[{=;\[]")
ORDER_RE = re.compile(r"\bmemory_order(?:_|\s*::\s*)(\w+)")
ATOMIC_METHODS = ("load", "store", "exchange", "fetch_add", "fetch_sub",
                  "fetch_or", "fetch_and", "fetch_xor",
                  "compare_exchange_weak", "compare_exchange_strong",
                  "wait", "notify_one", "notify_all")


def strip_preproc(text):
    """Blank preprocessor lines (and their backslash continuations),
    preserving line structure."""
    lines = text.split("\n")
    cont = False
    for i, line in enumerate(lines):
        active = cont or line.lstrip().startswith("#")
        cont = active and line.rstrip().endswith("\\")
        if active:
            lines[i] = " " * len(line)
    return "\n".join(lines)


def _first_toplevel_group(seg):
    """(name, open_index) of the first paren group at paren depth 0 whose
    preceding token is a plausible function name; (None, -1) otherwise."""
    depth = 0
    i = 0
    while i < len(seg):
        c = seg[i]
        if c == ")":
            depth -= 1
        elif c == "(":
            if depth == 0:
                j = i - 1
                while j >= 0 and seg[j].isspace():
                    j -= 1
                k = j
                while k >= 0 and (seg[k].isalnum() or seg[k] in "_:~"):
                    k -= 1
                name = seg[k + 1:j + 1]
                if name and name not in CONTROL_KEYWORDS:
                    if name.split("::")[-1] in TYPE_KEYWORDS:
                        i = cxxlex.balanced_span(seg, i) - 1
                        depth -= 1  # compensated by the += below
                    else:
                        return name, i
                else:
                    return None, -1  # control statement
            depth += 1
        i += 1
    return None, -1


def _is_lambda_intro(seg):
    """True if the `{` this segment precedes opens a lambda body."""
    s = seg.rstrip()
    while True:  # strip trailing lambda specifiers / return type
        m = re.search(r"(?:mutable|noexcept|->\s*[\w:<>,&*\s]+)$", s)
        if not m:
            break
        s = s[:m.start()].rstrip()
    if s.endswith("]"):
        return True  # [...] {    (no parameter list)
    if not s.endswith(")"):
        return False
    depth = 0
    for i in range(len(s) - 1, -1, -1):
        if s[i] == ")":
            depth += 1
        elif s[i] == "(":
            depth -= 1
            if depth == 0:
                j = i - 1
                while j >= 0 and s[j].isspace():
                    j -= 1
                return j >= 0 and s[j] == "]"
    return False


class _Scope:
    __slots__ = ("kind", "name", "open_pos", "qname", "class_path",
                 "requires", "access", "lambda_spans", "line")

    def __init__(self, kind, name, open_pos):
        self.kind = kind
        self.name = name
        self.open_pos = open_pos
        self.qname = ""
        self.class_path = ""
        self.requires = []
        self.access = "private"
        self.lambda_spans = []
        self.line = 0


class FileScanner:
    def __init__(self, relpath, text, model):
        self.path = relpath
        self.model = model
        self.raw = text
        self.s = strip_preproc(cxxlex.strip_comments(text))
        self.li = cxxlex.LineIndex(self.s)
        self.stack = []
        self.brace_spans = []
        model.files[relpath] = text
        model.stripped[relpath] = self.s
        model.lines[relpath] = self.li

    # ---- scope helpers ----

    def _class_path(self):
        return "::".join(sc.name for sc in self.stack if sc.kind == "class")

    def _enclosing_func(self):
        for sc in reversed(self.stack):
            if sc.kind in ("func", "lambda"):
                return sc
        return None

    def _in_function(self):
        return self._enclosing_func() is not None

    # ---- main walk ----

    def scan(self):
        s = self.s
        seg_start = 0
        open_stack = []  # (pos, scope-or-None); None = init/enum skip braces
        i = 0
        n = len(s)
        while i < n:
            c = s[i]
            if c == "{":
                seg = s[seg_start:i]
                scope = self._classify(seg, i)
                if scope is None:  # initializer braces: stay in the segment
                    end = self._match_brace(i)
                    self.brace_spans.append((i, end))
                    i = end
                    continue
                self.stack.append(scope)
                open_stack.append((i, scope))
                seg_start = i + 1
            elif c == "}":
                if open_stack:
                    open_pos, scope = open_stack.pop()
                    self.brace_spans.append((open_pos, i + 1))
                    if self.stack and self.stack[-1] is scope:
                        self.stack.pop()
                    self._close_scope(scope, open_pos, i + 1)
                seg_start = i + 1
            elif c == ";":
                self._statement(s[seg_start:i], seg_start)
                seg_start = i + 1
            i += 1
        self.brace_spans.sort()

    def _match_brace(self, open_pos):
        depth = 0
        s = self.s
        for i in range(open_pos, len(s)):
            if s[i] == "{":
                depth += 1
            elif s[i] == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
        return len(s)

    def _classify(self, seg, brace_pos):
        """Scope for the '{' at brace_pos, or None for initializer braces."""
        stripped = seg.strip()
        m = re.search(r"\bnamespace(\s+[A-Za-z_]\w*)?\s*$", stripped)
        if m:
            return _Scope("namespace", (m.group(1) or "").strip(), brace_pos)
        if re.search(r"\bextern\s*\"", stripped):
            return _Scope("namespace", "", brace_pos)
        if re.search(r"\benum\b[^;()]*$", stripped):
            return _Scope("enum", "", brace_pos)
        m = re.search(
            r"\b(class|struct|union)\s+(?:alignas\s*\([^)]*\)\s*)?"
            r"(?:SHEAP_\w+\s*(?:\([^)]*\)\s*)?)?"
            r"([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*)(?:\s+final)?"
            r"(?:\s*:(?!:)[^;{]*)?$", stripped)
        if m:
            # Out-of-class nested definitions (`struct Outer::Inner {`)
            # keep the qualifier so members attribute to the inner type,
            # not to Outer.
            name = re.sub(r"\s*::\s*", "::", m.group(2))
            sc = _Scope("class", name, brace_pos)
            sc.access = "public" if m.group(1) != "class" else "private"
            return sc
        if not stripped or stripped.endswith(":"):
            return _Scope("block", "", brace_pos)
        last = re.findall(r"[A-Za-z_]\w*", stripped)
        if last and last[-1] in BARE_CONTROL and stripped.endswith(last[-1]):
            return _Scope("control", last[-1], brace_pos)
        if _is_lambda_intro(stripped):
            sc = _Scope("lambda", "", brace_pos)
            sc.line = self.li.line_of(brace_pos)
            return sc
        name, open_idx = _first_toplevel_group(stripped)
        if name is None:
            if stripped.endswith(")"):
                return _Scope("control", "", brace_pos)
            return None  # braced initializer / unknown: skip
        if re.search(r"=(?!=)[^=]*$",
                     re.sub(r"\([^()]*\)", "", stripped[:open_idx])):
            return None  # assignment before the group: an initializer
        return self._function_scope(stripped, name, brace_pos)

    def _function_scope(self, seg, name, brace_pos):
        sc = _Scope("func", name, brace_pos)
        cls = self._class_path()
        if "::" in name:
            qual, _, base = name.rpartition("::")
            qual = qual.lstrip(":")
            sc.name = base
            cls = qual if not cls else cls + "::" + qual
        elif not cls:
            cls = ""
        sc.class_path = cls
        sc.qname = (cls + "::" + sc.name) if cls else sc.name
        sc.line = self.li.line_of(brace_pos)
        if "::" not in name and cls:
            current = None
            for outer in reversed(self.stack):
                if outer.kind == "class":
                    current = outer
                    break
            if current is not None:
                self.model.method_decls.append(cxxmodel.MethodDecl(
                    class_path=cls, name=sc.name.lstrip("~"),
                    access=current.access, file=self.path, line=sc.line))
        for am in re.finditer(
                r"\bSHEAP_REQUIRES(?:_SHARED)?\s*\(", seg):
            sc.requires += [a.strip() for a in
                            cxxlex.call_args(seg, am.end() - 1).split(",")
                            if a.strip()]
        return sc

    def _close_scope(self, scope, open_pos, close_pos):
        if scope.kind == "lambda":
            host = self._enclosing_func()
            qname = ((host.qname if host else "<file>") +
                     "::<lambda:%d>" % scope.line)
            scope.qname = qname
            scope.class_path = host.class_path if host else ""
            if host:
                host.lambda_spans.append((open_pos, close_pos))
            self._emit_func(scope, open_pos, close_pos)
        elif scope.kind == "func":
            self._emit_func(scope, open_pos, close_pos)

    def _emit_func(self, scope, open_pos, close_pos):
        fn = cxxmodel.FuncDef(
            qname=scope.qname, class_path=scope.class_path, name=scope.name,
            file=self.path, line=scope.line,
            body_start=open_pos, body_end=close_pos,
            requires=list(scope.requires))
        fn.events = self._extract_events(open_pos + 1, close_pos - 1,
                                         scope.lambda_spans)
        self.model.funcs.append(fn)

    # ---- statements (declarations) ----

    def _statement(self, seg, seg_pos):
        for am in ACCESS_RE.finditer(seg):
            for sc in reversed(self.stack):
                if sc.kind == "class":
                    sc.access = am.group(1)
                    break
        if self._in_function():
            return
        in_class = any(sc.kind == "class" for sc in self.stack)
        stripped = seg.strip()
        # drop access labels that share the segment with the declaration
        last_acc = None
        for am in ACCESS_RE.finditer(stripped):
            last_acc = am
        if last_acc:
            stripped = stripped[last_acc.end():].strip()
        if not stripped:
            return
        m = ATOMIC_DECL_RE.search(stripped + ";")
        if m and not in_class:
            pos = seg_pos + seg.find(stripped)
            self.model.atomics.append(cxxmodel.AtomicDecl(
                class_path="", name=m.group(1), file=self.path,
                line=self.li.line_of(pos)))
            return
        if not in_class:
            return
        if re.match(r"^(friend|using|typedef|template|static_assert|"
                    r"class|struct|enum|union)\b", stripped):
            return
        pos = seg_pos + seg.find(stripped[:20] or " ")
        line = self.li.line_of(seg_pos + len(seg) - len(seg.lstrip()))
        cls = self._class_path()
        name, open_idx = _first_toplevel_group(self._without_annotations(
            stripped))
        if name is not None:
            self._method_decl(stripped, name, cls, line)
            return
        self._member_decl(stripped, cls, line)

    @staticmethod
    def _without_annotations(seg):
        out = seg
        for mac in ANNOTATIONS_WITH_ARG:
            out = re.sub(r"\b%s\s*\([^()]*\)" % mac, " ", out)
        for mac in ANNOTATIONS_BARE:
            out = re.sub(r"\b%s\b" % mac, " ", out)
        return out

    def _method_decl(self, seg, name, cls, line):
        base = name.split("::")[-1].lstrip("~")
        current = None
        for sc in reversed(self.stack):
            if sc.kind == "class":
                current = sc
                break
        access = current.access if current else "private"
        self.model.method_decls.append(cxxmodel.MethodDecl(
            class_path=cls, name=base, access=access,
            file=self.path, line=line))
        reqs = []
        for am in re.finditer(r"\bSHEAP_REQUIRES(?:_SHARED)?\s*\(", seg):
            reqs += [a.strip() for a in
                     cxxlex.call_args(seg, am.end() - 1).split(",")
                     if a.strip()]
        if reqs:
            self.model.requires.setdefault((cls, base), []).extend(reqs)

    def _member_decl(self, seg, cls, line):
        annotations = []
        guarded = None
        acquired_after = []
        for mac in ANNOTATIONS_BARE:
            if re.search(r"\b%s\b" % mac, seg):
                annotations.append(mac)
        for am in re.finditer(r"\b(SHEAP_\w+)\s*\(", seg):
            mac = am.group(1)
            arg = cxxlex.call_args(seg, am.end() - 1).strip()
            annotations.append(mac)
            if mac in ("SHEAP_GUARDED_BY", "SHEAP_PT_GUARDED_BY"):
                guarded = arg
            elif mac == "SHEAP_ACQUIRED_AFTER":
                acquired_after.append(arg)
        body = self._without_annotations(seg).strip()
        if re.search(r"\boperator\b", body):
            return  # deleted/defaulted operator, not a data member
        # name: last identifier before any initializer / array suffix
        m = re.match(r"^(.*?)\b([A-Za-z_]\w*)\s*(\[[^\]]*\])?"
                     r"\s*(=.*|\{.*)?$", body, re.S)
        if not m:
            return
        type_text = m.group(1).strip()
        name = m.group(2)
        if not type_text or name in ("delete", "default", "0"):
            return
        is_array = bool(m.group(3))
        self.model.members.append(cxxmodel.MemberInfo(
            class_path=cls, name=name, type_text=type_text,
            annotations=annotations, guarded_by=guarded,
            file=self.path, line=line))
        bare_type = re.sub(r"\b(mutable|static|constexpr|const|inline)\b",
                           " ", type_text).strip()
        if bare_type in ("Mutex", "sheap::Mutex"):
            self.model.locks.append(cxxmodel.LockDecl(
                class_path=cls, field=name, file=self.path, line=line,
                acquired_after=acquired_after))
        if re.match(r"^std\s*::\s*atomic\s*<", bare_type):
            self.model.atomics.append(cxxmodel.AtomicDecl(
                class_path=cls, name=name, file=self.path, line=line))
        self.model.var_types[cls + "::" + name] = _strip_type(
            bare_type, is_array)

    # ---- events ----

    def _extract_events(self, start, end, exclusions):
        s = self.s
        events = []

        def excluded(p):
            return any(a <= p < b for a, b in exclusions)

        taken = []  # spans already claimed by specific patterns
        for m in MUTEXLOCK_RE.finditer(s, start, end):
            if excluded(m.start()):
                continue
            events.append(cxxmodel.Event(
                "lock", m.start(), m.group(1).strip(),
                self._block_end(m.start(), end)))
            taken.append((m.start(), m.end()))
        for m in GATE_RE.finditer(s, start, end):
            if excluded(m.start()):
                continue
            kind = "shared" if m.group(1) == "SharedSection" else "exclusive"
            events.append(cxxmodel.Event(
                "gate", m.start(), kind, self._block_end(m.start(), end)))
            taken.append((m.start(), m.end()))
        for m in CALL_RE.finditer(s, start, end):
            if excluded(m.start()):
                continue
            if any(a <= m.start() < b for a, b in taken):
                continue
            recv = re.sub(r"\s+", "", m.group(1)).rstrip(".:->")
            recv = re.sub(r"(\.|->|::)$", "", recv)
            method = m.group(2)
            if not recv and method in NOT_A_CALL:
                continue
            if method in ("lock", "unlock") and recv:
                events.append(cxxmodel.Event(
                    "manual_" + method, m.start(), recv))
                continue
            events.append(cxxmodel.Event("call", m.start(), (recv, method)))
        events.sort(key=lambda e: e.pos)
        return events

    def _block_end(self, pos, func_end):
        """End of the innermost brace block containing pos (RAII scope)."""
        best = func_end + 1
        for o, c in self.brace_spans:
            if o <= pos < c and c < best:
                best = c
        return best

    # ---- file-wide atomic ops ----

    def atomic_ops_for(self, decls):
        """All accesses in this file to the given atomic decls."""
        ops = []
        s = self.s
        for d in decls:
            for m in re.finditer(r"\b%s\b" % re.escape(d.name), s):
                line = self.li.line_of(m.start())
                if d.file == self.path and line == d.line:
                    continue  # the declaration itself
                j = m.end()
                while j < len(s) and s[j].isspace():
                    j += 1
                prev = m.start() - 1
                while prev >= 0 and s[prev].isspace():
                    prev -= 1
                op, orders = self._classify_access(s, j, prev)
                if op is None:
                    continue
                ops.append(cxxmodel.AtomicOp(
                    name=d.name, op=op, orders=orders,
                    file=self.path, line=line))
        return ops

    @staticmethod
    def _classify_access(s, j, prev):
        """(op, orders) for an atomic identifier ending before j; op=None
        to skip (declaration-ish contexts)."""
        if prev >= 0 and s[prev] in "<,":  # template arg / decl list
            return None, []
        mm = re.match(r"\.\s*(\w+)\s*\(", s[j:j + 64])
        if mm and mm.group(1) in ATOMIC_METHODS:
            open_pos = j + mm.end() - 1
            args = cxxlex.call_args(s, open_pos)
            return mm.group(1), ORDER_RE.findall(args)
        if mm and mm.group(1) == "is_lock_free":
            return None, []
        if re.match(r"\s*(\+\+|--)", s[j:j + 4]):
            return "implicit-rmw", []
        if prev >= 1 and s[prev - 1:prev + 1] in ("++", "--"):
            return "implicit-rmw", []
        if re.match(r"\s*(\+=|-=|\|=|&=|\^=)", s[j:j + 4]):
            return "implicit-rmw", []
        if re.match(r"\s*=[^=]", s[j:j + 4]):
            return "implicit-store", []
        if re.match(r"\s*[{(]", s[j:j + 2]):
            return None, []  # constructor-style init of a local decl
        if prev >= 0 and s[prev] == "&":
            return None, []  # address taken (waiter APIs)
        return "implicit-load", []


def _strip_type(type_text, is_array):
    """Best-effort class name from a member's declared type."""
    t = type_text.strip()
    m = re.match(r"^std\s*::\s*(unique_ptr|shared_ptr|optional)\s*<(.*)>$",
                 t, re.S)
    if m:
        t = m.group(2).strip()
    t = t.rstrip("*& ").strip()
    if is_array:
        pass  # element type already isolated
    return t


def build_model(repo, files=None, roots=("src",)):
    """Scan the tree (or an explicit file list) into a Model."""
    model = cxxmodel.Model()
    paths = []
    if files:
        paths = [os.path.relpath(f, repo) if os.path.isabs(f) else f
                 for f in files]
    else:
        for root in roots:
            base = os.path.join(repo, root)
            for dirpath, _, names in os.walk(base):
                for nm in sorted(names):
                    if nm.endswith((".h", ".cc")):
                        paths.append(os.path.relpath(
                            os.path.join(dirpath, nm), repo))
    scanners = {}
    for rel in sorted(set(paths)):
        with open(os.path.join(repo, rel), "r", encoding="utf-8") as fh:
            text = fh.read()
        sc = FileScanner(rel, text, model)
        sc.scan()
        scanners[rel] = sc
        # function-local / namespace-scope atomics the statement walk does
        # not visit (inventory completeness for the audit)
        known = {(d.file, d.line) for d in model.atomics}
        for m in ATOMIC_DECL_RE.finditer(sc.s):
            line = sc.li.line_of(m.start())
            if (rel, line) not in known:
                model.atomics.append(cxxmodel.AtomicDecl(
                    class_path="", name=m.group(1), file=rel, line=line))
    for sc in scanners.values():
        model.classes.update(m.class_path for m in model.members)
    # atomic ops: look in the declaring file and its .h/.cc sibling
    by_stem = {}
    for rel in scanners:
        by_stem.setdefault(os.path.splitext(rel)[0], []).append(rel)
    for d in model.atomics:
        stem = os.path.splitext(d.file)[0]
        for rel in by_stem.get(stem, [d.file]):
            model.atomic_ops.extend(scanners[rel].atomic_ops_for([d]))
    model.frontend = "text"
    return model
