import os
import sys

if __package__ in (None, ""):  # `python3 tools/sheap_analyze` (zip/dir)
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from sheap_analyze.cli import main  # type: ignore
else:
    from .cli import main

sys.exit(main())
