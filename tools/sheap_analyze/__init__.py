"""sheap_analyze: concurrency-protocol analyzer for the sheap tree.

Four checks (see checks.py): lock-rank graph reconciliation against
tools/lock_rank.json, MutatorGate discipline, explicit-memory-order +
release/acquire pairing audit, and GUARDED_BY coverage. Run as
`python3 tools/sheap_analyze` (see cli.py for flags).
"""
