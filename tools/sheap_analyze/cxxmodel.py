"""The protocol model sheap_analyze checks operate on.

A Model is frontend-independent: the text frontend builds it from stripped
source, the libclang frontend (when python clang bindings are importable)
cross-validates the inventories from the real AST. Every entity carries a
(file, line) location for diagnostics.
"""

import dataclasses
from typing import Dict, List, Optional, Set, Tuple


@dataclasses.dataclass
class LockDecl:
    """A sheap::Mutex member: class_path is the lexical class chain
    ('TxnManager::Shard'), field the member name ('mu')."""
    class_path: str
    field: str
    file: str
    line: int
    acquired_after: List[str] = dataclasses.field(default_factory=list)

    @property
    def key(self):
        return (self.class_path, self.field)


@dataclasses.dataclass
class AtomicDecl:
    """A std::atomic declaration (member, local, or namespace-scope)."""
    class_path: str  # '' for non-members
    name: str
    file: str
    line: int


@dataclasses.dataclass
class AtomicOp:
    """One access to a known atomic variable."""
    name: str
    op: str          # load/store/fetch_add/.../implicit-<kind>
    orders: List[str]  # memory_order tokens named in the call ([] = implicit)
    file: str
    line: int

    @property
    def explicit(self):
        return bool(self.orders) or self.op in ("notify_one", "notify_all")


@dataclasses.dataclass
class Event:
    """A position-ordered event inside a function body.

    kind: 'lock'        data=lock expr,   end=enclosing block end
          'manual_lock' data=lock expr    (Mutex::lock(); held to fn end
                                           unless a manual_unlock follows)
          'manual_unlock' data=lock expr
          'gate'        data='shared'|'exclusive', end=enclosing block end
          'call'        data=(receiver chain or '', method name)
          'lambda'      data=None, end=block end (held-set barrier)
    """
    kind: str
    pos: int
    data: object
    end: int = -1


@dataclasses.dataclass
class FuncDef:
    """A function definition (body present)."""
    qname: str        # fully qualified, e.g. 'StableHeap::Commit'
    class_path: str   # enclosing/explicit class, '' for free functions
    name: str
    file: str
    line: int
    body_start: int   # offset of '{' in the stripped file text
    body_end: int     # offset one past the matching '}'
    events: List[Event] = dataclasses.field(default_factory=list)
    requires: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class MethodDecl:
    """A method declaration at class scope (access tracked for the gate
    check's public-entry-point inventory)."""
    class_path: str
    name: str
    access: str  # public/private/protected
    file: str
    line: int


@dataclasses.dataclass
class MemberInfo:
    """A data-member declaration (for coverage + gate-exclusive checks)."""
    class_path: str
    name: str
    type_text: str
    annotations: List[str]  # SHEAP_* annotation macro names present
    guarded_by: Optional[str]
    file: str
    line: int


@dataclasses.dataclass
class Model:
    files: Dict[str, str] = dataclasses.field(default_factory=dict)
    stripped: Dict[str, str] = dataclasses.field(default_factory=dict)
    lines: Dict[str, object] = dataclasses.field(default_factory=dict)
    classes: Set[str] = dataclasses.field(default_factory=set)
    locks: List[LockDecl] = dataclasses.field(default_factory=list)
    atomics: List[AtomicDecl] = dataclasses.field(default_factory=list)
    atomic_ops: List[AtomicOp] = dataclasses.field(default_factory=list)
    funcs: List[FuncDef] = dataclasses.field(default_factory=list)
    members: List[MemberInfo] = dataclasses.field(default_factory=list)
    method_decls: List[MethodDecl] = dataclasses.field(default_factory=list)
    # member/param variable name -> class type ('' = ambiguous/unknown)
    var_types: Dict[str, str] = dataclasses.field(default_factory=dict)
    # (class_path, func name) -> REQUIRES lock exprs from declarations
    requires: Dict[Tuple[str, str], List[str]] = dataclasses.field(
        default_factory=dict)
    frontend: str = "text"

    def func_index(self):
        """qname -> FuncDef list (overloads share a name)."""
        idx = {}
        for f in self.funcs:
            idx.setdefault(f.qname, []).append(f)
        return idx

    def lock_keys(self):
        return {d.key for d in self.locks}
