"""Lexical groundwork for sheap_analyze's text frontend.

The text frontend does not parse C++ — it builds a *protocol model* (scopes,
function bodies, lock/gate/atomic events) from a comment- and string-blanked
view of each translation unit. Blanking preserves byte offsets and line
structure, so every reported location points at the real source.
"""

import bisect
import re


def strip_comments(text):
    """Blank out // and /* */ comments and string/char literal contents,
    keeping line structure and length so positions map 1:1 to the input."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        if mode is None:
            if text.startswith("//", i):
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if text.startswith("/*", i):
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = c
            elif c == "'":
                # C++14 digit separators (2'000'000) are not literal
                # openers: a real char literal is never preceded by an
                # identifier character.
                prev = out[-1][-1] if out and out[-1] else ""
                if not (prev.isalnum() or prev == "_"):
                    mode = c
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if text.startswith("*/", i):
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a literal: keep delimiters, blank the contents
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == mode:
                mode = None
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


class LineIndex:
    """O(log n) position -> 1-based line number."""

    def __init__(self, text):
        self.starts = [0]
        for m in re.finditer("\n", text):
            self.starts.append(m.end())

    def line_of(self, pos):
        return bisect.bisect_right(self.starts, pos)


def balanced_span(text, open_pos):
    """Given text[open_pos] == '(', return the position one past the
    matching ')'. The text must already be comment/string-stripped."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def call_args(text, open_pos):
    """The argument text of a call whose '(' is at open_pos."""
    end = balanced_span(text, open_pos)
    return text[open_pos + 1:end - 1]
