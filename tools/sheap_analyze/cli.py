"""sheap_analyze command line.

Modes (combinable; default = run all four checks on the tree):

  --report            dump the extracted model (locks, edges, atomics, gate)
  --emit-graph FILE   write the extracted lock graph as JSON (CI artifact)
  --emit-markdown     print the generated DESIGN.md lock-rank block
  --check-markdown    fail if DESIGN.md's generated block is stale
  --write-markdown    rewrite DESIGN.md's generated block in place
  --selftest DIR      run the negative-fixture suite under DIR

Exit status: 0 = clean, 1 = findings, 2 = usage/environment error.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile

from . import checks
from . import frontend_clang
from . import frontend_text
from . import rankdoc


def repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(here))


def compdb_files(repo, compdb_path):
    """TU list from the CMake-exported database, repo-relative."""
    with open(compdb_path, "r", encoding="utf-8") as fh:
        db = json.load(fh)
    out = []
    for entry in db:
        f = entry.get("file", "")
        if not os.path.isabs(f):
            f = os.path.join(entry.get("directory", ""), f)
        f = os.path.normpath(f)
        try:
            rel = os.path.relpath(f, repo)
        except ValueError:
            continue
        if rel.startswith("src" + os.sep) and rel.endswith(".cc"):
            out.append(rel)
    return out


def gather_files(repo, compdb_path):
    """All headers under src/ plus the compdb's TUs (or all of src/)."""
    files = []
    for dirpath, _, names in os.walk(os.path.join(repo, "src")):
        for nm in sorted(names):
            rel = os.path.relpath(os.path.join(dirpath, nm), repo)
            if nm.endswith(".h"):
                files.append(rel)
            elif nm.endswith(".cc") and not compdb_path:
                files.append(rel)
    if compdb_path:
        tus = compdb_files(repo, compdb_path)
        if not tus:
            print("sheap_analyze: %s lists no src/*.cc TUs; globbing src/"
                  % compdb_path, file=sys.stderr)
            tus = [os.path.relpath(os.path.join(d, n), repo)
                   for d, _, ns in os.walk(os.path.join(repo, "src"))
                   for n in ns if n.endswith(".cc")]
        files += tus
    files = [f for f in files
             if f != os.path.join("src", "common", "thread_annotations.h")]
    return sorted(set(files))


def run_checks(repo, table_path, compdb, which, frontend, emit_graph=None,
               report=False):
    table = checks.RankTable.load(table_path)
    files = gather_files(repo, compdb)
    model = frontend_text.build_model(repo, files=files)
    analysis = checks.Analysis(model, table)
    analysis.run(which)
    if frontend in ("clang", "auto") and compdb:
        inv = (frontend_clang.ast_inventory(repo, compdb)
               if frontend_clang.available() or frontend == "clang"
               else None)
        if inv is None and frontend == "clang":
            print("sheap_analyze: --frontend clang requested but libclang "
                  "is unusable", file=sys.stderr)
            return 2
        if inv is not None:
            for file, msg in frontend_clang.cross_check(model, inv):
                analysis.findings.append(
                    checks.Finding("frontend", file, 0, msg))
    if report:
        print(analysis.report())
    if emit_graph:
        with open(emit_graph, "w", encoding="utf-8") as fh:
            json.dump(analysis.graph_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("sheap_analyze: wrote %s" % emit_graph)
    if analysis.findings:
        for f in analysis.findings:
            print(f)
        print("sheap_analyze: %d finding(s)" % len(analysis.findings))
        return 1
    if not report:
        print("sheap_analyze: clean (%d locks, %d edges, %d atomics, "
              "%d functions)" %
              (len(model.locks), len(analysis.extract_edges()),
               len(model.atomics), len(model.funcs)))
    return 0


def selftest(testdata):
    """Each case dir = base tree + overlay; expect.txt pins the findings."""
    base = os.path.join(testdata, "base")
    cases_dir = os.path.join(testdata, "cases")
    if not os.path.isdir(base) or not os.path.isdir(cases_dir):
        print("selftest: %s must contain base/ and cases/" % testdata)
        return 2
    failures = 0
    for case in sorted(os.listdir(cases_dir)):
        case_dir = os.path.join(cases_dir, case)
        if not os.path.isdir(case_dir):
            continue
        with tempfile.TemporaryDirectory(prefix="sheap_analyze_") as tmp:
            shutil.copytree(base, tmp, dirs_exist_ok=True)
            for dirpath, _, names in os.walk(case_dir):
                for nm in names:
                    if nm == "expect.txt":
                        continue
                    src = os.path.join(dirpath, nm)
                    rel = os.path.relpath(src, case_dir)
                    dst = os.path.join(tmp, rel)
                    os.makedirs(os.path.dirname(dst), exist_ok=True)
                    shutil.copy(src, dst)
            table = checks.RankTable.load(
                os.path.join(tmp, "lock_rank.json"))
            model = frontend_text.build_model(tmp)
            analysis = checks.Analysis(model, table)
            findings = [str(f) for f in analysis.run()]
            expect_path = os.path.join(case_dir, "expect.txt")
            expected = []
            if os.path.exists(expect_path):
                with open(expect_path, "r", encoding="utf-8") as fh:
                    expected = [ln.strip() for ln in fh
                                if ln.strip() and not ln.startswith("#")]
            ok = True
            if not expected:
                if findings:
                    ok = False
                    print("FAIL %s: expected clean, got:" % case)
                    for f in findings:
                        print("    " + f)
            else:
                for pat in expected:
                    if not any(pat in f for f in findings):
                        ok = False
                        print("FAIL %s: no finding matches %r" % (case, pat))
                        for f in findings:
                            print("    got: " + f)
            if ok:
                print("ok   %s (%d finding(s))" % (case, len(findings)))
            else:
                failures += 1
    if failures:
        print("selftest: %d case(s) failed" % failures)
        return 1
    print("selftest: all cases passed")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="sheap_analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--repo", default=repo_root())
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json (CMake: "
                    "CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    ap.add_argument("--rank-table", default=None,
                    help="default: <repo>/tools/lock_rank.json")
    ap.add_argument("--design", default=None,
                    help="default: <repo>/DESIGN.md")
    ap.add_argument("--frontend", choices=("auto", "text", "clang"),
                    default="auto")
    ap.add_argument("--checks", default="rank,gate,atomics,coverage")
    ap.add_argument("--report", action="store_true")
    ap.add_argument("--emit-graph", metavar="FILE")
    ap.add_argument("--emit-markdown", action="store_true")
    ap.add_argument("--check-markdown", action="store_true")
    ap.add_argument("--write-markdown", action="store_true")
    ap.add_argument("--selftest", metavar="DIR")
    args = ap.parse_args(argv)

    if args.selftest:
        return selftest(args.selftest)

    repo = os.path.abspath(args.repo)
    table_path = args.rank_table or os.path.join(repo, "tools",
                                                 "lock_rank.json")
    design = args.design or os.path.join(repo, "DESIGN.md")
    if not os.path.exists(table_path):
        print("sheap_analyze: missing rank table %s" % table_path)
        return 2

    if args.emit_markdown or args.check_markdown or args.write_markdown:
        with open(table_path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if args.emit_markdown:
            print(rankdoc.render(data))
        if args.write_markdown:
            rankdoc.write(design, data)
            print("sheap_analyze: rewrote lock-rank block in %s" % design)
        if args.check_markdown:
            with open(design, "r", encoding="utf-8") as fh:
                err = rankdoc.check(fh.read(), data)
            if err:
                print("sheap_analyze: " + err)
                return 1
            print("sheap_analyze: DESIGN.md lock-rank block is current")
        if not (args.report or args.emit_graph):
            return 0

    which = tuple(c.strip() for c in args.checks.split(",") if c.strip())
    compdb = args.compdb
    if compdb and not os.path.exists(compdb):
        print("sheap_analyze: compdb %s not found; globbing src/" % compdb,
              file=sys.stderr)
        compdb = None
    return run_checks(repo, table_path, compdb, which, args.frontend,
                      emit_graph=args.emit_graph, report=args.report)
