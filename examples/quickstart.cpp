// Quickstart: open a stable heap, store a linked structure under a stable
// root inside a transaction, crash the "machine", recover, and read the
// data back.
//
//   $ ./quickstart
//
// Demonstrates the three properties of a stable heap (paper §1): automatic
// storage management (no frees anywhere), atomic transactions (the aborted
// update vanishes), and the uniform storage model (volatile objects become
// persistent simply by becoming reachable from a stable root).

#include <cstdio>

#include "core/stable_heap.h"
#include "storage/sim_env.h"

using namespace sheap;

#define CHECK_OK(expr)                                          \
  do {                                                          \
    ::sheap::Status _st = (expr);                               \
    if (!_st.ok()) {                                            \
      std::fprintf(stderr, "error: %s\n", _st.ToString().c_str()); \
      return 1;                                                 \
    }                                                           \
  } while (0)

int main() {
  // The simulated machine: disk + stable log survive crashes.
  SimEnv env;

  StableHeapOptions options;
  options.divided_heap = true;  // volatile nursery + stable area (Ch. 5)

  auto heap_or = StableHeap::Open(&env, options);
  CHECK_OK(heap_or.status());
  auto heap = std::move(*heap_or);

  // A "point" class: slot 0 = scalar value, slot 1 = pointer to next.
  auto cls_or = heap->RegisterClass({false, true});
  CHECK_OK(cls_or.status());
  ClassId point_cls = *cls_or;

  // --- Transaction 1: build a 3-node list and publish it under root 0.
  {
    auto txn = heap->Begin();
    CHECK_OK(txn.status());
    Ref prev = kNullRef;
    for (int i = 3; i >= 1; --i) {
      auto node = heap->Allocate(*txn, point_cls, 2);
      CHECK_OK(node.status());
      CHECK_OK(heap->WriteScalar(*txn, *node, 0, i * 100));
      if (prev != kNullRef) CHECK_OK(heap->WriteRef(*txn, *node, 1, prev));
      prev = *node;
    }
    // The nodes were allocated volatile; this store + commit makes them
    // stable (the tracker notices, the promoter moves them).
    CHECK_OK(heap->SetRoot(*txn, 0, prev));
    CHECK_OK(heap->Commit(*txn));
    std::printf("committed a 3-node list under root 0\n");
  }

  // --- Transaction 2: update the head... then abort. No effect.
  {
    auto txn = heap->Begin();
    CHECK_OK(txn.status());
    auto head = heap->GetRoot(*txn, 0);
    CHECK_OK(head.status());
    CHECK_OK(heap->WriteScalar(*txn, *head, 0, 999999));
    CHECK_OK(heap->Abort(*txn));
    std::printf("aborted an update to the head\n");
  }

  // --- Crash the machine mid-flight.
  CrashOptions crash;
  crash.writeback_fraction = 0.3;  // only some dirty pages reached disk
  crash.tear_tail_bytes = 512;     // and the last log flush tore
  CHECK_OK(heap->SimulateCrash(crash));
  heap.reset();
  std::printf("simulated a crash (memory lost, disk + stable log survive)\n");

  // --- Recover and read back.
  auto reopened = StableHeap::Open(&env, options);
  CHECK_OK(reopened.status());
  heap = std::move(*reopened);
  std::printf("recovered: %llu records analyzed, %llu redone, %llu losers\n",
              (unsigned long long)heap->recovery_stats().analysis_records,
              (unsigned long long)heap->recovery_stats().redo_records_applied,
              (unsigned long long)heap->recovery_stats().losers_aborted);

  {
    auto txn = heap->Begin();
    CHECK_OK(txn.status());
    auto node = heap->GetRoot(*txn, 0);
    CHECK_OK(node.status());
    std::printf("list after recovery:");
    Ref cur = *node;
    while (cur != kNullRef) {
      auto value = heap->ReadScalar(*txn, cur, 0);
      CHECK_OK(value.status());
      std::printf(" %llu", (unsigned long long)*value);
      auto next = heap->ReadRef(*txn, cur, 1);
      CHECK_OK(next.status());
      cur = *next;
    }
    std::printf("\n");
    CHECK_OK(heap->Commit(*txn));
  }
  std::printf("expected: 100 200 300 (the aborted 999999 never shows)\n");
  return 0;
}
