// CAD editor: the kind of application the paper motivates (§1 — CAD, CASE,
// office information systems): a large persistent design with shared
// composite parts, edited in transactions, traversed for "rendering", with
// the incremental atomic collector keeping pauses small underneath.
//
//   $ ./cad_editor [edits] [seed]
//
// Shows the uniform storage model at work: the editor never distinguishes
// persistent from temporary parts — scratch geometry that never becomes
// reachable from the design root simply stays volatile and costs no log
// traffic.

#include <cstdio>
#include <cstdlib>

#include "core/stable_heap.h"
#include "workload/graph_gen.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

using namespace sheap;
using workload::BuildCadDesign;
using workload::NodeClass;
using workload::RegisterNodeClass;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::sheap::Status _st = (expr);                                  \
    if (!_st.ok()) {                                               \
      std::fprintf(stderr, "error: %s\n", _st.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (0)

int main(int argc, char** argv) {
  const uint64_t edits = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  SimEnv env;
  StableHeapOptions options;
  options.stable_space_pages = 4096;
  options.volatile_space_pages = 1024;
  options.incremental_gc = true;  // bounded pauses for the interactive app
  auto heap_or = StableHeap::Open(&env, options);
  CHECK_OK(heap_or.status());
  auto heap = std::move(*heap_or);

  auto cls_or = RegisterNodeClass(heap.get(), 4);
  CHECK_OK(cls_or.status());
  NodeClass cls = *cls_or;

  Rng rng(seed);
  auto design_or = BuildCadDesign(heap.get(), cls, /*root_index=*/0,
                                  /*depth=*/3, /*fanout=*/4,
                                  /*ncomposites=*/40, &rng);
  CHECK_OK(design_or.status());
  std::printf("created design: %llu assemblies sharing %llu composites\n",
              (unsigned long long)design_or->assemblies,
              (unsigned long long)design_or->composites);

  for (uint64_t e = 0; e < edits; ++e) {
    auto txn = heap->Begin();
    CHECK_OK(txn.status());
    auto root = heap->GetRoot(*txn, 0);
    CHECK_OK(root.status());

    // Descend a random path to a leaf assembly.
    Ref node = *root;
    for (int depth = 0; depth < 3; ++depth) {
      auto child = heap->ReadRef(*txn, node, 1 + rng.Uniform(4));
      CHECK_OK(child.status());
      if (*child == kNullRef) break;
      node = *child;
    }

    // Scratch geometry: a temporary subassembly the editor builds while the
    // user drags things around. Usually discarded — stays volatile, free.
    auto scratch = heap->Allocate(*txn, cls.id, cls.nslots);
    CHECK_OK(scratch.status());
    CHECK_OK(heap->WriteScalar(*txn, *scratch, 0, rng.Next()));
    for (int i = 0; i < 2; ++i) {
      auto part = heap->Allocate(*txn, cls.id, cls.nslots);
      CHECK_OK(part.status());
      CHECK_OK(heap->WriteScalar(*txn, *part, 0, rng.Next()));
      CHECK_OK(heap->WriteRef(*txn, *scratch, 1 + i, *part));
    }

    if (rng.Bernoulli(0.3)) {
      // The user keeps the new subassembly: link it in. At commit it is
      // promoted to the stable area automatically.
      CHECK_OK(heap->WriteRef(*txn, node, 1 + rng.Uniform(4), *scratch));
      CHECK_OK(heap->Commit(*txn));
    } else if (rng.Bernoulli(0.1)) {
      CHECK_OK(heap->Abort(*txn));  // undo the edit entirely
    } else {
      CHECK_OK(heap->Commit(*txn));  // scratch never linked: stays volatile
    }
  }

  // Render pass: full traversal (drives read-barrier traps if a collection
  // is active).
  {
    auto txn = heap->Begin();
    CHECK_OK(txn.status());
    auto root = heap->GetRoot(*txn, 0);
    CHECK_OK(root.status());
    auto count = workload::CountReachable(heap.get(), *txn, *root);
    CHECK_OK(count.status());
    std::printf("render pass: %llu reachable objects\n",
                (unsigned long long)*count);
    CHECK_OK(heap->Commit(*txn));
  }

  const GcStats& sgc = heap->stable_gc_stats();
  const GcStats& vgc = heap->volatile_gc_stats();
  std::printf("GC: %llu stable collections (max pause %.2f ms simulated, "
              "%llu barrier traps), %llu volatile collections\n",
              (unsigned long long)sgc.collections_completed,
              sgc.max_pause_ns / 1e6,
              (unsigned long long)sgc.read_barrier_traps,
              (unsigned long long)vgc.collections_completed);
  std::printf("promotions: %llu objects (%llu words); log: %llu bytes\n",
              (unsigned long long)heap->promotion_stats().objects_promoted,
              (unsigned long long)heap->promotion_stats().words_promoted,
              (unsigned long long)heap->log_volume().TotalBytes());

  // Close the day with a crash + recovery, then re-render.
  CHECK_OK(heap->SimulateCrash(CrashOptions{0.7, seed, 128}));
  heap.reset();
  auto reopened = StableHeap::Open(&env, options);
  CHECK_OK(reopened.status());
  heap = std::move(*reopened);
  {
    auto txn = heap->Begin();
    CHECK_OK(txn.status());
    auto root = heap->GetRoot(*txn, 0);
    CHECK_OK(root.status());
    auto count = workload::CountReachable(heap.get(), *txn, *root);
    CHECK_OK(count.status());
    std::printf("after crash+recovery: %llu reachable objects\n",
                (unsigned long long)*count);
    CHECK_OK(heap->Commit(*txn));
  }
  return 0;
}
