// Log inspector: builds a small heap, runs a few transactions and a
// collection, then walks the stable log and prints every record — a view of
// exactly what the write-ahead protocols of the paper emit (update records
// with undo/redo, GC copy/scan/flip records, UTRs, V2scopy promotions,
// checkpoints).
//
//   $ ./log_inspector

#include <cstdio>
#include <memory>
#include <vector>

#include "core/stable_heap.h"
#include "shard/sharded_heap.h"
#include "wal/log_reader.h"
#include "storage/sim_env.h"

using namespace sheap;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::sheap::Status _st = (expr);                                  \
    if (!_st.ok()) {                                               \
      std::fprintf(stderr, "error: %s\n", _st.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (0)

int main() {
  SimEnv env;
#if SHEAP_FAULT_INJECTION
  // Demonstrate the fault injector: fail one upcoming log append so the
  // retry/backoff path runs and the stats below come out nonzero.
  {
    FaultSpec spec;
    spec.point = "log.append";
    spec.kind = FaultKind::kTransientError;
    spec.hit = 3;
    spec.count = 1;
    env.faults()->Arm(spec);
  }
#endif
  StableHeapOptions options;
  options.stable_space_pages = 64;
  options.volatile_space_pages = 32;
  auto heap_or = StableHeap::Open(&env, options);
  CHECK_OK(heap_or.status());
  auto heap = std::move(*heap_or);

  auto cls = heap->RegisterClass({false, true});
  CHECK_OK(cls.status());

  // A committed transaction that promotes two objects...
  {
    auto txn = heap->Begin();
    auto a = heap->Allocate(*txn, *cls, 2);
    auto b = heap->Allocate(*txn, *cls, 2);
    CHECK_OK(a.status());
    CHECK_OK(b.status());
    CHECK_OK(heap->WriteScalar(*txn, *a, 0, 1));
    CHECK_OK(heap->WriteRef(*txn, *a, 1, *b));
    CHECK_OK(heap->SetRoot(*txn, 0, *a));
    CHECK_OK(heap->Commit(*txn));
  }
  // ...an aborted one (CLRs)...
  {
    auto txn = heap->Begin();
    auto root = heap->GetRoot(*txn, 0);
    CHECK_OK(root.status());
    CHECK_OK(heap->WriteScalar(*txn, *root, 0, 2));
    CHECK_OK(heap->Abort(*txn));
  }
  // ...a stable collection (flip/copy/scan/complete) and a checkpoint.
  CHECK_OK(heap->CollectStableFully());
  CHECK_OK(heap->Checkpoint());
  CHECK_OK(heap->ForceLog());

  std::printf("%-6s %-14s %s\n", "LSN", "TYPE", "DETAIL");
  LogReader reader(env.log());
  CHECK_OK(reader.Seek(env.log()->truncated_prefix() + 1));
  LogRecord rec;
  while (true) {
    auto more = reader.Next(&rec);
    CHECK_OK(more.status());
    if (!*more) break;
    std::printf("%-6llu %-14s ", (unsigned long long)rec.lsn,
                LogRecord::TypeName(rec.type));
    switch (rec.type) {
      case RecordType::kUpdate:
      case RecordType::kClr:
        std::printf("txn=%llu addr=%llu new=%llx old=%llx%s",
                    (unsigned long long)rec.txn_id,
                    (unsigned long long)rec.addr,
                    (unsigned long long)rec.new_word,
                    (unsigned long long)rec.old_word,
                    rec.aux & LogRecord::kFlagPointer ? " ptr" : "");
        break;
      case RecordType::kAlloc:
        std::printf("txn=%llu addr=%llu class=%llu nslots=%llu",
                    (unsigned long long)rec.txn_id,
                    (unsigned long long)rec.addr,
                    (unsigned long long)rec.aux,
                    (unsigned long long)rec.count);
        break;
      case RecordType::kGcCopy:
      case RecordType::kV2sCopy:
        std::printf("from=%llu to=%llu words=%llu (%zu content bytes)",
                    (unsigned long long)rec.addr,
                    (unsigned long long)rec.addr2,
                    (unsigned long long)rec.count, rec.contents.size());
        break;
      case RecordType::kGcScan:
        if (rec.aux == LogRecord::kScanRun) {
          std::printf("pages=[%llu,%llu) clean run",
                      (unsigned long long)rec.page,
                      (unsigned long long)(rec.page + rec.count));
        } else {
          std::printf("page=%llu translations=%zu%s",
                      (unsigned long long)rec.page, rec.slot_updates.size(),
                      rec.aux == LogRecord::kScanPartial ? " (partial)" : "");
        }
        break;
      case RecordType::kGcCopyBatch:
        std::printf("run-base=%llu words=%llu objects=%zu "
                    "(%zu content bytes)",
                    (unsigned long long)rec.addr2,
                    (unsigned long long)rec.count, rec.utr_entries.size(),
                    rec.contents.size());
        break;
      case RecordType::kGcFlip:
        std::printf("from-space=%llu to-space=%llu",
                    (unsigned long long)rec.addr,
                    (unsigned long long)rec.addr2);
        break;
      case RecordType::kUtr:
        std::printf("%zu translations", rec.utr_entries.size());
        break;
      case RecordType::kCheckpoint:
        std::printf("%zu payload bytes", rec.payload.size());
        break;
      case RecordType::kSpaceAlloc:
        std::printf("space=%llu base-page=%llu npages=%llu %s",
                    (unsigned long long)rec.aux,
                    (unsigned long long)rec.page,
                    (unsigned long long)rec.count,
                    rec.new_word == 0 ? "stable" : "volatile");
        break;
      case RecordType::kSpaceFree:
        std::printf("space=%llu", (unsigned long long)rec.aux);
        break;
      case RecordType::kBegin:
      case RecordType::kCommit:
      case RecordType::kAbortTxn:
      case RecordType::kEnd:
        std::printf("txn=%llu", (unsigned long long)rec.txn_id);
        break;
      case RecordType::kPrepare:
        std::printf("txn=%llu gtid=%llu", (unsigned long long)rec.txn_id,
                    (unsigned long long)rec.aux);
        break;
      case RecordType::kHeapFormat:
        std::printf("%zu format bytes", rec.payload.size());
        break;
      case RecordType::kClassDef:
        std::printf("class=%llu map-words=%llu",
                    (unsigned long long)rec.aux,
                    (unsigned long long)rec.count);
        break;
      case RecordType::kPageFetch:
      case RecordType::kEndWrite:
        std::printf("page=%llu", (unsigned long long)rec.page);
        break;
      case RecordType::kGcComplete:
        std::printf("from-space=%llu reclaimed",
                    (unsigned long long)rec.addr);
        break;
      case RecordType::kRootObject:
        std::printf("root=%llu", (unsigned long long)rec.addr);
        break;
      case RecordType::kInitialValue:
        std::printf("txn=%llu addr=%llu src=%llu words=%llu",
                    (unsigned long long)rec.txn_id,
                    (unsigned long long)rec.addr,
                    (unsigned long long)rec.addr2,
                    (unsigned long long)rec.count);
        break;
      case RecordType::kVolatileFlip:
        std::printf("from-space=%llu to-space=%llu",
                    (unsigned long long)rec.addr,
                    (unsigned long long)rec.addr2);
        break;
      case RecordType::kDtxDecision:
        std::printf("gtid=%llu participants=%llu COMMIT decision",
                    (unsigned long long)rec.txn_id,
                    (unsigned long long)rec.aux);
        break;
      case RecordType::kDtxEnd:
        std::printf("gtid=%llu forgotten (all acks in)",
                    (unsigned long long)rec.txn_id);
        break;
    }
    std::printf("\n");
  }

  const HeapStats stats = heap->stats();
  std::printf("\nfault injection: armed=%llu fired=%llu retried=%llu "
              "exhausted=%llu points-hit=%llu\n",
              (unsigned long long)stats.fault.armed,
              (unsigned long long)stats.fault.fired,
              (unsigned long long)stats.fault.retried,
              (unsigned long long)stats.fault.exhausted,
              (unsigned long long)stats.fault.points_hit);
  std::printf("disk: reads=%llu writes=%llu crc-failures=%llu\n",
              (unsigned long long)stats.disk.page_reads,
              (unsigned long long)stats.disk.page_writes,
              (unsigned long long)stats.disk.crc_failures);
  std::printf("log device: appends=%llu bytes=%llu forces=%llu\n",
              (unsigned long long)stats.log_device.appends,
              (unsigned long long)stats.log_device.bytes_appended,
              (unsigned long long)stats.log_device.forces);
  const GcStats& gs = heap->stable_gc_stats();
  std::printf("gc scan: workers=%llu rounds=%llu steals=%llu "
              "cursor-steps=%llu\n",
              (unsigned long long)gs.scan_workers,
              (unsigned long long)gs.scan_rounds,
              (unsigned long long)gs.scan_page_steals,
              (unsigned long long)gs.scan_cursor_steps);
  std::printf("gc batching: copy-batches=%llu objects=%llu "
              "scan-runs=%llu run-pages=%llu pacing-pages=%llu\n",
              (unsigned long long)gs.copy_batch_records,
              (unsigned long long)gs.copy_batch_objects,
              (unsigned long long)gs.scan_run_records,
              (unsigned long long)gs.scan_run_pages,
              (unsigned long long)gs.pacing_budget_pages);
  std::printf("read barrier: traps=%llu fast-hits=%llu fast-misses=%llu\n",
              (unsigned long long)gs.read_barrier_traps,
              (unsigned long long)gs.read_barrier_fast_hits,
              (unsigned long long)gs.read_barrier_fast_misses);

  // Crash and reopen with partitioned redo, to show the recovery stats the
  // parallel pipeline surfaces (phase timings are simulated time).
  {
    auto txn = heap->Begin();
    auto root = heap->GetRoot(*txn, 0);
    CHECK_OK(root.status());
    CHECK_OK(heap->WriteScalar(*txn, *root, 0, 3));
    CHECK_OK(heap->Commit(*txn));
  }
  CHECK_OK(heap->SimulateCrash(CrashOptions{0.5, 17, 64}));
  heap.reset();
  options.recovery_threads = 4;
  auto recovered_or = StableHeap::Open(&env, options);
  CHECK_OK(recovered_or.status());
  heap = std::move(*recovered_or);
  const RecoveryStats& rs = heap->stats().recovery;
  std::printf(
      "\nrecovery (after simulated crash, %llu redo partitions):\n"
      "  analysis: %llu records in %.2f ms (%llu bytes read, "
      "%llu segments prefetched)\n"
      "  redo:     %llu/%llu records applied in %.2f ms\n"
      "  undo:     %llu records, %llu CLRs, %llu losers in %.2f ms\n"
      "  torn tail seen: %s, master checkpoint used: %s\n",
      (unsigned long long)rs.redo_partitions,
      (unsigned long long)rs.analysis_records, rs.analysis_ns / 1e6,
      (unsigned long long)rs.log_bytes_read,
      (unsigned long long)rs.log_segments_prefetched,
      (unsigned long long)rs.redo_records_applied,
      (unsigned long long)rs.redo_records_seen, rs.redo_ns / 1e6,
      (unsigned long long)rs.undo_records,
      (unsigned long long)rs.clrs_written,
      (unsigned long long)rs.losers_aborted, rs.undo_ns / 1e6,
      rs.saw_torn_tail ? "yes" : "no",
      rs.used_master_checkpoint ? "yes" : "no");
  std::printf("  outcome: %s, time-to-open %.2f ms\n",
              RecoveryOutcomeName(rs.outcome), rs.time_to_open_ns / 1e6);

  // Crash once more and reopen with instant recovery: Open returns right
  // after analysis + undo, the first touches redo their pages on demand,
  // and an explicit drain finishes the plan (see recovery/instant_redo.h).
  {
    auto txn = heap->Begin();
    auto root = heap->GetRoot(*txn, 0);
    CHECK_OK(root.status());
    CHECK_OK(heap->WriteScalar(*txn, *root, 0, 4));
    CHECK_OK(heap->Commit(*txn));
  }
  CHECK_OK(heap->SimulateCrash(CrashOptions{0.0, 19, 0}));
  heap.reset();
  options.instant_recovery = true;
  options.instant_drain_threads = 2;
  auto instant_or = StableHeap::Open(&env, options);
  CHECK_OK(instant_or.status());
  heap = std::move(*instant_or);
  const RecoveryStats at_open = heap->stats().recovery;
  {
    auto txn = heap->Begin();  // first touch: redo on demand behind the gate
    auto root = heap->GetRoot(*txn, 0);
    CHECK_OK(root.status());
    auto val = heap->ReadScalar(*txn, *root, 0);
    CHECK_OK(val.status());
    CHECK_OK(heap->Commit(*txn));
  }
  CHECK_OK(heap->DrainInstantRecovery());
  const RecoveryStats is = heap->stats().recovery;
  std::printf(
      "\ninstant recovery (gate on, %llu drain threads):\n"
      "  at open:  outcome %s, %llu pages pending, time-to-open %.2f ms\n"
      "  drained:  outcome %s, %llu on-demand + %llu drained pages, "
      "%llu records applied\n",
      (unsigned long long)options.instant_drain_threads,
      RecoveryOutcomeName(at_open.outcome),
      (unsigned long long)at_open.pending_pages,
      at_open.time_to_open_ns / 1e6, RecoveryOutcomeName(is.outcome),
      (unsigned long long)is.ondemand_pages,
      (unsigned long long)is.drained_pages,
      (unsigned long long)is.redo_records_applied);

  // Sharded front end (src/shard/): two shards, a cross-shard 2PC commit,
  // and a second 2PC cut down after the decision force — crash the whole
  // cluster, dump the coordinator's decision log, then reopen and show each
  // shard's recovery outcome plus the in-doubt resolution it drove.
  std::vector<std::unique_ptr<SimEnv>> shard_envs;
  shard_envs.push_back(std::make_unique<SimEnv>());
  shard_envs.push_back(std::make_unique<SimEnv>());
  auto coord_env = std::make_unique<SimEnv>();
  ShardedHeapOptions sharded;
  sharded.shards = 2;
  sharded.shard_options.stable_space_pages = 64;
  sharded.shard_options.volatile_space_pages = 32;
  {
    auto cluster_or = ShardedHeap::Open(
        {shard_envs[0].get(), shard_envs[1].get()}, coord_env.get(), sharded);
    CHECK_OK(cluster_or.status());
    auto cluster = std::move(*cluster_or);
    auto scls = cluster->RegisterClass({false, false});
    CHECK_OK(scls.status());
    for (uint32_t s = 0; s < 2; ++s) {  // one two-slot object per shard
      auto txn = cluster->Begin();
      CHECK_OK(txn.status());
      auto obj = cluster->AllocateOn(*txn, s, *scls, 2);
      CHECK_OK(obj.status());
      CHECK_OK(cluster->WriteScalar(*txn, *obj, 0, 100));
      CHECK_OK(cluster->SetRoot(*txn, s, *obj));
      CHECK_OK(cluster->CommitSync(*txn));
    }
    {  // A completed cross-shard transfer: decision logged, then forgotten.
      auto txn = cluster->Begin();
      CHECK_OK(txn.status());
      auto a = cluster->GetRoot(*txn, 0);
      auto b = cluster->GetRoot(*txn, 1);
      CHECK_OK(a.status());
      CHECK_OK(b.status());
      CHECK_OK(cluster->WriteScalar(*txn, *a, 0, 75));
      CHECK_OK(cluster->WriteScalar(*txn, *b, 0, 125));
      CHECK_OK(cluster->CommitSync(*txn));
    }
    {  // A 2PC cut mid-protocol: votes + decision durable, no acks.
      TwoPhaseCoordinator* coord = cluster->coordinator();
      const Gtid gtid = coord->NewGtid();
      std::vector<TwoPhaseCoordinator::Branch> branches;
      for (uint32_t s = 0; s < 2; ++s) {
        StableHeap* shard = cluster->shard(s);
        auto txn = shard->Begin();
        CHECK_OK(txn.status());
        auto obj = shard->GetRoot(*txn, 0);
        CHECK_OK(obj.status());
        CHECK_OK(shard->WriteScalar(*txn, *obj, 1, 7 + s));
        branches.push_back({shard, *txn});
      }
      auto voted = coord->PrepareAll(gtid, branches);
      CHECK_OK(voted.status());
      CHECK_OK(coord->LogCommitDecision(gtid, branches.size()));
    }
    CHECK_OK(cluster->SimulateCrashAll(CrashOptions{0.5, 23, 64}));
  }

  std::printf("\ncoordinator decision log:\n");
  std::printf("%-6s %-14s %s\n", "LSN", "TYPE", "DETAIL");
  LogReader coord_reader(coord_env->log());
  CHECK_OK(coord_reader.Seek(coord_env->log()->truncated_prefix() + 1));
  while (true) {
    auto more = coord_reader.Next(&rec);
    CHECK_OK(more.status());
    if (!*more) break;
    std::printf("%-6llu %-14s ", (unsigned long long)rec.lsn,
                LogRecord::TypeName(rec.type));
    if (rec.type == RecordType::kDtxDecision) {
      std::printf("gtid=%llu participants=%llu COMMIT decision",
                  (unsigned long long)rec.txn_id,
                  (unsigned long long)rec.aux);
    } else if (rec.type == RecordType::kDtxEnd) {
      std::printf("gtid=%llu forgotten (all acks in)",
                  (unsigned long long)rec.txn_id);
    }
    std::printf("\n");
  }

  {
    sharded.shard_options.recovery_threads = 2;
    auto cluster_or = ShardedHeap::Open(
        {shard_envs[0].get(), shard_envs[1].get()}, coord_env.get(), sharded);
    CHECK_OK(cluster_or.status());
    auto cluster = std::move(*cluster_or);
    const ShardedHeapStats ss = cluster->stats();
    std::printf("\nsharded recovery (%u shards, parallel open):\n",
                cluster->num_shards());
    for (uint32_t s = 0; s < cluster->num_shards(); ++s) {
      const RecoveryStats& sr = ss.per_shard[s].recovery;
      std::printf(
          "  shard %u: outcome %s, %llu redo applied, %llu losers, "
          "%llu prepared restored, open %.2f ms\n",
          s, RecoveryOutcomeName(sr.outcome),
          (unsigned long long)sr.redo_records_applied,
          (unsigned long long)sr.losers_aborted,
          (unsigned long long)sr.prepared_restored, sr.time_to_open_ns / 1e6);
    }
    std::printf(
        "  in-doubt resolution: %llu committed, %llu aborted "
        "(%llu decisions rescanned)\n",
        (unsigned long long)ss.dtx.resolved_commit,
        (unsigned long long)ss.dtx.resolved_abort,
        (unsigned long long)ss.dtx.rescan_decisions);
    std::printf(
        "  rolled up: open critical path %.2f ms (serial sum %.2f ms), "
        "%llu redo applied across shards\n",
        ss.open_ns_max / 1e6, ss.open_ns_sum / 1e6,
        (unsigned long long)ss.total.recovery.redo_records_applied);
  }
  return 0;
}
