// Distributed bank: two stable heaps ("branch A" and "branch B"), wire
// transfers committed atomically across both with two-phase commit — the
// paper's §2.2 extension. The demo crashes a branch while a transfer is in
// doubt, shows that recovery keeps the prepared transaction's locks, and
// lets the coordinator resolve it.
//
//   $ ./distributed_bank

#include <cstdio>

#include "dtx/two_phase.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

using namespace sheap;
using workload::Bank;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::sheap::Status _st = (expr);                                  \
    if (!_st.ok()) {                                               \
      std::fprintf(stderr, "error: %s\n", _st.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (0)

namespace {

TxnId StartDebit(StableHeap* heap, uint64_t acct, int64_t delta) {
  TxnId txn = *heap->Begin();
  Ref dir = *heap->GetRoot(txn, 0);
  Ref bucket = *heap->ReadRef(txn, dir, acct / 64);
  uint64_t bal = *heap->ReadScalar(txn, bucket, acct % 64);
  SHEAP_CHECK_OK(heap->WriteScalar(txn, bucket, acct % 64, bal + delta));
  return txn;
}

}  // namespace

int main() {
  SimEnv env_a, env_b, env_coord;
  StableHeapOptions opts;
  opts.stable_space_pages = 256;
  opts.volatile_space_pages = 128;

  auto branch_a = std::move(*StableHeap::Open(&env_a, opts));
  auto branch_b = std::move(*StableHeap::Open(&env_b, opts));
  Bank bank_a(branch_a.get(), 0), bank_b(branch_b.get(), 0);
  CHECK_OK(bank_a.Setup(16, 1000));
  CHECK_OK(bank_b.Setup(16, 1000));
  TwoPhaseCoordinator coordinator(&env_coord);
  std::printf("branch A and branch B open; 16 accounts x 1000 each\n");

  // --- A clean wire transfer: 300 from A/0 to B/0.
  {
    TxnId ta = StartDebit(branch_a.get(), 0, -300);
    TxnId tb = StartDebit(branch_b.get(), 0, +300);
    auto committed = coordinator.CommitDistributed(
        {{branch_a.get(), ta}, {branch_b.get(), tb}});
    CHECK_OK(committed.status());
    std::printf("wire #1 committed: A/0=%llu B/0=%llu\n",
                (unsigned long long)*bank_a.BalanceOf(0),
                (unsigned long long)*bank_b.BalanceOf(0));
  }

  // --- A transfer interrupted by a crash while in doubt.
  {
    TxnId ta = StartDebit(branch_a.get(), 1, -500);
    TxnId tb = StartDebit(branch_b.get(), 1, +500);
    Gtid gtid = coordinator.NewGtid();
    auto voted = coordinator.PrepareAll(
        gtid, {{branch_a.get(), ta}, {branch_b.get(), tb}});
    CHECK_OK(voted.status());
    CHECK_OK(coordinator.LogCommitDecision(gtid));  // the commit point
    std::printf("wire #2 prepared on both branches, decision logged...\n");

    // Branch B burns down before hearing the outcome.
    CHECK_OK(branch_b->SimulateCrash(CrashOptions{0.4, 99, 200}));
    branch_b.reset();
    branch_b = std::move(*StableHeap::Open(&env_b, opts));
    auto in_doubt = branch_b->InDoubtTransactions();
    std::printf("branch B recovered with %zu in-doubt transaction(s); the "
                "credited account is still locked\n",
                in_doubt.size());

    // A conflicting local transaction blocks on the in-doubt locks.
    TxnId probe = *branch_b->Begin();
    Ref dir = *branch_b->GetRoot(probe, 0);
    Ref bucket = *branch_b->ReadRef(probe, dir, 0);
    Status conflict = branch_b->WriteScalar(probe, bucket, 1, 0);
    std::printf("conflicting write while in doubt: %s\n",
                conflict.ToString().c_str());
    CHECK_OK(branch_b->Abort(probe));

    // The coordinator re-delivers the outcome.
    CHECK_OK(coordinator.Resolve(branch_b.get()));
    CHECK_OK(coordinator.Resolve(branch_a.get()));
    bank_b = Bank(branch_b.get(), 0);
    CHECK_OK(bank_b.Attach());
    std::printf("resolved: A/1=%llu B/1=%llu\n",
                (unsigned long long)*bank_a.BalanceOf(1),
                (unsigned long long)*bank_b.BalanceOf(1));
  }

  // --- A transfer abandoned before any decision: presumed abort.
  {
    TxnId ta = StartDebit(branch_a.get(), 2, -50);
    Gtid gtid = coordinator.NewGtid();
    auto voted = coordinator.PrepareAll(gtid, {{branch_a.get(), ta}});
    CHECK_OK(voted.status());
    // The coordinator never decides (imagine it crashed); rebuild it.
    TwoPhaseCoordinator recovered(&env_coord);
    CHECK_OK(recovered.Resolve(branch_a.get()));
    std::printf("wire #3 presumed aborted: A/2=%llu (unchanged)\n",
                (unsigned long long)*bank_a.BalanceOf(2));
  }

  const uint64_t total = *bank_a.TotalBalance() + *bank_b.TotalBalance();
  std::printf("global total: %llu (expected 32000) -- %s\n",
              (unsigned long long)total,
              total == 32000 ? "INVARIANT HOLDS" : "INVARIANT BROKEN");
  return total == 32000 ? 0 : 1;
}
