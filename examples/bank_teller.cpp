// Bank teller: a debit-credit OLTP workload over the stable heap, with
// interleaved tellers (the paper's §2.1 action-interleaving concurrency
// model), periodic checkpoints, incremental garbage collection running
// underneath, and a crash in the middle of the day.
//
//   $ ./bank_teller [accounts] [transfers] [seed]
//
// Invariant demonstrated: the sum of balances never changes across
// interleaving, collection, crash and recovery.

#include <cstdio>
#include <cstdlib>

#include "core/stable_heap.h"
#include "workload/workloads.h"
#include "storage/sim_env.h"

using namespace sheap;
using workload::Bank;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::sheap::Status _st = (expr);                                  \
    if (!_st.ok()) {                                               \
      std::fprintf(stderr, "error: %s\n", _st.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (0)

int main(int argc, char** argv) {
  const uint64_t accounts = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const uint64_t transfers = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  constexpr uint64_t kInitialBalance = 1000;

  SimEnv env;
  StableHeapOptions options;
  options.stable_space_pages = 2048;
  options.volatile_space_pages = 512;
  auto heap_or = StableHeap::Open(&env, options);
  CHECK_OK(heap_or.status());
  auto heap = std::move(*heap_or);

  Bank bank(heap.get(), /*root_index=*/0);
  CHECK_OK(bank.Setup(accounts, kInitialBalance));
  std::printf("opened bank: %llu accounts x %llu = total %llu\n",
              (unsigned long long)accounts,
              (unsigned long long)kInitialBalance,
              (unsigned long long)(accounts * kInitialBalance));

  Rng rng(seed);
  uint64_t committed = 0, aborted = 0, bounced = 0;
  for (uint64_t i = 0; i < transfers; ++i) {
    const uint64_t from = rng.Uniform(accounts);
    const uint64_t to = (from + 1 + rng.Uniform(accounts - 1)) % accounts;
    const uint64_t amount = 1 + rng.Uniform(200);
    const bool abort = rng.Bernoulli(0.1);  // teller changes their mind
    Status st = bank.Transfer(from, to, amount, abort);
    if (st.ok()) {
      (abort ? aborted : committed)++;
    } else if (st.IsInvalidArgument()) {
      ++bounced;  // insufficient funds
    } else {
      std::fprintf(stderr, "transfer failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (i % 100 == 99) CHECK_OK(heap->Checkpoint());
    if (i == transfers / 2) {
      // Lunchtime disaster.
      std::printf("-- crash after %llu transfers --\n",
                  (unsigned long long)(i + 1));
      CHECK_OK(heap->SimulateCrash(CrashOptions{0.5, seed * 7 + 1, 256}));
      heap.reset();
      auto reopened = StableHeap::Open(&env, options);
      CHECK_OK(reopened.status());
      heap = std::move(*reopened);
      bank = Bank(heap.get(), 0);
      CHECK_OK(bank.Attach());
      std::printf("-- recovered in %llu simulated us (%llu log bytes) --\n",
                  (unsigned long long)
                      (heap->recovery_stats().sim_time_ns / 1000),
                  (unsigned long long)heap->recovery_stats().log_bytes_read);
    }
  }

  auto total = bank.TotalBalance();
  CHECK_OK(total.status());
  std::printf("done: %llu committed, %llu aborted, %llu bounced\n",
              (unsigned long long)committed, (unsigned long long)aborted,
              (unsigned long long)bounced);
  std::printf("total balance: %llu (expected %llu) -- %s\n",
              (unsigned long long)*total,
              (unsigned long long)(accounts * kInitialBalance),
              *total == accounts * kInitialBalance ? "INVARIANT HOLDS"
                                                   : "INVARIANT BROKEN");
  std::printf("stable collections: %llu, volatile collections: %llu, "
              "promotions: %llu objects\n",
              (unsigned long long)
                  heap->stable_gc_stats().collections_completed,
              (unsigned long long)
                  heap->volatile_gc_stats().collections_completed,
              (unsigned long long)heap->promotion_stats().objects_promoted);
  return *total == accounts * kInitialBalance ? 0 : 1;
}
