#include "fault/fault_injector.h"

#include "storage/env.h"
#include "util/sim_clock.h"

namespace sheap {

void FaultInjector::Arm(FaultSpec spec) {
  MutexLock lock(&mu_);
  armed_.push_back(Armed{std::move(spec), /*consumed=*/false});
  ++stats_.armed;
}

uint64_t FaultInjector::Count(
    const char* name, std::unordered_map<std::string, uint64_t>* counts,
    std::vector<std::string>* order) {
  auto [it, fresh] = counts->emplace(name, 0);
  if (fresh) order->push_back(it->first);
  return ++it->second;
}

Status FaultInjector::OnPoint(const char* point) {
  MutexLock lock(&mu_);
  ++stats_.points_hit;
  const uint64_t hit = Count(point, &point_counts_, &point_order_);
  if (tracing_) return Status::OK();
  for (Armed& a : armed_) {
    if (a.consumed || a.spec.kind != FaultKind::kCrash) continue;
    if (a.spec.point != point || hit < a.spec.hit) continue;
    a.consumed = true;
    ++stats_.fired;
    crash_fired_ = true;
    crash_point_ = point;
    if (a.spec.tear_tail_bytes > 0 && log_device_ != nullptr) {
      log_device_->TearTail(a.spec.tear_tail_bytes);
    }
    return Status::Crashed(std::string("fault-injected crash at ") + point);
  }
  return Status::OK();
}

Status FaultInjector::OnIo(const char* site, uint64_t page) {
  MutexLock lock(&mu_);
  const uint64_t hit = Count(site, &io_counts_, &io_order_);
  if (tracing_) return Status::OK();
  for (Armed& a : armed_) {
    if (a.spec.kind != FaultKind::kTransientError) continue;
    if (a.spec.point != site) continue;
    if (a.spec.page != FaultSpec::kAnyPage && a.spec.page != page) continue;
    if (hit < a.spec.hit || hit >= a.spec.hit + a.spec.count) continue;
    ++stats_.fired;
    return Status::IOError(std::string("fault-injected I/O error at ") +
                           site);
  }
  return Status::OK();
}

bool FaultInjector::ConsumeBitRot(const char* site, uint64_t page) {
  MutexLock lock(&mu_);
  if (tracing_) return false;
  const auto it = io_counts_.find(site);
  const uint64_t hit = it == io_counts_.end() ? 0 : it->second;
  for (Armed& a : armed_) {
    if (a.consumed || a.spec.kind != FaultKind::kBitRot) continue;
    if (a.spec.point != site) continue;
    if (a.spec.page != FaultSpec::kAnyPage && a.spec.page != page) continue;
    if (hit < a.spec.hit) continue;
    a.consumed = true;
    ++stats_.fired;
    return true;
  }
  return false;
}

void FaultInjector::BackoffBeforeRetry(uint32_t attempt) {
  MutexLock lock(&mu_);
  ++stats_.retried;
  if (clock_ != nullptr) {
    // Exponential backoff starting at 0.5 simulated ms: a transient device
    // error costs the actor real (simulated) time, like a real driver's
    // retry path.
    clock_->Advance((500'000ull) << attempt);
  }
}

std::vector<std::pair<std::string, uint64_t>> FaultInjector::Points() const {
  MutexLock lock(&mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(point_order_.size());
  for (const std::string& name : point_order_) {
    out.emplace_back(name, point_counts_.at(name));
  }
  return out;
}

std::vector<std::pair<std::string, uint64_t>> FaultInjector::IoSites() const {
  MutexLock lock(&mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(io_order_.size());
  for (const std::string& name : io_order_) {
    out.emplace_back(name, io_counts_.at(name));
  }
  return out;
}

}  // namespace sheap
