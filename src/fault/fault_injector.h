// FaultInjector: deterministic fault injection for the simulated machine.
//
// The paper's recovery claims quantify over *every* crash state ("repeating
// history" must hold no matter where execution stopped), so spot-checking a
// few hand-picked crash states is not enough. This module gives the storage,
// WAL, recovery and GC layers named *crash points* — durability-critical
// steps such as draining the log buffer, raising the durable barrier,
// writing a page back, or logging a GC flip — and lets tests kill the heap
// at exactly the Nth dynamic occurrence of any point. Because the whole
// machine is simulated and single-threaded, the same workload reaches the
// same points in the same order every run: a (point, hit) pair names one
// reproducible crash state, and a harness can enumerate all of them.
//
// Besides crashes, the injector arms I/O faults at the device layer:
//   * transient read/write/append errors (callers retry with backoff and
//     surface a typed IOError only when the budget is exhausted),
//   * bit-rot in a stored page image (CRC32C verification must detect it
//     and report Corruption rather than propagate garbage),
//   * a torn stable-log tail attached to a crash (the un-barriered suffix
//     vanishes with the machine).
//
// The injector lives in SimEnv — it survives simulated crashes, exactly
// like the fault schedule of a real crash-test rig survives the machine
// under test. Compile the hooks out with -DSHEAP_FAULT_INJECTION=OFF
// (CMake option) for fault-free benchmark builds.

#ifndef SHEAP_FAULT_FAULT_INJECTOR_H_
#define SHEAP_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

// Defined (0/1) by the build; default to enabled for ad-hoc compiles.
#ifndef SHEAP_FAULT_INJECTION
#define SHEAP_FAULT_INJECTION 1
#endif

namespace sheap {

class LogDevice;
class SimClock;

/// What an armed fault does when its site is reached.
enum class FaultKind : uint8_t {
  /// Crash point: the operation returns Status::Crashed, the injector
  /// latches crash_fired(), and (optionally) the stable-log tail tears.
  /// One-shot. Only fires at SHEAP_FAULT_POINT sites.
  kCrash = 0,
  /// Device I/O returns Status::IOError for `count` consecutive hits
  /// starting at `hit`. Only fires at I/O sites (disk.read / disk.write /
  /// log.append).
  kTransientError = 1,
  /// Flip one bit of the stored page image before the matching disk.read;
  /// CRC32C verification then reports Corruption. One-shot.
  kBitRot = 2,
};

/// One armed fault. `point` names a crash point or I/O site; `hit` is the
/// 1-based dynamic occurrence (counted per point since the SimEnv was
/// created) at which the fault fires.
struct FaultSpec {
  static constexpr uint64_t kAnyPage = ~0ull;

  std::string point;
  FaultKind kind = FaultKind::kCrash;
  uint64_t hit = 1;
  /// kTransientError: number of consecutive failing hits.
  uint64_t count = 1;
  /// kCrash: bytes to tear off the un-barriered stable-log tail.
  uint64_t tear_tail_bytes = 0;
  /// Page-addressed sites: restrict the fault to one page.
  uint64_t page = kAnyPage;
};

/// Counters for the fault machinery itself (armed/fired) and for the
/// resilience it exercises (retried/exhausted at the retry loops).
struct FaultStats {
  uint64_t armed = 0;      // faults ever armed on this injector
  uint64_t fired = 0;      // fault activations (each transient hit counts)
  uint64_t retried = 0;    // I/O retries performed by BufferPool/LogWriter
  uint64_t exhausted = 0;  // retry budgets exhausted (typed error surfaced)
  uint64_t points_hit = 0; // total crash-point evaluations
};

/// Per-attempt retry budget for transient device I/O errors (BufferPool
/// page reads/writes, LogWriter appends). Attempt 0 is the initial try.
constexpr uint32_t kMaxIoRetries = 3;

/// See file comment.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Wire the cost-model clock (retry backoff) and stable-log device
  /// (crash-attached tail tears). Called by the owning Env.
  void Bind(SimClock* clock, LogDevice* log_device) SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    clock_ = clock;
    log_device_ = log_device;
  }

  // ----------------------------------------------------------- scheduling
  void Arm(FaultSpec spec) SHEAP_EXCLUDES(mu_);
  void DisarmAll() SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    armed_.clear();
  }

  /// Tracing mode: count every point/site but fire nothing. Used by crash
  /// harnesses to enumerate the reachable (point, hits) space of a
  /// workload before arming crashes at each.
  void set_tracing(bool tracing) SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    tracing_ = tracing;
  }
  bool tracing() const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return tracing_;
  }

  // ------------------------------------------------------------ the sites
  /// Crash point. Returns Crashed when an armed kCrash fault fires.
  Status OnPoint(const char* point) SHEAP_EXCLUDES(mu_);

  /// Device I/O site. Returns IOError when an armed kTransientError fault
  /// covers this hit.
  Status OnIo(const char* site,
              uint64_t page = FaultSpec::kAnyPage) SHEAP_EXCLUDES(mu_);

  /// True if a kBitRot fault fires for this site/page (one-shot). The
  /// device flips a stored bit in response. Call after OnIo succeeded.
  bool ConsumeBitRot(const char* site, uint64_t page) SHEAP_EXCLUDES(mu_);

  // ----------------------------------------------------- crash life-cycle
  /// A crash point fired; the machine is dead until reopened.
  bool crash_fired() const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return crash_fired_;
  }
  /// Name of the point that fired (copied under the lock).
  std::string crash_point() const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return crash_point_;
  }
  /// A new machine boots on the surviving environment (StableHeap::Open).
  void OnBoot() SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    crash_fired_ = false;
    crash_point_.clear();
  }

  // ------------------------------------------------------- retry support
  /// Called by retry loops before attempt `attempt`+1: counts the retry
  /// and charges an exponential backoff to the simulated clock.
  void BackoffBeforeRetry(uint32_t attempt) SHEAP_EXCLUDES(mu_);
  /// Called when a retry budget is exhausted and a typed error surfaces.
  void NoteExhausted() SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++stats_.exhausted;
  }

  // -------------------------------------------------------- introspection
  /// Snapshot of the counters (copied under the lock; parallel workers
  /// bump them concurrently).
  FaultStats stats() const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = FaultStats();
  }

  /// Every crash point reached so far, in first-hit order, with its
  /// dynamic hit count. The registry accumulates across crashes/reopens,
  /// which is what lets a harness enumerate points hit only during
  /// recovery as well.
  std::vector<std::pair<std::string, uint64_t>> Points() const
      SHEAP_EXCLUDES(mu_);
  /// Same for device I/O sites.
  std::vector<std::pair<std::string, uint64_t>> IoSites() const
      SHEAP_EXCLUDES(mu_);

 private:
  struct Armed {
    FaultSpec spec;
    bool consumed = false;
  };

  /// Bump and return the dynamic hit counter for `name` in `counts`,
  /// recording first-hit order in `order`.
  uint64_t Count(const char* name,
                 std::unordered_map<std::string, uint64_t>* counts,
                 std::vector<std::string>* order) SHEAP_REQUIRES(mu_);

  /// Serializes all site evaluations and schedule mutations. Parallel
  /// recovery workers and flush writers reach OnPoint/OnIo/ConsumeBitRot
  /// concurrently; the dynamic hit *totals* stay deterministic (the set of
  /// sites a workload reaches does not depend on interleaving), which is
  /// what the crash-matrix enumeration relies on.
  /// Leaf lock (rank 5): nothing else is acquired while holding it.
  mutable Mutex mu_;
  SimClock* clock_ SHEAP_GUARDED_BY(mu_) = nullptr;
  LogDevice* log_device_ SHEAP_GUARDED_BY(mu_) = nullptr;
  bool tracing_ SHEAP_GUARDED_BY(mu_) = false;
  bool crash_fired_ SHEAP_GUARDED_BY(mu_) = false;
  std::string crash_point_ SHEAP_GUARDED_BY(mu_);
  std::vector<Armed> armed_ SHEAP_GUARDED_BY(mu_);
  std::unordered_map<std::string, uint64_t> point_counts_
      SHEAP_GUARDED_BY(mu_);
  std::vector<std::string> point_order_ SHEAP_GUARDED_BY(mu_);
  std::unordered_map<std::string, uint64_t> io_counts_ SHEAP_GUARDED_BY(mu_);
  std::vector<std::string> io_order_ SHEAP_GUARDED_BY(mu_);
  FaultStats stats_ SHEAP_GUARDED_BY(mu_);
};

/// Crash point: evaluate the injector (null-safe) and propagate the
/// injected crash to the caller. Compiled out in fault-free builds.
#if SHEAP_FAULT_INJECTION
#define SHEAP_FAULT_POINT(injector, name)                         \
  do {                                                            \
    ::sheap::FaultInjector* _sheap_fi = (injector);               \
    if (_sheap_fi != nullptr) {                                   \
      SHEAP_RETURN_IF_ERROR(_sheap_fi->OnPoint(name));            \
    }                                                             \
  } while (0)
#else
#define SHEAP_FAULT_POINT(injector, name) \
  do {                                    \
  } while (0)
#endif

}  // namespace sheap

#endif  // SHEAP_FAULT_FAULT_INJECTOR_H_
