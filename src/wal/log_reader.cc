#include "wal/log_reader.h"

#include <vector>

#include "common/check.h"
#include "util/crc32c.h"

namespace sheap {

Status LogReader::Seek(Lsn lsn) {
  SHEAP_CHECK(lsn != kInvalidLsn);
  offset_ = lsn - 1;
  if (offset_ < device_->truncated_prefix()) {
    return Status::Corruption("seek before log truncation point");
  }
  return Status::OK();
}

Status LogReader::ReadFrameAt(uint64_t offset, LogRecord* rec,
                              uint64_t* next_offset) const {
  if (offset + kRecordFrameHeader > device_->size()) {
    return Status::Corruption("short frame header");
  }
  uint8_t header[kRecordFrameHeader];
  SHEAP_RETURN_IF_ERROR(
      device_->ReadAt(offset, kRecordFrameHeader, header));
  Decoder hdec(header, kRecordFrameHeader);
  uint32_t len, masked_crc;
  SHEAP_CHECK(hdec.GetU32(&len) && hdec.GetU32(&masked_crc));
  if (offset + kRecordFrameHeader + len > device_->size()) {
    return Status::Corruption("short frame body");
  }
  std::vector<uint8_t> body(len);
  SHEAP_RETURN_IF_ERROR(
      device_->ReadAt(offset + kRecordFrameHeader, len, body.data()));
  if (crc32c::Value(body.data(), body.size()) !=
      crc32c::Unmask(masked_crc)) {
    return Status::Corruption("record crc mismatch");
  }
  Decoder bdec(body);
  SHEAP_RETURN_IF_ERROR(LogRecord::DecodeFrom(&bdec, rec));
  if (!bdec.empty()) return Status::Corruption("trailing bytes in record");
  rec->lsn = offset + 1;
  if (next_offset != nullptr) {
    *next_offset = offset + kRecordFrameHeader + len;
  }
  return Status::OK();
}

StatusOr<bool> LogReader::Next(LogRecord* rec) {
  if (offset_ >= device_->size()) return false;  // clean end
  uint64_t next;
  Status st = ReadFrameAt(offset_, rec, &next);
  if (!st.ok()) {
    // A torn tail (partial final flush) reads as a short/corrupt frame.
    saw_torn_tail_ = true;
    return false;
  }
  offset_ = next;
  return true;
}

Status LogReader::ReadAt(Lsn lsn, LogRecord* rec) const {
  SHEAP_CHECK(lsn != kInvalidLsn);
  return ReadFrameAt(lsn - 1, rec, nullptr);
}

}  // namespace sheap
