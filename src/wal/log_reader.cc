#include "wal/log_reader.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "util/crc32c.h"

namespace sheap {

Status LogReader::Seek(Lsn lsn) {
  SHEAP_CHECK(lsn != kInvalidLsn);
  offset_ = lsn - 1;
  if (offset_ < device_->truncated_prefix()) {
    return Status::Corruption("seek before log truncation point");
  }
  // The cursor moved arbitrarily; drop the buffered segments.
  cur_valid_ = false;
  cur_.clear();
  next_.clear();
  return Status::OK();
}

Status LogReader::ReadFrameAt(uint64_t offset, LogRecord* rec,
                              uint64_t* next_offset) const {
  if (offset + kRecordFrameHeader > device_->size()) {
    return Status::Corruption("short frame header");
  }
  uint8_t header[kRecordFrameHeader];
  SHEAP_RETURN_IF_ERROR(
      device_->ReadAt(offset, kRecordFrameHeader, header));
  Decoder hdec(header, kRecordFrameHeader);
  uint32_t len, masked_crc;
  SHEAP_CHECK(hdec.GetU32(&len) && hdec.GetU32(&masked_crc));
  if (offset + kRecordFrameHeader + len > device_->size()) {
    return Status::Corruption("short frame body");
  }
  std::vector<uint8_t> body(len);
  SHEAP_RETURN_IF_ERROR(
      device_->ReadAt(offset + kRecordFrameHeader, len, body.data()));
  if (crc32c::Value(body.data(), body.size()) !=
      crc32c::Unmask(masked_crc)) {
    return Status::Corruption("record crc mismatch");
  }
  Decoder bdec(body);
  SHEAP_RETURN_IF_ERROR(LogRecord::DecodeFrom(&bdec, rec));
  if (!bdec.empty()) return Status::Corruption("trailing bytes in record");
  rec->lsn = offset + 1;
  if (next_offset != nullptr) {
    *next_offset = offset + kRecordFrameHeader + len;
  }
  return Status::OK();
}

Status LogReader::LoadSegment(uint64_t base, std::vector<uint8_t>* buf) {
  const uint64_t end = device_->size();
  const size_t n =
      static_cast<size_t>(std::min<uint64_t>(segment_bytes_, end - base));
  buf->resize(n);
  return device_->ReadAt(base, n, buf->data());
}

Status LogReader::FetchSpan(uint64_t off, size_t n, uint8_t* out) {
  while (n > 0) {
    const uint64_t cur_end = cur_base_ + cur_.size();
    if (cur_valid_ && off >= cur_base_ && off < cur_end) {
      // Serve from the current segment.
      const size_t take = static_cast<size_t>(
          std::min<uint64_t>(n, cur_end - off));
      std::memcpy(out, cur_.data() + (off - cur_base_), take);
      off += take;
      out += take;
      n -= take;
      continue;
    }
    if (cur_valid_ && !next_.empty() && off >= cur_end &&
        off < cur_end + next_.size()) {
      // Promote the prefetched segment and immediately start the next
      // prefetch: decode of the promoted segment overlaps its transfer.
      cur_base_ = cur_end;
      cur_.swap(next_);
      next_.clear();
      const uint64_t next_base = cur_base_ + cur_.size();
      if (next_base < device_->size()) {
        SHEAP_RETURN_IF_ERROR(LoadSegment(next_base, &next_));
        ++segments_prefetched_;
      }
      continue;
    }
    // Cold start (or a frame larger than the buffered window): load the
    // segment holding `off` and prefetch its successor.
    SHEAP_RETURN_IF_ERROR(LoadSegment(off, &cur_));
    cur_base_ = off;
    cur_valid_ = true;
    next_.clear();
    const uint64_t next_base = cur_base_ + cur_.size();
    if (next_base < device_->size()) {
      SHEAP_RETURN_IF_ERROR(LoadSegment(next_base, &next_));
      ++segments_prefetched_;
    }
  }
  return Status::OK();
}

StatusOr<bool> LogReader::Next(LogRecord* rec) {
  const uint64_t end = device_->size();
  if (offset_ >= end) return false;  // clean end
  // Any short/corrupt/undecodable final frame reads as a torn tail:
  // repeating history stops at the last complete record.
  if (offset_ + kRecordFrameHeader > end) {
    saw_torn_tail_ = true;
    return false;
  }
  uint8_t header[kRecordFrameHeader];
  if (!FetchSpan(offset_, kRecordFrameHeader, header).ok()) {
    saw_torn_tail_ = true;
    return false;
  }
  Decoder hdec(header, kRecordFrameHeader);
  uint32_t len, masked_crc;
  SHEAP_CHECK(hdec.GetU32(&len) && hdec.GetU32(&masked_crc));
  if (offset_ + kRecordFrameHeader + len > end) {
    saw_torn_tail_ = true;
    return false;
  }
  std::vector<uint8_t> body(len);
  if (!FetchSpan(offset_ + kRecordFrameHeader, len, body.data()).ok()) {
    saw_torn_tail_ = true;
    return false;
  }
  if (crc32c::Value(body.data(), body.size()) !=
      crc32c::Unmask(masked_crc)) {
    saw_torn_tail_ = true;
    return false;
  }
  Decoder bdec(body);
  if (!LogRecord::DecodeFrom(&bdec, rec).ok() || !bdec.empty()) {
    saw_torn_tail_ = true;
    return false;
  }
  rec->lsn = offset_ + 1;
  offset_ += kRecordFrameHeader + len;
  return true;
}

Status LogReader::ReadAt(Lsn lsn, LogRecord* rec) const {
  SHEAP_CHECK(lsn != kInvalidLsn);
  return ReadFrameAt(lsn - 1, rec, nullptr);
}

}  // namespace sheap
