#include "wal/group_commit.h"

#include <algorithm>

#include "common/check.h"

namespace sheap {

void CommitQueue::Enqueue(TxnId txn, Lsn commit_lsn) {
  SHEAP_CHECK(!IsWaiter(txn));
  if (waiters_.empty()) batch_open_ns_ = clock_->now_ns();
  waiters_.push_back(Waiter{txn, commit_lsn});
  waiting_.insert(txn);
  ++stats_.enqueued;
}

bool CommitQueue::ShouldClose() const {
  if (waiters_.empty()) return false;
  if (waiters_.size() >= opts_.max_batch) return true;
  return clock_->now_ns() - batch_open_ns_ >= opts_.max_delay_ns;
}

void CommitQueue::ChargePoll() {
  clock_->Advance(opts_.poll_ns);
  ++stats_.polls;
}

void CommitQueue::Complete(const Waiter& w,
                           const std::function<void(TxnId)>& on_durable) {
  waiting_.erase(w.txn);
  completed_.insert(w.txn);
  if (on_durable) on_durable(w.txn);
}

Status CommitQueue::CloseBatch(const std::function<void(TxnId)>& on_durable) {
  SHEAP_CHECK(!waiters_.empty());
  const bool by_size = waiters_.size() >= opts_.max_batch;
  // Crash window: the whole batch is spooled (maybe partially drained)
  // but the leader has not forced. Recovery may lose any or all of the
  // batch — no waiter has been told it committed yet, so that is safe.
  SHEAP_FAULT_POINT(log_->faults(), "wal.group.leader_force");
  SHEAP_RETURN_IF_ERROR(log_->Force());
  // Crash window: the batch is durable but no waiter has been completed.
  // Recovery replays every commit in the batch; the waiters re-drive
  // Commit after reopen never observe a lost success.
  SHEAP_FAULT_POINT(log_->faults(), "wal.group.batch_durable");
  ++stats_.batches;
  if (by_size) {
    ++stats_.size_closes;
  } else {
    ++stats_.deadline_closes;
  }
  const Lsn durable = log_->durable_lsn();
  uint64_t completed = 0;
  while (!waiters_.empty() && waiters_.front().commit_lsn <= durable) {
    Complete(waiters_.front(), on_durable);
    waiters_.pop_front();
    ++completed;
  }
  // Force() flushed the entire spool, so every waiter is durable.
  SHEAP_CHECK(waiters_.empty());
  stats_.max_batch_seen = std::max(stats_.max_batch_seen, completed);
  return Status::OK();
}

void CommitQueue::DrainDurable(const std::function<void(TxnId)>& on_durable) {
  const Lsn durable = log_->durable_lsn();
  while (!waiters_.empty() && waiters_.front().commit_lsn <= durable) {
    Complete(waiters_.front(), on_durable);
    waiters_.pop_front();
    ++stats_.piggybacked;
  }
  // Survivors keep the batch's original deadline; an emptied queue
  // re-opens its deadline at the next Enqueue.
  if (waiters_.empty()) batch_open_ns_ = 0;
}

bool CommitQueue::ConsumeCompleted(TxnId txn) {
  return completed_.erase(txn) != 0;
}

}  // namespace sheap
