#include "wal/group_commit.h"

#include <algorithm>

#include "common/check.h"

namespace sheap {

CommitQueue::~CommitQueue() {
  Node* n = incoming_.exchange(nullptr, std::memory_order_acquire);
  while (n != nullptr) {
    Node* next = n->next;
    delete n;
    n = next;
  }
}

void CommitQueue::Enqueue(TxnId txn, Lsn commit_lsn) {
  if (concurrent_) {
    // Lock-free join: one CAS, no global mutex. The consumer absorbs the
    // stack in CAS order, so batch membership stays FIFO in commit order.
    Node* node = new Node{txn, commit_lsn,
                          incoming_.load(std::memory_order_relaxed)};
    while (!incoming_.compare_exchange_weak(node->next, node,
                                            std::memory_order_release,
                                            std::memory_order_relaxed)) {
    }
    return;
  }
  MutexLock lock(&qmu_);
  EnqueueLocked(txn, commit_lsn);
}

void CommitQueue::EnqueueLocked(TxnId txn, Lsn commit_lsn) {
  SHEAP_CHECK(waiting_.insert(txn).second);  // no double-enqueue
  if (waiters_.empty()) {
    batch_open_ns_ = clock_->now_ns();
    polls_since_open_ = 0;
  }
  waiters_.push_back(Waiter{txn, commit_lsn});
  ++stats_.enqueued;
}

void CommitQueue::AbsorbLocked() {
  Node* n = incoming_.exchange(nullptr, std::memory_order_acquire);
  // The stack pops newest-first; reverse to CAS (push) order.
  Node* ordered = nullptr;
  while (n != nullptr) {
    Node* next = n->next;
    n->next = ordered;
    ordered = n;
    n = next;
  }
  while (ordered != nullptr) {
    EnqueueLocked(ordered->txn, ordered->commit_lsn);
    Node* next = ordered->next;
    delete ordered;
    ordered = next;
  }
}

bool CommitQueue::IsWaiter(TxnId txn) {
  MutexLock lock(&qmu_);
  AbsorbLocked();
  return waiting_.count(txn) != 0;
}

bool CommitQueue::Empty() {
  MutexLock lock(&qmu_);
  AbsorbLocked();
  return waiters_.empty();
}

size_t CommitQueue::waiter_count() {
  MutexLock lock(&qmu_);
  AbsorbLocked();
  return waiters_.size();
}

bool CommitQueue::ShouldCloseLocked() const {
  if (waiters_.empty()) return false;
  if (waiters_.size() >= opts_.max_batch) return true;
  if (opts_.close_after_polls > 0 &&
      polls_since_open_ >= opts_.close_after_polls) {
    return true;
  }
  return clock_->now_ns() - batch_open_ns_ >= opts_.max_delay_ns;
}

bool CommitQueue::ShouldClose() {
  MutexLock lock(&qmu_);
  AbsorbLocked();
  return ShouldCloseLocked();
}

void CommitQueue::ChargePoll() {
  clock_->Advance(opts_.poll_ns);
  MutexLock lock(&qmu_);
  ++stats_.polls;
  ++polls_since_open_;
}

void CommitQueue::Complete(const Waiter& w,
                           const std::function<void(TxnId)>& on_durable) {
  waiting_.erase(w.txn);
  completed_.insert(w.txn);
  if (on_durable) on_durable(w.txn);
}

Status CommitQueue::CloseBatchLocked(
    const std::function<void(TxnId)>& on_durable) {
  SHEAP_CHECK(!waiters_.empty());
  const bool by_size = waiters_.size() >= opts_.max_batch;
  // Crash window: the whole batch is spooled (maybe partially drained)
  // but the leader has not forced. Recovery may lose any or all of the
  // batch — no waiter has been told it committed yet, so that is safe.
  SHEAP_FAULT_POINT(log_->faults(), "wal.group.leader_force");
  SHEAP_RETURN_IF_ERROR(log_->Force());
  // Crash window: the batch is durable but no waiter has been completed.
  // Recovery replays every commit in the batch; the waiters re-drive
  // Commit after reopen never observe a lost success.
  SHEAP_FAULT_POINT(log_->faults(), "wal.group.batch_durable");
  ++stats_.batches;
  if (by_size) {
    ++stats_.size_closes;
  } else {
    ++stats_.deadline_closes;
  }
  const Lsn durable = log_->durable_lsn();
  uint64_t completed = 0;
  while (!waiters_.empty() && waiters_.front().commit_lsn <= durable) {
    Complete(waiters_.front(), on_durable);
    waiters_.pop_front();
    ++completed;
  }
  // Force() flushed the entire spool, so every waiter is durable.
  SHEAP_CHECK(waiters_.empty());
  stats_.max_batch_seen = std::max(stats_.max_batch_seen, completed);
  return Status::OK();
}

Status CommitQueue::CloseBatch(const std::function<void(TxnId)>& on_durable) {
  MutexLock lock(&qmu_);
  AbsorbLocked();
  return CloseBatchLocked(on_durable);
}

Status CommitQueue::LeadIfReady(const std::function<void(TxnId)>& on_durable,
                                bool* led) {
  MutexLock lock(&qmu_);
  AbsorbLocked();
  if (!ShouldCloseLocked()) {
    *led = false;
    return Status::OK();
  }
  *led = true;
  return CloseBatchLocked(on_durable);
}

void CommitQueue::DrainDurableLocked(
    const std::function<void(TxnId)>& on_durable) {
  const Lsn durable = log_->durable_lsn();
  while (!waiters_.empty() && waiters_.front().commit_lsn <= durable) {
    Complete(waiters_.front(), on_durable);
    waiters_.pop_front();
    ++stats_.piggybacked;
  }
  // Survivors keep the batch's original deadline; an emptied queue
  // re-opens its deadline at the next Enqueue.
  if (waiters_.empty()) batch_open_ns_ = 0;
}

void CommitQueue::DrainDurable(const std::function<void(TxnId)>& on_durable) {
  MutexLock lock(&qmu_);
  AbsorbLocked();
  DrainDurableLocked(on_durable);
}

bool CommitQueue::ConsumeCompleted(TxnId txn) {
  MutexLock lock(&qmu_);
  return completed_.erase(txn) != 0;
}

}  // namespace sheap
