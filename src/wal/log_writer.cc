#include "wal/log_writer.h"

#include "common/check.h"

namespace sheap {

LogWriter::LogWriter(LogDevice* device)
    : device_(device), base_offset_(device->size()) {
  // Reopening after a crash: everything already on the device is flushed.
  flushed_lsn_ = base_offset_ > 0 ? base_offset_ : kInvalidLsn;
  // flushed_lsn_ as an upper bound: any LSN <= base_offset_ is stable. We
  // track it as a byte-offset bound rather than an exact record LSN; the
  // comparison in FlushTo only needs the bound. Recovery replays only
  // barriered bytes, so on reopen everything on the device is durable.
  durable_lsn_ = flushed_lsn_;
  // Size the spool once so steady-state appends never reallocate: the
  // buffer drains at kAutoFlushBytes, so 2x covers the largest overshoot a
  // single oversized record can cause before the drain.
  buffer_.reserve(2 * kAutoFlushBytes);
}

Lsn LogWriter::Append(LogRecord* rec) {
  MutexLock lock(&mu_);
  const Lsn lsn = NextLsnLocked();
  rec->lsn = lsn;
  const size_t before = buffer_.size();
  const size_t cap_before = buffer_.capacity();
  EncodeFramed(*rec, &buffer_);
  ++writer_.appends;
  if (buffer_.capacity() != cap_before) ++writer_.spool_reallocs;
  auto& pt = volume_.by_type[static_cast<size_t>(rec->type)];
  ++pt.records;
  pt.bytes += buffer_.size() - before;
  last_lsn_ = lsn;
  last_buffered_lsn_ = lsn;
  if (buffer_.size() >= kAutoFlushBytes) {
    // Background drain: the device streams the buffer out while the
    // processor continues (no simulated-time charge to this actor). A
    // failed drain is harmless — the bytes stay spooled and the next
    // flush (which retries with backoff) carries them out.
    if (device_->AppendAsync(buffer_.data(), buffer_.size()).ok()) {
      base_offset_ += buffer_.size();
      buffer_.clear();  // keeps capacity: the spool is reused, not freed
      flushed_lsn_ = last_buffered_lsn_;
      ++writer_.drains;
    }
  }
  return lsn;
}

Status LogWriter::FlushTo(Lsn lsn) {
  MutexLock lock(&mu_);
  if (lsn > flushed_lsn_) {
    SHEAP_RETURN_IF_ERROR(FlushLocked());
  }
  // Crash window: the records are on the device but still tearable. The
  // WAL constraint is only satisfied once the barrier below is raised.
  SHEAP_FAULT_POINT(faults(), "wal.walflush.barrier");
  // The WAL dependency makes everything up to `lsn` un-tearable, including
  // bytes that reached the device via background drain.
  device_->MarkDurableBarrier();
  if (flushed_lsn_ != kInvalidLsn) durable_lsn_ = flushed_lsn_;
  return Status::OK();
}

Status LogWriter::Flush() {
  MutexLock lock(&mu_);
  return FlushLocked();
}

Status LogWriter::FlushLocked() {
  if (buffer_.empty()) return Status::OK();
  SHEAP_FAULT_POINT(faults(), "wal.flush.begin");
  for (uint32_t attempt = 0;; ++attempt) {
    Status s = device_->Append(buffer_.data(), buffer_.size());
    if (s.ok()) break;
    if (!s.IsIOError()) return s;  // injected crash, etc.
    if (attempt >= kMaxIoRetries) {
      if (faults() != nullptr) faults()->NoteExhausted();
      return s;
    }
    if (faults() != nullptr) faults()->BackoffBeforeRetry(attempt);
  }
  // Crash window: bytes reached the device, but the writer has not yet
  // advanced its bookkeeping. The heap dies here anyway; recovery sees an
  // un-barriered (tearable) suffix either way.
  SHEAP_FAULT_POINT(faults(), "wal.flush.mid");
  base_offset_ += buffer_.size();
  buffer_.clear();  // keeps capacity: the spool is reused, not freed
  if (last_buffered_lsn_ != kInvalidLsn) flushed_lsn_ = last_buffered_lsn_;
  ++writer_.drains;
  return Status::OK();
}

Status LogWriter::Force() {
  MutexLock lock(&mu_);
  SHEAP_RETURN_IF_ERROR(FlushLocked());
  device_->Force();
  // Crash window: the device acknowledged the force but the barrier (our
  // model of the acknowledgement reaching the commit path) is not raised.
  SHEAP_FAULT_POINT(faults(), "wal.force.before_barrier");
  device_->MarkDurableBarrier();
  if (flushed_lsn_ != kInvalidLsn) durable_lsn_ = flushed_lsn_;
  SHEAP_FAULT_POINT(faults(), "wal.force.after_barrier");
  return Status::OK();
}

}  // namespace sheap
