// Log record types for the stable heap (paper Figures 4.1-4.7, 5.2-5.5).
//
// Transactional records (repeating history, Mohan [34] / §2.2.3):
//   kBegin / kUpdate / kClr / kCommit / kAbortTxn / kEnd / kAlloc
// Buffer-manager records (§2.2.4 optimization 1):
//   kPageFetch / kEndWrite
// Checkpointing (§2.2.4 optimization 2, §4.6):
//   kCheckpoint (+ the master pointer kept by the log device)
// Recoverable allocation of spaces (§4.2.3):
//   kSpaceAlloc / kSpaceFree
// Atomic incremental garbage collection (§3.4):
//   kGcFlip / kGcCopy / kGcScan / kGcComplete
//   kGcCopyBatch: the parallel scan executor's coalesced form of adjacent
//   kGcCopy records — addr2 = run start, count = run words, contents = the
//   concatenated object bytes, utr_entries = the per-object table
//   {from, to, nwords} (redo re-writes every forwarding word from it;
//   analysis replays the copy frontier, LOT and UTT from it)
// Roots in recovery information (§4.2.1-4.2.2):
//   kUtr (undo translation records) / kRootObject (root-array anchor)
// Stable/volatile division (§5.2-5.3):
//   kV2sCopy (move newly stable object at commit, Fig 5.2)
//   kInitialValue (defer-move method: log contents at commit, Fig 4.x)
//   kVolatileFlip (volatile-area space turnover, Fig 7.2)
//
// Update granularity: one heap word (slot) per record. The paper's low-level
// update actions modify a single object; slot granularity additionally makes
// undo-root translation exact (§4.2.2) because every undo value is either a
// single pointer or a single scalar.

#ifndef SHEAP_WAL_RECORD_H_
#define SHEAP_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "util/coder.h"

namespace sheap {

enum class RecordType : uint8_t {
  kHeapFormat = 1,   // first record ever: heap geometry/config payload
  kBegin = 2,
  kUpdate = 3,
  kClr = 4,          // compensation log record (redo-only, §2.2.3)
  kCommit = 5,
  kAbortTxn = 6,     // abort has begun; CLRs follow
  kEnd = 7,          // transaction finished (after commit or full rollback)
  kAlloc = 8,        // stable-area allocation (redo: header word; undo: none)
  kPageFetch = 9,
  kEndWrite = 10,
  kCheckpoint = 11,
  kSpaceAlloc = 12,
  kSpaceFree = 13,
  kGcFlip = 14,
  kGcCopy = 15,
  kGcScan = 16,
  kGcComplete = 17,
  kUtr = 18,
  kRootObject = 19,
  kV2sCopy = 20,
  kInitialValue = 21,
  kVolatileFlip = 22,
  kClassDef = 23,  // pointer-map definition, so GC state is rebuildable
  kPrepare = 24,   // two-phase commit: transaction is in doubt (§2.2)
  kGcCopyBatch = 25,  // one record for a contiguous run of GC copies
  kDtxDecision = 26,  // 2PC coordinator log only: forced commit decision
  kDtxEnd = 27,       // 2PC coordinator log only: all participants acked
  kMaxRecordType = 27,
};

/// One undo-translation entry: object moved from `from` to `to`,
/// `nwords` words long (§4.2.2).
struct UtrEntry {
  uint64_t from = 0;
  uint64_t to = 0;
  uint64_t nwords = 0;
  bool operator==(const UtrEntry&) const = default;
};

/// A decoded log record. Which fields are meaningful depends on `type`;
/// encoding writes only the fields in the per-type mask (see record.cc).
struct LogRecord {
  RecordType type = RecordType::kBegin;
  Lsn lsn = kInvalidLsn;  // assigned by the writer / filled by the reader

  uint64_t txn_id = 0;
  Lsn prev_lsn = kInvalidLsn;       // per-transaction backward chain
  Lsn undo_next_lsn = kInvalidLsn;  // CLR: next record to undo

  uint64_t addr = 0;      // slot byte-address; from-addr (copy); space id
  uint64_t addr2 = 0;     // to-addr (copy); second space id; object base
                          // (update records: lets recovery rebuild the
                          // in-memory undo info of prepared transactions)
  uint64_t new_word = 0;  // redo value (update/CLR); purpose (space alloc)
  uint64_t old_word = 0;  // undo value (update)
  uint64_t aux = 0;       // flags / class id / area / space id
  uint64_t count = 0;     // nwords / npages
  PageId page = 0;        // page id (page-fetch / end-write / scan)

  std::vector<uint8_t> contents;  // object bytes (copy / v2scopy / initial)
  std::vector<std::pair<uint32_t, uint64_t>> slot_updates;  // scan record
  std::vector<UtrEntry> utr_entries;
  std::vector<uint8_t> payload;  // checkpoint / format blob

  /// Flag bits carried in `aux` for kUpdate / kClr.
  static constexpr uint64_t kFlagPointer = 1;  // the slot is a pointer slot

  /// `aux` value for kGcScan: partial slot translation rather than a full
  /// page scan (does not mark the page scanned during analysis).
  static constexpr uint64_t kScanPartial = 1;
  /// `aux` value for kGcScan: a trap-driven page scan that abandoned the
  /// page tail (analysis replays the copy-pointer bump).
  static constexpr uint64_t kScanBumped = 2;
  /// `aux` value for kGcScan: `count` consecutive pages starting at `page`
  /// were scanned with zero slot translations (batched executor encoding;
  /// analysis marks the whole run scanned, redo has nothing to apply).
  static constexpr uint64_t kScanRun = 3;

  /// Serialize the record body (no framing).
  void EncodeTo(std::vector<uint8_t>* out) const;

  /// Parse a record body. Returns Corruption on malformed input.
  static Status DecodeFrom(Decoder* dec, LogRecord* out);

  /// Debug name of the record type.
  static const char* TypeName(RecordType type);

  bool IsTransactional() const {
    switch (type) {
      case RecordType::kBegin:
      case RecordType::kUpdate:
      case RecordType::kClr:
      case RecordType::kCommit:
      case RecordType::kAbortTxn:
      case RecordType::kEnd:
      case RecordType::kAlloc:
      case RecordType::kV2sCopy:
      case RecordType::kInitialValue:
      case RecordType::kPrepare:
        return true;
      default:
        return false;
    }
  }
};

/// Framing: each record in the log is [u32 body_len][u32 masked_crc][body].
constexpr size_t kRecordFrameHeader = 8;

/// Encode `rec` with framing into *out (appends).
void EncodeFramed(const LogRecord& rec, std::vector<uint8_t>* out);

}  // namespace sheap

#endif  // SHEAP_WAL_RECORD_H_
