// Group commit (paper §2.2.1, footnote 1): "a high performance transaction
// system will use group commit instead of forcing the log for every
// transaction." Committing transactions spool their commit record and join a
// commit queue; a batch leader performs ONE synchronous Force() covering
// every waiter. A batch closes when it reaches max_batch waiters or when
// max_delay_ns of simulated time has passed since it opened, so batching is
// deterministic under SimClock.
//
// The durability invariant is unchanged: Commit reports success only after
// the transaction's commit record is behind the durable barrier
// (LogWriter::durable_lsn()). While queued, Commit returns Status::Busy —
// the simulator's "retry this low-level action" signal — and the txn stays
// in kCommitting.
//
// Concurrency contract: like LogWriter, the commit queue holds no locks.
// Join/TryLead/batch bookkeeping all execute inside serialized low-level
// actions, so the queue is only ever touched by one thread at a time and
// batch formation is deterministic under SimClock. See DESIGN.md §5e.

#ifndef SHEAP_WAL_GROUP_COMMIT_H_
#define SHEAP_WAL_GROUP_COMMIT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "common/status.h"
#include "heap/handle_table.h"
#include "util/sim_clock.h"
#include "wal/log_writer.h"

namespace sheap {

struct GroupCommitOptions {
  /// Close the batch once this many waiters have joined.
  uint32_t max_batch = 16;
  /// Close the batch once it has been open this long (simulated time),
  /// even if under-full. Bounds the latency a lone committer pays.
  uint64_t max_delay_ns = 2'000'000;  // 2 ms
  /// Simulated cost of one Commit retry while waiting on the queue
  /// (re-checking the queue state); also what advances the clock toward
  /// the deadline when no other work is running.
  uint64_t poll_ns = 100'000;  // 0.1 ms
};

struct GroupCommitStats {
  uint64_t enqueued = 0;        // transactions that joined a batch
  uint64_t batches = 0;         // leader forces performed
  uint64_t piggybacked = 0;     // waiters completed by an unrelated barrier
  uint64_t size_closes = 0;     // batches closed by max_batch
  uint64_t deadline_closes = 0; // batches closed by max_delay_ns
  uint64_t max_batch_seen = 0;  // largest batch completed by one force
  uint64_t polls = 0;           // Commit retries charged while waiting
};

/// The commit queue. Not thread-safe on its own; like every StableHeap
/// component it relies on callers serializing low-level actions.
class CommitQueue {
 public:
  CommitQueue(LogWriter* log, SimClock* clock, const GroupCommitOptions& opts)
      : log_(log), clock_(clock), opts_(opts) {}

  CommitQueue(const CommitQueue&) = delete;
  CommitQueue& operator=(const CommitQueue&) = delete;

  /// Join the open batch (opening one if empty). `commit_lsn` is the
  /// transaction's spooled commit-record LSN.
  void Enqueue(TxnId txn, Lsn commit_lsn);

  bool IsWaiter(TxnId txn) const { return waiting_.count(txn) != 0; }
  bool Empty() const { return waiters_.empty(); }
  size_t waiter_count() const { return waiters_.size(); }

  /// True once the open batch must close (size or deadline reached).
  bool ShouldClose() const;

  /// Charge one queue-state re-check to the simulated clock. Called on
  /// each Commit retry so a lone committer's retries advance time toward
  /// the max_delay_ns deadline.
  void ChargePoll();

  /// Batch leader: one Force() covering every waiter, then complete each
  /// waiter whose commit record is behind the barrier (all of them, in
  /// enqueue order). `on_durable` runs per completed transaction. On
  /// Force failure the waiters stay queued and the error is returned.
  Status CloseBatch(const std::function<void(TxnId)>& on_durable);

  /// Complete waiters that an unrelated barrier (WAL flush, another
  /// force) already made durable — no force needed (piggybacking).
  void DrainDurable(const std::function<void(TxnId)>& on_durable);

  /// True (and forgets the mark) if `txn` was completed by a leader or a
  /// piggyback since it enqueued; its Commit retry may now return OK.
  bool ConsumeCompleted(TxnId txn);

  const GroupCommitStats& stats() const { return stats_; }
  const GroupCommitOptions& options() const { return opts_; }

 private:
  struct Waiter {
    TxnId txn;
    Lsn commit_lsn;
  };

  void Complete(const Waiter& w, const std::function<void(TxnId)>& on_durable);

  LogWriter* log_;
  SimClock* clock_;
  GroupCommitOptions opts_;
  std::deque<Waiter> waiters_;            // open batch, enqueue order
  std::unordered_set<TxnId> waiting_;     // members of waiters_
  std::unordered_set<TxnId> completed_;   // durable, Commit retry pending
  uint64_t batch_open_ns_ = 0;            // when the open batch started
  GroupCommitStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_WAL_GROUP_COMMIT_H_
