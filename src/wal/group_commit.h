// Group commit (paper §2.2.1, footnote 1): "a high performance transaction
// system will use group commit instead of forcing the log for every
// transaction." Committing transactions spool their commit record and join a
// commit queue; a batch leader performs ONE synchronous Force() covering
// every waiter. A batch closes when it reaches max_batch waiters or when
// max_delay_ns of simulated time has passed since it opened, so batching is
// deterministic under SimClock.
//
// The durability invariant is unchanged: Commit reports success only after
// the transaction's commit record is behind the durable barrier
// (LogWriter::durable_lsn()). While queued, Commit returns Status::Busy —
// the simulator's "retry this low-level action" signal — and the txn stays
// in kCommitting.
//
// Concurrency contract (DESIGN.md §5e/§5i). Two regimes:
//  * single mutator (default): low-level actions are serialized by the
//    caller, so the qmu_ critical sections below are uncontended and batch
//    formation is byte-deterministic under SimClock, exactly as before.
//  * concurrent mutators (SetConcurrent(true) before threads start):
//    Enqueue is LOCK-FREE — committers push onto a Treiber stack
//    (`incoming_`) with one CAS and return; no committer ever blocks on a
//    global mutex to join a batch. The consumer side (polling, leader
//    election, completion) serializes on qmu_: each consumer entry first
//    absorbs the incoming stack into the FIFO batch in CAS order. Leader
//    election is a single critical section (LeadIfReady), so exactly one
//    polling committer closes a ready batch. Since concurrent mutators run
//    in SimClock lanes, the global clock is frozen and the max_delay_ns
//    deadline cannot fire — set close_after_polls so under-full batches
//    close after a bounded number of observed polls instead.

#ifndef SHEAP_WAL_GROUP_COMMIT_H_
#define SHEAP_WAL_GROUP_COMMIT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "heap/handle_table.h"
#include "util/sim_clock.h"
#include "wal/log_writer.h"

namespace sheap {

struct GroupCommitOptions {
  /// Close the batch once this many waiters have joined.
  uint32_t max_batch = 16;
  /// Close the batch once it has been open this long (simulated time),
  /// even if under-full. Bounds the latency a lone committer pays.
  uint64_t max_delay_ns = 2'000'000;  // 2 ms
  /// Simulated cost of one Commit retry while waiting on the queue
  /// (re-checking the queue state); also what advances the clock toward
  /// the deadline when no other work is running.
  uint64_t poll_ns = 100'000;  // 0.1 ms
  /// Close an under-full batch after this many polls since it opened
  /// (0 = disabled). The deadline proxy for concurrent mode, where mutator
  /// lanes leave the global clock frozen so max_delay_ns never fires.
  uint32_t close_after_polls = 0;
};

struct GroupCommitStats {
  uint64_t enqueued = 0;        // transactions that joined a batch
  uint64_t batches = 0;         // leader forces performed
  uint64_t piggybacked = 0;     // waiters completed by an unrelated barrier
  uint64_t size_closes = 0;     // batches closed by max_batch
  uint64_t deadline_closes = 0; // batches closed by max_delay_ns or polls
  uint64_t max_batch_seen = 0;  // largest batch completed by one force
  uint64_t polls = 0;           // Commit retries charged while waiting
};

/// The commit queue. See the file comment for the two concurrency regimes.
class CommitQueue {
 public:
  CommitQueue(LogWriter* log, SimClock* clock, const GroupCommitOptions& opts)
      : log_(log), clock_(clock), opts_(opts) {}
  ~CommitQueue();

  CommitQueue(const CommitQueue&) = delete;
  CommitQueue& operator=(const CommitQueue&) = delete;

  /// Switch to the concurrent-mutator regime (lock-free enqueue). Must be
  /// called before any mutator thread starts; never switched back.
  void SetConcurrent(bool concurrent) { concurrent_ = concurrent; }

  /// Join the open batch (opening one if empty). `commit_lsn` is the
  /// transaction's spooled commit-record LSN. Lock-free in concurrent mode.
  void Enqueue(TxnId txn, Lsn commit_lsn) SHEAP_EXCLUDES(qmu_);

  /// True if `txn` has enqueued and not yet been completed. Absorbs the
  /// incoming stack first, so a just-pushed committer sees itself.
  bool IsWaiter(TxnId txn) SHEAP_EXCLUDES(qmu_);
  bool Empty() SHEAP_EXCLUDES(qmu_);
  size_t waiter_count() SHEAP_EXCLUDES(qmu_);

  /// True once the open batch must close (size, deadline, or poll budget).
  bool ShouldClose() SHEAP_EXCLUDES(qmu_);

  /// Charge one queue-state re-check to the simulated clock. Called on
  /// each Commit retry so a lone committer's retries advance time toward
  /// the max_delay_ns deadline (or the close_after_polls budget).
  void ChargePoll() SHEAP_EXCLUDES(qmu_);

  /// Batch leader: one Force() covering every waiter, then complete each
  /// waiter whose commit record is behind the barrier (all of them, in
  /// enqueue order). `on_durable` runs per completed transaction. On
  /// Force failure the waiters stay queued and the error is returned.
  /// Single-mutator callers only (pairs with ShouldClose on one thread).
  Status CloseBatch(const std::function<void(TxnId)>& on_durable)
      SHEAP_EXCLUDES(qmu_);

  /// Leader election for concurrent mode: absorb, and if the batch is
  /// ready, close it — all in one critical section, so concurrent pollers
  /// elect exactly one leader. *led reports whether this caller led.
  Status LeadIfReady(const std::function<void(TxnId)>& on_durable, bool* led)
      SHEAP_EXCLUDES(qmu_);

  /// Complete waiters that an unrelated barrier (WAL flush, another
  /// force) already made durable — no force needed (piggybacking).
  void DrainDurable(const std::function<void(TxnId)>& on_durable)
      SHEAP_EXCLUDES(qmu_);

  /// True (and forgets the mark) if `txn` was completed by a leader or a
  /// piggyback since it enqueued; its Commit retry may now return OK.
  bool ConsumeCompleted(TxnId txn) SHEAP_EXCLUDES(qmu_);

  /// Quiescent inspection only (single mutator, or after workers join);
  /// returns a reference to qmu_-guarded counters without the lock.
  const GroupCommitStats& stats() const SHEAP_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }
  const GroupCommitOptions& options() const { return opts_; }

 private:
  struct Waiter {
    TxnId txn;
    Lsn commit_lsn;
  };

  /// Lock-free enqueue node (Treiber stack, consumer-absorbed FIFO).
  struct Node {
    TxnId txn;
    Lsn commit_lsn;
    Node* next;
  };

  /// Move the incoming stack into waiters_ in CAS (push) order.
  void AbsorbLocked() SHEAP_REQUIRES(qmu_);
  void EnqueueLocked(TxnId txn, Lsn commit_lsn) SHEAP_REQUIRES(qmu_);
  bool ShouldCloseLocked() const SHEAP_REQUIRES(qmu_);
  Status CloseBatchLocked(const std::function<void(TxnId)>& on_durable)
      SHEAP_REQUIRES(qmu_);
  void DrainDurableLocked(const std::function<void(TxnId)>& on_durable)
      SHEAP_REQUIRES(qmu_);
  void Complete(const Waiter& w, const std::function<void(TxnId)>& on_durable)
      SHEAP_REQUIRES(qmu_);

  LogWriter* log_;
  SimClock* clock_;
  GroupCommitOptions opts_;
  bool concurrent_ = false;  // set once before mutator threads start

  /// Lock-free producer side: committers CAS-push here in concurrent mode.
  std::atomic<Node*> incoming_{nullptr};

  /// Consumer state. qmu_ ranks below the txn/handle/lock shards and above
  /// the log writer's mutex (a leader forces the log while holding it).
  mutable Mutex qmu_;
  std::deque<Waiter> waiters_ SHEAP_GUARDED_BY(qmu_);   // open batch, FIFO
  std::unordered_set<TxnId> waiting_ SHEAP_GUARDED_BY(qmu_);
  std::unordered_set<TxnId> completed_ SHEAP_GUARDED_BY(qmu_);
  uint64_t batch_open_ns_ SHEAP_GUARDED_BY(qmu_) = 0;
  uint32_t polls_since_open_ SHEAP_GUARDED_BY(qmu_) = 0;
  GroupCommitStats stats_ SHEAP_GUARDED_BY(qmu_);
};

}  // namespace sheap

#endif  // SHEAP_WAL_GROUP_COMMIT_H_
