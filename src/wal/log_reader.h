// LogReader: sequential and random-access reads of the *stable* log.
// Recovery only ever consults the stable log (the volatile buffer died in
// the crash); a torn final record (CRC mismatch / short frame) marks the
// end of the recoverable log.
//
// The sequential path (Next) is segmented and double-buffered: the reader
// holds the current segment in memory and prefetches the following segment
// from the device before the current one is exhausted, so record decode
// overlaps the (simulated) device transfer of the next segment instead of
// issuing a device read per frame. Random access (ReadAt, used by undo's
// prev_lsn chain walks) still reads frames directly.

#ifndef SHEAP_WAL_LOG_READER_H_
#define SHEAP_WAL_LOG_READER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/page.h"
#include "storage/env.h"
#include "wal/record.h"

namespace sheap {

/// Reads framed records from a LogDevice.
class LogReader {
 public:
  /// Size of each streamed segment. Large enough that a segment holds many
  /// records (frames commonly run tens to hundreds of bytes), small enough
  /// that double-buffering two of them is cheap.
  static constexpr size_t kDefaultSegmentBytes = 128 * 1024;

  explicit LogReader(const LogDevice* device,
                     size_t segment_bytes = kDefaultSegmentBytes)
      : device_(device),
        segment_bytes_(segment_bytes),
        offset_(device->truncated_prefix()) {}

  /// Position the cursor at the record with the given LSN.
  Status Seek(Lsn lsn);

  /// Read the next record into *rec and advance. Returns false at the end
  /// of the valid log (clean end or torn tail). A torn tail is recorded in
  /// saw_torn_tail() but is not an error: repeating history simply stops
  /// at the last complete record.
  StatusOr<bool> Next(LogRecord* rec);

  /// Random access: read the single record at `lsn`.
  Status ReadAt(Lsn lsn, LogRecord* rec) const;

  bool saw_torn_tail() const { return saw_torn_tail_; }
  uint64_t offset() const { return offset_; }

  /// Segments loaded ahead of the decode cursor (the double-buffer fills).
  uint64_t segments_prefetched() const { return segments_prefetched_; }

 private:
  Status ReadFrameAt(uint64_t offset, LogRecord* rec,
                     uint64_t* next_offset) const;

  /// Copy `n` bytes at device offset `off` into `out`, serving from the
  /// current/prefetched segments and refilling them as the cursor crosses
  /// segment boundaries. Caller has checked off + n <= device size.
  Status FetchSpan(uint64_t off, size_t n, uint8_t* out);
  /// Load the segment starting at `base` into *buf (clamped to device end).
  Status LoadSegment(uint64_t base, std::vector<uint8_t>* buf);

  const LogDevice* device_;
  size_t segment_bytes_;
  uint64_t offset_;  // byte offset of the next frame
  bool saw_torn_tail_ = false;

  // Double buffer. cur_ covers [cur_base_, cur_base_+cur_.size());
  // next_ (when non-empty) covers the segment immediately after cur_.
  std::vector<uint8_t> cur_, next_;
  uint64_t cur_base_ = 0;
  bool cur_valid_ = false;
  uint64_t segments_prefetched_ = 0;
};

}  // namespace sheap

#endif  // SHEAP_WAL_LOG_READER_H_
