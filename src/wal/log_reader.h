// LogReader: sequential and random-access reads of the *stable* log.
// Recovery only ever consults the stable log (the volatile buffer died in
// the crash); a torn final record (CRC mismatch / short frame) marks the
// end of the recoverable log.

#ifndef SHEAP_WAL_LOG_READER_H_
#define SHEAP_WAL_LOG_READER_H_

#include <cstdint>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/page.h"
#include "storage/sim_log_device.h"
#include "wal/record.h"

namespace sheap {

/// Reads framed records from a SimLogDevice.
class LogReader {
 public:
  explicit LogReader(const SimLogDevice* device)
      : device_(device), offset_(device->truncated_prefix()) {}

  /// Position the cursor at the record with the given LSN.
  Status Seek(Lsn lsn);

  /// Read the next record into *rec and advance. Returns false at the end
  /// of the valid log (clean end or torn tail). A torn tail is recorded in
  /// saw_torn_tail() but is not an error: repeating history simply stops
  /// at the last complete record.
  StatusOr<bool> Next(LogRecord* rec);

  /// Random access: read the single record at `lsn`.
  Status ReadAt(Lsn lsn, LogRecord* rec) const;

  bool saw_torn_tail() const { return saw_torn_tail_; }
  uint64_t offset() const { return offset_; }

 private:
  Status ReadFrameAt(uint64_t offset, LogRecord* rec,
                     uint64_t* next_offset) const;

  const SimLogDevice* device_;
  uint64_t offset_;  // byte offset of the next frame
  bool saw_torn_tail_ = false;
};

}  // namespace sheap

#endif  // SHEAP_WAL_LOG_READER_H_
