// LogWriter: spools records to a volatile log buffer and flushes them to the
// stable log device (paper §2.2.1). "Write to the log" = spool to the
// buffer; "force the log" = synchronous flush (commit). The buffer dies in a
// crash; only flushed bytes survive.
//
// Concurrency contract: LogWriter holds no locks and is NOT internally
// synchronized. Every Append/Flush/Force runs inside one low-level action
// of the simulated machine, and the scheduler serializes low-level actions
// — so at most one thread is ever inside the writer. That serialization is
// what makes LSN assignment (and therefore the crash matrix) deterministic;
// adding a mutex here would hide a scheduler bug, not fix one. See
// DESIGN.md §5e.

#ifndef SHEAP_WAL_LOG_WRITER_H_
#define SHEAP_WAL_LOG_WRITER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "storage/page.h"
#include "storage/sim_log_device.h"
#include "wal/record.h"

namespace sheap {

/// Writer-internal counters: spool-buffer behaviour and drain activity.
/// `spool_reallocs` counts capacity growths of the volatile buffer after
/// construction — the steady state is zero (the buffer is reserved up
/// front and reused across drains, never reallocated per record).
struct LogWriterStats {
  uint64_t appends = 0;         // records spooled
  uint64_t drains = 0;          // buffer drains (async + synchronous)
  uint64_t spool_reallocs = 0;  // volatile-buffer capacity growths
};

/// Per-record-type counters for log-volume accounting (experiment E10).
struct LogVolumeStats {
  struct PerType {
    uint64_t records = 0;
    uint64_t bytes = 0;  // framed size
  };
  std::array<PerType, static_cast<size_t>(RecordType::kMaxRecordType) + 1>
      by_type{};

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const auto& t : by_type) total += t.bytes;
    return total;
  }
  const PerType& For(RecordType type) const {
    return by_type[static_cast<size_t>(type)];
  }
};

/// Appends framed records; LSN = 1 + global byte offset of the record frame.
class LogWriter {
 public:
  explicit LogWriter(SimLogDevice* device);

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Spool the record to the volatile log buffer. Assigns and returns its
  /// LSN (also stored into rec->lsn). When the buffer passes
  /// kAutoFlushBytes it drains to the device asynchronously (the actor
  /// does not wait; the bytes remain tearable until a barrier).
  Lsn Append(LogRecord* rec);

  /// Background-drain threshold for the volatile log buffer.
  static constexpr size_t kAutoFlushBytes = 64 * 1024;

  /// Ensure every record with LSN <= lsn is on the stable device. Used by
  /// the buffer pool's WAL constraint; raises the durable barrier.
  Status FlushTo(Lsn lsn);

  /// Flush the entire buffer without forcing the device (background/group
  /// flush; the flushed bytes may still tear in a crash unless a WAL flush
  /// or Force later raises the barrier).
  Status Flush();

  /// Force: flush everything, wait for the device, raise the barrier.
  /// This is the only synchronous log operation (commit-time, §2.2.1).
  Status Force();

  /// The machine's fault injector (may be null outside the simulator).
  FaultInjector* faults() const { return device_->faults(); }

  Lsn next_lsn() const { return 1 + base_offset_ + buffer_.size(); }
  Lsn last_lsn() const { return last_lsn_; }
  Lsn flushed_lsn() const { return flushed_lsn_; }
  /// Every record with LSN <= durable_lsn() is behind the durable barrier:
  /// on the stable device and acknowledged, so it can never tear. This is
  /// the bound the group-commit queue checks waiters against.
  Lsn durable_lsn() const { return durable_lsn_; }

  uint64_t buffered_bytes() const { return buffer_.size(); }
  const LogVolumeStats& volume_stats() const { return volume_; }
  void ResetVolumeStats() { volume_ = LogVolumeStats(); }
  const LogWriterStats& writer_stats() const { return writer_; }

 private:
  SimLogDevice* device_;
  uint64_t base_offset_;          // device size at last flush
  std::vector<uint8_t> buffer_;   // framed bytes not yet on the device
  Lsn last_lsn_ = kInvalidLsn;    // last assigned LSN
  Lsn flushed_lsn_ = kInvalidLsn; // all records <= this are on the device
  Lsn durable_lsn_ = kInvalidLsn; // all records <= this are un-tearable
  Lsn last_buffered_lsn_ = kInvalidLsn;  // last record currently in buffer
  LogVolumeStats volume_;
  LogWriterStats writer_;
};

}  // namespace sheap

#endif  // SHEAP_WAL_LOG_WRITER_H_
