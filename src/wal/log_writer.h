// LogWriter: spools records to a volatile log buffer and flushes them to the
// stable log device (paper §2.2.1). "Write to the log" = spool to the
// buffer; "force the log" = synchronous flush (commit). The buffer dies in a
// crash; only flushed bytes survive.
//
// Concurrency contract: the writer IS internally synchronized — one leaf
// mutex (mu_) makes each Append/Flush/Force atomic, so LSN assignment is a
// linearization point. In single-mutator mode the callers still serialize
// low-level actions, the lock is uncontended, and LSN assignment (and
// therefore the crash matrix) stays byte-deterministic exactly as before.
// With true concurrent mutators (StableHeapOptions::mutator_threads > 1)
// several threads spool records concurrently; the LSN order then depends
// on thread interleaving, which is why concurrent mode is validated by
// invariant checks after recovery rather than byte equality. mu_ ranks
// below every other lock (a buffer-pool shard or the commit queue may
// flush the log while held; the writer calls out only to the device and
// the fault injector). See DESIGN.md §5e/§5i.

#ifndef SHEAP_WAL_LOG_WRITER_H_
#define SHEAP_WAL_LOG_WRITER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "fault/fault_injector.h"
#include "storage/page.h"
#include "storage/env.h"
#include "wal/record.h"

namespace sheap {

/// Writer-internal counters: spool-buffer behaviour and drain activity.
/// `spool_reallocs` counts capacity growths of the volatile buffer after
/// construction — the steady state is zero (the buffer is reserved up
/// front and reused across drains, never reallocated per record).
struct LogWriterStats {
  uint64_t appends = 0;         // records spooled
  uint64_t drains = 0;          // buffer drains (async + synchronous)
  uint64_t spool_reallocs = 0;  // volatile-buffer capacity growths
};

/// Per-record-type counters for log-volume accounting (experiment E10).
struct LogVolumeStats {
  struct PerType {
    uint64_t records = 0;
    uint64_t bytes = 0;  // framed size
  };
  std::array<PerType, static_cast<size_t>(RecordType::kMaxRecordType) + 1>
      by_type{};

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const auto& t : by_type) total += t.bytes;
    return total;
  }
  const PerType& For(RecordType type) const {
    return by_type[static_cast<size_t>(type)];
  }
};

/// Appends framed records; LSN = 1 + global byte offset of the record frame.
class LogWriter {
 public:
  explicit LogWriter(LogDevice* device);

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Spool the record to the volatile log buffer. Assigns and returns its
  /// LSN (also stored into rec->lsn). When the buffer passes
  /// kAutoFlushBytes it drains to the device asynchronously (the actor
  /// does not wait; the bytes remain tearable until a barrier).
  Lsn Append(LogRecord* rec) SHEAP_EXCLUDES(mu_);

  /// Background-drain threshold for the volatile log buffer.
  static constexpr size_t kAutoFlushBytes = 64 * 1024;

  /// Ensure every record with LSN <= lsn is on the stable device. Used by
  /// the buffer pool's WAL constraint; raises the durable barrier.
  Status FlushTo(Lsn lsn) SHEAP_EXCLUDES(mu_);

  /// Flush the entire buffer without forcing the device (background/group
  /// flush; the flushed bytes may still tear in a crash unless a WAL flush
  /// or Force later raises the barrier).
  Status Flush() SHEAP_EXCLUDES(mu_);

  /// Force: flush everything, wait for the device, raise the barrier.
  /// This is the only synchronous log operation (commit-time, §2.2.1).
  Status Force() SHEAP_EXCLUDES(mu_);

  /// The machine's fault injector (may be null outside the simulator).
  FaultInjector* faults() const { return device_->faults(); }

  Lsn next_lsn() const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return NextLsnLocked();
  }
  Lsn last_lsn() const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return last_lsn_;
  }
  Lsn flushed_lsn() const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return flushed_lsn_;
  }
  /// Every record with LSN <= durable_lsn() is behind the durable barrier:
  /// on the stable device and acknowledged, so it can never tear. This is
  /// the bound the group-commit queue checks waiters against.
  Lsn durable_lsn() const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return durable_lsn_;
  }

  uint64_t buffered_bytes() const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return buffer_.size();
  }
  /// Quiescent inspection only (single mutator, or after workers join);
  /// returns references to mu_-guarded counters without the lock.
  const LogVolumeStats& volume_stats() const
      SHEAP_NO_THREAD_SAFETY_ANALYSIS {
    return volume_;
  }
  void ResetVolumeStats() SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    volume_ = LogVolumeStats();
  }
  const LogWriterStats& writer_stats() const
      SHEAP_NO_THREAD_SAFETY_ANALYSIS {
    return writer_;
  }

 private:
  Lsn NextLsnLocked() const SHEAP_REQUIRES(mu_) {
    return 1 + base_offset_ + buffer_.size();
  }
  Status FlushLocked() SHEAP_REQUIRES(mu_);

  LogDevice* device_;
  /// Leaf lock: one Append/Flush/Force is one atomic transition of the
  /// spool. Uncontended (and behavior-neutral) in single-mutator mode.
  mutable Mutex mu_;
  uint64_t base_offset_ SHEAP_GUARDED_BY(mu_);  // device size at last flush
  /// Framed bytes not yet on the device.
  std::vector<uint8_t> buffer_ SHEAP_GUARDED_BY(mu_);
  Lsn last_lsn_ SHEAP_GUARDED_BY(mu_) = kInvalidLsn;  // last assigned LSN
  /// All records <= this are on the device.
  Lsn flushed_lsn_ SHEAP_GUARDED_BY(mu_) = kInvalidLsn;
  /// All records <= this are un-tearable.
  Lsn durable_lsn_ SHEAP_GUARDED_BY(mu_) = kInvalidLsn;
  /// Last record currently in the buffer.
  Lsn last_buffered_lsn_ SHEAP_GUARDED_BY(mu_) = kInvalidLsn;
  LogVolumeStats volume_ SHEAP_GUARDED_BY(mu_);
  LogWriterStats writer_ SHEAP_GUARDED_BY(mu_);
};

}  // namespace sheap

#endif  // SHEAP_WAL_LOG_WRITER_H_
