#include "wal/record.h"

#include "common/check.h"
#include "util/crc32c.h"

namespace sheap {

namespace {

// Per-type field presence masks. Encoding writes exactly the masked fields in
// a fixed order, keeping records compact (log volume is measured in E10).
enum FieldBit : uint32_t {
  kFTxn = 1u << 0,
  kFPrev = 1u << 1,
  kFUndoNext = 1u << 2,
  kFAddr = 1u << 3,
  kFAddr2 = 1u << 4,
  kFNewWord = 1u << 5,
  kFOldWord = 1u << 6,
  kFAux = 1u << 7,
  kFCount = 1u << 8,
  kFPage = 1u << 9,
  kFContents = 1u << 10,
  kFSlots = 1u << 11,
  kFUtrs = 1u << 12,
  kFPayload = 1u << 13,
};

uint32_t MaskFor(RecordType type) {
  switch (type) {
    case RecordType::kHeapFormat:
      return kFPayload;
    case RecordType::kBegin:
      return kFTxn;
    case RecordType::kUpdate:
      // addr = slot address, addr2 = object base (prepared-txn rebuild).
      return kFTxn | kFPrev | kFAddr | kFAddr2 | kFNewWord | kFOldWord |
             kFAux;
    case RecordType::kClr:
      return kFTxn | kFPrev | kFUndoNext | kFAddr | kFNewWord | kFAux;
    case RecordType::kCommit:
      return kFTxn | kFPrev;
    case RecordType::kAbortTxn:
      return kFTxn | kFPrev;
    case RecordType::kEnd:
      return kFTxn;
    case RecordType::kAlloc:
      return kFTxn | kFPrev | kFAddr | kFAux | kFCount;
    case RecordType::kPageFetch:
    case RecordType::kEndWrite:
      return kFPage;
    case RecordType::kCheckpoint:
      return kFPayload;
    case RecordType::kSpaceAlloc:
      return kFAux | kFPage | kFCount | kFNewWord;
    case RecordType::kSpaceFree:
      return kFAux;
    case RecordType::kGcFlip:
      return kFAux | kFAddr | kFAddr2;
    case RecordType::kGcCopy:
      return kFAddr | kFAddr2 | kFCount | kFContents;
    case RecordType::kGcScan:
      // aux: 0 = full page scan (analysis marks the page scanned and
      // replays the partial-page abandonment rule); 1 = partial slot
      // translation (Baker barrier, remembered-slot rewrite) — redo only;
      // 3 = run of `count` clean pages (batched executor encoding).
      return kFPage | kFSlots | kFAux | kFCount;
    case RecordType::kGcCopyBatch:
      // addr2 = run base, count = run words, contents = concatenated
      // object bytes, utr_entries = per-object {from, to, nwords}.
      return kFAddr2 | kFCount | kFContents | kFUtrs;
    case RecordType::kGcComplete:
      return kFAux | kFAddr;
    case RecordType::kUtr:
      return kFUtrs;
    case RecordType::kRootObject:
      return kFAddr;
    case RecordType::kV2sCopy:
      return kFTxn | kFPrev | kFAddr | kFAddr2 | kFCount | kFContents;
    case RecordType::kInitialValue:
      // addr = reserved stable address, addr2 = volatile source (the undo
      // translation, like kV2sCopy), aux = class id.
      return kFTxn | kFPrev | kFAddr | kFAddr2 | kFAux | kFCount |
             kFContents;
    case RecordType::kVolatileFlip:
      return kFAddr | kFAddr2;
    case RecordType::kClassDef:
      return kFAux | kFCount | kFContents;
    case RecordType::kPrepare:
      return kFTxn | kFPrev | kFAux;  // aux = global transaction id
    case RecordType::kDtxDecision:
    case RecordType::kDtxEnd:
      // Coordinator decision log only (never a shard WAL): txn_id carries
      // the global transaction id, aux the participant count.
      return kFTxn | kFAux;
  }
  SHEAP_CHECK(false && "unknown record type");
  return 0;
}

}  // namespace

void LogRecord::EncodeTo(std::vector<uint8_t>* out) const {
  Encoder enc(out);
  enc.PutU8(static_cast<uint8_t>(type));
  const uint32_t mask = MaskFor(type);
  if (mask & kFTxn) enc.PutVarint(txn_id);
  if (mask & kFPrev) enc.PutVarint(prev_lsn);
  if (mask & kFUndoNext) enc.PutVarint(undo_next_lsn);
  if (mask & kFAddr) enc.PutVarint(addr);
  if (mask & kFAddr2) enc.PutVarint(addr2);
  if (mask & kFNewWord) enc.PutVarint(new_word);
  if (mask & kFOldWord) enc.PutVarint(old_word);
  if (mask & kFAux) enc.PutVarint(aux);
  if (mask & kFCount) enc.PutVarint(count);
  if (mask & kFPage) enc.PutVarint(page);
  if (mask & kFContents) {
    enc.PutLengthPrefixed(contents.data(), contents.size());
  }
  if (mask & kFSlots) {
    // Slot indexes are delta+zigzag encoded: scan records emit slots in
    // ascending order, so deltas are small and most encode in one byte
    // (E14 measures the resulting kGcScan volume reduction).
    enc.PutVarint(slot_updates.size());
    uint32_t prev_slot = 0;
    for (const auto& [slot, word] : slot_updates) {
      const int64_t delta =
          static_cast<int64_t>(slot) - static_cast<int64_t>(prev_slot);
      enc.PutVarint((static_cast<uint64_t>(delta) << 1) ^
                    static_cast<uint64_t>(delta >> 63));
      enc.PutVarint(word);
      prev_slot = slot;
    }
  }
  if (mask & kFUtrs) {
    enc.PutVarint(utr_entries.size());
    for (const auto& e : utr_entries) {
      enc.PutVarint(e.from);
      enc.PutVarint(e.to);
      enc.PutVarint(e.nwords);
    }
  }
  if (mask & kFPayload) {
    enc.PutLengthPrefixed(payload.data(), payload.size());
  }
}

Status LogRecord::DecodeFrom(Decoder* dec, LogRecord* out) {
  uint8_t type_byte;
  if (!dec->GetU8(&type_byte) || type_byte == 0 ||
      type_byte > static_cast<uint8_t>(RecordType::kMaxRecordType)) {
    return Status::Corruption("bad record type");
  }
  *out = LogRecord();
  out->type = static_cast<RecordType>(type_byte);
  const uint32_t mask = MaskFor(out->type);
  auto get = [&](uint64_t* v) { return dec->GetVarint(v); };
  bool ok = true;
  if (mask & kFTxn) ok = ok && get(&out->txn_id);
  if (mask & kFPrev) ok = ok && get(&out->prev_lsn);
  if (mask & kFUndoNext) ok = ok && get(&out->undo_next_lsn);
  if (mask & kFAddr) ok = ok && get(&out->addr);
  if (mask & kFAddr2) ok = ok && get(&out->addr2);
  if (mask & kFNewWord) ok = ok && get(&out->new_word);
  if (mask & kFOldWord) ok = ok && get(&out->old_word);
  if (mask & kFAux) ok = ok && get(&out->aux);
  if (mask & kFCount) ok = ok && get(&out->count);
  if (mask & kFPage) ok = ok && get(&out->page);
  if (!ok) return Status::Corruption("truncated record fields");
  if (mask & kFContents) {
    if (!dec->GetLengthPrefixed(&out->contents)) {
      return Status::Corruption("truncated contents");
    }
  }
  if (mask & kFSlots) {
    uint64_t n;
    if (!dec->GetVarint(&n)) return Status::Corruption("truncated slot count");
    out->slot_updates.reserve(n);
    uint32_t prev_slot = 0;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t zz, word;
      if (!dec->GetVarint(&zz) || !dec->GetVarint(&word)) {
        return Status::Corruption("truncated slot updates");
      }
      const int64_t delta =
          static_cast<int64_t>(zz >> 1) ^ -static_cast<int64_t>(zz & 1);
      const uint32_t slot =
          static_cast<uint32_t>(static_cast<int64_t>(prev_slot) + delta);
      out->slot_updates.emplace_back(slot, word);
      prev_slot = slot;
    }
  }
  if (mask & kFUtrs) {
    uint64_t n;
    if (!dec->GetVarint(&n)) return Status::Corruption("truncated utr count");
    out->utr_entries.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      UtrEntry e;
      if (!dec->GetVarint(&e.from) || !dec->GetVarint(&e.to) ||
          !dec->GetVarint(&e.nwords)) {
        return Status::Corruption("truncated utr entries");
      }
      out->utr_entries.push_back(e);
    }
  }
  if (mask & kFPayload) {
    if (!dec->GetLengthPrefixed(&out->payload)) {
      return Status::Corruption("truncated payload");
    }
  }
  return Status::OK();
}

const char* LogRecord::TypeName(RecordType type) {
  switch (type) {
    case RecordType::kHeapFormat:
      return "HeapFormat";
    case RecordType::kBegin:
      return "Begin";
    case RecordType::kUpdate:
      return "Update";
    case RecordType::kClr:
      return "CLR";
    case RecordType::kCommit:
      return "Commit";
    case RecordType::kAbortTxn:
      return "AbortTxn";
    case RecordType::kEnd:
      return "End";
    case RecordType::kAlloc:
      return "Alloc";
    case RecordType::kPageFetch:
      return "PageFetch";
    case RecordType::kEndWrite:
      return "EndWrite";
    case RecordType::kCheckpoint:
      return "Checkpoint";
    case RecordType::kSpaceAlloc:
      return "SpaceAlloc";
    case RecordType::kSpaceFree:
      return "SpaceFree";
    case RecordType::kGcFlip:
      return "GcFlip";
    case RecordType::kGcCopy:
      return "GcCopy";
    case RecordType::kGcScan:
      return "GcScan";
    case RecordType::kGcCopyBatch:
      return "GcCopyBatch";
    case RecordType::kGcComplete:
      return "GcComplete";
    case RecordType::kUtr:
      return "UTR";
    case RecordType::kRootObject:
      return "RootObject";
    case RecordType::kV2sCopy:
      return "V2sCopy";
    case RecordType::kInitialValue:
      return "InitialValue";
    case RecordType::kVolatileFlip:
      return "VolatileFlip";
    case RecordType::kClassDef:
      return "ClassDef";
    case RecordType::kPrepare:
      return "Prepare";
    case RecordType::kDtxDecision:
      return "DtxDecision";
    case RecordType::kDtxEnd:
      return "DtxEnd";
  }
  return "Unknown";
}

void EncodeFramed(const LogRecord& rec, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  rec.EncodeTo(&body);
  Encoder enc(out);
  enc.PutU32(static_cast<uint32_t>(body.size()));
  enc.PutU32(crc32c::Mask(crc32c::Value(body.data(), body.size())));
  enc.PutBytes(body.data(), body.size());
}

}  // namespace sheap
