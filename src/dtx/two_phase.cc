#include "dtx/two_phase.h"

#include "common/check.h"

namespace sheap {

TwoPhaseCoordinator::TwoPhaseCoordinator(SimEnv* env)
    : env_(env), log_(env->log()) {
  SHEAP_CHECK_OK(Rescan());
}

Status TwoPhaseCoordinator::Rescan() {
  // Rebuild decisions from the coordinator log: kCommit = decision,
  // kEnd = forgotten (all participants acknowledged).
  LogReader reader(env_->log());
  SHEAP_RETURN_IF_ERROR(reader.Seek(env_->log()->truncated_prefix() + 1));
  LogRecord rec;
  while (true) {
    auto more = reader.Next(&rec);
    SHEAP_RETURN_IF_ERROR(more.status());
    if (!*more) break;
    if (rec.type == RecordType::kCommit) committed_.insert(rec.txn_id);
    if (rec.type == RecordType::kEnd) committed_.erase(rec.txn_id);
    if (rec.txn_id >= next_gtid_) next_gtid_ = rec.txn_id + 1;
  }
  return Status::OK();
}

StatusOr<bool> TwoPhaseCoordinator::PrepareAll(
    Gtid gtid, const std::vector<Branch>& branches) {
  for (size_t i = 0; i < branches.size(); ++i) {
    Status st = branches[i].heap->Prepare(branches[i].txn, gtid);
    if (st.ok()) continue;
    // A no vote: roll everything back (prepared ones included). The
    // rollbacks are best-effort by design — a branch that cannot abort
    // now is resolved by presumed abort when it recovers, so the no vote
    // is the only status worth surfacing (audited Status discards).
    for (size_t j = 0; j < branches.size(); ++j) {
      if (j < i) {
        (void)branches[j].heap->AbortPrepared(branches[j].txn);
      } else if (j > i) {
        (void)branches[j].heap->Abort(branches[j].txn);
      }
    }
    return false;
  }
  return true;
}

Status TwoPhaseCoordinator::LogCommitDecision(Gtid gtid) {
  LogRecord rec;
  rec.type = RecordType::kCommit;
  rec.txn_id = gtid;
  log_.Append(&rec);
  SHEAP_RETURN_IF_ERROR(log_.Force());  // the commit point
  committed_.insert(gtid);
  return Status::OK();
}

Status TwoPhaseCoordinator::CommitAll(Gtid gtid,
                                      const std::vector<Branch>& branches) {
  (void)gtid;
  for (const Branch& b : branches) {
    SHEAP_RETURN_IF_ERROR(b.heap->CommitPrepared(b.txn));
  }
  return Status::OK();
}

Status TwoPhaseCoordinator::LogEnd(Gtid gtid) {
  LogRecord rec;
  rec.type = RecordType::kEnd;
  rec.txn_id = gtid;
  log_.Append(&rec);
  SHEAP_RETURN_IF_ERROR(log_.Flush());
  committed_.erase(gtid);
  return Status::OK();
}

StatusOr<bool> TwoPhaseCoordinator::CommitDistributed(
    const std::vector<Branch>& branches) {
  const Gtid gtid = NewGtid();
  SHEAP_ASSIGN_OR_RETURN(bool prepared, PrepareAll(gtid, branches));
  if (!prepared) return false;
  SHEAP_RETURN_IF_ERROR(LogCommitDecision(gtid));
  SHEAP_RETURN_IF_ERROR(CommitAll(gtid, branches));
  SHEAP_RETURN_IF_ERROR(LogEnd(gtid));
  return true;
}

Status TwoPhaseCoordinator::Resolve(StableHeap* heap) {
  for (const auto& [txn, gtid] : heap->InDoubtTransactions()) {
    if (committed_.count(gtid) > 0) {
      SHEAP_RETURN_IF_ERROR(heap->CommitPrepared(txn));
    } else {
      // Presumed abort: no durable decision means the transaction lost.
      SHEAP_RETURN_IF_ERROR(heap->AbortPrepared(txn));
    }
  }
  return Status::OK();
}

}  // namespace sheap
