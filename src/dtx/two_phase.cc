#include "dtx/two_phase.h"

#include "common/check.h"
#include "fault/fault_injector.h"

namespace sheap {

TwoPhaseCoordinator::TwoPhaseCoordinator(Env* env)
    : env_(env), log_(env->log()) {
  MutexLock lock(&mu_);
  SHEAP_CHECK_OK(Rescan());
}

Status TwoPhaseCoordinator::Rescan() {
  // Rebuild decisions from the coordinator log: kDtxDecision = decision,
  // kDtxEnd = forgotten (all participants acknowledged). The switch is
  // exhaustive (lint-enforced): every other record type is foreign to a
  // decision log and ignored, but a new record type does not compile until
  // this dispatcher says so.
  LogReader reader(env_->log());
  SHEAP_RETURN_IF_ERROR(reader.Seek(env_->log()->truncated_prefix() + 1));
  LogRecord rec;
  while (true) {
    auto more = reader.Next(&rec);
    SHEAP_RETURN_IF_ERROR(more.status());
    if (!*more) break;
    switch (rec.type) {
      case RecordType::kDtxDecision:
        committed_.insert(rec.txn_id);
        ++stats_.rescan_decisions;
        break;
      case RecordType::kDtxEnd:
        committed_.erase(rec.txn_id);
        break;
      // Not decision-log records. The pre-shard coordinator reused
      // kCommit/kEnd; tolerate them for old logs with the same meaning.
      case RecordType::kCommit:
        committed_.insert(rec.txn_id);
        break;
      case RecordType::kEnd:
        committed_.erase(rec.txn_id);
        break;
      case RecordType::kHeapFormat:
      case RecordType::kBegin:
      case RecordType::kUpdate:
      case RecordType::kClr:
      case RecordType::kAbortTxn:
      case RecordType::kAlloc:
      case RecordType::kPageFetch:
      case RecordType::kEndWrite:
      case RecordType::kCheckpoint:
      case RecordType::kSpaceAlloc:
      case RecordType::kSpaceFree:
      case RecordType::kGcFlip:
      case RecordType::kGcCopy:
      case RecordType::kGcScan:
      case RecordType::kGcComplete:
      case RecordType::kUtr:
      case RecordType::kRootObject:
      case RecordType::kV2sCopy:
      case RecordType::kInitialValue:
      case RecordType::kVolatileFlip:
      case RecordType::kClassDef:
      case RecordType::kPrepare:
      case RecordType::kGcCopyBatch:
        break;
    }
    if (rec.txn_id >= next_gtid_) next_gtid_ = rec.txn_id + 1;
  }
  return Status::OK();
}

StatusOr<bool> TwoPhaseCoordinator::PrepareAll(
    Gtid gtid, const std::vector<Branch>& branches) {
  for (size_t i = 0; i < branches.size(); ++i) {
    Status st = branches[i].heap->Prepare(branches[i].txn, gtid);
    if (st.ok()) continue;
    if (st.IsCrashed()) return st;  // injected crash, not a vote
    // A no vote: roll everything back (prepared ones included). The
    // rollbacks are best-effort by design — a branch that cannot abort
    // now is resolved by presumed abort when it recovers, so the no vote
    // is the only status worth surfacing (audited Status discards).
    for (size_t j = 0; j < branches.size(); ++j) {
      if (j < i) {
        (void)branches[j].heap->AbortPrepared(branches[j].txn);
      } else if (j > i) {
        (void)branches[j].heap->Abort(branches[j].txn);
      }
    }
    MutexLock lock(&mu_);
    ++stats_.distributed_aborts;
    return false;
  }
  return true;
}

Status TwoPhaseCoordinator::LogCommitDecision(Gtid gtid,
                                              uint64_t participants) {
  MutexLock lock(&mu_);
  LogRecord rec;
  rec.type = RecordType::kDtxDecision;
  rec.txn_id = gtid;
  rec.aux = participants;
  log_.Append(&rec);
  SHEAP_RETURN_IF_ERROR(log_.Force());  // the commit point
  SHEAP_FAULT_POINT(env_->faults(), "dtx.coord.decision_forced");
  committed_.insert(gtid);
  ++stats_.distributed_commits;
  return Status::OK();
}

Status TwoPhaseCoordinator::CommitPreparedSync(StableHeap* heap, TxnId txn) {
  // Group-commit piggyback: CommitPrepared answers Busy while the commit
  // record waits in an open batch; each retry charges poll time so a lone
  // participant reaches the batch deadline (same idiom as CommitSync).
  for (;;) {
    Status st = heap->CommitPrepared(txn);
    if (!st.IsBusy()) return st;
    MutexLock lock(&mu_);
    ++stats_.busy_retries;
  }
}

Status TwoPhaseCoordinator::CommitAll(Gtid gtid,
                                      const std::vector<Branch>& branches) {
  (void)gtid;
  for (const Branch& b : branches) {
    SHEAP_RETURN_IF_ERROR(CommitPreparedSync(b.heap, b.txn));
  }
  return Status::OK();
}

Status TwoPhaseCoordinator::LogEnd(Gtid gtid) {
  MutexLock lock(&mu_);
  LogRecord rec;
  rec.type = RecordType::kDtxEnd;
  rec.txn_id = gtid;
  log_.Append(&rec);
  // Not forced: losing kDtxEnd only re-resolves an already-applied
  // decision on the next reopen (idempotent), it cannot flip an outcome.
  SHEAP_RETURN_IF_ERROR(log_.Flush());
  committed_.erase(gtid);
  ++stats_.ends_logged;
  return Status::OK();
}

StatusOr<bool> TwoPhaseCoordinator::CommitDistributed(
    const std::vector<Branch>& branches) {
  const Gtid gtid = NewGtid();
  SHEAP_ASSIGN_OR_RETURN(bool prepared, PrepareAll(gtid, branches));
  if (!prepared) return false;
  // Crash here = every vote durable but no decision: presumed abort must
  // roll every participant back on reopen.
  SHEAP_FAULT_POINT(env_->faults(), "dtx.coord.prepared");
  SHEAP_RETURN_IF_ERROR(LogCommitDecision(gtid, branches.size()));
  SHEAP_RETURN_IF_ERROR(CommitAll(gtid, branches));
  SHEAP_RETURN_IF_ERROR(LogEnd(gtid));
  return true;
}

Status TwoPhaseCoordinator::Resolve(StableHeap* heap) {
  for (const auto& [txn, gtid] : heap->InDoubtTransactions()) {
    // Crash here = resolution interrupted mid-shard: the remaining
    // transactions stay in doubt (still locked) and the next reopen
    // resolves them — the decision log makes the loop idempotent.
    SHEAP_FAULT_POINT(env_->faults(), "dtx.coord.resolve_step");
    if (Committed(gtid)) {
      SHEAP_RETURN_IF_ERROR(CommitPreparedSync(heap, txn));
      MutexLock lock(&mu_);
      ++stats_.resolved_commit;
    } else {
      // Presumed abort: no durable decision means the transaction lost.
      SHEAP_RETURN_IF_ERROR(heap->AbortPrepared(txn));
      MutexLock lock(&mu_);
      ++stats_.resolved_abort;
    }
  }
  return Status::OK();
}

}  // namespace sheap
