// Two-phase commit across stable heaps (paper §2.2: "Our recovery
// algorithms can be extended to support distributed transactions with the
// addition of a two phase commit protocol"; distribution is §9 future
// work — this module is that extension, and since the sharded front end
// (src/shard/) it is the real cross-shard commit path, not a sketch).
//
// Presumed abort. Each participant's vote is its kPrepare record (forced);
// a prepared transaction is *in doubt*: recovery restores it with its
// write locks and undo information instead of rolling it back, and it
// waits for the coordinator. The coordinator's commit decision is one
// forced kDtxDecision record in its own stable log; no decision record
// means abort. A kDtxEnd record forgets a transaction once every
// participant has durably applied the outcome (so the coordinator must
// not log it before the last participant ack — a participant that loses
// its commit record after kDtxEnd would presume abort, wrongly).
//
// Group-commit piggybacking: participants under group commit answer
// CommitPrepared with Status::Busy while the decision's commit record
// waits in an open batch; CommitAll/Resolve drive the Busy retry protocol
// (each retry charges poll time, so a lone participant reaches the batch
// deadline and the force is shared with any concurrent committers).

#ifndef SHEAP_DTX_TWO_PHASE_H_
#define SHEAP_DTX_TWO_PHASE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "core/stable_heap.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace sheap {

/// Global (distributed) transaction id.
using Gtid = uint64_t;

/// Counters for the coordinator's protocol activity (surfaced through
/// ShardedHeapStats and examples/log_inspector.cpp).
struct DtxStats {
  uint64_t distributed_commits = 0;  ///< decisions forced (commit point)
  uint64_t distributed_aborts = 0;   ///< prepare rounds that lost
  uint64_t ends_logged = 0;          ///< transactions forgotten
  uint64_t busy_retries = 0;         ///< group-commit Busy retries driven
  uint64_t resolved_commit = 0;      ///< in-doubt resolved to commit
  uint64_t resolved_abort = 0;       ///< in-doubt resolved by presumed abort
  uint64_t rescan_decisions = 0;     ///< open decisions found on reopen
};

/// Presumed-abort coordinator with a durable decision log on its own
/// stable device.
///
/// Thread safety: the decision state (`committed_`, `next_gtid_`, stats)
/// is guarded by `mu_`; protocol entry points may be called from
/// concurrent cross-shard committers. The decision log append+force runs
/// under `mu_` too — one decision force at a time, which is exactly the
/// "one coordinator decision force per cross-shard commit" cost model.
class TwoPhaseCoordinator {
 public:
  /// `env` holds the coordinator's stable log; it survives coordinator
  /// crashes (reconstruct the coordinator on the same env).
  explicit TwoPhaseCoordinator(Env* env);

  struct Branch {
    StableHeap* heap = nullptr;
    TxnId txn = kNoTxn;
  };

  /// Run the full protocol over transactions the caller has already done
  /// work in. Returns true if the distributed transaction committed,
  /// false if any participant failed to prepare (everything rolled back).
  [[nodiscard]] StatusOr<bool> CommitDistributed(
      const std::vector<Branch>& branches) SHEAP_EXCLUDES(mu_);

  // ---- individual protocol steps (exposed for crash-point testing) ----
  Gtid NewGtid() SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return next_gtid_++;
  }
  /// Phase 1: collect votes. On any failure aborts every branch and
  /// returns false.
  [[nodiscard]] StatusOr<bool> PrepareAll(Gtid gtid,
                                          const std::vector<Branch>& branches)
      SHEAP_EXCLUDES(mu_);
  /// The commit point: force the kDtxDecision record (`participants` is
  /// carried in the record for the inspector; it does not affect the
  /// protocol).
  [[nodiscard]] Status LogCommitDecision(Gtid gtid, uint64_t participants = 0)
      SHEAP_EXCLUDES(mu_);
  /// Phase 2: deliver the outcome to (possibly re-opened) participants,
  /// driving each one's group-commit Busy retry protocol.
  [[nodiscard]] Status CommitAll(Gtid gtid,
                                 const std::vector<Branch>& branches)
      SHEAP_EXCLUDES(mu_);
  /// Forget a fully acknowledged transaction.
  [[nodiscard]] Status LogEnd(Gtid gtid) SHEAP_EXCLUDES(mu_);

  /// After a participant restart: decide every in-doubt transaction on
  /// `heap` from the decision log (presumed abort).
  [[nodiscard]] Status Resolve(StableHeap* heap) SHEAP_EXCLUDES(mu_);

  /// True if the decision log says `gtid` committed.
  bool Committed(Gtid gtid) const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return committed_.count(gtid) > 0;
  }

  /// Open (decided, not yet forgotten) transactions — what a crash of
  /// every participant would have to resolve.
  size_t OpenDecisions() const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return committed_.size();
  }

  DtxStats stats() const SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  Status Rescan() SHEAP_REQUIRES(mu_);
  /// Drive one participant's CommitPrepared through Busy retries.
  Status CommitPreparedSync(StableHeap* heap, TxnId txn) SHEAP_EXCLUDES(mu_);

  Env* const env_;
  mutable Mutex mu_;
  LogWriter log_ SHEAP_GUARDED_BY(mu_);
  std::set<Gtid> committed_ SHEAP_GUARDED_BY(mu_);  // not yet forgotten
  Gtid next_gtid_ SHEAP_GUARDED_BY(mu_) = 1;
  DtxStats stats_ SHEAP_GUARDED_BY(mu_);
};

}  // namespace sheap

#endif  // SHEAP_DTX_TWO_PHASE_H_
