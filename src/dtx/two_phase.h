// Two-phase commit across stable heaps (paper §2.2: "Our recovery
// algorithms can be extended to support distributed transactions with the
// addition of a two phase commit protocol"; distribution is §9 future
// work — this module is that extension).
//
// Presumed abort. Each participant's vote is its kPrepare record (forced);
// a prepared transaction is *in doubt*: recovery restores it with its
// write locks and undo information instead of rolling it back, and it
// waits for the coordinator. The coordinator's commit decision is one
// forced record in its own stable log; no decision record means abort.

#ifndef SHEAP_DTX_TWO_PHASE_H_
#define SHEAP_DTX_TWO_PHASE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/stable_heap.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace sheap {

/// Global (distributed) transaction id.
using Gtid = uint64_t;

/// Presumed-abort coordinator with a durable decision log on its own
/// simulated stable device.
class TwoPhaseCoordinator {
 public:
  /// `env` holds the coordinator's stable log; it survives coordinator
  /// crashes (reconstruct the coordinator on the same env).
  explicit TwoPhaseCoordinator(SimEnv* env);

  struct Branch {
    StableHeap* heap = nullptr;
    TxnId txn = kNoTxn;
  };

  /// Run the full protocol over transactions the caller has already done
  /// work in. Returns true if the distributed transaction committed,
  /// false if any participant failed to prepare (everything rolled back).
  StatusOr<bool> CommitDistributed(const std::vector<Branch>& branches);

  // ---- individual protocol steps (exposed for crash-point testing) ----
  Gtid NewGtid() { return next_gtid_++; }
  /// Phase 1: collect votes. On any failure aborts every branch and
  /// returns false.
  StatusOr<bool> PrepareAll(Gtid gtid, const std::vector<Branch>& branches);
  /// The commit point: force the decision record.
  Status LogCommitDecision(Gtid gtid);
  /// Phase 2: deliver the outcome to (possibly re-opened) participants.
  Status CommitAll(Gtid gtid, const std::vector<Branch>& branches);
  /// Forget a fully acknowledged transaction.
  Status LogEnd(Gtid gtid);

  /// After a participant restart: decide every in-doubt transaction on
  /// `heap` from the decision log (presumed abort).
  Status Resolve(StableHeap* heap);

  /// True if the decision log says `gtid` committed.
  bool Committed(Gtid gtid) const { return committed_.count(gtid) > 0; }

 private:
  Status Rescan();

  SimEnv* env_;
  LogWriter log_;
  std::set<Gtid> committed_;  // decisions (not yet forgotten)
  Gtid next_gtid_ = 1;
};

}  // namespace sheap

#endif  // SHEAP_DTX_TWO_PHASE_H_
