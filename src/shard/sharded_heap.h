// ShardedHeap: N independent StableHeaps in one process behind a
// deterministic routing layer (ROADMAP item 1, the scale-out front end).
//
// Each shard is a complete engine — its own Env (clock, disk, log,
// fault injector), WAL, buffer pool, GC, and recovery — so shards share
// no mutable state and scale independently. The routing layer partitions
// two spaces deterministically:
//
//   * roots: global root index r lives on shard r % N, local slot r / N
//     (round-robin striping, so adding load spreads evenly), and
//   * objects: a global Ref (GRef) encodes which shard owns the object;
//     object operations route on it. Cross-shard *pointers* are rejected
//     (a WriteRef whose target lives on another shard than the object) —
//     the object graph stays shard-local; spanning data structures hang
//     off per-shard roots and cross-shard *transactions*.
//
// Transactions are global: a GTxn lazily opens a local transaction on each
// shard at first touch. Commit dispatches on the participant count:
//
//   * 0 shards — trivial, nothing logged;
//   * 1 shard  — the existing StableHeap::Commit fast path, completely
//     untouched (group-commit Busy retry surfaces to the caller);
//   * 2+ shards — presumed-abort 2PC through TwoPhaseCoordinator
//     (src/dtx/): per-shard forced kPrepare votes, one forced kDtxDecision
//     on the coordinator log, then per-shard commit records that ride each
//     shard's group-commit batches (Busy retry driven by the coordinator).
//
// Recovery: Open() recovers every shard independently — in parallel when
// options.parallel_open (each shard's Env is private, so per-shard
// byte-determinism is preserved for any open order or thread placement) —
// then resolves in-doubt prepared transactions from the coordinator's
// decision log (presumed abort: no decision record means abort).

#ifndef SHEAP_SHARD_SHARDED_HEAP_H_
#define SHEAP_SHARD_SHARDED_HEAP_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/stable_heap.h"
#include "dtx/two_phase.h"
#include "storage/sim_env.h"

namespace sheap {

/// Global (cross-shard) transaction handle. 0 is never issued.
using GTxnId = uint64_t;
constexpr GTxnId kNoGTxn = 0;

/// Global object reference: shard-qualified, generation-checked. 0 is the
/// null GRef. GRefs are owned by the GTxn that created them and die with
/// it, exactly like local Refs.
using GRef = uint64_t;
constexpr GRef kNullGRef = 0;

struct ShardedHeapOptions {
  /// Number of shards (>= 1). Fixed for the lifetime of the heap image:
  /// routing is arithmetic on this count, so reopening with a different
  /// count would scramble the root striping.
  uint32_t shards = 1;
  /// Options applied to every shard (sizes are per shard).
  StableHeapOptions shard_options;
  /// Recover shards on concurrent threads (one per shard). Off = serial,
  /// in shard order. Either way each shard's bytes are identical — only
  /// time-to-open changes (max over shards instead of the sum).
  bool parallel_open = true;
  /// Serial open only: recover shards in reverse order. Exists for the
  /// determinism tests (recovery order must not matter).
  bool reverse_open_order = false;
  /// Resolve in-doubt prepared transactions from the coordinator's
  /// decision log at the end of Open (presumed abort). Off leaves them in
  /// doubt, holding their locks, for tests that resolve manually.
  bool resolve_in_doubt = true;
};

/// Per-shard + rolled-up counters. `total` sums the numeric fields of
/// every shard's HeapStats (recovery.time_to_open_ns is the max instead —
/// the parallel-open critical path).
struct ShardedHeapStats {
  std::vector<HeapStats> per_shard;
  HeapStats total;
  DtxStats dtx;                       ///< coordinator protocol counters
  uint64_t single_shard_commits = 0;  ///< fast-path commits
  uint64_t cross_shard_commits = 0;   ///< 2PC commits (decision forced)
  uint64_t cross_shard_aborts = 0;    ///< 2PC prepare rounds lost
  uint64_t empty_commits = 0;         ///< commits that touched no shard
  uint64_t open_ns_sum = 0;           ///< serial recovery cost (sum)
  uint64_t open_ns_max = 0;           ///< parallel recovery cost (slowest)
};

/// See file comment.
class ShardedHeap {
 public:
  /// Open (recover) or create every shard on its env, then resolve
  /// in-doubt transactions from the coordinator log on `coordinator_env`.
  /// `shard_envs.size()` must equal `options.shards`; every env survives
  /// crashes and must be passed again on reopen, in the same order.
  [[nodiscard]] static StatusOr<std::unique_ptr<ShardedHeap>> Open(
      const std::vector<Env*>& shard_envs, Env* coordinator_env,
      const ShardedHeapOptions& options);
  /// Convenience overload: tests/benches build vectors of concrete SimEnv*
  /// (no implicit vector<SimEnv*> → vector<Env*> conversion exists).
  [[nodiscard]] static StatusOr<std::unique_ptr<ShardedHeap>> Open(
      const std::vector<SimEnv*>& shard_envs, SimEnv* coordinator_env,
      const ShardedHeapOptions& options);

  ShardedHeap(const ShardedHeap&) = delete;
  ShardedHeap& operator=(const ShardedHeap&) = delete;

  // ------------------------------------------------------------- schema
  /// Register a class on every shard. Shards assign ids independently but
  /// deterministically; registration happens on all shards in lockstep so
  /// the ids agree (Internal error if they ever diverge).
  StatusOr<ClassId> RegisterClass(const std::vector<bool>& pointer_map);

  // ------------------------------------------------------- transactions
  [[nodiscard]] StatusOr<GTxnId> Begin();
  /// Commit: fast path for <= 1 participant, 2PC for 2+. Returns Busy
  /// under group commit while the (single-shard) batch is open — retry,
  /// or use CommitSync. A false 2PC vote surfaces as Aborted.
  [[nodiscard]] Status Commit(GTxnId gtxn);
  [[nodiscard]] Status Abort(GTxnId gtxn);
  /// Commit through the Busy retry protocol (see StableHeap::CommitSync).
  [[nodiscard]] Status CommitSync(GTxnId gtxn) {
    for (;;) {
      Status st = Commit(gtxn);
      if (!st.IsBusy()) return st;
    }
  }

  // ------------------------------------------------------------ objects
  /// Allocate on the transaction's home shard (the first shard it
  /// touched; shard 0 if untouched).
  [[nodiscard]] StatusOr<GRef> Allocate(GTxnId gtxn, ClassId cls,
                                        uint64_t nslots);
  /// Allocate on an explicit shard (the sharded drivers' routing).
  [[nodiscard]] StatusOr<GRef> AllocateOn(GTxnId gtxn, uint32_t shard,
                                          ClassId cls, uint64_t nslots);

  StatusOr<uint64_t> ReadScalar(GTxnId gtxn, GRef ref, uint64_t slot);
  StatusOr<GRef> ReadRef(GTxnId gtxn, GRef ref, uint64_t slot);
  Status WriteScalar(GTxnId gtxn, GRef ref, uint64_t slot, uint64_t value);
  /// `target` must live on the same shard as `ref` (or be null):
  /// cross-shard pointers are rejected with InvalidArgument.
  Status WriteRef(GTxnId gtxn, GRef ref, uint64_t slot, GRef target);
  Status ReleaseRef(GTxnId gtxn, GRef ref);

  // -------------------------------------------------------------- roots
  /// Global root index r routes to shard r % shards, local slot
  /// r / shards. Valid while r / shards < shard_options.root_slots.
  Status SetRoot(GTxnId gtxn, uint64_t index, GRef target);
  StatusOr<GRef> GetRoot(GTxnId gtxn, uint64_t index);

  /// The shard a global root index routes to (bench/test partitioning).
  uint32_t ShardOfRoot(uint64_t index) const {
    return static_cast<uint32_t>(index % shards_.size());
  }

  // ------------------------------------------------------------ control
  Status Checkpoint();
  Status ForceLog();
  Status CollectStableFully();
  [[nodiscard]] Status DrainInstantRecovery();
  /// Crash every shard (same CrashOptions each; the per-shard seed is
  /// `crash_options.seed + shard`, so write-back subsets differ across
  /// shards but stay reproducible). The ShardedHeap becomes unusable;
  /// destroy it and Open the same envs again to recover.
  Status SimulateCrashAll(const CrashOptions& crash_options);

  // --------------------------------------------------------- inspection
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  StableHeap* shard(uint32_t i) { return shards_[i].get(); }
  TwoPhaseCoordinator* coordinator() { return coordinator_.get(); }
  const ShardedHeapOptions& options() const { return options_; }
  /// Per-shard + rolled-up stats (see ShardedHeapStats).
  ShardedHeapStats stats() const;

 private:
  struct GTxn {
    GTxnId id = kNoGTxn;
    /// Local transaction per shard; kNoTxn where untouched.
    std::vector<TxnId> branch;
    /// Shards in first-touch order; front() is the home shard.
    std::vector<uint32_t> touched;
  };

  struct GHandle {
    uint32_t shard = 0;
    Ref local = kNullRef;
    GTxnId owner = kNoGTxn;
    uint16_t generation = 1;
    bool in_use = false;
  };

  ShardedHeap(std::vector<std::unique_ptr<StableHeap>> shards,
              std::unique_ptr<TwoPhaseCoordinator> coordinator,
              const ShardedHeapOptions& options);

  Status CheckUsable() const;
  StatusOr<GTxn*> FindGTxn(GTxnId id);
  /// Lazily begin the local transaction on `shard` (first touch).
  StatusOr<TxnId> BranchFor(GTxn* txn, uint32_t shard);
  /// Decode a GRef owned by `txn` into (shard, local Ref).
  StatusOr<const GHandle*> Resolve(const GTxn* txn, GRef ref) const;
  /// Wrap a local Ref into a txn-owned GRef (null stays null).
  GRef Wrap(GTxn* txn, uint32_t shard, Ref local);
  /// Drop the transaction's global handles and bookkeeping.
  void EndGTxn(GTxnId id);

  std::vector<std::unique_ptr<StableHeap>> shards_;
  std::unique_ptr<TwoPhaseCoordinator> coordinator_;
  ShardedHeapOptions options_;
  bool usable_ = true;

  GTxnId next_gtxn_ = 1;
  std::unordered_map<GTxnId, GTxn> gtxns_;

  std::vector<GHandle> ghandles_;
  std::vector<uint64_t> gfree_;  // free indices in ghandles_

  // Commit-path counters (see ShardedHeapStats).
  uint64_t single_shard_commits_ = 0;
  uint64_t cross_shard_commits_ = 0;
  uint64_t cross_shard_aborts_ = 0;
  uint64_t empty_commits_ = 0;
  uint64_t open_ns_sum_ = 0;
  uint64_t open_ns_max_ = 0;
};

}  // namespace sheap

#endif  // SHEAP_SHARD_SHARDED_HEAP_H_
