#include "shard/sharded_heap.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/check.h"

namespace sheap {

namespace {

// GRef layout mirrors the local handle table: 48-bit table index above a
// 16-bit generation. Generations start at 1, so a live GRef is never 0.
constexpr int kGGenBits = 16;
constexpr uint64_t kGGenMask = (1ull << kGGenBits) - 1;

uint64_t GIndexOf(GRef ref) { return ref >> kGGenBits; }
uint16_t GGenOf(GRef ref) { return static_cast<uint16_t>(ref & kGGenMask); }
GRef MakeGRef(uint64_t index, uint16_t gen) {
  return (index << kGGenBits) | gen;
}

// Field-wise accumulation for the rolled-up view. Every counter sums;
// time-to-open maxes separately (the caller keeps sum and max).
void AddHeapStats(HeapStats* total, const HeapStats& s) {
  total->fault.armed += s.fault.armed;
  total->fault.fired += s.fault.fired;
  total->fault.retried += s.fault.retried;
  total->fault.exhausted += s.fault.exhausted;
  total->fault.points_hit += s.fault.points_hit;

  total->disk.page_reads += s.disk.page_reads;
  total->disk.page_writes += s.disk.page_writes;
  total->disk.fresh_reads += s.disk.fresh_reads;
  total->disk.crc_failures += s.disk.crc_failures;
  total->disk.run_writes += s.disk.run_writes;
  total->disk.run_pages += s.disk.run_pages;

  total->log_device.appends += s.log_device.appends;
  total->log_device.bytes_appended += s.log_device.bytes_appended;
  total->log_device.forces += s.log_device.forces;

  total->pool.hits += s.pool.hits;
  total->pool.misses += s.pool.misses;
  total->pool.evictions += s.pool.evictions;
  total->pool.write_backs += s.pool.write_backs;
  total->pool.evict_probe_steps += s.pool.evict_probe_steps;
  total->pool.dirty_scan_steps += s.pool.dirty_scan_steps;
  total->pool.flush_runs += s.pool.flush_runs;

  total->recovery.analysis_records += s.recovery.analysis_records;
  total->recovery.redo_records_seen += s.recovery.redo_records_seen;
  total->recovery.redo_records_applied += s.recovery.redo_records_applied;
  total->recovery.undo_records += s.recovery.undo_records;
  total->recovery.clrs_written += s.recovery.clrs_written;
  total->recovery.losers_aborted += s.recovery.losers_aborted;
  total->recovery.winners_closed += s.recovery.winners_closed;
  total->recovery.prepared_restored += s.recovery.prepared_restored;
  total->recovery.log_bytes_read += s.recovery.log_bytes_read;
  total->recovery.ondemand_pages += s.recovery.ondemand_pages;
  total->recovery.drained_pages += s.recovery.drained_pages;
  total->recovery.pending_pages += s.recovery.pending_pages;
  // Parallel open: the slowest shard is the critical path.
  total->recovery.time_to_open_ns =
      std::max(total->recovery.time_to_open_ns, s.recovery.time_to_open_ns);
}

}  // namespace

ShardedHeap::ShardedHeap(std::vector<std::unique_ptr<StableHeap>> shards,
                         std::unique_ptr<TwoPhaseCoordinator> coordinator,
                         const ShardedHeapOptions& options)
    : shards_(std::move(shards)),
      coordinator_(std::move(coordinator)),
      options_(options) {}

StatusOr<std::unique_ptr<ShardedHeap>> ShardedHeap::Open(
    const std::vector<SimEnv*>& shard_envs, SimEnv* coordinator_env,
    const ShardedHeapOptions& options) {
  std::vector<Env*> envs(shard_envs.begin(), shard_envs.end());
  return Open(envs, static_cast<Env*>(coordinator_env), options);
}

StatusOr<std::unique_ptr<ShardedHeap>> ShardedHeap::Open(
    const std::vector<Env*>& shard_envs, Env* coordinator_env,
    const ShardedHeapOptions& options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("sharded heap needs >= 1 shard");
  }
  if (shard_envs.size() != options.shards) {
    return Status::InvalidArgument("shard env count != shard count");
  }
  if (coordinator_env == nullptr) {
    return Status::InvalidArgument("missing coordinator env");
  }

  const uint32_t n = options.shards;
  std::vector<StatusOr<std::unique_ptr<StableHeap>>> opened;
  opened.reserve(n);
  for (uint32_t i = 0; i < n; ++i) opened.emplace_back(nullptr);

  // Each shard's recovery runs entirely against its private Env, so
  // the opens are embarrassingly parallel: no order or thread placement
  // can change any shard's bytes, only the wall-clock shape (max over
  // shards instead of their sum — see open_ns_max / open_ns_sum).
  if (options.parallel_open && n > 1) {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      workers.emplace_back([&, i] {
        opened[i] = StableHeap::Open(shard_envs[i], options.shard_options);
      });
    }
    for (std::thread& t : workers) t.join();
  } else {
    for (uint32_t k = 0; k < n; ++k) {
      const uint32_t i = options.reverse_open_order ? n - 1 - k : k;
      opened[i] = StableHeap::Open(shard_envs[i], options.shard_options);
    }
  }

  std::vector<std::unique_ptr<StableHeap>> shards;
  shards.reserve(n);
  uint64_t open_sum = 0;
  uint64_t open_max = 0;
  for (uint32_t i = 0; i < n; ++i) {
    SHEAP_RETURN_IF_ERROR(opened[i].status());
    shards.push_back(std::move(*opened[i]));
    const uint64_t ns = shards.back()->recovery_stats().time_to_open_ns;
    open_sum += ns;
    open_max = std::max(open_max, ns);
  }

  auto coordinator = std::make_unique<TwoPhaseCoordinator>(coordinator_env);
  auto heap = std::unique_ptr<ShardedHeap>(new ShardedHeap(
      std::move(shards), std::move(coordinator), options));
  heap->open_ns_sum_ = open_sum;
  heap->open_ns_max_ = open_max;

  if (options.resolve_in_doubt) {
    // Deterministic shard order; the decision log makes this idempotent,
    // so a crash mid-resolution just re-runs it on the next Open.
    for (uint32_t i = 0; i < n; ++i) {
      SHEAP_RETURN_IF_ERROR(heap->coordinator_->Resolve(heap->shards_[i].get()));
    }
  }
  return heap;
}

Status ShardedHeap::CheckUsable() const {
  if (!usable_) {
    return Status::Crashed("sharded heap crashed; reopen the envs");
  }
  return Status::OK();
}

StatusOr<ShardedHeap::GTxn*> ShardedHeap::FindGTxn(GTxnId id) {
  auto it = gtxns_.find(id);
  if (it == gtxns_.end()) {
    return Status::Aborted("unknown global transaction");
  }
  return &it->second;
}

StatusOr<TxnId> ShardedHeap::BranchFor(GTxn* txn, uint32_t shard) {
  SHEAP_CHECK(shard < shards_.size());
  if (txn->branch[shard] == kNoTxn) {
    SHEAP_ASSIGN_OR_RETURN(TxnId local, shards_[shard]->Begin());
    txn->branch[shard] = local;
    txn->touched.push_back(shard);
  }
  return txn->branch[shard];
}

StatusOr<const ShardedHeap::GHandle*> ShardedHeap::Resolve(const GTxn* txn,
                                                           GRef ref) const {
  const uint64_t idx = GIndexOf(ref);
  if (ref == kNullGRef || idx >= ghandles_.size()) {
    return Status::InvalidArgument("bad global ref");
  }
  const GHandle& h = ghandles_[idx];
  if (!h.in_use || h.generation != GGenOf(ref)) {
    return Status::InvalidArgument("stale global ref");
  }
  if (h.owner != txn->id) {
    return Status::InvalidArgument("global ref owned by another transaction");
  }
  return &h;
}

GRef ShardedHeap::Wrap(GTxn* txn, uint32_t shard, Ref local) {
  if (local == kNullRef) return kNullGRef;
  uint64_t idx;
  if (!gfree_.empty()) {
    idx = gfree_.back();
    gfree_.pop_back();
  } else {
    idx = ghandles_.size();
    ghandles_.emplace_back();
  }
  GHandle& h = ghandles_[idx];
  h.shard = shard;
  h.local = local;
  h.owner = txn->id;
  h.in_use = true;
  return MakeGRef(idx, h.generation);
}

void ShardedHeap::EndGTxn(GTxnId id) {
  for (uint64_t i = 0; i < ghandles_.size(); ++i) {
    GHandle& h = ghandles_[i];
    if (h.in_use && h.owner == id) {
      h.in_use = false;
      h.local = kNullRef;
      ++h.generation;
      if (h.generation == 0) h.generation = 1;  // skip the null pattern
      gfree_.push_back(i);
    }
  }
  gtxns_.erase(id);
}

// ---------------------------------------------------------------- schema

StatusOr<ClassId> ShardedHeap::RegisterClass(
    const std::vector<bool>& pointer_map) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(ClassId id, shards_[0]->RegisterClass(pointer_map));
  for (uint32_t i = 1; i < shards_.size(); ++i) {
    SHEAP_ASSIGN_OR_RETURN(ClassId other,
                           shards_[i]->RegisterClass(pointer_map));
    if (other != id) {
      // Shards register classes in lockstep from a shared schema; ids can
      // only diverge if a caller bypassed the front end.
      return Status::Internal("class ids diverged across shards");
    }
  }
  return id;
}

// ----------------------------------------------------------- transactions

StatusOr<GTxnId> ShardedHeap::Begin() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  const GTxnId id = next_gtxn_++;
  GTxn txn;
  txn.id = id;
  txn.branch.assign(shards_.size(), kNoTxn);
  gtxns_.emplace(id, std::move(txn));
  return id;
}

Status ShardedHeap::Commit(GTxnId gtxn) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(GTxn * txn, FindGTxn(gtxn));

  // Gather the participants (shards with a local branch).
  std::vector<uint32_t> parts;
  for (uint32_t s : txn->touched) {
    if (txn->branch[s] != kNoTxn) parts.push_back(s);
  }

  if (parts.empty()) {
    ++empty_commits_;
    EndGTxn(gtxn);
    return Status::OK();
  }

  if (parts.size() == 1) {
    // Single-shard fast path: the plain StableHeap commit, including its
    // group-commit Busy retry protocol (the GTxn survives Busy).
    const uint32_t s = parts.front();
    Status st = shards_[s]->Commit(txn->branch[s]);
    if (st.IsBusy()) return st;  // the GTxn survives Busy; caller retries
    if (st.ok()) ++single_shard_commits_;
    EndGTxn(gtxn);
    return st;
  }

  // Cross-shard: presumed-abort 2PC. The coordinator forces one decision
  // record; participant prepare/commit records ride each shard's
  // group-commit batches.
  std::vector<TwoPhaseCoordinator::Branch> branches;
  branches.reserve(parts.size());
  for (uint32_t s : parts) {
    branches.push_back({shards_[s].get(), txn->branch[s]});
  }
  auto committed = coordinator_->CommitDistributed(branches);
  if (!committed.ok()) {
    // Injected crash or I/O failure mid-protocol: the GTxn is done as far
    // as this process is concerned; recovery owns the outcome now.
    EndGTxn(gtxn);
    return committed.status();
  }
  EndGTxn(gtxn);
  if (!*committed) {
    ++cross_shard_aborts_;
    return Status::Aborted("cross-shard transaction lost the prepare round");
  }
  ++cross_shard_commits_;
  return Status::OK();
}

Status ShardedHeap::Abort(GTxnId gtxn) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(GTxn * txn, FindGTxn(gtxn));
  Status first = Status::OK();
  for (uint32_t s : txn->touched) {
    if (txn->branch[s] == kNoTxn) continue;
    Status st = shards_[s]->Abort(txn->branch[s]);
    if (!st.ok() && first.ok()) first = st;
  }
  EndGTxn(gtxn);
  return first;
}

// --------------------------------------------------------------- objects

StatusOr<GRef> ShardedHeap::Allocate(GTxnId gtxn, ClassId cls,
                                     uint64_t nslots) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(GTxn * txn, FindGTxn(gtxn));
  const uint32_t home = txn->touched.empty() ? 0 : txn->touched.front();
  return AllocateOn(gtxn, home, cls, nslots);
}

StatusOr<GRef> ShardedHeap::AllocateOn(GTxnId gtxn, uint32_t shard,
                                       ClassId cls, uint64_t nslots) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(GTxn * txn, FindGTxn(gtxn));
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("no such shard");
  }
  SHEAP_ASSIGN_OR_RETURN(TxnId local, BranchFor(txn, shard));
  SHEAP_ASSIGN_OR_RETURN(Ref ref,
                         shards_[shard]->Allocate(local, cls, nslots));
  return Wrap(txn, shard, ref);
}

StatusOr<uint64_t> ShardedHeap::ReadScalar(GTxnId gtxn, GRef ref,
                                           uint64_t slot) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(GTxn * txn, FindGTxn(gtxn));
  SHEAP_ASSIGN_OR_RETURN(const GHandle* h, Resolve(txn, ref));
  SHEAP_ASSIGN_OR_RETURN(TxnId local, BranchFor(txn, h->shard));
  return shards_[h->shard]->ReadScalar(local, h->local, slot);
}

StatusOr<GRef> ShardedHeap::ReadRef(GTxnId gtxn, GRef ref, uint64_t slot) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(GTxn * txn, FindGTxn(gtxn));
  SHEAP_ASSIGN_OR_RETURN(const GHandle* h, Resolve(txn, ref));
  const uint32_t shard = h->shard;
  SHEAP_ASSIGN_OR_RETURN(TxnId local, BranchFor(txn, shard));
  SHEAP_ASSIGN_OR_RETURN(Ref out,
                         shards_[shard]->ReadRef(local, h->local, slot));
  return Wrap(txn, shard, out);
}

Status ShardedHeap::WriteScalar(GTxnId gtxn, GRef ref, uint64_t slot,
                                uint64_t value) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(GTxn * txn, FindGTxn(gtxn));
  SHEAP_ASSIGN_OR_RETURN(const GHandle* h, Resolve(txn, ref));
  SHEAP_ASSIGN_OR_RETURN(TxnId local, BranchFor(txn, h->shard));
  return shards_[h->shard]->WriteScalar(local, h->local, slot, value);
}

Status ShardedHeap::WriteRef(GTxnId gtxn, GRef ref, uint64_t slot,
                             GRef target) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(GTxn * txn, FindGTxn(gtxn));
  SHEAP_ASSIGN_OR_RETURN(const GHandle* h, Resolve(txn, ref));
  Ref local_target = kNullRef;
  if (target != kNullGRef) {
    SHEAP_ASSIGN_OR_RETURN(const GHandle* t, Resolve(txn, target));
    if (t->shard != h->shard) {
      // The object graph is shard-local by construction: a pointer cannot
      // name an address in another shard's address space. Spanning
      // structures hang off per-shard roots instead.
      return Status::InvalidArgument("cross-shard pointer rejected");
    }
    local_target = t->local;
  }
  SHEAP_ASSIGN_OR_RETURN(TxnId local, BranchFor(txn, h->shard));
  return shards_[h->shard]->WriteRef(local, h->local, slot, local_target);
}

Status ShardedHeap::ReleaseRef(GTxnId gtxn, GRef ref) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(GTxn * txn, FindGTxn(gtxn));
  SHEAP_ASSIGN_OR_RETURN(const GHandle* h, Resolve(txn, ref));
  const uint64_t idx = GIndexOf(ref);
  SHEAP_ASSIGN_OR_RETURN(TxnId local, BranchFor(txn, h->shard));
  SHEAP_RETURN_IF_ERROR(shards_[h->shard]->ReleaseRef(local, h->local));
  GHandle& mut = ghandles_[idx];
  mut.in_use = false;
  mut.local = kNullRef;
  ++mut.generation;
  if (mut.generation == 0) mut.generation = 1;
  gfree_.push_back(idx);
  return Status::OK();
}

// ----------------------------------------------------------------- roots

Status ShardedHeap::SetRoot(GTxnId gtxn, uint64_t index, GRef target) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(GTxn * txn, FindGTxn(gtxn));
  const uint32_t shard = ShardOfRoot(index);
  const uint64_t local_slot = index / shards_.size();
  Ref local_target = kNullRef;
  if (target != kNullGRef) {
    SHEAP_ASSIGN_OR_RETURN(const GHandle* t, Resolve(txn, target));
    if (t->shard != shard) {
      return Status::InvalidArgument(
          "root and target route to different shards");
    }
    local_target = t->local;
  }
  SHEAP_ASSIGN_OR_RETURN(TxnId local, BranchFor(txn, shard));
  return shards_[shard]->SetRoot(local, local_slot, local_target);
}

StatusOr<GRef> ShardedHeap::GetRoot(GTxnId gtxn, uint64_t index) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  SHEAP_ASSIGN_OR_RETURN(GTxn * txn, FindGTxn(gtxn));
  const uint32_t shard = ShardOfRoot(index);
  const uint64_t local_slot = index / shards_.size();
  SHEAP_ASSIGN_OR_RETURN(TxnId local, BranchFor(txn, shard));
  SHEAP_ASSIGN_OR_RETURN(Ref out, shards_[shard]->GetRoot(local, local_slot));
  return Wrap(txn, shard, out);
}

// ---------------------------------------------------------------- control

Status ShardedHeap::Checkpoint() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  for (auto& s : shards_) SHEAP_RETURN_IF_ERROR(s->Checkpoint());
  return Status::OK();
}

Status ShardedHeap::ForceLog() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  for (auto& s : shards_) SHEAP_RETURN_IF_ERROR(s->ForceLog());
  return Status::OK();
}

Status ShardedHeap::CollectStableFully() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  for (auto& s : shards_) SHEAP_RETURN_IF_ERROR(s->CollectStableFully());
  return Status::OK();
}

Status ShardedHeap::DrainInstantRecovery() {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  for (auto& s : shards_) SHEAP_RETURN_IF_ERROR(s->DrainInstantRecovery());
  return Status::OK();
}

Status ShardedHeap::SimulateCrashAll(const CrashOptions& crash_options) {
  SHEAP_RETURN_IF_ERROR(CheckUsable());
  usable_ = false;
  gtxns_.clear();
  ghandles_.clear();
  gfree_.clear();
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    CrashOptions per_shard = crash_options;
    per_shard.seed = crash_options.seed + i;
    SHEAP_RETURN_IF_ERROR(shards_[i]->SimulateCrash(per_shard));
  }
  return Status::OK();
}

// ------------------------------------------------------------- inspection

ShardedHeapStats ShardedHeap::stats() const {
  ShardedHeapStats out;
  out.per_shard.reserve(shards_.size());
  for (const auto& s : shards_) {
    out.per_shard.push_back(s->stats());
    AddHeapStats(&out.total, out.per_shard.back());
  }
  out.dtx = coordinator_->stats();
  out.single_shard_commits = single_shard_commits_;
  out.cross_shard_commits = cross_shard_commits_;
  out.cross_shard_aborts = cross_shard_aborts_;
  out.empty_commits = empty_commits_;
  out.open_ns_sum = open_ns_sum_;
  out.open_ns_max = open_ns_max_;
  return out;
}

}  // namespace sheap
