#include "stability/stable_sets.h"

// Header-only; TU keeps the build graph uniform.
namespace sheap {}
