// Side tables for the stable/volatile division (paper Chapter 5).
//
// RememberedSet: stable-area slots that currently hold (uncommitted)
// pointers into the volatile area. They are (a) the roots the volatile
// collector must trace and rewrite (§5.3, "S4vscan") and (b) the promotion
// roots at commit: the transaction's entries name exactly the volatile
// objects that become stable when it commits.
//
// LikelyStableSet: the LS of §5.1 — volatile objects that will become
// stable if some set of active transactions commits. Maintained by the
// concurrent tracker at update time so commit does not need to traverse;
// in this implementation promotion computes the physical closure at commit
// (provably complete) and the LS serves the paper's cost-spreading role and
// is cross-checked by tests.

#ifndef SHEAP_STABILITY_STABLE_SETS_H_
#define SHEAP_STABILITY_STABLE_SETS_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "heap/address.h"
#include "heap/handle_table.h"
#include "storage/page.h"

namespace sheap {

/// Stable slots holding volatile pointers, keyed by (object base, slot
/// index). At most one transaction can own an entry (it holds the write
/// lock on the slot's object).
class RememberedSet {
 public:
  struct Slot {
    HeapAddr obj_base = kNullAddr;
    uint64_t slot = 0;
    TxnId owner = kNoTxn;
  };

  /// Record/overwrite the entry for a slot.
  void Put(HeapAddr obj_base, uint64_t slot, TxnId owner) {
    objects_[obj_base][slot] = owner;
  }

  /// Drop the entry for a slot (value no longer volatile).
  void Erase(HeapAddr obj_base, uint64_t slot) {
    auto it = objects_.find(obj_base);
    if (it == objects_.end()) return;
    it->second.erase(slot);
    if (it->second.empty()) objects_.erase(it);
  }

  bool Contains(HeapAddr obj_base, uint64_t slot) const {
    auto it = objects_.find(obj_base);
    return it != objects_.end() && it->second.count(slot) > 0;
  }

  TxnId OwnerOf(HeapAddr obj_base, uint64_t slot) const {
    auto it = objects_.find(obj_base);
    if (it == objects_.end()) return kNoTxn;
    auto jt = it->second.find(slot);
    return jt == it->second.end() ? kNoTxn : jt->second;
  }

  /// All slots owned by `txn`.
  std::vector<Slot> SlotsOf(TxnId txn) const {
    std::vector<Slot> out;
    for (const auto& [base, slots] : objects_) {
      for (const auto& [slot, owner] : slots) {
        if (owner == txn) out.push_back(Slot{base, slot, owner});
      }
    }
    return out;
  }

  /// All slots (volatile-collection roots).
  std::vector<Slot> AllSlots() const {
    std::vector<Slot> out;
    for (const auto& [base, slots] : objects_) {
      for (const auto& [slot, owner] : slots) {
        out.push_back(Slot{base, slot, owner});
      }
    }
    return out;
  }

  /// Drop every entry owned by `txn` (transaction end).
  void EraseTxn(TxnId txn) {
    for (auto it = objects_.begin(); it != objects_.end();) {
      auto& slots = it->second;
      for (auto jt = slots.begin(); jt != slots.end();) {
        if (jt->second == txn) {
          jt = slots.erase(jt);
        } else {
          ++jt;
        }
      }
      if (slots.empty()) {
        it = objects_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// A stable object moved from `from` to `to`: rekey its entry.
  void RekeyObject(HeapAddr from, HeapAddr to) {
    auto it = objects_.find(from);
    if (it == objects_.end()) return;
    auto slots = std::move(it->second);
    objects_.erase(it);
    objects_[to] = std::move(slots);
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& [base, slots] : objects_) n += slots.size();
    return n;
  }
  bool empty() const { return objects_.empty(); }

 private:
  std::map<HeapAddr, std::map<uint64_t, TxnId>> objects_;
};

/// The LS: volatile object -> set of transactions whose commit would make
/// it stable (dependees).
class LikelyStableSet {
 public:
  /// Add `txn` as a dependee of `obj`; returns true if newly added.
  bool Add(HeapAddr obj, TxnId txn) {
    return deps_[obj].insert(txn).second;
  }

  bool Contains(HeapAddr obj) const { return deps_.count(obj) > 0; }

  bool DependsOn(HeapAddr obj, TxnId txn) const {
    auto it = deps_.find(obj);
    return it != deps_.end() && it->second.count(txn) > 0;
  }

  /// Dependee set of `obj` (empty if absent).
  std::set<TxnId> DepsOf(HeapAddr obj) const {
    auto it = deps_.find(obj);
    return it == deps_.end() ? std::set<TxnId>() : it->second;
  }

  /// Every object currently in the LS.
  std::vector<HeapAddr> AllObjects() const {
    std::vector<HeapAddr> out;
    out.reserve(deps_.size());
    for (const auto& [obj, txns] : deps_) out.push_back(obj);
    return out;
  }

  /// Objects that depend on `txn`.
  std::vector<HeapAddr> ObjectsOf(TxnId txn) const {
    std::vector<HeapAddr> out;
    for (const auto& [obj, txns] : deps_) {
      if (txns.count(txn) > 0) out.push_back(obj);
    }
    return out;
  }

  /// Remove an object entirely (promoted to the stable area, or collected).
  void EraseObject(HeapAddr obj) { deps_.erase(obj); }

  /// Remove `txn` from every dependee set; entries left with no dependees
  /// are dropped (the object is no longer likely stable).
  void EraseTxn(TxnId txn) {
    for (auto it = deps_.begin(); it != deps_.end();) {
      it->second.erase(txn);
      if (it->second.empty()) {
        it = deps_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// A volatile object moved: rekey its entry.
  void Rekey(HeapAddr from, HeapAddr to) {
    auto it = deps_.find(from);
    if (it == deps_.end()) return;
    std::set<TxnId> txns = std::move(it->second);
    deps_.erase(it);
    deps_[to] = std::move(txns);
  }

  size_t size() const { return deps_.size(); }

 private:
  std::map<HeapAddr, std::set<TxnId>> deps_;
};

}  // namespace sheap

#endif  // SHEAP_STABILITY_STABLE_SETS_H_
