#include "stability/tracker.h"

#include <vector>

#include "common/check.h"
#include "heap/object.h"

namespace sheap {

Status StabilityTracker::OnPointerWrite(const Txn& txn, HeapAddr dst_base,
                                        HeapAddr value,
                                        bool dst_in_stable_area) {
  if (value == kNullAddr || !is_volatile(value)) return Status::OK();
  // Tracking is needed when the destination is stable or likely stable:
  // the store makes `value`'s closure reachable from (likely) stable state.
  if (!dst_in_stable_area && !ls_->Contains(dst_base)) return Status::OK();
  ++stats_.invocations;
  return Track(txn.id, value);
}

Status StabilityTracker::Track(TxnId txn, HeapAddr v) {
  std::vector<HeapAddr> worklist{v};
  while (!worklist.empty()) {
    HeapAddr obj = worklist.back();
    worklist.pop_back();
    if (obj == kNullAddr || !is_volatile(obj)) continue;
    SHEAP_ASSIGN_OR_RETURN(HeapAddr resolved, resolve(obj));
    if (resolved != obj) continue;  // already promoted: actually stable
    if (!ls_->Add(obj, txn)) continue;  // already tracked for this txn
    ++stats_.objects_entered_ls;
    SHEAP_ASSIGN_OR_RETURN(ObjectHeader hdr, mem_->ReadHeader(obj));
    stats_.traversal_words += hdr.TotalWords();
    clock_->ChargeScanWords(hdr.TotalWords());
    for (uint64_t i = 0; i < hdr.nslots; ++i) {
      if (!types_->IsPointerSlot(hdr.class_id, i)) continue;
      SHEAP_ASSIGN_OR_RETURN(uint64_t slot_v,
                             mem_->ReadWord(SlotAddr(obj, i)));
      if (slot_v != kNullAddr && is_volatile(slot_v)) {
        worklist.push_back(slot_v);
      }
    }
  }
  return Status::OK();
}

}  // namespace sheap
