#include "stability/promotion.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "heap/object.h"

namespace sheap {

StatusOr<uint64_t> Promoter::ReadSlotPhys(HeapAddr slot_addr) {
  // Method-2 pending objects keep their physical body at the volatile
  // source; logical slot addresses redirect there.
  if (d_.pending != nullptr) {
    const HeapAddr phys = d_.pending->Redirect(slot_addr);
    if (phys != kNullAddr) return d_.mem->ReadWord(phys);
  }
  return d_.mem->ReadWord(slot_addr);
}

StatusOr<HeapAddr> Promoter::Resolve(HeapAddr a) {
  if (a == kNullAddr || !d_.volatile_gc->Contains(a)) return a;
  SHEAP_ASSIGN_OR_RETURN(uint64_t w, d_.mem->ReadWord(a));
  if (IsForwardWord(w)) return ForwardTarget(w);
  return a;
}

StatusOr<bool> Promoter::NeedsPromotion(HeapAddr a) {
  if (a == kNullAddr || !d_.volatile_gc->Contains(a)) return false;
  SHEAP_ASSIGN_OR_RETURN(uint64_t w, d_.mem->ReadWord(a));
  return !IsForwardWord(w);
}

Status Promoter::ComputeClosure(const std::vector<HeapAddr>& roots,
                                std::vector<HeapAddr>* order) {
  std::set<HeapAddr> closure;
  std::vector<HeapAddr> worklist = roots;
  // Fixpoint: (a) close over current pointer slots of volatile objects;
  // (b) close over old values of uncommitted pointer updates to closure
  // objects (undo values are roots, see file comment).
  while (true) {
    while (!worklist.empty()) {
      HeapAddr obj = worklist.back();
      worklist.pop_back();
      SHEAP_ASSIGN_OR_RETURN(HeapAddr r, Resolve(obj));
      SHEAP_ASSIGN_OR_RETURN(bool needs, NeedsPromotion(r));
      if (!needs || closure.count(r) > 0) continue;
      closure.insert(r);
      order->push_back(r);
      SHEAP_ASSIGN_OR_RETURN(ObjectHeader hdr, d_.mem->ReadHeader(r));
      d_.clock->ChargeScanWords(hdr.TotalWords());
      for (uint64_t i = 0; i < hdr.nslots; ++i) {
        if (!d_.types->IsPointerSlot(hdr.class_id, i)) continue;
        SHEAP_ASSIGN_OR_RETURN(uint64_t v, d_.mem->ReadWord(SlotAddr(r, i)));
        if (v != kNullAddr) worklist.push_back(v);
      }
    }
    bool grew = false;
    for (Txn* t : d_.txns->ActiveTxns()) {
      for (const TxnUpdate& e : t->updates) {
        if (!e.is_pointer || closure.count(e.obj_base) == 0) continue;
        SHEAP_ASSIGN_OR_RETURN(HeapAddr old_r, Resolve(e.old_word));
        SHEAP_ASSIGN_OR_RETURN(bool needs, NeedsPromotion(old_r));
        if (needs && closure.count(old_r) == 0) {
          worklist.push_back(old_r);
          grew = true;
        }
      }
    }
    if (!grew && worklist.empty()) break;
  }
  return Status::OK();
}

StatusOr<uint64_t> Promoter::TranslateWord(
    const std::map<HeapAddr, HeapAddr>& moved, uint64_t v) {
  if (v == kNullAddr) return v;
  auto it = moved.find(v);
  if (it != moved.end()) return it->second;
  SHEAP_ASSIGN_OR_RETURN(HeapAddr r, Resolve(v));
  if (r != v) {
    auto it2 = moved.find(r);
    return it2 != moved.end() ? it2->second : r;
  }
  // Still volatile and unpromoted: must not happen for closure contents.
  if (d_.volatile_gc->Contains(v)) {
    return Status::Internal("promotion closure missed a volatile object");
  }
  return v;
}

Status Promoter::PromoteAtCommit(Txn* txn) {
  // Roots: current values of the transaction's remembered-set slots.
  std::vector<HeapAddr> roots;
  const std::vector<RememberedSet::Slot> own_slots =
      d_.remembered->SlotsOf(txn->id);
  for (const auto& s : own_slots) {
    SHEAP_ASSIGN_OR_RETURN(uint64_t v,
                           ReadSlotPhys(SlotAddr(s.obj_base, s.slot)));
    if (v != kNullAddr && d_.volatile_gc->Contains(v)) roots.push_back(v);
  }
  std::vector<HeapAddr> order;
  if (!roots.empty()) {
    SHEAP_RETURN_IF_ERROR(ComputeClosure(roots, &order));
  }
  if (order.empty() && own_slots.empty()) return Status::OK();
  ++stats_.commits_with_promotion;

  // Capacity precheck so promotion is all-or-nothing.
  uint64_t needed_bytes = 0;
  std::vector<ObjectHeader> headers(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    SHEAP_ASSIGN_OR_RETURN(headers[i], d_.mem->ReadHeader(order[i]));
    needed_bytes += headers[i].TotalWords() * kWordSizeBytes;
  }
  if (needed_bytes + kPageSizeBytes > d_.stable_gc->free_bytes()) {
    return Status::OutOfSpace("stable area cannot hold promoted objects");
  }

  // Pass 1: reserve stable addresses for the whole closure.
  std::map<HeapAddr, HeapAddr> moved;
  std::vector<HeapAddr> new_addrs(order.size());
  const bool isolate = d_.method == PromotionMethod::kAtNextVolatileGc;
  for (size_t i = 0; i < order.size(); ++i) {
    SHEAP_ASSIGN_OR_RETURN(new_addrs[i],
                           d_.stable_gc->AllocateForPromotion(
                               headers[i].TotalWords(), isolate));
    moved[order[i]] = new_addrs[i];
  }

  // Pass 2: copy with translated contents; log kV2sCopy; forward the husk.
  std::vector<UtrEntry> utrs;
  for (size_t i = 0; i < order.size(); ++i) {
    const HeapAddr vol = order[i];
    const HeapAddr sta = new_addrs[i];
    const ObjectHeader& hdr = headers[i];
    const uint64_t nbytes = hdr.TotalWords() * kWordSizeBytes;

    LogRecord rec;
    rec.type = d_.method == PromotionMethod::kAtCommit
                   ? RecordType::kV2sCopy
                   : RecordType::kInitialValue;
    if (d_.method == PromotionMethod::kAtCommit) {
      rec.addr = vol;
      rec.addr2 = sta;
    } else {
      rec.addr = sta;   // reserved stable address
      rec.addr2 = vol;  // volatile source (undo translation)
      rec.aux = hdr.class_id;
    }
    rec.count = hdr.TotalWords();
    rec.contents.resize(nbytes);
    SHEAP_RETURN_IF_ERROR(d_.mem->ReadBytes(vol, nbytes, rec.contents.data()));
    for (uint64_t s = 0; s < hdr.nslots; ++s) {
      if (!d_.types->IsPointerSlot(hdr.class_id, s)) continue;
      uint64_t v;
      std::memcpy(&v, rec.contents.data() + (1 + s) * kWordSizeBytes,
                  kWordSizeBytes);
      SHEAP_ASSIGN_OR_RETURN(uint64_t nv, TranslateWord(moved, v));
      std::memcpy(rec.contents.data() + (1 + s) * kWordSizeBytes, &nv,
                  kWordSizeBytes);
    }
    const Lsn lsn = d_.txns->AppendChained(txn, &rec);
    if (d_.method == PromotionMethod::kAtCommit) {
      SHEAP_RETURN_IF_ERROR(
          d_.mem->WriteBytesLogged(sta, rec.contents.data(), nbytes, lsn));
    } else {
      // Method 2 (§5.5): the physical move is deferred; the logged initial
      // value makes the object recoverable in the interim. Reads and
      // writes redirect to the volatile source until the next volatile
      // collection materializes the stable copy.
      SHEAP_CHECK(d_.pending != nullptr);
      PendingMaterializations::Entry entry;
      entry.volatile_base = vol;
      entry.cls = hdr.class_id;
      entry.nslots = hdr.nslots;
      entry.initial_lsn = lsn;
      d_.pending->Add(sta, entry);
    }
    SHEAP_RETURN_IF_ERROR(
        d_.mem->WriteWordUnlogged(vol, MakeForwardWord(sta)));

    d_.locks->Rekey(vol, sta);
    d_.ls->EraseObject(vol);
    utrs.push_back(UtrEntry{vol, sta, hdr.TotalWords()});
    ++stats_.objects_promoted;
    stats_.words_promoted += hdr.TotalWords();
    d_.clock->ChargeCopyWords(hdr.TotalWords());
  }

  // UTRs: recovery must translate undo information across the promotion.
  std::vector<TxnId> active_ids;
  for (Txn* t : d_.txns->ActiveTxns()) active_ids.push_back(t->id);
  if (!utrs.empty()) {
    LogRecord utr_rec;
    utr_rec.type = RecordType::kUtr;
    utr_rec.utr_entries = utrs;
    d_.log->Append(&utr_rec);
    d_.utt->AddBatch(utrs, active_ids);
    // Crash window: promotion copies spooled (kV2sCopy ahead of this UTR)
    // but the commit record is not — the transaction must abort cleanly.
    SHEAP_FAULT_POINT(d_.log->faults(), "promote.utr.logged");
  }

  // Materialize log records for previously-unlogged (volatile) updates to
  // promoted objects, for every active transaction, and rewrite the
  // in-memory undo info to stable addresses.
  for (Txn* t : d_.txns->ActiveTxns()) {
    for (TxnUpdate& e : t->updates) {
      auto it = moved.find(e.obj_base);
      if (it == moved.end()) {
        // Values may still reference promoted objects.
        if (e.is_pointer) {
          auto old_it = moved.find(e.old_word);
          if (old_it != moved.end()) e.old_word = old_it->second;
          auto new_it = moved.find(e.new_word);
          if (new_it != moved.end()) e.new_word = new_it->second;
        }
        continue;
      }
      SHEAP_CHECK(!e.logged);  // it was a volatile object until now
      e.obj_base = it->second;
      if (e.is_pointer) {
        SHEAP_ASSIGN_OR_RETURN(e.old_word, TranslateWord(moved, e.old_word));
        SHEAP_ASSIGN_OR_RETURN(e.new_word, TranslateWord(moved, e.new_word));
      }
      LogRecord rec;
      rec.type = RecordType::kUpdate;
      rec.addr = SlotAddr(e.obj_base, e.slot);
      rec.addr2 = e.obj_base;
      rec.old_word = e.old_word;
      rec.new_word = e.new_word;
      rec.aux = e.is_pointer ? LogRecord::kFlagPointer : 0;
      e.lsn = d_.txns->AppendChained(t, &rec);
      e.logged = true;
      ++stats_.materialized_updates;
    }
    for (TxnAlloc& a : t->allocs) {
      auto it = moved.find(a.base);
      if (it != moved.end()) {
        a.base = it->second;
        a.stable_area = true;
      }
    }
  }

  // Rewrite every remembered slot whose value was promoted (any owner), as
  // a logged update chained to the owner: the committed value of the
  // committing transaction's slots, and a translated uncommitted value for
  // other owners.
  for (const auto& s : d_.remembered->AllSlots()) {
    const HeapAddr slot_addr = SlotAddr(s.obj_base, s.slot);
    SHEAP_ASSIGN_OR_RETURN(uint64_t v, ReadSlotPhys(slot_addr));
    auto it = moved.find(v);
    if (it == moved.end()) continue;
    Txn* owner = d_.txns->Find(s.owner);
    SHEAP_CHECK(owner != nullptr);
    LogRecord rec;
    rec.type = RecordType::kUpdate;
    rec.addr = slot_addr;
    rec.addr2 = s.obj_base;
    rec.old_word = v;
    rec.new_word = it->second;
    rec.aux = LogRecord::kFlagPointer;
    const Lsn lsn = d_.txns->AppendChained(owner, &rec);
    const HeapAddr phys = d_.pending != nullptr
                              ? d_.pending->Redirect(slot_addr)
                              : kNullAddr;
    if (phys != kNullAddr) {
      // The slot belongs to a pending object: record at the stable address,
      // physical write at the volatile body.
      SHEAP_RETURN_IF_ERROR(d_.mem->WriteWordUnlogged(phys, it->second));
    } else {
      SHEAP_RETURN_IF_ERROR(
          d_.mem->WriteWordLogged(slot_addr, it->second, lsn));
    }
    // The rewrite joins the owner's undo chain: undoing it restores the
    // husk address, and undoing the original store restores the committed
    // value beneath it.
    TxnUpdate upd;
    upd.obj_base = s.obj_base;
    upd.slot = s.slot;
    upd.old_word = v;
    upd.new_word = it->second;
    upd.is_pointer = true;
    upd.logged = true;
    upd.lsn = lsn;
    owner->updates.push_back(upd);
    d_.remembered->Erase(s.obj_base, s.slot);
    ++stats_.slot_rewrites;
  }
  d_.remembered->EraseTxn(txn->id);

  // Handles held by any transaction may designate promoted objects.
  d_.handles->ForEachLive([&](HeapAddr* slot) {
    auto it = moved.find(*slot);
    if (it != moved.end()) *slot = it->second;
  });

  return Status::OK();
}

}  // namespace sheap
