// StabilityTracker: concurrent tracking of newly stable objects (§5.1).
//
// Trigger: an update action stores a pointer to a volatile object `v` into a
// destination that is stable (in the stable area) or likely stable. The
// tracker traverses the volatile object graph from `v`, adding the writing
// transaction as a dependee of every volatile object reached. Tracking for
// one transaction interleaves freely with tracking for others and with
// other transactions' actions (the paper's "concurrent tracker": each
// OnPointerWrite is one low-level action, and dependee sets per object keep
// transactions independent — the fix for the [38] bug where one
// transaction's abort could un-track objects another transaction had also
// made reachable).
//
// When a dependee commits, its likely-stable objects actually become stable
// (AS membership = residency in the stable area, established by the
// Promoter); when it aborts, it is removed from dependee sets, and objects
// left with no dependees leave the LS.

#ifndef SHEAP_STABILITY_TRACKER_H_
#define SHEAP_STABILITY_TRACKER_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "heap/heap_memory.h"
#include "heap/type_registry.h"
#include "stability/stable_sets.h"
#include "txn/txn.h"
#include "util/sim_clock.h"

namespace sheap {

struct TrackerStats {
  uint64_t invocations = 0;        // pointer writes that triggered tracking
  uint64_t objects_entered_ls = 0; // (object, txn) dependee additions
  uint64_t traversal_words = 0;    // words examined by traversals
};

/// Maintains the LS at update time.
class StabilityTracker {
 public:
  StabilityTracker(HeapMemory* mem, TypeRegistry* types, SimClock* clock,
                   LikelyStableSet* ls)
      : mem_(mem), types_(types), clock_(clock), ls_(ls) {}

  /// Predicate: is this address in the volatile area? Set by core.
  std::function<bool(HeapAddr)> is_volatile;
  /// Follow a promotion forwarding word if present. Set by core.
  std::function<StatusOr<HeapAddr>(HeapAddr)> resolve;

  /// `txn` stored a pointer to `value` into `dst_base`. Call for every
  /// pointer write; the tracker decides whether tracking is needed
  /// (dst stable or likely-stable, value volatile).
  Status OnPointerWrite(const Txn& txn, HeapAddr dst_base, HeapAddr value,
                        bool dst_in_stable_area);

  const TrackerStats& stats() const { return stats_; }

 private:
  Status Track(TxnId txn, HeapAddr v);

  HeapMemory* mem_;
  TypeRegistry* types_;
  SimClock* clock_;
  LikelyStableSet* ls_;
  TrackerStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_STABILITY_TRACKER_H_
