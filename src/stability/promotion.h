// Promoter: moving newly stable objects into the stable area at commit
// (paper §5.2, Figure 5.2 "V2scopy record").
//
// At commit of T, the volatile objects reachable from T's uncommitted
// pointer stores into stable objects (T's remembered-set slots) become
// stable. The promoter:
//   1. computes the physical closure of those targets over the volatile
//      object graph — including the *old values* of uncommitted updates to
//      closure objects by any active transaction (undo values are roots:
//      if that transaction later aborts, the restored pointer must refer to
//      a stable object);
//   2. allocates stable-area space for each object, then logs one kV2sCopy
//      record per object whose contents have intra-closure pointers already
//      translated — redo materializes the promoted object from the record;
//   3. leaves a forwarding word in each volatile husk;
//   4. materializes kUpdate records for every active transaction's
//      previously-unlogged updates to promoted objects (volatile updates
//      are not logged; once the object is stable its uncommitted updates
//      must be undoable from the log after a crash);
//   5. rewrites every remembered-set slot whose value was promoted, as a
//      logged kUpdate chained to the slot's owner;
//   6. logs UTR entries so recovery can translate undo information across
//      the promotion, and fixes handles, locks, in-memory undo info and the
//      LS.
//
// The kV2sCopy and rewrite records precede T's kCommit record: if the
// commit record reaches the stable log, redo reproduces the promotion; if
// not, T loses, the slot rewrites are undone, and the promoted copies are
// unreachable garbage in the stable area, reclaimed by a later collection.

#ifndef SHEAP_STABILITY_PROMOTION_H_
#define SHEAP_STABILITY_PROMOTION_H_

#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "gc/atomic_gc.h"
#include "gc/copying_gc.h"
#include "heap/handle_table.h"
#include "heap/heap_memory.h"
#include "heap/type_registry.h"
#include "recovery/utt.h"
#include "stability/stable_sets.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "wal/log_writer.h"

namespace sheap {

/// How newly stable objects move to the stable area (paper §5.2 vs §5.5,
/// "Dividing the Heap: First Method" / "Second Method").
enum class PromotionMethod : uint8_t {
  /// Move at commit: kV2sCopy records carry the contents and the physical
  /// copy happens immediately (Figure 5.3).
  kAtCommit = 0,
  /// Defer the move to the next volatile collection: commit reserves the
  /// stable address and logs the contents (kInitialValue, the paper's
  /// "Log Records for Initial Object Values"); the object keeps living in
  /// the volatile area until the collector materializes it (Figure 5.6).
  kAtNextVolatileGc = 1,
};

/// Method-2 bookkeeping: reserved-but-unmaterialized stable objects.
/// Physical state still lives at the volatile source; logical (logged)
/// state uses the stable address. Owned by core::StableHeap.
class PendingMaterializations {
 public:
  struct Entry {
    HeapAddr volatile_base = kNullAddr;
    ClassId cls = 0;
    uint64_t nslots = 0;
    Lsn initial_lsn = kInvalidLsn;  // LSN of the kInitialValue record
  };

  void Add(HeapAddr stable_base, const Entry& entry) {
    by_stable_[stable_base] = entry;
  }
  void Erase(HeapAddr stable_base) { by_stable_.erase(stable_base); }
  bool empty() const { return by_stable_.empty(); }
  size_t size() const { return by_stable_.size(); }

  /// Entry for a pending object's base address, or nullptr. The header of
  /// a pending object is synthesized from the entry (the volatile source's
  /// word 0 holds the forwarding word, but its slots are the live body).
  const Entry* Lookup(HeapAddr stable_base) const {
    auto it = by_stable_.find(stable_base);
    return it == by_stable_.end() ? nullptr : &it->second;
  }

  /// If `addr` is a *slot* address inside a pending stable object, return
  /// the equivalent slot address in its volatile source; otherwise
  /// kNullAddr. (The base/header word is never redirected: Lookup.)
  HeapAddr Redirect(HeapAddr addr) const {
    if (by_stable_.empty()) return kNullAddr;
    auto it = by_stable_.upper_bound(addr);
    if (it == by_stable_.begin()) return kNullAddr;
    --it;
    const HeapAddr base = it->first;
    const uint64_t bytes = (1 + it->second.nslots) * kWordSizeBytes;
    if (addr > base && addr < base + bytes) {
      return it->second.volatile_base + (addr - base);
    }
    return kNullAddr;
  }

  /// Oldest kInitialValue LSN still pending (log truncation floor), or
  /// kInvalidLsn when none.
  Lsn OldestLsn() const {
    Lsn oldest = kInvalidLsn;
    for (const auto& [s, e] : by_stable_) {
      if (oldest == kInvalidLsn || e.initial_lsn < oldest) {
        oldest = e.initial_lsn;
      }
    }
    return oldest;
  }

  template <typename F>
  Status ForEach(F f) const {
    for (const auto& [s, e] : by_stable_) {
      SHEAP_RETURN_IF_ERROR(f(s, e));
    }
    return Status::OK();
  }
  void Clear() { by_stable_.clear(); }

 private:
  std::map<HeapAddr, Entry> by_stable_;
};

struct PromotionStats {
  uint64_t commits_with_promotion = 0;
  uint64_t objects_promoted = 0;
  uint64_t words_promoted = 0;
  uint64_t materialized_updates = 0;
  uint64_t slot_rewrites = 0;
};

/// Performs the recoverable volatile-to-stable move at commit.
class Promoter {
 public:
  struct Deps {
    HeapMemory* mem = nullptr;
    LogWriter* log = nullptr;
    TxnManager* txns = nullptr;
    LockManager* locks = nullptr;
    HandleTable* handles = nullptr;
    TypeRegistry* types = nullptr;
    UndoTranslationTable* utt = nullptr;
    AtomicGc* stable_gc = nullptr;
    CopyingGc* volatile_gc = nullptr;
    RememberedSet* remembered = nullptr;
    LikelyStableSet* ls = nullptr;
    SimClock* clock = nullptr;
    PromotionMethod method = PromotionMethod::kAtCommit;
    PendingMaterializations* pending = nullptr;  // required for method 2
  };

  explicit Promoter(const Deps& deps) : d_(deps) {}

  /// Promote everything `txn`'s commit makes stable. Must run before the
  /// kCommit record is appended. No-op if the transaction wrote no volatile
  /// pointers into stable objects.
  Status PromoteAtCommit(Txn* txn);

  const PromotionStats& stats() const { return stats_; }

 private:
  /// Volatile, unforwarded object? (husks and stable addresses excluded)
  StatusOr<bool> NeedsPromotion(HeapAddr a);
  /// Slot read honoring method-2 pending redirection.
  StatusOr<uint64_t> ReadSlotPhys(HeapAddr slot_addr);
  /// Follow a husk's forwarding word if present.
  StatusOr<HeapAddr> Resolve(HeapAddr a);

  Status ComputeClosure(const std::vector<HeapAddr>& roots,
                        std::vector<HeapAddr>* order);
  StatusOr<uint64_t> TranslateWord(
      const std::map<HeapAddr, HeapAddr>& moved, uint64_t v);

  Deps d_;
  PromotionStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_STABILITY_PROMOTION_H_
