#include "storage/sim_log_device.h"

#include <cstring>

#include "fault/fault_injector.h"

namespace sheap {

Status SimLogDevice::Append(const uint8_t* data, size_t n) {
#if SHEAP_FAULT_INJECTION
  if (faults_ != nullptr) {
    SHEAP_RETURN_IF_ERROR(faults_->OnIo("log.append"));
  }
#endif
  clock_->ChargeLogAppend(n);
  ++stats_.appends;
  stats_.bytes_appended += n;
  bytes_.insert(bytes_.end(), data, data + n);
  return Status::OK();
}

Status SimLogDevice::AppendAsync(const uint8_t* data, size_t n) {
#if SHEAP_FAULT_INJECTION
  if (faults_ != nullptr) {
    SHEAP_RETURN_IF_ERROR(faults_->OnIo("log.append"));
  }
#endif
  ++stats_.appends;
  stats_.bytes_appended += n;
  bytes_.insert(bytes_.end(), data, data + n);
  return Status::OK();
}

Status SimLogDevice::ReadAt(uint64_t offset, size_t n, uint8_t* out) const {
  if (offset < truncated_prefix_) {
    return Status::Corruption("log read before truncation point");
  }
  if (offset + n > bytes_.size()) {
    return Status::Corruption("log read past end of stable log");
  }
  std::memcpy(out, bytes_.data() + offset, n);
  return Status::OK();
}

}  // namespace sheap
