// RealDisk: the file-backed page store (the real-hardware Disk).
//
// One backing file holds 8 KiB slots, one per PageId: 4 KiB of page data
// followed by a 4 KiB metadata block (magic, live flag, page LSN, CRC32C).
// Both halves are written with a single pwrite, so every offset and size
// the device issues is 4096-aligned — the prerequisite for O_DIRECT. The
// store opens with O_DIRECT when the caller asks for it and the filesystem
// cooperates; otherwise (tmpfs, overlayfs, ...) it falls back to buffered
// I/O and counts the fallback, so benches can report which mode actually
// ran. Reads verify the stored CRC32C exactly like SimDisk, and the same
// fault-injection sites fire, so the crash matrix can drive this device
// too.
//
// Crash semantics match the paper's disk: bytes handed to pwrite survive a
// *process* kill (they live in the OS page cache); only machine-level
// durability needs fsync, which the WAL protocol provides via the log
// device — the store itself is write-back and relies on the log for
// redo, exactly like the simulated disk.

#ifndef SHEAP_STORAGE_REAL_DISK_H_
#define SHEAP_STORAGE_REAL_DISK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>

#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "storage/env.h"
#include "storage/page.h"

namespace sheap {

class FaultInjector;
class SimClock;

/// File-backed page store; see file comment.
class RealDisk final : public Disk {
 public:
  /// Slot geometry: 4 KiB data + 4 KiB metadata, both pwrite-aligned.
  static constexpr uint64_t kSlotBytes = 2 * kPageSizeBytes;

  /// Open (creating if needed) `path` as the page store. `direct_io`
  /// requests O_DIRECT; when the filesystem refuses, the store silently
  /// runs buffered and reports it through stats().buffered_fallbacks and
  /// direct_io(). Existing live slots are scanned so Exists/PageCount
  /// survive reopen.
  static StatusOr<std::unique_ptr<RealDisk>> Open(const std::string& path,
                                                  bool direct_io,
                                                  SimClock* clock,
                                                  FaultInjector* faults);
  ~RealDisk() override;

  RealDisk(const RealDisk&) = delete;
  RealDisk& operator=(const RealDisk&) = delete;

  Status ReadPage(PageId pid, PageImage* out) override SHEAP_EXCLUDES(mu_);
  Status WritePage(PageId pid, const PageImage& image) override
      SHEAP_EXCLUDES(mu_);
  Status WritePageRun(PageId first, const PageImage* const* images,
                      size_t n) override SHEAP_EXCLUDES(mu_);
  void DropPage(PageId pid) override SHEAP_EXCLUDES(mu_);

  /// Test hook (parity with SimDisk): flip one bit of the stored image
  /// without updating its CRC. No-op if the page was never written.
  void CorruptPage(PageId pid, uint32_t bit_index) SHEAP_EXCLUDES(mu_);

  bool Exists(PageId pid) const override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return live_.count(pid) > 0;
  }
  size_t PageCount() const override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return live_.size();
  }

  DiskStats stats() const override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = DiskStats();
  }

  FaultInjector* faults() const override { return faults_; }
  SimClock* clock() const override { return clock_; }

  /// True when the file descriptor actually carries O_DIRECT.
  bool direct_io() const { return direct_io_; }

 private:
  RealDisk(int fd, bool direct_io, bool direct_requested, std::string path,
           SimClock* clock, FaultInjector* faults)
      : fd_(fd),
        direct_io_(direct_io),
        direct_requested_(direct_requested),
        path_(std::move(path)),
        clock_(clock),
        faults_(faults) {}

  /// Serialize one slot (data + meta) into `slot` (kSlotBytes, aligned).
  static void EncodeSlot(const PageImage& image, uint8_t* slot);
  /// Decode a slot; returns false for a fresh/dropped slot, Corruption via
  /// *crc_ok=false when the CRC fails.
  static bool DecodeSlot(const uint8_t* slot, PageImage* out, bool* crc_ok);

  Status PwriteAll(const uint8_t* buf, size_t n, uint64_t offset);
  /// Full-slot read; short reads past EOF zero-fill (fresh page).
  Status PreadSlot(PageId pid, uint8_t* slot);

  const int fd_;
  const bool direct_io_;
  const bool direct_requested_;
  const std::string path_;
  SimClock* const clock_;
  FaultInjector* const faults_;

  /// Guards live_ and stats_; parallel redo workers and flush writers hit
  /// the device concurrently (pread/pwrite themselves are thread-safe —
  /// positioned I/O shares no file offset). Leaf lock: nothing else is
  /// acquired while holding it.
  mutable Mutex mu_;
  std::unordered_set<PageId> live_ SHEAP_GUARDED_BY(mu_);
  mutable DiskStats stats_ SHEAP_GUARDED_BY(mu_);
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_REAL_DISK_H_
