#include "storage/real_disk.h"

#include <errno.h>
#include <fcntl.h>
#include <stdlib.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "fault/fault_injector.h"
#include "util/crc32c.h"
#include "util/sim_clock.h"

namespace sheap {

namespace {

constexpr uint32_t kSlotMagic = 0x53485250;  // "SHRP"
constexpr uint32_t kSlotLive = 1;

// Aligned scratch buffer for O_DIRECT transfers; alignment is the slot
// half (4096), which satisfies every known O_DIRECT requirement.
class AlignedBuf {
 public:
  explicit AlignedBuf(size_t n) {
    if (posix_memalign(&p_, kPageSizeBytes, n) != 0) p_ = nullptr;
    if (p_ != nullptr) std::memset(p_, 0, n);
  }
  ~AlignedBuf() { free(p_); }
  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;
  uint8_t* get() { return static_cast<uint8_t*>(p_); }

 private:
  void* p_ = nullptr;
};

uint32_t PageCrc(const PageImage& image) {
  uint32_t crc = crc32c::Value(image.data.data(), image.data.size());
  crc = crc32c::Extend(crc, &image.page_lsn, sizeof(image.page_lsn));
  return crc32c::Mask(crc);
}

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

StatusOr<std::unique_ptr<RealDisk>> RealDisk::Open(const std::string& path,
                                                   bool direct_io,
                                                   SimClock* clock,
                                                   FaultInjector* faults) {
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  int fd = -1;
  bool direct = false;
#ifdef O_DIRECT
  if (direct_io) {
    fd = ::open(path.c_str(), flags | O_DIRECT, 0644);
    direct = fd >= 0;
  }
#endif
  if (fd < 0) {
    // tmpfs and friends reject O_DIRECT with EINVAL: run buffered.
    fd = ::open(path.c_str(), flags, 0644);
  }
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  auto disk = std::unique_ptr<RealDisk>(
      new RealDisk(fd, direct, direct_io, path, clock, faults));

  // Rebuild the live-slot set so Exists/PageCount survive reopen: read
  // each slot's metadata block (open-time only; sequential 4 KiB reads).
  struct stat st;
  if (fstat(fd, &st) != 0) {
    return Status::IOError("fstat " + path + ": " + strerror(errno));
  }
  const uint64_t slots = static_cast<uint64_t>(st.st_size) / kSlotBytes;
  AlignedBuf meta(kPageSizeBytes);
  if (meta.get() == nullptr) return Status::IOError("posix_memalign failed");
  for (uint64_t s = 0; s < slots; ++s) {
    const uint64_t off = s * kSlotBytes + kPageSizeBytes;
    ssize_t got = pread(fd, meta.get(), kPageSizeBytes, off);
    if (got != static_cast<ssize_t>(kPageSizeBytes)) continue;
    if (GetU32(meta.get()) == kSlotMagic &&
        GetU32(meta.get() + 4) == kSlotLive) {
      disk->live_.insert(s);
    }
  }
  return disk;
}

RealDisk::~RealDisk() { ::close(fd_); }

void RealDisk::EncodeSlot(const PageImage& image, uint8_t* slot) {
  std::memcpy(slot, image.data.data(), kPageSizeBytes);
  uint8_t* meta = slot + kPageSizeBytes;
  std::memset(meta, 0, kPageSizeBytes);
  PutU32(meta, kSlotMagic);
  PutU32(meta + 4, kSlotLive);
  PutU64(meta + 8, image.page_lsn);
  PutU32(meta + 16, PageCrc(image));
}

bool RealDisk::DecodeSlot(const uint8_t* slot, PageImage* out, bool* crc_ok) {
  *crc_ok = true;
  const uint8_t* meta = slot + kPageSizeBytes;
  if (GetU32(meta) != kSlotMagic || GetU32(meta + 4) != kSlotLive) {
    return false;  // fresh or dropped slot
  }
  std::memcpy(out->data.data(), slot, kPageSizeBytes);
  out->page_lsn = GetU64(meta + 8);
  *crc_ok = PageCrc(*out) == GetU32(meta + 16);
  return true;
}

Status RealDisk::PwriteAll(const uint8_t* buf, size_t n, uint64_t offset) {
  while (n > 0) {
    ssize_t wrote = pwrite(fd_, buf, n, static_cast<off_t>(offset));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(path_ + ": pwrite: " + strerror(errno));
    }
    buf += wrote;
    n -= static_cast<size_t>(wrote);
    offset += static_cast<uint64_t>(wrote);
  }
  return Status::OK();
}

Status RealDisk::PreadSlot(PageId pid, uint8_t* slot) {
  size_t n = kSlotBytes;
  uint64_t offset = pid * kSlotBytes;
  uint8_t* dst = slot;
  while (n > 0) {
    ssize_t got = pread(fd_, dst, n, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(path_ + ": pread: " + strerror(errno));
    }
    if (got == 0) {
      std::memset(dst, 0, n);  // past EOF: fresh page
      return Status::OK();
    }
    dst += got;
    n -= static_cast<size_t>(got);
    offset += static_cast<uint64_t>(got);
  }
  return Status::OK();
}

Status RealDisk::ReadPage(PageId pid, PageImage* out) {
#if SHEAP_FAULT_INJECTION
  if (faults_ != nullptr) {
    SHEAP_RETURN_IF_ERROR(faults_->OnIo("disk.read", pid));
    if (faults_->ConsumeBitRot("disk.read", pid)) {
      CorruptPage(pid, /*bit_index=*/6);
    }
  }
#endif
  AlignedBuf slot(kSlotBytes);
  if (slot.get() == nullptr) return Status::IOError("posix_memalign failed");
  SHEAP_RETURN_IF_ERROR(PreadSlot(pid, slot.get()));
  bool crc_ok = true;
  const bool present = DecodeSlot(slot.get(), out, &crc_ok);
  MutexLock lock(&mu_);
  if (!present) {
    ++stats_.fresh_reads;
    *out = PageImage();
    return Status::OK();
  }
  ++stats_.page_reads;
  if (!crc_ok) {
    ++stats_.crc_failures;
    return Status::Corruption("page " + std::to_string(pid) +
                              " failed CRC32C verification (bit rot)");
  }
  return Status::OK();
}

Status RealDisk::WritePage(PageId pid, const PageImage& image) {
#if SHEAP_FAULT_INJECTION
  if (faults_ != nullptr) {
    SHEAP_RETURN_IF_ERROR(faults_->OnIo("disk.write", pid));
  }
#endif
  AlignedBuf slot(kSlotBytes);
  if (slot.get() == nullptr) return Status::IOError("posix_memalign failed");
  EncodeSlot(image, slot.get());
  SHEAP_RETURN_IF_ERROR(PwriteAll(slot.get(), kSlotBytes, pid * kSlotBytes));
  MutexLock lock(&mu_);
  ++stats_.page_writes;
  if (direct_io_) {
    ++stats_.direct_io_writes;
  } else if (direct_requested_) {
    ++stats_.buffered_fallbacks;
  }
  live_.insert(pid);
  return Status::OK();
}

Status RealDisk::WritePageRun(PageId first, const PageImage* const* images,
                              size_t n) {
  if (n == 0) return Status::OK();
  AlignedBuf run(n * kSlotBytes);
  if (run.get() == nullptr) return Status::IOError("posix_memalign failed");
  for (size_t i = 0; i < n; ++i) {
#if SHEAP_FAULT_INJECTION
    if (faults_ != nullptr) {
      SHEAP_RETURN_IF_ERROR(faults_->OnIo("disk.write", first + i));
    }
#endif
    EncodeSlot(*images[i], run.get() + i * kSlotBytes);
  }
  SHEAP_RETURN_IF_ERROR(
      PwriteAll(run.get(), n * kSlotBytes, first * kSlotBytes));
  MutexLock lock(&mu_);
  for (size_t i = 0; i < n; ++i) {
    ++stats_.page_writes;
    ++stats_.run_pages;
    if (direct_io_) {
      ++stats_.direct_io_writes;
    } else if (direct_requested_) {
      ++stats_.buffered_fallbacks;
    }
    live_.insert(first + i);
  }
  ++stats_.run_writes;
  return Status::OK();
}

void RealDisk::DropPage(PageId pid) {
  {
    MutexLock lock(&mu_);
    if (live_.erase(pid) == 0) return;
  }
  // Zero the metadata block: the slot decodes as fresh from now on.
  AlignedBuf meta(kPageSizeBytes);
  if (meta.get() == nullptr) return;
  (void)PwriteAll(meta.get(), kPageSizeBytes,
                  pid * kSlotBytes + kPageSizeBytes);
}

void RealDisk::CorruptPage(PageId pid, uint32_t bit_index) {
  {
    MutexLock lock(&mu_);
    if (live_.count(pid) == 0) return;
  }
  AlignedBuf slot(kSlotBytes);
  if (slot.get() == nullptr) return;
  if (!PreadSlot(pid, slot.get()).ok()) return;
  uint8_t* data = slot.get();
  data[(bit_index / 8) % kPageSizeBytes] ^=
      static_cast<uint8_t>(1u << (bit_index % 8));
  (void)PwriteAll(slot.get(), kSlotBytes, pid * kSlotBytes);
}

}  // namespace sheap
