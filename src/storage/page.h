// Page: the unit of transfer between main memory (buffer pool) and the
// simulated disk. Heap words are 8 bytes; a page holds kWordsPerPage words.
//
// The page LSN (highest LSN of any record whose redo is reflected in the
// page image) is kept alongside the image rather than embedded in the data
// area; a production system would steal the first bytes of the page for it.
// Keeping it out-of-band lets heap objects span page boundaries without
// holes, which the paper's multi-page update protocol (§2.2.3 fn.3) allows.

#ifndef SHEAP_STORAGE_PAGE_H_
#define SHEAP_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace sheap {

/// Global page index within the heap's (simulated) backing store.
using PageId = uint64_t;

constexpr uint32_t kPageSizeBytes = 4096;
constexpr uint32_t kWordSizeBytes = 8;
constexpr uint32_t kWordsPerPage = kPageSizeBytes / kWordSizeBytes;  // 512

/// Log sequence number: 1 + byte offset of a record in the log; 0 = none.
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = 0;

/// A page image as stored on disk: data plus its out-of-band page LSN.
struct PageImage {
  std::array<uint8_t, kPageSizeBytes> data{};
  Lsn page_lsn = kInvalidLsn;

  uint64_t ReadWord(uint32_t word_index) const {
    uint64_t v;
    std::memcpy(&v, data.data() + word_index * kWordSizeBytes,
                kWordSizeBytes);
    return v;
  }

  void WriteWord(uint32_t word_index, uint64_t v) {
    std::memcpy(data.data() + word_index * kWordSizeBytes, &v,
                kWordSizeBytes);
  }
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_PAGE_H_
