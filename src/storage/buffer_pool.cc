#include "storage/buffer_pool.h"

#include <algorithm>

#include "common/check.h"
#include "fault/fault_injector.h"

namespace sheap {

BufferPool::BufferPool(SimDisk* disk, size_t capacity_frames, Hooks hooks)
    : disk_(disk), capacity_(capacity_frames), hooks_(std::move(hooks)) {
  SHEAP_CHECK(capacity_ > 0);
}

StatusOr<PageImage*> BufferPool::Pin(PageId pid) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) {
    ++stats_.hits;
    Frame& frame = it->second;
    ++frame.pin_count;
    lru_.erase(frame.lru_pos);
    frame.lru_pos = lru_.insert(lru_.end(), pid);
    return &frame.image;
  }

  ++stats_.misses;
  SHEAP_RETURN_IF_ERROR(MaybeEvict());

  Frame frame;
  // Transient read errors (device-level, injected in the simulator) are
  // retried with bounded exponential backoff; Corruption (bit rot caught by
  // the page CRC) and other errors surface immediately.
  FaultInjector* faults = disk_->faults();
  for (uint32_t attempt = 0;; ++attempt) {
    Status s = disk_->ReadPage(pid, &frame.image);
    if (s.ok()) break;
    if (!s.IsIOError()) return s;
    if (attempt >= kMaxIoRetries) {
      if (faults != nullptr) faults->NoteExhausted();
      return s;
    }
    if (faults != nullptr) faults->BackoffBeforeRetry(attempt);
  }
  frame.pin_count = 1;
  frame.lru_pos = lru_.insert(lru_.end(), pid);
  auto [ins, ok] = frames_.emplace(pid, std::move(frame));
  SHEAP_CHECK(ok);
  if (hooks_.on_page_fetch) hooks_.on_page_fetch(pid);
  return &ins->second.image;
}

void BufferPool::Unpin(PageId pid) {
  auto it = frames_.find(pid);
  SHEAP_CHECK(it != frames_.end());
  SHEAP_CHECK(it->second.pin_count > 0);
  --it->second.pin_count;
}

void BufferPool::MarkDirty(PageId pid, Lsn lsn) {
  auto it = frames_.find(pid);
  SHEAP_CHECK(it != frames_.end());
  Frame& frame = it->second;
  SHEAP_CHECK(frame.pin_count > 0);  // WAL protocol modifies pinned pages
  if (!frame.dirty) {
    frame.dirty = true;
    frame.rec_lsn = lsn;
  }
  frame.image.page_lsn = std::max(frame.image.page_lsn, lsn);
}

void BufferPool::MarkDirtyUnlogged(PageId pid) {
  auto it = frames_.find(pid);
  SHEAP_CHECK(it != frames_.end());
  Frame& frame = it->second;
  SHEAP_CHECK(frame.pin_count > 0);
  if (!frame.dirty) {
    frame.dirty = true;
    frame.rec_lsn = kInvalidLsn;  // no log record protects this page
  }
}

Status BufferPool::WriteBackFrame(PageId pid, Frame* frame) {
  // WAL constraint (I2): the stable log must contain every record whose
  // redo is reflected in this image before the image reaches disk.
  if (frame->image.page_lsn != kInvalidLsn) {
    SHEAP_CHECK(hooks_.flush_log_to != nullptr);
    SHEAP_RETURN_IF_ERROR(hooks_.flush_log_to(frame->image.page_lsn));
  }
  // Crash window: WAL satisfied, page image not yet on disk.
  FaultInjector* faults = disk_->faults();
  SHEAP_FAULT_POINT(faults, "pool.writeback.before");
  for (uint32_t attempt = 0;; ++attempt) {
    Status s = disk_->WritePage(pid, frame->image);
    if (s.ok()) break;
    if (!s.IsIOError()) return s;
    if (attempt >= kMaxIoRetries) {
      if (faults != nullptr) faults->NoteExhausted();
      return s;
    }
    if (faults != nullptr) faults->BackoffBeforeRetry(attempt);
  }
  // Crash window: page on disk, end-write notification not yet spooled.
  SHEAP_FAULT_POINT(faults, "pool.writeback.after");
  ++stats_.write_backs;
  frame->dirty = false;
  frame->rec_lsn = kInvalidLsn;
  if (hooks_.on_end_write) hooks_.on_end_write(pid);
  return Status::OK();
}

Status BufferPool::WriteBack(PageId pid) {
  auto it = frames_.find(pid);
  if (it == frames_.end()) return Status::NotFound("page not resident");
  if (it->second.pin_count > 0) return Status::Busy("page pinned");
  if (!it->second.dirty) return Status::OK();
  return WriteBackFrame(pid, &it->second);
}

Status BufferPool::FlushAll() {
  for (auto& [pid, frame] : frames_) {
    if (frame.dirty && frame.pin_count == 0) {
      SHEAP_RETURN_IF_ERROR(WriteBackFrame(pid, &frame));
    }
  }
  return Status::OK();
}

Status BufferPool::WriteBackRandomSubset(Rng* rng, double fraction) {
  // Collect candidates first: WriteBackFrame mutates frame state only, but
  // keep iteration order deterministic by sorting page ids.
  std::vector<PageId> candidates;
  candidates.reserve(frames_.size());
  for (const auto& [pid, frame] : frames_) {
    if (frame.dirty && frame.pin_count == 0) candidates.push_back(pid);
  }
  std::sort(candidates.begin(), candidates.end());
  for (PageId pid : candidates) {
    if (rng->Bernoulli(fraction)) {
      SHEAP_RETURN_IF_ERROR(WriteBackFrame(pid, &frames_.at(pid)));
    }
  }
  return Status::OK();
}

std::vector<std::pair<PageId, Lsn>> BufferPool::DirtyPages() const {
  std::vector<std::pair<PageId, Lsn>> out;
  for (const auto& [pid, frame] : frames_) {
    if (frame.dirty) out.emplace_back(pid, frame.rec_lsn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void BufferPool::DropAll() {
  frames_.clear();
  lru_.clear();
}

void BufferPool::DropRange(PageId first, uint64_t count) {
  for (PageId pid = first; pid < first + count; ++pid) {
    auto it = frames_.find(pid);
    if (it == frames_.end()) continue;
    SHEAP_CHECK(it->second.pin_count == 0);
    lru_.erase(it->second.lru_pos);
    frames_.erase(it);
  }
}

bool BufferPool::IsDirty(PageId pid) const {
  auto it = frames_.find(pid);
  return it != frames_.end() && it->second.dirty;
}

uint32_t BufferPool::PinCount(PageId pid) const {
  auto it = frames_.find(pid);
  return it == frames_.end() ? 0 : it->second.pin_count;
}

Status BufferPool::MaybeEvict() {
  if (frames_.size() < capacity_) return Status::OK();
  // Scan from the LRU end for an unpinned victim.
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    PageId pid = *it;
    Frame& frame = frames_.at(pid);
    if (frame.pin_count > 0) continue;
    if (frame.dirty) {
      SHEAP_RETURN_IF_ERROR(WriteBackFrame(pid, &frame));
      ++stats_.evictions;
    } else {
      ++stats_.evictions;
    }
    lru_.erase(frame.lru_pos);
    frames_.erase(pid);
    return Status::OK();
  }
  // Every frame pinned: grow past capacity rather than fail; the paper's
  // protocols pin only briefly, so this is a transient condition.
  return Status::OK();
}

}  // namespace sheap
