#include "storage/buffer_pool.h"

#include <algorithm>

#include "common/check.h"
#include "fault/fault_injector.h"

namespace sheap {

BufferPool::BufferPool(SimDisk* disk, size_t capacity_frames, Hooks hooks)
    : disk_(disk), capacity_(capacity_frames), hooks_(std::move(hooks)) {
  SHEAP_CHECK(capacity_ > 0);
}

void BufferPool::LruPushBack(uint32_t idx) {
  Frame& frame = FrameAt(idx);
  frame.lru_prev = lru_tail_;
  frame.lru_next = kNoFrame;
  if (lru_tail_ != kNoFrame) {
    FrameAt(lru_tail_).lru_next = idx;
  } else {
    lru_head_ = idx;
  }
  lru_tail_ = idx;
}

void BufferPool::LruRemove(uint32_t idx) {
  Frame& frame = FrameAt(idx);
  if (frame.lru_prev != kNoFrame) {
    FrameAt(frame.lru_prev).lru_next = frame.lru_next;
  } else {
    lru_head_ = frame.lru_next;
  }
  if (frame.lru_next != kNoFrame) {
    FrameAt(frame.lru_next).lru_prev = frame.lru_prev;
  } else {
    lru_tail_ = frame.lru_prev;
  }
  frame.lru_prev = kNoFrame;
  frame.lru_next = kNoFrame;
}

void BufferPool::DirtyInsert(const Frame& frame) {
  dirty_[frame.pid] = frame.rec_lsn;
  if (frame.rec_lsn != kInvalidLsn) dirty_rec_lsns_.insert(frame.rec_lsn);
}

void BufferPool::DirtyErase(const Frame& frame) {
  dirty_.erase(frame.pid);
  if (frame.rec_lsn != kInvalidLsn) {
    auto it = dirty_rec_lsns_.find(frame.rec_lsn);
    SHEAP_CHECK(it != dirty_rec_lsns_.end());
    dirty_rec_lsns_.erase(it);  // one instance only
  }
}

uint32_t BufferPool::AllocateFrame() {
  if (!free_frames_.empty()) {
    const uint32_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  frame_store_.emplace_back();
  return static_cast<uint32_t>(frame_store_.size() - 1);
}

void BufferPool::ReleaseFrame(uint32_t idx) {
  FrameAt(idx) = Frame();
  free_frames_.push_back(idx);
}

StatusOr<PageImage*> BufferPool::Pin(PageId pid) {
  auto it = page_to_frame_.find(pid);
  if (it != page_to_frame_.end()) {
    ++stats_.hits;
    Frame& frame = FrameAt(it->second);
    if (frame.pin_count == 0) LruRemove(it->second);
    ++frame.pin_count;
    return &frame.image;
  }

  ++stats_.misses;
  SHEAP_RETURN_IF_ERROR(MaybeEvict());

  const uint32_t idx = AllocateFrame();
  Frame& frame = FrameAt(idx);
  frame.pid = pid;
  // Transient read errors (device-level, injected in the simulator) are
  // retried with bounded exponential backoff; Corruption (bit rot caught by
  // the page CRC) and other errors surface immediately.
  FaultInjector* faults = disk_->faults();
  for (uint32_t attempt = 0;; ++attempt) {
    Status s = disk_->ReadPage(pid, &frame.image);
    if (s.ok()) break;
    if (!s.IsIOError() || attempt >= kMaxIoRetries) {
      if (s.IsIOError() && faults != nullptr) faults->NoteExhausted();
      ReleaseFrame(idx);
      return s;
    }
    if (faults != nullptr) faults->BackoffBeforeRetry(attempt);
  }
  frame.pin_count = 1;
  page_to_frame_.emplace(pid, idx);
  if (hooks_.on_page_fetch) hooks_.on_page_fetch(pid);
  return &FrameAt(idx).image;
}

void BufferPool::Unpin(PageId pid) {
  auto it = page_to_frame_.find(pid);
  SHEAP_CHECK(it != page_to_frame_.end());
  Frame& frame = FrameAt(it->second);
  SHEAP_CHECK(frame.pin_count > 0);
  if (--frame.pin_count == 0) LruPushBack(it->second);
}

void BufferPool::MarkDirty(PageId pid, Lsn lsn) {
  auto it = page_to_frame_.find(pid);
  SHEAP_CHECK(it != page_to_frame_.end());
  Frame& frame = FrameAt(it->second);
  SHEAP_CHECK(frame.pin_count > 0);  // WAL protocol modifies pinned pages
  if (!frame.dirty) {
    frame.dirty = true;
    frame.rec_lsn = lsn;
    DirtyInsert(frame);
  }
  frame.image.page_lsn = std::max(frame.image.page_lsn, lsn);
}

void BufferPool::MarkDirtyUnlogged(PageId pid) {
  auto it = page_to_frame_.find(pid);
  SHEAP_CHECK(it != page_to_frame_.end());
  Frame& frame = FrameAt(it->second);
  SHEAP_CHECK(frame.pin_count > 0);
  if (!frame.dirty) {
    frame.dirty = true;
    frame.rec_lsn = kInvalidLsn;  // no log record protects this page
    DirtyInsert(frame);
  }
}

Status BufferPool::WriteBackFrame(Frame* frame) {
  // WAL constraint (I2): the stable log must contain every record whose
  // redo is reflected in this image before the image reaches disk.
  if (frame->image.page_lsn != kInvalidLsn) {
    SHEAP_CHECK(hooks_.flush_log_to != nullptr);
    SHEAP_RETURN_IF_ERROR(hooks_.flush_log_to(frame->image.page_lsn));
  }
  // Crash window: WAL satisfied, page image not yet on disk.
  FaultInjector* faults = disk_->faults();
  SHEAP_FAULT_POINT(faults, "pool.writeback.before");
  for (uint32_t attempt = 0;; ++attempt) {
    Status s = disk_->WritePage(frame->pid, frame->image);
    if (s.ok()) break;
    if (!s.IsIOError()) return s;
    if (attempt >= kMaxIoRetries) {
      if (faults != nullptr) faults->NoteExhausted();
      return s;
    }
    if (faults != nullptr) faults->BackoffBeforeRetry(attempt);
  }
  // Crash window: page on disk, end-write notification not yet spooled.
  SHEAP_FAULT_POINT(faults, "pool.writeback.after");
  ++stats_.write_backs;
  DirtyErase(*frame);
  frame->dirty = false;
  frame->rec_lsn = kInvalidLsn;
  if (hooks_.on_end_write) hooks_.on_end_write(frame->pid);
  return Status::OK();
}

Status BufferPool::WriteBack(PageId pid) {
  auto it = page_to_frame_.find(pid);
  if (it == page_to_frame_.end()) return Status::NotFound("page not resident");
  Frame& frame = FrameAt(it->second);
  if (frame.pin_count > 0) return Status::Busy("page pinned");
  if (!frame.dirty) return Status::OK();
  return WriteBackFrame(&frame);
}

Status BufferPool::FlushAll() {
  // Snapshot the dirty set (write-back mutates it); O(dirty), not
  // O(frames).
  std::vector<PageId> dirty_pages;
  dirty_pages.reserve(dirty_.size());
  for (const auto& [pid, rec_lsn] : dirty_) {
    dirty_pages.push_back(pid);
  }
  for (PageId pid : dirty_pages) {
    ++stats_.dirty_scan_steps;
    Frame& frame = FrameAt(page_to_frame_.at(pid));
    if (frame.pin_count == 0) {
      SHEAP_RETURN_IF_ERROR(WriteBackFrame(&frame));
    }
  }
  return Status::OK();
}

Status BufferPool::WriteBackRandomSubset(Rng* rng, double fraction) {
  // Candidates are the dirty unpinned frames in page order (the dirty
  // index is page-ordered, so no sort and no full-frame scan); the RNG is
  // consumed once per candidate, exactly as before.
  std::vector<PageId> candidates;
  candidates.reserve(dirty_.size());
  for (const auto& [pid, rec_lsn] : dirty_) {
    ++stats_.dirty_scan_steps;
    if (FrameAt(page_to_frame_.at(pid)).pin_count == 0) {
      candidates.push_back(pid);
    }
  }
  for (PageId pid : candidates) {
    if (rng->Bernoulli(fraction)) {
      SHEAP_RETURN_IF_ERROR(
          WriteBackFrame(&FrameAt(page_to_frame_.at(pid))));
    }
  }
  return Status::OK();
}

std::vector<std::pair<PageId, Lsn>> BufferPool::DirtyPages() const {
  auto* self = const_cast<BufferPool*>(this);
  self->stats_.dirty_scan_steps += dirty_.size();
  return std::vector<std::pair<PageId, Lsn>>(dirty_.begin(), dirty_.end());
}

Lsn BufferPool::MinRecLsn() const {
  return dirty_rec_lsns_.empty() ? kInvalidLsn : *dirty_rec_lsns_.begin();
}

void BufferPool::DropAll() {
  frame_store_.clear();
  free_frames_.clear();
  page_to_frame_.clear();
  lru_head_ = kNoFrame;
  lru_tail_ = kNoFrame;
  dirty_.clear();
  dirty_rec_lsns_.clear();
}

void BufferPool::DropRange(PageId first, uint64_t count) {
  for (PageId pid = first; pid < first + count; ++pid) {
    auto it = page_to_frame_.find(pid);
    if (it == page_to_frame_.end()) continue;
    const uint32_t idx = it->second;
    Frame& frame = FrameAt(idx);
    SHEAP_CHECK(frame.pin_count == 0);
    LruRemove(idx);
    if (frame.dirty) DirtyErase(frame);
    page_to_frame_.erase(it);
    ReleaseFrame(idx);
  }
}

bool BufferPool::IsDirty(PageId pid) const {
  return dirty_.count(pid) > 0;
}

uint32_t BufferPool::PinCount(PageId pid) const {
  auto it = page_to_frame_.find(pid);
  return it == page_to_frame_.end() ? 0 : FrameAt(it->second).pin_count;
}

Status BufferPool::MaybeEvict() {
  if (page_to_frame_.size() < capacity_) return Status::OK();
  // The LRU list holds only unpinned frames: the head IS the victim — one
  // probe, no skipping. With every frame pinned the list is empty and the
  // pool grows past capacity rather than fail; the paper's protocols pin
  // only briefly, so this is a transient condition.
  if (lru_head_ == kNoFrame) return Status::OK();
  const uint32_t idx = lru_head_;
  ++stats_.evict_probe_steps;
  Frame& frame = FrameAt(idx);
  if (frame.dirty) {
    SHEAP_RETURN_IF_ERROR(WriteBackFrame(&frame));
  }
  ++stats_.evictions;
  LruRemove(idx);
  page_to_frame_.erase(frame.pid);
  ReleaseFrame(idx);
  return Status::OK();
}

}  // namespace sheap
