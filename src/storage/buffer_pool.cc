#include "storage/buffer_pool.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "fault/fault_injector.h"
#include "util/sim_clock.h"

namespace sheap {

BufferPool::BufferPool(Disk* disk, size_t capacity_frames, Hooks hooks)
    : disk_(disk), capacity_(capacity_frames), hooks_(std::move(hooks)) {
  SHEAP_CHECK(capacity_ > 0);
}

BufferPool::Frame* BufferPool::FramePtr(uint32_t idx) {
  MutexLock lock(&store_mu_);
  return &frame_store_[idx];
}

const BufferPool::Frame* BufferPool::FramePtr(uint32_t idx) const {
  MutexLock lock(&store_mu_);
  return &frame_store_[idx];
}

void BufferPool::BumpStat(uint64_t BufferPoolStats::*field,
                          uint64_t n) const {
  MutexLock lock(&stats_mu_);
  stats_.*field += n;
}

BufferPoolStats BufferPool::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  MutexLock lock(&stats_mu_);
  stats_ = BufferPoolStats();
}

void BufferPool::LruPushBack(uint32_t idx) {
  Frame& frame = *FramePtr(idx);
  frame.lru_prev = lru_tail_;
  frame.lru_next = kNoFrame;
  if (lru_tail_ != kNoFrame) {
    FramePtr(lru_tail_)->lru_next = idx;
  } else {
    lru_head_ = idx;
  }
  lru_tail_ = idx;
}

void BufferPool::LruRemove(uint32_t idx) {
  Frame& frame = *FramePtr(idx);
  if (frame.lru_prev != kNoFrame) {
    FramePtr(frame.lru_prev)->lru_next = frame.lru_next;
  } else {
    lru_head_ = frame.lru_next;
  }
  if (frame.lru_next != kNoFrame) {
    FramePtr(frame.lru_next)->lru_prev = frame.lru_prev;
  } else {
    lru_tail_ = frame.lru_prev;
  }
  frame.lru_prev = kNoFrame;
  frame.lru_next = kNoFrame;
}

void BufferPool::DirtyInsert(Shard* shard, const Frame& frame) {
  shard->dirty[frame.pid] = frame.rec_lsn;
  if (frame.rec_lsn != kInvalidLsn) {
    shard->dirty_rec_lsns.insert(frame.rec_lsn);
  }
}

void BufferPool::DirtyErase(Shard* shard, const Frame& frame) {
  shard->dirty.erase(frame.pid);
  if (frame.rec_lsn != kInvalidLsn) {
    auto it = shard->dirty_rec_lsns.find(frame.rec_lsn);
    SHEAP_CHECK(it != shard->dirty_rec_lsns.end());
    shard->dirty_rec_lsns.erase(it);  // one instance only
  }
}

uint32_t BufferPool::AllocateFrame() {
  MutexLock lock(&store_mu_);
  if (!free_frames_.empty()) {
    const uint32_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  frame_store_.emplace_back();
  return static_cast<uint32_t>(frame_store_.size() - 1);
}

void BufferPool::ReleaseFrame(uint32_t idx) {
  MutexLock lock(&store_mu_);
  frame_store_[idx] = Frame();
  free_frames_.push_back(idx);
}

StatusOr<PageImage*> BufferPool::Pin(PageId pid) {
  if (hooks_.before_pin) {
    SHEAP_RETURN_IF_ERROR(hooks_.before_pin(pid));
  }
  Shard& shard = ShardFor(pid);
  for (;;) {
    {
      MutexLock lock(&shard.mu);
      auto it = shard.page_to_frame.find(pid);
      if (it != shard.page_to_frame.end()) {
        BumpStat(&BufferPoolStats::hits);
        const uint32_t idx = it->second;
        Frame& frame = *FramePtr(idx);
        if (frame.pin_count == 0) {
          MutexLock lru_lock(&lru_mu_);
          LruRemove(idx);
        }
        ++frame.pin_count;
        return &frame.image;
      }
    }

    BumpStat(&BufferPoolStats::misses);
    // Concurrent regimes never evict: a victim could belong to another redo
    // worker's partition, or be mid-access by another mutator thread. The
    // pool transiently grows instead, exactly as it already does when every
    // frame is pinned.
    if (concurrent_depth_.load(std::memory_order_relaxed) == 0) {
      SHEAP_RETURN_IF_ERROR(MaybeEvict());
    }

    const uint32_t idx = AllocateFrame();
    Frame& frame = *FramePtr(idx);
    frame.pid = pid;
    // Transient read errors (device-level, injected in the simulator) are
    // retried with bounded exponential backoff; Corruption (bit rot caught
    // by the page CRC) and other errors surface immediately.
    FaultInjector* faults = disk_->faults();
    for (uint32_t attempt = 0;; ++attempt) {
      Status s = disk_->ReadPage(pid, &frame.image);
      if (s.ok()) break;
      if (!s.IsIOError() || attempt >= kMaxIoRetries) {
        if (s.IsIOError() && faults != nullptr) faults->NoteExhausted();
        ReleaseFrame(idx);
        return s;
      }
      if (faults != nullptr) faults->BackoffBeforeRetry(attempt);
    }
    frame.pin_count = 1;
    bool published;
    {
      MutexLock lock(&shard.mu);
      published = shard.page_to_frame.emplace(pid, idx).second;
    }
    if (!published) {
      // Lost a same-page miss race: another mutator thread fetched and
      // published this page while we were reading it. Discard our copy and
      // pin the published frame via the hit path (the winner already
      // emitted the page-fetch notification).
      ReleaseFrame(idx);
      continue;
    }
    if (hooks_.on_page_fetch) hooks_.on_page_fetch(pid);
    return &frame.image;
  }
}

void BufferPool::Unpin(PageId pid) {
  Shard& shard = ShardFor(pid);
  MutexLock lock(&shard.mu);
  auto it = shard.page_to_frame.find(pid);
  SHEAP_CHECK(it != shard.page_to_frame.end());
  Frame& frame = *FramePtr(it->second);
  SHEAP_CHECK(frame.pin_count > 0);
  if (--frame.pin_count == 0) {
    MutexLock lru_lock(&lru_mu_);
    LruPushBack(it->second);
  }
}

void BufferPool::MarkDirty(PageId pid, Lsn lsn) {
  Shard& shard = ShardFor(pid);
  MutexLock lock(&shard.mu);
  auto it = shard.page_to_frame.find(pid);
  SHEAP_CHECK(it != shard.page_to_frame.end());
  Frame& frame = *FramePtr(it->second);
  SHEAP_CHECK(frame.pin_count > 0);  // WAL protocol modifies pinned pages
  if (!frame.dirty) {
    frame.dirty = true;
    frame.rec_lsn = lsn;
    DirtyInsert(&shard, frame);
  }
  frame.image.page_lsn = std::max(frame.image.page_lsn, lsn);
}

void BufferPool::MarkDirtyUnlogged(PageId pid) {
  Shard& shard = ShardFor(pid);
  MutexLock lock(&shard.mu);
  auto it = shard.page_to_frame.find(pid);
  SHEAP_CHECK(it != shard.page_to_frame.end());
  Frame& frame = *FramePtr(it->second);
  SHEAP_CHECK(frame.pin_count > 0);
  if (!frame.dirty) {
    frame.dirty = true;
    frame.rec_lsn = kInvalidLsn;  // no log record protects this page
    DirtyInsert(&shard, frame);
  }
}

Status BufferPool::WriteBackFrame(Frame* frame) {
  // WAL constraint (I2): the stable log must contain every record whose
  // redo is reflected in this image before the image reaches disk.
  if (frame->image.page_lsn != kInvalidLsn) {
    SHEAP_CHECK(hooks_.flush_log_to != nullptr);
    SHEAP_RETURN_IF_ERROR(hooks_.flush_log_to(frame->image.page_lsn));
  }
  // Crash window: WAL satisfied, page image not yet on disk.
  FaultInjector* faults = disk_->faults();
  SHEAP_FAULT_POINT(faults, "pool.writeback.before");
  for (uint32_t attempt = 0;; ++attempt) {
    Status s = disk_->WritePage(frame->pid, frame->image);
    if (s.ok()) break;
    if (!s.IsIOError()) return s;
    if (attempt >= kMaxIoRetries) {
      if (faults != nullptr) faults->NoteExhausted();
      return s;
    }
    if (faults != nullptr) faults->BackoffBeforeRetry(attempt);
  }
  // Crash window: page on disk, end-write notification not yet spooled.
  SHEAP_FAULT_POINT(faults, "pool.writeback.after");
  BumpStat(&BufferPoolStats::write_backs);
  {
    Shard& shard = ShardFor(frame->pid);
    MutexLock lock(&shard.mu);
    DirtyErase(&shard, *frame);
  }
  frame->dirty = false;
  frame->rec_lsn = kInvalidLsn;
  if (hooks_.on_end_write) hooks_.on_end_write(frame->pid);
  return Status::OK();
}

Status BufferPool::WriteBack(PageId pid) {
  uint32_t idx;
  {
    Shard& shard = ShardFor(pid);
    MutexLock lock(&shard.mu);
    auto it = shard.page_to_frame.find(pid);
    if (it == shard.page_to_frame.end()) {
      return Status::NotFound("page not resident");
    }
    idx = it->second;
  }
  Frame& frame = *FramePtr(idx);
  if (frame.pin_count > 0) return Status::Busy("page pinned");
  if (!frame.dirty) return Status::OK();
  return WriteBackFrame(&frame);
}

Status BufferPool::WriteFlushRun(const FlushRun& run) {
  FaultInjector* faults = disk_->faults();
  // Crash window: WAL satisfied for every page in the run (FlushTo ran
  // before run formation), none of the images on disk yet. Distinct point
  // name from the single-page path so the crash matrix exercises both.
  SHEAP_FAULT_POINT(faults, "pool.flushrun.before");
  std::vector<const PageImage*> images;
  images.reserve(run.frames.size());
  for (uint32_t idx : run.frames) images.push_back(&FramePtr(idx)->image);
  for (uint32_t attempt = 0;; ++attempt) {
    // Rewriting a run is idempotent: on a transient mid-run fault, retry
    // the whole run.
    Status s = disk_->WritePageRun(run.first, images.data(), images.size());
    if (s.ok()) break;
    if (!s.IsIOError()) return s;
    if (attempt >= kMaxIoRetries) {
      if (faults != nullptr) faults->NoteExhausted();
      return s;
    }
    if (faults != nullptr) faults->BackoffBeforeRetry(attempt);
  }
  // Crash window: the whole run on disk, dirty bookkeeping not yet updated.
  SHEAP_FAULT_POINT(faults, "pool.flushrun.after");
  BumpStat(&BufferPoolStats::write_backs, run.frames.size());
  BumpStat(&BufferPoolStats::flush_runs);
  for (uint32_t idx : run.frames) {
    Frame& frame = *FramePtr(idx);
    Shard& shard = ShardFor(frame.pid);
    MutexLock lock(&shard.mu);
    DirtyErase(&shard, frame);
    frame.dirty = false;
    frame.rec_lsn = kInvalidLsn;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  // Snapshot the dirty set in page order; O(dirty), not O(frames).
  std::vector<PageId> dirty_pages;
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (const auto& [pid, rec_lsn] : shard.dirty) {
      dirty_pages.push_back(pid);
    }
  }
  std::sort(dirty_pages.begin(), dirty_pages.end());
  BumpStat(&BufferPoolStats::dirty_scan_steps, dirty_pages.size());

  // Flush candidates: dirty unpinned frames. Compute the WAL horizon (max
  // page LSN) while collecting.
  std::vector<std::pair<PageId, uint32_t>> candidates;
  Lsn max_lsn = kInvalidLsn;
  for (PageId pid : dirty_pages) {
    uint32_t idx;
    {
      Shard& shard = ShardFor(pid);
      MutexLock lock(&shard.mu);
      auto it = shard.page_to_frame.find(pid);
      SHEAP_CHECK(it != shard.page_to_frame.end());
      idx = it->second;
    }
    Frame& frame = *FramePtr(idx);
    if (frame.pin_count > 0) continue;
    candidates.emplace_back(pid, idx);
    if (frame.image.page_lsn != kInvalidLsn &&
        (max_lsn == kInvalidLsn || frame.image.page_lsn > max_lsn)) {
      max_lsn = frame.image.page_lsn;
    }
  }
  if (candidates.empty()) return Status::OK();

  // WAL constraint (I2) for the whole batch, once, on the calling thread
  // (the log writer is not thread-safe): after this the stable log covers
  // every record reflected in any candidate image.
  if (max_lsn != kInvalidLsn) {
    SHEAP_CHECK(hooks_.flush_log_to != nullptr);
    SHEAP_RETURN_IF_ERROR(hooks_.flush_log_to(max_lsn));
  }

  // Coalesce page-adjacent candidates into runs: one seek per run.
  std::vector<FlushRun> runs;
  for (const auto& [pid, idx] : candidates) {
    if (runs.empty() ||
        runs.back().first + runs.back().frames.size() != pid) {
      runs.push_back(FlushRun{pid, {}});
    }
    runs.back().frames.push_back(idx);
  }

  const uint32_t writers = static_cast<uint32_t>(
      std::min<size_t>(flush_writers_, runs.size()));
  std::vector<Status> run_status(runs.size(), Status::OK());
  if (writers <= 1) {
    for (size_t r = 0; r < runs.size(); ++r) {
      run_status[r] = WriteFlushRun(runs[r]);
      if (!run_status[r].ok()) break;
    }
  } else {
    // Strided assignment keeps which-writer-writes-what deterministic; the
    // busiest lane's simulated time is what the flush costs (parallel
    // hardware), folded in after the join.
    SimClock* clock = disk_->clock();
    std::vector<uint64_t> lane_ns(writers, 0);
    std::vector<std::thread> pool;
    pool.reserve(writers);
    for (uint32_t w = 0; w < writers; ++w) {
      pool.emplace_back([this, w, writers, clock, &runs, &run_status,
                         &lane_ns]() {
        SimClock::ThreadChargeScope charge(clock, &lane_ns[w]);
        for (size_t r = w; r < runs.size(); r += writers) {
          run_status[r] = WriteFlushRun(runs[r]);
          if (!run_status[r].ok()) break;
        }
      });
    }
    for (std::thread& t : pool) t.join();
    clock->Advance(*std::max_element(lane_ns.begin(), lane_ns.end()));
  }

  // End-write notifications are log appends: emit them serially, after the
  // writers are done, in ascending page order — deterministic log contents
  // regardless of writer interleaving.
  Status result = Status::OK();
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!run_status[r].ok()) {
      if (result.ok()) result = run_status[r];
      continue;
    }
    if (hooks_.on_end_write) {
      for (size_t i = 0; i < runs[r].frames.size(); ++i) {
        hooks_.on_end_write(runs[r].first + i);
      }
    }
  }
  return result;
}

Status BufferPool::WriteBackRandomSubset(Rng* rng, double fraction) {
  // Candidates are the dirty unpinned frames in page order (no sort per
  // shard; shards merge into a global page order); the RNG is consumed
  // once per candidate, exactly as before.
  std::vector<PageId> dirty_pages;
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (const auto& [pid, rec_lsn] : shard.dirty) {
      dirty_pages.push_back(pid);
    }
  }
  std::sort(dirty_pages.begin(), dirty_pages.end());
  std::vector<PageId> candidates;
  candidates.reserve(dirty_pages.size());
  for (PageId pid : dirty_pages) {
    BumpStat(&BufferPoolStats::dirty_scan_steps);
    uint32_t idx;
    {
      Shard& shard = ShardFor(pid);
      MutexLock lock(&shard.mu);
      idx = shard.page_to_frame.at(pid);
    }
    if (FramePtr(idx)->pin_count == 0) {
      candidates.push_back(pid);
    }
  }
  for (PageId pid : candidates) {
    if (rng->Bernoulli(fraction)) {
      uint32_t idx;
      {
        Shard& shard = ShardFor(pid);
        MutexLock lock(&shard.mu);
        idx = shard.page_to_frame.at(pid);
      }
      SHEAP_RETURN_IF_ERROR(WriteBackFrame(FramePtr(idx)));
    }
  }
  return Status::OK();
}

std::vector<std::pair<PageId, Lsn>> BufferPool::DirtyPages() const {
  std::vector<std::pair<PageId, Lsn>> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    out.insert(out.end(), shard.dirty.begin(), shard.dirty.end());
  }
  std::sort(out.begin(), out.end());
  BumpStat(&BufferPoolStats::dirty_scan_steps, out.size());
  return out;
}

Lsn BufferPool::MinRecLsn() const {
  Lsn min_lsn = kInvalidLsn;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    if (shard.dirty_rec_lsns.empty()) continue;
    const Lsn lsn = *shard.dirty_rec_lsns.begin();
    if (min_lsn == kInvalidLsn || lsn < min_lsn) min_lsn = lsn;
  }
  return min_lsn;
}

void BufferPool::DropAll() {
  // Crash path; strictly serial (any worker pools have joined), so the
  // locks are taken one at a time — no nesting, no ordering concerns.
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    shard.page_to_frame.clear();
    shard.dirty.clear();
    shard.dirty_rec_lsns.clear();
  }
  {
    MutexLock lru_lock(&lru_mu_);
    lru_head_ = kNoFrame;
    lru_tail_ = kNoFrame;
  }
  MutexLock store_lock(&store_mu_);
  frame_store_.clear();
  free_frames_.clear();
}

void BufferPool::DropRange(PageId first, uint64_t count) {
  for (PageId pid = first; pid < first + count; ++pid) {
    uint32_t idx;
    {
      Shard& shard = ShardFor(pid);
      MutexLock lock(&shard.mu);
      auto it = shard.page_to_frame.find(pid);
      if (it == shard.page_to_frame.end()) continue;
      idx = it->second;
      Frame& frame = *FramePtr(idx);
      SHEAP_CHECK(frame.pin_count == 0);
      if (frame.dirty) DirtyErase(&shard, frame);
      shard.page_to_frame.erase(it);
    }
    {
      MutexLock lru_lock(&lru_mu_);
      LruRemove(idx);
    }
    ReleaseFrame(idx);
  }
}

void BufferPool::BeginConcurrent() {
  concurrent_depth_.fetch_add(1, std::memory_order_relaxed);
}

void BufferPool::EndConcurrent() {
  const uint32_t prev =
      concurrent_depth_.fetch_sub(1, std::memory_order_relaxed);
  SHEAP_CHECK(prev > 0);
  if (prev > 1) return;  // an enclosing regime is still open
  // Rebuild the unpinned-LRU in ascending page order: worker interleaving
  // determined the order frames were unpinned in, and later eviction
  // decisions must not depend on it (determinism contract).
  MutexLock lru_lock(&lru_mu_);
  std::vector<std::pair<PageId, uint32_t>> entries;
  for (uint32_t idx = lru_head_; idx != kNoFrame;) {
    Frame& frame = *FramePtr(idx);
    entries.emplace_back(frame.pid, idx);
    idx = frame.lru_next;
  }
  std::sort(entries.begin(), entries.end());
  lru_head_ = kNoFrame;
  lru_tail_ = kNoFrame;
  for (const auto& [pid, idx] : entries) {
    Frame& frame = *FramePtr(idx);
    frame.lru_prev = kNoFrame;
    frame.lru_next = kNoFrame;
    LruPushBack(idx);
  }
}

bool BufferPool::IsResident(PageId pid) const {
  const Shard& shard = ShardFor(pid);
  MutexLock lock(&shard.mu);
  return shard.page_to_frame.count(pid) > 0;
}

bool BufferPool::IsDirty(PageId pid) const {
  const Shard& shard = ShardFor(pid);
  MutexLock lock(&shard.mu);
  return shard.dirty.count(pid) > 0;
}

uint32_t BufferPool::PinCount(PageId pid) const {
  const Shard& shard = ShardFor(pid);
  uint32_t idx;
  {
    MutexLock lock(&shard.mu);
    auto it = shard.page_to_frame.find(pid);
    if (it == shard.page_to_frame.end()) return 0;
    idx = it->second;
  }
  return FramePtr(idx)->pin_count;
}

size_t BufferPool::ResidentCount() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    n += shard.page_to_frame.size();
  }
  return n;
}

size_t BufferPool::DirtyCount() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    n += shard.dirty.size();
  }
  return n;
}

size_t BufferPool::FreeFrameCount() const {
  MutexLock lock(&store_mu_);
  return free_frames_.size();
}

Status BufferPool::MaybeEvict() {
  if (ResidentCount() < capacity_) return Status::OK();
  // The LRU list holds only unpinned frames: the head IS the victim — one
  // probe, no skipping. With every frame pinned the list is empty and the
  // pool grows past capacity rather than fail; the paper's protocols pin
  // only briefly, so this is a transient condition. Serial contexts only:
  // the lru peek below is not revalidated.
  uint32_t idx;
  PageId pid;
  {
    MutexLock lru_lock(&lru_mu_);
    if (lru_head_ == kNoFrame) return Status::OK();
    idx = lru_head_;
    pid = FramePtr(idx)->pid;
  }
  BumpStat(&BufferPoolStats::evict_probe_steps);
  Frame& frame = *FramePtr(idx);
  if (frame.dirty) {
    SHEAP_RETURN_IF_ERROR(WriteBackFrame(&frame));
  }
  BumpStat(&BufferPoolStats::evictions);
  {
    Shard& shard = ShardFor(pid);
    MutexLock lock(&shard.mu);
    shard.page_to_frame.erase(pid);
  }
  {
    MutexLock lru_lock(&lru_mu_);
    LruRemove(idx);
  }
  ReleaseFrame(idx);
  return Status::OK();
}

}  // namespace sheap
