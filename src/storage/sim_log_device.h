// SimLogDevice: the stable-storage sequential log device (paper §2.2.1).
//
// The recovery system spools to a volatile log buffer (see wal::LogWriter);
// this device models only the *stable log*: bytes appended here survive a
// crash. A real implementation duplexes two disks; the simulator treats
// appends as atomic but supports torn-tail injection (truncating the final
// flush mid-record) to exercise the record CRC path.

#ifndef SHEAP_STORAGE_SIM_LOG_DEVICE_H_
#define SHEAP_STORAGE_SIM_LOG_DEVICE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/env.h"
#include "storage/page.h"
#include "util/sim_clock.h"

namespace sheap {

class FaultInjector;

/// Append-only stable byte store. Offsets are stable log addresses.
class SimLogDevice final : public LogDevice {
 public:
  explicit SimLogDevice(SimClock* clock, FaultInjector* faults = nullptr)
      : clock_(clock), faults_(faults) {}

  SimLogDevice(const SimLogDevice&) = delete;
  SimLogDevice& operator=(const SimLogDevice&) = delete;

  /// Append bytes durably; charges sequential-append cost (the caller
  /// waits for the device: WAL flushes and forces).
  Status Append(const uint8_t* data, size_t n) override;

  /// Append bytes durably without charging the current actor (background
  /// drain of the log buffer: the device works while the processor runs).
  Status AppendAsync(const uint8_t* data, size_t n) override;

  /// Charge the latency of a synchronous force (the data itself was already
  /// appended by Append; this models waiting for the device).
  void Force() override {
    clock_->ChargeLogForce();
    ++stats_.forces;
  }

  uint64_t size() const override { return bytes_.size(); }
  const uint8_t* data() const { return bytes_.data(); }

  /// Read n bytes at offset into out; returns Corruption if out of range.
  Status ReadAt(uint64_t offset, size_t n, uint8_t* out) const override;

  /// Master record: the well-known location (in a real system, a fixed disk
  /// block updated atomically) holding the LSN of the most recent
  /// checkpoint. Survives crashes.
  void SetMasterLsn(Lsn lsn) override {
    clock_->ChargeRandomIo(64);
    master_lsn_ = lsn;
  }
  Lsn master_lsn() const override { return master_lsn_; }

  /// Discard the log prefix before `offset` (log truncation after
  /// checkpoint). Earlier offsets remain addressable but unreadable.
  void TruncatePrefix(uint64_t offset) override {
    if (offset > truncated_prefix_) truncated_prefix_ = offset;
  }
  uint64_t truncated_prefix() const override { return truncated_prefix_; }

  /// Durable barrier: bytes at offsets below the barrier are acknowledged
  /// durable (a Force completed, or a WAL-mandated flush preceded a page
  /// write) and can never tear. Raised by the log writer.
  void MarkDurableBarrier() override { durable_barrier_ = bytes_.size(); }
  uint64_t durable_barrier() const override { return durable_barrier_; }

  /// Crash-injection hook: tear off up to the last n bytes, as if the final
  /// flush did not fully reach stable storage. Never tears below the
  /// durable barrier.
  void TearTail(size_t n) override {
    uint64_t floor = durable_barrier_;
    uint64_t new_size = bytes_.size() > n ? bytes_.size() - n : 0;
    if (new_size < floor) new_size = floor;
    bytes_.resize(new_size);
  }

  FaultInjector* faults() const override { return faults_; }

  LogDeviceStats stats() const override { return stats_; }
  void ResetStats() override { stats_ = LogDeviceStats(); }

 private:
  SimClock* clock_;
  FaultInjector* faults_ = nullptr;
  std::vector<uint8_t> bytes_;
  uint64_t truncated_prefix_ = 0;
  uint64_t durable_barrier_ = 0;
  Lsn master_lsn_ = kInvalidLsn;
  LogDeviceStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_SIM_LOG_DEVICE_H_
