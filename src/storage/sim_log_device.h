// SimLogDevice: the stable-storage sequential log device (paper §2.2.1).
//
// The recovery system spools to a volatile log buffer (see wal::LogWriter);
// this device models only the *stable log*: bytes appended here survive a
// crash. A real implementation duplexes two disks; the simulator treats
// appends as atomic but supports torn-tail injection (truncating the final
// flush mid-record) to exercise the record CRC path.

#ifndef SHEAP_STORAGE_SIM_LOG_DEVICE_H_
#define SHEAP_STORAGE_SIM_LOG_DEVICE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "util/sim_clock.h"

namespace sheap {

class FaultInjector;

struct LogDeviceStats {
  uint64_t appends = 0;        // flush operations
  uint64_t bytes_appended = 0;
  uint64_t forces = 0;         // synchronous flushes (commit, etc.)
};

/// Append-only stable byte store. Offsets are stable log addresses.
class SimLogDevice {
 public:
  explicit SimLogDevice(SimClock* clock, FaultInjector* faults = nullptr)
      : clock_(clock), faults_(faults) {}

  SimLogDevice(const SimLogDevice&) = delete;
  SimLogDevice& operator=(const SimLogDevice&) = delete;

  /// Append bytes durably; charges sequential-append cost (the caller
  /// waits for the device: WAL flushes and forces).
  Status Append(const uint8_t* data, size_t n);

  /// Append bytes durably without charging the current actor (background
  /// drain of the log buffer: the device works while the processor runs).
  Status AppendAsync(const uint8_t* data, size_t n);

  /// Charge the latency of a synchronous force (the data itself was already
  /// appended by Append; this models waiting for the device).
  void Force() {
    clock_->ChargeLogForce();
    ++stats_.forces;
  }

  uint64_t size() const { return bytes_.size(); }
  const uint8_t* data() const { return bytes_.data(); }

  /// Read n bytes at offset into out; returns Corruption if out of range.
  Status ReadAt(uint64_t offset, size_t n, uint8_t* out) const;

  /// Master record: the well-known location (in a real system, a fixed disk
  /// block updated atomically) holding the LSN of the most recent
  /// checkpoint. Survives crashes.
  void SetMasterLsn(Lsn lsn) {
    clock_->ChargeRandomIo(64);
    master_lsn_ = lsn;
  }
  Lsn master_lsn() const { return master_lsn_; }

  /// Discard the log prefix before `offset` (log truncation after
  /// checkpoint). Earlier offsets remain addressable but unreadable.
  void TruncatePrefix(uint64_t offset) {
    if (offset > truncated_prefix_) truncated_prefix_ = offset;
  }
  uint64_t truncated_prefix() const { return truncated_prefix_; }

  /// Durable barrier: bytes at offsets below the barrier are acknowledged
  /// durable (a Force completed, or a WAL-mandated flush preceded a page
  /// write) and can never tear. Raised by the log writer.
  void MarkDurableBarrier() { durable_barrier_ = bytes_.size(); }
  uint64_t durable_barrier() const { return durable_barrier_; }

  /// Crash-injection hook: tear off up to the last n bytes, as if the final
  /// flush did not fully reach stable storage. Never tears below the
  /// durable barrier.
  void TearTail(size_t n) {
    uint64_t floor = durable_barrier_;
    uint64_t new_size = bytes_.size() > n ? bytes_.size() - n : 0;
    if (new_size < floor) new_size = floor;
    bytes_.resize(new_size);
  }

  FaultInjector* faults() const { return faults_; }

  const LogDeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LogDeviceStats(); }

 private:
  SimClock* clock_;
  FaultInjector* faults_ = nullptr;
  std::vector<uint8_t> bytes_;
  uint64_t truncated_prefix_ = 0;
  uint64_t durable_barrier_ = 0;
  Lsn master_lsn_ = kInvalidLsn;
  LogDeviceStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_SIM_LOG_DEVICE_H_
