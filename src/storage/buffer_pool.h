// BufferPool: volatile main-memory cache of disk pages (paper §2.2.1).
//
// Responsibilities from the paper:
//  * pin/unpin: a pinned page may not be written back to disk (the
//    write-ahead log protocol pins pages while a modification's redo record
//    has not yet been spooled);
//  * the WAL constraint: a dirty frame is written to disk only after the
//    stable log contains every record up to the frame's page LSN
//    (Invariant I2 => repeating history, Invariant 2.1);
//  * page-fetch / end-write notifications so the recovery system can log
//    them and later deduce a superset of the dirty pages (§2.2.4, opt. 1).

#ifndef SHEAP_STORAGE_BUFFER_POOL_H_
#define SHEAP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "storage/page.h"
#include "storage/sim_disk.h"

namespace sheap {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t write_backs = 0;
};

/// Main-memory page cache with pinning and WAL-constrained write-back.
class BufferPool {
 public:
  struct Hooks {
    /// Ensure the stable log contains all records with LSN <= lsn.
    /// Must be set; called before any dirty write-back.
    std::function<Status(Lsn)> flush_log_to;
    /// Called after fetching a page from disk (spool a page-fetch record).
    std::function<void(PageId)> on_page_fetch;
    /// Called after a dirty page reaches disk (spool an end-write record).
    std::function<void(PageId)> on_end_write;
  };

  BufferPool(SimDisk* disk, size_t capacity_frames, Hooks hooks);

  /// Replace the hooks (recovery runs with fetch/end-write notifications
  /// disabled, then installs the logging hooks for normal operation).
  void SetHooks(Hooks hooks) { hooks_ = std::move(hooks); }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pin the page in memory, fetching from disk on a miss. The returned
  /// frame pointer stays valid until the matching Unpin. Pins nest.
  StatusOr<PageImage*> Pin(PageId pid);

  /// Release one pin.
  void Unpin(PageId pid);

  /// Record that the (pinned) frame was modified under `lsn`; sets the page
  /// LSN and, if the frame was clean, its recovery LSN.
  void MarkDirty(PageId pid, Lsn lsn);

  /// Mark a frame dirty with no associated log record (volatile-area pages,
  /// which are not logged and need not survive a crash).
  void MarkDirtyUnlogged(PageId pid);

  /// Write one dirty, unpinned frame back to disk (respecting WAL).
  /// Returns NotFound if the page is not resident, Busy if pinned,
  /// OK and no-op if clean.
  Status WriteBack(PageId pid);

  /// Write back every dirty unpinned frame (used by tests and shutdown).
  Status FlushAll();

  /// Background-writer simulation: write back each dirty unpinned frame
  /// independently with probability `fraction`. Used for crash-state
  /// diversification and steady-state cleaning.
  Status WriteBackRandomSubset(Rng* rng, double fraction);

  /// Snapshot of the dirty-page table: (page, recLSN) pairs.
  std::vector<std::pair<PageId, Lsn>> DirtyPages() const;

  /// Crash: main memory is lost. Drops every frame without writing.
  void DropAll();

  /// Drop resident frames of pages in [first, first+count) without writing
  /// (space deallocation: from-space discard after a collection).
  void DropRange(PageId first, uint64_t count);

  bool IsResident(PageId pid) const { return frames_.count(pid) > 0; }
  bool IsDirty(PageId pid) const;
  uint32_t PinCount(PageId pid) const;
  size_t ResidentCount() const { return frames_.size(); }

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

 private:
  struct Frame {
    PageImage image;
    uint32_t pin_count = 0;
    bool dirty = false;
    Lsn rec_lsn = kInvalidLsn;  // LSN of first record dirtying this frame
    std::list<PageId>::iterator lru_pos;
  };

  /// Evict one unpinned frame if over capacity. Dirty victims are written
  /// back first (WAL-constrained).
  Status MaybeEvict();

  Status WriteBackFrame(PageId pid, Frame* frame);

  SimDisk* disk_;
  size_t capacity_;
  Hooks hooks_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = least recently used
  BufferPoolStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_BUFFER_POOL_H_
