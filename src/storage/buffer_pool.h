// BufferPool: volatile main-memory cache of disk pages (paper §2.2.1).
//
// Responsibilities from the paper:
//  * pin/unpin: a pinned page may not be written back to disk (the
//    write-ahead log protocol pins pages while a modification's redo record
//    has not yet been spooled);
//  * the WAL constraint: a dirty frame is written to disk only after the
//    stable log contains every record up to the frame's page LSN
//    (Invariant I2 => repeating history, Invariant 2.1);
//  * page-fetch / end-write notifications so the recovery system can log
//    them and later deduce a superset of the dirty pages (§2.2.4, opt. 1).
//
// Hot-path complexity: frames live in a stable-address store with a free
// list; an intrusive doubly-linked LRU holds ONLY unpinned frames, so
// eviction pops its head in O(1) with no pinned-frame skipping; a dirty
// index (page -> recLSN) makes DirtyPages(), checkpoint snapshots, and
// write-back selection O(dirty) instead of O(frames); a multiset of recLSNs
// gives the checkpoint truncation floor in O(1).
//
// Thread safety: the page map and dirty index are sharded by page hash with
// a mutex per shard; the LRU links, frame store and stats each have their
// own mutex (lock rank: shard < lru < store < stats, never two shards
// at once — see DESIGN.md §5e). The discipline is machine-checked: every
// guarded field carries SHEAP_GUARDED_BY, lock-held helpers carry
// SHEAP_REQUIRES, and a clang build rejects violations at compile time.
// Two concurrent regimes are supported:
//  * parallel redo (BeginConcurrent/EndConcurrent): recovery workers call
//    Pin/Unpin/MarkDirty from several threads, each confined to its own
//    page partition; eviction is disabled so no worker ever writes back (or
//    steals) another partition's frame, and the pool may transiently grow
//    past capacity exactly as it already does when every frame is pinned;
//  * parallel flush (FlushAll): a small writer pool pushes page-adjacent
//    dirty runs to disk as coalesced sequential I/Os.
// Outside those regimes the pool is used single-threaded as before.

#ifndef SHEAP_STORAGE_BUFFER_POOL_H_
#define SHEAP_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "storage/page.h"
#include "storage/env.h"

namespace sheap {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t write_backs = 0;
  /// Frames examined while choosing an eviction victim. The intrusive
  /// unpinned-only LRU examines exactly one frame per eviction, so this
  /// stays equal to `evictions` (the old list scan skipped pinned frames
  /// and could touch O(frames)).
  uint64_t evict_probe_steps = 0;
  /// Frames visited by dirty-set traversals (DirtyPages, FlushAll,
  /// WriteBackRandomSubset). Bounded by the number of DIRTY frames per
  /// call, not by residency — asserted in storage_test.
  uint64_t dirty_scan_steps = 0;
  /// Page-adjacent runs FlushAll coalesced into single sequential I/Os.
  uint64_t flush_runs = 0;
};

/// Main-memory page cache with pinning and WAL-constrained write-back.
class BufferPool {
 public:
  struct Hooks {
    /// Ensure the stable log contains all records with LSN <= lsn.
    /// Must be set; called before any dirty write-back.
    std::function<Status(Lsn)> flush_log_to;
    /// Called after fetching a page from disk (spool a page-fetch record).
    std::function<void(PageId)> on_page_fetch;
    /// Called after a dirty page reaches disk (spool an end-write record).
    std::function<void(PageId)> on_end_write;
    /// Called at the top of every Pin, before the page is looked up or
    /// fetched — the instant-recovery gate (recovery/instant_redo.h)
    /// replays a not-yet-redone page here so no caller ever observes
    /// un-redone bytes. A failure fails the Pin. The hook may itself Pin
    /// the same page (it guards against its own re-entry).
    std::function<Status(PageId)> before_pin;
  };

  BufferPool(Disk* disk, size_t capacity_frames, Hooks hooks);

  /// Replace the hooks (recovery runs with fetch/end-write notifications
  /// disabled, then installs the logging hooks for normal operation).
  void SetHooks(Hooks hooks) { hooks_ = std::move(hooks); }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pin the page in memory, fetching from disk on a miss. The returned
  /// frame pointer stays valid until the matching Unpin. Pins nest.
  StatusOr<PageImage*> Pin(PageId pid);

  /// Release one pin.
  void Unpin(PageId pid);

  /// Record that the (pinned) frame was modified under `lsn`; sets the page
  /// LSN and, if the frame was clean, its recovery LSN.
  void MarkDirty(PageId pid, Lsn lsn);

  /// Mark a frame dirty with no associated log record (volatile-area pages,
  /// which are not logged and need not survive a crash).
  void MarkDirtyUnlogged(PageId pid);

  /// Write one dirty, unpinned frame back to disk (respecting WAL).
  /// Returns NotFound if the page is not resident, Busy if pinned,
  /// OK and no-op if clean.
  Status WriteBack(PageId pid);

  /// Write back every dirty unpinned frame. Dirty pages are coalesced into
  /// page-adjacent runs, each run written as one sequential device I/O, and
  /// the runs are spread over a small writer pool (set_flush_writers);
  /// simulated time advances by the busiest writer's lane, so a flush of N
  /// scattered pages costs ~N/writers seeks instead of N. The WAL flush
  /// covering every dirty page happens once, up front, on the calling
  /// thread, and end-write notifications are emitted after the last writer
  /// joins, in ascending page order — so the log contents are identical to
  /// the serial flush's.
  Status FlushAll();

  /// Background-writer simulation: write back each dirty unpinned frame
  /// independently with probability `fraction`. Used for crash-state
  /// diversification and steady-state cleaning.
  Status WriteBackRandomSubset(Rng* rng, double fraction);

  /// Snapshot of the dirty-page table: (page, recLSN) pairs, page-ordered.
  std::vector<std::pair<PageId, Lsn>> DirtyPages() const;

  /// Smallest recLSN over all dirty logged frames (kInvalidLsn if none):
  /// the pool's contribution to the checkpoint log-truncation floor.
  Lsn MinRecLsn() const;

  /// Crash: main memory is lost. Drops every frame without writing.
  void DropAll();

  /// Drop resident frames of pages in [first, first+count) without writing
  /// (space deallocation: from-space discard after a collection).
  void DropRange(PageId first, uint64_t count);

  /// Enter/leave a concurrent regime: between the calls, multiple threads
  /// may Pin/Unpin/MarkDirty. Two callers rely on it: parallel redo (each
  /// worker confined to its own page partition) and true concurrent
  /// mutators (same-page sharing allowed; a lost same-page miss race in Pin
  /// discards the loser's fetch and pins the published frame). Eviction is
  /// disabled while concurrent. The calls nest — the heap holds the regime
  /// open for its lifetime in multi-mutator mode while the instant-recovery
  /// drain opens inner regimes — and the final EndConcurrent rebuilds the
  /// unpinned-LRU in ascending page order, so subsequent eviction decisions
  /// do not depend on thread interleaving. Begin/End themselves must be
  /// called from quiescent (exclusive) contexts.
  void BeginConcurrent();
  void EndConcurrent();

  /// Number of writer threads FlushAll fans coalesced runs across
  /// (1 = inline serial flush). Default 4.
  void set_flush_writers(uint32_t n) { flush_writers_ = n == 0 ? 1 : n; }
  uint32_t flush_writers() const { return flush_writers_; }

  bool IsResident(PageId pid) const;
  bool IsDirty(PageId pid) const;
  uint32_t PinCount(PageId pid) const;
  size_t ResidentCount() const;
  size_t DirtyCount() const;
  /// Frames on the reusable free list (allocated but unoccupied).
  size_t FreeFrameCount() const;

  /// Snapshot of the counters (copied under the stats lock; concurrent
  /// regimes may be bumping them).
  BufferPoolStats stats() const SHEAP_EXCLUDES(stats_mu_);
  void ResetStats() SHEAP_EXCLUDES(stats_mu_);

 private:
  static constexpr uint32_t kNoFrame = UINT32_MAX;
  static constexpr uint32_t kShards = 16;

  struct Frame {
    PageImage image;
    PageId pid = 0;
    uint32_t pin_count = 0;
    bool dirty = false;
    Lsn rec_lsn = kInvalidLsn;  // LSN of first record dirtying this frame
    // Intrusive LRU links; in the list only while resident and unpinned.
    uint32_t lru_prev = kNoFrame;
    uint32_t lru_next = kNoFrame;
  };

  /// One lock's worth of the page map + dirty index. Page-ordered maps keep
  /// per-shard iteration deterministic; cross-shard snapshots merge-sort.
  /// `mu` is rank 1 (lowest): it may be held while taking lru/store/stats,
  /// never the other way, and never two shards at once.
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<PageId, uint32_t> page_to_frame
        SHEAP_GUARDED_BY(mu);
    std::map<PageId, Lsn> dirty SHEAP_GUARDED_BY(mu);  // page -> recLSN
    std::multiset<Lsn> dirty_rec_lsns SHEAP_GUARDED_BY(mu);
  };

  static uint32_t ShardIndex(PageId pid) {
    return static_cast<uint32_t>((pid * 0x9E3779B97F4A7C15ull) >> 60) %
           kShards;
  }
  Shard& ShardFor(PageId pid) { return shards_[ShardIndex(pid)]; }
  const Shard& ShardFor(PageId pid) const { return shards_[ShardIndex(pid)]; }

  /// Resolve a frame index to its stable address. The deque never moves
  /// elements, but concurrent growth races with naked indexing, so the
  /// lookup itself takes store_mu_. Frame *contents* are not capability-
  /// guarded: pin_count/dirty/image are protected by the pin discipline and
  /// the partition confinement of the concurrent regimes (DESIGN.md §5e).
  Frame* FramePtr(uint32_t idx) SHEAP_EXCLUDES(store_mu_);
  const Frame* FramePtr(uint32_t idx) const SHEAP_EXCLUDES(store_mu_);

  // Unpinned-LRU list maintenance (O(1) each).
  void LruPushBack(uint32_t idx) SHEAP_REQUIRES(lru_mu_);
  void LruRemove(uint32_t idx) SHEAP_REQUIRES(lru_mu_);

  // Dirty-index maintenance (O(log dirty) each).
  void DirtyInsert(Shard* shard, const Frame& frame)
      SHEAP_REQUIRES(shard->mu);
  void DirtyErase(Shard* shard, const Frame& frame)
      SHEAP_REQUIRES(shard->mu);

  uint32_t AllocateFrame() SHEAP_EXCLUDES(store_mu_);
  void ReleaseFrame(uint32_t idx) SHEAP_EXCLUDES(store_mu_);

  void BumpStat(uint64_t BufferPoolStats::*field, uint64_t n = 1) const
      SHEAP_EXCLUDES(stats_mu_);

  /// Evict one unpinned frame if over capacity. Dirty victims are written
  /// back first (WAL-constrained). With every frame pinned the pool grows
  /// past capacity rather than fail. Serial contexts only.
  Status MaybeEvict();

  Status WriteBackFrame(Frame* frame);

  /// A maximal run of page-adjacent flush candidates.
  struct FlushRun {
    PageId first = 0;
    std::vector<uint32_t> frames;  // frame indexes, ascending pages
  };
  Status WriteFlushRun(const FlushRun& run);

  Disk* disk_;
  size_t capacity_;
  Hooks hooks_;
  uint32_t flush_writers_ = 4;
  /// Concurrent-regime nesting depth (eviction disabled while > 0).
  /// Mutated only from quiescent contexts; read (relaxed) on the Pin path.
  std::atomic<uint32_t> concurrent_depth_{0};

  // Rank 3: frame_store_ growth + free list. Leaf-ward of shard.mu and
  // lru_mu_ (FramePtr runs under either).
  mutable Mutex store_mu_ SHEAP_ACQUIRED_AFTER(lru_mu_);
  /// Stable addresses; slots are reused.
  std::deque<Frame> frame_store_ SHEAP_GUARDED_BY(store_mu_);
  std::vector<uint32_t> free_frames_ SHEAP_GUARDED_BY(store_mu_);

  Shard shards_[kShards];

  mutable Mutex lru_mu_;  // rank 2: the unpinned-LRU links
  uint32_t lru_head_ SHEAP_GUARDED_BY(lru_mu_) = kNoFrame;  // least recent
  uint32_t lru_tail_ SHEAP_GUARDED_BY(lru_mu_) = kNoFrame;  // most recent

  mutable Mutex stats_mu_ SHEAP_ACQUIRED_AFTER(store_mu_);  // rank 4: leaf
  mutable BufferPoolStats stats_ SHEAP_GUARDED_BY(stats_mu_);
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_BUFFER_POOL_H_
