// BufferPool: volatile main-memory cache of disk pages (paper §2.2.1).
//
// Responsibilities from the paper:
//  * pin/unpin: a pinned page may not be written back to disk (the
//    write-ahead log protocol pins pages while a modification's redo record
//    has not yet been spooled);
//  * the WAL constraint: a dirty frame is written to disk only after the
//    stable log contains every record up to the frame's page LSN
//    (Invariant I2 => repeating history, Invariant 2.1);
//  * page-fetch / end-write notifications so the recovery system can log
//    them and later deduce a superset of the dirty pages (§2.2.4, opt. 1).
//
// Hot-path complexity: frames live in a stable-address store with a free
// list; an intrusive doubly-linked LRU holds ONLY unpinned frames, so
// eviction pops its head in O(1) with no pinned-frame skipping; a dirty
// index (page -> recLSN, ordered by page) makes DirtyPages(), checkpoint
// snapshots, and write-back selection O(dirty) instead of O(frames); a
// multiset of recLSNs gives the checkpoint truncation floor in O(1).

#ifndef SHEAP_STORAGE_BUFFER_POOL_H_
#define SHEAP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "storage/page.h"
#include "storage/sim_disk.h"

namespace sheap {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t write_backs = 0;
  /// Frames examined while choosing an eviction victim. The intrusive
  /// unpinned-only LRU examines exactly one frame per eviction, so this
  /// stays equal to `evictions` (the old list scan skipped pinned frames
  /// and could touch O(frames)).
  uint64_t evict_probe_steps = 0;
  /// Frames visited by dirty-set traversals (DirtyPages, FlushAll,
  /// WriteBackRandomSubset). Bounded by the number of DIRTY frames per
  /// call, not by residency — asserted in storage_test.
  uint64_t dirty_scan_steps = 0;
};

/// Main-memory page cache with pinning and WAL-constrained write-back.
class BufferPool {
 public:
  struct Hooks {
    /// Ensure the stable log contains all records with LSN <= lsn.
    /// Must be set; called before any dirty write-back.
    std::function<Status(Lsn)> flush_log_to;
    /// Called after fetching a page from disk (spool a page-fetch record).
    std::function<void(PageId)> on_page_fetch;
    /// Called after a dirty page reaches disk (spool an end-write record).
    std::function<void(PageId)> on_end_write;
  };

  BufferPool(SimDisk* disk, size_t capacity_frames, Hooks hooks);

  /// Replace the hooks (recovery runs with fetch/end-write notifications
  /// disabled, then installs the logging hooks for normal operation).
  void SetHooks(Hooks hooks) { hooks_ = std::move(hooks); }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pin the page in memory, fetching from disk on a miss. The returned
  /// frame pointer stays valid until the matching Unpin. Pins nest.
  StatusOr<PageImage*> Pin(PageId pid);

  /// Release one pin.
  void Unpin(PageId pid);

  /// Record that the (pinned) frame was modified under `lsn`; sets the page
  /// LSN and, if the frame was clean, its recovery LSN.
  void MarkDirty(PageId pid, Lsn lsn);

  /// Mark a frame dirty with no associated log record (volatile-area pages,
  /// which are not logged and need not survive a crash).
  void MarkDirtyUnlogged(PageId pid);

  /// Write one dirty, unpinned frame back to disk (respecting WAL).
  /// Returns NotFound if the page is not resident, Busy if pinned,
  /// OK and no-op if clean.
  Status WriteBack(PageId pid);

  /// Write back every dirty unpinned frame (used by tests and shutdown).
  Status FlushAll();

  /// Background-writer simulation: write back each dirty unpinned frame
  /// independently with probability `fraction`. Used for crash-state
  /// diversification and steady-state cleaning.
  Status WriteBackRandomSubset(Rng* rng, double fraction);

  /// Snapshot of the dirty-page table: (page, recLSN) pairs, page-ordered.
  std::vector<std::pair<PageId, Lsn>> DirtyPages() const;

  /// Smallest recLSN over all dirty logged frames (kInvalidLsn if none):
  /// the pool's contribution to the checkpoint log-truncation floor.
  Lsn MinRecLsn() const;

  /// Crash: main memory is lost. Drops every frame without writing.
  void DropAll();

  /// Drop resident frames of pages in [first, first+count) without writing
  /// (space deallocation: from-space discard after a collection).
  void DropRange(PageId first, uint64_t count);

  bool IsResident(PageId pid) const { return page_to_frame_.count(pid) > 0; }
  bool IsDirty(PageId pid) const;
  uint32_t PinCount(PageId pid) const;
  size_t ResidentCount() const { return page_to_frame_.size(); }
  size_t DirtyCount() const { return dirty_.size(); }
  /// Frames on the reusable free list (allocated but unoccupied).
  size_t FreeFrameCount() const { return free_frames_.size(); }

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

 private:
  static constexpr uint32_t kNoFrame = UINT32_MAX;

  struct Frame {
    PageImage image;
    PageId pid = 0;
    uint32_t pin_count = 0;
    bool dirty = false;
    Lsn rec_lsn = kInvalidLsn;  // LSN of first record dirtying this frame
    // Intrusive LRU links; in the list only while resident and unpinned.
    uint32_t lru_prev = kNoFrame;
    uint32_t lru_next = kNoFrame;
  };

  Frame& FrameAt(uint32_t idx) { return frame_store_[idx]; }
  const Frame& FrameAt(uint32_t idx) const { return frame_store_[idx]; }

  // Unpinned-LRU list maintenance (O(1) each).
  void LruPushBack(uint32_t idx);
  void LruRemove(uint32_t idx);

  // Dirty-index maintenance (O(log dirty) each).
  void DirtyInsert(const Frame& frame);
  void DirtyErase(const Frame& frame);

  uint32_t AllocateFrame();
  void ReleaseFrame(uint32_t idx);

  /// Evict one unpinned frame if over capacity. Dirty victims are written
  /// back first (WAL-constrained). With every frame pinned the pool grows
  /// past capacity rather than fail.
  Status MaybeEvict();

  Status WriteBackFrame(Frame* frame);

  SimDisk* disk_;
  size_t capacity_;
  Hooks hooks_;
  std::deque<Frame> frame_store_;  // stable addresses; slots are reused
  std::vector<uint32_t> free_frames_;
  std::unordered_map<PageId, uint32_t> page_to_frame_;
  uint32_t lru_head_ = kNoFrame;  // least recently unpinned
  uint32_t lru_tail_ = kNoFrame;  // most recently unpinned
  /// Dirty-page table: page -> recLSN, ordered by page so DirtyPages and
  /// the background writer stay deterministic without sorting.
  std::map<PageId, Lsn> dirty_;
  /// recLSNs of dirty logged frames; begin() is the truncation floor.
  std::multiset<Lsn> dirty_rec_lsns_;
  BufferPoolStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_BUFFER_POOL_H_
