// RealEnv: the real-hardware environment. Same contract as SimEnv — it
// survives the heap dying and being reopened — but the devices are files
// (storage/real_disk.h, storage/real_log_device.h) and the read barrier
// can run on the MMU (storage/real_mapping.h). A RealEnv still owns a
// SimClock: the analytic cost charges keep flowing (recovery's thread-lane
// accounting and the sim-time stats stay meaningful), while wall-clock
// timing comes from bench_util's WallTimer.
//
// Crash protocol on hardware: kill the *process* after commit-OK. Bytes
// the device staged but never synced die with it — the real analogue of
// the simulator's torn tail — while everything below the durable barrier
// was fdatasync'ed and survives. tests/real_env_test.cc drives exactly
// that with fork + SIGKILL.

#ifndef SHEAP_STORAGE_REAL_ENV_H_
#define SHEAP_STORAGE_REAL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "fault/fault_injector.h"
#include "storage/env.h"
#include "storage/real_disk.h"
#include "storage/real_log_device.h"
#include "storage/real_mapping.h"
#include "util/sim_clock.h"

namespace sheap {

struct RealEnvOptions {
  /// Directory holding pages.db, wal.log, wal.master. Created if missing.
  std::string dir;
  /// Request O_DIRECT on the page store (falls back to buffered when the
  /// filesystem refuses; see RealDisk).
  bool direct_io = true;
  /// Reserve the mprotect mirror so the GC can run the hardware read
  /// barrier (GcBarrierMode::kPageProtection + Env::mapping()).
  bool hardware_barrier = true;
  /// Virtual pages in the mirror (MAP_NORESERVE — address space, not
  /// memory). Heap pages beyond it fall back to the software check.
  uint64_t mapping_capacity_pages = 1ull << 20;  // 4 GiB of heap
};

/// See file comment.
class RealEnv final : public Env {
 public:
  static StatusOr<std::unique_ptr<RealEnv>> Create(
      const RealEnvOptions& options);

  RealEnv(const RealEnv&) = delete;
  RealEnv& operator=(const RealEnv&) = delete;

  SimClock* clock() override { return &clock_; }
  RealDisk* disk() override { return disk_.get(); }
  RealLogDevice* log() override { return log_.get(); }
  FaultInjector* faults() override { return &faults_; }
  RealMapping* mapping() override { return mapping_.get(); }
  const char* backend_name() const override { return "real"; }

  const RealEnvOptions& options() const { return options_; }

 private:
  explicit RealEnv(const RealEnvOptions& options) : options_(options) {}

  const RealEnvOptions options_;
  SimClock clock_;
  FaultInjector faults_;
  std::unique_ptr<RealDisk> disk_;
  std::unique_ptr<RealLogDevice> log_;
  std::unique_ptr<RealMapping> mapping_;
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_REAL_ENV_H_
