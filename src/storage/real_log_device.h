// RealLogDevice: the file-backed stable log (the real-hardware LogDevice).
//
// Two files implement the paper's stable log:
//   * <prefix>.log    — the append-only record stream, and
//   * <prefix>.master — a fixed 512-byte master record (checkpoint LSN +
//                       truncation point, CRC-protected, rewritten in
//                       place and fdatasync'ed — the classic "well-known
//                       location" update).
//
// Append/AppendAsync only *stage* chunks in process memory; they reach the
// file when a durability point arrives. MarkDurableBarrier — which the
// LogWriter calls after a Force and after every WAL-mandated flush — drains
// all staged chunks with a single pwritev and issues one fdatasync, then
// raises the barrier. That is exactly the mapping group commit needs: a
// batch of K commit records staged by the leader becomes one vectored
// write plus one sync, so the sim's "K commits per force" amortization is
// preserved on hardware. The un-synced staging buffer is also what makes
// process-kill durability tests meaningful: bytes staged after the last
// barrier die with the process, just like the simulated torn tail.

#ifndef SHEAP_STORAGE_REAL_LOG_DEVICE_H_
#define SHEAP_STORAGE_REAL_LOG_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "storage/env.h"
#include "storage/page.h"

namespace sheap {

class FaultInjector;
class SimClock;

/// File-backed stable log; see file comment.
class RealLogDevice final : public LogDevice {
 public:
  /// Open (creating if needed) the pair `<prefix>.log` / `<prefix>.master`.
  /// On reopen, everything already in the log file is below the durable
  /// barrier (a reopen only happens after the previous process is gone;
  /// its staged-but-unsynced bytes never reached the file).
  static StatusOr<std::unique_ptr<RealLogDevice>> Open(
      const std::string& prefix, SimClock* clock, FaultInjector* faults);
  ~RealLogDevice() override;

  RealLogDevice(const RealLogDevice&) = delete;
  RealLogDevice& operator=(const RealLogDevice&) = delete;

  Status Append(const uint8_t* data, size_t n) override SHEAP_EXCLUDES(mu_);
  Status AppendAsync(const uint8_t* data, size_t n) override
      SHEAP_EXCLUDES(mu_);
  void Force() override SHEAP_EXCLUDES(mu_);

  uint64_t size() const override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return file_size_ + staged_bytes_;
  }

  Status ReadAt(uint64_t offset, size_t n, uint8_t* out) const override
      SHEAP_EXCLUDES(mu_);

  void SetMasterLsn(Lsn lsn) override SHEAP_EXCLUDES(mu_);
  Lsn master_lsn() const override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return master_lsn_;
  }

  void TruncatePrefix(uint64_t offset) override SHEAP_EXCLUDES(mu_);
  uint64_t truncated_prefix() const override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return truncated_prefix_;
  }

  void MarkDurableBarrier() override SHEAP_EXCLUDES(mu_);
  uint64_t durable_barrier() const override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return durable_barrier_;
  }

  void TearTail(size_t n) override SHEAP_EXCLUDES(mu_);

  FaultInjector* faults() const override { return faults_; }

  LogDeviceStats stats() const override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = LogDeviceStats();
  }

 private:
  RealLogDevice(int log_fd, int master_fd, std::string prefix,
                SimClock* clock, FaultInjector* faults)
      : log_fd_(log_fd),
        master_fd_(master_fd),
        prefix_(std::move(prefix)),
        clock_(clock),
        faults_(faults) {}

  /// Drain staged chunks with one pwritev (looping over IOV_MAX and short
  /// writes) and fdatasync when anything reached the file. No-op when
  /// nothing is staged and nothing is dirty since the last sync.
  Status SyncLocked() SHEAP_REQUIRES(mu_);

  /// Rewrite the 512-byte master record in place and fdatasync it.
  void WriteMasterLocked() SHEAP_REQUIRES(mu_);

  const int log_fd_;
  const int master_fd_;
  const std::string prefix_;
  SimClock* const clock_;
  FaultInjector* const faults_;

  /// Guards the staging buffer, file size, and counters. Concurrent
  /// appenders (group-commit leaders, the WAL flush path, checkpoint) and
  /// readers (recovery) serialize here. Leaf lock: nothing else is
  /// acquired while holding it; the pwritev/fdatasync run under it — one
  /// durability point at a time, matching the single-device model.
  mutable Mutex mu_;
  std::vector<std::vector<uint8_t>> staged_ SHEAP_GUARDED_BY(mu_);
  uint64_t staged_bytes_ SHEAP_GUARDED_BY(mu_) = 0;
  uint64_t file_size_ SHEAP_GUARDED_BY(mu_) = 0;
  /// Prefix of the file already covered by an fdatasync; a durability
  /// point whose bytes are all below it skips the sync.
  uint64_t synced_size_ SHEAP_GUARDED_BY(mu_) = 0;
  uint64_t truncated_prefix_ SHEAP_GUARDED_BY(mu_) = 0;
  uint64_t durable_barrier_ SHEAP_GUARDED_BY(mu_) = 0;
  Lsn master_lsn_ SHEAP_GUARDED_BY(mu_) = kInvalidLsn;
  mutable LogDeviceStats stats_ SHEAP_GUARDED_BY(mu_);
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_REAL_LOG_DEVICE_H_
