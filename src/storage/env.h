// Storage/VM backend abstraction (ROADMAP item 4).
//
// The engine runs against three abstract devices:
//   * Disk       — the non-volatile page store backing the one-level store;
//   * LogDevice  — the append-only stable log (paper §2.2.1);
//   * HeapMapping— an optional hardware VM mirror of the heap's page space,
//                  used to drive the Ellis read barrier with real
//                  mprotect(PROT_NONE) + SIGSEGV traps instead of a software
//                  page-scanned check.
// An Env bundles one of each plus the cost-model clock and the fault
// injector. Two implementations exist:
//   * SimEnv  (storage/sim_env.h)  — the deterministic simulator: in-memory
//     devices charging analytic costs to a SimClock. It remains the
//     substrate for the crash matrix and every byte-determinism proof.
//   * RealEnv (storage/real_env.h) — real hardware: a file-backed page
//     store (pread/pwrite, optional O_DIRECT with aligned buffers), a WAL
//     file whose force is batched pwritev + fdatasync, and an mmap-backed
//     protection mirror for the read barrier. Wall-clock benches (E18)
//     measure this backend.
//
// Consumers (BufferPool, LogWriter, LogReader, Checkpointer,
// RecoveryManager, SpaceManager, StableHeap, TwoPhaseCoordinator,
// ShardedHeap) hold only these interfaces; nothing outside storage/ names a
// concrete Sim*/Real* type. The Sim classes keep their richer concrete
// surfaces (torn-tail injection, raw log bytes, bit-rot hooks) for tests
// that hold the concrete objects, via covariant accessors on SimEnv.

#ifndef SHEAP_STORAGE_ENV_H_
#define SHEAP_STORAGE_ENV_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "storage/page.h"

namespace sheap {

class FaultInjector;
class SimClock;

/// Statistics kept by a page store.
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t fresh_reads = 0;    // no backing image: logically zero-filled
  uint64_t crc_failures = 0;   // reads that failed CRC32C verification
  uint64_t run_writes = 0;     // coalesced WritePageRun calls
  uint64_t run_pages = 0;      // pages written through coalesced runs
  // Real backend only (zero on the simulator).
  uint64_t direct_io_writes = 0;  // O_DIRECT page writes issued
  uint64_t buffered_fallbacks = 0;  // ops served buffered after O_DIRECT
                                    // was requested but unavailable
};

/// Statistics kept by a stable-log device.
struct LogDeviceStats {
  uint64_t appends = 0;  // flush operations handed to the device
  uint64_t bytes_appended = 0;
  uint64_t forces = 0;   // synchronous flushes (commit, etc.)
  // Real backend only (zero on the simulator).
  uint64_t writev_batches = 0;  // pwritev calls draining staged chunks
  uint64_t writev_iovecs = 0;   // staged chunks coalesced into them
  uint64_t fdatasyncs = 0;      // actual device syncs issued
};

/// Non-volatile page store. Page writes are atomic (standard single-page
/// atomicity assumption); reads of never-written pages return zero images.
class Disk {
 public:
  virtual ~Disk() = default;

  /// Read a page into *out. A page never written reads as all-zero with
  /// page_lsn == kInvalidLsn. Returns IOError for a transient fault and
  /// Corruption when the stored image fails CRC32C verification.
  virtual Status ReadPage(PageId pid, PageImage* out) = 0;

  /// Atomically write a full page image (stored with a fresh CRC32C).
  virtual Status WritePage(PageId pid, const PageImage& image) = 0;

  /// Write `n` page-adjacent images (pages first..first+n-1) as one
  /// sequential device operation. Each page still counts as one page_write;
  /// on a transient fault, pages before the failing one remain written
  /// (rewriting a run is idempotent, so callers simply retry the run).
  virtual Status WritePageRun(PageId first, const PageImage* const* images,
                              size_t n) = 0;

  /// Drop a page (space deallocation). Subsequent reads return zeroes.
  virtual void DropPage(PageId pid) = 0;

  virtual bool Exists(PageId pid) const = 0;

  /// Number of distinct pages written and not dropped.
  virtual size_t PageCount() const = 0;

  virtual DiskStats stats() const = 0;
  virtual void ResetStats() = 0;

  /// The machine's fault injector (may be null).
  virtual FaultInjector* faults() const = 0;

  /// The cost-model clock this device charges (never null). Consumers use
  /// it for thread-lane accounting around parallel device work.
  virtual SimClock* clock() const = 0;
};

/// Append-only stable byte store. Offsets are stable log addresses.
class LogDevice {
 public:
  virtual ~LogDevice() = default;

  /// Append bytes; the caller waits for the device (WAL flushes).
  virtual Status Append(const uint8_t* data, size_t n) = 0;

  /// Append bytes without charging the current actor (background drain of
  /// the log buffer; the device works while the processor runs).
  virtual Status AppendAsync(const uint8_t* data, size_t n) = 0;

  /// Synchronous force: everything appended so far becomes durable. On the
  /// real backend this drains staged chunks with one pwritev and issues
  /// fdatasync; on the simulator it charges the force latency.
  virtual void Force() = 0;

  virtual uint64_t size() const = 0;

  /// Read n bytes at offset into out; Corruption if out of range.
  virtual Status ReadAt(uint64_t offset, size_t n, uint8_t* out) const = 0;

  /// Master record: the well-known location holding the LSN of the most
  /// recent checkpoint. Survives crashes.
  virtual void SetMasterLsn(Lsn lsn) = 0;
  virtual Lsn master_lsn() const = 0;

  /// Discard the log prefix before `offset` (truncation after checkpoint).
  /// Earlier offsets remain addressable but unreadable.
  virtual void TruncatePrefix(uint64_t offset) = 0;
  virtual uint64_t truncated_prefix() const = 0;

  /// Durable barrier: bytes below it are acknowledged durable and can never
  /// tear. Raised by the log writer after a force or a WAL-mandated flush.
  /// The real device makes the barrier physical (fdatasync) here.
  virtual void MarkDurableBarrier() = 0;
  virtual uint64_t durable_barrier() const = 0;

  /// Crash-injection hook: tear off up to the last n bytes, never below the
  /// durable barrier. The real device implements it with ftruncate.
  virtual void TearTail(size_t n) = 0;

  virtual FaultInjector* faults() const = 0;

  virtual LogDeviceStats stats() const = 0;
  virtual void ResetStats() = 0;
};

/// Hardware VM mirror of the heap's global page space: one virtual page per
/// heap page. The collector protects unscanned to-space pages at a flip;
/// `Touch` performs a real load from the mirror, so touching a protected
/// page takes a SIGSEGV that the mapping's handler resolves (unprotect +
/// count) before the load retries. The software scanned-bitmap remains the
/// authority — the mirror adds the hardware trap and its cost/count.
class HeapMapping {
 public:
  virtual ~HeapMapping() = default;

  /// Pages this mapping mirrors; Protect/Unprotect/Touch beyond the
  /// capacity are no-ops (the software barrier still guards such pages).
  virtual uint64_t capacity_pages() const = 0;

  /// mprotect(PROT_NONE) the mirror pages [first, first+count).
  virtual void Protect(PageId first, uint64_t count) = 0;

  /// mprotect(PROT_READ|PROT_WRITE) the mirror pages [first, first+count).
  virtual void Unprotect(PageId first, uint64_t count) = 0;

  /// Probe-load the mirror page; returns true when the load trapped (the
  /// page was protected — the handler unprotected it and counted the trap).
  virtual bool Touch(PageId pid) = 0;

  /// Total SIGSEGV traps resolved by this mapping's handler.
  virtual uint64_t trap_count() const = 0;
};

/// The non-volatile environment a heap lives on. It survives a crash;
/// everything else (buffer pool, log buffer, lock tables, in-memory GC
/// state) lives inside the StableHeap object and dies with it.
class Env {
 public:
  virtual ~Env() = default;

  /// The cost-model clock. The real backend owns one too (analytic charges
  /// still accumulate and keep recovery's lane accounting working); its
  /// meaningful timings are wall-clock, measured by the benches.
  virtual SimClock* clock() = 0;
  virtual Disk* disk() = 0;
  virtual LogDevice* log() = 0;
  virtual FaultInjector* faults() = 0;

  /// Hardware VM mirror driving the Ellis read barrier, or null when the
  /// backend has none (the simulator, or a real env with the barrier off).
  virtual HeapMapping* mapping() { return nullptr; }

  /// "sim" or "real"; stamped into bench output.
  virtual const char* backend_name() const = 0;
};

/// Parameters controlling a simulated crash (StableHeap::SimulateCrash):
/// how much of the dirty page set reaches disk first, and how much of the
/// un-acknowledged stable-log tail tears. Works on any backend — TearTail
/// is part of the LogDevice contract.
struct CrashOptions {
  /// Probability that each dirty, unpinned page reaches disk before the
  /// crash. 0 = crash with nothing written; 1 = everything unpinned written.
  double writeback_fraction = 0.5;
  /// Seed for the write-back subset choice.
  uint64_t seed = 1;
  /// Bytes to tear off the un-acknowledged stable-log tail (clamped to the
  /// last durable barrier; forced bytes can never tear).
  uint64_t tear_tail_bytes = 0;
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_ENV_H_
