#include "storage/real_log_device.h"

#include <errno.h>
#include <fcntl.h>
#include <limits.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "fault/fault_injector.h"
#include "util/crc32c.h"
#include "util/sim_clock.h"

namespace sheap {

namespace {

constexpr uint32_t kMasterMagic = 0x53484d52;  // "SHMR"
constexpr size_t kMasterBytes = 512;

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

StatusOr<std::unique_ptr<RealLogDevice>> RealLogDevice::Open(
    const std::string& prefix, SimClock* clock, FaultInjector* faults) {
  const std::string log_path = prefix + ".log";
  const std::string master_path = prefix + ".master";
  int log_fd = ::open(log_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (log_fd < 0) {
    return Status::IOError("open " + log_path + ": " + strerror(errno));
  }
  int master_fd =
      ::open(master_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (master_fd < 0) {
    ::close(log_fd);
    return Status::IOError("open " + master_path + ": " + strerror(errno));
  }
  auto dev = std::unique_ptr<RealLogDevice>(
      new RealLogDevice(log_fd, master_fd, prefix, clock, faults));

  struct stat st;
  if (fstat(log_fd, &st) != 0) {
    return Status::IOError("fstat " + log_path + ": " + strerror(errno));
  }
  MutexLock lock(&dev->mu_);
  dev->file_size_ = static_cast<uint64_t>(st.st_size);
  // A reopen only happens after the writing process is gone; whatever
  // reached the file is all the log there is, and recovery treats it as
  // the durable prefix (the record-CRC scan still rejects a torn final
  // record, exactly as on the simulator).
  dev->durable_barrier_ = dev->file_size_;
  dev->synced_size_ = dev->file_size_;

  uint8_t rec[kMasterBytes] = {0};
  ssize_t got = pread(master_fd, rec, kMasterBytes, 0);
  if (got == static_cast<ssize_t>(kMasterBytes) &&
      GetU32(rec) == kMasterMagic) {
    uint32_t crc = crc32c::Mask(crc32c::Value(rec + 8, 24));
    if (crc == GetU32(rec + 4)) {
      dev->master_lsn_ = GetU64(rec + 8);
      dev->truncated_prefix_ = GetU64(rec + 16);
    }
  }
  return dev;
}

RealLogDevice::~RealLogDevice() {
  ::close(log_fd_);
  ::close(master_fd_);
}

Status RealLogDevice::Append(const uint8_t* data, size_t n) {
#if SHEAP_FAULT_INJECTION
  if (faults_ != nullptr) {
    SHEAP_RETURN_IF_ERROR(faults_->OnIo("log.append"));
  }
#endif
  clock_->ChargeLogAppend(n);
  MutexLock lock(&mu_);
  ++stats_.appends;
  stats_.bytes_appended += n;
  staged_.emplace_back(data, data + n);
  staged_bytes_ += n;
  return Status::OK();
}

Status RealLogDevice::AppendAsync(const uint8_t* data, size_t n) {
#if SHEAP_FAULT_INJECTION
  if (faults_ != nullptr) {
    SHEAP_RETURN_IF_ERROR(faults_->OnIo("log.append"));
  }
#endif
  MutexLock lock(&mu_);
  ++stats_.appends;
  stats_.bytes_appended += n;
  staged_.emplace_back(data, data + n);
  staged_bytes_ += n;
  return Status::OK();
}

Status RealLogDevice::SyncLocked() {
  size_t next = 0;
  while (next < staged_.size()) {
    struct iovec iov[64];
    int cnt = 0;
    size_t batch_bytes = 0;
    for (size_t i = next; i < staged_.size() && cnt < 64; ++i, ++cnt) {
      iov[cnt].iov_base = staged_[i].data();
      iov[cnt].iov_len = staged_[i].size();
      batch_bytes += staged_[i].size();
    }
    size_t remaining = batch_bytes;
    int idx = 0;
    while (remaining > 0) {
      ssize_t wrote =
          pwritev(log_fd_, iov + idx, cnt - idx,
                  static_cast<off_t>(file_size_ + (batch_bytes - remaining)));
      if (wrote < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(prefix_ + ".log: pwritev: " + strerror(errno));
      }
      ++stats_.writev_batches;
      stats_.writev_iovecs += static_cast<uint64_t>(cnt - idx);
      remaining -= static_cast<size_t>(wrote);
      // Skip fully written iovecs; trim a partially written one.
      size_t w = static_cast<size_t>(wrote);
      while (w > 0 && iov[idx].iov_len <= w) {
        w -= iov[idx].iov_len;
        ++idx;
      }
      if (w > 0) {
        iov[idx].iov_base = static_cast<uint8_t*>(iov[idx].iov_base) + w;
        iov[idx].iov_len -= w;
      }
    }
    file_size_ += batch_bytes;
    next += static_cast<size_t>(cnt);
  }
  staged_.clear();
  staged_bytes_ = 0;
  if (file_size_ > synced_size_) {
    if (fdatasync(log_fd_) != 0) {
      return Status::IOError(prefix_ + ".log: fdatasync: " + strerror(errno));
    }
    ++stats_.fdatasyncs;
    synced_size_ = file_size_;
  }
  return Status::OK();
}

void RealLogDevice::Force() {
  clock_->ChargeLogForce();
  MutexLock lock(&mu_);
  ++stats_.forces;
  (void)SyncLocked();
}

void RealLogDevice::MarkDurableBarrier() {
  MutexLock lock(&mu_);
  if (SyncLocked().ok()) durable_barrier_ = file_size_;
}

Status RealLogDevice::ReadAt(uint64_t offset, size_t n, uint8_t* out) const {
  MutexLock lock(&mu_);
  if (offset < truncated_prefix_) {
    return Status::Corruption("log read before truncation point");
  }
  if (offset + n > file_size_ + staged_bytes_) {
    return Status::Corruption("log read past end of stable log");
  }
  size_t want = n;
  if (offset < file_size_) {
    size_t from_file = static_cast<size_t>(
        std::min<uint64_t>(want, file_size_ - offset));
    size_t done = 0;
    while (done < from_file) {
      ssize_t got = pread(log_fd_, out + done, from_file - done,
                          static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(prefix_ + ".log: pread: " + strerror(errno));
      }
      if (got == 0) {
        return Status::Corruption("log file shorter than expected");
      }
      done += static_cast<size_t>(got);
    }
    out += from_file;
    offset += from_file;
    want -= from_file;
  }
  // Remainder comes from the staged (not yet written) suffix.
  uint64_t pos = offset - file_size_;
  for (const std::vector<uint8_t>& chunk : staged_) {
    if (want == 0) break;
    if (pos >= chunk.size()) {
      pos -= chunk.size();
      continue;
    }
    size_t take = static_cast<size_t>(
        std::min<uint64_t>(want, chunk.size() - pos));
    std::memcpy(out, chunk.data() + pos, take);
    out += take;
    want -= take;
    pos = 0;
  }
  return want == 0 ? Status::OK()
                   : Status::Corruption("log read past end of stable log");
}

void RealLogDevice::WriteMasterLocked() {
  uint8_t rec[kMasterBytes] = {0};
  PutU32(rec, kMasterMagic);
  PutU64(rec + 8, master_lsn_);
  PutU64(rec + 16, truncated_prefix_);
  PutU32(rec + 4, crc32c::Mask(crc32c::Value(rec + 8, 24)));
  size_t done = 0;
  while (done < kMasterBytes) {
    ssize_t wrote = pwrite(master_fd_, rec + done, kMasterBytes - done,
                           static_cast<off_t>(done));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return;
    }
    done += static_cast<size_t>(wrote);
  }
  if (fdatasync(master_fd_) == 0) ++stats_.fdatasyncs;
}

void RealLogDevice::SetMasterLsn(Lsn lsn) {
  clock_->ChargeRandomIo(64);
  MutexLock lock(&mu_);
  master_lsn_ = lsn;
  WriteMasterLocked();
}

void RealLogDevice::TruncatePrefix(uint64_t offset) {
  MutexLock lock(&mu_);
  if (offset <= truncated_prefix_) return;
  truncated_prefix_ = offset;
  WriteMasterLocked();
}

void RealLogDevice::TearTail(size_t n) {
  MutexLock lock(&mu_);
  const uint64_t total = file_size_ + staged_bytes_;
  uint64_t new_size = total > n ? total - n : 0;
  if (new_size < durable_barrier_) new_size = durable_barrier_;
  if (new_size >= total) return;
  if (new_size >= file_size_) {
    // Only staged bytes tear: drop from the back of the staging buffer.
    uint64_t keep = new_size - file_size_;
    size_t i = 0;
    uint64_t acc = 0;
    while (i < staged_.size() && acc + staged_[i].size() <= keep) {
      acc += staged_[i].size();
      ++i;
    }
    if (i < staged_.size()) {
      staged_[i].resize(static_cast<size_t>(keep - acc));
      staged_.erase(staged_.begin() + static_cast<ptrdiff_t>(i) + 1,
                    staged_.end());
      if (staged_[i].empty()) staged_.pop_back();
    }
    staged_bytes_ = keep;
    return;
  }
  staged_.clear();
  staged_bytes_ = 0;
  if (ftruncate(log_fd_, static_cast<off_t>(new_size)) == 0) {
    file_size_ = new_size;
    if (synced_size_ > new_size) synced_size_ = new_size;
  }
}

}  // namespace sheap
