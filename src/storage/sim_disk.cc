#include "storage/sim_disk.h"

#include <string>

#include "fault/fault_injector.h"
#include "util/crc32c.h"

namespace sheap {

uint32_t SimDisk::PageCrc(const PageImage& image) {
  uint32_t crc = crc32c::Value(image.data.data(), image.data.size());
  crc = crc32c::Extend(crc, &image.page_lsn, sizeof(image.page_lsn));
  return crc32c::Mask(crc);
}

Status SimDisk::ReadPage(PageId pid, PageImage* out) {
#if SHEAP_FAULT_INJECTION
  if (faults_ != nullptr) {
    SHEAP_RETURN_IF_ERROR(faults_->OnIo("disk.read", pid));
    if (faults_->ConsumeBitRot("disk.read", pid)) {
      CorruptPage(pid, /*bit_index=*/6);
    }
  }
#endif
  MutexLock lock(&mu_);
  auto it = pages_.find(pid);
  if (it == pages_.end()) {
    // A page never written has no backing-store image: virtual memory
    // supplies a zero-filled frame without any I/O (fresh to-space pages
    // must be free to touch, or copying collection would pay a seek per
    // page it has never used).
    ++stats_.fresh_reads;
    *out = PageImage();
    return Status::OK();
  }
  clock_->ChargeRandomIo(kPageSizeBytes);
  ++stats_.page_reads;
  if (PageCrc(it->second.image) != it->second.crc) {
    ++stats_.crc_failures;
    return Status::Corruption("page " + std::to_string(pid) +
                              " failed CRC32C verification (bit rot)");
  }
  *out = it->second.image;
  return Status::OK();
}

Status SimDisk::WritePage(PageId pid, const PageImage& image) {
#if SHEAP_FAULT_INJECTION
  if (faults_ != nullptr) {
    SHEAP_RETURN_IF_ERROR(faults_->OnIo("disk.write", pid));
  }
#endif
  MutexLock lock(&mu_);
  clock_->ChargeRandomIo(kPageSizeBytes);
  ++stats_.page_writes;
  pages_[pid] = StoredPage{image, PageCrc(image)};
  return Status::OK();
}

Status SimDisk::WritePageRun(PageId first, const PageImage* const* images,
                             size_t n) {
  if (n == 0) return Status::OK();
  // One seek positions the head; each page then pays only transfer cost.
  clock_->Advance(clock_->model().disk_seek_ns +
                  clock_->model().disk_transfer_ns_per_kib *
                      ((n * kPageSizeBytes + 1023) / 1024));
  for (size_t i = 0; i < n; ++i) {
    const PageId pid = first + i;
#if SHEAP_FAULT_INJECTION
    if (faults_ != nullptr) {
      SHEAP_RETURN_IF_ERROR(faults_->OnIo("disk.write", pid));
    }
#endif
    MutexLock lock(&mu_);
    ++stats_.page_writes;
    ++stats_.run_pages;
    pages_[pid] = StoredPage{*images[i], PageCrc(*images[i])};
  }
  MutexLock lock(&mu_);
  ++stats_.run_writes;
  return Status::OK();
}

void SimDisk::DropPage(PageId pid) {
  MutexLock lock(&mu_);
  pages_.erase(pid);
}

void SimDisk::CorruptPage(PageId pid, uint32_t bit_index) {
  MutexLock lock(&mu_);
  auto it = pages_.find(pid);
  if (it == pages_.end()) return;
  PageImage& image = it->second.image;
  image.data[(bit_index / 8) % image.data.size()] ^=
      static_cast<uint8_t>(1u << (bit_index % 8));
}

}  // namespace sheap
