#include "storage/sim_disk.h"

namespace sheap {

Status SimDisk::ReadPage(PageId pid, PageImage* out) {
  auto it = pages_.find(pid);
  if (it == pages_.end()) {
    // A page never written has no backing-store image: virtual memory
    // supplies a zero-filled frame without any I/O (fresh to-space pages
    // must be free to touch, or copying collection would pay a seek per
    // page it has never used).
    ++stats_.fresh_reads;
    *out = PageImage();
    return Status::OK();
  }
  clock_->ChargeRandomIo(kPageSizeBytes);
  ++stats_.page_reads;
  *out = it->second;
  return Status::OK();
}

Status SimDisk::WritePage(PageId pid, const PageImage& image) {
  clock_->ChargeRandomIo(kPageSizeBytes);
  ++stats_.page_writes;
  pages_[pid] = image;
  return Status::OK();
}

void SimDisk::DropPage(PageId pid) { pages_.erase(pid); }

}  // namespace sheap
