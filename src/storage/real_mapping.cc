#include "storage/real_mapping.h"

#include <errno.h>
#include <signal.h>
#include <string.h>
#include <sys/mman.h>

#include <algorithm>
#include <mutex>  // std::call_once (no sheap::Mutex in a signal path)
#include <string>

namespace sheap {

namespace {

// Process-wide registry of live mappings, scanned by the signal handler.
// Fixed-size lock-free array: the handler cannot take locks or allocate.
constexpr int kMaxMappings = 16;
std::atomic<RealMapping*> g_mappings[kMaxMappings];

std::once_flag g_handler_once;
struct sigaction g_prev_action;

// Set by the handler when the fault was a barrier trap; read by Touch on
// the same thread right after the probing load.
thread_local volatile sig_atomic_t t_trapped = 0;

void BarrierSignalHandler(int signo, siginfo_t* info, void* ucontext) {
  void* addr = info != nullptr ? info->si_addr : nullptr;
  if (addr != nullptr) {
    for (int i = 0; i < kMaxMappings; ++i) {
      RealMapping* m = g_mappings[i].load(std::memory_order_acquire);
      if (m != nullptr && m->HandleFault(addr)) {
        t_trapped = 1;
        return;  // the faulting load retries against the unprotected page
      }
    }
  }
  // Not ours: restore the previous disposition and re-raise so a genuine
  // wild access still dies (or reaches a debugger/sanitizer handler).
  if (g_prev_action.sa_flags & SA_SIGINFO) {
    if (g_prev_action.sa_sigaction != nullptr) {
      g_prev_action.sa_sigaction(signo, info, ucontext);
      return;
    }
  } else if (g_prev_action.sa_handler != SIG_DFL &&
             g_prev_action.sa_handler != SIG_IGN &&
             g_prev_action.sa_handler != nullptr) {
    g_prev_action.sa_handler(signo);
    return;
  }
  signal(SIGSEGV, SIG_DFL);
  raise(SIGSEGV);
}

void InstallHandler() {
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = BarrierSignalHandler;
  sa.sa_flags = SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGSEGV, &sa, &g_prev_action);
}

}  // namespace

StatusOr<std::unique_ptr<RealMapping>> RealMapping::Create(
    uint64_t capacity_pages) {
  if (capacity_pages == 0) {
    return Status::InvalidArgument("mapping needs >= 1 page");
  }
  const size_t len = static_cast<size_t>(capacity_pages) * kPageSizeBytes;
  void* base = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (base == MAP_FAILED) {
    return Status::IOError("mmap barrier mirror: " +
                           std::string(strerror(errno)));
  }
  auto mapping = std::unique_ptr<RealMapping>(
      new RealMapping(static_cast<uint8_t*>(base), capacity_pages));
  std::call_once(g_handler_once, InstallHandler);
  for (int i = 0; i < kMaxMappings; ++i) {
    RealMapping* expected = nullptr;
    if (g_mappings[i].compare_exchange_strong(expected, mapping.get(),
                                              std::memory_order_release)) {
      return mapping;
    }
  }
  return Status::Internal("too many live barrier mappings");
}

RealMapping::~RealMapping() {
  for (int i = 0; i < kMaxMappings; ++i) {
    RealMapping* expected = this;
    g_mappings[i].compare_exchange_strong(expected, nullptr,
                                          std::memory_order_release);
  }
  munmap(base_, static_cast<size_t>(capacity_pages_) * kPageSizeBytes);
}

void RealMapping::Protect(PageId first, uint64_t count) {
  if (first >= capacity_pages_) return;
  count = std::min(count, capacity_pages_ - first);
  if (count == 0) return;
  mprotect(base_ + first * kPageSizeBytes,
           static_cast<size_t>(count) * kPageSizeBytes, PROT_NONE);
}

void RealMapping::Unprotect(PageId first, uint64_t count) {
  if (first >= capacity_pages_) return;
  count = std::min(count, capacity_pages_ - first);
  if (count == 0) return;
  mprotect(base_ + first * kPageSizeBytes,
           static_cast<size_t>(count) * kPageSizeBytes,
           PROT_READ | PROT_WRITE);
}

bool RealMapping::HandleFault(void* addr) {
  uint8_t* p = static_cast<uint8_t*>(addr);
  if (p < base_ ||
      p >= base_ + static_cast<size_t>(capacity_pages_) * kPageSizeBytes) {
    return false;
  }
  uint8_t* page = base_ + (static_cast<size_t>(p - base_) / kPageSizeBytes) *
                              kPageSizeBytes;
  // Unprotect just the faulting page; the interrupted load then succeeds.
  if (mprotect(page, kPageSizeBytes, PROT_READ | PROT_WRITE) != 0) {
    return false;  // fall through to the crash path
  }
  traps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool RealMapping::Touch(PageId pid) {
  if (pid >= capacity_pages_) return false;
  t_trapped = 0;
  // The probing load: reads the first byte of the mirror page. If the page
  // is protected this raises SIGSEGV, the handler unprotects + counts, and
  // the load retries. `volatile` keeps the compiler from eliding it.
  volatile uint8_t* probe = base_ + pid * kPageSizeBytes;
  (void)*probe;
  return t_trapped != 0;
}

}  // namespace sheap
