// SimDisk: the non-volatile page store backing the heap's one-level store.
//
// Crash semantics (paper §2.2.2): on a system failure main memory is lost but
// the disk survives. SimDisk *is* the disk, so it survives by construction —
// a crash is simulated by discarding the buffer pool while keeping the
// SimDisk. Page writes are atomic (standard single-page atomicity
// assumption).

#ifndef SHEAP_STORAGE_SIM_DISK_H_
#define SHEAP_STORAGE_SIM_DISK_H_

#include <cstdint>
#include <unordered_map>

#include "common/status.h"
#include "storage/page.h"
#include "util/sim_clock.h"

namespace sheap {

/// Statistics kept by the simulated disk.
struct DiskStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t fresh_reads = 0;  // zero-fill faults: no backing image, no I/O
};

/// Sparse array of page images, charging random-I/O cost to the SimClock.
class SimDisk {
 public:
  explicit SimDisk(SimClock* clock) : clock_(clock) {}

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Read a page into *out. A page never written reads as all-zero with
  /// page_lsn == kInvalidLsn (the store is logically zero-initialized,
  /// matching a freshly allocated backing file).
  Status ReadPage(PageId pid, PageImage* out);

  /// Atomically write a full page image.
  Status WritePage(PageId pid, const PageImage& image);

  /// Drop a page (space deallocation). Subsequent reads return zeroes.
  void DropPage(PageId pid);

  bool Exists(PageId pid) const { return pages_.count(pid) > 0; }

  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats(); }

  /// Number of distinct pages ever written and not dropped.
  size_t PageCount() const { return pages_.size(); }

 private:
  SimClock* clock_;
  std::unordered_map<PageId, PageImage> pages_;
  DiskStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_SIM_DISK_H_
