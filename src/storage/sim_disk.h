// SimDisk: the non-volatile page store backing the heap's one-level store.
//
// Crash semantics (paper §2.2.2): on a system failure main memory is lost but
// the disk survives. SimDisk *is* the disk, so it survives by construction —
// a crash is simulated by discarding the buffer pool while keeping the
// SimDisk. Page writes are atomic (standard single-page atomicity
// assumption).
//
// Every stored page carries a CRC32C over its image; reads verify it and
// report bit-rot (media decay, injected via FaultInjector or CorruptPage)
// as a typed Corruption status instead of handing garbage to the heap.
// Reads and writes can also fail with transient IOErrors when a fault is
// armed; callers (BufferPool) retry with bounded backoff.

#ifndef SHEAP_STORAGE_SIM_DISK_H_
#define SHEAP_STORAGE_SIM_DISK_H_

#include <cstdint>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/env.h"
#include "storage/page.h"
#include "util/sim_clock.h"

namespace sheap {

class FaultInjector;

/// Sparse array of page images, charging random-I/O cost to the SimClock.
class SimDisk final : public Disk {
 public:
  explicit SimDisk(SimClock* clock, FaultInjector* faults = nullptr)
      : clock_(clock), faults_(faults) {}

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Read a page into *out. A page never written reads as all-zero with
  /// page_lsn == kInvalidLsn (the store is logically zero-initialized,
  /// matching a freshly allocated backing file). Returns IOError for an
  /// injected transient fault and Corruption when the stored image fails
  /// CRC32C verification (bit rot).
  Status ReadPage(PageId pid, PageImage* out) override SHEAP_EXCLUDES(mu_);

  /// Atomically write a full page image (stored with a fresh CRC32C).
  Status WritePage(PageId pid, const PageImage& image) override
      SHEAP_EXCLUDES(mu_);

  /// Write `n` page-adjacent images (pages first..first+n-1) as one
  /// sequential device operation: a single seek plus per-page transfer,
  /// instead of n random I/Os. This is the coalescing win the parallel
  /// flush path exploits. Each page still counts as one page_write, fires
  /// its own "disk.write" fault site, and is stored with a fresh CRC32C;
  /// on a transient fault, pages before the failing one remain written
  /// (rewriting a run is idempotent, so callers simply retry the run).
  Status WritePageRun(PageId first, const PageImage* const* images,
                      size_t n) override SHEAP_EXCLUDES(mu_);

  /// Drop a page (space deallocation). Subsequent reads return zeroes.
  void DropPage(PageId pid) override SHEAP_EXCLUDES(mu_);

  /// Test hook: flip one bit of a stored page's image without updating its
  /// CRC, modeling silent media decay. No-op if the page was never written.
  void CorruptPage(PageId pid, uint32_t bit_index) SHEAP_EXCLUDES(mu_);

  bool Exists(PageId pid) const override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pages_.count(pid) > 0;
  }

  FaultInjector* faults() const override { return faults_; }
  SimClock* clock() const override { return clock_; }

  /// Snapshot of the counters (copied under the lock; flush writers and
  /// redo workers bump them concurrently).
  DiskStats stats() const override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = DiskStats();
  }

  /// Number of distinct pages ever written and not dropped.
  size_t PageCount() const override SHEAP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pages_.size();
  }

 private:
  struct StoredPage {
    PageImage image;
    uint32_t crc = 0;  // CRC32C over image.data + image.page_lsn
  };

  static uint32_t PageCrc(const PageImage& image);

  SimClock* clock_;
  FaultInjector* faults_;
  /// Guards pages_ and stats_: parallel redo workers read pages and the
  /// flush writer pool stores runs concurrently. Simulated-time charges go
  /// through SimClock's thread-local sink, so they need no lock here.
  /// Leaf lock (rank 5): nothing else is acquired while holding it.
  mutable Mutex mu_;
  std::unordered_map<PageId, StoredPage> pages_ SHEAP_GUARDED_BY(mu_);
  mutable DiskStats stats_ SHEAP_GUARDED_BY(mu_);
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_SIM_DISK_H_
