#include "storage/real_env.h"

#include <errno.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>

namespace sheap {

StatusOr<std::unique_ptr<RealEnv>> RealEnv::Create(
    const RealEnvOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("RealEnv needs a directory");
  }
  if (mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + options.dir + ": " + strerror(errno));
  }
  auto env = std::unique_ptr<RealEnv>(new RealEnv(options));
  auto disk = RealDisk::Open(options.dir + "/pages.db", options.direct_io,
                             &env->clock_, &env->faults_);
  SHEAP_RETURN_IF_ERROR(disk.status());
  env->disk_ = std::move(disk.value());
  auto log =
      RealLogDevice::Open(options.dir + "/wal", &env->clock_, &env->faults_);
  SHEAP_RETURN_IF_ERROR(log.status());
  env->log_ = std::move(log.value());
  if (options.hardware_barrier) {
    auto mapping = RealMapping::Create(options.mapping_capacity_pages);
    SHEAP_RETURN_IF_ERROR(mapping.status());
    env->mapping_ = std::move(mapping.value());
  }
  env->faults_.Bind(&env->clock_, env->log_.get());
  return env;
}

}  // namespace sheap
