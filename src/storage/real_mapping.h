// RealMapping: the mmap/mprotect mirror that drives the Ellis read barrier
// in hardware (paper §4.2: "the collector uses the virtual memory system to
// protect unscanned pages; a mutator access to a protected page traps").
//
// One anonymous MAP_NORESERVE mapping holds a virtual page per heap page.
// At a flip the collector mprotect(PROT_NONE)s the mirror pages of every
// unscanned to-space page; EnsureAccess probes the mirror with a real load
// before the software scanned-bitmap check. A probe of a protected page
// raises SIGSEGV; the process-wide handler finds the owning mapping,
// mprotects that single page back to PROT_READ|PROT_WRITE, counts the
// trap, flags the probing thread, and returns — the faulting load retries
// and succeeds, exactly the Appel-Ellis-Li trap discipline. A SIGSEGV
// outside any registered mapping is re-raised with the default disposition
// (a genuine crash stays a crash).
//
// The software bitmap remains the authority for barrier *semantics*; the
// mirror contributes the hardware trap cost and count, which is what E18
// measures against the simulated per-access check.

#ifndef SHEAP_STORAGE_REAL_MAPPING_H_
#define SHEAP_STORAGE_REAL_MAPPING_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/env.h"
#include "storage/page.h"

namespace sheap {

/// mprotect-backed HeapMapping; see file comment.
class RealMapping final : public HeapMapping {
 public:
  /// Reserve a mirror of `capacity_pages` virtual pages (MAP_NORESERVE:
  /// untouched pages cost no memory) and install the process-wide SIGSEGV
  /// handler on first use.
  static StatusOr<std::unique_ptr<RealMapping>> Create(
      uint64_t capacity_pages);
  ~RealMapping() override;

  RealMapping(const RealMapping&) = delete;
  RealMapping& operator=(const RealMapping&) = delete;

  uint64_t capacity_pages() const override { return capacity_pages_; }

  void Protect(PageId first, uint64_t count) override;
  void Unprotect(PageId first, uint64_t count) override;
  bool Touch(PageId pid) override;

  uint64_t trap_count() const override {
    return traps_.load(std::memory_order_relaxed);
  }

  /// The SIGSEGV handler entry: true when `addr` belongs to this mapping
  /// (the page has been unprotected and the trap counted). Async-signal
  /// safe: mprotect + atomics only.
  bool HandleFault(void* addr);

 private:
  RealMapping(uint8_t* base, uint64_t capacity_pages)
      : base_(base), capacity_pages_(capacity_pages) {}

  uint8_t* const base_;
  const uint64_t capacity_pages_;
  std::atomic<uint64_t> traps_{0};
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_REAL_MAPPING_H_
