// SimEnv: the simulated non-volatile environment. It survives a "crash";
// everything else (buffer pool, log buffer, lock tables, in-memory GC state)
// lives inside the StableHeap object and dies with it.
//
// Crash protocol used by tests/benches:
//   1. Optionally let the background writer push a random subset of dirty
//      pages to disk (each such write follows the WAL constraint, exactly as
//      it would have before a real crash).
//   2. Optionally tear the un-acknowledged tail of the stable log (bytes
//      appended after the last durable barrier), modeling a flush in flight.
//   3. Destroy the StableHeap (main memory lost).
//   4. Re-open a StableHeap on the same SimEnv; recovery runs.

#ifndef SHEAP_STORAGE_SIM_ENV_H_
#define SHEAP_STORAGE_SIM_ENV_H_

#include <cstdint>

#include "fault/fault_injector.h"
#include "storage/env.h"
#include "storage/sim_disk.h"
#include "storage/sim_log_device.h"
#include "util/sim_clock.h"

namespace sheap {

/// Owns the simulated clock, disk, stable log, and the fault injector.
/// Create one per "machine"; reuse it across StableHeap open/crash/reopen
/// cycles. The injector lives here — like an external crash rig, its armed
/// faults and statistics survive the heap dying and being reopened.
///
/// Accessors covariantly narrow Env's: code holding a SimEnv keeps the
/// concrete SimDisk/SimLogDevice surfaces (CorruptPage, raw log bytes, torn
/// tails) without casts.
class SimEnv final : public Env {
 public:
  SimEnv() : disk_(&clock_, &faults_), log_(&clock_, &faults_) {
    faults_.Bind(&clock_, &log_);
  }
  explicit SimEnv(const CostModel& model)
      : clock_(model), disk_(&clock_, &faults_), log_(&clock_, &faults_) {
    faults_.Bind(&clock_, &log_);
  }

  SimEnv(const SimEnv&) = delete;
  SimEnv& operator=(const SimEnv&) = delete;

  SimClock* clock() override { return &clock_; }
  SimDisk* disk() override { return &disk_; }
  SimLogDevice* log() override { return &log_; }
  FaultInjector* faults() override { return &faults_; }
  const char* backend_name() const override { return "sim"; }

 private:
  SimClock clock_;
  FaultInjector faults_;
  SimDisk disk_;
  SimLogDevice log_;
};

}  // namespace sheap

#endif  // SHEAP_STORAGE_SIM_ENV_H_
