#include "heap/object.h"

// Header-only; TU keeps the build graph uniform.
namespace sheap {}
