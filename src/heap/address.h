// Heap addresses: byte addresses in the one-level store (paper §2.2.1).
// Word-aligned; page = addr / kPageSizeBytes. Address 0 is the null pointer.

#ifndef SHEAP_HEAP_ADDRESS_H_
#define SHEAP_HEAP_ADDRESS_H_

#include <cstdint>

#include "storage/page.h"

namespace sheap {

/// Byte address within the heap's virtual store. 0 = null.
using HeapAddr = uint64_t;
constexpr HeapAddr kNullAddr = 0;

inline PageId PageOf(HeapAddr a) { return a / kPageSizeBytes; }
inline uint32_t OffsetInPage(HeapAddr a) {
  return static_cast<uint32_t>(a % kPageSizeBytes);
}
inline uint32_t WordInPage(HeapAddr a) {
  return OffsetInPage(a) / kWordSizeBytes;
}
inline bool IsWordAligned(HeapAddr a) { return (a % kWordSizeBytes) == 0; }

}  // namespace sheap

#endif  // SHEAP_HEAP_ADDRESS_H_
