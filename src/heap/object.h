// Object model (paper §2.1, §3.2.1).
//
// An object is a header word followed by nslots 8-byte slots. The header
// word carries the object's low-level type (class id) and length, which is
// what lets the collector parse objects on an arbitrary page (§3.2.1's
// object descriptors). When an object has been copied to to-space, its
// from-space header word is overwritten by a forwarding pointer (§3.1).
//
// Header word layout (64 bits):
//   [63:62] tag: 01 = header, 10 = forwarding pointer
//   [61:40] class id (22 bits)
//   [39:0]  nslots (40 bits)
// Forwarding word: tag 10 | to-space address in [61:0].

#ifndef SHEAP_HEAP_OBJECT_H_
#define SHEAP_HEAP_OBJECT_H_

#include <cstdint>

#include "common/check.h"
#include "heap/address.h"

namespace sheap {

/// Index into the TypeRegistry's pointer maps.
using ClassId = uint32_t;

constexpr uint64_t kTagShift = 62;
constexpr uint64_t kTagMask = 3ULL << kTagShift;
constexpr uint64_t kTagHeader = 1ULL << kTagShift;
constexpr uint64_t kTagForward = 2ULL << kTagShift;

constexpr uint32_t kClassBits = 22;
constexpr uint32_t kNslotsBits = 40;
constexpr uint64_t kMaxClassId = (1ULL << kClassBits) - 1;
constexpr uint64_t kMaxNslots = (1ULL << kNslotsBits) - 1;

/// Decoded object header.
struct ObjectHeader {
  ClassId class_id = 0;
  uint64_t nslots = 0;

  /// Total footprint in words including the header word.
  uint64_t TotalWords() const { return 1 + nslots; }
};

inline uint64_t EncodeHeader(ClassId class_id, uint64_t nslots) {
  SHEAP_DCHECK(class_id <= kMaxClassId);
  SHEAP_DCHECK(nslots <= kMaxNslots);
  return kTagHeader | (static_cast<uint64_t>(class_id) << kNslotsBits) |
         nslots;
}

inline bool IsHeaderWord(uint64_t w) { return (w & kTagMask) == kTagHeader; }
inline bool IsForwardWord(uint64_t w) { return (w & kTagMask) == kTagForward; }

inline ObjectHeader DecodeHeader(uint64_t w) {
  SHEAP_DCHECK(IsHeaderWord(w));
  ObjectHeader h;
  h.class_id = static_cast<ClassId>((w >> kNslotsBits) &
                                    ((1ULL << kClassBits) - 1));
  h.nslots = w & kMaxNslots;
  return h;
}

inline uint64_t MakeForwardWord(HeapAddr to) {
  SHEAP_DCHECK((to & kTagMask) == 0);
  return kTagForward | to;
}

inline HeapAddr ForwardTarget(uint64_t w) {
  SHEAP_DCHECK(IsForwardWord(w));
  return w & ~kTagMask;
}

/// Byte address of slot `i` of the object whose header is at `base`.
inline HeapAddr SlotAddr(HeapAddr base, uint64_t i) {
  return base + (1 + i) * kWordSizeBytes;
}

/// Inverse of SlotAddr when the base is known: slot index of a slot address.
inline uint64_t SlotIndex(HeapAddr base, HeapAddr slot_addr) {
  SHEAP_DCHECK(slot_addr > base);
  return (slot_addr - base) / kWordSizeBytes - 1;
}

}  // namespace sheap

#endif  // SHEAP_HEAP_OBJECT_H_
