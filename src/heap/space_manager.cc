#include "heap/space_manager.h"

#include <algorithm>

#include "common/check.h"

namespace sheap {

StatusOr<SpaceId> SpaceManager::Allocate(uint64_t npages, Area area) {
  if (npages == 0) return Status::InvalidArgument("empty space");
  Space sp;
  sp.id = next_space_id_++;
  sp.base_page = next_page_;
  sp.npages = npages;
  sp.area = area;
  next_page_ += npages;
  spaces_.push_back(sp);

  LogRecord rec;
  rec.type = RecordType::kSpaceAlloc;
  rec.aux = sp.id;
  rec.page = sp.base_page;
  rec.count = sp.npages;
  rec.new_word = static_cast<uint64_t>(area);
  log_->Append(&rec);
  return sp.id;
}

Status SpaceManager::Free(SpaceId id) {
  for (auto& sp : spaces_) {
    if (sp.id != id) continue;
    if (sp.freed) return Status::InvalidArgument("space already freed");
    sp.freed = true;
    LogRecord rec;
    rec.type = RecordType::kSpaceFree;
    rec.aux = id;
    const Lsn lsn = log_->Append(&rec);
    // The WAL rule applies to deallocation too: dropping the pages destroys
    // state that repeating history may still need if the free record were
    // lost with the log suffix. One buffered flush per space free.
    SHEAP_RETURN_IF_ERROR(log_->FlushTo(lsn));
    pool_->DropRange(sp.base_page, sp.npages);
    for (PageId p = sp.base_page; p < sp.base_page + sp.npages; ++p) {
      disk_->DropPage(p);
    }
    return Status::OK();
  }
  return Status::NotFound("unknown space");
}

const Space* SpaceManager::Find(SpaceId id) const {
  for (const auto& sp : spaces_) {
    if (sp.id == id) return &sp;
  }
  return nullptr;
}

const Space* SpaceManager::Containing(HeapAddr a) const {
  for (const auto& sp : spaces_) {
    if (sp.Contains(a)) return &sp;
  }
  return nullptr;
}

void SpaceManager::ApplyAllocRecord(const LogRecord& rec) {
  SHEAP_CHECK(rec.type == RecordType::kSpaceAlloc);
  // Idempotent: the space may already be known from the checkpoint.
  if (Find(static_cast<SpaceId>(rec.aux)) != nullptr) return;
  Space sp;
  sp.id = static_cast<SpaceId>(rec.aux);
  sp.base_page = rec.page;
  sp.npages = rec.count;
  sp.area = static_cast<Area>(rec.new_word);
  spaces_.push_back(sp);
  next_space_id_ = std::max(next_space_id_, sp.id + 1);
  next_page_ = std::max(next_page_, sp.base_page + sp.npages);
}

void SpaceManager::ApplyFreeRecord(const LogRecord& rec) {
  SHEAP_CHECK(rec.type == RecordType::kSpaceFree);
  for (auto& sp : spaces_) {
    if (sp.id == rec.aux) {
      sp.freed = true;
      return;
    }
  }
  // Free of a space allocated before the truncation point and absent from
  // the checkpoint cannot happen (checkpoints carry the full space table).
  SHEAP_CHECK(false && "kSpaceFree for unknown space");
}

void SpaceManager::DropFreedFromDisk() {
  for (const auto& sp : spaces_) {
    if (!sp.freed) continue;
    for (PageId p = sp.base_page; p < sp.base_page + sp.npages; ++p) {
      disk_->DropPage(p);
    }
  }
}

void SpaceManager::EncodeTo(Encoder* enc) const {
  enc->PutVarint(next_space_id_);
  enc->PutVarint(next_page_);
  enc->PutVarint(spaces_.size());
  for (const auto& sp : spaces_) {
    enc->PutVarint(sp.id);
    enc->PutVarint(sp.base_page);
    enc->PutVarint(sp.npages);
    enc->PutU8(static_cast<uint8_t>(sp.area));
    enc->PutU8(sp.freed ? 1 : 0);
  }
}

Status SpaceManager::DecodeFrom(Decoder* dec) {
  spaces_.clear();
  uint64_t next_id, next_page, n;
  if (!dec->GetVarint(&next_id) || !dec->GetVarint(&next_page) ||
      !dec->GetVarint(&n)) {
    return Status::Corruption("bad space table");
  }
  next_space_id_ = static_cast<SpaceId>(next_id);
  next_page_ = next_page;
  for (uint64_t i = 0; i < n; ++i) {
    Space sp;
    uint64_t id, base, npages;
    uint8_t area, freed;
    if (!dec->GetVarint(&id) || !dec->GetVarint(&base) ||
        !dec->GetVarint(&npages) || !dec->GetU8(&area) ||
        !dec->GetU8(&freed)) {
      return Status::Corruption("bad space entry");
    }
    sp.id = static_cast<SpaceId>(id);
    sp.base_page = base;
    sp.npages = npages;
    sp.area = static_cast<Area>(area);
    sp.freed = freed != 0;
    spaces_.push_back(sp);
  }
  return Status::OK();
}

}  // namespace sheap
