#include "heap/handle_table.h"

#include "common/check.h"

namespace sheap {

Ref HandleTable::Create(TxnId owner, HeapAddr addr) {
  uint32_t index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
  } else {
    index = static_cast<uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  Entry& e = entries_[index];
  e.addr = addr;
  e.owner = owner;
  ++e.generation;
  e.in_use = true;
  // Ref layout: [63:48] generation, [47:0] index+1.
  return (static_cast<uint64_t>(e.generation) << kIndexBits) |
         (static_cast<uint64_t>(index) + 1);
}

const HandleTable::Entry* HandleTable::Lookup(Ref ref) const {
  if (ref == kNullRef) return nullptr;
  uint64_t index = (ref & kIndexMask) - 1;
  if (index >= entries_.size()) return nullptr;
  const Entry& e = entries_[index];
  if (!e.in_use || e.generation != static_cast<uint16_t>(ref >> kIndexBits)) {
    return nullptr;
  }
  return &e;
}

StatusOr<HeapAddr> HandleTable::Get(Ref ref) const {
  const Entry* e = Lookup(ref);
  if (e == nullptr) return Status::InvalidArgument("stale or null handle");
  return e->addr;
}

Status HandleTable::Set(Ref ref, HeapAddr addr) {
  const Entry* e = Lookup(ref);
  if (e == nullptr) return Status::InvalidArgument("stale or null handle");
  const_cast<Entry*>(e)->addr = addr;
  return Status::OK();
}

StatusOr<TxnId> HandleTable::Owner(Ref ref) const {
  const Entry* e = Lookup(ref);
  if (e == nullptr) return Status::InvalidArgument("stale or null handle");
  return e->owner;
}

void HandleTable::ReleaseTxn(TxnId txn) {
  SHEAP_CHECK(txn != kNoTxn);
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.in_use && e.owner == txn) {
      e.in_use = false;
      e.addr = kNullAddr;
      free_list_.push_back(i);
    }
  }
}

Status HandleTable::Release(Ref ref) {
  const Entry* e = Lookup(ref);
  if (e == nullptr) return Status::InvalidArgument("stale or null handle");
  auto* me = const_cast<Entry*>(e);
  me->in_use = false;
  me->addr = kNullAddr;
  free_list_.push_back(static_cast<uint32_t>((ref & kIndexMask) - 1));
  return Status::OK();
}

size_t HandleTable::LiveCount() const {
  size_t n = 0;
  for (const auto& e : entries_) n += e.in_use ? 1 : 0;
  return n;
}

}  // namespace sheap
