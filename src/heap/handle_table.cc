#include "heap/handle_table.h"

#include "common/check.h"

namespace sheap {

Ref HandleTable::Create(TxnId owner, HeapAddr addr) {
  const uint32_t si = static_cast<uint32_t>(
      round_robin_.fetch_add(1, std::memory_order_relaxed) % kShards);
  Shard& shard = shards_[si];
  MutexLock lock(&shard.mu);
  uint32_t local;
  if (!shard.free_list.empty()) {
    local = shard.free_list.back();
    shard.free_list.pop_back();
  } else {
    local = static_cast<uint32_t>(shard.entries.size());
    shard.entries.emplace_back();
  }
  Entry& e = shard.entries[local];
  e.addr = addr;
  e.owner = owner;
  ++e.generation;
  e.in_use = true;
  const uint64_t index = static_cast<uint64_t>(local) * kShards + si;
  // Ref layout: [63:48] generation, [47:0] global index+1.
  return (static_cast<uint64_t>(e.generation) << kIndexBits) | (index + 1);
}

const HandleTable::Entry* HandleTable::LookupLocked(const Shard& shard,
                                                    Ref ref) const {
  const uint64_t index = (ref & kIndexMask) - 1;
  const uint64_t local = index / kShards;
  if (local >= shard.entries.size()) return nullptr;
  const Entry& e = shard.entries[local];
  if (!e.in_use || e.generation != static_cast<uint16_t>(ref >> kIndexBits)) {
    return nullptr;
  }
  return &e;
}

StatusOr<HeapAddr> HandleTable::Get(Ref ref) const {
  if (ref == kNullRef) return Status::InvalidArgument("stale or null handle");
  const Shard& shard = shards_[((ref & kIndexMask) - 1) % kShards];
  MutexLock lock(&shard.mu);
  const Entry* e = LookupLocked(shard, ref);
  if (e == nullptr) return Status::InvalidArgument("stale or null handle");
  return e->addr;
}

Status HandleTable::Set(Ref ref, HeapAddr addr) {
  if (ref == kNullRef) return Status::InvalidArgument("stale or null handle");
  Shard& shard = shards_[((ref & kIndexMask) - 1) % kShards];
  MutexLock lock(&shard.mu);
  const Entry* e = LookupLocked(shard, ref);
  if (e == nullptr) return Status::InvalidArgument("stale or null handle");
  const_cast<Entry*>(e)->addr = addr;
  return Status::OK();
}

StatusOr<TxnId> HandleTable::Owner(Ref ref) const {
  if (ref == kNullRef) return Status::InvalidArgument("stale or null handle");
  const Shard& shard = shards_[((ref & kIndexMask) - 1) % kShards];
  MutexLock lock(&shard.mu);
  const Entry* e = LookupLocked(shard, ref);
  if (e == nullptr) return Status::InvalidArgument("stale or null handle");
  return e->owner;
}

void HandleTable::ReleaseTxn(TxnId txn) {
  SHEAP_CHECK(txn != kNoTxn);
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (uint32_t i = 0; i < shard.entries.size(); ++i) {
      Entry& e = shard.entries[i];
      if (e.in_use && e.owner == txn) {
        e.in_use = false;
        e.addr = kNullAddr;
        shard.free_list.push_back(i);
      }
    }
  }
}

Status HandleTable::Release(Ref ref) {
  if (ref == kNullRef) return Status::InvalidArgument("stale or null handle");
  const uint64_t index = (ref & kIndexMask) - 1;
  Shard& shard = shards_[index % kShards];
  MutexLock lock(&shard.mu);
  const Entry* e = LookupLocked(shard, ref);
  if (e == nullptr) return Status::InvalidArgument("stale or null handle");
  auto* me = const_cast<Entry*>(e);
  me->in_use = false;
  me->addr = kNullAddr;
  shard.free_list.push_back(static_cast<uint32_t>(index / kShards));
  return Status::OK();
}

size_t HandleTable::LiveCount() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (const auto& e : shard.entries) n += e.in_use ? 1 : 0;
  }
  return n;
}

}  // namespace sheap
