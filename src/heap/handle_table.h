// HandleTable: the mutator's root registry (paper §3.2's "registers, stacks
// and own variables").
//
// Application code never holds raw heap addresses — it holds Refs, indices
// into this table. At a flip the collector updates the table entries (the
// root set) so the mutator only ever sees to-space addresses (the read
// barrier invariant, §3.2.1). Handles are volatile roots: they die in a
// crash along with the transactions that own them.

#ifndef SHEAP_HEAP_HANDLE_TABLE_H_
#define SHEAP_HEAP_HANDLE_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "heap/address.h"

namespace sheap {

/// Opaque reference to a heap object, valid until its owning transaction
/// ends (or forever for owner 0 = heap-global handles). 0 is the null Ref.
using Ref = uint64_t;
constexpr Ref kNullRef = 0;

using TxnId = uint64_t;
constexpr TxnId kNoTxn = 0;

/// Table of (address, owner) entries with generation-checked Refs.
class HandleTable {
 public:
  HandleTable() = default;

  /// Create a handle owned by `owner` (kNoTxn = global) for `addr`.
  Ref Create(TxnId owner, HeapAddr addr);

  /// Resolve a Ref; InvalidArgument for stale/foreign handles.
  StatusOr<HeapAddr> Get(Ref ref) const;

  /// Overwrite the address a live Ref designates.
  Status Set(Ref ref, HeapAddr addr);

  /// Owner of a live Ref (for lock/ownership checks).
  StatusOr<TxnId> Owner(Ref ref) const;

  /// Drop every handle owned by `txn` (transaction end).
  void ReleaseTxn(TxnId txn);

  /// Drop a single handle.
  Status Release(Ref ref);

  /// Visit every live handle's address cell; `f(HeapAddr*)` may rewrite it
  /// (root translation at a flip).
  template <typename F>
  void ForEachLive(F f) {
    for (auto& e : entries_) {
      if (e.in_use && e.addr != kNullAddr) f(&e.addr);
    }
  }

  size_t LiveCount() const;

 private:
  struct Entry {
    HeapAddr addr = kNullAddr;
    TxnId owner = kNoTxn;
    uint16_t generation = 0;
    bool in_use = false;
  };

  static constexpr uint64_t kIndexBits = 48;
  static constexpr uint64_t kIndexMask = (1ULL << kIndexBits) - 1;

  const Entry* Lookup(Ref ref) const;

  std::vector<Entry> entries_;
  std::vector<uint32_t> free_list_;
};

}  // namespace sheap

#endif  // SHEAP_HEAP_HANDLE_TABLE_H_
