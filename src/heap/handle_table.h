// HandleTable: the mutator's root registry (paper §3.2's "registers, stacks
// and own variables").
//
// Application code never holds raw heap addresses — it holds Refs, indices
// into this table. At a flip the collector updates the table entries (the
// root set) so the mutator only ever sees to-space addresses (the read
// barrier invariant, §3.2.1). Handles are volatile roots: they die in a
// crash along with the transactions that own them.
//
// Concurrency contract (DESIGN.md §5i): the table is sharded — a Ref's
// index decomposes as (local slot, shard), and Create distributes new
// handles round-robin via one atomic counter, so concurrent mutator
// threads create/resolve/release handles with per-shard mutexes and no
// global lock. In single-mutator mode the round-robin order makes index
// assignment exactly as deterministic as the old single-vector table.
// ForEachLive (flip-time root translation) runs lock-free and REQUIRES the
// collector to hold the mutator gate exclusively.

#ifndef SHEAP_HEAP_HANDLE_TABLE_H_
#define SHEAP_HEAP_HANDLE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "heap/address.h"

namespace sheap {

/// Opaque reference to a heap object, valid until its owning transaction
/// ends (or forever for owner 0 = heap-global handles). 0 is the null Ref.
using Ref = uint64_t;
constexpr Ref kNullRef = 0;

using TxnId = uint64_t;
constexpr TxnId kNoTxn = 0;

/// Table of (address, owner) entries with generation-checked Refs.
class HandleTable {
 public:
  HandleTable() = default;

  HandleTable(const HandleTable&) = delete;
  HandleTable& operator=(const HandleTable&) = delete;

  /// Create a handle owned by `owner` (kNoTxn = global) for `addr`.
  Ref Create(TxnId owner, HeapAddr addr);

  /// Resolve a Ref; InvalidArgument for stale/foreign handles.
  StatusOr<HeapAddr> Get(Ref ref) const;

  /// Overwrite the address a live Ref designates.
  Status Set(Ref ref, HeapAddr addr);

  /// Owner of a live Ref (for lock/ownership checks).
  StatusOr<TxnId> Owner(Ref ref) const;

  /// Drop every handle owned by `txn` (transaction end).
  void ReleaseTxn(TxnId txn);

  /// Drop a single handle.
  Status Release(Ref ref);

  /// Visit every live handle's address cell in ascending global-index
  /// order; `f(HeapAddr*)` may rewrite it (root translation at a flip).
  /// Takes no locks: the caller must hold the mutator gate exclusively,
  /// so no mutator thread can touch the table concurrently — which is why
  /// the capability analysis is bypassed here.
  template <typename F>
  void ForEachLive(F f) SHEAP_NO_THREAD_SAFETY_ANALYSIS {
    size_t max_local = 0;
    for (const Shard& s : shards_) {
      max_local = s.entries.size() > max_local ? s.entries.size() : max_local;
    }
    for (size_t local = 0; local < max_local; ++local) {
      for (uint32_t si = 0; si < kShards; ++si) {
        Shard& s = shards_[si];
        if (local >= s.entries.size()) continue;
        Entry& e = s.entries[local];
        if (e.in_use && e.addr != kNullAddr) f(&e.addr);
      }
    }
  }

  size_t LiveCount() const;

 private:
  struct Entry {
    HeapAddr addr = kNullAddr;
    TxnId owner = kNoTxn;
    uint16_t generation = 0;
    bool in_use = false;
  };

  static constexpr uint32_t kShards = 16;
  static constexpr uint64_t kIndexBits = 48;
  static constexpr uint64_t kIndexMask = (1ULL << kIndexBits) - 1;

  /// A Ref's global index g decomposes as shard g % kShards, slot
  /// g / kShards; Create assigns g round-robin so single-mutator index
  /// sequences stay 0, 1, 2, ...
  struct Shard {
    mutable Mutex mu;
    std::vector<Entry> entries SHEAP_GUARDED_BY(mu);
    std::vector<uint32_t> free_list SHEAP_GUARDED_BY(mu);
  };

  /// Resolve a live entry under its shard mutex; nullptr if stale/null.
  const Entry* LookupLocked(const Shard& shard, Ref ref) const
      SHEAP_REQUIRES(shard.mu);

  Shard shards_[kShards];
  std::atomic<uint64_t> round_robin_{0};
};

}  // namespace sheap

#endif  // SHEAP_HEAP_HANDLE_TABLE_H_
