// Space: a contiguous, recoverably-allocated range of pages (paper §3.1,
// §4.2.3). Memory is divided into spaces; a copying collection copies live
// objects from from-space to a freshly allocated to-space and then frees
// from-space. Page ids are never reused, so a fresh space reads as zeroes.

#ifndef SHEAP_HEAP_SPACE_H_
#define SHEAP_HEAP_SPACE_H_

#include <cstdint>

#include "heap/address.h"
#include "storage/page.h"

namespace sheap {

/// Which half of the divided heap a space belongs to (paper Ch. 5).
enum class Area : uint8_t {
  kStable = 0,   // atomic GC + write-ahead logging
  kVolatile = 1  // plain GC, no logging, lost at crash
};

using SpaceId = uint32_t;
constexpr SpaceId kInvalidSpaceId = 0;

/// Descriptor of one space.
struct Space {
  SpaceId id = kInvalidSpaceId;
  PageId base_page = 0;
  uint64_t npages = 0;
  Area area = Area::kStable;
  bool freed = false;

  HeapAddr base() const { return base_page * kPageSizeBytes; }
  HeapAddr end() const { return (base_page + npages) * kPageSizeBytes; }
  uint64_t size_bytes() const { return npages * kPageSizeBytes; }
  uint64_t size_words() const { return npages * kWordsPerPage; }
  bool Contains(HeapAddr a) const {
    return !freed && a >= base() && a < end();
  }
};

}  // namespace sheap

#endif  // SHEAP_HEAP_SPACE_H_
