// TypeRegistry: low-level object types and their pointer maps (§3.2.1).
//
// The collector parses objects using the descriptor in the header word; the
// descriptor's class id resolves here to "where the pointers in the object
// are located". Class definitions are logged (kClassDef) so the maps are
// available to the collector immediately after recovery, before application
// code runs.

#ifndef SHEAP_HEAP_TYPE_REGISTRY_H_
#define SHEAP_HEAP_TYPE_REGISTRY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "heap/object.h"
#include "util/coder.h"

namespace sheap {

/// Built-in classes. Arrays have no per-slot map: every slot is a pointer
/// (kPtrArray) or none is (kDataArray); their length is in the header.
constexpr ClassId kClassDataArray = 0;
constexpr ClassId kClassPtrArray = 1;
constexpr ClassId kFirstUserClass = 2;

/// Registry of class pointer maps. User classes are fixed-size records whose
/// map says, per slot, whether it holds a pointer.
class TypeRegistry {
 public:
  TypeRegistry() = default;

  /// Register a record class with the given per-slot pointer map. Objects of
  /// this class always have exactly map.size() slots.
  StatusOr<ClassId> Register(std::vector<bool> pointer_map);

  /// Install a definition read back from the log (kClassDef) at an exact id.
  Status InstallAt(ClassId id, std::vector<bool> pointer_map);

  bool IsRegistered(ClassId id) const;

  /// True if slot `slot` of an object of class `id` holds a pointer.
  bool IsPointerSlot(ClassId id, uint64_t slot) const;

  /// Declared slot count for record classes; 0 (= any) for arrays.
  uint64_t FixedSlots(ClassId id) const;

  /// Serialize the map of class `id` (record classes only) for kClassDef.
  std::vector<uint8_t> EncodeMap(ClassId id) const;
  static std::vector<bool> DecodeMap(const std::vector<uint8_t>& bytes,
                                     uint64_t nslots);

  ClassId next_class_id() const {
    return kFirstUserClass + static_cast<ClassId>(maps_.size());
  }

  /// Checkpoint payload: all registered user classes.
  void EncodeAllTo(Encoder* enc) const;
  Status DecodeAllFrom(Decoder* dec);

 private:
  // maps_[i] is the pointer map of class kFirstUserClass + i.
  std::vector<std::vector<bool>> maps_;
};

}  // namespace sheap

#endif  // SHEAP_HEAP_TYPE_REGISTRY_H_
