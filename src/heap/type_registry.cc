#include "heap/type_registry.h"

namespace sheap {

StatusOr<ClassId> TypeRegistry::Register(std::vector<bool> pointer_map) {
  if (pointer_map.empty()) {
    return Status::InvalidArgument("record class needs at least one slot");
  }
  if (pointer_map.size() > kMaxNslots) {
    return Status::InvalidArgument("pointer map too large");
  }
  ClassId id = next_class_id();
  if (id > kMaxClassId) return Status::OutOfSpace("class id space exhausted");
  maps_.push_back(std::move(pointer_map));
  return id;
}

Status TypeRegistry::InstallAt(ClassId id, std::vector<bool> pointer_map) {
  if (id < kFirstUserClass) {
    return Status::InvalidArgument("cannot redefine built-in class");
  }
  size_t index = id - kFirstUserClass;
  if (index < maps_.size()) {
    // Re-registration after recovery must agree with the logged definition.
    if (maps_[index] != pointer_map) {
      return Status::InvalidArgument("conflicting class definition");
    }
    return Status::OK();
  }
  if (index != maps_.size()) {
    return Status::InvalidArgument("class ids must be installed in order");
  }
  maps_.push_back(std::move(pointer_map));
  return Status::OK();
}

bool TypeRegistry::IsRegistered(ClassId id) const {
  return id == kClassDataArray || id == kClassPtrArray ||
         (id >= kFirstUserClass && id - kFirstUserClass < maps_.size());
}

bool TypeRegistry::IsPointerSlot(ClassId id, uint64_t slot) const {
  if (id == kClassDataArray) return false;
  if (id == kClassPtrArray) return true;
  const auto& map = maps_[id - kFirstUserClass];
  SHEAP_DCHECK(slot < map.size());
  return map[slot];
}

uint64_t TypeRegistry::FixedSlots(ClassId id) const {
  if (id == kClassDataArray || id == kClassPtrArray) return 0;
  return maps_[id - kFirstUserClass].size();
}

std::vector<uint8_t> TypeRegistry::EncodeMap(ClassId id) const {
  const auto& map = maps_[id - kFirstUserClass];
  std::vector<uint8_t> out((map.size() + 7) / 8, 0);
  for (size_t i = 0; i < map.size(); ++i) {
    if (map[i]) out[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
  return out;
}

void TypeRegistry::EncodeAllTo(Encoder* enc) const {
  enc->PutVarint(maps_.size());
  for (size_t i = 0; i < maps_.size(); ++i) {
    const ClassId id = kFirstUserClass + static_cast<ClassId>(i);
    enc->PutVarint(maps_[i].size());
    auto bytes = EncodeMap(id);
    enc->PutLengthPrefixed(bytes.data(), bytes.size());
  }
}

Status TypeRegistry::DecodeAllFrom(Decoder* dec) {
  uint64_t n;
  if (!dec->GetVarint(&n)) return Status::Corruption("bad class table");
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t nslots;
    std::vector<uint8_t> bytes;
    if (!dec->GetVarint(&nslots) || !dec->GetLengthPrefixed(&bytes)) {
      return Status::Corruption("bad class entry");
    }
    SHEAP_RETURN_IF_ERROR(InstallAt(kFirstUserClass + static_cast<ClassId>(i),
                                    DecodeMap(bytes, nslots)));
  }
  return Status::OK();
}

std::vector<bool> TypeRegistry::DecodeMap(const std::vector<uint8_t>& bytes,
                                          uint64_t nslots) {
  std::vector<bool> map(nslots, false);
  for (uint64_t i = 0; i < nslots && i / 8 < bytes.size(); ++i) {
    map[i] = (bytes[i / 8] >> (i % 8)) & 1;
  }
  return map;
}

}  // namespace sheap
