// HeapMemory: word- and byte-granular access to the one-level store through
// the buffer pool, with the pin/modify/mark-dirty discipline of the
// write-ahead log protocol (paper §2.2.3).
//
// Logged writes carry the LSN of the record describing them; the buffer pool
// uses it to enforce the WAL constraint before write-back. Unlogged writes
// (volatile-area pages) dirty the frame without a protecting record.
//
// HeapMemory charges no simulated time itself: the mutator-facing layer
// charges access costs, collectors charge copy/scan costs, and the storage
// layer charges I/O, so each cost is attributed exactly once.

#ifndef SHEAP_HEAP_HEAP_MEMORY_H_
#define SHEAP_HEAP_HEAP_MEMORY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "heap/address.h"
#include "heap/object.h"
#include "storage/buffer_pool.h"

namespace sheap {

/// Word/byte access with automatic pinning; operations may span pages.
class HeapMemory {
 public:
  explicit HeapMemory(BufferPool* pool) : pool_(pool) {}

  StatusOr<uint64_t> ReadWord(HeapAddr a);
  Status WriteWordLogged(HeapAddr a, uint64_t v, Lsn lsn);
  Status WriteWordUnlogged(HeapAddr a, uint64_t v);

  /// Bulk reads/writes; may cross page boundaries. `a` and `n` are in bytes
  /// and must be word-aligned.
  Status ReadBytes(HeapAddr a, uint64_t n, uint8_t* out);
  Status WriteBytesLogged(HeapAddr a, const uint8_t* data, uint64_t n,
                          Lsn lsn);
  Status WriteBytesUnlogged(HeapAddr a, const uint8_t* data, uint64_t n);

  /// Read and decode the header word at `base`; Corruption if the word is
  /// not a header (e.g. the object was forwarded).
  StatusOr<ObjectHeader> ReadHeader(HeapAddr base);

  /// Read the raw first word of an object (header or forwarding pointer).
  StatusOr<uint64_t> ReadHeaderWord(HeapAddr base) { return ReadWord(base); }

  BufferPool* pool() { return pool_; }

 private:
  enum class WriteMode { kLogged, kUnlogged };
  Status WriteBytesInternal(HeapAddr a, const uint8_t* data, uint64_t n,
                            WriteMode mode, Lsn lsn);

  BufferPool* pool_;
};

}  // namespace sheap

#endif  // SHEAP_HEAP_HEAP_MEMORY_H_
