#include "heap/heap_memory.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace sheap {

StatusOr<uint64_t> HeapMemory::ReadWord(HeapAddr a) {
  SHEAP_DCHECK(IsWordAligned(a));
  SHEAP_ASSIGN_OR_RETURN(PageImage * frame, pool_->Pin(PageOf(a)));
  uint64_t v = frame->ReadWord(WordInPage(a));
  pool_->Unpin(PageOf(a));
  return v;
}

Status HeapMemory::WriteWordLogged(HeapAddr a, uint64_t v, Lsn lsn) {
  SHEAP_DCHECK(IsWordAligned(a));
  SHEAP_ASSIGN_OR_RETURN(PageImage * frame, pool_->Pin(PageOf(a)));
  frame->WriteWord(WordInPage(a), v);
  pool_->MarkDirty(PageOf(a), lsn);
  pool_->Unpin(PageOf(a));
  return Status::OK();
}

Status HeapMemory::WriteWordUnlogged(HeapAddr a, uint64_t v) {
  SHEAP_DCHECK(IsWordAligned(a));
  SHEAP_ASSIGN_OR_RETURN(PageImage * frame, pool_->Pin(PageOf(a)));
  frame->WriteWord(WordInPage(a), v);
  pool_->MarkDirtyUnlogged(PageOf(a));
  pool_->Unpin(PageOf(a));
  return Status::OK();
}

Status HeapMemory::ReadBytes(HeapAddr a, uint64_t n, uint8_t* out) {
  SHEAP_DCHECK(IsWordAligned(a) && n % kWordSizeBytes == 0);
  uint64_t done = 0;
  while (done < n) {
    PageId pid = PageOf(a + done);
    uint32_t off = OffsetInPage(a + done);
    uint64_t chunk = std::min<uint64_t>(n - done, kPageSizeBytes - off);
    SHEAP_ASSIGN_OR_RETURN(PageImage * frame, pool_->Pin(pid));
    std::memcpy(out + done, frame->data.data() + off, chunk);
    pool_->Unpin(pid);
    done += chunk;
  }
  return Status::OK();
}

Status HeapMemory::WriteBytesInternal(HeapAddr a, const uint8_t* data,
                                      uint64_t n, WriteMode mode, Lsn lsn) {
  SHEAP_DCHECK(IsWordAligned(a) && n % kWordSizeBytes == 0);
  uint64_t done = 0;
  while (done < n) {
    PageId pid = PageOf(a + done);
    uint32_t off = OffsetInPage(a + done);
    uint64_t chunk = std::min<uint64_t>(n - done, kPageSizeBytes - off);
    SHEAP_ASSIGN_OR_RETURN(PageImage * frame, pool_->Pin(pid));
    std::memcpy(frame->data.data() + off, data + done, chunk);
    if (mode == WriteMode::kLogged) {
      pool_->MarkDirty(pid, lsn);
    } else {
      pool_->MarkDirtyUnlogged(pid);
    }
    pool_->Unpin(pid);
    done += chunk;
  }
  return Status::OK();
}

Status HeapMemory::WriteBytesLogged(HeapAddr a, const uint8_t* data,
                                    uint64_t n, Lsn lsn) {
  return WriteBytesInternal(a, data, n, WriteMode::kLogged, lsn);
}

Status HeapMemory::WriteBytesUnlogged(HeapAddr a, const uint8_t* data,
                                      uint64_t n) {
  return WriteBytesInternal(a, data, n, WriteMode::kUnlogged, kInvalidLsn);
}

StatusOr<ObjectHeader> HeapMemory::ReadHeader(HeapAddr base) {
  SHEAP_ASSIGN_OR_RETURN(uint64_t w, ReadWord(base));
  if (!IsHeaderWord(w)) {
    return Status::Corruption("expected object header word");
  }
  return DecodeHeader(w);
}

}  // namespace sheap
