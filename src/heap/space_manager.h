// SpaceManager: recoverable allocation of spaces (paper §4.2.3).
//
// Space allocation and deallocation are logged (kSpaceAlloc / kSpaceFree) so
// that after a crash recovery knows which page ranges belong to which space
// — in particular which space was from-space and to-space of an interrupted
// collection. Page ids grow monotonically and are never reused.

#ifndef SHEAP_HEAP_SPACE_MANAGER_H_
#define SHEAP_HEAP_SPACE_MANAGER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "heap/space.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "util/coder.h"
#include "wal/log_writer.h"

namespace sheap {

/// Tracks all spaces; logs allocation/free; survives crashes via the log
/// and checkpoints.
class SpaceManager {
 public:
  SpaceManager(LogWriter* log, Disk* disk, BufferPool* pool)
      : log_(log), disk_(disk), pool_(pool) {}

  /// Allocate a fresh space of `npages` pages; logs kSpaceAlloc.
  StatusOr<SpaceId> Allocate(uint64_t npages, Area area);

  /// Free a space: logs kSpaceFree, drops its buffer-pool frames and disk
  /// pages. The space id remains known (freed=true) so stale-address checks
  /// can give good diagnostics.
  Status Free(SpaceId id);

  const Space* Find(SpaceId id) const;
  /// The live space containing address `a`, or nullptr.
  const Space* Containing(HeapAddr a) const;

  // ---- recovery-side rebuilding (no logging, no page drops) ----
  void ApplyAllocRecord(const LogRecord& rec);
  void ApplyFreeRecord(const LogRecord& rec);

  /// Drop pages of freed spaces from disk after redo completes (idempotent
  /// cleanup; redo itself never touches freed spaces because page ids are
  /// not reused).
  void DropFreedFromDisk();

  // ---- checkpoint payload ----
  void EncodeTo(Encoder* enc) const;
  Status DecodeFrom(Decoder* dec);

  const std::deque<Space>& spaces() const { return spaces_; }

 private:
  LogWriter* log_;
  Disk* disk_;
  BufferPool* pool_;
  std::deque<Space> spaces_;
  SpaceId next_space_id_ = 1;
  PageId next_page_ = 0;
};

}  // namespace sheap

#endif  // SHEAP_HEAP_SPACE_MANAGER_H_
