#include "heap/space.h"

// Header-only; TU keeps the build graph uniform.
namespace sheap {}
