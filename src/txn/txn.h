// Transaction state (paper §2.1): transactions are serializable and total,
// built from short low-level recoverable actions (read / update / allocate)
// that synchronize through read/write locks on objects.

#ifndef SHEAP_TXN_TXN_H_
#define SHEAP_TXN_TXN_H_

#include <cstdint>
#include <vector>

#include "heap/address.h"
#include "heap/handle_table.h"
#include "storage/page.h"

namespace sheap {

enum class TxnState : uint8_t {
  kActive,
  kCommitting,  // promotion/commit record being emitted
  kCommitted,
  kAborting,
  kAborted,
  kPrepared,    // two-phase commit: in doubt, awaiting the coordinator
};

/// In-memory record of one update action; doubles as the undo information
/// for normal (non-crash) abort and as the source for undo-root translation
/// at a flip (§4.2.1). Slot-granular: one heap word.
struct TxnUpdate {
  HeapAddr obj_base = kNullAddr;   // object containing the slot
  uint64_t slot = 0;               // slot index within the object
  uint64_t old_word = 0;           // undo value
  uint64_t new_word = 0;           // redo value (kept for diagnostics)
  bool is_pointer = false;
  bool logged = false;             // stable-area updates are logged
  Lsn lsn = kInvalidLsn;           // LSN of the kUpdate record if logged
};

/// In-memory record of one allocate action (undo: the object becomes
/// garbage; no physical undo needed).
struct TxnAlloc {
  HeapAddr base = kNullAddr;
  bool stable_area = false;
};

/// A transaction's in-memory state. Lost at a crash (active transactions
/// are aborted by recovery from the log).
struct Txn {
  TxnId id = kNoTxn;
  TxnState state = TxnState::kActive;
  Lsn first_lsn = kInvalidLsn;
  Lsn last_lsn = kInvalidLsn;  // head of the backward record chain
  std::vector<TxnUpdate> updates;  // in execution order
  std::vector<TxnAlloc> allocs;
  uint64_t begin_sequence = 0;  // age, used by deadlock victim selection
  uint64_t gtid = 0;            // global id when prepared under 2PC
};

}  // namespace sheap

#endif  // SHEAP_TXN_TXN_H_
