#include "txn/lock_manager.h"

#include "common/check.h"

namespace sheap {

Status LockManager::AcquireRead(TxnId txn, HeapAddr obj) {
  Lock& lock = locks_[obj];
  if (lock.writer != kNoTxn && lock.writer != txn) {
    ++stats_.conflicts;
    return Blocked(txn, {lock.writer});
  }
  lock.readers.insert(txn);
  waits_for_.erase(txn);
  ++stats_.acquires;
  return Status::OK();
}

Status LockManager::AcquireWrite(TxnId txn, HeapAddr obj) {
  Lock& lock = locks_[obj];
  if (lock.writer != kNoTxn && lock.writer != txn) {
    ++stats_.conflicts;
    return Blocked(txn, {lock.writer});
  }
  // Upgrade allowed only when txn is the sole reader.
  std::vector<TxnId> blockers;
  for (TxnId r : lock.readers) {
    if (r != txn) blockers.push_back(r);
  }
  if (!blockers.empty()) {
    ++stats_.conflicts;
    return Blocked(txn, blockers);
  }
  lock.writer = txn;
  lock.readers.insert(txn);
  waits_for_.erase(txn);
  ++stats_.acquires;
  return Status::OK();
}

Status LockManager::Blocked(TxnId txn, const std::vector<TxnId>& holders) {
  auto& edges = waits_for_[txn];
  for (TxnId h : holders) edges.insert(h);
  // Deadlock if any holder (transitively) waits for txn.
  for (TxnId h : holders) {
    std::unordered_set<TxnId> visited;
    if (HasPathTo(h, txn, &visited)) {
      ++stats_.deadlocks;
      waits_for_.erase(txn);
      return Status::Deadlock("waits-for cycle");
    }
  }
  return Status::Busy("lock conflict");
}

bool LockManager::HasPathTo(TxnId from, TxnId target,
                            std::unordered_set<TxnId>* visited) const {
  if (from == target) return true;
  if (!visited->insert(from).second) return false;
  auto it = waits_for_.find(from);
  if (it == waits_for_.end()) return false;
  for (TxnId next : it->second) {
    if (HasPathTo(next, target, visited)) return true;
  }
  return false;
}

void LockManager::ReleaseAll(TxnId txn) {
  for (auto it = locks_.begin(); it != locks_.end();) {
    Lock& lock = it->second;
    lock.readers.erase(txn);
    if (lock.writer == txn) lock.writer = kNoTxn;
    if (lock.Free()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  waits_for_.erase(txn);
  for (auto& [waiter, edges] : waits_for_) edges.erase(txn);
}

bool LockManager::HoldsRead(TxnId txn, HeapAddr obj) const {
  auto it = locks_.find(obj);
  return it != locks_.end() &&
         (it->second.readers.count(txn) > 0 || it->second.writer == txn);
}

bool LockManager::HoldsWrite(TxnId txn, HeapAddr obj) const {
  auto it = locks_.find(obj);
  return it != locks_.end() && it->second.writer == txn;
}

void LockManager::Rekey(HeapAddr from, HeapAddr to) {
  auto it = locks_.find(from);
  if (it == locks_.end()) return;
  Lock moved = std::move(it->second);
  locks_.erase(it);
  locks_[to] = std::move(moved);
}

std::vector<HeapAddr> LockManager::LockedAddresses() const {
  std::vector<HeapAddr> out;
  out.reserve(locks_.size());
  for (const auto& [addr, lock] : locks_) out.push_back(addr);
  return out;
}

}  // namespace sheap
