#include "txn/lock_manager.h"

#include <algorithm>

#include "common/check.h"

namespace sheap {

Status LockManager::AcquireRead(TxnId txn, HeapAddr obj) {
  Shard& shard = ShardFor(obj);
  MutexLock lock_guard(&shard.mu);
  Lock& lock = shard.locks[obj];
  if (lock.writer != kNoTxn && lock.writer != txn) {
    stats_.conflicts.fetch_add(1, std::memory_order_relaxed);
    return Blocked(txn, {lock.writer});
  }
  lock.readers.insert(txn);
  {
    MutexLock waits_guard(&waits_mu_);
    waits_for_.erase(txn);
  }
  stats_.acquires.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LockManager::AcquireWrite(TxnId txn, HeapAddr obj) {
  Shard& shard = ShardFor(obj);
  MutexLock lock_guard(&shard.mu);
  Lock& lock = shard.locks[obj];
  if (lock.writer != kNoTxn && lock.writer != txn) {
    stats_.conflicts.fetch_add(1, std::memory_order_relaxed);
    return Blocked(txn, {lock.writer});
  }
  // Upgrade allowed only when txn is the sole reader.
  std::vector<TxnId> blockers;
  for (TxnId r : lock.readers) {
    if (r != txn) blockers.push_back(r);
  }
  if (!blockers.empty()) {
    stats_.conflicts.fetch_add(1, std::memory_order_relaxed);
    return Blocked(txn, blockers);
  }
  lock.writer = txn;
  lock.readers.insert(txn);
  {
    MutexLock waits_guard(&waits_mu_);
    waits_for_.erase(txn);
  }
  stats_.acquires.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LockManager::Blocked(TxnId txn, const std::vector<TxnId>& holders) {
  MutexLock waits_guard(&waits_mu_);
  auto& edges = waits_for_[txn];
  for (TxnId h : holders) edges.insert(h);
  // Deadlock if any holder (transitively) waits for txn.
  for (TxnId h : holders) {
    std::unordered_set<TxnId> visited;
    if (HasPathTo(h, txn, &visited)) {
      stats_.deadlocks.fetch_add(1, std::memory_order_relaxed);
      waits_for_.erase(txn);
      return Status::Deadlock("waits-for cycle");
    }
  }
  return Status::Busy("lock conflict");
}

bool LockManager::HasPathTo(TxnId from, TxnId target,
                            std::unordered_set<TxnId>* visited) const {
  if (from == target) return true;
  if (!visited->insert(from).second) return false;
  auto it = waits_for_.find(from);
  if (it == waits_for_.end()) return false;
  for (TxnId next : it->second) {
    if (HasPathTo(next, target, visited)) return true;
  }
  return false;
}

void LockManager::ReleaseAll(TxnId txn) {
  for (Shard& shard : shards_) {
    MutexLock lock_guard(&shard.mu);
    for (auto it = shard.locks.begin(); it != shard.locks.end();) {
      Lock& lock = it->second;
      lock.readers.erase(txn);
      if (lock.writer == txn) lock.writer = kNoTxn;
      if (lock.Free()) {
        it = shard.locks.erase(it);
      } else {
        ++it;
      }
    }
  }
  MutexLock waits_guard(&waits_mu_);
  waits_for_.erase(txn);
  for (auto& [waiter, edges] : waits_for_) edges.erase(txn);
}

bool LockManager::HoldsRead(TxnId txn, HeapAddr obj) const {
  const Shard& shard = ShardFor(obj);
  MutexLock lock_guard(&shard.mu);
  auto it = shard.locks.find(obj);
  return it != shard.locks.end() &&
         (it->second.readers.count(txn) > 0 || it->second.writer == txn);
}

bool LockManager::HoldsWrite(TxnId txn, HeapAddr obj) const {
  const Shard& shard = ShardFor(obj);
  MutexLock lock_guard(&shard.mu);
  auto it = shard.locks.find(obj);
  return it != shard.locks.end() && it->second.writer == txn;
}

void LockManager::Rekey(HeapAddr from, HeapAddr to) {
  const uint32_t si = ShardIndex(from);
  const uint32_t di = ShardIndex(to);
  Shard& src = shards_[si];
  Shard& dst = shards_[di];
  if (si == di) {
    MutexLock lock_guard(&src.mu);
    auto it = src.locks.find(from);
    if (it == src.locks.end()) return;
    Lock moved = std::move(it->second);
    src.locks.erase(it);
    src.locks[to] = std::move(moved);
    return;
  }
  // Lock both shards in index order so concurrent Rekeys cannot deadlock.
  // The analysis cannot express dynamic two-shard ordering; the collector
  // only calls this from exclusive (gated) contexts anyway.
  Shard& first = si < di ? src : dst;
  Shard& second = si < di ? dst : src;
  MutexLock first_guard(&first.mu);
  MutexLock second_guard(&second.mu);
  auto it = src.locks.find(from);
  if (it == src.locks.end()) return;
  Lock moved = std::move(it->second);
  src.locks.erase(it);
  dst.locks[to] = std::move(moved);
}

std::vector<HeapAddr> LockManager::LockedAddresses() const {
  std::vector<HeapAddr> out;
  for (const Shard& shard : shards_) {
    MutexLock lock_guard(&shard.mu);
    for (const auto& [addr, lock] : shard.locks) out.push_back(addr);
  }
  // Ascending addresses: flip-time rekey order (and the UTR records it
  // logs) must not depend on shard layout or hash-map iteration.
  std::sort(out.begin(), out.end());
  return out;
}

size_t LockManager::LockedObjectCount() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock_guard(&shard.mu);
    n += shard.locks.size();
  }
  return n;
}

}  // namespace sheap
