// LockManager: logical read/write locks on objects (paper §2.1). Strict
// two-phase locking: locks are held until transaction end. Conflicts return
// kBusy (the scheduler retries the action later) or kDeadlock when waiting
// would close a cycle in the waits-for graph.
//
// Locks are keyed by object base address; when the collector moves an
// object, it rekeys the entry (the lock is on the object, not the address).

#ifndef SHEAP_TXN_LOCK_MANAGER_H_
#define SHEAP_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "heap/address.h"
#include "heap/handle_table.h"

namespace sheap {

struct LockStats {
  uint64_t acquires = 0;
  uint64_t conflicts = 0;
  uint64_t deadlocks = 0;
};

/// Read/write object locks with waits-for deadlock detection.
class LockManager {
 public:
  LockManager() = default;

  /// Shared lock. kBusy if a different transaction holds write; kDeadlock
  /// if recording the wait would create a waits-for cycle.
  Status AcquireRead(TxnId txn, HeapAddr obj);

  /// Exclusive lock; upgrades a sole read lock. Same failure modes.
  Status AcquireWrite(TxnId txn, HeapAddr obj);

  /// Release everything `txn` holds and clear its waits-for edges.
  void ReleaseAll(TxnId txn);

  bool HoldsRead(TxnId txn, HeapAddr obj) const;
  bool HoldsWrite(TxnId txn, HeapAddr obj) const;

  /// Move the lock entry for a relocated object.
  void Rekey(HeapAddr from, HeapAddr to);

  /// Addresses of all currently locked objects (flip-time rekey support).
  std::vector<HeapAddr> LockedAddresses() const;

  size_t LockedObjectCount() const { return locks_.size(); }
  const LockStats& stats() const { return stats_; }

 private:
  struct Lock {
    std::set<TxnId> readers;
    TxnId writer = kNoTxn;
    bool Free() const { return readers.empty() && writer == kNoTxn; }
  };

  /// Record txn -> holders wait edges and detect a cycle through txn.
  /// Returns kDeadlock on a cycle, kBusy otherwise.
  Status Blocked(TxnId txn, const std::vector<TxnId>& holders);
  bool HasPathTo(TxnId from, TxnId target,
                 std::unordered_set<TxnId>* visited) const;

  std::unordered_map<HeapAddr, Lock> locks_;
  std::unordered_map<TxnId, std::unordered_set<TxnId>> waits_for_;
  LockStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_TXN_LOCK_MANAGER_H_
