// LockManager: logical read/write locks on objects (paper §2.1). Strict
// two-phase locking: locks are held until transaction end. Conflicts return
// kBusy (the scheduler retries the action later) or kDeadlock when waiting
// would close a cycle in the waits-for graph.
//
// Locks are keyed by object base address; when the collector moves an
// object, it rekeys the entry (the lock is on the object, not the address).
//
// Concurrency contract (DESIGN.md §5i): the lock table is sharded by
// address hash with a mutex per shard, so concurrent mutator threads
// acquire locks on different objects without contention. The waits-for
// graph (and deadlock search) is global under its own leaf mutex,
// acquired while a shard mutex is held (rank: shard > waits_mu_; never
// two shards at once except Rekey, which orders by shard index). Counters
// are relaxed atomics. In single-mutator mode everything is uncontended
// and behavior is unchanged.

#ifndef SHEAP_TXN_LOCK_MANAGER_H_
#define SHEAP_TXN_LOCK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "heap/address.h"
#include "heap/handle_table.h"

namespace sheap {

/// Counters are relaxed atomics: bumped from concurrent acquire paths,
/// read single-threaded (tests/bench/stats printouts).
struct LockStats {
  std::atomic<uint64_t> acquires{0};
  std::atomic<uint64_t> conflicts{0};
  std::atomic<uint64_t> deadlocks{0};
};

/// Read/write object locks with waits-for deadlock detection.
class LockManager {
 public:
  LockManager() = default;

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Shared lock. kBusy if a different transaction holds write; kDeadlock
  /// if recording the wait would create a waits-for cycle.
  Status AcquireRead(TxnId txn, HeapAddr obj);

  /// Exclusive lock; upgrades a sole read lock. Same failure modes.
  Status AcquireWrite(TxnId txn, HeapAddr obj);

  /// Release everything `txn` holds and clear its waits-for edges.
  void ReleaseAll(TxnId txn);

  bool HoldsRead(TxnId txn, HeapAddr obj) const;
  bool HoldsWrite(TxnId txn, HeapAddr obj) const;

  /// Move the lock entry for a relocated object. Exclusive contexts only
  /// (the collector holds the mutator gate); locks both shards in index
  /// order when they differ.
  void Rekey(HeapAddr from, HeapAddr to);

  /// Addresses of all currently locked objects (flip-time rekey support),
  /// ascending — deterministic regardless of shard layout.
  std::vector<HeapAddr> LockedAddresses() const;

  size_t LockedObjectCount() const;
  const LockStats& stats() const { return stats_; }

 private:
  static constexpr uint32_t kShards = 64;

  struct Lock {
    std::set<TxnId> readers;
    TxnId writer = kNoTxn;
    bool Free() const { return readers.empty() && writer == kNoTxn; }
  };

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<HeapAddr, Lock> locks SHEAP_GUARDED_BY(mu);
  };

  static uint32_t ShardIndex(HeapAddr obj) {
    return static_cast<uint32_t>((obj * 0x9E3779B97F4A7C15ull) >> 58) %
           kShards;
  }
  Shard& ShardFor(HeapAddr obj) { return shards_[ShardIndex(obj)]; }
  const Shard& ShardFor(HeapAddr obj) const {
    return shards_[ShardIndex(obj)];
  }

  /// Record txn -> holders wait edges and detect a cycle through txn.
  /// Returns kDeadlock on a cycle, kBusy otherwise. Called with the
  /// object's shard mutex held; takes waits_mu_ (leaf-ward).
  Status Blocked(TxnId txn, const std::vector<TxnId>& holders)
      SHEAP_EXCLUDES(waits_mu_);
  bool HasPathTo(TxnId from, TxnId target,
                 std::unordered_set<TxnId>* visited) const
      SHEAP_REQUIRES(waits_mu_);

  Shard shards_[kShards];

  /// Global waits-for graph; leaf mutex under any single shard mutex.
  mutable Mutex waits_mu_;
  std::unordered_map<TxnId, std::unordered_set<TxnId>> waits_for_
      SHEAP_GUARDED_BY(waits_mu_);

  LockStats stats_;
};

}  // namespace sheap

#endif  // SHEAP_TXN_LOCK_MANAGER_H_
