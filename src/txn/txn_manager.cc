#include "txn/txn_manager.h"

#include "common/check.h"

namespace sheap {

Txn* TxnManager::Begin() {
  auto txn = std::make_unique<Txn>();
  txn->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  txn->state = TxnState::kActive;
  txn->begin_sequence = begin_counter_.fetch_add(1, std::memory_order_relaxed);

  LogRecord rec;
  rec.type = RecordType::kBegin;
  rec.txn_id = txn->id;
  Lsn lsn = log_->Append(&rec);
  txn->first_lsn = lsn;
  txn->last_lsn = lsn;

  Txn* raw = txn.get();
  Shard& shard = ShardFor(txn->id);
  MutexLock lock(&shard.mu);
  shard.txns[raw->id] = std::move(txn);
  return raw;
}

Txn* TxnManager::Find(TxnId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  auto it = shard.txns.find(id);
  return it == shard.txns.end() ? nullptr : it->second.get();
}

const Txn* TxnManager::Find(TxnId id) const {
  const Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  auto it = shard.txns.find(id);
  return it == shard.txns.end() ? nullptr : it->second.get();
}

Lsn TxnManager::AppendChained(Txn* txn, LogRecord* rec) {
  SHEAP_CHECK(rec->IsTransactional());
  rec->txn_id = txn->id;
  rec->prev_lsn = txn->last_lsn;
  Lsn lsn = log_->Append(rec);
  txn->last_lsn = lsn;
  if (txn->first_lsn == kInvalidLsn) txn->first_lsn = lsn;
  return lsn;
}

void TxnManager::Remove(TxnId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  shard.txns.erase(id);
}

void TxnManager::Restore(std::unique_ptr<Txn> txn) {
  BumpNextId(txn->id);
  txn->begin_sequence = begin_counter_.fetch_add(1, std::memory_order_relaxed);
  Txn* raw = txn.get();
  Shard& shard = ShardFor(raw->id);
  MutexLock lock(&shard.mu);
  shard.txns[raw->id] = std::move(txn);
}

std::vector<Txn*> TxnManager::ActiveTxns() {
  std::vector<Txn*> out;
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (auto& [id, txn] : shard.txns) out.push_back(txn.get());
  }
  // Shard-major gathering interleaves ids; callers (undo passes, in-doubt
  // resolution, checkpoints) depend on ascending-id iteration.
  std::sort(out.begin(), out.end(),
            [](const Txn* a, const Txn* b) { return a->id < b->id; });
  return out;
}

size_t TxnManager::ActiveCount() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    n += shard.txns.size();
  }
  return n;
}

}  // namespace sheap
