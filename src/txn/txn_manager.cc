#include "txn/txn_manager.h"

#include "common/check.h"

namespace sheap {

Txn* TxnManager::Begin() {
  auto txn = std::make_unique<Txn>();
  txn->id = next_id_++;
  txn->state = TxnState::kActive;
  txn->begin_sequence = begin_counter_++;

  LogRecord rec;
  rec.type = RecordType::kBegin;
  rec.txn_id = txn->id;
  Lsn lsn = log_->Append(&rec);
  txn->first_lsn = lsn;
  txn->last_lsn = lsn;

  Txn* raw = txn.get();
  txns_[txn->id] = std::move(txn);
  return raw;
}

Txn* TxnManager::Find(TxnId id) {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : it->second.get();
}

const Txn* TxnManager::Find(TxnId id) const {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : it->second.get();
}

Lsn TxnManager::AppendChained(Txn* txn, LogRecord* rec) {
  SHEAP_CHECK(rec->IsTransactional());
  rec->txn_id = txn->id;
  rec->prev_lsn = txn->last_lsn;
  Lsn lsn = log_->Append(rec);
  txn->last_lsn = lsn;
  if (txn->first_lsn == kInvalidLsn) txn->first_lsn = lsn;
  return lsn;
}

void TxnManager::Remove(TxnId id) { txns_.erase(id); }

void TxnManager::Restore(std::unique_ptr<Txn> txn) {
  BumpNextId(txn->id);
  txn->begin_sequence = begin_counter_++;
  txns_[txn->id] = std::move(txn);
}

std::vector<Txn*> TxnManager::ActiveTxns() {
  std::vector<Txn*> out;
  out.reserve(txns_.size());
  for (auto& [id, txn] : txns_) out.push_back(txn.get());
  return out;
}

}  // namespace sheap
