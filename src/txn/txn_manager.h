// TxnManager: bookkeeping for active transactions and their log-record
// chains. Commit/abort orchestration (which touches the collector, the
// stability tracker, and the lock manager) lives in core::StableHeap; this
// class owns the transaction table and the per-transaction record chain.

#ifndef SHEAP_TXN_TXN_MANAGER_H_
#define SHEAP_TXN_TXN_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "txn/txn.h"
#include "wal/log_writer.h"

namespace sheap {

/// Table of live transactions.
class TxnManager {
 public:
  explicit TxnManager(LogWriter* log) : log_(log) {}

  /// Start a transaction: assigns an id, logs kBegin.
  Txn* Begin();

  /// Find a transaction; nullptr if unknown (ended).
  Txn* Find(TxnId id);
  const Txn* Find(TxnId id) const;

  /// Append a transactional record on behalf of `txn`, maintaining the
  /// backward prev_lsn chain. Returns the record's LSN.
  Lsn AppendChained(Txn* txn, LogRecord* rec);

  /// Remove a finished transaction from the table.
  void Remove(TxnId id);

  /// Reinstall a transaction rebuilt by recovery (in-doubt 2PC).
  void Restore(std::unique_ptr<Txn> txn);

  /// All transactions currently in the table (any state).
  std::vector<Txn*> ActiveTxns();

  size_t ActiveCount() const { return txns_.size(); }
  uint64_t next_txn_id() const { return next_id_; }

  /// Recovery support: force the id counter past ids seen in the log.
  void BumpNextId(TxnId floor) {
    if (floor >= next_id_) next_id_ = floor + 1;
  }

 private:
  LogWriter* log_;
  std::map<TxnId, std::unique_ptr<Txn>> txns_;
  TxnId next_id_ = 1;
  uint64_t begin_counter_ = 0;
};

}  // namespace sheap

#endif  // SHEAP_TXN_TXN_MANAGER_H_
