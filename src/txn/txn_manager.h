// TxnManager: bookkeeping for active transactions and their log-record
// chains. Commit/abort orchestration (which touches the collector, the
// stability tracker, and the lock manager) lives in core::StableHeap; this
// class owns the transaction table and the per-transaction record chain.
//
// Concurrency contract (DESIGN.md §5i): id allocation is a single atomic
// fetch-add, and the table is sharded by id with a mutex per shard, so N
// mutator threads can Begin/Find/Remove concurrently without a global
// mutex. A Txn* stays valid until Remove — the caller (StableHeap) owns
// the discipline that only the thread driving a transaction touches it,
// enforced by strict 2PL above this layer. In single-mutator mode the
// locks are uncontended and id assignment is sequential exactly as before
// (fetch-add from one thread), preserving byte determinism.

#ifndef SHEAP_TXN_TXN_MANAGER_H_
#define SHEAP_TXN_TXN_MANAGER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "txn/txn.h"
#include "wal/log_writer.h"

namespace sheap {

/// Table of live transactions.
class TxnManager {
 public:
  explicit TxnManager(LogWriter* log) : log_(log) {}

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Start a transaction: assigns an id (atomic fetch-add), logs kBegin.
  Txn* Begin();

  /// Find a transaction; nullptr if unknown (ended).
  Txn* Find(TxnId id);
  const Txn* Find(TxnId id) const;

  /// Append a transactional record on behalf of `txn`, maintaining the
  /// backward prev_lsn chain. The chain fields belong to the owning thread
  /// (2PL discipline); the log append itself is internally synchronized.
  /// Returns the record's LSN.
  Lsn AppendChained(Txn* txn, LogRecord* rec);

  /// Remove a finished transaction from the table.
  void Remove(TxnId id);

  /// Reinstall a transaction rebuilt by recovery (in-doubt 2PC).
  void Restore(std::unique_ptr<Txn> txn);

  /// All transactions currently in the table (any state), in id order
  /// regardless of which shard holds them.
  std::vector<Txn*> ActiveTxns();

  size_t ActiveCount() const;
  uint64_t next_txn_id() const {
    return next_id_.load(std::memory_order_relaxed);
  }

  /// Recovery support: force the id counter past ids seen in the log
  /// (CAS max — recovery is serial, but Restore shares the path).
  void BumpNextId(TxnId floor) {
    TxnId cur = next_id_.load(std::memory_order_relaxed);
    while (floor >= cur &&
           !next_id_.compare_exchange_weak(cur, floor + 1,
                                           std::memory_order_relaxed)) {
    }
  }

 private:
  static constexpr uint32_t kShards = 16;

  struct Shard {
    mutable Mutex mu;
    std::map<TxnId, std::unique_ptr<Txn>> txns SHEAP_GUARDED_BY(mu);
  };

  Shard& ShardFor(TxnId id) { return shards_[id % kShards]; }
  const Shard& ShardFor(TxnId id) const { return shards_[id % kShards]; }

  LogWriter* log_;
  Shard shards_[kShards];
  std::atomic<TxnId> next_id_{1};
  std::atomic<uint64_t> begin_counter_{0};
};

}  // namespace sheap

#endif  // SHEAP_TXN_TXN_MANAGER_H_
