#include "recovery/instant_redo.h"

#include <algorithm>
#include <thread>

#include "common/check.h"

namespace sheap {

namespace {

/// Set while a thread is replaying a page. Pins performed by the replay
/// itself (the target page, via RedoExecutor) re-enter the before_pin hook;
/// this flag short-circuits that re-entry — for the on-demand path's own
/// recursive pin and for drain workers, whose pages are already claimed.
thread_local bool g_in_redo = false;

struct InRedoScope {
  InRedoScope() { g_in_redo = true; }
  ~InRedoScope() { g_in_redo = false; }
};

// The crash windows live in tiny wrappers so callers can revert page state
// (and record the terminal aborted outcome) instead of early-returning past
// the bookkeeping. The literal SHEAP_FAULT_POINT sites keep the
// manifest/lint reconciliation (tests/crash_matrix_points.h) two-sided.

/// Crash window: a page is claimed in-flight, its redo not yet applied.
Status OndemandCrashWindow(FaultInjector* faults) {
  SHEAP_FAULT_POINT(faults, "recovery.ondemand.page_redo");
  return Status::OK();
}

/// Crash window: a drain batch is claimed, its redo not yet applied.
Status DrainCrashWindow(FaultInjector* faults) {
  SHEAP_FAULT_POINT(faults, "recovery.drain.step");
  return Status::OK();
}

}  // namespace

InstantRedoManager::InstantRedoManager(const Deps& deps)
    : d_(deps),
      drain_threads_(std::max<uint32_t>(
          1, std::min(deps.drain_threads, RedoExecutor::kMaxPartitions))),
      exec_(RedoExecutor::Deps{deps.pool, deps.spaces, deps.clock},
            /*threads=*/1) {}

void InstantRedoManager::Install(RedoPlan plan, DirtyPageTable dpt) {
  MutexLock lock(&mu_);
  SHEAP_CHECK(!stats_.installed);
  plan_ = std::move(plan);
  dpt_ = std::move(dpt);
  entry_applied_.assign(plan_.entries.size(), 0);
  // Page -> its plan entries (both already in LSN order), pre-gated by the
  // DPT recLSN: a (page, entry) pair the offline pass would skip never
  // enters the table, so a page with nothing to replay is never pending.
  for (size_t i = 0; i < plan_.entries.size(); ++i) {
    for (PageId pid : plan_.entries[i].pages) {
      auto it = dpt_.find(pid);
      if (it == dpt_.end() || plan_.entries[i].rec.lsn < it->second) continue;
      pages_[pid].entries.push_back(static_cast<uint32_t>(i));
    }
  }
  pending_count_ = pages_.size();
  stats_.installed = true;
  stats_.pending_pages = pending_count_;
  active_ = pending_count_ > 0;
}

Status InstantRedoManager::ApplyPage(PageId pid,
                                     const std::vector<uint32_t>& entries,
                                     std::vector<uint8_t>* applied_flags) {
  applied_flags->assign(entries.size(), 0);
  InRedoScope in_redo;
  for (size_t k = 0; k < entries.size(); ++k) {
    bool applied = false;
    SHEAP_RETURN_IF_ERROR(
        exec_.ApplyEntryToPage(plan_.entries[entries[k]], dpt_, pid,
                               &applied));
    (*applied_flags)[k] = applied ? 1 : 0;
  }
  return Status::OK();
}

void InstantRedoManager::CommitPage(PageId pid,
                                    const std::vector<uint32_t>& entries,
                                    const std::vector<uint8_t>& applied_flags,
                                    uint64_t InstantRedoStats::*counter) {
  // Fold per-(entry,page) applied flags into per-entry firsts, so
  // records_applied converges to the offline pass's count (an entry
  // spanning several pages is still one applied record).
  const size_t n = std::min(entries.size(), applied_flags.size());
  for (size_t k = 0; k < n; ++k) {
    if (applied_flags[k] && !entry_applied_[entries[k]]) {
      entry_applied_[entries[k]] = 1;
      ++stats_.records_applied;
    }
  }
  auto it = pages_.find(pid);
  SHEAP_CHECK(it != pages_.end());
  if (counter == nullptr) {
    // Failed replay: whatever prefix applied is durable progress (the
    // page-LSN gate makes the retry skip it), but the page stays pending
    // so the next touch or drain batch finishes it.
    it->second.state = PageState::kPending;
    return;
  }
  it->second.state = PageState::kDone;
  --pending_count_;
  ++(stats_.*counter);
}

Status InstantRedoManager::OnPageAccess(PageId pid) {
  if (g_in_redo || !active_) return Status::OK();
  std::vector<uint32_t> entries;
  {
    MutexLock lock(&mu_);
    auto it = pages_.find(pid);
    if (it == pages_.end() || it->second.state == PageState::kDone) {
      return Status::OK();
    }
    // Heap actions are serialized and drain workers never re-enter the
    // gate (the in-redo flag), so an access can only find the page pending.
    SHEAP_CHECK(it->second.state == PageState::kPending);
    it->second.state = PageState::kInFlight;
    entries = it->second.entries;
  }
  Status st = OndemandCrashWindow(d_.faults);
  std::vector<uint8_t> applied;
  if (st.ok()) st = ApplyPage(pid, entries, &applied);
  MutexLock lock(&mu_);
  if (!st.ok()) {
    CommitPage(pid, entries, applied, /*counter=*/nullptr);
    if (st.IsCrashed()) stats_.aborted = true;
    return st;
  }
  CommitPage(pid, entries, applied, &InstantRedoStats::ondemand_pages);
  stats_.pending_pages = pending_count_;
  if (pending_count_ == 0) active_ = false;
  return Status::OK();
}

Status InstantRedoManager::DrainStep(uint64_t max_pages) {
  if (!active_ || max_pages == 0) return Status::OK();
  struct Job {
    PageId pid = 0;
    const std::vector<uint32_t>* entries = nullptr;
    std::vector<uint8_t> applied;
    Status status;
  };
  std::vector<Job> jobs;
  {
    MutexLock lock(&mu_);
    for (auto& [pid, work] : pages_) {
      if (jobs.size() >= max_pages) break;
      if (work.state != PageState::kPending) continue;
      work.state = PageState::kInFlight;
      Job job;
      job.pid = pid;
      // Entry lists are immutable after Install and the map never grows,
      // so workers may read through the pointer without the lock.
      job.entries = &work.entries;
      jobs.push_back(std::move(job));
    }
  }
  if (jobs.empty()) return Status::OK();

  Status window = DrainCrashWindow(d_.faults);
  if (!window.ok()) {
    MutexLock lock(&mu_);
    for (const Job& job : jobs) {
      pages_[job.pid].state = PageState::kPending;
    }
    if (window.IsCrashed()) stats_.aborted = true;
    return window;
  }

  const uint32_t nthreads = static_cast<uint32_t>(
      std::min<uint64_t>(drain_threads_, jobs.size()));
  if (nthreads <= 1) {
    // Serial drain: charges flow straight to the shared clock, exactly
    // like the historical serial redo pass.
    for (Job& job : jobs) {
      job.status = ApplyPage(job.pid, *job.entries, &job.applied);
    }
  } else {
    // Page-hash partitioned drain, the RedoExecutor::Execute discipline:
    // eviction off, every page confined to one worker, per-worker clock
    // lanes, and a deterministic busiest-lane + merge-term charge.
    d_.pool->BeginConcurrent();
    std::vector<uint64_t> lane_ns(nthreads, 0);
    std::vector<std::thread> workers;
    workers.reserve(nthreads);
    for (uint32_t p = 0; p < nthreads; ++p) {
      workers.emplace_back([this, p, nthreads, &jobs, &lane_ns]() {
        SimClock::ThreadChargeScope charge(d_.clock, &lane_ns[p]);
        for (Job& job : jobs) {
          if (RedoExecutor::PartitionOf(job.pid, nthreads) != p) continue;
          job.status = ApplyPage(job.pid, *job.entries, &job.applied);
        }
      });
    }
    for (std::thread& t : workers) t.join();
    d_.pool->EndConcurrent();
    d_.clock->Advance(*std::max_element(lane_ns.begin(), lane_ns.end()) +
                      d_.clock->model().scan_word_ns * jobs.size());
  }

  // Deterministic merge in ascending page order (the claim order above).
  Status first_error = Status::OK();
  MutexLock lock(&mu_);
  for (Job& job : jobs) {
    if (job.status.ok()) {
      CommitPage(job.pid, *job.entries, job.applied,
                 &InstantRedoStats::drained_pages);
    } else {
      CommitPage(job.pid, *job.entries, job.applied, /*counter=*/nullptr);
      if (job.status.IsCrashed()) stats_.aborted = true;
      if (first_error.ok()) first_error = job.status;
    }
  }
  stats_.pending_pages = pending_count_;
  if (pending_count_ == 0) active_ = false;
  return first_error;
}

Status InstantRedoManager::DrainAll() {
  while (active_) {
    SHEAP_RETURN_IF_ERROR(DrainStep(~0ull));
  }
  return Status::OK();
}

void InstantRedoManager::Abandon() {
  MutexLock lock(&mu_);
  if (pending_count_ > 0) stats_.aborted = true;
  active_ = false;
}

InstantRedoStats InstantRedoManager::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

Lsn InstantRedoManager::MinPendingRecLsn() const {
  MutexLock lock(&mu_);
  Lsn floor = kInvalidLsn;
  for (const auto& [pid, work] : pages_) {
    if (work.state == PageState::kDone) continue;
    auto it = dpt_.find(pid);
    if (it == dpt_.end()) continue;
    if (floor == kInvalidLsn || it->second < floor) floor = it->second;
  }
  return floor;
}

std::vector<std::pair<PageId, Lsn>> InstantRedoManager::PendingDirtyPages()
    const {
  MutexLock lock(&mu_);
  std::vector<std::pair<PageId, Lsn>> out;
  for (const auto& [pid, work] : pages_) {
    if (work.state == PageState::kDone) continue;
    auto it = dpt_.find(pid);
    if (it == dpt_.end()) continue;
    out.emplace_back(pid, it->second);
  }
  return out;
}

}  // namespace sheap
