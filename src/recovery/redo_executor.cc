#include "recovery/redo_executor.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/check.h"
#include "heap/address.h"
#include "heap/object.h"

namespace sheap {

RedoExecutor::RedoExecutor(const Deps& deps, uint32_t threads) : d_(deps) {
  threads_ = std::max<uint32_t>(1, std::min(threads, kMaxPartitions));
}

bool RedoExecutor::IsRedoable(RecordType type) {
  // Exhaustive over RecordType — no default, so adding a record type does
  // not compile until someone decides whether its redo touches heap pages
  // (tools/sheap_lint.py additionally checks every enumerator is named).
  switch (type) {
    case RecordType::kUpdate:
    case RecordType::kClr:
    case RecordType::kAlloc:
    case RecordType::kGcCopy:
    case RecordType::kGcCopyBatch:
    case RecordType::kGcScan:
    case RecordType::kV2sCopy:
    case RecordType::kInitialValue:
      return true;
    // Control records: their effects live in the recovery tables (ATT,
    // DPT, UTT, space maps) rebuilt by analysis, not in heap page bytes.
    case RecordType::kHeapFormat:
    case RecordType::kBegin:
    case RecordType::kCommit:
    case RecordType::kAbortTxn:
    case RecordType::kEnd:
    case RecordType::kPageFetch:
    case RecordType::kEndWrite:
    case RecordType::kCheckpoint:
    case RecordType::kSpaceAlloc:
    case RecordType::kSpaceFree:
    case RecordType::kGcFlip:
    case RecordType::kGcComplete:
    case RecordType::kUtr:
    case RecordType::kRootObject:
    case RecordType::kVolatileFlip:
    case RecordType::kClassDef:
    case RecordType::kPrepare:
    // 2PC coordinator-log records never appear in a shard WAL; a shard's
    // redo treats them as inert control records if one is ever seen.
    case RecordType::kDtxDecision:
    case RecordType::kDtxEnd:  // value-equal to kMaxRecordType
      return false;
  }
  return false;  // corrupt on-disk byte outside the enum
}

void RedoExecutor::AffectedPages(const LogRecord& rec,
                                 std::vector<PageId>* pages) {
  pages->clear();
  // Byte ranges the record's redo touches, then flattened to unique pages.
  std::vector<std::pair<HeapAddr, uint64_t>> ranges;
  switch (rec.type) {
    case RecordType::kUpdate:
    case RecordType::kClr:
      ranges.emplace_back(rec.addr, kWordSizeBytes);
      break;
    case RecordType::kAlloc:
      ranges.emplace_back(rec.addr, kWordSizeBytes);
      break;
    case RecordType::kGcCopy:
      ranges.emplace_back(rec.addr2, rec.count * kWordSizeBytes);
      ranges.emplace_back(rec.addr, kWordSizeBytes);  // forwarding word
      break;
    case RecordType::kGcCopyBatch:
      ranges.emplace_back(rec.addr2, rec.count * kWordSizeBytes);
      for (const UtrEntry& e : rec.utr_entries) {
        ranges.emplace_back(e.from, kWordSizeBytes);  // forwarding words
      }
      break;
    case RecordType::kGcScan:
      for (const auto& [word, value] : rec.slot_updates) {
        ranges.emplace_back(
            rec.page * kPageSizeBytes + word * kWordSizeBytes,
            kWordSizeBytes);
      }
      break;
    case RecordType::kV2sCopy:
      ranges.emplace_back(rec.addr2, rec.count * kWordSizeBytes);
      break;
    case RecordType::kInitialValue:
      ranges.emplace_back(rec.addr, rec.count * kWordSizeBytes);
      break;
    default:
      break;
  }
  for (const auto& [addr, len] : ranges) {
    if (len == 0) continue;
    for (PageId p = PageOf(addr); p <= PageOf(addr + len - 1); ++p) {
      pages->push_back(p);
    }
  }
  std::sort(pages->begin(), pages->end());
  pages->erase(std::unique(pages->begin(), pages->end()), pages->end());
}

uint32_t RedoExecutor::PartitionOf(PageId pid, uint32_t nparts) {
  // Multiplicative (Fibonacci) hash: adjacent pages scatter across
  // partitions, so a hot page range still parallelizes.
  return static_cast<uint32_t>((pid * 0x9E3779B97F4A7C15ull) >> 32) % nparts;
}

bool RedoExecutor::PageLive(PageId page) const {
  const Space* sp = d_.spaces->Containing(page * kPageSizeBytes);
  return sp != nullptr && !sp->freed && sp->area == Area::kStable;
}

Status RedoExecutor::RedoWriteBytes(HeapAddr addr, const uint8_t* data,
                                    uint64_t n, Lsn lsn,
                                    const DirtyPageTable& dpt,
                                    const PartitionFilter& filter,
                                    bool* applied) {
  uint64_t done = 0;
  while (done < n) {
    const PageId pid = PageOf(addr + done);
    const uint32_t off = OffsetInPage(addr + done);
    const uint64_t chunk =
        std::min<uint64_t>(n - done, kPageSizeBytes - off);
    if (!filter.Covers(pid)) {
      // Another partition's owner applies this page's slice.
      done += chunk;
      continue;
    }
    auto it = dpt.find(pid);
    const bool in_dpt = it != dpt.end() && lsn >= it->second;
    if (in_dpt && PageLive(pid)) {
      SHEAP_ASSIGN_OR_RETURN(PageImage * frame, d_.pool->Pin(pid));
      if (frame->page_lsn < lsn) {
        std::memcpy(frame->data.data() + off, data + done, chunk);
        d_.pool->MarkDirty(pid, lsn);
        *applied = true;
      }
      d_.pool->Unpin(pid);
    }
    done += chunk;
  }
  return Status::OK();
}

Status RedoExecutor::ApplyRecord(const LogRecord& rec,
                                 const DirtyPageTable& dpt,
                                 const PartitionFilter& filter,
                                 bool* applied) {
  auto word_bytes = [](uint64_t w) {
    return w;  // little-endian host: value bytes == memory bytes
  };
  switch (rec.type) {
    case RecordType::kUpdate:
    case RecordType::kClr: {
      uint64_t w = word_bytes(rec.new_word);
      SHEAP_RETURN_IF_ERROR(RedoWriteBytes(
          rec.addr, reinterpret_cast<const uint8_t*>(&w), kWordSizeBytes,
          rec.lsn, dpt, filter, applied));
      break;
    }
    case RecordType::kAlloc: {
      uint64_t w = EncodeHeader(static_cast<ClassId>(rec.aux), rec.count);
      SHEAP_RETURN_IF_ERROR(RedoWriteBytes(
          rec.addr, reinterpret_cast<const uint8_t*>(&w), kWordSizeBytes,
          rec.lsn, dpt, filter, applied));
      break;
    }
    case RecordType::kGcCopy: {
      SHEAP_RETURN_IF_ERROR(RedoWriteBytes(rec.addr2, rec.contents.data(),
                                           rec.contents.size(), rec.lsn, dpt,
                                           filter, applied));
      uint64_t fwd = MakeForwardWord(rec.addr2);
      SHEAP_RETURN_IF_ERROR(RedoWriteBytes(
          rec.addr, reinterpret_cast<const uint8_t*>(&fwd), kWordSizeBytes,
          rec.lsn, dpt, filter, applied));
      break;
    }
    case RecordType::kGcCopyBatch: {
      SHEAP_RETURN_IF_ERROR(RedoWriteBytes(rec.addr2, rec.contents.data(),
                                           rec.contents.size(), rec.lsn, dpt,
                                           filter, applied));
      // One forwarding word per coalesced object; the to-addresses are
      // implied by the run layout but carried explicitly in the entries.
      for (const UtrEntry& e : rec.utr_entries) {
        uint64_t fwd = MakeForwardWord(e.to);
        SHEAP_RETURN_IF_ERROR(RedoWriteBytes(
            e.from, reinterpret_cast<const uint8_t*>(&fwd), kWordSizeBytes,
            rec.lsn, dpt, filter, applied));
      }
      break;
    }
    case RecordType::kGcScan: {
      // All of a scan record's writes land on one page; gate once and apply
      // them together (gating per write would let the first write's pageLSN
      // update suppress the rest of the record).
      if (!filter.Covers(rec.page)) break;
      auto it = dpt.find(rec.page);
      if (it == dpt.end() || rec.lsn < it->second || !PageLive(rec.page)) {
        break;
      }
      SHEAP_ASSIGN_OR_RETURN(PageImage * frame, d_.pool->Pin(rec.page));
      if (frame->page_lsn < rec.lsn) {
        for (const auto& [word, value] : rec.slot_updates) {
          frame->WriteWord(word, value);
        }
        d_.pool->MarkDirty(rec.page, rec.lsn);
        *applied = true;
      }
      d_.pool->Unpin(rec.page);
      break;
    }
    case RecordType::kV2sCopy:
      SHEAP_RETURN_IF_ERROR(RedoWriteBytes(rec.addr2, rec.contents.data(),
                                           rec.contents.size(), rec.lsn, dpt,
                                           filter, applied));
      break;
    case RecordType::kInitialValue:
      SHEAP_RETURN_IF_ERROR(RedoWriteBytes(rec.addr, rec.contents.data(),
                                           rec.contents.size(), rec.lsn, dpt,
                                           filter, applied));
      break;
    default:
      break;
  }
  return Status::OK();
}

Status RedoExecutor::ApplyEntryToPage(const RedoPlanEntry& entry,
                                      const DirtyPageTable& dpt, PageId pid,
                                      bool* applied) {
  PartitionFilter filter;
  filter.only_page = pid;
  return ApplyRecord(entry.rec, dpt, filter, applied);
}

Status RedoExecutor::Execute(const RedoPlan& plan, const DirtyPageTable& dpt,
                             uint64_t* records_applied) {
  *records_applied = 0;
  if (plan.entries.empty()) return Status::OK();

  if (threads_ == 1) {
    // Exactly the historical serial path: entries in LSN order, charges
    // flowing straight to the shared clock.
    PartitionFilter all;
    for (const RedoPlanEntry& entry : plan.entries) {
      bool applied = false;
      SHEAP_RETURN_IF_ERROR(ApplyRecord(entry.rec, dpt, all, &applied));
      if (applied) ++*records_applied;
    }
    return Status::OK();
  }

  // Partition the entry indexes: entry i lands in every partition that owns
  // one of its pages (page lists are tiny, so a bitmask dedups owners).
  static_assert(kMaxPartitions <= 64, "owner dedup uses a 64-bit mask");
  std::vector<std::vector<uint32_t>> part_entries(threads_);
  for (size_t i = 0; i < plan.entries.size(); ++i) {
    uint64_t owners = 0;
    for (PageId pid : plan.entries[i].pages) {
      owners |= 1ull << PartitionOf(pid, threads_);
    }
    for (uint32_t p = 0; p < threads_; ++p) {
      if ((owners >> p) & 1) {
        part_entries[p].push_back(static_cast<uint32_t>(i));
      }
    }
  }

  // Workers: each applies its partition's entries in LSN order, charging
  // simulated time to a partition-local lane and recording per-entry
  // applied flags for the deterministic merge below.
  d_.pool->BeginConcurrent();
  std::vector<Status> part_status(threads_, Status::OK());
  std::vector<std::vector<uint8_t>> part_applied(threads_);
  std::vector<uint64_t> lane_ns(threads_, 0);
  std::vector<std::thread> workers;
  workers.reserve(threads_);
  for (uint32_t p = 0; p < threads_; ++p) {
    part_applied[p].assign(part_entries[p].size(), 0);
    workers.emplace_back([this, p, &plan, &dpt, &part_entries, &part_status,
                          &part_applied, &lane_ns]() {
      SimClock::ThreadChargeScope charge(d_.clock, &lane_ns[p]);
      PartitionFilter filter{threads_, p};
      for (size_t k = 0; k < part_entries[p].size(); ++k) {
        bool applied = false;
        Status st = ApplyRecord(plan.entries[part_entries[p][k]].rec, dpt,
                                filter, &applied);
        if (!st.ok()) {
          part_status[p] = st;
          break;
        }
        part_applied[p][k] = applied ? 1 : 0;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  d_.pool->EndConcurrent();

  // Parallel hardware: the redo pass costs the busiest partition's lane,
  // plus a coordinator merge term (one examination per plan entry).
  d_.clock->Advance(*std::max_element(lane_ns.begin(), lane_ns.end()) +
                    d_.clock->model().scan_word_ns * plan.entries.size());

  // Deterministic merge, partition-index order: an entry counts as applied
  // if any owning partition changed a page for it.
  std::vector<uint8_t> applied(plan.entries.size(), 0);
  for (uint32_t p = 0; p < threads_; ++p) {
    SHEAP_RETURN_IF_ERROR(part_status[p]);
    for (size_t k = 0; k < part_entries[p].size(); ++k) {
      applied[part_entries[p][k]] |= part_applied[p][k];
    }
  }
  for (uint8_t a : applied) *records_applied += a;
  return Status::OK();
}

}  // namespace sheap
