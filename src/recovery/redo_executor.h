// RedoExecutor: applies a redo plan serially or across page-hash partitions.
//
// Repeating history (paper §2.2.3, invariant 2.1) constrains redo order only
// *within* a page: each page must see its records in LSN order, gated by the
// DPT recLSN and the on-page LSN. Records touching different pages commute.
// Hash-partitioning pages over N workers therefore preserves correctness
// exactly (cf. Sauer & Härder's parallel REDO-only recovery): every page's
// records stay in one worker's LSN-ordered list, and a record spanning
// several partitions (a GC copy's contents plus the forwarding word in
// from-space, say) is applied piecewise by each partition owner — the
// per-page gates make that equivalent to one atomic application.
//
// The plan is built once, during analysis (the records arrive already
// decoded), so redo never re-reads or re-decodes the log.
//
// Determinism contract: with a fixed plan and fixed thread count the
// recovered heap bytes equal the serial path's byte-for-byte, worker stats
// merge in partition-index order, and simulated time advances by the
// busiest partition plus a merge term — independent of host scheduling.
//
// Concurrency contract: the executor itself holds no locks. Workers share
// nothing mutable — each owns its partition's page set, its stats struct,
// and a thread-local clock sink — and the only cross-thread structures they
// touch (BufferPool shards, the Disk) carry their own capability-annotated
// mutexes. Confinement by partition, not locking, is the discipline here;
// see DESIGN.md §5e.

#ifndef SHEAP_RECOVERY_REDO_EXECUTOR_H_
#define SHEAP_RECOVERY_REDO_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "heap/space_manager.h"
#include "recovery/tables.h"
#include "storage/buffer_pool.h"
#include "util/sim_clock.h"
#include "wal/record.h"

namespace sheap {

/// One redoable record plus the distinct pages its redo touches.
struct RedoPlanEntry {
  LogRecord rec;
  std::vector<PageId> pages;  // unique, ascending
};

/// The fused analysis output: redoable records in LSN order, pre-decoded.
struct RedoPlan {
  std::vector<RedoPlanEntry> entries;
};

/// See file comment.
class RedoExecutor {
 public:
  struct Deps {
    BufferPool* pool = nullptr;
    const SpaceManager* spaces = nullptr;
    SimClock* clock = nullptr;
  };

  /// `threads` == 1 is exactly the historical serial path (no worker pool,
  /// charges flow straight to the clock). Capped at kMaxPartitions.
  RedoExecutor(const Deps& deps, uint32_t threads);

  static constexpr uint32_t kMaxPartitions = 64;

  /// True for physical-redo record types.
  static bool IsRedoable(RecordType type);

  /// The distinct pages `rec`'s redo touches, ascending. Empty for
  /// non-redoable records.
  static void AffectedPages(const LogRecord& rec, std::vector<PageId>* pages);

  /// The partition a page belongs to under `nparts` partitions.
  static uint32_t PartitionOf(PageId pid, uint32_t nparts);

  /// Apply every plan entry (ascending LSN), each page gated by the DPT
  /// recLSN and the on-page LSN. *records_applied counts entries that
  /// changed at least one page (merged across partitions). On a worker
  /// error the first failure in partition-index order is returned.
  Status Execute(const RedoPlan& plan, const DirtyPageTable& dpt,
                 uint64_t* records_applied);

  /// Apply one plan entry restricted to a single page — the instant-recovery
  /// on-demand / drain path (recovery/instant_redo.h). The gates are exactly
  /// Execute's (DPT recLSN, on-page LSN, live space), so redoing a
  /// multi-page record page-by-page, in any interleaving with other pages'
  /// redo, produces the same bytes as the offline pass; this is the same
  /// piecewise-application argument the partitioned path already relies on.
  Status ApplyEntryToPage(const RedoPlanEntry& entry,
                          const DirtyPageTable& dpt, PageId pid,
                          bool* applied);

  uint32_t threads() const { return threads_; }

 private:
  /// A worker's view: which pages it owns. Serial mode owns everything;
  /// the single-page mode (ApplyEntryToPage) owns exactly one page.
  struct PartitionFilter {
    static constexpr PageId kAllPages = ~0ull;
    uint32_t nparts = 1;
    uint32_t index = 0;
    PageId only_page = kAllPages;
    bool Covers(PageId pid) const {
      if (only_page != kAllPages) return pid == only_page;
      return nparts <= 1 || PartitionOf(pid, nparts) == index;
    }
  };

  Status ApplyRecord(const LogRecord& rec, const DirtyPageTable& dpt,
                     const PartitionFilter& filter, bool* applied);
  Status RedoWriteBytes(HeapAddr addr, const uint8_t* data, uint64_t n,
                        Lsn lsn, const DirtyPageTable& dpt,
                        const PartitionFilter& filter, bool* applied);
  bool PageLive(PageId page) const;

  Deps d_;
  uint32_t threads_;
};

}  // namespace sheap

#endif  // SHEAP_RECOVERY_REDO_EXECUTOR_H_
