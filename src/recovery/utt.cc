#include "recovery/utt.h"

#include <algorithm>

#include "common/check.h"

namespace sheap {

void UndoTranslationTable::AddBatch(const std::vector<UtrEntry>& entries,
                                    const std::vector<TxnId>& active) {
  if (entries.empty()) return;
  Batch batch;
  batch.entries = entries;
  batch.pending = active;
  batches_.push_back(std::move(batch));
  for (const auto& e : entries) by_from_[e.from] = e;
}

void UndoTranslationTable::OnTxnEnd(TxnId txn) {
  bool pruned = false;
  for (auto& batch : batches_) {
    auto it = std::find(batch.pending.begin(), batch.pending.end(), txn);
    if (it != batch.pending.end()) {
      batch.pending.erase(it);
      if (batch.pending.empty()) pruned = true;
    }
  }
  if (pruned) {
    batches_.erase(std::remove_if(batches_.begin(), batches_.end(),
                                  [](const Batch& b) {
                                    return b.pending.empty();
                                  }),
                   batches_.end());
    RebuildIndex();
  }
}

const UtrEntry* UndoTranslationTable::FindCovering(HeapAddr a) const {
  auto it = by_from_.upper_bound(a);
  if (it == by_from_.begin()) return nullptr;
  --it;
  const UtrEntry& e = it->second;
  if (a >= e.from && a < e.from + e.nwords * kWordSizeBytes) return &e;
  return nullptr;
}

HeapAddr UndoTranslationTable::Translate(HeapAddr a) const {
  // Chains strictly increase (page ids are never reused and new spaces have
  // higher page numbers), so this terminates.
  const UtrEntry* e;
  while ((e = FindCovering(a)) != nullptr) {
    HeapAddr next = e->to + (a - e->from);
    SHEAP_CHECK(next != a);
    a = next;
  }
  return a;
}

bool UndoTranslationTable::Covers(HeapAddr a) const {
  return FindCovering(a) != nullptr;
}

void UndoTranslationTable::Clear() {
  batches_.clear();
  by_from_.clear();
}

void UndoTranslationTable::RebuildIndex() {
  by_from_.clear();
  for (const auto& batch : batches_) {
    for (const auto& e : batch.entries) by_from_[e.from] = e;
  }
}

void UndoTranslationTable::EncodeTo(Encoder* enc) const {
  enc->PutVarint(batches_.size());
  for (const auto& batch : batches_) {
    enc->PutVarint(batch.entries.size());
    for (const auto& e : batch.entries) {
      enc->PutVarint(e.from);
      enc->PutVarint(e.to);
      enc->PutVarint(e.nwords);
    }
    enc->PutVarint(batch.pending.size());
    for (TxnId t : batch.pending) enc->PutVarint(t);
  }
}

Status UndoTranslationTable::DecodeFrom(Decoder* dec) {
  Clear();
  uint64_t nbatches;
  if (!dec->GetVarint(&nbatches)) return Status::Corruption("bad utt");
  for (uint64_t i = 0; i < nbatches; ++i) {
    Batch batch;
    uint64_t nentries;
    if (!dec->GetVarint(&nentries)) return Status::Corruption("bad utt");
    for (uint64_t j = 0; j < nentries; ++j) {
      UtrEntry e;
      if (!dec->GetVarint(&e.from) || !dec->GetVarint(&e.to) ||
          !dec->GetVarint(&e.nwords)) {
        return Status::Corruption("bad utt entry");
      }
      batch.entries.push_back(e);
    }
    uint64_t npending;
    if (!dec->GetVarint(&npending)) return Status::Corruption("bad utt");
    for (uint64_t j = 0; j < npending; ++j) {
      uint64_t t;
      if (!dec->GetVarint(&t)) return Status::Corruption("bad utt txn");
      batch.pending.push_back(t);
    }
    batches_.push_back(std::move(batch));
  }
  RebuildIndex();
  return Status::OK();
}

}  // namespace sheap
