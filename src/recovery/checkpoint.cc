#include "recovery/checkpoint.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace sheap {

namespace {
constexpr uint32_t kCheckpointMagic = 0x53484350;  // "SHCP"
}  // namespace

void EncodeCheckpointPayload(
    const BufferPool& pool, const TxnManager& txns, const AtomicGc& gc,
    const SpaceManager& spaces, const UndoTranslationTable& utt,
    const TypeRegistry& types, const std::vector<uint8_t>& format_payload,
    const std::vector<std::pair<PageId, Lsn>>& extra_dirty,
    std::vector<uint8_t>* out) {
  Encoder enc(out);
  enc.PutU32(kCheckpointMagic);
  enc.PutLengthPrefixed(format_payload.data(), format_payload.size());

  // Dirty-page table (precise snapshot plus logically-dirty pages;
  // recLSN per page, minimum when both sources list a page).
  std::map<PageId, Lsn> dirty;
  for (const auto& [page, rec_lsn] : pool.DirtyPages()) {
    dirty[page] = rec_lsn;
  }
  for (const auto& [page, rec_lsn] : extra_dirty) {
    auto [it, fresh] = dirty.emplace(page, rec_lsn);
    if (!fresh && rec_lsn != kInvalidLsn &&
        (it->second == kInvalidLsn || rec_lsn < it->second)) {
      it->second = rec_lsn;
    }
  }
  enc.PutVarint(dirty.size());
  for (const auto& [page, rec_lsn] : dirty) {
    enc.PutVarint(page);
    enc.PutVarint(rec_lsn);
  }

  // Active-transaction table.
  auto* mutable_txns = const_cast<TxnManager*>(&txns);
  auto active = mutable_txns->ActiveTxns();
  enc.PutVarint(active.size());
  for (const Txn* t : active) {
    enc.PutVarint(t->id);
    uint8_t status;
    switch (t->state) {
      case TxnState::kCommitted:
      case TxnState::kCommitting:
        status = static_cast<uint8_t>(AttStatus::kCommitted);
        break;
      case TxnState::kAborting:
      case TxnState::kAborted:
        status = static_cast<uint8_t>(AttStatus::kAborting);
        break;
      case TxnState::kPrepared:
        status = static_cast<uint8_t>(AttStatus::kPrepared);
        break;
      default:
        status = static_cast<uint8_t>(AttStatus::kActive);
    }
    enc.PutU8(status);
    enc.PutVarint(t->first_lsn);
    enc.PutVarint(t->last_lsn);
  }
  enc.PutVarint(mutable_txns->next_txn_id());

  spaces.EncodeTo(&enc);
  utt.EncodeTo(&enc);
  types.EncodeAllTo(&enc);
  gc.EncodeTo(&enc);
}

Status DecodeCheckpointPayload(const std::vector<uint8_t>& payload,
                               SpaceManager* spaces,
                               UndoTranslationTable* utt, TypeRegistry* types,
                               CheckpointData* data) {
  Decoder dec(payload);
  uint32_t magic;
  if (!dec.GetU32(&magic) || magic != kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  if (!dec.GetLengthPrefixed(&data->format_payload)) {
    return Status::Corruption("bad checkpoint format payload");
  }

  uint64_t ndirty;
  if (!dec.GetVarint(&ndirty)) return Status::Corruption("bad dpt");
  data->dpt.clear();
  for (uint64_t i = 0; i < ndirty; ++i) {
    uint64_t page, rec_lsn;
    if (!dec.GetVarint(&page) || !dec.GetVarint(&rec_lsn)) {
      return Status::Corruption("bad dpt entry");
    }
    data->dpt[page] = rec_lsn;
  }

  uint64_t nactive;
  if (!dec.GetVarint(&nactive)) return Status::Corruption("bad att");
  data->att.clear();
  for (uint64_t i = 0; i < nactive; ++i) {
    uint64_t id;
    uint8_t status;
    AttEntry e;
    if (!dec.GetVarint(&id) || !dec.GetU8(&status) ||
        !dec.GetVarint(&e.first_lsn) || !dec.GetVarint(&e.last_lsn)) {
      return Status::Corruption("bad att entry");
    }
    e.status = static_cast<AttStatus>(status);
    data->att[id] = e;
  }
  uint64_t next_id;
  if (!dec.GetVarint(&next_id)) return Status::Corruption("bad txn id");
  data->next_txn_id = next_id;

  SHEAP_RETURN_IF_ERROR(spaces->DecodeFrom(&dec));
  SHEAP_RETURN_IF_ERROR(utt->DecodeFrom(&dec));
  SHEAP_RETURN_IF_ERROR(types->DecodeAllFrom(&dec));
  SHEAP_RETURN_IF_ERROR(AtomicGc::DecodeInto(&dec, &data->gc));
  if (!dec.empty()) return Status::Corruption("trailing checkpoint bytes");
  return Status::OK();
}

Status Checkpointer::Take() {
  SimSpan span(clock_);
  [[maybe_unused]] FaultInjector* faults = device_->faults();
  SHEAP_FAULT_POINT(faults, "ckpt.take.begin");
  LogRecord rec;
  rec.type = RecordType::kCheckpoint;
  std::vector<std::pair<PageId, Lsn>> extra_dirty;
  if (extra_dirty_pages) extra_dirty = extra_dirty_pages();
  EncodeCheckpointPayload(*pool_, *txns_, *gc_, *spaces_, *utt_, *types_,
                          format_payload_, extra_dirty, &rec.payload);
  const Lsn ckpt_lsn = log_->Append(&rec);
  // Spool-and-flush; no force (the paper's checkpoints require no
  // synchronous writes — a torn checkpoint is detected by its CRC and
  // recovery falls back to the previous one).
  SHEAP_RETURN_IF_ERROR(log_->Flush());
  // Crash window: checkpoint on the device (tearable), master pointer
  // still naming the previous checkpoint.
  SHEAP_FAULT_POINT(faults, "ckpt.take.logged");
  const Lsn previous_ckpt = device_->master_lsn();
  device_->SetMasterLsn(ckpt_lsn);
  // Crash window: master points at a checkpoint that may tear; recovery
  // must fall back to the previous one (kept by the truncation floor).
  SHEAP_FAULT_POINT(faults, "ckpt.take.master");

  // Truncation point: nothing before min(checkpoint, oldest recLSN,
  // oldest active transaction's first record) can be needed — and the
  // previous checkpoint must survive until this (unforced, tearable) one
  // is safely behind the durable barrier.
  Lsn keep = ckpt_lsn;
  if (previous_ckpt != kInvalidLsn) keep = std::min(keep, previous_ckpt);
  // O(1): the pool indexes dirty recLSNs, no dirty-page scan needed here.
  const Lsn min_rec = pool_->MinRecLsn();
  if (min_rec != kInvalidLsn) keep = std::min(keep, min_rec);
  for (Txn* t : txns_->ActiveTxns()) {
    if (t->first_lsn != kInvalidLsn) keep = std::min(keep, t->first_lsn);
  }
  if (extra_keep_floor) {
    const Lsn floor = extra_keep_floor();
    if (floor != kInvalidLsn) keep = std::min(keep, floor);
  }
  device_->TruncatePrefix(keep - 1);
  SHEAP_FAULT_POINT(faults, "ckpt.take.end");

  ++stats_.checkpoints_taken;
  stats_.last_payload_bytes = rec.payload.size();
  stats_.last_checkpoint_lsn = ckpt_lsn;
  stats_.last_truncation_lsn = keep;
  stats_.last_pause_ns = span.elapsed_ns();
  return Status::OK();
}

Status Checkpointer::TakeWithWriteback() {
  [[maybe_unused]] FaultInjector* faults = device_->faults();
  SHEAP_FAULT_POINT(faults, "ckpt.flush.begin");
  // Parallel run-coalescing writeback: after this the pool's DPT is empty
  // (modulo pinned pages), so the checkpoint that follows carries a
  // near-empty DPT and post-crash redo starts at the checkpoint itself.
  SHEAP_RETURN_IF_ERROR(pool_->FlushAll());
  ++stats_.flush_checkpoints_taken;
  return Take();
}

}  // namespace sheap
